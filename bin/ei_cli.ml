(* elastic-indexes command-line tool.

   Subcommands:
     ycsb   — run a YCSB workload against a chosen index
     ingest — ingest a synthetic IOTTA-like log trace through the
              MCAS-like store and query it (formerly [trace])
     volumes — print the Fig-1 style daily-volume model
     check  — churn an index with random mutations and run the deep
              invariant sanitizer ({!Ei_check.Check}) over it
     serve  — run a sharded elastic fleet ({!Ei_shard.Serve}) with the
              global memory coordinator under a YCSB-style load
     serve-net — serve a sharded fleet over the wire protocol
              ({!Ei_net.Server}) on a unix or TCP socket; SIGTERM drains
              gracefully (every in-flight request keeps its reply)
     bench-net — closed-/open-loop load generator against a running
              serve-net; prints p50/p99/p999 and appends a JSON-Lines row
     chaos  — deterministic fault-injection soak against the supervised
              fleet; with --wal-dir the shards are durable and the soak
              proves crash recovery (kill -9, restart, verify)
     wal    — inspect / verify / repair a durable shard's write-ahead
              log and checkpoint manifests
     stats  — run a YCSB workload with the ei_obs metrics registry on
              and print the exposition (Prometheus text or JSON)
     trace  — run a sharded YCSB workload with the ei_obs trace ring on,
              slash the global bound mid-churn, and dump a Chrome
              trace_events JSON (chrome://tracing / Perfetto)
     timeline — same fleet shape with the telemetry timeline on; dump
              the frame ring (op-mix deltas, gauges, windowed latency
              quantiles) as JSON-Lines
     top    — live per-shard telemetry view refreshed from the newest
              timeline frame (--once for a single CI-friendly render)
     analyze — run the ei_race concurrency-discipline static analyzer
              over the libraries' typedtrees (.cmt files)
     sim    — deterministic simulation testing ({!Ei_sim}): differential
              op tapes against a pure oracle, schedule exploration over
              the production yield points, perturbed chaos rounds; shrunk
              failures replay from .sim.json artifacts

   Examples:
     ei ycsb --index elastic --workload E --records 50000 --ops 100000
     ei ingest --index elastic50 --rows 200000
     ei volumes --days 90
     ei check --index elastic40 --ops 200000 --strict
     ei serve --shards 4 --records 100000 --ops 200000 --bound 60
     ei serve-net --shards 8 --socket /tmp/ei-net.sock
     ei bench-net --clients 4 --count 50000 --mode closed --window 64
     ei stats --index elastic --workload A --json
     ei trace --shards 2 --records 50000 --ops 100000 --out ei.trace.json
     ei timeline --shards 2 --out ei.timeline.jsonl
     ei top --shards 4 --interval 0.5
     ei chaos --scale 0.1 --wal-dir /tmp/ei-wal
     ei wal --dir /tmp/ei-wal --verify
     ei sim diff --a oracle --b olc-elastic --gen elastic --ops 40000
     ei sim sched --scenario olc-convert-scan --rounds 25 --seed 1
     ei sim --replay repro.sim.json *)

open Cmdliner

module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Ycsb = Ei_workload.Ycsb
module Check = Ei_check.Check
module Iotta = Ei_workload.Iotta
module Clock = Ei_util.Bench_clock

(* --- shared index argument ------------------------------------------ *)

(* Parse "stx", "hot", "art", "skiplist", "seqtree<N>", "subtrie<N>",
   "elastic" or "elastic<PCT>"; elastic bounds are computed against an
   STX-sized estimate for [approx_items] keys of [key_len] bytes. *)
let kind_of_name ~approx_items ~key_len name =
  let stx_estimate =
    (* ~1.2x the raw leaf entry cost, as inner nodes add ~10-20%. *)
    approx_items * (key_len + 8) * 2
  in
  let elastic pct =
    Registry.Elastic
      (Ei_core.Elasticity.default_config
         ~size_bound:(stx_estimate * pct / 100))
  in
  match name with
  | "stx" -> Ok Registry.Stx
  | "hot" -> Ok Registry.Hot
  | "art" -> Ok Registry.Art
  | "skiplist" -> Ok Registry.Skiplist
  | "elastic" -> Ok (elastic 60)
  | s when String.length s > 7 && String.sub s 0 7 = "elastic" -> (
    match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
    | Some pct when pct > 0 -> Ok (elastic pct)
    | _ -> Error (`Msg ("bad elastic percentage: " ^ s)))
  | s when String.length s > 7 && String.sub s 0 7 = "seqtree" -> (
    match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
    | Some c when c >= 32 -> Ok (Registry.Seqtree c)
    | _ -> Error (`Msg ("bad seqtree capacity: " ^ s)))
  | s when String.length s > 7 && String.sub s 0 7 = "subtrie" -> (
    match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
    | Some c when c >= 32 -> Ok (Registry.Subtrie c)
    | _ -> Error (`Msg ("bad subtrie capacity: " ^ s)))
  | s -> Error (`Msg ("unknown index: " ^ s))

let index_arg =
  let doc =
    "Index to use: stx, hot, art, skiplist, seqtree<N>, subtrie<N>, \
     elastic or elastic<PCT> (shrink bound as a percentage of the \
     estimated STX size)."
  in
  Arg.(value & opt string "elastic" & info [ "i"; "index" ] ~docv:"INDEX" ~doc)

(* --- ycsb ------------------------------------------------------------ *)

let ycsb_cmd =
  let workload_arg =
    Arg.(value & opt string "A" & info [ "w"; "workload" ] ~docv:"A..F" ~doc:"YCSB workload.")
  in
  let records_arg =
    Arg.(value & opt int 50_000 & info [ "records" ] ~doc:"Records to load.")
  in
  let ops_arg =
    Arg.(value & opt int 100_000 & info [ "ops" ] ~doc:"Transactions to run.")
  in
  let zipf_arg =
    Arg.(value & flag & info [ "zipfian" ] ~doc:"Zipfian key distribution (default uniform).")
  in
  let run index_name workload records ops zipfian =
    let workload =
      match String.uppercase_ascii workload with
      | "A" -> Ycsb.A
      | "B" -> Ycsb.B
      | "C" -> Ycsb.C
      | "D" -> Ycsb.D
      | "E" -> Ycsb.E
      | "F" -> Ycsb.F
      | w -> Printf.ksprintf failwith "unknown workload %s" w
    in
    match kind_of_name ~approx_items:records ~key_len:8 index_name with
    | Error (`Msg m) -> prerr_endline m; exit 2
    | Ok kind ->
      let table = Table.create ~key_len:8 () in
      let index = Registry.make ~key_len:8 ~load:(Table.loader table) kind in
      let runner = Ycsb.create ~index ~table ~record_count:records () in
      let (), load_dt = Clock.time (fun () -> Ycsb.load runner records) in
      Printf.printf "%-12s load  %8d recs  %6.2f Mops  %7.2f MiB %s\n"
        index.Index_ops.name records (Clock.mops records load_dt)
        (Clock.mib (index.Index_ops.memory_bytes ()))
        (index.Index_ops.info ());
      let dist = if zipfian then Ycsb.Zipfian else Ycsb.Uniform in
      let (), dt =
        Clock.time (fun () -> ignore (Ycsb.run runner ~workload ~dist ~ops))
      in
      Printf.printf "%-12s txn-%s %8d ops   %6.2f Mops  %7.2f MiB %s\n"
        index.Index_ops.name
        (Ycsb.workload_name workload)
        ops (Clock.mops ops dt)
        (Clock.mib (index.Index_ops.memory_bytes ()))
        (index.Index_ops.info ())
  in
  let term = Term.(const run $ index_arg $ workload_arg $ records_arg $ ops_arg $ zipf_arg) in
  Cmd.v (Cmd.info "ycsb" ~doc:"Run a YCSB workload against an index.") term

(* --- ingest ----------------------------------------------------------- *)

let ingest_cmd =
  let rows_arg =
    Arg.(value & opt int 200_000 & info [ "rows" ] ~doc:"Trace rows to ingest.")
  in
  let run index_name rows_n =
    match kind_of_name ~approx_items:rows_n ~key_len:16 index_name with
    | Error (`Msg m) -> prerr_endline m; exit 2
    | Ok kind ->
      let rows = Iotta.generate ~rows:rows_n ~objects:(max 100 (rows_n / 10)) () in
      let store = Ei_mcas.Store.create () in
      let table = Ei_mcas.Log_table.create ~index_kind:kind () in
      Ei_mcas.Store.attach_ado store ~partition:0 (Ei_mcas.Log_table.ado table);
      let (), ingest_dt =
        Clock.time (fun () ->
            Array.iter
              (fun r ->
                ignore
                  (Ei_mcas.Store.invoke store ~partition:0 (Ei_mcas.Ado.Ingest r)))
              rows)
      in
      Printf.printf "ingested %d rows in %.2f s (%.2f Mops)\n" rows_n ingest_dt
        (Clock.mops rows_n ingest_dt);
      Printf.printf "index %s: %.2f MiB (%.2fx the dataset) %s\n"
        (Ei_mcas.Log_table.index_name table)
        (Clock.mib (Ei_mcas.Log_table.index_memory_bytes table))
        (float_of_int (Ei_mcas.Log_table.index_memory_bytes table)
        /. float_of_int (Ei_mcas.Log_table.data_bytes table))
        (Ei_mcas.Log_table.index_info table);
      let rng = Ei_util.Rng.create 3 in
      let lookups = min 100_000 rows_n in
      let (), lkp_dt =
        Clock.time (fun () ->
            for _ = 1 to lookups do
              let r = rows.(Ei_util.Rng.int rng rows_n) in
              ignore
                (Ei_mcas.Store.invoke store ~partition:0
                   (Ei_mcas.Ado.Lookup (Iotta.key_of_row r)))
            done)
      in
      Printf.printf "%d lookups: %.2f Mops end-to-end\n" lookups
        (Clock.mops lookups lkp_dt)
  in
  let term = Term.(const run $ index_arg $ rows_arg) in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:"Ingest a synthetic object-store log trace via the MCAS-like \
             store (formerly the trace subcommand; trace now dumps \
             Chrome traces).")
    term

(* --- check ------------------------------------------------------------- *)

let check_cmd =
  let records_arg =
    Arg.(value & opt int 20_000 & info [ "records" ] ~doc:"Records to load before churning.")
  in
  let ops_arg =
    Arg.(value & opt int 100_000 & info [ "ops" ] ~doc:"Random mutations to drive after the load.")
  in
  let every_arg =
    Arg.(value & opt int 10_000 & info [ "every" ] ~doc:"Mutations between periodic deep checks.")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Treat lazily-enforced compact-occupancy advisories as errors.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed for the churn workload.")
  in
  let run index_name records ops every strict seed =
    match kind_of_name ~approx_items:records ~key_len:8 index_name with
    | Error (`Msg m) -> prerr_endline m; exit 2
    | Ok kind ->
      let table = Table.create ~key_len:8 () in
      let index = Registry.make ~key_len:8 ~load:(Table.loader table) kind in
      let periodic = ref 0 in
      let bad = ref 0 in
      let on_report r =
        incr periodic;
        if not (Check.ok r) then begin
          incr bad;
          Format.printf "%a@." Check.pp_report r
        end
      in
      let wrapped = Check.wrap ~strict ~every:(max 1 every) ~on_report index in
      let rng = Ei_util.Rng.create seed in
      let pool =
        Array.init (max 16 records) (fun _ -> Ei_util.Key.random rng 8)
      in
      let tid_of = Ei_util.Strtbl.create 1024 in
      let tid_for k =
        match Ei_util.Strtbl.find_opt tid_of k with
        | Some tid -> tid
        | None ->
          let tid = Table.append table k in
          Ei_util.Strtbl.add tid_of k tid;
          tid
      in
      Array.iter (fun k -> ignore (wrapped.Index_ops.insert k (tid_for k))) pool;
      (* Mixed churn over a bounded key pool: inserts and removes fight
         so an elastic index crosses its size bound in both directions. *)
      for _ = 1 to ops do
        let k = pool.(Ei_util.Rng.int rng (Array.length pool)) in
        let c = Ei_util.Rng.int rng 100 in
        if c < 45 then ignore (wrapped.Index_ops.insert k (tid_for k))
        else if c < 80 then ignore (wrapped.Index_ops.remove k)
        else if c < 95 then ignore (wrapped.Index_ops.update k (tid_for k))
        else ignore (wrapped.Index_ops.scan_keys k 16 (fun _ -> ()))
      done;
      let final = Check.run ~strict index in
      Format.printf "%a@." Check.pp_report final;
      Format.printf "ei check: %s — %d periodic checks (%d with errors), final %s %s@."
        index.Index_ops.name !periodic !bad
        (if Check.ok final then "clean" else "CORRUPT")
        (index.Index_ops.info ());
      if !bad > 0 || not (Check.ok final) then exit 1
  in
  let term =
    Term.(const run $ index_arg $ records_arg $ ops_arg $ every_arg $ strict_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Churn an index with random mutations and run the deep invariant sanitizer.")
    term

(* --- serve -------------------------------------------------------------- *)

let serve_cmd =
  let module Olc = Ei_olc.Btree_olc in
  let module Shard = Ei_shard.Shard in
  let module Serve = Ei_shard.Serve in
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Shard domains to spawn.")
  in
  let records_arg =
    Arg.(value & opt int 100_000 & info [ "records" ] ~doc:"Records to load.")
  in
  let ops_arg =
    Arg.(value & opt int 200_000
         & info [ "ops" ] ~doc:"Read and churn operations per phase.")
  in
  let bound_arg =
    Arg.(value & opt int 60
         & info [ "bound" ]
             ~doc:"Global soft memory bound as a percentage of the \
                   unconstrained BTreeOLC estimate for the load.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed for the workload.")
  in
  let wal_arg =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"DIR"
             ~doc:"Write-ahead-log directory: shards run durable (group \
                   commit, fingerprinted checkpoints) and recover from \
                   DIR on start.  Keys already recovered are rejected \
                   by the load phase as duplicates.")
  in
  let run shards records ops pct seed wal_dir =
    if shards < 1 then begin prerr_endline "need at least one shard"; exit 2 end;
    let module Wal = Ei_wal.Wal in
    let global_bound = records * 27 * pct / 100 in
    let table = Table.create ~key_len:8 () in
    let load =
      Olc.safe_loader ~key_len:8
        ~table_length:(fun () -> Table.length table)
        ~load:(Table.loader table)
    in
    let mk_part i =
      Registry.make
        ~name:(Printf.sprintf "olc-elastic/%d" i)
        ~key_len:8 ~load
        (Registry.Olc
           (Olc.Olc_elastic
              (Olc.default_elastic_config
                 ~size_bound:(max 1 (global_bound / shards)))))
    in
    let parts = Array.init shards mk_part in
    let router = Shard.create parts in
    let wal = Option.map (fun dir -> Wal.default_config ~dir) wal_dir in
    let supervisor =
      (* Durable shards need a supervisor: a WAL crash kills the domain
         and the rebuild path is recover-from-disk. *)
      Option.map
        (fun _ -> Serve.default_supervisor ~table ~rebuild:mk_part)
        wal
    in
    let serve =
      Serve.start
        ~coordinator:(Serve.default_coordinator ~global_bound)
        ?supervisor ?wal
        ?wal_restore:
          (Option.map
             (fun _ ~tid ~key -> Table.restore_row table ~tid ~key)
             wal)
        router
    in
    (match Serve.wal_recoveries serve with
    | [] -> ()
    | boot ->
      List.iter
        (fun (i, r) ->
          Printf.printf
            "shard %d: recovered ckpt %d (%d entries) + %d replayed, \
             last lsn %d%s%s\n"
            i r.Wal.r_ckpt_seq r.Wal.r_ckpt_entries r.Wal.r_replayed
            r.Wal.r_last_lsn
            (if r.Wal.r_torn > 0 then ", torn tail truncated" else "")
            (if r.Wal.r_clean then ", clean shutdown" else ""))
        boot);
    (* Graceful shutdown: SIGTERM / SIGINT request a drain instead of
       killing the process mid-batch.  The workload loop stops at the
       next chunk boundary; [Serve.stop] then joins the domains and
       closes the WAL writers — final fsync plus the clean-shutdown
       marker — and the process exits 0.  Acknowledged ops are on disk;
       the next start recovers them without replay surprises. *)
    let stop_req = Atomic.make false in
    let prev_term = ref Sys.Signal_default and prev_int = ref Sys.Signal_default in
    let request_stop _ = Atomic.set stop_req true in
    prev_term := Sys.signal Sys.sigterm (Sys.Signal_handle request_stop);
    prev_int := Sys.signal Sys.sigint (Sys.Signal_handle request_stop);
    let shed = ref 0 in
    let batched a =
      let n = Array.length a in
      let i = ref 0 in
      while !i < n && not (Atomic.get stop_req) do
        let len = min 512 (n - !i) in
        Array.iter
          (function
            | Serve.Applied _ -> ()
            | Serve.Rejected | Serve.Timed_out -> incr shed)
          (Serve.exec serve (Array.sub a !i len));
        i := !i + len
      done
    in
    let tids = Array.make records 0 in
    for s = 0 to records - 1 do
      tids.(s) <- Table.append table (Ycsb.key_of_seq s)
    done;
    let (), load_dt =
      Clock.time (fun () ->
          batched
            (Array.init records (fun s ->
                 Ei_shard.Serve.Insert (Ycsb.key_of_seq s, tids.(s)))))
    in
    Printf.printf "%d shard domain(s) + coordinator%s; global bound %.1f MiB\n"
      shards
      (if wal = None then "" else " + WAL")
      (Clock.mib global_bound);
    Printf.printf "load   %8d ops  %6.2f Mops\n" records
      (Clock.mops records load_dt);
    let rng = Ei_util.Rng.stream seed 0 in
    let (), read_dt =
      Clock.time (fun () ->
          batched
            (Array.init ops (fun _ ->
                 Serve.Find (Ycsb.key_of_seq (Ei_util.Rng.int rng records)))))
    in
    Printf.printf "read   %8d ops  %6.2f Mops\n" ops (Clock.mops ops read_dt);
    (* Churn: reads plus in-place updates (a tid of the same key). *)
    let (), churn_dt =
      Clock.time (fun () ->
          batched
            (Array.init ops (fun _ ->
                 let s = Ei_util.Rng.int rng records in
                 if Ei_util.Rng.int rng 2 = 0 then
                   Serve.Find (Ycsb.key_of_seq s)
                 else Serve.Update (Ycsb.key_of_seq s, tids.(s)))))
    in
    Printf.printf "churn  %8d ops  %6.2f Mops\n" ops (Clock.mops ops churn_dt);
    Serve.rebalance_now serve;
    let sizes = Serve.shard_sizes serve in
    let agg = Array.fold_left ( + ) 0 sizes in
    Array.iteri
      (fun i b ->
        Printf.printf "shard %d: %7.2f MiB  %s\n" i (Clock.mib b)
          ((Shard.parts router).(i).Index_ops.info ()))
      sizes;
    Printf.printf
      "aggregate %.2f MiB / bound %.2f MiB (%.2fx), %d coordinator pass(es)\n"
      (Clock.mib agg) (Clock.mib global_bound)
      (float_of_int agg /. float_of_int global_bound)
      (Serve.rebalances serve);
    if !shed > 0 then
      Printf.printf "%d operation(s) shed (rejected or timed out)\n" !shed;
    Serve.stop serve;
    Sys.set_signal Sys.sigterm !prev_term;
    Sys.set_signal Sys.sigint !prev_int;
    if Atomic.get stop_req then begin
      Printf.printf
        "interrupted: drained in-flight batches and shut down cleanly%s\n"
        (if wal = None then ""
         else " (WAL fsynced, clean-shutdown marker written)");
      exit 0
    end
  in
  let term =
    Term.(const run $ shards_arg $ records_arg $ ops_arg $ bound_arg $ seed_arg
          $ wal_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run a sharded elastic fleet with the global memory coordinator.")
    term

(* --- serve-net / bench-net ---------------------------------------------- *)

(* Shared address selection: a TCP port wins over the unix socket path. *)
let net_addr ~socket ~port ~host =
  if port > 0 then Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  else Unix.ADDR_UNIX socket

let net_addr_string = function
  | Unix.ADDR_UNIX p -> p
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let net_socket_arg =
  Arg.(value & opt string "/tmp/ei-net.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix socket path (ignored when --port is given).")

let net_port_arg =
  Arg.(value & opt int 0
       & info [ "port" ] ~doc:"TCP port (0 = use the unix socket).")

let net_host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~doc:"Host address for --port.")

let serve_net_cmd =
  let module Olc = Ei_olc.Btree_olc in
  let module Shard = Ei_shard.Shard in
  let module Serve = Ei_shard.Serve in
  let module Server = Ei_net.Server in
  let module Metrics = Ei_obs.Metrics in
  let module Trace = Ei_obs.Trace in
  let module Wal = Ei_wal.Wal in
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Shard domains to spawn.")
  in
  let records_arg =
    Arg.(value & opt int 0
         & info [ "records" ]
             ~doc:"Records to preload before accepting connections.")
  in
  let window_arg =
    Arg.(value & opt int 256
         & info [ "window" ]
             ~doc:"Per-connection pipelining window: requests pipelined \
                   past it are shed with a typed Busy reply instead of \
                   buffered unboundedly.")
  in
  let timeout_arg =
    Arg.(value & opt float 5.0
         & info [ "timeout-s" ]
             ~doc:"Serve.exec deadline per round; expired slots reply \
                   Timed_out (0 = no deadline).")
  in
  let wal_arg =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"DIR"
             ~doc:"Write-ahead-log directory: shards run durable and \
                   recover from DIR on start.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Enable the trace ring and dump Chrome trace_events \
                   JSON to FILE on shutdown.")
  in
  let run shards records socket port host window timeout_s wal_dir trace_out =
    if shards < 1 then begin prerr_endline "need at least one shard"; exit 2 end;
    Metrics.set_enabled true;
    if trace_out <> None then Trace.set_enabled true;
    let table = Table.create ~key_len:8 () in
    let load =
      Olc.safe_loader ~key_len:8
        ~table_length:(fun () -> Table.length table)
        ~load:(Table.loader table)
    in
    let mk_part i =
      Registry.make
        ~name:(Printf.sprintf "olc/%d" i)
        ~key_len:8 ~load (Registry.Olc Olc.Olc_std)
    in
    let router = Shard.create (Array.init shards mk_part) in
    let wal = Option.map (fun dir -> Wal.default_config ~dir) wal_dir in
    let supervisor =
      Option.map (fun _ -> Serve.default_supervisor ~table ~rebuild:mk_part) wal
    in
    let serve =
      Serve.start ?supervisor ?wal
        ?wal_restore:
          (Option.map
             (fun _ ~tid ~key -> Table.restore_row table ~tid ~key)
             wal)
        router
    in
    if records > 0 then begin
      let ops =
        Array.init records (fun s ->
            let k = Ycsb.key_of_seq s in
            Ei_shard.Serve.Insert (k, Table.append table k))
      in
      let i = ref 0 in
      while !i < records do
        let len = min 512 (records - !i) in
        ignore (Serve.exec serve (Array.sub ops !i len));
        i := !i + len
      done
    end;
    let config =
      {
        Server.default_config with
        window;
        exec_timeout_s =
          (if Float.compare timeout_s 0.0 <= 0 then None else Some timeout_s);
      }
    in
    let server =
      Server.start ~config ~serve ~table (net_addr ~socket ~port ~host)
    in
    Printf.printf
      "ei serve-net: %d shard(s)%s, window %d, %d record(s) preloaded, \
       listening on %s\n%!"
      shards
      (if wal = None then "" else " + WAL")
      window records
      (net_addr_string (Server.addr server));
    (* SIGTERM / SIGINT request a graceful drain: the listener closes,
       every live connection answers its already-decoded requests and
       flushes, then the fleet joins — no in-flight request loses its
       reply. *)
    let stop_req = Atomic.make false in
    let prev_term = ref Sys.Signal_default
    and prev_int = ref Sys.Signal_default in
    let request_stop _ = Atomic.set stop_req true in
    prev_term := Sys.signal Sys.sigterm (Sys.Signal_handle request_stop);
    prev_int := Sys.signal Sys.sigint (Sys.Signal_handle request_stop);
    while not (Atomic.get stop_req) do
      try Unix.sleepf 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Server.stop server;
    Serve.stop serve;
    Sys.set_signal Sys.sigterm !prev_term;
    Sys.set_signal Sys.sigint !prev_int;
    (match trace_out with
    | Some out ->
      let n = Trace.events () in
      Trace.write_json out;
      Printf.printf "wrote %s: %d events\n" out n
    | None -> ());
    let requests, shed, proto = Server.stats () in
    Printf.printf "drained: %d request(s) served, %d shed, %d protocol error(s)\n"
      requests shed proto
  in
  let term =
    Term.(const run $ shards_arg $ records_arg $ net_socket_arg $ net_port_arg
          $ net_host_arg $ window_arg $ timeout_arg $ wal_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "serve-net"
       ~doc:"Serve a sharded fleet over the wire protocol (unix or TCP \
             socket); SIGTERM drains gracefully.")
    term

let bench_net_cmd =
  let module Client = Ei_net.Client in
  let module Wire = Ei_net.Wire in
  let module Key = Ei_util.Key in
  let clients_arg =
    Arg.(value & opt int 4
         & info [ "clients" ] ~doc:"Concurrent client connections.")
  in
  let count_arg =
    Arg.(value & opt int 50_000
         & info [ "count" ] ~doc:"Requests per client.")
  in
  let mode_arg =
    Arg.(value
         & opt (enum [ ("closed", `Closed); ("open", `Open) ]) `Closed
         & info [ "mode" ]
             ~doc:"Load shape: closed keeps --window requests pipelined \
                   per client; open sends on a fixed --rate schedule so \
                   queueing delay shows up in the measured latency.")
  in
  let window_arg =
    Arg.(value & opt int 64
         & info [ "window" ] ~doc:"Closed-loop pipelining window per client.")
  in
  let rate_arg =
    Arg.(value & opt float 50_000.0
         & info [ "rate" ] ~doc:"Open-loop request rate per client (req/s).")
  in
  let results_arg =
    Arg.(value & opt string "BENCH_results.json"
         & info [ "results" ] ~docv:"FILE"
             ~doc:"JSON-Lines results file to append the measurement to.")
  in
  let run socket port host clients count mode window rate results =
    if clients < 1 || count < 1 then begin
      prerr_endline "need at least one client and one request";
      exit 2
    end;
    let addr = net_addr ~socket ~port ~host in
    let mode_name = match mode with `Closed -> "closed" | `Open -> "open" in
    (* Each client inserts a disjoint key range, so applied counts are
       deterministic (no cross-client duplicate rejections). *)
    let worker j () =
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let op i = Wire.Insert (Key.of_int ((j * count) + i)) in
          match mode with
          | `Closed -> Client.run_closed c ~window ~count ~op
          | `Open -> Client.run_open c ~rate ~count ~op)
    in
    match
      List.map Domain.join
        (List.init clients (fun j -> Domain.spawn (worker j)))
    with
    | exception Client.Protocol msg ->
      Printf.eprintf "protocol error: %s\n" msg;
      exit 1
    | exception Unix.Unix_error (e, fn, _) ->
      Printf.eprintf "cannot reach server at %s: %s (%s)\n"
        (net_addr_string addr) (Unix.error_message e) fn;
      exit 1
    | per_client ->
      let s = Client.merge_stats per_client in
      let mops =
        float_of_int s.Client.sent /. Float.max 1e-9 s.Client.elapsed_s /. 1e6
      in
      let q p = Client.quantile s.Client.lat_ns p in
      let us ns = float_of_int ns /. 1e3 in
      Printf.printf
        "ei bench-net: %s loop, %d client(s) x %d req against %s\n"
        mode_name clients count
        (net_addr_string addr);
      Printf.printf
        "  %8d sent  %.2f Mops  (applied %d, rejected %d, timed-out %d, \
         busy %d)\n"
        s.Client.sent mops s.Client.applied s.Client.rejected
        s.Client.timed_out s.Client.busy;
      Printf.printf "  latency p50 %8.1f us   p99 %8.1f us   p999 %8.1f us\n"
        (us (q 0.5)) (us (q 0.99)) (us (q 0.999));
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 results in
      Printf.fprintf oc
        "{\"name\": \"net-cli\", \"params\": {\"mode\": \"%s\", \"clients\": \
         \"%d\", \"count\": \"%d\", \"%s\": \"%s\"}, \"ops_per_sec\": %.0f, \
         \"bytes\": 0, \"scale\": 1, \"seed\": 0, \"p50_ns\": %d, \
         \"p99_ns\": %d, \"p999_ns\": %d}\n"
        mode_name clients count
        (match mode with `Closed -> "window" | `Open -> "rate")
        (match mode with
        | `Closed -> string_of_int window
        | `Open -> Printf.sprintf "%.0f" rate)
        (mops *. 1e6) (q 0.5) (q 0.99) (q 0.999);
      close_out oc
  in
  let term =
    Term.(const run $ net_socket_arg $ net_port_arg $ net_host_arg
          $ clients_arg $ count_arg $ mode_arg $ window_arg $ rate_arg
          $ results_arg)
  in
  Cmd.v
    (Cmd.info "bench-net"
       ~doc:"Closed- or open-loop load generator against a running ei \
             serve-net; exits nonzero on any protocol violation.")
    term

(* --- chaos ------------------------------------------------------------- *)

let chaos_cmd =
  let module Chaos = Ei_chaos.Chaos in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ]
             ~doc:"Seed driving the workload and every fault stream; a \
                   failing run replays exactly from its seed.")
  in
  let scale_arg =
    Arg.(value & opt float 1.0
         & info [ "scale" ]
             ~doc:"Workload scale factor (1.0 = full soak; CI smoke uses 0.05).")
  in
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Shard domains to spawn.")
  in
  let plan_arg =
    Arg.(value & opt (some string) None
         & info [ "plan" ]
             ~doc:"Fault plan as site=prob,... (defaults to the built-in \
                   soak plan covering every fault kind).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress progress lines.")
  in
  let wal_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "wal-dir" ] ~docv:"DIR"
             ~doc:"Run with durable shards: group-commit WAL under DIR \
                   (reset on entry), the WAL crash sites armed, and a \
                   post-soak recover-from-disk restart check.")
  in
  let kill_at_arg =
    Arg.(value & opt int 0
         & info [ "kill-at" ] ~docv:"ROUND"
             ~doc:"SIGKILL the whole process mid-batch at this round \
                   (requires --wal-dir; expect exit 137), then prove \
                   recovery with --verify-only from a fresh process.")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify-only" ]
             ~doc:"Skip the soak: recover the shards left in --wal-dir \
                   by a previous (killed) run, reconcile them against \
                   the on-disk acknowledgement journal, deep-validate.")
  in
  let run seed scale shards plan quiet wal_dir kill_at verify_only =
    if shards < 1 then begin prerr_endline "need at least one shard"; exit 2 end;
    if (kill_at > 0 || verify_only) && wal_dir = None then begin
      prerr_endline "--kill-at and --verify-only require --wal-dir";
      exit 2
    end;
    match (verify_only, wal_dir) with
    | true, Some dir ->
      let v = Chaos.verify ~shards ~dir () in
      Format.printf "%a%!" Chaos.pp_verify v;
      if Chaos.verify_ok v then print_endline "chaos verify: OK"
      else begin
        print_endline "chaos verify: FAILED";
        exit 1
      end
    | _ ->
      let plan =
        match plan with
        | None ->
          if wal_dir = None then Chaos.default_plan else Chaos.default_wal_plan
        | Some spec -> (
          match Ei_fault.Fault.parse_plan spec with
          | Ok p -> p
          | Error e ->
            prerr_endline e;
            exit 2)
      in
      let cfg = Chaos.default_config ~seed in
      let cfg =
        {
          cfg with
          Chaos.scale;
          shards;
          plan;
          progress = (if quiet then None else Some print_endline);
          wal_dir;
          kill_at;
        }
      in
      (* Failure artifacts: trace ring on and flight recorder armed, so
         a quarantine or WAL commit failure mid-soak dumps the events
         (and fault draws) leading up to it as ei-*.flight.json. *)
      Ei_obs.Trace.set_enabled true;
      Ei_obs.Flight.arm ~dir:"." ();
      let report = Chaos.run cfg in
      Format.printf "%a%!" Chaos.pp_report report;
      if Chaos.ok report then begin
        Ei_obs.Flight.disarm ();
        print_endline "chaos soak: OK"
      end
      else begin
        (* Re-arm first: routine injected-crash quarantines may have
           spent the dump cap; the end-state artifact must still land. *)
        Ei_obs.Flight.arm ~dir:"." ();
        Ei_obs.Flight.trigger ~reason:"chaos-failed"
          ~detail:(Format.asprintf "%a" Chaos.pp_report report);
        Ei_obs.Flight.disarm ();
        print_endline "chaos soak: FAILED";
        (match Ei_obs.Flight.last_dump () with
        | Some p -> Printf.printf "flight dump: %s\n" p
        | None -> ());
        Printf.printf
          "reproduce with: ei chaos --seed %d --scale %g --shards %d%s\n" seed
          scale shards
          (match wal_dir with Some d -> " --wal-dir " ^ d | None -> "");
        exit 1
      end
  in
  let term =
    Term.(const run $ seed_arg $ scale_arg $ shards_arg $ plan_arg $ quiet_arg
          $ wal_dir_arg $ kill_at_arg $ verify_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run the deterministic chaos soak: seeded fault injection \
             against the supervised shard fleet, with shadow-model \
             reconciliation and deep validation.  With --wal-dir the \
             shards are durable and the soak additionally proves crash \
             recovery (kill -9 via --kill-at, then --verify-only).")
    term

(* --- wal ---------------------------------------------------------------- *)

(* Read-only WAL forensics (plus one explicit repair): what an operator
   points at a durable shard's directory after a crash, before deciding
   to restart.  Everything rides on {!Ei_wal.Wal}'s total decoders —
   corrupt bytes are reported, never raised through. *)
let wal_cmd =
  let module Wal = Ei_wal.Wal in
  let dir_arg =
    Arg.(required & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"WAL root (the --wal value of ei serve / --wal-dir of ei \
                   chaos); each shard lives under DIR/shard<i>/.")
  in
  let shard_arg =
    Arg.(value & opt (some int) None
         & info [ "shard" ] ~docv:"N" ~doc:"Restrict to one shard.")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Exit non-zero unless every shard is recoverable: \
                   contiguous segments, no interior torn frame (a torn \
                   tail of the newest segment is legal — recovery \
                   truncates it), and a validating checkpoint whenever \
                   any checkpoint exists.")
  in
  let truncate_arg =
    Arg.(value & flag
         & info [ "truncate" ]
             ~doc:"Repair: truncate a torn tail of each shard's newest \
                   segment in place.  The only mutating mode.")
  in
  let manifest_arg =
    Arg.(value & flag
         & info [ "manifest" ]
             ~doc:"Print each shard's newest parseable checkpoint manifest \
                   as JSON and nothing else.")
  in
  let run dir shard verify truncate manifest =
    let shards =
      match shard with Some i -> [ i ] | None -> Wal.shards ~dir
    in
    if shards = [] then begin
      Printf.eprintf "no shards under %s\n" dir;
      exit 2
    end;
    if truncate then
      List.iter
        (fun i ->
          let n = Wal.truncate_torn ~dir ~shard:i in
          Printf.printf "shard%d: %s\n" i
            (if n = 0 then "no torn tail" else "torn tail truncated"))
        shards
    else if manifest then
      List.iter
        (fun i ->
          match Wal.manifest ~dir ~shard:i with
          | Some j -> print_endline (Ei_util.Mini_json.to_string j)
          | None -> Printf.printf "shard%d: no parseable manifest\n" i)
        shards
    else begin
      let bad = ref 0 in
      let problem fmt =
        Printf.ksprintf
          (fun s ->
            incr bad;
            Printf.printf "  PROBLEM: %s\n" s)
          fmt
      in
      List.iter
        (fun i ->
          let segs, ckpts, clean = Wal.inspect_shard ~dir ~shard:i in
          Printf.printf "shard%d: %d segment(s), %d checkpoint(s)%s\n" i
            (List.length segs) (List.length ckpts)
            (if clean then ", clean shutdown" else "");
          let nsegs = List.length segs in
          List.iteri
            (fun j s ->
              if not verify then
                Printf.printf "  %s: %s, %d byte(s)%s\n"
                  (Filename.basename s.Wal.si_path)
                  (if s.Wal.si_frames = 0 then
                     Printf.sprintf "empty (next lsn %d)" s.Wal.si_first_lsn
                   else
                     Printf.sprintf "lsn %d..%d, %d frame(s)"
                       s.Wal.si_first_lsn s.Wal.si_last_lsn s.Wal.si_frames)
                  s.Wal.si_bytes
                  (match s.Wal.si_torn with
                  | None -> ""
                  | Some (off, e) ->
                    Printf.sprintf " — TORN at byte %d (%s)" off e);
              match s.Wal.si_torn with
              | Some (off, e) when j < nsegs - 1 ->
                problem "interior segment %s torn at byte %d (%s)"
                  (Filename.basename s.Wal.si_path) off e
              | _ -> ())
            segs;
          (* contiguity: each segment resumes where the previous ended *)
          let rec gaps = function
            | a :: (b :: _ as rest) ->
              if
                a.Wal.si_frames > 0
                && b.Wal.si_first_lsn <> a.Wal.si_last_lsn + 1
              then
                problem "LSN gap: %s ends at %d, %s starts at %d"
                  (Filename.basename a.Wal.si_path)
                  a.Wal.si_last_lsn
                  (Filename.basename b.Wal.si_path)
                  b.Wal.si_first_lsn;
              gaps rest
            | _ -> ()
          in
          gaps segs;
          List.iter
            (fun c ->
              if not verify then
                Printf.printf
                  "  ckpt %d: lsn %d, %d entries, fingerprint %016x, \
                   bound %d%s\n"
                  c.Wal.ci_seq c.Wal.ci_lsn c.Wal.ci_count c.Wal.ci_fingerprint
                  c.Wal.ci_bound
                  (match c.Wal.ci_error with
                  | None -> ""
                  | Some e -> " — INVALID (" ^ e ^ ")"))
            ckpts;
          if ckpts <> [] && List.for_all (fun c -> c.Wal.ci_error <> None) ckpts
          then problem "every checkpoint is corrupt — no fallback left";
          (* replay must be able to reach the newest valid checkpoint *)
          (match
             ( List.find_opt (fun c -> c.Wal.ci_error = None) ckpts,
               List.find_opt (fun s -> s.Wal.si_frames > 0) segs )
           with
          | Some c, Some s when s.Wal.si_first_lsn > c.Wal.ci_lsn + 1 ->
            problem
              "LSN gap after checkpoint %d (covers %d): oldest segment \
               starts at %d"
              c.Wal.ci_seq c.Wal.ci_lsn s.Wal.si_first_lsn
          | _ -> ());
          if verify && !bad = 0 then Printf.printf "  recoverable\n")
        shards;
      if verify then
        if !bad = 0 then print_endline "wal verify: OK"
        else begin
          Printf.printf "wal verify: %d problem(s)\n" !bad;
          exit 1
        end
    end
  in
  let term =
    Term.(const run $ dir_arg $ shard_arg $ verify_arg $ truncate_arg
          $ manifest_arg)
  in
  Cmd.v
    (Cmd.info "wal"
       ~doc:"Inspect, verify or repair a durable shard's write-ahead log: \
             per-segment frame counts and LSN ranges, checkpoint manifests \
             with validation status, torn-tail detection (--verify) and \
             repair (--truncate).")
    term

(* --- stats -------------------------------------------------------------- *)

(* YCSB under the ei_obs metrics registry: the index is wrapped in
   {!Index_ops.observed}, so every point operation lands in a per-op
   latency histogram, on top of the structure-modification counters the
   instrumented libraries record on their own.  The exposition goes to
   stdout (run commentary to stderr), so the output pipes straight into
   a scrape file or [jq]. *)
let stats_cmd =
  let module Metrics = Ei_obs.Metrics in
  let workload_arg =
    Arg.(value & opt string "A" & info [ "w"; "workload" ] ~docv:"A..F" ~doc:"YCSB workload.")
  in
  let records_arg =
    Arg.(value & opt int 50_000 & info [ "records" ] ~doc:"Records to load.")
  in
  let ops_arg =
    Arg.(value & opt int 100_000 & info [ "ops" ] ~doc:"Transactions to run.")
  in
  let zipf_arg =
    Arg.(value & flag & info [ "zipfian" ] ~doc:"Zipfian key distribution (default uniform).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the registry as JSON instead of Prometheus text.")
  in
  let run index_name workload records ops zipfian json =
    let workload =
      match String.uppercase_ascii workload with
      | "A" -> Ycsb.A
      | "B" -> Ycsb.B
      | "C" -> Ycsb.C
      | "D" -> Ycsb.D
      | "E" -> Ycsb.E
      | "F" -> Ycsb.F
      | w -> Printf.ksprintf failwith "unknown workload %s" w
    in
    match kind_of_name ~approx_items:records ~key_len:8 index_name with
    | Error (`Msg m) -> prerr_endline m; exit 2
    | Ok kind ->
      Metrics.set_enabled true;
      (* Tracing on too: per-op root contexts feed the histogram
         exemplars, so --json can name the trace behind a p999. *)
      Ei_obs.Trace.set_enabled true;
      let table = Table.create ~key_len:8 () in
      let index = Registry.make ~key_len:8 ~load:(Table.loader table) kind in
      let observed = Index_ops.traced (Index_ops.observed ~prefix:"op" index) in
      let runner = Ycsb.create ~index:observed ~table ~record_count:records () in
      let (), load_dt = Clock.time (fun () -> Ycsb.load runner records) in
      let dist = if zipfian then Ycsb.Zipfian else Ycsb.Uniform in
      let (), dt =
        Clock.time (fun () -> ignore (Ycsb.run runner ~workload ~dist ~ops))
      in
      Printf.eprintf
        "%s: load %d recs %.2f Mops; txn-%s %d ops %.2f Mops; %.2f MiB %s\n"
        index.Index_ops.name records
        (Clock.mops records load_dt)
        (Ycsb.workload_name workload)
        ops (Clock.mops ops dt)
        (Clock.mib (index.Index_ops.memory_bytes ()))
        (index.Index_ops.info ());
      print_string (if json then Metrics.dump_json () else Metrics.dump_prometheus ())
  in
  let term =
    Term.(const run $ index_arg $ workload_arg $ records_arg $ ops_arg $ zipf_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a YCSB workload with the metrics registry enabled and \
             print the exposition (Prometheus text, or JSON with --json).")
    term

(* --- trace (Chrome trace_events capture) -------------------------------- *)

(* A tracing run over the sharded serving layer: load, churn, slash the
   global soft bound mid-churn via a one-shot coordinator pass, keep
   churning, then export the merged trace rings.  The periodic
   coordinator is deliberately NOT started — it would restore the
   original bound split on its next pass and blur the slash the trace is
   meant to show; [Serve.rebalance_with] delivers each split exactly
   once. *)
let obs_trace_cmd =
  let module Olc = Ei_olc.Btree_olc in
  let module Shard = Ei_shard.Shard in
  let module Serve = Ei_shard.Serve in
  let module Metrics = Ei_obs.Metrics in
  let module Trace = Ei_obs.Trace in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Shard domains to spawn.")
  in
  let records_arg =
    Arg.(value & opt int 50_000 & info [ "records" ] ~doc:"Records to load.")
  in
  let ops_arg =
    Arg.(value & opt int 100_000 & info [ "ops" ] ~doc:"Churn operations.")
  in
  let bound_arg =
    Arg.(value & opt int 60
         & info [ "bound" ]
             ~doc:"Global soft memory bound as a percentage of the \
                   unconstrained BTreeOLC estimate for the load; halved \
                   mid-churn.")
  in
  let workload_arg =
    Arg.(value & opt string "A"
         & info [ "w"; "workload" ] ~docv:"A..C"
             ~doc:"YCSB point-op mix for the churn phases: A = 50/50 \
                   read/update, B = 95/5, C = reads only.")
  in
  let out_arg =
    Arg.(value & opt string "ei.trace.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Output file (Chrome trace_events JSON; open in \
                   chrome://tracing or ui.perfetto.dev).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed for the workload.")
  in
  let run shards records ops pct workload out seed =
    if shards < 1 then begin prerr_endline "need at least one shard"; exit 2 end;
    let update_pct =
      match String.uppercase_ascii workload with
      | "A" -> 50
      | "B" -> 5
      | "C" -> 0
      | w -> Printf.ksprintf failwith "unknown workload %s (want A, B or C)" w
    in
    Metrics.set_enabled true;
    Trace.set_enabled true;
    let global_bound = records * 27 * pct / 100 in
    let table = Table.create ~key_len:8 () in
    let load =
      Olc.safe_loader ~key_len:8
        ~table_length:(fun () -> Table.length table)
        ~load:(Table.loader table)
    in
    let parts =
      Array.init shards (fun i ->
          Registry.make
            ~name:(Printf.sprintf "olc-elastic/%d" i)
            ~key_len:8 ~load
            (Registry.Olc
               (Olc.Olc_elastic
                  (Olc.default_elastic_config
                     ~size_bound:(max 1 (global_bound / shards))))))
    in
    let router = Shard.create parts in
    let serve = Serve.start router in
    let shed = ref 0 in
    let batched a =
      let n = Array.length a in
      let i = ref 0 in
      while !i < n do
        let len = min 512 (n - !i) in
        Array.iter
          (function
            | Serve.Applied _ -> ()
            | Serve.Rejected | Serve.Timed_out -> incr shed)
          (Serve.exec serve (Array.sub a !i len));
        i := !i + len
      done
    in
    let tids = Array.make records 0 in
    for s = 0 to records - 1 do
      tids.(s) <- Table.append table (Ycsb.key_of_seq s)
    done;
    batched
      (Array.init records (fun s ->
           Serve.Insert (Ycsb.key_of_seq s, tids.(s))));
    (* One explicit coordinator pass delivers the configured split. *)
    Serve.rebalance_with serve (Serve.default_coordinator ~global_bound);
    let rng = Ei_util.Rng.stream seed 0 in
    let churn n =
      batched
        (Array.init n (fun _ ->
             let s = Ei_util.Rng.int rng records in
             if Ei_util.Rng.int rng 100 < update_pct then
               Serve.Update (Ycsb.key_of_seq s, tids.(s))
             else Serve.Find (Ycsb.key_of_seq s)))
    in
    churn (ops / 2);
    (* Mid-flight slash: re-split half the budget, forcing the fleet
       into the shrinking state while the second churn phase runs. *)
    Serve.rebalance_with serve
      (Serve.default_coordinator ~global_bound:(max 1 (global_bound / 2)));
    churn (ops - (ops / 2));
    Serve.stop serve;
    let events = Trace.events () in
    Trace.write_json out;
    Printf.printf
      "wrote %s: %d events (%d elastic transitions, %d batches); bound \
       %.1f MiB slashed to %.1f MiB mid-churn\n"
      out events
      (Metrics.counter_value (Metrics.counter "olc.transitions"))
      (Serve.batches serve)
      (Clock.mib global_bound)
      (Clock.mib (global_bound / 2));
    if !shed > 0 then
      Printf.printf "%d operation(s) shed (rejected or timed out)\n" !shed;
    if events = 0 then begin
      prerr_endline "empty trace: no events were recorded";
      exit 1
    end
  in
  let term =
    Term.(const run $ shards_arg $ records_arg $ ops_arg $ bound_arg
          $ workload_arg $ out_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a sharded YCSB workload with tracing on, slash the \
             global bound mid-churn, and dump Chrome trace_events JSON.")
    term

(* --- timeline / top ------------------------------------------------------ *)

(* Shared fleet driver for the timeline-centric commands: the same
   sharded YCSB load / churn / mid-flight bound slash / churn shape as
   [ei trace], with a [phase] callback at every boundary so the caller
   can cut timeline frames (ei timeline) or refresh a live view (ei
   top), and an optional WAL so the captured flows include the
   durability leg.  Each [phase l] call closes the window named [l]. *)
let run_obs_fleet ~shards ~records ~ops ~update_pct ~pct ~seed ?wal_dir ~phase
    () =
  let module Olc = Ei_olc.Btree_olc in
  let module Shard = Ei_shard.Shard in
  let module Serve = Ei_shard.Serve in
  let module Wal = Ei_wal.Wal in
  let global_bound = records * 27 * pct / 100 in
  let table = Table.create ~key_len:8 () in
  let load =
    Olc.safe_loader ~key_len:8
      ~table_length:(fun () -> Table.length table)
      ~load:(Table.loader table)
  in
  let parts =
    Array.init shards (fun i ->
        Registry.make
          ~name:(Printf.sprintf "olc-elastic/%d" i)
          ~key_len:8 ~load
          (Registry.Olc
             (Olc.Olc_elastic
                (Olc.default_elastic_config
                   ~size_bound:(max 1 (global_bound / shards))))))
  in
  let router = Shard.create parts in
  let wal = Option.map (fun dir -> Wal.default_config ~dir) wal_dir in
  let serve =
    Serve.start ?wal
      ?wal_restore:
        (Option.map
           (fun _ ~tid ~key -> Table.restore_row table ~tid ~key)
           wal)
      router
  in
  let shed = ref 0 in
  let batched a =
    let n = Array.length a in
    let i = ref 0 in
    while !i < n do
      let len = min 512 (n - !i) in
      Array.iter
        (function
          | Serve.Applied _ -> ()
          | Serve.Rejected | Serve.Timed_out -> incr shed)
        (Serve.exec serve (Array.sub a !i len));
      i := !i + len
    done
  in
  let tids = Array.make records 0 in
  for s = 0 to records - 1 do
    tids.(s) <- Table.append table (Ycsb.key_of_seq s)
  done;
  batched
    (Array.init records (fun s -> Serve.Insert (Ycsb.key_of_seq s, tids.(s))));
  Serve.rebalance_with serve (Serve.default_coordinator ~global_bound);
  phase "load";
  let rng = Ei_util.Rng.stream seed 0 in
  let churn n =
    batched
      (Array.init n (fun _ ->
           let s = Ei_util.Rng.int rng records in
           if Ei_util.Rng.int rng 100 < update_pct then
             Serve.Update (Ycsb.key_of_seq s, tids.(s))
           else Serve.Find (Ycsb.key_of_seq s)))
  in
  churn (ops / 2);
  phase "churn";
  Serve.rebalance_with serve
    (Serve.default_coordinator ~global_bound:(max 1 (global_bound / 2)));
  churn (ops - (ops / 2));
  phase "churn-slashed";
  Serve.stop serve;
  phase "drain";
  !shed

let update_pct_of_workload w =
  match String.uppercase_ascii w with
  | "A" -> 50
  | "B" -> 5
  | "C" -> 0
  | w -> Printf.ksprintf failwith "unknown workload %s (want A, B or C)" w

let obs_timeline_cmd =
  let module Metrics = Ei_obs.Metrics in
  let module Trace = Ei_obs.Trace in
  let module Timeline = Ei_obs.Timeline in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Shard domains to spawn.")
  in
  let records_arg =
    Arg.(value & opt int 50_000 & info [ "records" ] ~doc:"Records to load.")
  in
  let ops_arg =
    Arg.(value & opt int 100_000 & info [ "ops" ] ~doc:"Churn operations.")
  in
  let bound_arg =
    Arg.(value & opt int 60
         & info [ "bound" ]
             ~doc:"Global soft memory bound as a percentage of the \
                   unconstrained BTreeOLC estimate for the load; halved \
                   mid-churn.")
  in
  let workload_arg =
    Arg.(value & opt string "A"
         & info [ "w"; "workload" ] ~docv:"A..C"
             ~doc:"YCSB point-op mix for the churn phases.")
  in
  let interval_arg =
    Arg.(value & opt float 0.05
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Periodic ticker interval between phase boundaries \
                   (0 disables the ticker; phase frames remain).")
  in
  let out_arg =
    Arg.(value & opt string "-"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Output file for the JSON-Lines frames (- = stdout).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed for the workload.")
  in
  let wal_arg =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"DIR"
             ~doc:"Run the fleet durable (group-commit WAL under DIR) so \
                   the captured windows include the WAL counters.")
  in
  let run shards records ops pct workload interval out seed wal_dir =
    if shards < 1 then begin prerr_endline "need at least one shard"; exit 2 end;
    let update_pct = update_pct_of_workload workload in
    Metrics.set_enabled true;
    (* Tracing on too: span contexts ride the same run, so the frames'
       histograms carry exemplar trace ids. *)
    Trace.set_enabled true;
    Timeline.set_enabled true;
    Timeline.capture ~label:"start" ();
    if Float.compare interval 0.0 > 0 then
      Timeline.start_ticker ~interval_s:interval;
    let shed =
      run_obs_fleet ~shards ~records ~ops ~update_pct ~pct ~seed ?wal_dir
        ~phase:(fun l -> Timeline.capture ~label:l ())
        ()
    in
    Timeline.stop_ticker ();
    let frames = List.length (Timeline.frames ()) in
    (match out with
    | "-" -> print_string (Timeline.export_jsonl ())
    | path -> Timeline.write_jsonl path);
    Printf.eprintf
      "%s%d frame(s) over %d op(s) on %d shard(s), workload %s%s\n"
      (if String.equal out "-" then "" else Printf.sprintf "wrote %s: " out)
      frames ops shards workload
      (if shed > 0 then Printf.sprintf "; %d op(s) shed" shed else "");
    if frames = 0 then begin
      prerr_endline "empty timeline: no frames were captured";
      exit 1
    end
  in
  let term =
    Term.(const run $ shards_arg $ records_arg $ ops_arg $ bound_arg
          $ workload_arg $ interval_arg $ out_arg $ seed_arg $ wal_arg)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Run a sharded YCSB workload with the telemetry timeline on \
             and dump the frame ring as JSON-Lines: per-window op-mix \
             counter deltas, queue-depth gauges and windowed latency \
             quantiles, cut at phase boundaries and on a periodic ticker.")
    term

(* Live per-shard view rendered from the newest timeline frame: op-mix
   deltas and queue depth per shard plus windowed latency quantiles,
   refreshed in place while the workload domain runs.  --once renders a
   single frame without terminal control sequences (the CI smoke). *)
let obs_top_cmd =
  let module Metrics = Ei_obs.Metrics in
  let module Timeline = Ei_obs.Timeline in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Shard domains to spawn.")
  in
  let records_arg =
    Arg.(value & opt int 50_000 & info [ "records" ] ~doc:"Records to load.")
  in
  let ops_arg =
    Arg.(value & opt int 200_000 & info [ "ops" ] ~doc:"Churn operations.")
  in
  let bound_arg =
    Arg.(value & opt int 60
         & info [ "bound" ]
             ~doc:"Global soft memory bound as a percentage of the \
                   unconstrained BTreeOLC estimate; halved mid-churn.")
  in
  let workload_arg =
    Arg.(value & opt string "A"
         & info [ "w"; "workload" ] ~docv:"A..C"
             ~doc:"YCSB point-op mix for the churn phases.")
  in
  let interval_arg =
    Arg.(value & opt float 0.5
         & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh interval.")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Run the workload to completion, render the final \
                   frame once and exit (no terminal control; for CI).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed for the workload.")
  in
  let render ~shards ~clear fr =
    let b = Buffer.create 512 in
    if clear then Buffer.add_string b "\027[2J\027[H";
    Printf.bprintf b "ei top — frame %d%s\n" fr.Timeline.fr_seq
      (if String.equal fr.Timeline.fr_label "" then ""
       else Printf.sprintf " (%s)" fr.Timeline.fr_label);
    Printf.bprintf b "%5s %10s %10s %10s %8s\n" "shard" "reads" "writes"
      "scans" "queue";
    for i = 0 to shards - 1 do
      let c k =
        Option.value ~default:0
          (List.assoc_opt
             (Printf.sprintf "serve.shard%d.%s" i k)
             fr.Timeline.fr_counters)
      in
      let q =
        Option.value ~default:0
          (List.assoc_opt
             (Printf.sprintf "serve.shard%d.queue_depth" i)
             fr.Timeline.fr_gauges)
      in
      Printf.bprintf b "%5d %10d %10d %10d %8d\n" i (c "reads") (c "writes")
        (c "scans") q
    done;
    if fr.Timeline.fr_hists <> [] then begin
      Printf.bprintf b "%-24s %8s %8s %8s %8s %8s\n" "histogram (window)"
        "count" "p50" "p99" "p999" "max";
      List.iter
        (fun (name, h) ->
          Printf.bprintf b "%-24s %8d %8d %8d %8d %8d\n" name
            h.Timeline.hf_count h.Timeline.hf_p50 h.Timeline.hf_p99
            h.Timeline.hf_p999 h.Timeline.hf_max)
        fr.Timeline.fr_hists
    end;
    print_string (Buffer.contents b);
    flush stdout
  in
  let run shards records ops pct workload interval once seed =
    if shards < 1 then begin prerr_endline "need at least one shard"; exit 2 end;
    let update_pct = update_pct_of_workload workload in
    Metrics.set_enabled true;
    Timeline.set_enabled true;
    Timeline.capture ~label:"start" ();
    if once then begin
      let shed =
        run_obs_fleet ~shards ~records ~ops ~update_pct ~pct ~seed
          ~phase:(fun l -> Timeline.capture ~label:l ())
          ()
      in
      (* The drain window is empty by construction; show the newest
         frame that actually saw traffic. *)
      let busy fr = fr.Timeline.fr_counters <> [] in
      (match List.find_opt busy (List.rev (Timeline.frames ())) with
      | Some fr -> render ~shards ~clear:false fr
      | None ->
        prerr_endline "no timeline frame captured";
        exit 1);
      if shed > 0 then Printf.printf "%d op(s) shed\n" shed
    end
    else begin
      let done_flag = Atomic.make false in
      let worker =
        Domain.spawn (fun () ->
            let shed =
              run_obs_fleet ~shards ~records ~ops ~update_pct ~pct ~seed
                ~phase:(fun _ -> ())
                ()
            in
            Atomic.set done_flag true;
            shed)
      in
      while not (Atomic.get done_flag) do
        Unix.sleepf interval;
        Timeline.capture ~label:"top" ();
        match Timeline.latest () with
        | Some fr -> render ~shards ~clear:true fr
        | None -> ()
      done;
      let shed = Domain.join worker in
      Timeline.capture ~label:"final" ();
      (match Timeline.latest () with
      | Some fr -> render ~shards ~clear:true fr
      | None -> ());
      if shed > 0 then Printf.printf "%d op(s) shed\n" shed
    end
  in
  let term =
    Term.(const run $ shards_arg $ records_arg $ ops_arg $ bound_arg
          $ workload_arg $ interval_arg $ once_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live per-shard telemetry view: op-mix deltas, queue depth \
             and windowed latency quantiles from the newest timeline \
             frame, refreshed while a YCSB workload runs (--once for a \
             single non-interactive render).")
    term

(* --- sim ---------------------------------------------------------------- *)

(* Deterministic simulation testing (ei_sim): differential op tapes
   against the pure oracle, schedule exploration over the production
   yield points, and perturbed chaos rounds over the serving stack.
   Every failure is shrunk and written as a replayable .sim.json
   artifact; [ei sim --replay FILE] re-executes one. *)
let sim_cmd =
  let module Sim = Ei_sim.Sim in
  let module Tape = Ei_sim.Tape in
  let module Sched = Ei_sim.Sched in
  let engine_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"ENGINE"
             ~doc:"$(b,diff) (differential tape), $(b,sched) (schedule \
                   exploration) or $(b,serve) (perturbed chaos rounds). \
                   Omit when using --replay.")
  in
  let subject_doc =
    "Sim subject: " ^ String.concat ", " Sim.subject_names ^ "."
  in
  let a_arg =
    Arg.(value & opt string "oracle" & info [ "a" ] ~docv:"SUBJECT" ~doc:subject_doc)
  in
  let b_arg =
    Arg.(value & opt string "btree" & info [ "b" ] ~docv:"SUBJECT" ~doc:subject_doc)
  in
  let ops_arg =
    Arg.(value & opt int 40_000 & info [ "ops" ] ~doc:"Tape length (diff).")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ]
             ~doc:"Seed for the tape / schedule sampling / perturbed \
                   rounds; a failing run replays exactly from its \
                   artifact.")
  in
  let gen_arg =
    Arg.(value & opt string "default"
         & info [ "gen" ]
             ~doc:"Tape generator (diff): default, elastic (adds bound \
                   retunes; enables bound-compliance checks), or faulty \
                   (adds transient-fault windows).")
  in
  let bound_arg =
    Arg.(value & opt int (48 * 1024)
         & info [ "bound" ]
             ~doc:"Elastic size bound in bytes: seeds elastic subjects \
                   and centres the elastic generator's bound sweep.")
  in
  let slack_arg =
    Arg.(value & opt float 4.0
         & info [ "slack" ]
             ~doc:"Bound-compliance slack: checkpoints require \
                   memory <= slack * bound (elastic subjects only).")
  in
  let scenario_arg =
    Arg.(value & opt string "olc-race"
         & info [ "scenario" ] ~docv:"NAME"
             ~doc:"Scheduler scenario (sched): olc-race, olc-convert-scan, \
                   olc-multi-find, wal-torn, wal-fsync, net-pipeline or \
                   lost-update (the planted-race self-test).")
  in
  let rounds_arg =
    Arg.(value & opt int 50
         & info [ "rounds" ]
             ~doc:"Random schedules (sched) or perturbed chaos rounds \
                   (serve) to sample.")
  in
  let shards_arg =
    Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Shard domains (serve).")
  in
  let scale_arg =
    Arg.(value & opt float 0.02
         & info [ "scale" ] ~doc:"Chaos workload scale factor (serve).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the shrunk repro as a .sim.json artifact on \
                   failure.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a .sim.json artifact instead of running an \
                   engine; exits 1 if it still reproduces.")
  in
  let run engine a b ops seed gen bound slack scenario rounds shards scale out
      replay =
    (* Any engine (or a replay) that trips an invariant or quarantines a
       shard leaves an ei-*.flight.json next to the .sim.json repro. *)
    Ei_obs.Trace.set_enabled true;
    Ei_obs.Flight.arm ~dir:"." ();
    let write art =
      match out with
      | None -> ()
      | Some path ->
        Sim.write_artifact ~path art;
        Printf.printf "wrote %s\n" path
    in
    match (replay, engine) with
    | Some path, _ -> (
      match Sim.replay_file ~path with
      | Error e ->
        prerr_endline e;
        exit 2
      | Ok (true, msg) ->
        Printf.printf "%s: still reproduces\n%s\n" path msg;
        exit 1
      | Ok (false, msg) ->
        Printf.printf "%s: no longer reproduces\n%s\n" path msg)
    | None, Some "diff" ->
      let subj name =
        match Sim.subject_of_name ~bound ~key_len:8 name with
        | Ok s -> s
        | Error e ->
          prerr_endline e;
          exit 2
      in
      let sa = subj a and sb = subj b in
      let g =
        match gen with
        | "default" -> Tape.default_gen ~ops ()
        | "elastic" -> Tape.elastic_gen ~ops ~base_bound:bound ()
        | "faulty" -> Tape.faulty_gen ~ops ()
        | g ->
          prerr_endline ("unknown generator: " ^ g);
          exit 2
      in
      let check_mem =
        (match gen with "elastic" -> true | _ -> false)
        && sa.Sim.s_elastic && sb.Sim.s_elastic
      in
      let tape = Tape.generate ~seed g in
      (match Sim.diff_pair ~slack ~check_mem sa sb tape with
      | None ->
        Printf.printf "ei sim diff: %s vs %s agree over %d op(s) (seed %d)\n"
          a b (Array.length tape.Tape.ops) seed
      | Some _ ->
        let small = Sim.shrink_tape ~slack ~check_mem sa sb tape in
        let d =
          match Sim.diff_pair ~slack ~check_mem sa sb small with
          | Some d -> d
          | None ->
            prerr_endline "shrunk tape no longer diverges (unstable repro)";
            exit 2
        in
        let divergence = Sim.pp_divergence ~a ~b d in
        Printf.printf "ei sim diff: DIVERGENCE (shrunk to %d op(s))\n%s\n"
          (Array.length small.Tape.ops)
          divergence;
        write (Sim.A_diff { tape = small; a; b; bound; slack; check_mem; divergence });
        exit 1)
    | None, Some "sched" -> (
      match Sim.scenario scenario with
      | None ->
        Printf.eprintf "unknown scenario %s (have: %s)\n" scenario
          (String.concat ", " (Sim.scenario_names ()));
        exit 2
      | Some mk -> (
        match Sched.explore ~seed ~rounds mk with
        | None ->
          Printf.printf
            "ei sim sched: %s survived %d random schedule(s) (seed %d)\n"
            scenario rounds seed
        | Some f ->
          let small = Sched.shrink ~schedule:f.Sched.schedule mk in
          Printf.printf
            "ei sim sched: %s FAILED (round %d)\n%s\nshrunk schedule \
             (%d choice(s)): %s\n"
            scenario f.Sched.round f.Sched.error (List.length small)
            (String.concat " " (List.map string_of_int small));
          write
            (Sim.A_sched
               { scenario; seed; schedule = small; error = f.Sched.error });
          exit 1))
    | None, Some "serve" -> (
      match Sim.explore_serve ~shards ~scale ~seed ~rounds () with
      | None ->
        Printf.printf
          "ei sim serve: %d perturbed round(s) clean (seed %d, %d \
           shard(s), scale %g)\n"
          rounds seed shards scale
      | Some (round_seed, error) ->
        Printf.printf "ei sim serve: FAILED (round seed %d)\n%s\n" round_seed
          error;
        write (Sim.A_serve { seed = round_seed; shards; scale; error });
        exit 1)
    | None, Some e ->
      prerr_endline ("unknown engine: " ^ e ^ " (want diff, sched or serve)");
      exit 2
    | None, None ->
      prerr_endline "need an ENGINE (diff, sched or serve) or --replay FILE";
      exit 2
  in
  let term =
    Term.(const run $ engine_arg $ a_arg $ b_arg $ ops_arg $ seed_arg $ gen_arg
          $ bound_arg $ slack_arg $ scenario_arg $ rounds_arg $ shards_arg
          $ scale_arg $ out_arg $ replay_arg)
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Deterministic simulation testing: differential tapes against \
             the oracle, schedule exploration, perturbed chaos — with \
             ddmin-shrunk replayable .sim.json repros.")
    term

(* --- analyze ------------------------------------------------------------ *)

(* The ei_race static analyzer behind the CLI: scan the typedtrees
   (.cmt files) of the concurrent libraries for lock-discipline, yield
   -point and shared-state findings.  Roots default to the five
   concurrent libraries and are resolved against _build/default, so
   [dune build @lib/all && ei analyze] works from a checkout. *)
let analyze_cmd =
  let roots_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"DIR|FILE.cmt"
             ~doc:"Directories (searched recursively for .cmt files) or \
                   single .cmt files; given paths are tried as-is, then \
                   under _build/default.  Defaults to the concurrent \
                   libraries: lib/olc lib/shard lib/core lib/fault \
                   lib/obs.")
  in
  let baseline_arg =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Baseline file of accepted findings (one \
                   $(i,rule file slug) per line); matching findings are \
                   suppressed, unmatched entries are reported as stale.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit findings and the shared-state inventory as JSON.")
  in
  let inventory_arg =
    Arg.(value & flag
         & info [ "inventory" ]
             ~doc:"Also print the shared-state inventory (every mutable \
                   datum with its declared guard).")
  in
  let rules_arg =
    Arg.(value & flag
         & info [ "rules" ] ~doc:"Describe the rule families and exit.")
  in
  let run roots baseline json inventory rules =
    if rules then print_endline (Analyze_rules.rules_help ())
    else
      match Analyze_driver.execute ?baseline_file:baseline roots with
      | Error msg ->
        prerr_endline ("ei analyze: " ^ msg);
        exit 2
      | Ok r ->
        if json then print_endline (Analyze_driver.json_string r)
        else Analyze_driver.print_text ~show_inventory:inventory r;
        exit (Analyze_driver.exit_code r)
  in
  let term =
    Term.(const run $ roots_arg $ baseline_arg $ json_arg $ inventory_arg
          $ rules_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the ei_race concurrency-discipline static analyzer over \
             the libraries' typedtrees (.cmt files).")
    term

(* --- volumes ----------------------------------------------------------- *)

let volumes_cmd =
  let days_arg = Arg.(value & opt int 60 & info [ "days" ] ~doc:"Days to model.") in
  let run days =
    let v = Ei_workload.Datagen.daily_volumes ~days () in
    Array.iteri (fun d x -> Printf.printf "day %3d: %5.2fx\n" d x) v;
    let mean, a15, a20, mx = Ei_workload.Datagen.stats v in
    Printf.printf "mean %.2f, days>=1.5x: %d, days>=2x: %d, max %.2fx\n" mean a15 a20 mx
  in
  Cmd.v (Cmd.info "volumes" ~doc:"Print the Fig-1 style daily volume model.")
    Term.(const run $ days_arg)

let () =
  let info =
    Cmd.info "ei" ~version:"1.0.0"
      ~doc:"Elastic indexes: dynamic space vs. query efficiency tuning."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            ycsb_cmd;
            ingest_cmd;
            volumes_cmd;
            check_cmd;
            serve_cmd;
            serve_net_cmd;
            bench_net_cmd;
            chaos_cmd;
            wal_cmd;
            stats_cmd;
            obs_trace_cmd;
            obs_timeline_cmd;
            obs_top_cmd;
            sim_cmd;
            analyze_cmd;
          ]))
