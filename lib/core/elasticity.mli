(** The B+-tree elasticity algorithm (§4 of the paper).

    The algorithm keeps the index size near a soft bound: it enters the
    {e shrinking} state when the tracked size reaches
    [shrink_fraction * size_bound] and — with hysteresis — the
    {e expanding} state when the size falls below
    [expand_fraction * size_bound], returning to {e normal} once no
    compact leaves remain.

    Conversions piggyback on structure modifications: overflowing
    standard leaves convert to SeqTrees of twice the capacity instead of
    splitting (shrinking state); overflowing compact leaves double their
    capacity up to [max_compact_capacity]; underflowing compact leaves
    walk back down the progression; and in the expanding state a search
    reaching a compact leaf randomly splits it. *)

type state = Normal | Shrinking | Expanding

val state_name : state -> string

val state_equal : state -> state -> bool
(** Monomorphic state equality (hot paths must not use polymorphic
    comparison; the ei_lint poly-compare rule enforces this). *)

type config = {
  size_bound : int;                 (** soft index size bound, bytes *)
  shrink_fraction : float;          (** enter shrinking at this * bound *)
  expand_fraction : float;          (** enter expanding below this * bound *)
  initial_compact_capacity : int;   (** first SeqTree capacity (2n) *)
  max_compact_capacity : int;       (** compact capacity cap (128) *)
  seq_levels : int;                 (** BlindiTree levels (2) *)
  breathing : int;                  (** breathing slack (4) *)
  search_split_probability : float; (** expansion-state split chance *)
  cold_sweep_period : int;
  (** operations between cold-compaction sweeps; 0 disables the
      access-aware policy variant (§4 design space) *)
  cold_sweep_batch : int;           (** leaves inspected per sweep *)
  seed : int;
  fault_site : string;
  (** {!Ei_fault.Fault} site name for injected memory-pressure spikes
      (the live bound is halved when the site fires at a state-machine
      consultation); [""] (the default) disables the site *)
}

val default_config : size_bound:int -> config
(** The paper's §6.1 parameters: shrink at 90%, expand below 75%,
    capacities 32..128, tree levels 2, breathing 4. *)

type t

val create : std_capacity:int -> config -> t
(** [std_capacity] is the standard-leaf capacity of the tree the policy
    will drive. *)

val state : t -> state
val transitions : t -> int
(** Number of state transitions so far. *)

val size_bound : t -> int
(** The current soft bound in bytes. *)

val slashes : t -> int
(** Injected bound slashes absorbed so far (0 without a [fault_site]). *)

val set_size_bound : t -> int -> unit
(** Retune the soft bound on a live policy (the elastic memory
    coordinator's lever).  Takes effect at the next state-machine
    consultation; requires a positive bound. *)

val policy : t -> Ei_btree.Policy.t
(** The leaf policy implementing the algorithm, to plug into
    {!Ei_btree.Btree.create}. *)
