(* Elastic skip list: the elastic index framework (§3) applied to a
   second base index, demonstrating that the design is not specific to
   B+-trees.

   A standard skip list stores one key per node (internal key storage).
   Under memory pressure the elastic skip list converts *runs* of
   consecutive singleton nodes into a single segment node whose payload
   is a SeqTree — the same compact, indirect-key representation the
   elastic B+-tree uses — indexed by one tower instead of ~2n towers.
   When pressure subsides, underflowing segments dissolve back into
   singletons, and in the expanding state a search that lands in a
   segment may randomly dissolve it (mirroring §4's expansion rule).

   Node payloads:
   - [Single (key, tid)]: a classic skip-list entry, key stored inline;
   - [Segment seqtree]: 2n..max_capacity keys stored indirectly.

   The skip-list ordering key of a segment node is its minimum key,
   loaded from the table when needed (the indirect-access cost).  The
   same state machine as the elastic B+-tree drives conversions, fed by
   an incrementally tracked memory total under the explicit size model. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Invariant = Ei_util.Invariant
module Seqtree = Ei_blindi.Seqtree
module Memmodel = Ei_storage.Memmodel
module Metrics = Ei_obs.Metrics
module Trace = Ei_obs.Trace

let max_level = 24

(* --- Observability (shared across instances) -------------------------- *)

let c_transitions = Metrics.counter "skiplist.transitions"
let c_conversions = Metrics.counter "skiplist.conversions"

let ev_state =
  Trace.define ~cat:"elastic" ~arg0:"state" ~arg1:"bytes" "skiplist.state"

(* Serial structure: a list and its nodes are owned by one domain at a
   time ({!Ei_shard.Serve} gives each part its own domain and queue). *)
type payload =
  | Single of { key : string; mutable tid : int }
  | Segment of Seqtree.t
[@@ei.single_domain]

type node = {
  mutable payload : payload;
  forward : node option array;
}
[@@ei.single_domain]

type state = Normal | Shrinking | Expanding

type config = {
  size_bound : int;
  shrink_fraction : float;
  expand_fraction : float;
  segment_capacity : int;        (* capacity of a fresh segment *)
  max_segment_capacity : int;
  seq_levels : int;
  breathing : int;
  search_split_probability : float;
  seed : int;
}

let default_config ~size_bound =
  {
    size_bound;
    shrink_fraction = 0.9;
    expand_fraction = 0.75;
    segment_capacity = 32;
    max_segment_capacity = 128;
    seq_levels = 2;
    breathing = 4;
    search_split_probability = 1.0 /. 32.0;
    seed = 0xe1a5;
  }

type t = {
  key_len : int;
  mutable config : config;
  (* mutable so a coordinator can retune [size_bound] on a live list *)
  load : int -> string;
  rng : Rng.t;
  head : node;
  mutable level : int;
  mutable items : int;
  mutable bytes : int;
  mutable segments : int;
  mutable state : state;
  mutable transitions : int;
  mutable conversions : int;
}
[@@ei.single_domain]

let state_name = function
  | Normal -> "normal"
  | Shrinking -> "shrinking"
  | Expanding -> "expanding"

(* Monomorphic equality: state tests sit on hot paths and must not go
   through the polymorphic comparator (ei_lint poly-compare rule). *)
let state_equal a b =
  match (a, b) with
  | Normal, Normal | Shrinking, Shrinking | Expanding, Expanding -> true
  | (Normal | Shrinking | Expanding), _ -> false

let create ~key_len ~load config () =
  assert (Float.compare config.expand_fraction config.shrink_fraction < 0);
  {
    key_len;
    config;
    load;
    rng = Rng.create config.seed;
    head =
      {
        payload = Single { key = ""; tid = -1 };
        forward = Array.make max_level None;
      };
    level = 1;
    items = 0;
    bytes = 0;
    segments = 0;
    state = Normal;
    transitions = 0;
  conversions = 0;
  }

let count t = t.items

let key_len (t : t) = t.key_len
let memory_bytes t = t.bytes
let segments t = t.segments
let state t = t.state
let config t = t.config
let size_bound t = t.config.size_bound

let set_size_bound t bound =
  assert (bound > 0);
  t.config <- { t.config with size_bound = bound }
let load t = t.load

(* Walk the level-0 payloads in key order (sanitizer support). *)
let fold_payloads t f acc =
  let rec go acc = function
    | Some node ->
      let acc =
        match node.payload with
        | Single s -> f acc (`Single (s.key, s.tid))
        | Segment seg -> f acc (`Segment seg)
      in
      go acc node.forward.(0)
    | None -> acc
  in
  go acc t.head.forward.(0)
let transitions t = t.transitions
let conversions t = t.conversions

(* --- sizing ---------------------------------------------------------- *)

let node_bytes t node =
  let height = Array.length node.forward in
  match node.payload with
  | Single _ -> Memmodel.skiplist_node_bytes ~key_len:t.key_len ~height
  | Segment seg ->
    (* Tower pointers plus the compact payload. *)
    Memmodel.node_header + (height * Memmodel.word) + Seqtree.memory_bytes seg

let track_add t node = t.bytes <- t.bytes + node_bytes t node

let track_sub t node =
  t.bytes <- t.bytes - node_bytes t node;
  assert (t.bytes >= 0)

(* --- state machine ---------------------------------------------------- *)

let set_state t s =
  if not (state_equal t.state s) then begin
    t.state <- s;
    t.transitions <- t.transitions + 1;
    Metrics.incr c_transitions;
    Trace.emit ev_state
      (match s with Normal -> 0 | Shrinking -> 1 | Expanding -> 2)
      t.bytes
  end

(* Segment<->singleton conversions all funnel their count through here
   so the shared registry sees every one. *)
let note_conversion t =
  t.conversions <- t.conversions + 1;
  Metrics.incr c_conversions

let shrink_threshold t =
  int_of_float (t.config.shrink_fraction *. float_of_int t.config.size_bound)

let expand_threshold t =
  int_of_float (t.config.expand_fraction *. float_of_int t.config.size_bound)

let update_state t =
  match t.state with
  | Normal -> if t.bytes >= shrink_threshold t then set_state t Shrinking
  | Shrinking -> if t.bytes <= expand_threshold t then set_state t Expanding
  | Expanding ->
    if t.bytes >= shrink_threshold t then set_state t Shrinking
    else if t.segments = 0 then set_state t Normal

(* --- ordering ---------------------------------------------------------- *)

(* Skip-list ordering key of a node: a singleton's inline key, or a
   segment's minimum key loaded from the table. *)
let min_key t node =
  match node.payload with
  | Single s -> s.key
  | Segment seg -> t.load (Seqtree.tid_at seg 0)

(* --- search ------------------------------------------------------------- *)

(* Fill [update] with, per level, the last node whose min-key is
   strictly below [key] (the classic skip-list search).  The entries
   strictly precede any node whose min-key is >= [key], so they are
   valid unlink predecessors for such a node. *)
let find_predecessors t key update =
  let x = ref t.head in
  for i = t.level - 1 downto 0 do
    let rec strict () =
      match !x.forward.(i) with
      | Some nxt when Key.compare (min_key t nxt) key < 0 ->
        x := nxt;
        strict ()
      | Some _ | None -> ()
    in
    strict ();
    update.(i) <- !x
  done;
  !x

(* Where [key] lives relative to the list:
   - [`At node]: a node whose min-key equals [key] (exact singleton, or
     a segment whose minimum is [key]);
   - [`In_segment node]: the strict level-0 predecessor is a segment, so
     [key] falls inside its range;
   - [`Gap]: between singletons (or at the very front). *)
let locate t key update =
  let pred = find_predecessors t key update in
  match pred.forward.(0) with
  | Some nxt when Key.equal (min_key t nxt) key -> `At nxt
  | Some _ | None ->
    if pred == t.head then `Gap
    else begin
      match pred.payload with
      | Segment _ -> `In_segment pred
      | Single _ -> `Gap
    end

let rec find t key =
  assert (String.length key = t.key_len);
  let update = Array.make max_level t.head in
  let target =
    match locate t key update with
    | `At node -> Some node
    | `In_segment node -> Some node
    | `Gap -> None
  in
  let result =
    match target with
    | None -> None
    | Some node -> (
      match node.payload with
      | Single s -> if Key.equal s.key key then Some s.tid else None
      | Segment seg -> Seqtree.find seg ~load:t.load key)
  in
  (* Expansion: a search that lands in a segment may dissolve it. *)
  (match target with
  | Some ({ payload = Segment _; _ } as node)
    when state_equal t.state Expanding
         && Float.compare (Rng.float t.rng) t.config.search_split_probability
            < 0 ->
    dissolve t node
  | Some _ | None -> ());
  result

and mem t key = Option.is_some (find t key)

(* --- structural edits ---------------------------------------------------- *)

(* Unlink [node], whose per-level predecessors are in [update]. *)
and unlink t update node =
  let h = Array.length node.forward in
  for i = 0 to h - 1 do
    match update.(i).forward.(i) with
    | Some n when n == node -> update.(i).forward.(i) <- node.forward.(i)
    | Some _ | None -> ()
  done;
  while t.level > 1 && Option.is_none t.head.forward.(t.level - 1) do
    t.level <- t.level - 1
  done;
  track_sub t node

(* Link a fresh node after the predecessors in [update]. *)
and link t update node =
  let h = Array.length node.forward in
  if h > t.level then begin
    for i = t.level to h - 1 do
      update.(i) <- t.head
    done;
    t.level <- h
  end;
  for i = 0 to h - 1 do
    node.forward.(i) <- update.(i).forward.(i);
    update.(i).forward.(i) <- Some node
  done;
  track_add t node

and random_height t =
  let rec go h = if h < max_level && Rng.bool t.rng then go (h + 1) else h in
  go 1

(* Dissolve a segment node back into singleton nodes (expansion).  The
   unlink predecessors are recomputed from the segment's minimum key. *)
and dissolve t node =
  match node.payload with
  | Single _ -> ()
  | Segment seg ->
    note_conversion t;
    let update = Array.make max_level t.head in
    ignore (find_predecessors t (min_key t node) update);
    unlink t update node;
    t.segments <- t.segments - 1;
    let n = Seqtree.count seg in
    (* Insert singletons back, highest key first so each link lands just
       after the recorded predecessors. *)
    for i = n - 1 downto 0 do
      let tid = Seqtree.tid_at seg i in
      let key = t.load tid in
      let s =
        {
          payload = Single { key; tid };
          forward = Array.make (random_height t) None;
        }
      in
      link t update s
    done;
    update_state t

(* Collect up to [limit] consecutive singleton nodes starting at [node]
   (inclusive); returns them in order. *)
let rec collect_singles node limit acc =
  if limit = 0 then List.rev acc
  else
    match node with
    | Some ({ payload = Single _; _ } as n) ->
      collect_singles n.forward.(0) (limit - 1) (n :: acc)
    | Some { payload = Segment _; _ } | None -> List.rev acc

(* Convert a run of singletons beginning at the successor chain of the
   insertion point into one compact segment (shrinking state).  The
   predecessors in [update] must precede the first node of the run. *)
let compact_run t update first =
  let run = collect_singles (Some first) t.config.segment_capacity [] in
  let n = List.length run in
  if n >= t.config.segment_capacity / 2 then begin
    note_conversion t;
    let keys = Array.make n "" and tids = Array.make n 0 in
    List.iteri
      (fun i node ->
        match node.payload with
        | Single s ->
          keys.(i) <- s.key;
          tids.(i) <- s.tid
        | Segment _ ->
          Invariant.impossible "Elastic_skiplist: segment inside singleton run")
      run;
    (* Unlink the run back-to-front so [update] stays valid for each. *)
    List.iter (fun node -> unlink t update node) run;
    let seg =
      Seqtree.of_sorted ~key_len:t.key_len ~capacity:t.config.segment_capacity
        ~levels:t.config.seq_levels ~breathing:t.config.breathing keys tids n
    in
    let node =
      { payload = Segment seg; forward = Array.make (random_height t) None }
    in
    link t update node;
    t.segments <- t.segments + 1
  end

(* --- insert ---------------------------------------------------------------- *)

(* Insert [key] into segment node [node] (in place), growing it while
   shrinking or splitting it otherwise. *)
let insert_into_segment t node key tid =
  match node.payload with
  | Single _ -> Invariant.impossible "Elastic_skiplist.insert_into_segment: singleton node"
  | Segment seg ->
    if not (Seqtree.is_full seg) then begin
      let before = node_bytes t node in
      (match Seqtree.insert seg ~load:t.load key tid with
      | Seqtree.Inserted -> ()
      | Seqtree.Full | Seqtree.Duplicate ->
        Invariant.impossible "Elastic_skiplist: insert into non-full segment failed");
      t.bytes <- t.bytes + (node_bytes t node - before)
    end
    else if
      state_equal t.state Shrinking
      && Seqtree.capacity seg < t.config.max_segment_capacity
    then begin
      (* Grow the segment instead of splitting: the §4 shrink rule. *)
      let before = node_bytes t node in
      let grown =
        Seqtree.with_capacity seg ~capacity:(2 * Seqtree.capacity seg)
          ~levels:t.config.seq_levels
      in
      (match Seqtree.insert grown ~load:t.load key tid with
      | Seqtree.Inserted -> ()
      | Seqtree.Full | Seqtree.Duplicate ->
        Invariant.impossible "Elastic_skiplist: insert into grown segment failed");
      node.payload <- Segment grown;
      t.bytes <- t.bytes + (node_bytes t node - before);
      note_conversion t
    end
    else begin
      (* Split in half; the right half becomes a new node. *)
      let before = node_bytes t node in
      let c = Seqtree.capacity seg in
      let left, right = Seqtree.split seg ~left_capacity:c ~right_capacity:c in
      let target =
        if Key.compare key (t.load (Seqtree.tid_at right 0)) < 0 then left
        else right
      in
      (match Seqtree.insert target ~load:t.load key tid with
      | Seqtree.Inserted -> ()
      | Seqtree.Full | Seqtree.Duplicate ->
        Invariant.impossible "Elastic_skiplist: insert into split half failed");
      node.payload <- Segment left;
      t.bytes <- t.bytes + (node_bytes t node - before);
      let rnode =
        { payload = Segment right; forward = Array.make (random_height t) None }
      in
      let upd2 = Array.make max_level t.head in
      ignore (find_predecessors t (t.load (Seqtree.tid_at right 0)) upd2);
      link t upd2 rnode;
      t.segments <- t.segments + 1
    end

let insert t key tid =
  assert (String.length key = t.key_len);
  update_state t;
  let update = Array.make max_level t.head in
  match locate t key update with
  | `At { payload = Single _; _ } -> false
  | `At ({ payload = Segment _; _ } as node) -> (
    (* key equals the segment minimum: present. *)
    ignore node;
    false)
  | `In_segment node -> (
    match node.payload with
    | Single _ -> Invariant.impossible "Elastic_skiplist: `In_segment points at singleton"
    | Segment seg ->
      if Option.is_some (Seqtree.find seg ~load:t.load key) then false
      else begin
        insert_into_segment t node key tid;
        t.items <- t.items + 1;
        update_state t;
        true
      end)
  | `Gap ->
    let node =
      {
        payload = Single { key; tid };
        forward = Array.make (random_height t) None;
      }
    in
    link t update node;
    (* Shrinking: compact the run of singletons starting at the new node
       (piggybacking on the insert, as §4 piggybacks on splits).  Only
       while the size still exceeds the shrink threshold, so the index
       stabilises just below it instead of over-compacting. *)
    if state_equal t.state Shrinking && t.bytes >= shrink_threshold t then
      compact_run t update node;
    t.items <- t.items + 1;
    update_state t;
    true

(* --- remove ------------------------------------------------------------------ *)

let remove_from_segment t update node key =
  match node.payload with
  | Single _ -> Invariant.impossible "Elastic_skiplist.remove_from_segment: singleton node"
  | Segment seg -> (
    let old_min = min_key t node in
    let before = node_bytes t node in
    match Seqtree.remove seg ~load:t.load key with
    | Seqtree.Not_present -> false
    | Seqtree.Removed ->
      t.items <- t.items - 1;
      t.bytes <- t.bytes + (node_bytes t node - before);
      (* Underflow: shrink the segment, drop it when emptied, or — when
         not shrinking — dissolve it back into singletons (§4's
         expansion-by-removal). *)
      let c = Seqtree.capacity seg in
      let n = Seqtree.count seg in
      if n = 0 then begin
        (* Predecessors of the old minimum still precede the node. *)
        let upd = if Key.equal old_min key then update else Array.make max_level t.head in
        if not (Key.equal old_min key) then
          ignore (find_predecessors t old_min upd);
        unlink t upd node;
        t.segments <- t.segments - 1
      end
      else if n < (c / 2) + 1 then begin
        if c > t.config.segment_capacity then begin
          let before = node_bytes t node in
          node.payload <-
            Segment
              (Seqtree.with_capacity seg ~capacity:(c / 2)
                 ~levels:t.config.seq_levels);
          t.bytes <- t.bytes + (node_bytes t node - before);
          note_conversion t
        end
        else if not (state_equal t.state Shrinking) then dissolve t node
      end;
      update_state t;
      true)

let remove t key =
  update_state t;
  let update = Array.make max_level t.head in
  match locate t key update with
  | `Gap -> false
  | `At ({ payload = Single s; _ } as node) ->
    assert (Key.equal s.key key);
    unlink t update node;
    t.items <- t.items - 1;
    update_state t;
    true
  | `At ({ payload = Segment _; _ } as node) | `In_segment node ->
    remove_from_segment t update node key

let update_value t key tid =
  let update = Array.make max_level t.head in
  match locate t key update with
  | `Gap -> false
  | `At { payload = Single s; _ } ->
    s.tid <- tid;
    true
  | `At ({ payload = Segment seg; _ }) | `In_segment { payload = Segment seg; _ }
    ->
    Seqtree.update seg ~load:t.load key tid
  | `In_segment { payload = Single _; _ } ->
    Invariant.impossible "Elastic_skiplist: `In_segment points at singleton node"

(* --- iteration ------------------------------------------------------------------ *)

let fold_range t ~start ~n f acc =
  let update = Array.make max_level t.head in
  let pred = find_predecessors t start update in
  let remaining = ref n and acc = ref acc in
  let emit key tid =
    if !remaining > 0 then begin
      acc := f !acc key tid;
      decr remaining
    end
  in
  let emit_node_from node ~from_key =
    match node.payload with
    | Single s ->
      if (not from_key) || Key.compare s.key start >= 0 then emit s.key s.tid
    | Segment seg ->
      let pos =
        if from_key then Seqtree.lower_bound seg ~load:t.load start else 0
      in
      Seqtree.fold_from seg pos
        (fun () tid -> if !remaining > 0 then emit (t.load tid) tid)
        ()
  in
  (* The strict predecessor may be a segment whose tail reaches start. *)
  if pred != t.head then emit_node_from pred ~from_key:true;
  let rec walk = function
    | Some node when !remaining > 0 ->
      emit_node_from node ~from_key:false;
      walk node.forward.(0)
    | Some _ | None -> ()
  in
  walk pred.forward.(0);
  !acc

let iter t f =
  let rec walk = function
    | Some node ->
      (match node.payload with
      | Single s -> f s.key s.tid
      | Segment seg -> Seqtree.iter (fun tid -> f (t.load tid) tid) seg);
      walk node.forward.(0)
    | None -> ()
  in
  walk t.head.forward.(0)

(* --- invariants ------------------------------------------------------------------ *)

let check_invariants t =
  (* Global order, item count, segment count and tracked bytes. *)
  let items = ref 0 and segs = ref 0 and bytes = ref 0 in
  let prev = ref None in
  let rec walk = function
    | Some node ->
      bytes := !bytes + node_bytes t node;
      (match node.payload with
      | Single s ->
        incr items;
        (match !prev with
        | Some p -> assert (Key.compare p s.key < 0)
        | None -> ());
        prev := Some s.key
      | Segment seg ->
        incr segs;
        Seqtree.check_invariants seg ~load:t.load;
        assert (Seqtree.count seg > 0);
        items := !items + Seqtree.count seg;
        Seqtree.iter
          (fun tid ->
            let k = t.load tid in
            (match !prev with Some p -> assert (Key.compare p k < 0) | None -> ());
            prev := Some k)
          seg);
      walk node.forward.(0)
    | None -> ()
  in
  walk t.head.forward.(0);
  assert (!items = t.items);
  assert (!segs = t.segments);
  assert (!bytes = t.bytes);
  (* Upper chains are subsequences of level 0. *)
  for i = 1 to t.level - 1 do
    let rec chain = function
      | Some node ->
        assert (Array.length node.forward > i);
        chain node.forward.(i)
      | None -> ()
    in
    chain t.head.forward.(i)
  done
