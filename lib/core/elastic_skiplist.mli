(** Elastic skip list: the elastic index framework applied to a skip
    list, demonstrating the framework's generality (§3 lists skip lists
    among the applicable base indexes).

    Under memory pressure, runs of consecutive single-key nodes are
    converted into one segment node whose payload is a {!Ei_blindi.Seqtree}
    (compact, indirect key storage); segments grow, shrink, dissolve on
    underflow, and are randomly dissolved by searches in the expanding
    state — mirroring the elastic B+-tree's §4 rules. *)

type t

type state = Normal | Shrinking | Expanding

val state_name : state -> string

val state_equal : state -> state -> bool
(** Monomorphic equality (hot-path state tests, ei_lint rule). *)

type config = {
  size_bound : int;
  shrink_fraction : float;
  expand_fraction : float;
  segment_capacity : int;
  max_segment_capacity : int;
  seq_levels : int;
  breathing : int;
  search_split_probability : float;
  seed : int;
}

val default_config : size_bound:int -> config

val create : key_len:int -> load:(int -> string) -> config -> unit -> t

val insert : t -> string -> int -> bool
val remove : t -> string -> bool
val update_value : t -> string -> int -> bool
val find : t -> string -> int option
val mem : t -> string -> bool

val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
val iter : t -> (string -> int -> unit) -> unit

val count : t -> int
val key_len : t -> int
val memory_bytes : t -> int
val segments : t -> int
(** Number of compact segment nodes. *)

val state : t -> state
val transitions : t -> int
val conversions : t -> int

val config : t -> config
(** The configuration driving this list (sanitizer support). *)

val size_bound : t -> int
(** The current soft size bound in bytes. *)

val set_size_bound : t -> int -> unit
(** Retune the soft size bound on the live list (coordinator lever). *)

val load : t -> int -> string
(** The base-table load closure the list was created with. *)

val fold_payloads :
  t ->
  ('a -> [ `Single of string * int | `Segment of Ei_blindi.Seqtree.t ] -> 'a) ->
  'a ->
  'a
(** Fold over level-0 node payloads in key order: singleton entries and
    compact segments.  Sanitizer support ({!Ei_check}) — treat segments
    as read-only. *)

val check_invariants : t -> unit
