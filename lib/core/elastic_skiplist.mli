(** Elastic skip list: the elastic index framework applied to a skip
    list, demonstrating the framework's generality (§3 lists skip lists
    among the applicable base indexes).

    Under memory pressure, runs of consecutive single-key nodes are
    converted into one segment node whose payload is a {!Ei_blindi.Seqtree}
    (compact, indirect key storage); segments grow, shrink, dissolve on
    underflow, and are randomly dissolved by searches in the expanding
    state — mirroring the elastic B+-tree's §4 rules. *)

type t

type state = Normal | Shrinking | Expanding

val state_name : state -> string

type config = {
  size_bound : int;
  shrink_fraction : float;
  expand_fraction : float;
  segment_capacity : int;
  max_segment_capacity : int;
  seq_levels : int;
  breathing : int;
  search_split_probability : float;
  seed : int;
}

val default_config : size_bound:int -> config

val create : key_len:int -> load:(int -> string) -> config -> unit -> t

val insert : t -> string -> int -> bool
val remove : t -> string -> bool
val update_value : t -> string -> int -> bool
val find : t -> string -> int option
val mem : t -> string -> bool

val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
val iter : t -> (string -> int -> unit) -> unit

val count : t -> int
val memory_bytes : t -> int
val segments : t -> int
(** Number of compact segment nodes. *)

val state : t -> state
val transitions : t -> int
val conversions : t -> int

val check_invariants : t -> unit
