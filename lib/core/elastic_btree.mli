(** The elastic B+-tree: the paper's primary contribution.

    Behaves exactly like the underlying STX-style B+-tree while the
    index fits comfortably inside its soft size bound; under memory
    pressure it incrementally converts leaves to the SeqTree compact
    representation (indirect key storage), and converts them back when
    pressure subsides.  See {!Elasticity} for the state machine and
    {!Ei_blindi.Seqtree} for the compact node. *)

type t

val create :
  ?leaf_capacity:int ->
  ?inner_capacity:int ->
  key_len:int ->
  load:(int -> string) ->
  Elasticity.config ->
  unit ->
  t
(** [create ~key_len ~load config ()] builds an elastic B+-tree.
    [load tid] must return the indexed key of row [tid]. *)

val of_sorted :
  ?leaf_capacity:int ->
  ?inner_capacity:int ->
  key_len:int ->
  load:(int -> string) ->
  Elasticity.config ->
  string array ->
  int array ->
  int ->
  t
(** Bulk-load from strictly increasing keys in O(n); elasticity applies
    to subsequent operations. *)

val insert : t -> string -> int -> bool
val remove : t -> string -> bool
val update : t -> string -> int -> bool
val find : t -> string -> int option
val mem : t -> string -> bool

val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
(** Ordered scan over up to [n] entries with keys [>= start]. *)

val iter : t -> (string -> int -> unit) -> unit

val count : t -> int
val key_len : t -> int
val memory_bytes : t -> int
val high_water_bytes : t -> int
val compact_leaves : t -> int
val state : t -> Elasticity.state
val transitions : t -> int
val stats : t -> Ei_btree.Btree.stats

val config : t -> Elasticity.config
(** The elasticity configuration driving this tree (sanitizer support:
    {!Ei_check} validates compact capacities against it). *)

val std_capacity : t -> int
(** Standard-leaf capacity of the underlying tree. *)

val size_bound : t -> int
(** The current soft size bound in bytes. *)

val set_size_bound : t -> int -> unit
(** Retune the soft size bound on the live tree (see
    {!Elasticity.set_size_bound}): the lever a global memory coordinator
    pulls to rebalance one budget across many trees. *)

val tree : t -> Ei_btree.Btree.t
(** The underlying B+-tree (for inspection). *)

val check_invariants : t -> unit
