(* The elastic B+-tree: the paper's primary contribution (§3-§5).

   An elastic B+-tree behaves exactly like the underlying STX-style
   B+-tree while the index fits comfortably inside its soft size bound.
   Under memory pressure it incrementally converts leaves to the SeqTree
   compact representation (indirect key storage), trading some query
   efficiency for space, and it converts them back when pressure
   subsides.  See {!Elasticity} for the state machine. *)

module Btree = Ei_btree.Btree

(* Serial structure: one elastic tree is owned by one domain at a time
   ({!Ei_shard.Serve} gives each part its own domain and queue). *)
type t = {
  tree : Btree.t;
  elasticity : Elasticity.t;
  mutable config : Elasticity.config;
  mutable ops : int;  (* operation counter driving cold sweeps *)
}
[@@ei.single_domain]

let create ?(leaf_capacity = 16) ?(inner_capacity = 16) ~key_len ~load config () =
  let elasticity = Elasticity.create ~std_capacity:leaf_capacity config in
  let tree =
    Btree.create ~leaf_capacity ~inner_capacity ~key_len ~load
      ~policy:(Elasticity.policy elasticity) ()
  in
  { tree; elasticity; config; ops = 0 }

(* Access-aware policy variant: while shrinking and above the shrink
   threshold, periodically compact a batch of cold (untouched since the
   previous sweep) standard leaves, so pressure is relieved even when
   insertions never overflow them (e.g. append-only key patterns). *)
let maybe_cold_sweep t =
  let p = t.config.Elasticity.cold_sweep_period in
  if p > 0 then begin
    t.ops <- t.ops + 1;
    if
      t.ops mod p = 0
      && Elasticity.state_equal (Elasticity.state t.elasticity) Elasticity.Shrinking
      && Btree.memory_bytes t.tree
         >= int_of_float
              (t.config.Elasticity.shrink_fraction
              *. float_of_int t.config.Elasticity.size_bound)
    then
      ignore
        (Btree.compact_cold t.tree ~batch:t.config.Elasticity.cold_sweep_batch
           ~spec:
             (Ei_btree.Policy.Spec_seq
                t.config.Elasticity.initial_compact_capacity))
  end

(* Bulk-load from sorted entries; the elasticity machinery takes over
   for subsequent operations. *)
let of_sorted ?(leaf_capacity = 16) ?(inner_capacity = 16) ~key_len ~load config
    keys tids n =
  let elasticity = Elasticity.create ~std_capacity:leaf_capacity config in
  let tree =
    Btree.of_sorted ~leaf_capacity ~inner_capacity ~key_len ~load
      ~policy:(Elasticity.policy elasticity) keys tids n
  in
  { tree; elasticity; config; ops = 0 }

let insert t key tid =
  maybe_cold_sweep t;
  Btree.insert t.tree key tid
let remove t key = Btree.remove t.tree key
let find t key = Btree.find t.tree key
let update t key tid = Btree.update t.tree key tid
let mem t key = Btree.mem t.tree key
let fold_range t ~start ~n f acc = Btree.fold_range t.tree ~start ~n f acc
let iter t f = Btree.iter t.tree f
let count t = Btree.count t.tree
let memory_bytes t = Btree.memory_bytes t.tree
let high_water_bytes t = Btree.high_water_bytes t.tree
let compact_leaves t = Btree.compact_leaves t.tree
let state t = Elasticity.state t.elasticity
let transitions t = Elasticity.transitions t.elasticity
let config t = t.config
let std_capacity t = Btree.std_capacity t.tree
let stats t = Btree.stats t.tree
let tree t = t.tree

let key_len t = Btree.key_len t.tree
let check_invariants t = Btree.check_invariants t.tree

let size_bound t = t.config.Elasticity.size_bound

(* Both the state machine's copy of the config and ours must move, or
   cold sweeps would keep firing against the stale bound. *)
let set_size_bound t bound =
  Elasticity.set_size_bound t.elasticity bound;
  t.config <- { t.config with Elasticity.size_bound = bound }
