(* The B+-tree elasticity algorithm (§4).

   The algorithm keeps the index size below a soft bound.  It enters the
   *shrinking* state when the tracked index size reaches
   [shrink_fraction] of the bound, and — with hysteresis to avoid
   oscillation — the *expanding* state when the size falls back below
   [expand_fraction] of the bound.  It returns to *normal* once no
   compact leaves remain.

   All conversions piggyback on structure-modification events:
   - shrinking: a standard-leaf overflow converts the leaf to a SeqTree
     of twice its capacity instead of splitting; a compact-leaf overflow
     doubles the compact capacity up to [max_compact_capacity], after
     which the leaf splits;
   - any state: a compact-leaf underflow (capacity 2k holding fewer than
     k+1 keys) shrinks the leaf to capacity k, or back to a standard
     leaf when k is the standard capacity;
   - expanding: a search that ends at a compact leaf randomly splits it
     into two leaves of half capacity (standard leaves at the bottom of
     the progression), so hot read-only leaves also decompact. *)

module Policy = Ei_btree.Policy
module Metrics = Ei_obs.Metrics
module Trace = Ei_obs.Trace

type state = Normal | Shrinking | Expanding

(* --- Observability (shared across instances; per-domain sharded) ----- *)

let c_transitions = Metrics.counter "elastic.transitions"
let c_slashes = Metrics.counter "elastic.bound_slashes"
let c_conversions = Metrics.counter "elastic.conversions"
let c_search_splits = Metrics.counter "elastic.search_splits"

let ev_state =
  Trace.define ~cat:"elastic" ~arg0:"state" ~arg1:"bytes" "elastic.state"

let ev_slash =
  Trace.define ~cat:"elastic" ~arg0:"new_bound" ~arg1:"old_bound"
    "elastic.bound_slash"

(* Compact<->standard leaf conversions, with the capacities involved
   (0 = standard leaf). *)
let ev_convert =
  Trace.define ~cat:"elastic" ~arg0:"to_capacity" ~arg1:"from_capacity"
    "elastic.convert"

let ev_search_split =
  Trace.define ~cat:"elastic" ~arg0:"to_capacity" ~arg1:"from_capacity"
    "elastic.search_split"

let state_code = function Normal -> 0 | Shrinking -> 1 | Expanding -> 2

let state_name = function
  | Normal -> "normal"
  | Shrinking -> "shrinking"
  | Expanding -> "expanding"

(* Monomorphic equality so state tests on hot paths never go through
   the polymorphic comparator (ei_lint poly-compare rule). *)
let state_equal a b =
  match (a, b) with
  | Normal, Normal | Shrinking, Shrinking | Expanding, Expanding -> true
  | (Normal | Shrinking | Expanding), _ -> false

type config = {
  size_bound : int;                 (* soft index size bound, bytes *)
  shrink_fraction : float;          (* enter shrinking at this * bound *)
  expand_fraction : float;          (* enter expanding below this * bound *)
  initial_compact_capacity : int;   (* first SeqTree capacity (2n, §4) *)
  max_compact_capacity : int;       (* compact capacity cap (128, §4) *)
  seq_levels : int;                 (* BlindiTree levels (2, §6.1) *)
  breathing : int;                  (* breathing slack (4, §6.1) *)
  search_split_probability : float; (* expansion-state split chance *)
  cold_sweep_period : int;          (* ops between cold-compaction sweeps;
                                       0 disables the access-aware policy *)
  cold_sweep_batch : int;           (* leaves inspected per sweep *)
  seed : int;
  fault_site : string;              (* Ei_fault site name for injected
                                       bound slashes; "" disables *)
}

let default_config ~size_bound =
  {
    size_bound;
    shrink_fraction = 0.9;
    expand_fraction = 0.75;
    initial_compact_capacity = 32;
    max_compact_capacity = 128;
    seq_levels = 2;
    breathing = 4;
    search_split_probability = 1.0 /. 32.0;
    cold_sweep_period = 0;
    cold_sweep_batch = 8;
    seed = 0x5eed;
    fault_site = "";
  }

(* Serial state machine: owned by the index that embeds it, which is
   itself single-domain (see {!Elastic_btree.t}). *)
type t = {
  mutable config : config;
  (* mutable so a coordinator can retune [size_bound] on a live index *)
  std_capacity : int;
  rng : Ei_util.Rng.t;
  mutable state : state;
  mutable transitions : int;
  slash : Ei_fault.Fault.site option;
  mutable slashes : int;
}
[@@ei.single_domain]

let create ~std_capacity config =
  assert (config.size_bound > 0);
  assert (Float.compare config.expand_fraction config.shrink_fraction < 0);
  (* The first compact capacity must exceed the standard leaf's (§4 uses
     2n); lift it when the tree uses larger leaves than the default. *)
  let config =
    if config.initial_compact_capacity > std_capacity then config
    else
      {
        config with
        initial_compact_capacity = 2 * std_capacity;
        max_compact_capacity =
          max config.max_compact_capacity (4 * std_capacity);
      }
  in
  {
    config;
    std_capacity;
    rng = Ei_util.Rng.create config.seed;
    state = Normal;
    transitions = 0;
    slash =
      (if String.equal config.fault_site "" then None
       else Some (Ei_fault.Fault.site config.fault_site));
    slashes = 0;
  }

let state t = t.state
let transitions t = t.transitions
let size_bound t = t.config.size_bound
let slashes t = t.slashes

(* Retune the soft bound on a live index.  The next [update] call sees
   the new thresholds, so the state machine reacts on the following
   structure-modification event — no eager reorganisation. *)
let set_size_bound t bound =
  assert (bound > 0);
  t.config <- { t.config with size_bound = bound }

let shrink_at t =
  int_of_float (t.config.shrink_fraction *. float_of_int t.config.size_bound)

let expand_at t =
  int_of_float (t.config.expand_fraction *. float_of_int t.config.size_bound)

let set_state t ~bytes s =
  if not (state_equal t.state s) then begin
    t.state <- s;
    t.transitions <- t.transitions + 1;
    Metrics.incr c_transitions;
    Trace.emit ev_state (state_code s) bytes
  end

(* State transition check, run whenever the policy is consulted.  The
   injected memory-pressure spike fires here — the same moments a real
   spike would be observed — halving the soft bound so the state
   machine must react (a later [set_size_bound] from a coordinator
   restores the configured split). *)
let update t (view : Policy.view) =
  (match t.slash with
  | Some site when Ei_fault.Fault.fire site ->
    let old_bound = t.config.size_bound in
    t.config <-
      { t.config with size_bound = max 1 (t.config.size_bound / 2) };
    t.slashes <- t.slashes + 1;
    Metrics.incr c_slashes;
    Trace.emit ev_slash t.config.size_bound old_bound
  | _ -> ());
  let bytes = view.bytes in
  match t.state with
  | Normal -> if view.bytes >= shrink_at t then set_state t ~bytes Shrinking
  | Shrinking -> if view.bytes <= expand_at t then set_state t ~bytes Expanding
  | Expanding ->
    if view.bytes >= shrink_at t then set_state t ~bytes Shrinking
    else if view.compact_leaves = 0 then set_state t ~bytes Normal

(* ------------------------------------------------------------------ *)
(* Policy construction.                                                *)

let on_overflow t view ~current =
  update t view;
  match (current, t.state) with
  | Policy.Spec_std, Shrinking ->
    (* Convert instead of splitting: saves leaf space and avoids the
       separator insertions a split would push into inner nodes. *)
    Metrics.incr c_conversions;
    Trace.emit ev_convert t.config.initial_compact_capacity 0;
    Policy.Convert (Policy.Spec_seq t.config.initial_compact_capacity)
  | Policy.Spec_std, (Normal | Expanding) -> Policy.Split Policy.Spec_std
  | Policy.Spec_seq c, Shrinking ->
    if c < t.config.max_compact_capacity then begin
      Metrics.incr c_conversions;
      Trace.emit ev_convert (2 * c) c;
      Policy.Convert (Policy.Spec_seq (2 * c))
    end
    else Policy.Split (Policy.Spec_seq c)
  | Policy.Spec_seq c, (Normal | Expanding) ->
    (* Outside the shrinking state an overflowing compact leaf walks back
       down the capacity progression, so write-hot regions decompact even
       without searches (mirrors the expansion split rule of §4). *)
    let k = c / 2 in
    if k <= t.std_capacity then Policy.Split Policy.Spec_std
    else Policy.Split (Policy.Spec_seq k)
  | Policy.Spec_sub c, _ -> Policy.Split (Policy.Spec_sub c)
  | Policy.Spec_pre, _ -> Policy.Split Policy.Spec_pre
  | Policy.Spec_str c, _ -> Policy.Split (Policy.Spec_str c)
  | Policy.Spec_bw, _ -> Policy.Split Policy.Spec_bw
  | Policy.Spec_gap, _ -> Policy.Split Policy.Spec_gap

let on_underflow t view ~current ~count:_ =
  update t view;
  match current with
  | Policy.Spec_std | Policy.Spec_sub _ | Policy.Spec_pre | Policy.Spec_str _
  | Policy.Spec_bw | Policy.Spec_gap ->
    Policy.Rebalance
  | Policy.Spec_seq c ->
    let k = c / 2 in
    Metrics.incr c_conversions;
    if k > t.std_capacity then begin
      Trace.emit ev_convert k c;
      Policy.Replace (Policy.Spec_seq k)
    end
    else begin
      Trace.emit ev_convert 0 c;
      Policy.Replace Policy.Spec_std
    end

let on_search_compact t view ~current =
  update t view;
  match (t.state, current) with
  | Expanding, Policy.Spec_seq c
    when Float.compare (Ei_util.Rng.float t.rng)
           t.config.search_split_probability
         < 0 ->
    let k = c / 2 in
    Metrics.incr c_search_splits;
    if k <= t.std_capacity then begin
      Trace.emit ev_search_split 0 c;
      Some Policy.Spec_std
    end
    else begin
      Trace.emit ev_search_split k c;
      Some (Policy.Spec_seq k)
    end
  | _ -> None

let on_merge t view ~total ~left ~right =
  update t view;
  ignore left;
  ignore right;
  (* Piggyback on merges: while shrinking, merges produce compact leaves;
     otherwise the merged leaf reverts to standard whenever it fits, so
     removes drive expansion (§4).  A merge too large for a standard leaf
     must stay compact regardless of state. *)
  if state_equal t.state Shrinking || total > t.std_capacity then begin
    let rec fit (c : int) =
      if c >= total || c >= t.config.max_compact_capacity then c else fit (2 * c)
    in
    Policy.Spec_seq (fit t.config.initial_compact_capacity)
  end
  else Policy.Spec_std

let underflow_at _t spec ~std_capacity ~count =
  match spec with
  | Policy.Spec_std | Policy.Spec_sub _ | Policy.Spec_pre | Policy.Spec_bw
  | Policy.Spec_gap ->
    count < std_capacity / 2
  | Policy.Spec_str c -> count < c / 2
  | Policy.Spec_seq c ->
    (* The paper's compact-leaf invariant: capacity 2k holds >= k+1. *)
    count < (c / 2) + 1

let policy t =
  {
    Policy.name = "elastic";
    initial = Policy.Spec_std;
    seq_levels = t.config.seq_levels;
    seq_breathing = t.config.breathing;
    on_overflow = (fun view ~current -> on_overflow t view ~current);
    on_underflow = (fun view ~current ~count -> on_underflow t view ~current ~count);
    on_search_compact = (fun view ~current -> on_search_compact t view ~current);
    on_merge = (fun view ~total ~left ~right -> on_merge t view ~total ~left ~right);
    underflow_at = (fun spec ~std_capacity ~count -> underflow_at t spec ~std_capacity ~count);
  }
