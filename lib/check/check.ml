(* Deep invariant sanitizer (ei_check).

   Every validator recomputes a structural property from scratch and
   compares it against the structure's O(1) bookkeeping, so silent
   corruption — a leaf out of its separator bounds, a stale BlindiTree
   slot, a drifting byte tracker — surfaces as a [finding] instead of a
   wrong query answer three workloads later.

   Validators never mutate the structure they inspect: they run on the
   introspection snapshots the index libraries expose (B+-tree
   {!Ei_btree.Btree.introspect}, SeqTree slot accessors, skip-list
   fold_towers/fold_level) and on the read-only fold/iter surfaces.  In
   particular [run] never calls [find], because an elastic find in the
   expanding state may split a compact leaf.

   The paper's compact-leaf occupancy rule (capacity 2k holds >= k+1
   keys, §4) is enforced lazily by the structures — expansion-state
   search splits and shrink-state merges legitimately leave leaves below
   threshold until the next structure-modification event — so that
   validator reports [Advisory] findings by default and only hard
   [Error]s under [~strict].  Everything else checked here is a hard
   invariant. *)

module Key = Ei_util.Key
module Invariant = Ei_util.Invariant
module Memmodel = Ei_storage.Memmodel
module Seqtree = Ei_blindi.Seqtree
module Btree = Ei_btree.Btree
module Leaf = Ei_btree.Leaf
module Policy = Ei_btree.Policy
module Elastic_btree = Ei_core.Elastic_btree
module Elasticity = Ei_core.Elasticity
module Elastic_skiplist = Ei_core.Elastic_skiplist
module Skiplist = Ei_baselines.Skiplist
module Radix = Ei_baselines.Radix
module Hybrid = Ei_baselines.Hybrid
module Btree_olc = Ei_olc.Btree_olc
module Index_ops = Ei_harness.Index_ops

type severity = Error | Advisory

type finding = { validator : string; severity : severity; detail : string }

type report = { index : string; ops_seen : int; findings : finding list }

let is_error f = match f.severity with Error -> true | Advisory -> false
let errors r = List.filter is_error r.findings
let ok r = match errors r with [] -> true | _ :: _ -> false

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s: %s"
    (match f.severity with Error -> "error" | Advisory -> "advisory")
    f.validator f.detail

let pp_report ppf r =
  match r.findings with
  | [] -> Format.fprintf ppf "%s: ok" r.index
  | fs ->
    Format.fprintf ppf "@[<v>%s: %d finding(s)%t@,%a@]" r.index (List.length fs)
      (fun ppf ->
        if r.ops_seen > 0 then Format.fprintf ppf " after %d ops" r.ops_seen)
      (Format.pp_print_list pp_finding)
      fs

(* ------------------------------------------------------------------ *)
(* Finding accumulation.                                               *)

type ctx = { mutable rev_findings : finding list }

let new_ctx () = { rev_findings = [] }
let findings ctx = List.rev ctx.rev_findings

let emit ctx validator severity fmt =
  Printf.ksprintf
    (fun detail ->
      ctx.rev_findings <- { validator; severity; detail } :: ctx.rev_findings)
    fmt

let fail ctx validator fmt = emit ctx validator Error fmt

(* Run an assert-based checker, converting aborts into findings. *)
let guard ctx validator f =
  try f () with
  | Assert_failure (file, line, _) ->
    fail ctx validator "assertion failed at %s:%d" file line
  | Invariant.Broken msg -> fail ctx validator "%s" msg

(* Short printable preview of a (binary) key for diagnostics. *)
let key_preview k =
  let n = min 8 (String.length k) in
  let b = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "%02x" (Char.code k.[i]))
  done;
  if String.length k > n then Buffer.add_string b "..";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* SeqTree: BlindiBits / BlindiTree / breathing (§5).                  *)

let check_seqtree_ctx ctx ~what ~load (seg : Seqtree.t) =
  let v = "seqtree" in
  let n = Seqtree.count seg in
  let cap = Seqtree.capacity seg in
  if n < 0 || n > cap then
    fail ctx v "%s: count %d outside [0, capacity %d]" what n cap;
  (* Breathing rule (§5.4): the tuple-id array holds occupancy plus
     slack, never exceeding capacity; without breathing it is fully
     allocated up front. *)
  let slots = Seqtree.tid_slots seg in
  let breathing = Seqtree.breathing seg in
  if breathing = 0 then begin
    if slots <> cap then
      fail ctx v "%s: breathing off but %d/%d tid slots allocated" what slots
        cap
  end
  else if slots < min cap (max 1 n) || slots > cap then
    fail ctx v "%s: %d tid slots for %d keys (capacity %d, slack %d)" what
      slots n cap breathing;
  if n = 0 then ()
  else begin
    let keys = Array.init n (fun i -> load (Seqtree.tid_at seg i)) in
    (* Key order, and BlindiBits entry i = first differing bit between
       adjacent keys — the defining property of the representation. *)
    for i = 0 to n - 2 do
      if Key.compare keys.(i) keys.(i + 1) >= 0 then
        fail ctx v "%s: keys %d (%s) and %d (%s) out of order" what i
          (key_preview keys.(i))
          (i + 1)
          (key_preview keys.(i + 1))
      else begin
        let expect =
          match Key.first_diff_bit keys.(i) keys.(i + 1) with
          | Some d -> d
          | None -> -1 (* unreachable given the order check above *)
        in
        let got = Seqtree.bit_at seg i in
        if got <> expect then
          fail ctx v "%s: BlindiBits[%d] = %d, but keys differ first at bit %d"
            what i got expect
      end
    done;
    (* BlindiTree: slot p covers an in-order BlindiBits range; a live
       slot must hold an in-range index whose bit value is minimal over
       the range (the trie-root property the descent relies on), and its
       children split the range around it.  Slots over empty ranges hold
       the absent marker. *)
    let size = Seqtree.tree_slot_count seg in
    let bit i = Seqtree.bit_at seg i in
    let rec walk p lo hi =
      if p < size then begin
        let m = Seqtree.tree_slot seg p in
        if lo > hi then begin
          if m <> Seqtree.absent_slot then
            fail ctx v "%s: BlindiTree[%d] = %d but its range is empty" what p
              m
        end
        else if m = Seqtree.absent_slot then
          fail ctx v "%s: BlindiTree[%d] absent over range [%d, %d]" what p lo
            hi
        else if m < lo || m > hi then
          fail ctx v "%s: BlindiTree[%d] = %d outside range [%d, %d]" what p m
            lo hi
        else begin
          let minv = ref (bit lo) in
          for i = lo + 1 to hi do
            if bit i < !minv then minv := bit i
          done;
          if bit m <> !minv then
            fail ctx v
              "%s: BlindiTree[%d] -> bit %d, but range [%d, %d] minimum is %d"
              what (bit m) m lo hi !minv;
          walk ((2 * p) + 1) lo (m - 1);
          walk ((2 * p) + 2) (m + 1) hi
        end
      end
    in
    if n >= 2 then walk 0 0 (n - 2)
    else
      for p = 0 to size - 1 do
        if Seqtree.tree_slot seg p <> Seqtree.absent_slot then
          fail ctx v "%s: BlindiTree[%d] live with %d key(s)" what p n
      done
  end

(* ------------------------------------------------------------------ *)
(* B+-tree (any policy).                                               *)

(* Compact capacities reachable from [initial] by the elastic doubling /
   halving progression, within (std_capacity, max]. *)
let legal_compact_capacity ~std ~initial ~max_cap c =
  let rec up x = x = c || (x < max_cap && up (2 * x)) in
  let rec down x = x = c || (x / 2 > std && down (x / 2)) in
  c > std && c <= max_cap && (up initial || down initial)

let check_btree_ctx ?(strict = false) ctx (tree : Btree.t) =
  let v = "btree" in
  let it = Btree.introspect tree in
  let nleaves = Array.length it.Btree.leaves in
  (* Depth uniformity. *)
  if nleaves > 0 then begin
    let d0 = it.Btree.leaf_depths.(0) in
    Array.iteri
      (fun i d ->
        if d <> d0 then
          fail ctx v "leaf %d at depth %d, leaf 0 at depth %d" i d d0)
      it.Btree.leaf_depths
  end;
  (* The [next] chain from the leftmost leaf visits exactly the in-order
     leaves. *)
  if Array.length it.Btree.chain <> nleaves then
    fail ctx v "leaf chain has %d leaves, tree walk found %d"
      (Array.length it.Btree.chain)
      nleaves
  else
    Array.iteri
      (fun i leaf ->
        if not (leaf == it.Btree.chain.(i)) then
          fail ctx v "leaf chain diverges from in-order walk at position %d" i)
      it.Btree.leaves;
  (* Inner nodes: fanout bounds and separator order. *)
  let inner_min = it.Btree.inner_capacity / 2 in
  Array.iteri
    (fun i n ->
      if n < 1 || n > it.Btree.inner_capacity then
        fail ctx v "inner %d: fanout %d outside [1, %d]" i n
          it.Btree.inner_capacity
      else if (not it.Btree.inner_is_root.(i)) && n < inner_min then
        fail ctx v "inner %d: non-root fanout %d below minimum %d" i n
          inner_min)
    it.Btree.inner_fanouts;
  Array.iteri
    (fun i seps ->
      Array.iteri
        (fun j s ->
          if String.length s <> it.Btree.key_len then
            fail ctx v "inner %d: separator %d has length %d, key_len %d" i j
              (String.length s) it.Btree.key_len;
          if j > 0 && Key.compare seps.(j - 1) s >= 0 then
            fail ctx v "inner %d: separators %d and %d out of order" i (j - 1)
              j)
        seps)
    it.Btree.inner_seps;
  (* Leaves: representation-internal invariants, separator bounds, key
     order across the whole tree. *)
  let load = it.Btree.load in
  let prev = ref None in
  let item_sum = ref 0 and compact_sum = ref 0 and leaf_bytes = ref 0 in
  Array.iteri
    (fun i leaf ->
      guard ctx v (fun () -> Leaf.check_invariants leaf ~load);
      let count = Leaf.count leaf in
      item_sum := !item_sum + count;
      if Leaf.is_compact leaf then incr compact_sum;
      leaf_bytes := !leaf_bytes + Leaf.memory_bytes leaf;
      if count < 1 && nleaves > 1 then fail ctx v "leaf %d empty" i;
      let lo, hi = it.Btree.leaf_bounds.(i) in
      Leaf.fold_from leaf ~load 0
        (fun () k _ ->
          (match lo with
          | Some l when Key.compare l k > 0 ->
            fail ctx v "leaf %d: key %s below separator bound" i
              (key_preview k)
          | Some _ | None -> ());
          (match hi with
          | Some h when Key.compare k h >= 0 ->
            fail ctx v "leaf %d: key %s at or above separator bound" i
              (key_preview k)
          | Some _ | None -> ());
          (match !prev with
          | Some p when Key.compare p k >= 0 ->
            fail ctx v "leaf %d: key %s breaks global order" i (key_preview k)
          | Some _ | None -> ());
          prev := Some k)
        ();
      (* Deep-check compact SeqTree leaves; the occupancy rule is
         advisory unless [strict] (see the header comment). *)
      match leaf.Leaf.repr with
      | Leaf.Seq seg ->
        check_seqtree_ctx ctx ~what:(Printf.sprintf "leaf %d" i) ~load seg;
        let cap = Seqtree.capacity seg in
        if count < (cap / 2) + 1 then
          emit ctx "occupancy"
            (if strict then Error else Advisory)
            "leaf %d: compact capacity %d holds %d keys (< %d)" i cap count
            ((cap / 2) + 1)
      | Leaf.Std _ | Leaf.Sub _ | Leaf.Pre _ | Leaf.Str _ | Leaf.Bw _
      | Leaf.Gap _ -> ())
    it.Btree.leaves;
  (* O(1) counters vs recomputation. *)
  if !item_sum <> it.Btree.items then
    fail ctx "counters" "item counter %d, leaves hold %d" it.Btree.items
      !item_sum;
  if !compact_sum <> it.Btree.compact_count then
    fail ctx "counters" "compact-leaf counter %d, found %d"
      it.Btree.compact_count !compact_sum;
  let inner_total =
    Array.length it.Btree.inner_fanouts * it.Btree.inner_node_bytes
  in
  if !leaf_bytes + inner_total <> it.Btree.tracked_bytes then
    fail ctx "tracker" "tracked %d bytes, recomputed %d (+%d inner)"
      it.Btree.tracked_bytes
      (!leaf_bytes + inner_total)
      inner_total

(* ------------------------------------------------------------------ *)
(* Elastic B+-tree: everything above, plus elasticity legality (§4).   *)

let check_elastic_ctx ?strict ctx (tree : Elastic_btree.t) =
  check_btree_ctx ?strict ctx (Elastic_btree.tree tree);
  let cfg = Elastic_btree.config tree in
  let std = Elastic_btree.std_capacity tree in
  (* Mirror {!Elasticity.create}'s adjustment: the progression starts
     above the standard capacity. *)
  let initial, max_cap =
    if cfg.Elasticity.initial_compact_capacity > std then
      (cfg.Elasticity.initial_compact_capacity, cfg.Elasticity.max_compact_capacity)
    else (2 * std, max cfg.Elasticity.max_compact_capacity (4 * std))
  in
  ignore
    (Btree.fold_leaves (Elastic_btree.tree tree)
       (fun i spec _count ->
         (match spec with
         | Policy.Spec_seq c ->
           if not (legal_compact_capacity ~std ~initial ~max_cap c) then
             fail ctx "elasticity"
               "leaf %d: compact capacity %d unreachable from %d (std %d, max %d)"
               i c initial std max_cap
         | Policy.Spec_std -> ()
         | Policy.Spec_sub _ | Policy.Spec_pre | Policy.Spec_str _
         | Policy.Spec_bw | Policy.Spec_gap ->
           fail ctx "elasticity" "leaf %d: foreign representation %s" i
             (Format.asprintf "%a" Policy.pp_spec spec));
         i + 1)
       0)

(* ------------------------------------------------------------------ *)
(* Skip list: tower heights and per-level chains.                      *)

let check_skiplist_ctx ctx (sl : Skiplist.t) =
  let v = "skiplist" in
  guard ctx v (fun () -> Skiplist.check_invariants sl);
  let towers =
    List.rev
      (Skiplist.fold_towers sl (fun acc k _tid h -> (k, h) :: acc) [])
  in
  let rec order = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if Key.compare a b >= 0 then
        fail ctx v "keys %s and %s out of order" (key_preview a)
          (key_preview b);
      order rest
    | [ _ ] | [] -> ()
  in
  order towers;
  let max_h = List.fold_left (fun m (_, h) -> max m h) 0 towers in
  List.iter
    (fun (k, h) ->
      if h < 1 || h > Skiplist.max_level then
        fail ctx v "key %s: tower height %d outside [1, %d]" (key_preview k) h
          Skiplist.max_level)
    towers;
  (* The list level tracks the tallest live tower exactly: inserts raise
     it and removes shrink it while the top level is empty. *)
  let expected_level = max 1 max_h in
  if Skiplist.level sl <> expected_level then
    fail ctx v "list level %d, tallest tower %d" (Skiplist.level sl)
      expected_level;
  (* Level l links exactly the towers taller than l, in key order. *)
  for l = 0 to Skiplist.level sl - 1 do
    let chain =
      List.rev (Skiplist.fold_level sl l (fun acc k h -> (k, h) :: acc) [])
    in
    let expect = List.filter (fun (_, h) -> h > l) towers in
    if List.length chain <> List.length expect then
      fail ctx v "level %d links %d nodes, %d towers reach it" l
        (List.length chain) (List.length expect)
    else
      List.iter2
        (fun (ck, _) (ek, _) ->
          if not (String.equal ck ek) then
            fail ctx v "level %d: chain node %s is not tower %s" l
              (key_preview ck) (key_preview ek))
        chain expect
  done;
  (* Tracked node bytes vs per-tower recomputation. *)
  let bytes =
    List.fold_left
      (fun a (_, h) ->
        a
        + Memmodel.skiplist_node_bytes ~key_len:(Skiplist.key_len sl)
            ~height:h)
      0 towers
  in
  if bytes <> Skiplist.memory_bytes sl then
    fail ctx "tracker" "tracked %d bytes, recomputed %d"
      (Skiplist.memory_bytes sl) bytes

(* ------------------------------------------------------------------ *)
(* Elastic skip list: segments are SeqTrees with legal capacities.     *)

let check_elastic_skiplist_ctx ctx (esl : Elastic_skiplist.t) =
  let v = "elastic-skiplist" in
  guard ctx v (fun () -> Elastic_skiplist.check_invariants esl);
  let cfg = Elastic_skiplist.config esl in
  let load = Elastic_skiplist.load esl in
  let std = 1 (* singleton nodes hold one key *) in
  let seg_i = ref 0 in
  ignore
    (Elastic_skiplist.fold_payloads esl
       (fun (prev : string option) payload ->
         let first, last =
           match payload with
           | `Single (k, _) -> (k, k)
           | `Segment seg ->
             let what = Printf.sprintf "segment %d" !seg_i in
             incr seg_i;
             check_seqtree_ctx ctx ~what ~load seg;
             let c = Seqtree.capacity seg in
             if
               not
                 (legal_compact_capacity ~std
                    ~initial:cfg.Elastic_skiplist.segment_capacity
                    ~max_cap:cfg.Elastic_skiplist.max_segment_capacity c)
             then
               fail ctx v "%s: capacity %d unreachable from %d (max %d)" what c
                 cfg.Elastic_skiplist.segment_capacity
                 cfg.Elastic_skiplist.max_segment_capacity;
             let n = Seqtree.count seg in
             if n = 0 then fail ctx v "%s: empty segment" what;
             ( load (Seqtree.tid_at seg 0),
               load (Seqtree.tid_at seg (max 0 (n - 1))) )
         in
         (match prev with
         | Some p when Key.compare p first >= 0 ->
           fail ctx v "payload starting at %s breaks key order"
             (key_preview first)
         | Some _ | None -> ());
         Some last)
       None)

(* ------------------------------------------------------------------ *)
(* BTreeOLC: structure, and for the elastic variant the shared atomic   *)
(* accounting vs a recomputed walk.  Single-threaded, like every other  *)
(* validator: quiesce the domains first.                                *)

let check_olc_ctx ?(strict = false) ctx (tree : Btree_olc.t) =
  let v = "olc" in
  guard ctx v (fun () -> Btree_olc.check_invariants tree);
  let compact_sum =
    Btree_olc.fold_leaves tree
      (fun compacts ~compact ~capacity ~count ~bytes:_ ->
        (match Btree_olc.elastic_config tree with
        | Some cfg when compact ->
          let std = Btree_olc.leaf_capacity tree in
          if
            not
              (legal_compact_capacity ~std
                 ~initial:cfg.Btree_olc.initial_compact_capacity
                 ~max_cap:cfg.Btree_olc.max_compact_capacity capacity)
          then
            fail ctx "elasticity"
              "compact capacity %d unreachable from %d (std %d, max %d)"
              capacity cfg.Btree_olc.initial_compact_capacity std
              cfg.Btree_olc.max_compact_capacity;
          if count < (capacity / 2) + 1 then
            emit ctx "occupancy"
              (if strict then Error else Advisory)
              "compact capacity %d holds %d keys (< %d)" capacity count
              ((capacity / 2) + 1)
        | Some _ | None -> ());
        compacts + if compact then 1 else 0)
      0
  in
  match Btree_olc.elastic_config tree with
  | None -> ()
  | Some _ ->
    (* The atomic tracker mirrors the full memory model (leaves plus
       inner nodes accounted at splits) and must equal a fresh walk. *)
    let tracked = Btree_olc.elastic_memory_bytes tree in
    let walked = Btree_olc.memory_bytes tree in
    if tracked <> walked then
      fail ctx "tracker" "tracked %d bytes, recomputed %d" tracked walked;
    let tracked_compact = Btree_olc.elastic_compact_leaves tree in
    if tracked_compact <> compact_sum then
      fail ctx "counters" "compact-leaf counter %d, found %d" tracked_compact
        compact_sum

(* ------------------------------------------------------------------ *)
(* Closure-level checks (any backend) and dispatch.                    *)

let check_generic_ctx ctx (ix : Index_ops.t) =
  let v = "generic" in
  let count = ix.Index_ops.count () in
  if count < 0 then fail ctx v "negative count %d" count;
  if ix.Index_ops.memory_bytes () < 0 then
    fail ctx v "negative memory_bytes %d" (ix.Index_ops.memory_bytes ());
  (* A full scan visits exactly [count] keys in strictly ascending
     order.  (Read-only: scans never trigger elastic conversions.)  The
     scan starts from the minimal well-formed key: compact leaves probe
     the start key bit-by-bit and reject lengths other than [key_len]. *)
  let zero_key = String.make ix.Index_ops.key_len '\000' in
  let seen = ref 0 and prev = ref None in
  guard ctx v (fun () ->
      let visited =
        ix.Index_ops.scan_keys zero_key (count + 1) (fun k ->
            incr seen;
            (match !prev with
            | Some p when Key.compare p k >= 0 ->
              fail ctx v "scan out of order at key %s" (key_preview k)
            | Some _ | None -> ());
            prev := Some k)
      in
      if visited <> count || !seen <> count then
        fail ctx v "count %d but full scan visited %d" count visited)

let rec check_backend_ctx ?strict ctx (ix : Index_ops.t) =
  match ix.Index_ops.backend with
  | Index_ops.B_btree t -> check_btree_ctx ?strict ctx t
  | Index_ops.B_elastic t -> check_elastic_ctx ?strict ctx t
  | Index_ops.B_skiplist t -> check_skiplist_ctx ctx t
  | Index_ops.B_elastic_skiplist t -> check_elastic_skiplist_ctx ctx t
  | Index_ops.B_radix t ->
    guard ctx "radix" (fun () -> Radix.check_invariants t)
  | Index_ops.B_hybrid t ->
    guard ctx "hybrid" (fun () -> Hybrid.check_invariants t)
  | Index_ops.B_olc t -> check_olc_ctx ?strict ctx t
  | Index_ops.B_composite parts ->
    (* A router: deep-validate every part, then reconcile the router's
       aggregate bookkeeping against the sum of its parts. *)
    Array.iter
      (fun part ->
        check_generic_ctx ctx part;
        check_backend_ctx ?strict ctx part)
      parts;
    let total_count =
      Array.fold_left (fun a p -> a + p.Index_ops.count ()) 0 parts
    in
    if total_count <> ix.Index_ops.count () then
      fail ctx "composite" "router count %d, parts sum to %d"
        (ix.Index_ops.count ()) total_count;
    let total_bytes =
      Array.fold_left (fun a p -> a + p.Index_ops.memory_bytes ()) 0 parts
    in
    if total_bytes <> ix.Index_ops.memory_bytes () then
      fail ctx "composite" "router %d bytes, parts sum to %d"
        (ix.Index_ops.memory_bytes ())
        total_bytes

let run ?strict (ix : Index_ops.t) =
  let ctx = new_ctx () in
  check_generic_ctx ctx ix;
  check_backend_ctx ?strict ctx ix;
  { index = ix.Index_ops.name; ops_seen = 0; findings = findings ctx }

(* Structure-specific entry points. *)

let in_ctx f =
  let ctx = new_ctx () in
  f ctx;
  findings ctx

let check_btree ?strict tree = in_ctx (fun ctx -> check_btree_ctx ?strict ctx tree)
let check_elastic ?strict tree = in_ctx (fun ctx -> check_elastic_ctx ?strict ctx tree)
let check_seqtree ~load seg =
  in_ctx (fun ctx -> check_seqtree_ctx ctx ~what:"seqtree" ~load seg)
let check_skiplist sl = in_ctx (fun ctx -> check_skiplist_ctx ctx sl)
let check_elastic_skiplist esl =
  in_ctx (fun ctx -> check_elastic_skiplist_ctx ctx esl)
let check_olc ?strict tree = in_ctx (fun ctx -> check_olc_ctx ?strict ctx tree)

(* ------------------------------------------------------------------ *)
(* Property-test hook: sanitize every N mutating operations.           *)

let wrap ?strict ~every ~on_report (ix : Index_ops.t) =
  assert (every > 0);
  let ops = ref 0 in
  let tick () =
    incr ops;
    if !ops mod every = 0 then
      on_report { (run ?strict ix) with ops_seen = !ops }
  in
  let after f x y =
    let r = f x y in
    tick ();
    r
  in
  let after1 f x =
    let r = f x in
    tick ();
    r
  in
  {
    ix with
    Index_ops.insert = after ix.Index_ops.insert;
    update = after ix.Index_ops.update;
    remove = after1 ix.Index_ops.remove;
  }
