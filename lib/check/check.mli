(** Deep invariant sanitizer.

    Each validator recomputes a structural property from scratch and
    compares it against the structure's O(1) bookkeeping: B+-tree
    separator bounds, depth uniformity and leaf-chain consistency;
    SeqTree BlindiBits / BlindiTree correctness against keys loaded from
    the base table (§5); elastic compact-capacity legality against the
    {!Ei_core.Elasticity} configuration (§4); skip-list tower/level
    consistency; and tracked byte counts against per-node recomputation.

    Validators are read-only — {!run} never calls [find], which under an
    elastic policy in the expanding state may split a leaf.

    The paper's compact-leaf occupancy rule (capacity 2k holds >= k+1
    keys) is enforced lazily by the structures, so transiently
    under-occupied leaves are reported as [Advisory] findings unless
    [~strict:true] upgrades them to [Error]s.  All other findings are
    hard errors. *)

type severity =
  | Error  (** a violated invariant: the structure is corrupt *)
  | Advisory  (** a lazily-enforced §4 bound currently exceeded *)

type finding = { validator : string; severity : severity; detail : string }

type report = {
  index : string;  (** the [Index_ops.name] or entry-point name *)
  ops_seen : int;  (** mutating ops when produced by a {!wrap} hook; 0 else *)
  findings : finding list;
}

val ok : report -> bool
(** No [Error]-severity findings ([Advisory] findings are allowed). *)

val errors : report -> finding list
(** The [Error]-severity findings. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

val run : ?strict:bool -> Ei_harness.Index_ops.t -> report
(** Generic closure-level checks (full-scan order and count agreement)
    plus the deep validator for the index's backend. *)

(** Structure-specific entry points (each returns its findings). *)

val check_btree : ?strict:bool -> Ei_btree.Btree.t -> finding list
val check_elastic : ?strict:bool -> Ei_core.Elastic_btree.t -> finding list

val check_seqtree :
  load:(int -> string) -> Ei_blindi.Seqtree.t -> finding list

val check_skiplist : Ei_baselines.Skiplist.t -> finding list
val check_elastic_skiplist : Ei_core.Elastic_skiplist.t -> finding list

val check_olc : ?strict:bool -> Ei_olc.Btree_olc.t -> finding list
(** BTreeOLC structure plus, for the elastic variant, the shared atomic
    size/state accounting against a recomputed walk.  Single-threaded:
    quiesce all mutator domains first. *)

val wrap :
  ?strict:bool ->
  every:int ->
  on_report:(report -> unit) ->
  Ei_harness.Index_ops.t ->
  Ei_harness.Index_ops.t
(** [wrap ~every ~on_report ix] is [ix] with its mutating operations
    (insert / update / remove) counted; every [every]-th mutation runs
    {!run} and hands the report (with [ops_seen] set) to [on_report].
    Property-test support. *)
