(** Deterministic, seed-driven fault injection.

    Failure as a first-class, seed-reproducible input: code registers
    named injection {e sites}; a run-wide plan maps site names to
    firing probabilities; each site draws from its own splitmix64
    stream derived from [(seed, Fnv.hash name)].  The fault schedule is
    a pure function of the seed and each site's call sequence — never
    of wall-clock time or domain interleaving — so a failing run
    replays exactly from its seed.

    With no plan configured (the initial state), every site check is a
    single atomic load. *)

exception Injected of string
(** Raised by {!inject} with the site name: a transient, attributable
    fault (distinct from {!Ei_util.Invariant.Broken}, which signals
    real corruption). *)

type site

val configure : seed:int -> (string * float) list -> unit
(** Install a fault plan and (re)seed every site.  Each binding is
    [(key, probability)]; a key arms a site when its dot-separated
    segments are a prefix of the site name's, with ["*"] matching any
    one segment: ["serve.crash"] arms ["serve.crash.shard3"], and
    ["serve.queue.*.drop"] arms every shard's drop site.  Later
    bindings override earlier ones.  Resets all site counters and
    streams — also the reset lever for reproducibility tests. *)

val clear : unit -> unit
(** Remove the plan: every site becomes inert (initial state). *)

val enabled : unit -> bool
(** A non-empty plan is installed. *)

val site : string -> site
(** Register (or fetch) the site with this name.  Sites are global and
    idempotent: the same name always yields the same site. *)

val fire : site -> bool
(** Draw at this site: [true] if the fault fires.  Inert without a
    plan.  Thread-safe; per-site call order is the determinism unit, so
    keep a site's traffic on one domain for exact replay.  Invokes the
    installed {!set_tap} callback (if any) before drawing. *)

val point : site -> unit
(** A pure preemption point: never draws, never fires, only invokes the
    installed {!set_tap} callback with the site name.  Without a tap
    this is a single atomic load — the hook production code (OLC tree,
    Serve) exposes to the simulation scheduler at no new dependency and
    near-zero cost. *)

val set_tap : (string -> unit) option -> unit
(** Install (or remove, with [None]) the scheduler tap invoked at every
    {!point} and at the entry of every {!fire}.  The callback runs
    while holding no Fault lock, so it may suspend the caller (ei_sim
    parks the calling fiber via an effect).  Process-global: only one
    harness may drive taps at a time. *)

val inject : site -> unit
(** [fire] and raise {!Injected} with the site name when it fires. *)

val name : site -> string
val calls : site -> int
(** Draws at this site since the last {!configure}. *)

val fired : site -> int
(** Faults fired at this site since the last {!configure}. *)

val stats : unit -> (string * int * int) list
(** [(name, calls, fired)] for every site with traffic, sorted by name
    — the fault schedule digest two equal-seed runs must agree on. *)

val parse_plan : string -> ((string * float) list, string) result
(** Parse a ["site=prob,site=prob"] spec (CLI support).  Probabilities
    must lie in [[0, 1]]. *)
