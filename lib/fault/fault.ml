(* Deterministic, seed-driven fault injection.

   Robustness work needs failure to be a first-class, reproducible
   input — the FoundationDB discipline: a fault that cannot be replayed
   from a seed cannot be debugged.  Every place in the system that can
   fail registers a named *site*; a run-wide plan maps site names to
   firing probabilities; each site draws from its own splitmix64 stream
   derived from [(seed, Fnv.hash name)], so

   - the schedule is a pure function of the seed and the per-site call
     sequence (never of wall-clock time or domain interleaving), and
   - sites are decorrelated: changing one site's traffic does not shift
     any other site's schedule.

   When no plan is configured ([clear], the initial state) every site
   is a single atomic load — production paths pay one branch.

   Site naming convention: ["<kind>.<instance>"], e.g.
   ["serve.crash.shard3"] or ["queue.drop.shard0"], so a plan entry can
   name one instance exactly or a whole kind by dot-bounded prefix
   (["serve.crash" = 0.001] arms every shard's crash site). *)

module Rng = Ei_util.Rng
module Strtbl = Ei_util.Strtbl
module Fnv = Ei_util.Fnv
module Trace = Ei_obs.Trace
module Flight = Ei_obs.Flight
module Json = Ei_util.Mini_json

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some ("Fault.Injected: " ^ site)
    | _ -> None)

type site = {
  name : string;
  lock : Mutex.t;
      (* Serialises draws at one site.  Per-site call order is the
         determinism unit: sites hit from a single domain (the common
         case — each shard's sites live in that shard's domain) replay
         exactly; a site shared across domains is deterministic only in
         aggregate. *)
  mutable rng : Rng.t [@ei.guarded_by "lock"];
  mutable prob : float [@ei.guarded_by "lock"];
  mutable calls : int [@ei.guarded_by "lock"];
  mutable fired : int [@ei.guarded_by "lock"];
  ev : int;  (* trace-event kind for this site's draws *)
}

(* --- Global plan ----------------------------------------------------- *)

let active = Atomic.make false
let registry_lock = Mutex.create ()
let[@ei.guarded_by "registry_lock"] registry : site Strtbl.t =
  Strtbl.create 64

let[@ei.guarded_by "registry_lock"] plan : (string * float) list ref = ref []
let[@ei.guarded_by "registry_lock"] plan_seed = ref 0

(* A plan key matches a site name when its dot-separated segments are a
   prefix of the name's, with ["*"] matching any one segment:
   ["serve.crash"] and ["serve.crash.*"] both arm
   ["serve.crash.shard3"]; ["serve.queue.*.drop"] arms every shard's
   drop site. *)
let matches ~key name =
  let rec go ks ns =
    match (ks, ns) with
    | [], _ -> true
    | _ :: _, [] -> false
    | k :: ks', n :: ns' ->
      (String.equal k "*" || String.equal k n) && go ks' ns'
  in
  go (String.split_on_char '.' key) (String.split_on_char '.' name)

let prob_of name =
  List.fold_left
    (fun acc (key, p) -> if matches ~key name then p else acc)
    0.0 !plan

let reset_site s =
  s.rng <- Rng.stream !plan_seed (Fnv.hash s.name);
  s.prob <- prob_of s.name;
  s.calls <- 0;
  s.fired <- 0

let configure ~seed bindings =
  Mutex.lock registry_lock;
  plan := bindings;
  plan_seed := seed;
  Strtbl.iter (fun _ s -> reset_site s) registry;
  Atomic.set active (match bindings with [] -> false | _ :: _ -> true);
  Mutex.unlock registry_lock

let clear () = configure ~seed:0 []

let enabled () = Atomic.get active

let site name =
  Mutex.lock registry_lock;
  let s =
    match Strtbl.find_opt registry name with
    | Some s -> s
    | None ->
      let s =
        {
          name;
          lock = Mutex.create ();
          rng = Rng.create 0;
          prob = 0.0;
          calls = 0;
          fired = 0;
          ev =
            Trace.define ~cat:"fault" ~arg0:"fired" ~arg1:"call"
              ("fault." ^ name);
        }
      in
      reset_site s;
      Strtbl.add registry name s;
      s
  in
  Mutex.unlock registry_lock;
  s

(* --- Scheduler tap ---------------------------------------------------- *)

(* A simulation harness may install a *tap*: a callback invoked with the
   site name at every {!point} and at the entry of every {!fire}.  The
   tap is how ei_sim turns fault sites into preemption points — it may
   suspend the caller (an effect handler parks the fiber), so it must be
   invoked while holding no Fault mutex.  Without a tap, a point is a
   single atomic load, same as an inert fire. *)

let tap : (string -> unit) option Atomic.t = Atomic.make None

let set_tap f = Atomic.set tap f

let tapped name =
  match Atomic.get tap with None -> () | Some f -> f name

let point s = tapped s.name

(* --- Flight-recorder draw ring ---------------------------------------- *)

(* The last [draw_cap] draws, recorded only while the flight recorder is
   armed (one extra atomic load per fire otherwise) and handed to it as
   a dump section: a chaos failure's artifact then names exactly which
   injected faults preceded it, in draw order. *)
let draw_cap = 512
let draw_lock = Mutex.create ()
let[@ei.guarded_by "draw_lock"] draw_ring : (string * bool * int * int) array =
  Array.make draw_cap ("", false, 0, 0)

let[@ei.guarded_by "draw_lock"] draw_cursor = ref 0

let record_draw s ~hit ~call =
  if Flight.armed () then begin
    let ts = Ei_util.Bench_clock.now_ns () in
    Mutex.lock draw_lock;
    draw_ring.(!draw_cursor mod draw_cap) <- (s.name, hit, call, ts);
    incr draw_cursor;
    Mutex.unlock draw_lock
  end

let () =
  Flight.register_section "fault_draws" (fun () ->
      Mutex.lock draw_lock;
      let n = !draw_cursor in
      let first = if n > draw_cap then n - draw_cap else 0 in
      let out = ref [] in
      for d = n - 1 downto first do
        let name, hit, call, ts = draw_ring.(d mod draw_cap) in
        out :=
          Json.Obj
            [
              ("site", Json.Str name);
              ("fired", Json.Bool hit);
              ("call", Json.Int call);
              ("ts_ns", Json.Int ts);
            ]
          :: !out
      done;
      Mutex.unlock draw_lock;
      Json.List !out)

(* --- Firing ---------------------------------------------------------- *)

let fire s =
  tapped s.name;
  if not (Atomic.get active) then false
  else begin
    Mutex.lock s.lock;
    s.calls <- s.calls + 1;
    let hit =
      Float.compare s.prob 0.0 > 0
      && Float.compare (Rng.float s.rng) s.prob < 0
    in
    if hit then s.fired <- s.fired + 1;
    let call = s.calls in
    Mutex.unlock s.lock;
    (* Every draw is a trace event, so a chaos run's timeline shows the
       exact interleaving of injected failures with the work around
       them.  Recorded outside the site lock: [call] is the draw's
       deterministic sequence number either way. *)
    Trace.emit s.ev (if hit then 1 else 0) call;
    record_draw s ~hit ~call;
    hit
  end

let inject s = if fire s then raise (Injected s.name)

let name s = s.name
let calls s = s.calls
let fired s = s.fired

let stats () =
  Mutex.lock registry_lock;
  let rows =
    Strtbl.fold (fun _ s acc -> (s.name, s.calls, s.fired) :: acc) registry []
  in
  Mutex.unlock registry_lock;
  List.sort
    (fun (a, _, _) (b, _, _) -> String.compare a b)
    (List.filter (fun (_, calls, _) -> calls > 0) rows)

(* --- Plan parsing (CLI support) -------------------------------------- *)

(* "site=prob,site=prob" — e.g. "serve.crash=0.0005,queue.drop=0.01". *)
let parse_plan spec =
  let entries = String.split_on_char ',' (String.trim spec) in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> build acc rest
    | entry :: rest -> (
      match String.index_opt entry '=' with
      | None -> Error (Printf.sprintf "fault plan entry %S: expected site=prob" entry)
      | Some i ->
        let key = String.trim (String.sub entry 0 i) in
        let v = String.trim (String.sub entry (i + 1) (String.length entry - i - 1)) in
        (match (key, float_of_string_opt v) with
        | "", _ -> Error (Printf.sprintf "fault plan entry %S: empty site name" entry)
        | _, None -> Error (Printf.sprintf "fault plan entry %S: bad probability %S" entry v)
        | key, Some p when Float.compare p 0.0 >= 0 && Float.compare p 1.0 <= 0 ->
          build ((key, p) :: acc) rest
        | _, Some p ->
          Error (Printf.sprintf "fault plan entry %S: probability %g not in [0, 1]" entry p)))
  in
  build [] entries
