(* Zipfian and related skewed distributions, following the YCSB
   implementation (Gray et al., "Quickly generating billion-record
   synthetic databases").

   [Zipf.t] draws item ranks in [0, n) with P(rank = i) proportional to
   1/(i+1)^theta.  The scrambled variant hashes the rank so that popular
   items are spread over the key space, as YCSB does. *)

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
  scramble : bool;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let default_theta = 0.99

let create ?(theta = default_theta) ?(scramble = false) n =
  assert (n > 0);
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; half_pow_theta = 1.0 +. Float.pow 0.5 theta; scramble }

(* 64-bit finaliser of splitmix64, used to scramble ranks. *)
let fnv_scramble x =
  let z = Int64.of_int x in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let next t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  let rank =
    if uz < 1.0 then 0
    else if uz < t.half_pow_theta then 1
    else
      int_of_float
        (float_of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
  in
  let rank = if rank >= t.n then t.n - 1 else rank in
  if t.scramble then fnv_scramble rank mod t.n else rank

(* "Latest" distribution: skewed towards the most recently inserted item.
   [next_latest t rng ~max_item] returns an index in [0, max_item] with
   recent items most popular. *)
let next_latest t rng ~max_item =
  let r = next t rng in
  let r = r mod (max_item + 1) in
  max_item - r
