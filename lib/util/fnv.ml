(* Seeded FNV-1a over key bytes.

   The stdlib's [Hashtbl.hash] is unsuitable for hashing index keys: it
   folds only a bounded prefix of the value (10 "meaningful" words by
   default), so long keys sharing a prefix — exactly the shape of
   object-store log keys — collapse onto a handful of buckets, and its
   exact output is unspecified across compiler versions, making
   partition routing non-reproducible.  FNV-1a touches every byte, is
   fully specified, and the seed folds in first so distinct seeds give
   independent routings over the same key set. *)

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let step h byte = Int64.mul (Int64.logxor h (Int64.of_int byte)) prime

let hash64 ?(seed = 0) s =
  let h = ref offset_basis in
  (* Fold the seed in byte-by-byte so it diffuses like key bytes do. *)
  if seed <> 0 then
    for i = 0 to 7 do
      h := step !h ((seed lsr (8 * i)) land 0xff)
    done;
  for i = 0 to String.length s - 1 do
    h := step !h (Char.code (String.unsafe_get s i))
  done;
  !h

let hash ?seed s = Int64.to_int (hash64 ?seed s) land max_int
