(** Deterministic splitmix64 pseudo-random number generator.

    Every workload generator in the repository draws from this generator,
    so experiments are reproducible given a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t
(** Independent copy with the same state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_int : t -> int
(** Uniform non-negative int over [0, 2{^62}). *)

val int : t -> int -> int
(** [int t bound] is uniform over [0, bound). Requires [bound > 0]. *)

val float : t -> float
(** Uniform over [0, 1). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** A new generator seeded from this one. *)

val stream : int -> int -> t
(** [stream seed i] is the [i]-th independent generator derived from
    [seed] by splitmix64 stream splitting: deterministic in [(seed, i)]
    and decorrelated across [i], so parallel domains can each take their
    own stream of a single experiment seed. *)

val env_seed : default:int -> int
(** The experiment seed: the [EI_SEED] environment variable when set to
    an integer, [default] otherwise.  Every test and bench executable
    derives its seeds through this, so one CI-printed [EI_SEED=n]
    replays a failure in any executable. *)
