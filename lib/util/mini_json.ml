(* Minimal JSON reader/writer for machine-readable artifacts
   (simulation repros, WAL checkpoint manifests).

   The repository deliberately has no JSON dependency; benches emit
   JSON-Lines by hand.  Artifacts additionally need to be *read back*
   (`ei sim --replay`, checkpoint recovery), so this module carries the
   small value type and a recursive-descent parser for exactly the JSON
   the writer emits: objects, arrays, strings with standard escapes,
   integers, floats, booleans and null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- Writing --------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* %.17g round-trips every float; normalise infinities/nans away
       (they cannot occur in artifacts, but never emit invalid JSON). *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "0"
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* --- Parsing --------------------------------------------------------- *)

exception Bad of int * string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code ->
            (* Artifacts only escape control bytes, which fit a char;
               anything larger degrades to '?' rather than failing. *)
            Buffer.add_char buf
              (if code < 256 then Char.chr code else '?');
            pos := !pos + 4
          | None -> fail "bad \\u escape")
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> Char.equal c '.' || Char.equal c 'e' || Char.equal c 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if (match peek () with Some '}' -> true | _ -> false) then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if (match peek () with Some ']' -> true | _ -> false) then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- Accessors -------------------------------------------------------- *)

let member name = function
  | Obj fields ->
    List.find_map
      (fun (k, v) -> if String.equal k name then Some v else None)
      fields
  | _ -> None

let as_int = function Int i -> Some i | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_str = function Str s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_list = function List xs -> Some xs | _ -> None
