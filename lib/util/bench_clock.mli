(** Wall-clock timing helpers for the benchmark harness and examples. *)

val now : unit -> float
(** Current wall-clock time in seconds. *)

val now_ns : unit -> int
(** Current wall-clock time in integer nanoseconds (microsecond
    resolution).  The clock the observability layer timestamps with. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with elapsed seconds. *)

val mops : int -> float -> float
(** [mops count seconds] is throughput in million operations/second. *)

val mib : int -> float
(** Bytes to MiB. *)
