(* Software prefetch: a thin veneer over __builtin_prefetch (see
   ei_prefetch_stubs.c).

   The stub is [@@noalloc] — no GC interaction, no callbacks — so a
   call costs one C call.  [Sys.opaque_identity] keeps the compiler
   from discarding the argument computation (the whole point is the
   address computation happening early), and the [enabled] toggle
   lets benchmarks A/B the hint against the pure hand-interleaved
   descent without rebuilding. *)

external unsafe_prefetch : 'a -> unit = "ei_prefetch_stub" [@@noalloc]

(* Toggled only from benchmark set-up code / EI_PREFETCH at start-up;
   readers racing a toggle merely see the old hint behaviour. *)
let enabled =
  ref
    (match Sys.getenv_opt "EI_PREFETCH" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)
  [@ei.single_domain]

let set_enabled b = enabled := b
let is_enabled () = !enabled
let[@inline] prefetch x = if !enabled then unsafe_prefetch (Sys.opaque_identity x)
