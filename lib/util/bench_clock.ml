(* Small timing helpers shared by the benchmark harness and examples.
   Wall-clock time is used so that multi-domain experiments measure real
   elapsed time. *)

let now () = Unix.gettimeofday ()

(* Integer wall-clock nanoseconds.  The observability layer stores these
   in fixed-width ring slots; [gettimeofday] gives microsecond
   resolution, which is ample for batch spans and elasticity events. *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let time f =
  let t0 = now () in
  let r = f () in
  let t1 = now () in
  (r, t1 -. t0)

let mops count seconds =
  if seconds <= 0.0 then Float.infinity
  else float_of_int count /. seconds /. 1.0e6

let mib bytes = float_of_int bytes /. (1024.0 *. 1024.0)
