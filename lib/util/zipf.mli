(** Zipfian distribution over ranks [0, n), following the YCSB generator.

    With [~scramble:true], ranks are hashed so popular items spread over
    the key space (YCSB's "scrambled zipfian"). *)

type t

val default_theta : float
(** YCSB's default skew, 0.99. *)

val create : ?theta:float -> ?scramble:bool -> int -> t

val next : t -> Rng.t -> int
(** Draw a rank in [0, n). *)

val next_latest : t -> Rng.t -> max_item:int -> int
(** YCSB "latest" distribution: a rank in [0, max_item], skewed towards
    [max_item] (the most recent item). *)
