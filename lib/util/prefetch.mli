(** Software prefetch hint for pointer-chasing descents.

    [prefetch v] asks the hardware to start pulling the block behind
    [v] into cache; it never faults and never allocates.  Immediate
    values are ignored.  The interleaved multi-lookup descent issues
    one hint per cursor per level so the DRAM misses of a batch
    overlap instead of serialising. *)

val prefetch : 'a -> unit
(** Hint that [v]'s block is about to be read.  No-op when disabled or
    when the argument is an immediate. *)

val set_enabled : bool -> unit
(** Benchmark toggle (also initialised from [EI_PREFETCH=0]): with
    prefetch off the group descent still interleaves by hand, which is
    the pure-OCaml fallback for memory-level parallelism. *)

val is_enabled : unit -> bool
