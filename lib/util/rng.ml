(* Deterministic splitmix64 PRNG.

   All workload generators in this repository draw from this generator so
   that every experiment is reproducible from a seed.  The algorithm is
   the reference splitmix64 of Steele et al., operating on OCaml's native
   63-bit [int] via Int64. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A non-negative int uniform over [0, 2^62). *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  assert (bound > 0);
  next_int t mod bound

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (Int64.to_int (next_int64 t))

(* The [i]-th independent stream derived from [seed]: place a generator
   at state [seed + i * golden_gamma] (stream offsets a whole gamma
   apart) and seed a fresh generator from its first output, so streams
   with nearby indexes share no low-entropy prefix.  Deterministic in
   [(seed, i)] — the basis for reproducible multi-domain runs. *)
let stream seed i =
  let t =
    {
      state =
        Int64.add (Int64.of_int seed) (Int64.mul (Int64.of_int i) golden_gamma);
    }
  in
  { state = next_int64 t }

(* The one sanctioned way to read the experiment seed: every test and
   bench executable derives its seeds from [env_seed], so a CI failure
   line "EI_SEED=n" replays anywhere.  Malformed values fall back to the
   default rather than abort — a typo'd override should not mask the
   suite behind a startup crash. *)
let env_seed ~default =
  match Sys.getenv_opt "EI_SEED" with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> default)
