(** Minimal JSON value type, writer and parser for simulation
    artifacts.

    The repository has no JSON dependency; this covers exactly the
    subset the [.sim.json] artifacts use — objects, arrays, strings
    with standard escapes, integers, floats, booleans, null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialisation (valid JSON; strings escaped). *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries the byte position
    of the failure. *)

val member : string -> t -> t option
(** Field of an object, [None] on missing field or non-object. *)

val as_int : t -> int option
val as_float : t -> float option
(** Also accepts an [Int] (JSON does not distinguish). *)

val as_str : t -> string option
val as_bool : t -> bool option
val as_list : t -> t list option
