(** Fixed-length binary keys compared lexicographically.

    Integer encodings are big-endian, so lexicographic order equals
    numeric order.  Bits are numbered from zero starting at the most
    significant bit of byte 0, matching the paper's convention. *)

type t = string

val compare : t -> t -> int
(** Reference lexicographic order ([String.compare]). *)

val compare_fast : t -> t -> int
(** Word-at-a-time lexicographic comparison: 8-byte big-endian chunks
    via unsigned [int64] compare, byte tail, length tiebreak.  Agrees
    with {!compare} on every pair of strings; this is the kernel the
    index search paths use. *)

val sort_prefix : t -> int
(** First 63 bits of the key (big-endian byte order, zero-padded) as a
    non-negative int.  Monotone in {!compare_fast}:
    [sort_prefix a < sort_prefix b] implies [compare_fast a b < 0] —
    a cheap immediate proxy for sorting key collections; only
    prefix-equal pairs need the full comparison. *)

val equal : t -> t -> bool
val length : t -> int

val of_string : string -> t
val to_string : t -> string

val of_int64 : int64 -> t
(** 8-byte big-endian encoding. *)

val to_int64 : t -> int64

val of_int : int -> t
(** 8-byte big-endian encoding of a non-negative int. *)

val to_int : t -> int

val of_int_pair : int -> int -> t
(** [of_int_pair hi lo] is a 16-byte composite key, [hi] ordered first. *)

val bits : t -> int
(** Number of bits in the key. *)

val bit : t -> int -> int
(** [bit k i] is bit [i] of [k] (0 or 1), MSB-first. *)

val first_diff_bit : t -> t -> int option
(** Position of the first differing bit between two equal-length keys,
    or [None] if equal. *)

val to_hex : t -> string
val pp : Format.formatter -> t -> unit

val random : Rng.t -> int -> t
(** [random rng len] is a uniformly random key of [len] bytes. *)
