(* Monomorphic string-keyed hash table.

   Replaces polymorphic [Hashtbl] uses keyed on variable-length keys:
   equality is [String.equal] (no polymorphic structural compare on the
   hot path) and hashing is FNV-1a over every key byte, immune to
   [Hashtbl.hash]'s bounded-prefix truncation. *)

include Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash s = Fnv.hash s
end)
