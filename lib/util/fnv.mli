(** Seeded FNV-1a hashing over key bytes.

    Unlike [Hashtbl.hash], which folds only a bounded prefix of its
    argument and whose output is unspecified across compiler versions,
    FNV-1a reads every byte and is fully specified — hash-based
    decisions (partition routing, bucket placement) stay deterministic
    and reproducible. *)

val hash64 : ?seed:int -> string -> int64
(** 64-bit FNV-1a of the string, with the seed bytes folded in first.
    [seed] defaults to 0 (plain FNV-1a). *)

val hash : ?seed:int -> string -> int
(** [hash64] truncated to a non-negative OCaml [int]. *)
