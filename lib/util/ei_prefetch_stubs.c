/* Software-prefetch primitive for the interleaved group-descent path.
 *
 * The argument is an arbitrary OCaml value; immediates carry no cache
 * line to warm, so only pointers are forwarded to the hardware
 * prefetcher.  A prefetch is purely a hint: it cannot fault, so a
 * value whose block is about to be freed by another domain (an OLC
 * node retired between the read and the prefetch) is still safe.
 *
 * __builtin_prefetch is a GNU extension supported by both gcc and
 * clang; on other compilers the stub compiles to a no-op and the
 * caller's hand-interleaved descent remains the (pure software)
 * fallback for memory-level parallelism.
 */

#include <caml/mlvalues.h>

CAMLprim value ei_prefetch_stub(value v)
{
#if defined(__GNUC__) || defined(__clang__)
  if (Is_block(v)) __builtin_prefetch((const void *)v, 0 /* read */, 3);
#else
  (void)v;
#endif
  return Val_unit;
}
