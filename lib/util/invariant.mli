(** Structured failure for broken internal invariants.

    Library code raises {!Broken} (via {!broken} / {!impossible})
    instead of [failwith] / [assert false], so corruption is
    attributable — the message names the structure and the violated
    invariant — and catchable by the {!Ei_check} sanitizer and test
    harnesses.  The ei_lint no-abort rule enforces this convention. *)

exception Broken of string

val broken : string -> 'a
(** Raise {!Broken}.  Use for detected invariant violations. *)

val brokenf : ('a, unit, string, 'b) format4 -> 'a
(** [broken] with a format string. *)

val impossible : string -> 'a
(** Raise {!Broken} for a match case that is unreachable by
    construction; the argument names the site, e.g.
    ["Btree.fix_leaf_child: sibling is an inner node"]. *)

val set_on_broken : (string -> unit) -> unit
(** Install a callback invoked with the message just before {!broken} /
    {!brokenf} / {!impossible} raise — how the ei_obs flight recorder
    hears about breakage from a layer it cannot be a dependency of.
    The callback must not raise; default is a no-op. *)
