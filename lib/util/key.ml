(* Fixed-length binary keys.

   A key is an immutable byte string compared lexicographically.  Integer
   keys are encoded big-endian so lexicographic order coincides with
   numeric order, which is what every ordered index here relies on.

   Bits are numbered from zero starting at the most significant bit of
   byte 0, as in the paper (§5.2). *)

type t = string

let compare = String.compare
let equal = String.equal
let length = String.length

let of_string s = s
let to_string k = k

let of_int64 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.unsafe_to_string b

let to_int64 k =
  assert (String.length k = 8);
  String.get_int64_be k 0

(* Encode a non-negative OCaml int as an 8-byte big-endian key. *)
let of_int v =
  assert (v >= 0);
  of_int64 (Int64.of_int v)

let to_int k = Int64.to_int (to_int64 k)

let of_int_pair hi lo =
  let b = Bytes.create 16 in
  Bytes.set_int64_be b 0 (Int64.of_int hi);
  Bytes.set_int64_be b 8 (Int64.of_int lo);
  Bytes.unsafe_to_string b

let bits k = 8 * String.length k

(* Bit [i] of the key, MSB of byte 0 being bit 0. *)
let bit k i =
  let byte = Char.code (String.unsafe_get k (i lsr 3)) in
  (byte lsr (7 - (i land 7))) land 1

(* Index of the most significant set bit of a byte in MSB-first numbering,
   i.e. 0 for 0x80..0xff, 7 for 0x01. *)
let msb_first_diff_in_byte x =
  assert (x <> 0);
  let rec loop i = if x land (0x80 lsr i) <> 0 then i else loop (i + 1) in
  loop 0

(* Leading-zero count of a non-zero word: position of its most
   significant set bit in MSB-first numbering (0 for bit 63 set). *)
let clz64 w =
  assert (not (Int64.equal w 0L));
  let n = ref 0 in
  let w = ref w in
  if Int64.equal (Int64.shift_right_logical !w 32) 0L then begin
    n := !n + 32;
    w := Int64.shift_left !w 32
  end;
  if Int64.equal (Int64.shift_right_logical !w 48) 0L then begin
    n := !n + 16;
    w := Int64.shift_left !w 16
  end;
  if Int64.equal (Int64.shift_right_logical !w 56) 0L then begin
    n := !n + 8;
    w := Int64.shift_left !w 8
  end;
  if Int64.equal (Int64.shift_right_logical !w 60) 0L then begin
    n := !n + 4;
    w := Int64.shift_left !w 4
  end;
  if Int64.equal (Int64.shift_right_logical !w 62) 0L then begin
    n := !n + 2;
    w := Int64.shift_left !w 2
  end;
  if Int64.equal (Int64.shift_right_logical !w 63) 0L then n := !n + 1;
  !n

(* Word-at-a-time lexicographic comparison: 8-byte big-endian chunks
   compared as unsigned words (big-endian load order makes unsigned word
   order coincide with byte order), then a byte tail, then length.
   Agrees with [String.compare] on every input. *)
let compare_fast a b =
  let la = String.length a and lb = String.length b in
  let n = if la < lb then la else lb in
  let words = n lsr 3 in
  let rec word_loop i =
    if i < words then begin
      let wa = String.get_int64_be a (i lsl 3)
      and wb = String.get_int64_be b (i lsl 3) in
      if Int64.equal wa wb then word_loop (i + 1)
      else Int64.unsigned_compare wa wb
    end
    else byte_loop (words lsl 3)
  and byte_loop i =
    if i < n then begin
      let ca = Char.code (String.unsafe_get a i)
      and cb = Char.code (String.unsafe_get b i) in
      if ca = cb then byte_loop (i + 1) else Int.compare ca cb
    end
    else Int.compare la lb
  in
  word_loop 0

(* First 63 bits of the key in big-endian byte order, as a
   non-negative OCaml int.  Monotone in [compare_fast]: [sort_prefix a
   < sort_prefix b] implies [a < b], so it serves as an immediate-int
   proxy when sorting keys — only equal prefixes need the full
   comparison.  Keys shorter than 8 bytes are zero-padded, which
   preserves the order (0 is the minimal byte); the dropped 64th bit
   only makes ties slightly more common. *)
let sort_prefix k =
  let n = String.length k in
  let w =
    if n >= 8 then String.get_int64_be k 0
    else begin
      let w = ref 0L in
      for i = 0 to 7 do
        let b = if i < n then Char.code (String.unsafe_get k i) else 0 in
        w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int b)
      done;
      !w
    end
  in
  Int64.to_int (Int64.shift_right_logical w 1)

(* Position of the first bit in which [a] and [b] differ, or None if the
   keys are equal.  Keys must have equal length.  Word-at-a-time: XOR of
   8-byte chunks, leading-zero count of the first non-zero XOR. *)
let first_diff_bit a b =
  let n = String.length a in
  assert (String.length b = n);
  let words = n lsr 3 in
  let rec word_loop i =
    if i < words then begin
      let wa = String.get_int64_be a (i lsl 3)
      and wb = String.get_int64_be b (i lsl 3) in
      if Int64.equal wa wb then word_loop (i + 1)
      else Some ((i lsl 6) + clz64 (Int64.logxor wa wb))
    end
    else byte_loop (words lsl 3)
  and byte_loop i =
    if i >= n then None
    else
      let xa = Char.code (String.unsafe_get a i)
      and xb = Char.code (String.unsafe_get b i) in
      if xa = xb then byte_loop (i + 1)
      else Some ((i * 8) + msb_first_diff_in_byte (xa lxor xb))
  in
  word_loop 0

let to_hex k =
  let buf = Buffer.create (2 * String.length k) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) k;
  Buffer.contents buf

let pp ppf k = Fmt.string ppf (to_hex k)

(* Random key of [len] bytes. *)
let random rng len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Rng.int rng 256))
  done;
  Bytes.unsafe_to_string b
