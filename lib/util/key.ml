(* Fixed-length binary keys.

   A key is an immutable byte string compared lexicographically.  Integer
   keys are encoded big-endian so lexicographic order coincides with
   numeric order, which is what every ordered index here relies on.

   Bits are numbered from zero starting at the most significant bit of
   byte 0, as in the paper (§5.2). *)

type t = string

let compare = String.compare
let equal = String.equal
let length = String.length

let of_string s = s
let to_string k = k

let of_int64 v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.unsafe_to_string b

let to_int64 k =
  assert (String.length k = 8);
  String.get_int64_be k 0

(* Encode a non-negative OCaml int as an 8-byte big-endian key. *)
let of_int v =
  assert (v >= 0);
  of_int64 (Int64.of_int v)

let to_int k = Int64.to_int (to_int64 k)

let of_int_pair hi lo =
  let b = Bytes.create 16 in
  Bytes.set_int64_be b 0 (Int64.of_int hi);
  Bytes.set_int64_be b 8 (Int64.of_int lo);
  Bytes.unsafe_to_string b

let bits k = 8 * String.length k

(* Bit [i] of the key, MSB of byte 0 being bit 0. *)
let bit k i =
  let byte = Char.code (String.unsafe_get k (i lsr 3)) in
  (byte lsr (7 - (i land 7))) land 1

(* Index of the most significant set bit of a byte in MSB-first numbering,
   i.e. 0 for 0x80..0xff, 7 for 0x01. *)
let msb_first_diff_in_byte x =
  assert (x <> 0);
  let rec loop i = if x land (0x80 lsr i) <> 0 then i else loop (i + 1) in
  loop 0

(* Position of the first bit in which [a] and [b] differ, or None if the
   keys are equal.  Keys must have equal length. *)
let first_diff_bit a b =
  let n = String.length a in
  assert (String.length b = n);
  let rec loop i =
    if i >= n then None
    else
      let xa = Char.code (String.unsafe_get a i)
      and xb = Char.code (String.unsafe_get b i) in
      if xa = xb then loop (i + 1)
      else Some ((i * 8) + msb_first_diff_in_byte (xa lxor xb))
  in
  loop 0

let to_hex k =
  let buf = Buffer.create (2 * String.length k) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) k;
  Buffer.contents buf

let pp ppf k = Fmt.string ppf (to_hex k)

(* Random key of [len] bytes. *)
let random rng len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Rng.int rng 256))
  done;
  Bytes.unsafe_to_string b
