(* Structured failure for broken internal invariants.

   Library code must not abort through [failwith] (an anonymous
   [Failure] indistinguishable from user error) or [assert false] (a
   bare [Assert_failure] with no context) — the ei_lint no-abort rule
   enforces this.  Raising [Broken] instead names the structure and the
   invariant, so a sanitizer or harness can catch, attribute and report
   the corruption instead of tearing the process down anonymously. *)

exception Broken of string

let () =
  Printexc.register_printer (function
    | Broken msg -> Some ("Invariant.Broken: " ^ msg)
    | _ -> None)

let broken msg = raise (Broken msg)
let brokenf fmt = Printf.ksprintf broken fmt

let impossible what = raise (Broken ("unreachable: " ^ what))
