(* Structured failure for broken internal invariants.

   Library code must not abort through [failwith] (an anonymous
   [Failure] indistinguishable from user error) or [assert false] (a
   bare [Assert_failure] with no context) — the ei_lint no-abort rule
   enforces this.  Raising [Broken] instead names the structure and the
   invariant, so a sanitizer or harness can catch, attribute and report
   the corruption instead of tearing the process down anonymously. *)

exception Broken of string

let () =
  Printexc.register_printer (function
    | Broken msg -> Some ("Invariant.Broken: " ^ msg)
    | _ -> None)

(* Observability hook: a flight recorder (ei_obs, which this module
   cannot depend on) installs a callback here to dump its rings the
   moment an invariant breaks, before any handler up-stack can mask
   the failure.  The callback must not raise. *)
let on_broken : (string -> unit) ref = ref (fun _ -> ())
let set_on_broken f = on_broken := f

let broken msg =
  !on_broken msg;
  raise (Broken msg)

let brokenf fmt = Printf.ksprintf broken fmt

let impossible what = broken ("unreachable: " ^ what)
