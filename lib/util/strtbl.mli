(** Monomorphic string-keyed hash table ([Hashtbl.Make] over
    [String.equal] + {!Fnv.hash}).

    Use this instead of the polymorphic [Hashtbl] whenever keys are
    strings: lookups avoid polymorphic comparison and the hash reads
    every byte (no bounded-prefix truncation on long shared-prefix
    keys). *)

include Hashtbl.S with type key = string
