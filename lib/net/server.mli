(** Wire-protocol network front end over the sharded serving layer.

    {!start} binds a Unix or TCP socket and spawns an accept loop on
    its own domain; each accepted connection gets a handler domain
    running the pure {!Session} engine: decoded requests are coalesced
    — at most [window] per round — into one {!Ei_shard.Serve.exec}
    batch whose positional outcomes preserve per-connection order, and
    requests pipelined beyond the window are answered {!Wire.Busy}
    (surfaced as the [net.shed] counter) instead of buffered
    unboundedly.

    {b Outcome mapping} (the net-facing contract of [Serve.exec]):
    every request decoded from a surviving connection gets exactly one
    typed reply — [Applied], [Rejected] (transient fault, retryable),
    [Timed_out] (deadline or shard crash; may or may not have
    applied) or [Busy].  A shard crash or quarantine mid-pipeline
    settles the batch's unacknowledged slots as [Timed_out]; it never
    drops a reply or a connection.  A key whose length does not match
    the server's row table is answered [Rejected] without being
    submitted (it must not reach the single-writer append).  Only a
    corrupt frame tears a connection down ([net.protocol_errors]).

    Observability: [net.accepted] / [net.requests] / [net.shed] /
    [net.protocol_errors] counters, [net.connections] gauge,
    [net.batch_ns] / [net.request_ns] / [net.conn_ns] histograms, and
    a [net.request] span rooting each round's causal flow — with
    tracing on, one client op renders as net.request → serve.request →
    serve.sub → olc.multi_find → wal.commit in the Perfetto view. *)

type config = {
  window : int;
      (** per-connection pipelining window: both the per-round batch
          cap and the queue-depth threshold past which requests are
          shed with [Busy] *)
  read_chunk : int;  (** max bytes pulled off a socket per round *)
  exec_timeout_s : float option;
      (** [Serve.exec] deadline; expired slots reply [Timed_out] *)
  backlog : int;  (** [listen(2)] backlog *)
}

val default_config : config
(** window 256, 64 KiB reads, 5 s exec deadline, backlog 64. *)

type t

val start :
  ?config:config ->
  serve:Ei_shard.Serve.t ->
  table:Ei_storage.Table.t ->
  Unix.sockaddr ->
  t
(** Bind, listen and serve.  [table] is the fleet's row table: inserts
    and updates append rows server-side (appends are serialised — the
    table is single-writer), so row ids never cross the wire.  A stale
    Unix-socket path is removed before binding; TCP sockets set
    [SO_REUSEADDR].  Sets the process SIGPIPE disposition to ignore
    (a vanished peer must surface as [EPIPE], not kill the process).
    Handler domains are joined at {!stop}; their slots are retained
    until then, so a server outliving very many connections should be
    restarted by era. *)

val stop : t -> unit
(** Graceful drain: close the listener, join the acceptor, shut down
    every live connection's read side — each handler answers its
    already-decoded requests, flushes, and exits — then join the
    handlers.  No in-flight request loses its reply.  Idempotent. *)

val addr : t -> Unix.sockaddr
(** The bound address (a TCP bind to port 0 reports the real port). *)

val connections : t -> int
(** Currently-open connections. *)

val stats : unit -> int * int * int
(** Process-wide [(requests, shed, protocol_errors)] counter values
    (0s unless {!Ei_obs.Metrics} is enabled). *)
