(* Pure per-connection byte-stream state machines.

   A {!reader} turns an arbitrary chunking of incoming bytes into the
   sequence of decoded values; a {!writer} turns a queue of encoded
   frames into arbitrarily short outgoing chunks.  Neither touches a
   socket: the transition functions are deterministic in the bytes
   fed, so the same code runs over real file descriptors (Server,
   Client) and under ei_sim's cooperative scheduler, where a schedule
   feeds one byte at a time and takes one byte at a time.

   The scheduler reaches these machines through the {!Ei_fault.Fault}
   yield points below — one atomic load each when no tap is
   installed, like every other production yield site. *)

module Fault = Ei_fault.Fault

let yp_feed = Fault.site "net.yield.feed"
let yp_take = Fault.site "net.yield.take"

(* --- Reader ----------------------------------------------------------- *)

type 'a reader = {
  decode : string -> pos:int -> 'a Wire.progress;
  mutable pending : string;  (* undecoded tail, always less than one frame *)
  mutable err : string option;  (* a corrupt stream poisons the reader *)
  mutable bytes_in : int;
}
[@@ei.single_domain]

let reader ~decode = { decode; pending = ""; err = None; bytes_in = 0 }

let reader_pending r = String.length r.pending
let reader_bytes r = r.bytes_in
let reader_error r = r.err

let feed r ?(pos = 0) ?len chunk =
  match r.err with
  | Some e -> Error e
  | None ->
    Fault.point yp_feed;
    let len = match len with Some l -> l | None -> String.length chunk - pos in
    if pos < 0 || len < 0 || pos + len > String.length chunk then
      invalid_arg "Conn.feed: chunk range out of bounds";
    r.bytes_in <- r.bytes_in + len;
    let s =
      if String.length r.pending = 0 then String.sub chunk pos len
      else r.pending ^ String.sub chunk pos len
    in
    let rec go at acc =
      match r.decode s ~pos:at with
      | Wire.Done (v, next) -> go next (v :: acc)
      | Wire.More ->
        r.pending <-
          (if at = 0 then s else String.sub s at (String.length s - at));
        Ok (List.rev acc)
      | Wire.Corrupt msg ->
        r.err <- Some msg;
        r.pending <- "";
        Error msg
    in
    go 0 []

(* --- Writer ----------------------------------------------------------- *)

(* Queued output bytes with a consumption offset; the buffer compacts
   whenever it is fully drained, which sockets do every flush, so the
   buffer never outlives the deepest reply backlog of one round. *)
type writer = {
  wbuf : Buffer.t;
  mutable woff : int;
  mutable bytes_out : int;
}
[@@ei.single_domain]

let writer () = { wbuf = Buffer.create 256; woff = 0; bytes_out = 0 }

let writer_push w s = Buffer.add_string w.wbuf s
let writer_pending w = Buffer.length w.wbuf - w.woff
let writer_bytes w = w.bytes_out

let writer_take w ~max =
  Fault.point yp_take;
  if max < 0 then invalid_arg "Conn.writer_take: negative max";
  let n = min max (writer_pending w) in
  if n = 0 then ""
  else begin
    let s = Buffer.sub w.wbuf w.woff n in
    w.woff <- w.woff + n;
    w.bytes_out <- w.bytes_out + n;
    if w.woff = Buffer.length w.wbuf then begin
      Buffer.clear w.wbuf;
      w.woff <- 0
    end;
    s
  end
