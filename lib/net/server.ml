(* Wire-protocol network front end over the sharded serving layer.

   An accept loop on its own domain hands each connection to a handler
   domain running the pure {!Session} engine over the socket: read a
   chunk, feed the decoder, form a round of at most [window] pipelined
   requests, execute it as one {!Serve.exec} batch (positional
   outcomes preserve per-connection order), reply, flush.  Requests
   decoded beyond the window are answered [Busy] by the session —
   explicit backpressure instead of unbounded buffering — and surface
   as [net.shed].

   Outcome mapping (the net-facing contract of {!Serve.exec}): every
   request decoded from a surviving connection gets exactly one typed
   reply — [Applied] with the result, [Rejected] (transient fault,
   not applied, retryable), [Timed_out] (deadline passed or shard
   crashed mid-batch; may or may not have applied) or [Busy] (shed
   before submission).  Serve completes every waiter even when a
   shard domain dies — unacknowledged slots settle at the pending
   sentinel and surface as [Timed_out] — so a crash or quarantine
   never drops a reply or a connection; only a protocol violation
   (corrupt frame) tears a connection down.

   Row ids never cross the wire: inserts and updates append to the
   server's row table (single-writer, so appends serialise on
   [table_lock]) and [Find] returns the tid as an opaque handle. *)

module Serve = Ei_shard.Serve
module Table = Ei_storage.Table
module Metrics = Ei_obs.Metrics
module Trace = Ei_obs.Trace
module Ctx = Ei_obs.Ctx
module Clock = Ei_util.Bench_clock

type config = {
  window : int;
      (* per-connection pipelining window: batch cap and shed threshold *)
  read_chunk : int;  (* max bytes pulled off a socket per round *)
  exec_timeout_s : float option;
      (* Serve.exec deadline; expired slots reply Timed_out *)
  backlog : int;  (* listen(2) backlog *)
}

let default_config =
  { window = 256; read_chunk = 1 lsl 16; exec_timeout_s = Some 5.0; backlog = 64 }

(* --- Observability ---------------------------------------------------- *)

let c_accepted = Metrics.counter "net.accepted"
let c_requests = Metrics.counter "net.requests"
let c_shed = Metrics.counter "net.shed"
let c_protocol_errors = Metrics.counter "net.protocol_errors"
let g_connections = Metrics.gauge "net.connections"
let h_batch = Metrics.histogram "net.batch_ns"
let h_request = Metrics.histogram "net.request_ns"
let h_conn = Metrics.histogram "net.conn_ns"

let ev_request =
  Trace.define ~span:true ~cat:"net" ~arg1:"requests" "net.request"

let ev_conn = Trace.define ~span:true ~cat:"net" ~arg1:"conn" "net.conn"

(* --- Server ----------------------------------------------------------- *)

type t = {
  serve : Serve.t;
  table : Table.t;
  cfg : config;
  lsock : Unix.file_descr;
  bound : Unix.sockaddr;
  stop : bool Atomic.t;
  conn_seq : int Atomic.t;
  table_lock : Mutex.t;  (* Table.append is single-writer *)
  lock : Mutex.t;
  mutable conns : (int * Unix.file_descr) list [@ei.guarded_by "lock"];
  mutable handlers : unit Domain.t list [@ei.guarded_by "lock"];
  mutable acceptor : unit Domain.t option [@ei.guarded_by "lock"];
}

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
    Mutex.unlock m;
    v
  | exception e ->
    Mutex.unlock m;
    raise e

let addr t = t.bound
let connections t = with_lock t.lock (fun () -> List.length t.conns)

(* --- Per-connection handler ------------------------------------------- *)

let serve_op t (req : Wire.request) =
  match req.Wire.op with
  | Wire.Insert k ->
    Serve.Insert (k, with_lock t.table_lock (fun () -> Table.append t.table k))
  | Wire.Remove k -> Serve.Remove k
  | Wire.Update k ->
    (* A fresh row with the same key bytes is a valid update target:
       compact leaves load key bytes through the tid. *)
    Serve.Update (k, with_lock t.table_lock (fun () -> Table.append t.table k))
  | Wire.Find k -> Serve.Find k
  | Wire.Scan (k, n) -> Serve.Scan (k, n)

let status_of_outcome = function
  | Serve.Applied r -> Wire.Applied r
  | Serve.Rejected -> Wire.Rejected
  | Serve.Timed_out -> Wire.Timed_out

let write_all fd s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    i := !i + Unix.write_substring fd s !i (n - !i)
  done

let flush_out session fd =
  while Session.out_pending session > 0 do
    write_all fd (Session.out_take session ~max:(1 lsl 16))
  done

(* Run rounds until the queue is empty: take, exec, complete.  Each
   round is one [net.request] span rooting the causal flow — Serve.exec
   joins it as a child, so a client op renders as net.request →
   serve.request → serve.sub → … in the Perfetto view. *)
let run_rounds t session =
  let klen = Table.key_len t.table in
  let rec round () =
    let batch = Session.take session in
    let n = Array.length batch in
    if n > 0 then begin
      let m0 = if Metrics.enabled () then Clock.now_ns () else 0 in
      let t0 = Trace.start () in
      if t0 > 0 then Ctx.set (Ctx.mint ());
      (* Validate before touching the fleet: a key whose length does not
         match the row table can never be applied — and must not reach
         the single-writer append or the fixed-width key comparisons.
         Such slots answer [Rejected] in place; the rest run as one
         positional batch. *)
      let live = ref [] in
      Array.iteri
        (fun i (r : Wire.request) ->
          if String.length (Wire.op_key r.Wire.op) = klen then
            live := i :: !live)
        batch;
      let live = Array.of_list (List.rev !live) in
      let ops = Array.map (fun i -> serve_op t batch.(i)) live in
      let outcomes =
        Serve.exec ?timeout_s:t.cfg.exec_timeout_s t.serve ops
      in
      let statuses = Array.make n Wire.Rejected in
      Array.iteri
        (fun j i -> statuses.(i) <- status_of_outcome outcomes.(j))
        live;
      let shed_before = Session.shed_count session in
      Session.complete session statuses;
      Metrics.add c_requests n;
      Metrics.add c_shed (Session.shed_count session - shed_before);
      if m0 > 0 then begin
        let dt = Clock.now_ns () - m0 in
        Metrics.observe h_batch dt;
        (* Requests of one round share the batch's latency: they were
           decoded together and acknowledged together. *)
        for _ = 1 to n do
          Metrics.observe h_request dt
        done
      end;
      if t0 > 0 then begin
        Trace.span ev_request ~start_ns:t0 n;
        Ctx.clear ()
      end;
      round ()
    end
  in
  round ()

let handle t fd =
  let session = Session.create ~window:t.cfg.window () in
  let buf = Bytes.create t.cfg.read_chunk in
  let t_conn = Trace.start () in
  let t0 = Clock.now_ns () in
  Metrics.add_gauge g_connections 1;
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      let n = Unix.read fd buf 0 (Bytes.length buf) in
      if n > 0 then begin
        match Session.feed session (Bytes.sub_string buf 0 n) with
        | Ok () ->
          run_rounds t session;
          flush_out session fd;
          loop ()
        | Error _ ->
          (* Corrupt stream: reply nothing (no frame to address), count
             it, and tear the connection down. *)
          Metrics.incr c_protocol_errors
      end
      else begin
        (* EOF: drain what was fully received, then close. *)
        run_rounds t session;
        flush_out session fd
      end
    end
    else begin
      (* Stop requested: answer what is already decoded, then close —
         the graceful drain path. *)
      run_rounds t session;
      flush_out session fd
    end
  in
  (try loop ()
   with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
     (* Peer went away (or stop closed the fd under us): nothing left
        to drain to. *)
     ());
  Metrics.add_gauge g_connections (-1);
  Metrics.observe h_conn (Clock.now_ns () - t0);
  if t_conn > 0 then Trace.span ev_conn ~start_ns:t_conn 1

(* --- Accept loop and lifecycle --------------------------------------- *)

(* Deregistration and close happen under [lock], and {!stop} shuts
   connections down under the same lock, so a stop-side shutdown can
   never hit a descriptor number the kernel already recycled. *)
let unregister t id fd =
  with_lock t.lock (fun () ->
      t.conns <- List.filter (fun (i, _) -> i <> id) t.conns;
      try Unix.close fd with Unix.Unix_error (Unix.EBADF, _, _) -> ())

let accept_loop t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.lsock with
    | fd, _peer ->
      Metrics.incr c_accepted;
      let id = Atomic.fetch_and_add t.conn_seq 1 in
      with_lock t.lock (fun () ->
          t.conns <- (id, fd) :: t.conns;
          t.handlers <-
            Domain.spawn (fun () ->
                handle t fd;
                unregister t id fd)
            :: t.handlers);
      loop ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ()
    | exception Unix.Unix_error (_, _, _) when Atomic.get t.stop ->
      (* stop closed the listening socket. *)
      ()
  in
  loop ()

(* A peer that disappears mid-write must surface as EPIPE on the write,
   not as a process-killing SIGPIPE. *)
let ignore_sigpipe () =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let start ?(config = default_config) ~serve ~table addr =
  ignore_sigpipe ();
  let dom = Unix.domain_of_sockaddr addr in
  (match addr with
  | Unix.ADDR_UNIX path when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  let lsock = Unix.socket ~cloexec:true dom Unix.SOCK_STREAM 0 in
  (match dom with
  | Unix.PF_INET | Unix.PF_INET6 ->
    Unix.setsockopt lsock Unix.SO_REUSEADDR true
  | Unix.PF_UNIX -> ());
  (try
     Unix.bind lsock addr;
     Unix.listen lsock config.backlog
   with e ->
     Unix.close lsock;
     raise e);
  let t =
    {
      serve;
      table;
      cfg = config;
      lsock;
      bound = Unix.getsockname lsock;
      stop = Atomic.make false;
      conn_seq = Atomic.make 0;
      table_lock = Mutex.create ();
      lock = Mutex.create ();
      conns = [];
      handlers = [];
      acceptor = None;
    }
  in
  let acceptor = Domain.spawn (fun () -> accept_loop t) in
  with_lock t.lock (fun () -> t.acceptor <- Some acceptor);
  t

let stop t =
  if not (Atomic.exchange t.stop true) then begin
    (* Wake the acceptor with shutdown — closing the descriptor would
       NOT interrupt a blocked accept(2); shutdown makes it return —
       then wake every handler blocked in read: shutdown makes the
       pending read return 0, so each handler drains its decoded
       requests, flushes the replies and closes — no in-flight request
       loses its ack. *)
    (try Unix.shutdown t.lsock Unix.SHUTDOWN_RECEIVE
     with Unix.Unix_error ((Unix.EBADF | Unix.ENOTCONN | Unix.EINVAL), _, _)
     -> ());
    (match with_lock t.lock (fun () -> t.acceptor) with
    | Some d -> Domain.join d
    | None -> ());
    (try Unix.close t.lsock with Unix.Unix_error (Unix.EBADF, _, _) -> ());
    with_lock t.lock (fun () ->
        List.iter
          (fun (_, fd) ->
            try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error ((Unix.EBADF | Unix.ENOTCONN), _, _) -> ())
          t.conns);
    let handlers = with_lock t.lock (fun () -> t.handlers) in
    List.iter Domain.join handlers;
    (match t.bound with
    | Unix.ADDR_UNIX path when Sys.file_exists path -> Sys.remove path
    | _ -> ())
  end

let stats () =
  ( Metrics.counter_value c_requests,
    Metrics.counter_value c_shed,
    Metrics.counter_value c_protocol_errors )
