(* Length-prefixed, CRC-framed binary codec for the network protocol.

   Wire layout of one frame (all integers little-endian) — the same
   shape as the WAL codec ({!Ei_wal.Frame}), so the two adversarial
   test suites share one property harness:

     u32 payload_len | u32 crc32(payload) | payload

   Request payload = u8 tag | u64 id | tag-specific fields
     tag 1 Insert : u16 key_len | key bytes
     tag 2 Remove : u16 key_len | key bytes
     tag 3 Update : u16 key_len | key bytes
     tag 4 Find   : u16 key_len | key bytes
     tag 5 Scan   : u16 key_len | key bytes | u32 count

   Reply payload = u8 tag | u64 id | tag-specific fields
     tag 16 Applied   : i64 result
     tag 17 Rejected  : (empty)
     tag 18 Timed_out : (empty)
     tag 19 Busy      : (empty)

   Clients never hand the server a row id: the server owns the row
   table and assigns tids on insert/update; [Find] returns the tid as
   its result, so a tid is an opaque handle on the wire.

   The decoder is total and incremental: a frame whose remaining bytes
   have simply not arrived yet is [More] (feed more bytes), while any
   definite protocol violation — implausible length field, CRC
   mismatch, bad tag, field overrun, trailing payload bytes — is
   [Corrupt], never an exception and never a wrong value.  The length
   field is bounded before any buffering decision, so a length-field
   lie can never make a reader buffer unboundedly. *)

module Crc32 = Ei_wal.Crc32

type op =
  | Insert of string
  | Remove of string
  | Update of string
  | Find of string
  | Scan of string * int

type request = { id : int; op : op }

type status =
  | Applied of int
  | Rejected
  | Timed_out
  | Busy

type reply = { rid : int; status : status }

type 'a progress =
  | Done of 'a * int
  | More
  | Corrupt of string

let op_key = function
  | Insert k | Remove k | Update k | Find k | Scan (k, _) -> k

let hex s =
  String.concat ""
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let describe_request { id; op } =
  match op with
  | Insert k -> Printf.sprintf "%d insert %s" id (hex k)
  | Remove k -> Printf.sprintf "%d remove %s" id (hex k)
  | Update k -> Printf.sprintf "%d update %s" id (hex k)
  | Find k -> Printf.sprintf "%d find %s" id (hex k)
  | Scan (k, n) -> Printf.sprintf "%d scan %s n=%d" id (hex k) n

let describe_reply { rid; status } =
  match status with
  | Applied r -> Printf.sprintf "%d applied %d" rid r
  | Rejected -> Printf.sprintf "%d rejected" rid
  | Timed_out -> Printf.sprintf "%d timed-out" rid
  | Busy -> Printf.sprintf "%d busy" rid

(* Keys are short byte strings (u16 length field); the largest payload
   is tag + id + key_len + key + scan count. *)
let max_payload = 1 + 8 + 2 + 0xffff + 4
let header_bytes = 8

(* Smallest well-formed payload: tag + id (an empty-bodied reply). *)
let min_payload = 9

(* --- Encoding -------------------------------------------------------- *)

let add_key buf key =
  if String.length key > 0xffff then invalid_arg "Wire.encode: key too long";
  Buffer.add_uint16_le buf (String.length key);
  Buffer.add_string buf key

let add_frame buf payload =
  let p = Buffer.contents payload in
  Buffer.add_int32_le buf (Int32.of_int (String.length p));
  Buffer.add_int32_le buf (Int32.of_int (Crc32.string p));
  Buffer.add_string buf p

let encode_request_into buf { id; op } =
  if id < 0 then invalid_arg "Wire.encode: negative request id";
  let payload = Buffer.create 32 in
  let tagged tag key =
    Buffer.add_uint8 payload tag;
    Buffer.add_int64_le payload (Int64.of_int id);
    add_key payload key
  in
  (match op with
  | Insert k -> tagged 1 k
  | Remove k -> tagged 2 k
  | Update k -> tagged 3 k
  | Find k -> tagged 4 k
  | Scan (k, n) ->
    if n < 0 || n > 0xffffffff then invalid_arg "Wire.encode: bad scan count";
    tagged 5 k;
    Buffer.add_int32_le payload (Int32.of_int n));
  add_frame buf payload

let encode_request r =
  let buf = Buffer.create 48 in
  encode_request_into buf r;
  Buffer.contents buf

let encode_reply_into buf { rid; status } =
  if rid < 0 then invalid_arg "Wire.encode: negative reply id";
  let payload = Buffer.create 24 in
  let tagged tag =
    Buffer.add_uint8 payload tag;
    Buffer.add_int64_le payload (Int64.of_int rid)
  in
  (match status with
  | Applied r ->
    tagged 16;
    Buffer.add_int64_le payload (Int64.of_int r)
  | Rejected -> tagged 17
  | Timed_out -> tagged 18
  | Busy -> tagged 19);
  add_frame buf payload

let encode_reply r =
  let buf = Buffer.create 32 in
  encode_reply_into buf r;
  Buffer.contents buf

(* --- Decoding -------------------------------------------------------- *)

let u32 s pos = Int32.to_int (String.get_int32_le s pos) land 0xffffffff

(* Non-negative 63-bit value (ids). *)
let i64 s pos =
  let v = String.get_int64_le s pos in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    None
  else Some (Int64.to_int v)

(* Operation results are at least -1 ([Find] misses report -1). *)
let i64r s pos =
  let v = String.get_int64_le s pos in
  if Int64.compare v (-1L) < 0 || Int64.compare v (Int64.of_int max_int) > 0
  then None
  else Some (Int64.to_int v)

(* Frame plumbing shared by both directions: header, length
   plausibility, CRC, then [parse s ~base ~len] over the verified
   payload.  [parse] failures can only come from an encoder this
   decoder does not know — still rejected, never a guess. *)
let frame s ~pos ~parse =
  let n = String.length s in
  if pos < 0 || pos > n then Corrupt "position out of range"
  else if n - pos < header_bytes then More
  else begin
    let len = u32 s pos in
    let crc = u32 s (pos + 4) in
    if len < min_payload || len > max_payload then
      Corrupt (Printf.sprintf "implausible payload length %d" len)
    else if n - pos - header_bytes < len then More
    else begin
      let base = pos + header_bytes in
      if Crc32.string ~pos:base ~len s <> crc then Corrupt "crc mismatch"
      else
        match parse s ~base ~len with
        | Ok v -> Done (v, base + len)
        | Error msg -> Corrupt msg
    end
  end

let parse_request s ~base ~len =
  let tag = Char.code s.[base] in
  let with_key k =
    (* [k pos key] parses the tag-specific tail after the key. *)
    if len < 11 then Error "payload too short for key"
    else begin
      let klen = Char.code s.[base + 9] lor (Char.code s.[base + 10] lsl 8) in
      if 11 + klen > len then Error "key overruns payload"
      else k (base + 11 + klen) (String.sub s (base + 9 + 2) klen)
    end
  in
  let finish consumed r =
    if consumed - base <> len then Error "payload length mismatch" else Ok r
  in
  match i64 s (base + 1) with
  | None -> Error "bad request id"
  | Some id -> (
    let keyed mk = with_key (fun p key -> finish p { id; op = mk key }) in
    match tag with
    | 1 -> keyed (fun k -> Insert k)
    | 2 -> keyed (fun k -> Remove k)
    | 3 -> keyed (fun k -> Update k)
    | 4 -> keyed (fun k -> Find k)
    | 5 ->
      with_key (fun p key ->
          if p + 4 > base + len then Error "truncated scan count"
          else finish (p + 4) { id; op = Scan (key, u32 s p) })
    | t -> Error (Printf.sprintf "unknown request tag %d" t))

let parse_reply s ~base ~len =
  let tag = Char.code s.[base] in
  let finish consumed r =
    if consumed - base <> len then Error "payload length mismatch" else Ok r
  in
  match i64 s (base + 1) with
  | None -> Error "bad reply id"
  | Some rid -> (
    match tag with
    | 16 ->
      if len < 17 then Error "truncated result"
      else (
        match i64r s (base + 9) with
        | None -> Error "bad result"
        | Some r -> finish (base + 17) { rid; status = Applied r })
    | 17 -> finish (base + 9) { rid; status = Rejected }
    | 18 -> finish (base + 9) { rid; status = Timed_out }
    | 19 -> finish (base + 9) { rid; status = Busy }
    | t -> Error (Printf.sprintf "unknown reply tag %d" t))

let decode_request s ~pos = frame s ~pos ~parse:parse_request
let decode_reply s ~pos = frame s ~pos ~parse:parse_reply
