(** Server-side per-connection protocol engine: the pure reader/writer
    machines composed with the pipelining-window policy.

    Bytes are fed in; decoded requests queue in arrival order; {!take}
    forms a round of at most [window] requests for one
    {!Ei_shard.Serve.exec} batch and sheds everything queued beyond it
    with {!Wire.Busy} — explicit backpressure instead of unbounded
    buffering.  {!complete} emits the round's replies in slot order and
    then the shed [Busy] replies, so the reply stream is always in
    request order (the ordered-prefix invariant of the [net-pipeline]
    sim scenario).

    A session performs no I/O and owns no lock: it is driven by one
    connection-handler domain over a socket, or by a sim fiber over an
    in-memory pipe — the same transitions either way. *)

type t

val create : ?window:int -> unit -> t
(** [window] (default 256) is both the per-round batch cap and the
    queue-depth threshold past which decoded requests are shed. *)

val feed : t -> ?pos:int -> ?len:int -> string -> (unit, string) result
(** Feed socket bytes; decoded requests join the arrival queue.
    [Error msg] poisons the session: the stream is corrupt and the
    connection must be torn down. *)

val take : t -> Wire.request array
(** Form a round: the oldest at-most-[window] queued requests, in
    arrival order ([[||]] when idle).  Requests queued beyond the
    window are shed — they will be answered [Busy] by {!complete}.
    Raises {!Ei_util.Invariant.Broken} if the previous round was not
    completed. *)

val complete : t -> Wire.status array -> unit
(** Complete the in-flight round with its positional statuses: queue
    one reply per round slot (in order), then one [Busy] per shed
    request.  Raises {!Ei_util.Invariant.Broken} on a status count
    mismatch. *)

val out_take : t -> max:int -> string
val out_pending : t -> int
(** Outgoing bytes, via {!Conn.writer_take} / {!Conn.writer_pending}. *)

val window : t -> int
val queued : t -> int
val shed_count : t -> int
val replied_count : t -> int
val error : t -> string option
val bytes_in : t -> int
val bytes_out : t -> int
