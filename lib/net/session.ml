(* Server-side per-connection protocol engine.

   One session composes the pure reader/writer machines with the
   pipelining-window policy: bytes are fed in, decoded requests queue
   in arrival order, and rounds are formed for the serving layer —
   the first [window] queued requests become one Serve.exec batch
   (positional outcomes are slot-addressed acks, so per-connection
   order is preserved for free), and everything queued beyond the
   window is shed with [Busy] instead of buffered unboundedly.

   Shed replies are emitted after the round's replies: the batch holds
   the oldest outstanding ids and the shed the newest, so the reply
   stream stays in request order — the ordered-prefix invariant the
   net-pipeline sim scenario checks.

   Like the reader/writer underneath, a session performs no I/O and
   owns no lock: it is single-domain state driven by its connection
   handler (or by a sim fiber). *)

module Invariant = Ei_util.Invariant

type t = {
  window : int;
  reader : Wire.request Conn.reader;
  writer : Conn.writer;
  q : Wire.request Queue.t;  (* decoded, not yet assigned to a round *)
  mutable round : Wire.request array;  (* in flight; [||] when idle *)
  mutable shed_round : Wire.request list;  (* shed of the round, arrival order *)
  mutable shed : int;
  mutable replied : int;
}
[@@ei.single_domain]

let create ?(window = 256) () =
  if window < 1 then invalid_arg "Session.create: window < 1";
  {
    window;
    reader = Conn.reader ~decode:Wire.decode_request;
    writer = Conn.writer ();
    q = Queue.create ();
    round = [||];
    shed_round = [];
    shed = 0;
    replied = 0;
  }

let window t = t.window
let queued t = Queue.length t.q
let shed_count t = t.shed
let replied_count t = t.replied
let error t = Conn.reader_error t.reader
let bytes_in t = Conn.reader_bytes t.reader
let bytes_out t = Conn.writer_bytes t.writer

let feed t ?pos ?len chunk =
  match Conn.feed t.reader ?pos ?len chunk with
  | Error _ as e -> e
  | Ok reqs ->
    List.iter (fun r -> Queue.push r t.q) reqs;
    Ok ()

let in_round t = Array.length t.round > 0

let take t =
  if in_round t then
    Invariant.broken "Session.take: previous round not completed";
  let n = min t.window (Queue.length t.q) in
  let batch = Array.init n (fun _ -> Queue.pop t.q) in
  (* Everything still queued arrived beyond a full window while a round
     was pending: shed it now, reply Busy when the round completes so
     the reply stream stays in request order. *)
  let rec drain acc =
    if Queue.is_empty t.q then List.rev acc else drain (Queue.pop t.q :: acc)
  in
  t.round <- batch;
  t.shed_round <- drain [];
  batch

let complete t statuses =
  let n = Array.length t.round in
  if Array.length statuses <> n then
    Invariant.brokenf "Session.complete: %d statuses for a round of %d"
      (Array.length statuses) n;
  Array.iteri
    (fun i (req : Wire.request) ->
      Conn.writer_push t.writer
        (Wire.encode_reply { Wire.rid = req.Wire.id; status = statuses.(i) }))
    t.round;
  t.replied <- t.replied + n;
  List.iter
    (fun (req : Wire.request) ->
      Conn.writer_push t.writer
        (Wire.encode_reply { Wire.rid = req.Wire.id; status = Wire.Busy });
      t.shed <- t.shed + 1;
      t.replied <- t.replied + 1)
    t.shed_round;
  t.round <- [||];
  t.shed_round <- []

let out_pending t = Conn.writer_pending t.writer
let out_take t ~max = Conn.writer_take t.writer ~max
