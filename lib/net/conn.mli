(** Pure per-connection byte-stream state machines.

    A {!type:reader} turns an arbitrary chunking of incoming bytes into
    the sequence of decoded values; a {!type:writer} turns queued
    encoded frames into arbitrarily short outgoing chunks.  Neither
    performs I/O: both are deterministic transition functions of the
    bytes fed, so the same code runs over sockets and under ei_sim's
    deterministic scheduler (yield sites [net.yield.feed] /
    [net.yield.take], inert when untapped).

    Each connection's machines are owned by that connection's handler
    domain — they are single-domain state, not shared. *)

(** {1 Reader} *)

type 'a reader

val reader : decode:(string -> pos:int -> 'a Wire.progress) -> 'a reader

val feed : 'a reader -> ?pos:int -> ?len:int -> string -> ('a list, string) result
(** Feed one chunk ([chunk[pos, pos+len)], default the whole string);
    returns the values completed by it, in stream order (possibly
    []).  [Error msg] means the stream is corrupt: the reader is
    poisoned — every later feed returns the same error — and the
    connection must be torn down.  Buffering is bounded by one frame:
    decoded values are returned immediately and the length field is
    validated before any wait. *)

val reader_pending : 'a reader -> int
(** Buffered undecoded bytes (always less than one full frame). *)

val reader_bytes : 'a reader -> int
(** Total bytes ever fed. *)

val reader_error : 'a reader -> string option

(** {1 Writer} *)

type writer

val writer : unit -> writer

val writer_push : writer -> string -> unit
(** Queue one encoded frame. *)

val writer_take : writer -> max:int -> string
(** Dequeue up to [max] bytes (["" ] when nothing is pending) — the
    short-write half of the state machine: a socket (or schedule) that
    accepts fewer bytes than queued simply takes again. *)

val writer_pending : writer -> int
val writer_bytes : writer -> int
(** Queued-but-untaken bytes; total bytes ever taken. *)
