(** Protocol client and load-generator engine.

    One {!t} owns one connection.  {!call} is the blocking pipelined
    round-trip for tests; {!run_closed} and {!run_open} are the two
    bench shapes — closed loop (fixed pipelining window, a new request
    per reply) and open loop (fixed-rate schedule regardless of
    replies, so queueing delay shows up in the measured latency).

    The client never trusts the server: a corrupt byte stream, an
    unknown reply id or a duplicated reply raises {!Protocol}, and the
    per-status counts in {!stats} keep shed or timed-out operations
    from masquerading as clean throughput. *)

type t

exception Protocol of string
(** The server violated the protocol: corrupt frame, reply for an
    unsent id, duplicate reply, or premature close with replies
    outstanding. *)

val connect : Unix.sockaddr -> t
(** Connect (TCP sockets set [TCP_NODELAY] — the client pipelines its
    own batches, Nagle only adds latency).  Sets the process SIGPIPE
    disposition to ignore, so a vanished server surfaces as [EPIPE]. *)

val close : t -> unit

val call : t -> Wire.op array -> Wire.status array
(** Send all ops as one pipelined batch, block until every reply
    arrives, and return the statuses positionally.  Test helper; not
    for load generation. *)

(** Aggregated result of one load-generator run. *)
type stats = {
  sent : int;
  applied : int;
  rejected : int;
  timed_out : int;
  busy : int;
  elapsed_s : float;
  lat_ns : int array;  (** one entry per reply, sorted ascending *)
}

val quantile : int array -> float -> int
(** [quantile lat q] with [lat] sorted ascending: the nearest-rank
    [q]-quantile (0 for an empty array). *)

val merge_stats : stats list -> stats
(** Pool counters and latency samples across concurrent generators;
    [elapsed_s] is the max (the generators ran in parallel). *)

val run_closed : t -> window:int -> count:int -> op:(int -> Wire.op) -> stats
(** Closed loop: keep [window] requests outstanding until [count] have
    been sent, [op i] producing the [i]th.  Latency is send → reply. *)

val run_open : t -> rate:float -> count:int -> op:(int -> Wire.op) -> stats
(** Open loop: send [count] requests on a fixed [rate]/s schedule
    without waiting for replies.  Latency is scheduled-send → reply,
    so a saturated server's queueing delay is measured, not hidden. *)
