(** Length-prefixed, CRC-framed binary codec for the network protocol.

    Wire layout of one frame (all integers little-endian), the same
    shape as the WAL record codec ({!Ei_wal.Frame}):

    {v u32 payload_len | u32 crc32(payload) | payload v}

    where [payload] starts with a [u8] tag and a [u64] request id.
    Requests carry an operation over a key (tags 1–5: insert, remove,
    update, find, scan); replies carry the typed outcome (tags 16–19:
    applied-with-result, rejected, timed-out, busy).  Clients never
    supply row ids: the server assigns tids, and [Find] returns the
    tid as an opaque handle.

    The decoder is total and incremental: missing bytes are {!More}
    (not an error — feed the rest), while every definite protocol
    violation — implausible length field, CRC mismatch, bad tag,
    field overrun, trailing payload bytes — is {!Corrupt}, never an
    exception and never a wrong value. *)

type op =
  | Insert of string
  | Remove of string
  | Update of string
  | Find of string
  | Scan of string * int  (** start key, entry count *)

type request = { id : int; op : op }

(** Typed outcome on the wire — the net-facing image of
    {!Ei_shard.Serve.outcome} plus the backpressure shed. *)
type status =
  | Applied of int
      (** applied; insert / remove / update 1 if it took effect else
          0, find the tid or -1, scan the visited count *)
  | Rejected
      (** shed by a transient server-side fault; not applied, safe to
          retry *)
  | Timed_out
      (** not acknowledged before the server's deadline; may or may
          not have been applied *)
  | Busy
      (** shed by backpressure before submission (the connection's
          pipelining window was exceeded); not applied, retry after
          draining *)

type reply = { rid : int; status : status }

(** Incremental decode outcome. *)
type 'a progress =
  | Done of 'a * int  (** the value and the position after its frame *)
  | More  (** the frame's remaining bytes have not arrived yet *)
  | Corrupt of string
      (** definite protocol violation: tear the connection down *)

val op_key : op -> string

val describe_request : request -> string
val describe_reply : reply -> string
(** One-line renderings for diagnostics and test oracles. *)

val max_payload : int
val header_bytes : int

val encode_request_into : Buffer.t -> request -> unit
val encode_request : request -> string
(** Raise [Invalid_argument] on a negative id, a key longer than
    65535 bytes, or a scan count outside [u32]. *)

val encode_reply_into : Buffer.t -> reply -> unit
val encode_reply : reply -> string

val decode_request : string -> pos:int -> request progress
val decode_reply : string -> pos:int -> reply progress
(** Decode one frame starting at [pos].  The length field is bounded
    before any buffering decision, so a length-field lie can never
    make a reader wait for (or allocate) an unbounded frame. *)
