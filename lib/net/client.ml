(* Protocol client and load-generator engine.

   One {!t} owns one connection: a nonblocking socket, the pure reply
   reader, and the bookkeeping that matches replies to sent requests
   by id.  The two drivers are the bench shapes:

   - {!run_closed}: closed loop — keep [window] pipelined requests
     outstanding, send a new one per reply, [count] total.  Latency is
     send → reply for each op.

   - {!run_open}: open loop — send at a fixed rate from a schedule,
     regardless of replies, and measure each reply's latency including
     its queueing delay.  The honest tail-latency shape: a saturated
     server shows p999 blowup here long before the closed loop does.

   The client never trusts the server: replies are decoded by the
   total {!Wire} decoder, a corrupt stream raises {!Protocol}, an
   unknown or duplicated reply id raises {!Protocol}, and counts per
   typed status are reported separately so a run with shed or timed
   out operations cannot masquerade as clean throughput. *)

module Invariant = Ei_util.Invariant
module Clock = Ei_util.Bench_clock

exception Protocol of string

type t = {
  fd : Unix.file_descr;
  reader : Wire.reply Conn.reader;
}
[@@ei.single_domain]

let connect addr =
  (* A server that disappears mid-write must surface as EPIPE on the
     write, not as a process-killing SIGPIPE. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
  in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
  | Unix.ADDR_UNIX _ -> ());
  { fd; reader = Conn.reader ~decode:Wire.decode_reply }

let close t = try Unix.close t.fd with Unix.Unix_error (Unix.EBADF, _, _) -> ()

(* --- Stats ------------------------------------------------------------ *)

type stats = {
  sent : int;
  applied : int;
  rejected : int;
  timed_out : int;
  busy : int;
  elapsed_s : float;
  lat_ns : int array;  (* one per reply, sorted ascending *)
}
[@@ei.single_domain]

let quantile lat q =
  let n = Array.length lat in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    lat.(min (n - 1) (max 0 rank))
  end

let compare_ints (a : int) (b : int) = Int.compare a b

let merge_stats ss =
  let tot f = List.fold_left (fun a s -> a + f s) 0 ss in
  let lat = Array.concat (List.map (fun s -> s.lat_ns) ss) in
  Array.sort compare_ints lat;
  {
    sent = tot (fun s -> s.sent);
    applied = tot (fun s -> s.applied);
    rejected = tot (fun s -> s.rejected);
    timed_out = tot (fun s -> s.timed_out);
    busy = tot (fun s -> s.busy);
    elapsed_s = List.fold_left (fun a s -> Float.max a s.elapsed_s) 0.0 ss;
    lat_ns = lat;
  }

(* --- The reply pump --------------------------------------------------- *)

(* Shared driver state for one run: send timestamps indexed by id,
   reply accounting, and the status counters. *)
type run = {
  count : int;
  sent_ns : int array;
  mutable sent_n : int;
  mutable replied_n : int;
  seen : Bytes.t;  (* reply-id bitmap: double-ack detection *)
  lats : int array;
  mutable applied_n : int;
  mutable rejected_n : int;
  mutable timed_out_n : int;
  mutable busy_n : int;
}
[@@ei.single_domain]

let mk_run count =
  {
    count;
    sent_ns = Array.make count 0;
    sent_n = 0;
    replied_n = 0;
    seen = Bytes.make count '\000';
    lats = Array.make count 0;
    applied_n = 0;
    rejected_n = 0;
    timed_out_n = 0;
    busy_n = 0;
  }

let absorb run (r : Wire.reply) =
  let id = r.Wire.rid in
  if id < 0 || id >= run.sent_n then
    raise (Protocol (Printf.sprintf "reply for unsent id %d" id));
  if Bytes.get run.seen id <> '\000' then
    raise (Protocol (Printf.sprintf "duplicate reply for id %d" id));
  Bytes.set run.seen id '\001';
  run.lats.(run.replied_n) <- Clock.now_ns () - run.sent_ns.(id);
  run.replied_n <- run.replied_n + 1;
  match r.Wire.status with
  | Wire.Applied _ -> run.applied_n <- run.applied_n + 1
  | Wire.Rejected -> run.rejected_n <- run.rejected_n + 1
  | Wire.Timed_out -> run.timed_out_n <- run.timed_out_n + 1
  | Wire.Busy -> run.busy_n <- run.busy_n + 1

let read_chunk = 1 lsl 16

(* Pull whatever is readable and absorb the completed replies; returns
   false on server EOF. *)
let drain_readable t run buf =
  match Unix.read t.fd buf 0 (Bytes.length buf) with
  | 0 -> false
  | n -> (
    match Conn.feed t.reader (Bytes.sub_string buf 0 n) with
    | Ok replies ->
      List.iter (absorb run) replies;
      true
    | Error msg -> raise (Protocol msg))
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true

let finish_stats run t0 =
  let lat = Array.sub run.lats 0 run.replied_n in
  Array.sort compare_ints lat;
  {
    sent = run.sent_n;
    applied = run.applied_n;
    rejected = run.rejected_n;
    timed_out = run.timed_out_n;
    busy = run.busy_n;
    elapsed_s = Clock.now () -. t0;
    lat_ns = lat;
  }

(* Request ids are per-run slot indices: a run always drains fully
   (every id acknowledged) before the connection is reused, so ids can
   restart at 0 without ambiguity. *)
let send_one run op =
  let id = run.sent_n in
  if id >= run.count then Invariant.broken "Client: sent past count";
  run.sent_ns.(id) <- Clock.now_ns ();
  run.sent_n <- run.sent_n + 1;
  Wire.encode_request { Wire.id; op }

let write_pending t out =
  (* Nonblocking flush of the out-buffer; returns the unwritten tail. *)
  if String.length out = 0 then out
  else
    match Unix.write_substring t.fd out 0 (String.length out) with
    | n -> String.sub out n (String.length out - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> out

let run_closed t ~window ~count ~op =
  if window < 1 then invalid_arg "Client.run_closed: window < 1";
  let run = mk_run count in
  let buf = Bytes.create read_chunk in
  let t0 = Clock.now () in
  Unix.set_nonblock t.fd;
  let out = ref "" in
  let eof = ref false in
  while run.replied_n < count && not !eof do
    (* Top up the window. *)
    let outstanding () = run.sent_n - run.replied_n in
    let b = Buffer.create 256 in
    while
      String.length !out = 0
      && outstanding () < window
      && run.sent_n < count
    do
      Buffer.add_string b (send_one run (op run.sent_n))
    done;
    if Buffer.length b > 0 then out := !out ^ Buffer.contents b;
    out := write_pending t !out;
    let want_write = String.length !out > 0 in
    let readable, writable, _ =
      Unix.select [ t.fd ] (if want_write then [ t.fd ] else []) [] 1.0
    in
    if readable <> [] then eof := not (drain_readable t run buf);
    if writable <> [] then out := write_pending t !out
  done;
  Unix.clear_nonblock t.fd;
  if run.replied_n < count then
    raise
      (Protocol
         (Printf.sprintf "server closed with %d of %d replies outstanding"
            (count - run.replied_n) count));
  finish_stats run t0

let run_open t ~rate ~count ~op =
  if Float.compare rate 1.0 < 0 then invalid_arg "Client.run_open: rate < 1";
  let run = mk_run count in
  let buf = Bytes.create read_chunk in
  let t0 = Clock.now () in
  Unix.set_nonblock t.fd;
  let out = ref "" in
  let eof = ref false in
  let interval = 1.0 /. rate in
  while run.replied_n < count && not !eof do
    (* Send every op whose scheduled instant has passed — an open loop
       does not wait for replies, so a stalled server accumulates
       queueing delay that shows up in the measured latency. *)
    let now = Clock.now () in
    let due =
      min count (int_of_float ((now -. t0) /. interval) + 1)
    in
    let b = Buffer.create 256 in
    while run.sent_n < due do
      Buffer.add_string b (send_one run (op run.sent_n))
    done;
    if Buffer.length b > 0 then out := !out ^ Buffer.contents b;
    out := write_pending t !out;
    let timeout =
      if String.length !out > 0 then 0.01
      else if run.sent_n >= count then 1.0
      else Float.max 0.0 ((float_of_int run.sent_n *. interval) +. t0 -. now)
    in
    let readable, writable, _ =
      Unix.select [ t.fd ]
        (if String.length !out > 0 then [ t.fd ] else [])
        [] (Float.min timeout 1.0)
    in
    if readable <> [] then eof := not (drain_readable t run buf);
    if writable <> [] then out := write_pending t !out
  done;
  Unix.clear_nonblock t.fd;
  if run.replied_n < count then
    raise
      (Protocol
         (Printf.sprintf "server closed with %d of %d replies outstanding"
            (count - run.replied_n) count));
  finish_stats run t0

(* --- Blocking convenience call ---------------------------------------- *)

let call t ops =
  let n = Array.length ops in
  let statuses = Array.make n Wire.Busy in
  if n > 0 then begin
    let run = mk_run n in
    let buf = Bytes.create read_chunk in
    let b = Buffer.create 256 in
    Array.iter (fun op -> Buffer.add_string b (send_one run op)) ops;
    let out = Buffer.contents b in
    let i = ref 0 in
    while !i < String.length out do
      i := !i + Unix.write_substring t.fd out !i (String.length out - !i)
    done;
    let got = ref 0 in
    while !got < n do
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | 0 ->
        raise
          (Protocol
             (Printf.sprintf "server closed with %d of %d replies outstanding"
                (n - !got) n))
      | r -> (
        match Conn.feed t.reader (Bytes.sub_string buf 0 r) with
        | Error msg -> raise (Protocol msg)
        | Ok replies ->
          List.iter
            (fun (rp : Wire.reply) ->
              absorb run rp;
              statuses.(rp.Wire.rid) <- rp.Wire.status;
              incr got)
            replies)
    done
  end;
  statuses
