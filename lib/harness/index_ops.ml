(* A uniform first-class interface over every ordered index in the
   repository, so workload drivers, the MCAS table plugin, benchmarks
   and examples can be written once and run against any of them. *)

(* The concrete structure behind the closures, so external validators
   ({!Ei_check}) can reach structure-specific introspection. *)
type backend =
  | B_btree of Ei_btree.Btree.t
  | B_elastic of Ei_core.Elastic_btree.t
  | B_radix of Ei_baselines.Radix.t
  | B_skiplist of Ei_baselines.Skiplist.t
  | B_hybrid of Ei_baselines.Hybrid.t
  | B_elastic_skiplist of Ei_core.Elastic_skiplist.t
  | B_olc of Ei_olc.Btree_olc.t
  | B_composite of t array
    (* a router composed over sub-indexes (e.g. the shard fleet);
       validators recurse into the parts *)

and t = {
  name : string;
  backend : backend;
  key_len : int;  (* length in bytes of every key the index accepts *)
  insert : string -> int -> bool;
  remove : string -> bool;
  update : string -> int -> bool;  (* in-place value overwrite *)
  find : string -> int option;
  multi_find : string array -> int option array;
  (* batched point lookup: slot [i] is [find keys.(i)].  Backends with a
     native group-descent path (B+-tree, OLC) overlap the per-level node
     fetches of a batch; the rest fall back to a [find] loop. *)
  scan : string -> int -> int;
  (* [scan start n] visits up to [n] entries with key >= start and
     returns how many were visited; visiting materialises each key (the
     included-column access pattern of §2). *)
  scan_keys : string -> int -> (string -> unit) -> int;
  (* like [scan] but hands each visited key to the callback: the
     included-column query path of §2 (results computed from key bytes) *)
  memory_bytes : unit -> int;
  count : unit -> int;
  set_size_bound : int -> unit;
  (* retune the elastic soft bound on a live index; no-op for inelastic
     indexes — the uniform lever the global memory coordinator pulls *)
  info : unit -> string;  (* index-specific status, e.g. elastic state *)
}

let no_size_bound (_ : int) = ()

(* Fallback batched lookup for backends without a group-descent path. *)
let multi_of_find find keys = Array.map find keys

(* Transient operation failure, injected in front of any index: each
   point operation first draws at the site and raises [Fault.Injected]
   when it fires.  The backend is passed through unchanged, so deep
   validators ({!Ei_check}) still reach the real structure.  Scans and
   aggregates are not wrapped — transient faults model per-op resource
   refusals (allocation failure, admission control), which a caller
   retries; corrupting read-only introspection would only blind the
   validators this substrate exists to feed. *)
let inject ~site (ix : t) =
  let module Fault = Ei_fault.Fault in
  {
    ix with
    insert =
      (fun k tid ->
        Fault.inject site;
        ix.insert k tid);
    remove =
      (fun k ->
        Fault.inject site;
        ix.remove k);
    update =
      (fun k tid ->
        Fault.inject site;
        ix.update k tid);
    find =
      (fun k ->
        Fault.inject site;
        ix.find k);
    multi_find =
      (* a batch is a sequence of point lookups, so each key draws —
         matching the per-op granularity callers retry at.  A fault
         aborts the rest of the batch; the grouped descent is skipped
         because partial batches under injection are exactly what the
         per-op fallback paths exist to handle. *)
      (fun keys ->
        Array.map
          (fun k ->
            Fault.inject site;
            ix.find k)
          keys);
  }

(* Per-operation latency observation, mirroring [inject]: the closures
   are wrapped, the backend passes through untouched.  Each op lands in
   its own log-bucketed histogram ([<prefix>.<op>_ns]), so one registry
   snapshot shows the full latency profile of a run.  When the registry
   is disabled the wrapper costs one atomic load per op. *)
let observed ~prefix (ix : t) =
  let module Metrics = Ei_obs.Metrics in
  let module Clock = Ei_util.Bench_clock in
  let h op = Metrics.histogram (prefix ^ "." ^ op ^ "_ns") in
  let h_insert = h "insert"
  and h_remove = h "remove"
  and h_update = h "update"
  and h_find = h "find"
  and h_multi = h "multi_find"
  and h_scan = h "scan" in
  let timed h f =
    if Metrics.enabled () then begin
      let t0 = Clock.now_ns () in
      let r = f () in
      Metrics.observe h (Clock.now_ns () - t0);
      r
    end
    else f ()
  in
  {
    ix with
    insert = (fun k tid -> timed h_insert (fun () -> ix.insert k tid));
    remove = (fun k -> timed h_remove (fun () -> ix.remove k));
    update = (fun k tid -> timed h_update (fun () -> ix.update k tid));
    find = (fun k -> timed h_find (fun () -> ix.find k));
    multi_find = (fun keys -> timed h_multi (fun () -> ix.multi_find keys));
    scan = (fun start n -> timed h_scan (fun () -> ix.scan start n));
  }

(* Per-operation root span contexts, for drivers that call the index
   directly rather than through {!Ei_shard.Serve} (which mints its
   own): each op runs under a fresh trace id, so the histogram
   exemplars and trace events recorded beneath it are causally
   attributed.  One counter fetch-add per op when tracing is on;
   one atomic load when off. *)
let traced (ix : t) =
  let module Ctx = Ei_obs.Ctx in
  let module Trace = Ei_obs.Trace in
  let under f =
    if Trace.enabled () then begin
      Ctx.set (Ctx.mint ());
      match f () with
      | r ->
        Ctx.clear ();
        r
      | exception e ->
        Ctx.clear ();
        raise e
    end
    else f ()
  in
  {
    ix with
    insert = (fun k tid -> under (fun () -> ix.insert k tid));
    remove = (fun k -> under (fun () -> ix.remove k));
    update = (fun k tid -> under (fun () -> ix.update k tid));
    find = (fun k -> under (fun () -> ix.find k));
    multi_find = (fun keys -> under (fun () -> ix.multi_find keys));
    scan = (fun start n -> under (fun () -> ix.scan start n));
  }

let checksum = ref 0
(* Scanned keys are folded into this sink so the compiler cannot elide
   the key materialisation work. *)

(* Order-sensitive digest of the full contents: FNV-1a chained over
   every (key, tid) pair in key order, starting from the all-zero key
   (the minimum of the fixed-length big-endian key space).  Two indexes
   over the same logical map produce the same fingerprint whatever their
   physical layout — the equality ei_sim's differential engine checks at
   tape checkpoints.  Quiescent use only: it walks the live structure
   via [scan_keys] and [find]. *)
let fingerprint (ix : t) =
  let module Fnv = Ei_util.Fnv in
  let h = ref 0 in
  let low = String.make ix.key_len '\000' in
  ignore
    (ix.scan_keys low max_int (fun k ->
         let tid = match ix.find k with Some tid -> tid | None -> -1 in
         h := Fnv.hash ~seed:!h (k ^ string_of_int tid)));
  !h

let of_btree name (tree : Ei_btree.Btree.t) =
  {
    name;
    backend = B_btree tree;
    key_len = Ei_btree.Btree.key_len tree;
    insert = Ei_btree.Btree.insert tree;
    remove = Ei_btree.Btree.remove tree;
    update = Ei_btree.Btree.update tree;
    find = Ei_btree.Btree.find tree;
    multi_find = Ei_btree.Btree.multi_find tree;
    scan =
      (fun start n ->
        Ei_btree.Btree.fold_range tree ~start ~n
          (fun acc k _ ->
            checksum := !checksum lxor Char.code (String.unsafe_get k 0);
            acc + 1)
          0);
    scan_keys =
      (fun start n visit ->
        Ei_btree.Btree.fold_range tree ~start ~n
          (fun acc k _ ->
            visit k;
            acc + 1)
          0);
    memory_bytes = (fun () -> Ei_btree.Btree.memory_bytes tree);
    count = (fun () -> Ei_btree.Btree.count tree);
    set_size_bound = no_size_bound;
    info = (fun () -> "");
  }

let of_elastic name (tree : Ei_core.Elastic_btree.t) =
  {
    name;
    backend = B_elastic tree;
    key_len = Ei_core.Elastic_btree.key_len tree;
    insert = Ei_core.Elastic_btree.insert tree;
    remove = Ei_core.Elastic_btree.remove tree;
    update = Ei_core.Elastic_btree.update tree;
    find = Ei_core.Elastic_btree.find tree;
    multi_find =
      (* the elastic wrapper delegates point ops to the inner tree, so
         group descent over it is the same lookup the [find] above runs *)
      Ei_btree.Btree.multi_find (Ei_core.Elastic_btree.tree tree);
    scan =
      (fun start n ->
        Ei_core.Elastic_btree.fold_range tree ~start ~n
          (fun acc k _ ->
            checksum := !checksum lxor Char.code (String.unsafe_get k 0);
            acc + 1)
          0);
    scan_keys =
      (fun start n visit ->
        Ei_core.Elastic_btree.fold_range tree ~start ~n
          (fun acc k _ ->
            visit k;
            acc + 1)
          0);
    memory_bytes = (fun () -> Ei_core.Elastic_btree.memory_bytes tree);
    count = (fun () -> Ei_core.Elastic_btree.count tree);
    set_size_bound = Ei_core.Elastic_btree.set_size_bound tree;
    info =
      (fun () ->
        Ei_core.Elasticity.state_name (Ei_core.Elastic_btree.state tree));
  }

let of_radix name (tree : Ei_baselines.Radix.t) =
  {
    name;
    backend = B_radix tree;
    key_len = Ei_baselines.Radix.key_len tree;
    insert = Ei_baselines.Radix.insert tree;
    remove = Ei_baselines.Radix.remove tree;
    update = Ei_baselines.Radix.update tree;
    find = Ei_baselines.Radix.find tree;
    multi_find = multi_of_find (Ei_baselines.Radix.find tree);
    scan =
      (fun start n ->
        Ei_baselines.Radix.fold_range tree ~start ~n
          (fun acc k _ ->
            checksum := !checksum lxor Char.code (String.unsafe_get k 0);
            acc + 1)
          0);
    scan_keys =
      (fun start n visit ->
        Ei_baselines.Radix.fold_range tree ~start ~n
          (fun acc k _ ->
            visit k;
            acc + 1)
          0);
    memory_bytes = (fun () -> Ei_baselines.Radix.memory_bytes tree);
    count = (fun () -> Ei_baselines.Radix.count tree);
    set_size_bound = no_size_bound;
    info = (fun () -> "");
  }

let of_elastic_skiplist name (tree : Ei_core.Elastic_skiplist.t) =
  {
    name;
    backend = B_elastic_skiplist tree;
    key_len = Ei_core.Elastic_skiplist.key_len tree;
    insert = Ei_core.Elastic_skiplist.insert tree;
    remove = Ei_core.Elastic_skiplist.remove tree;
    update = Ei_core.Elastic_skiplist.update_value tree;
    find = Ei_core.Elastic_skiplist.find tree;
    multi_find = multi_of_find (Ei_core.Elastic_skiplist.find tree);
    scan =
      (fun start n ->
        Ei_core.Elastic_skiplist.fold_range tree ~start ~n
          (fun acc k _ ->
            checksum := !checksum lxor Char.code (String.unsafe_get k 0);
            acc + 1)
          0);
    scan_keys =
      (fun start n visit ->
        Ei_core.Elastic_skiplist.fold_range tree ~start ~n
          (fun acc k _ ->
            visit k;
            acc + 1)
          0);
    memory_bytes = (fun () -> Ei_core.Elastic_skiplist.memory_bytes tree);
    count = (fun () -> Ei_core.Elastic_skiplist.count tree);
    set_size_bound = Ei_core.Elastic_skiplist.set_size_bound tree;
    info =
      (fun () ->
        Ei_core.Elastic_skiplist.state_name (Ei_core.Elastic_skiplist.state tree));
  }

let of_hybrid name (tree : Ei_baselines.Hybrid.t) =
  {
    name;
    backend = B_hybrid tree;
    key_len = Ei_baselines.Hybrid.key_len tree;
    insert = Ei_baselines.Hybrid.insert tree;
    remove = Ei_baselines.Hybrid.remove tree;
    update = Ei_baselines.Hybrid.update tree;
    find = Ei_baselines.Hybrid.find tree;
    multi_find = multi_of_find (Ei_baselines.Hybrid.find tree);
    scan =
      (fun start n ->
        Ei_baselines.Hybrid.fold_range tree ~start ~n
          (fun acc k _ ->
            checksum := !checksum lxor Char.code (String.unsafe_get k 0);
            acc + 1)
          0);
    scan_keys =
      (fun start n visit ->
        Ei_baselines.Hybrid.fold_range tree ~start ~n
          (fun acc k _ ->
            visit k;
            acc + 1)
          0);
    memory_bytes = (fun () -> Ei_baselines.Hybrid.memory_bytes tree);
    count = (fun () -> Ei_baselines.Hybrid.count tree);
    set_size_bound = no_size_bound;
    info =
      (fun () ->
        Printf.sprintf "%d merges"
          (Ei_baselines.Hybrid.stats tree).Ei_baselines.Hybrid.merges);
  }

let of_skiplist name (tree : Ei_baselines.Skiplist.t) =
  {
    name;
    backend = B_skiplist tree;
    key_len = Ei_baselines.Skiplist.key_len tree;
    insert = Ei_baselines.Skiplist.insert tree;
    remove = Ei_baselines.Skiplist.remove tree;
    update = Ei_baselines.Skiplist.update tree;
    find = Ei_baselines.Skiplist.find tree;
    multi_find = multi_of_find (Ei_baselines.Skiplist.find tree);
    scan =
      (fun start n ->
        Ei_baselines.Skiplist.fold_range tree ~start ~n
          (fun acc k _ ->
            checksum := !checksum lxor Char.code (String.unsafe_get k 0);
            acc + 1)
          0);
    scan_keys =
      (fun start n visit ->
        Ei_baselines.Skiplist.fold_range tree ~start ~n
          (fun acc k _ ->
            visit k;
            acc + 1)
          0);
    memory_bytes = (fun () -> Ei_baselines.Skiplist.memory_bytes tree);
    count = (fun () -> Ei_baselines.Skiplist.count tree);
    set_size_bound = no_size_bound;
    info = (fun () -> "");
  }

let of_olc name (tree : Ei_olc.Btree_olc.t) =
  let module Olc = Ei_olc.Btree_olc in
  let elastic = not (String.equal (Olc.elastic_state_name tree) "") in
  {
    name;
    backend = B_olc tree;
    key_len = Olc.key_len tree;
    insert = Olc.insert tree;
    remove = Olc.remove tree;
    update = Olc.update tree;
    find = Olc.find tree;
    multi_find = Olc.multi_find tree;
    scan =
      (fun start n ->
        Olc.fold_range tree ~start ~n
          (fun acc k _ ->
            checksum := !checksum lxor Char.code (String.unsafe_get k 0);
            acc + 1)
          0);
    scan_keys =
      (fun start n visit ->
        Olc.fold_range tree ~start ~n
          (fun acc k _ ->
            visit k;
            acc + 1)
          0);
    memory_bytes =
      (* the elastic tracker is the only size that is safe to read while
         other domains mutate; [Olc.memory_bytes] is a full traversal *)
      (fun () ->
        if elastic then Olc.elastic_memory_bytes tree
        else Olc.memory_bytes tree);
    count = (fun () -> Olc.count tree);
    set_size_bound = Olc.set_size_bound tree;
    info =
      (fun () ->
        if elastic then
          Printf.sprintf "%s, %d compact, %d conversions"
            (Olc.elastic_state_name tree)
            (Olc.elastic_compact_leaves tree)
            (Olc.elastic_conversions tree)
        else "");
  }
