(** Construct any of the evaluated indexes by kind: the index zoo of
    §6.  All indexes implement {!Index_ops.t}. *)

type kind =
  | Stx                                    (** STX-style B+-tree *)
  | Seqtree of int                         (** STX-SeqTree, leaf capacity *)
  | Subtrie of int                         (** STX-SubTrie, leaf capacity *)
  | Stringtrie of int                      (** STX-StringBTrie, leaf capacity *)
  | Elastic of Ei_core.Elasticity.config   (** the elastic B+-tree *)
  | Prefix                                 (** prefix-compressed B+-tree *)
  | Bwtree                                 (** Bw-tree-style delta chains *)
  | Gapped                                 (** gapped/slotted leaves
                                               (BS-tree style): inserts
                                               fill distributed gaps
                                               instead of shifting *)
  | Hot                                    (** blind radix trie, indirect keys *)
  | Art                                    (** blind radix trie, stored keys *)
  | Skiplist
  | Hybrid of float                        (** two-stage hybrid index [33],
                                               with this merge ratio *)
  | Elastic_skiplist of Ei_core.Elastic_skiplist.config
                                           (** the framework on a skip list *)
  | Olc of Ei_olc.Btree_olc.leaf_kind
      (** BTreeOLC (§6.2): standard, compact or elastic leaves.  For
          concurrent use with compact leaves pass
          {!Ei_olc.Btree_olc.safe_loader} as [load]. *)

val kind_name : kind -> string

val make :
  ?name:string ->
  ?leaf_capacity:int ->
  key_len:int ->
  load:(int -> string) ->
  kind ->
  Index_ops.t
(** [make ~key_len ~load kind] builds an index.  [load tid] must return
    the indexed key of row [tid] (used by indirect-key indexes). *)
