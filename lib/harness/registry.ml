(* Construct any of the evaluated indexes by name — the index zoo of §6:
   STX, STX-SeqTree128, STX-SubTrie, the elastic B+-tree (with a
   configurable shrink bound), the HOT substitute, ART mode, and the
   skip list. *)

type kind =
  | Stx
  | Seqtree of int        (* STX-SeqTree with this leaf capacity *)
  | Subtrie of int        (* STX-SubTrie with this leaf capacity *)
  | Stringtrie of int     (* STX-StringBTrie with this leaf capacity *)
  | Elastic of Ei_core.Elasticity.config
  | Prefix  (* prefix-compressed B+-tree (key truncation) *)
  | Bwtree  (* Bw-tree-style delta-chained leaves *)
  | Gapped  (* gapped/slotted leaves (BS-tree style) *)
  | Hot
  | Art
  | Skiplist
  | Hybrid of float  (* two-stage hybrid index with this merge ratio *)
  | Elastic_skiplist of Ei_core.Elastic_skiplist.config
  | Olc of Ei_olc.Btree_olc.leaf_kind

let kind_name = function
  | Stx -> "stx"
  | Seqtree c -> Printf.sprintf "seqtree%d" c
  | Subtrie c -> Printf.sprintf "subtrie%d" c
  | Stringtrie c -> Printf.sprintf "stringtrie%d" c
  | Elastic _ -> "elastic"
  | Prefix -> "prefix"
  | Bwtree -> "bwtree"
  | Gapped -> "gapped"
  | Hot -> "hot"
  | Art -> "art"
  | Skiplist -> "skiplist"
  | Hybrid _ -> "hybrid"
  | Elastic_skiplist _ -> "elastic-skiplist"
  | Olc Ei_olc.Btree_olc.Olc_std -> "olc"
  | Olc (Ei_olc.Btree_olc.Olc_seqtree _) -> "olc-seqtree"
  | Olc (Ei_olc.Btree_olc.Olc_elastic _) -> "olc-elastic"

let make ?name ?(leaf_capacity = 16) ~key_len ~load kind =
  let name = match name with Some n -> n | None -> kind_name kind in
  match kind with
  | Stx ->
    Index_ops.of_btree name
      (Ei_btree.Btree.create ~leaf_capacity ~key_len ~load
         ~policy:Ei_btree.Policy.stx ())
  | Seqtree capacity ->
    Index_ops.of_btree name
      (Ei_btree.Btree.create ~leaf_capacity ~key_len ~load
         ~policy:(Ei_btree.Policy.all_seqtree ~capacity ())
         ())
  | Subtrie capacity ->
    Index_ops.of_btree name
      (Ei_btree.Btree.create ~leaf_capacity ~key_len ~load
         ~policy:(Ei_btree.Policy.all_subtrie ~capacity ())
         ())
  | Stringtrie capacity ->
    Index_ops.of_btree name
      (Ei_btree.Btree.create ~leaf_capacity ~key_len ~load
         ~policy:(Ei_btree.Policy.all_stringtrie ~capacity ())
         ())
  | Elastic config ->
    Index_ops.of_elastic name
      (Ei_core.Elastic_btree.create ~leaf_capacity ~key_len ~load config ())
  | Prefix ->
    Index_ops.of_btree name
      (Ei_btree.Btree.create ~leaf_capacity ~key_len ~load
         ~policy:(Ei_btree.Policy.all_prefix ())
         ())
  | Bwtree ->
    Index_ops.of_btree name
      (Ei_btree.Btree.create ~leaf_capacity ~key_len ~load
         ~policy:(Ei_btree.Policy.all_bw ())
         ())
  | Gapped ->
    Index_ops.of_btree name
      (Ei_btree.Btree.create ~leaf_capacity ~key_len ~load
         ~policy:(Ei_btree.Policy.all_gapped ())
         ())
  | Hot ->
    Index_ops.of_radix name
      (Ei_baselines.Radix.create ~store_keys:false ~key_len ~load ())
  | Art ->
    Index_ops.of_radix name
      (Ei_baselines.Radix.create ~store_keys:true ~key_len ~load ())
  | Skiplist -> Index_ops.of_skiplist name (Ei_baselines.Skiplist.create ~key_len ())
  | Hybrid merge_ratio ->
    Index_ops.of_hybrid name
      (Ei_baselines.Hybrid.create ~merge_ratio ~key_len ~load ())
  | Elastic_skiplist config ->
    Index_ops.of_elastic_skiplist name
      (Ei_core.Elastic_skiplist.create ~key_len ~load config ())
  | Olc kind ->
    (* Concurrent use with compact leaves needs a torn-read-proof loader:
       pass [Btree_olc.safe_loader] as [load]. *)
    Index_ops.of_olc name
      (Ei_olc.Btree_olc.create ~leaf_capacity ~kind ~key_len ~load ())
