(** A uniform first-class interface over every ordered index in the
    repository, so workload drivers, the MCAS table plugin, benchmarks
    and examples are written once. *)

type t = {
  name : string;
  insert : string -> int -> bool;
  remove : string -> bool;
  update : string -> int -> bool;  (** in-place value overwrite *)
  find : string -> int option;
  scan : string -> int -> int;
      (** [scan start n] visits up to [n] entries with key >= start and
          returns how many were visited; each visited key is
          materialised (the included-column access pattern of §2) *)
  scan_keys : string -> int -> (string -> unit) -> int;
      (** like [scan] but hands each visited key to the callback — the
          included-column query path of §2 *)
  memory_bytes : unit -> int;
  count : unit -> int;
  info : unit -> string;  (** index-specific status, e.g. elastic state *)
}

val checksum : int ref
(** Sink for scanned key bytes (prevents dead-code elimination). *)

val of_btree : string -> Ei_btree.Btree.t -> t
val of_elastic : string -> Ei_core.Elastic_btree.t -> t
val of_radix : string -> Ei_baselines.Radix.t -> t
val of_skiplist : string -> Ei_baselines.Skiplist.t -> t
val of_hybrid : string -> Ei_baselines.Hybrid.t -> t
val of_elastic_skiplist : string -> Ei_core.Elastic_skiplist.t -> t
