(** A uniform first-class interface over every ordered index in the
    repository, so workload drivers, the MCAS table plugin, benchmarks
    and examples are written once. *)

(** The concrete structure behind the closures.  {!Ei_check} dispatches
    its deep validators on this. *)
type backend =
  | B_btree of Ei_btree.Btree.t
  | B_elastic of Ei_core.Elastic_btree.t
  | B_radix of Ei_baselines.Radix.t
  | B_skiplist of Ei_baselines.Skiplist.t
  | B_hybrid of Ei_baselines.Hybrid.t
  | B_elastic_skiplist of Ei_core.Elastic_skiplist.t
  | B_olc of Ei_olc.Btree_olc.t
  | B_composite of t array
      (** a router composed over sub-indexes (e.g. the shard fleet);
          validators recurse into the parts *)

and t = {
  name : string;
  backend : backend;
  key_len : int;  (** length in bytes of every key the index accepts *)
  insert : string -> int -> bool;
  remove : string -> bool;
  update : string -> int -> bool;  (** in-place value overwrite *)
  find : string -> int option;
  multi_find : string array -> int option array;
      (** batched point lookup: slot [i] is [find keys.(i)].  Backends
          with a native group-descent path (B+-tree, OLC) overlap the
          per-level node fetches; the rest run a [find] loop *)
  scan : string -> int -> int;
      (** [scan start n] visits up to [n] entries with key >= start and
          returns how many were visited; each visited key is
          materialised (the included-column access pattern of §2) *)
  scan_keys : string -> int -> (string -> unit) -> int;
      (** like [scan] but hands each visited key to the callback — the
          included-column query path of §2 *)
  memory_bytes : unit -> int;
  count : unit -> int;
  set_size_bound : int -> unit;
      (** retune the elastic soft bound on a live index; no-op for
          inelastic indexes — the uniform lever the global memory
          coordinator pulls *)
  info : unit -> string;  (** index-specific status, e.g. elastic state *)
}

val no_size_bound : int -> unit
(** The no-op [set_size_bound] for inelastic indexes. *)

val multi_of_find : (string -> int option) -> string array -> int option array
(** Fallback [multi_find] for backends without a group-descent path: a
    plain [find] loop. *)

val inject : site:Ei_fault.Fault.site -> t -> t
(** [inject ~site ix] is [ix] whose point operations (insert / remove /
    update / find) first draw at the fault site and raise
    {!Ei_fault.Fault.Injected} when it fires — transient op failure a
    caller is expected to absorb or retry.  The backend is unchanged,
    so deep validators still reach the real structure. *)

val observed : prefix:string -> t -> t
(** [observed ~prefix ix] is [ix] whose operations (insert / remove /
    update / find / scan) are timed into per-op latency histograms
    named [<prefix>.<op>_ns] in the {!Ei_obs.Metrics} registry.  The
    backend is unchanged.  One atomic load per op while the registry is
    disabled. *)

val traced : t -> t
(** [traced ix] is [ix] whose operations each run under a freshly
    minted root {!Ei_obs.Ctx} span context (cleared afterwards, on
    the exception path too), so histogram exemplars and trace events
    recorded beneath them carry a trace id.  For drivers that call
    the index directly; {!Ei_shard.Serve} mints its own contexts.
    One atomic load per op while tracing is disabled. *)

val checksum : int ref
(** Sink for scanned key bytes (prevents dead-code elimination). *)

val fingerprint : t -> int
(** Order-sensitive FNV-1a digest of the full contents — every
    [(key, tid)] pair in key order, walked from the all-zero key.  Two
    indexes over the same logical map fingerprint equally whatever
    their physical layout; this is the checkpoint equality of the
    ei_sim differential engine.  Quiescent use only (walks the live
    structure). *)

val of_btree : string -> Ei_btree.Btree.t -> t
val of_elastic : string -> Ei_core.Elastic_btree.t -> t
val of_radix : string -> Ei_baselines.Radix.t -> t
val of_skiplist : string -> Ei_baselines.Skiplist.t -> t
val of_hybrid : string -> Ei_baselines.Hybrid.t -> t
val of_elastic_skiplist : string -> Ei_core.Elastic_skiplist.t -> t

val of_olc : string -> Ei_olc.Btree_olc.t -> t
(** The OLC tree behind the uniform interface.  [memory_bytes] reports
    the atomically tracked size for elastic trees (safe under
    concurrency) and falls back to a full traversal otherwise. *)
