(** SeqTree: the paper's compact blind-trie node representation (§5).

    A SeqTree stores [n] keys *indirectly*: only the [n-1] discriminating
    bit positions (BlindiBits), a small auxiliary tree over the top trie
    levels (BlindiTree), and the tuple ids.  Searches verify their
    candidate by loading the key from the base table via a [load]
    closure.  [levels = 0] degenerates to the pure SeqTrie of Ferguson;
    [breathing > 0] sizes the tuple-id array to occupancy plus slack
    (§5.4). *)

type t

type load = int -> string
(** [load tid] fetches the indexed key of row [tid]. *)

val create :
  key_len:int -> capacity:int -> levels:int -> breathing:int -> unit -> t

val of_sorted :
  key_len:int -> capacity:int -> levels:int -> breathing:int ->
  string array -> int array -> int -> t
(** [of_sorted ... keys tids n] builds a node from the first [n] strictly
    increasing keys and their tids (keys are used only for construction
    and not retained). *)

val count : t -> int
val capacity : t -> int
val key_len : t -> int
val levels : t -> int
val is_full : t -> bool
val tid_at : t -> int -> int

val breathing : t -> int
(** The breathing slack the node was created with (0 = disabled). *)

val tid_slots : t -> int
(** Allocated tuple-id slots; under breathing this tracks occupancy
    plus slack ({!breathing}), otherwise it equals {!capacity}. *)

val bit_at : t -> int -> int
(** [bit_at t i] is BlindiBits entry [i] (0 <= i < count - 1): the first
    bit position where key [i] and key [i+1] differ.  Sanitizer support:
    {!Ei_check} recomputes these from loaded keys. *)

val tree_slot_count : t -> int
(** Number of BlindiTree slots ([2^levels - 1], at least 1). *)

val tree_slot : t -> int -> int
(** Raw BlindiTree entry: an index into BlindiBits, or {!absent_slot}. *)

val absent_slot : int
(** The ET marker stored in empty BlindiTree slots. *)

val memory_bytes : t -> int
(** Node size under the explicit memory model. *)

type locate_result =
  | Found of int  (** key present at this position *)
  | Pred of int   (** key absent; predecessor position, -1 if none *)

val locate : t -> load:load -> string -> locate_result
(** Predecessor-semantics search (§5.2). *)

val find : t -> load:load -> string -> int option
(** Point lookup returning the tuple id. *)

val update : t -> load:load -> string -> int -> bool
(** Overwrite the tuple id of an existing key; false if absent. *)

type insert_result = Inserted | Full | Duplicate

val insert : t -> load:load -> string -> int -> insert_result

type remove_result = Removed | Not_present

val remove : t -> load:load -> string -> remove_result

val split : t -> left_capacity:int -> right_capacity:int -> t * t
(** Split into first-half / second-half nodes (§5.3). *)

val merge : t -> t -> load:load -> capacity:int -> levels:int -> t
(** Merge two adjacent nodes (all keys of the first below the second). *)

val with_capacity : t -> capacity:int -> levels:int -> t
(** Rebuild with a new capacity (elastic grow/shrink of a compact leaf). *)

val fold_from : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over tuple ids in key order starting at a position. *)

val iter : (int -> unit) -> t -> unit

val lower_bound : t -> load:load -> string -> int
(** Position of the first key [>=] the argument ([count t] if none). *)

val check_invariants : t -> load:load -> unit
(** Assert structural invariants (test support). *)
