(* SeqTree: the paper's compact blind-trie node representation (§5).

   The node stores, for n keys:
   - BlindiBits: n-1 discriminating-bit positions in key order, where
     entry i is the first bit differing between the i-th and (i+1)-th key
     (keys sorted lexicographically, bits MSB-first);
   - BlindiTree: a complete binary tree over the top [levels] trie levels,
     laid out as an array where node i has children 2i+1 and 2i+2; each
     entry is an index into BlindiBits, or ET when the trie node is absent;
   - the tuple-id array, optionally sized by the breathing rule (§5.4).

   Keys are NOT stored: searches verify their candidate by loading the
   key from the base table through the [load] closure.  [levels = 0]
   degenerates to the pure SeqTrie of Ferguson [12]. *)

type t = {
  key_len : int;
  capacity : int;
  levels : int;
  breathing : int;  (* slack s; 0 disables breathing *)
  mutable n : int;
  bits : Bitsarr.t;         (* capacity - 1 entries, n - 1 in use *)
  tree : int array;         (* 2^levels - 1 entries; et when absent *)
  mutable tids : int array; (* key order; length per breathing rule *)
}

let et = -1

type load = int -> string
(* [load tid] fetches the indexed key of row [tid] from the base table. *)

let tree_size levels = (1 lsl levels) - 1

let tid_slots_for ~capacity ~breathing n =
  if breathing = 0 then capacity else min capacity (max 1 (n + breathing))

let create ~key_len ~capacity ~levels ~breathing () =
  assert (capacity >= 2);
  assert (levels >= 0);
  assert (breathing >= 0);
  let width = Bitsarr.width_for_bits (key_len * 8) in
  {
    key_len; capacity; levels; breathing;
    n = 0;
    bits = Bitsarr.create ~width ~capacity:(capacity - 1);
    tree = Array.make (max 1 (tree_size levels)) et;
    tids = Array.make (tid_slots_for ~capacity ~breathing 0) 0;
  }

let count t = t.n
let capacity t = t.capacity
let key_len t = t.key_len
let levels t = t.levels
let is_full t = t.n >= t.capacity

let tid_at t i =
  assert (i >= 0 && i < t.n);
  t.tids.(i)

let breathing t = t.breathing
let tid_slots t = Array.length t.tids

(* Introspection for the deep sanitizer ({!Ei_check}): raw BlindiBits
   entries, BlindiTree slots, and the absent-marker. *)
let bit_at t i =
  assert (i >= 0 && i < t.n - 1);
  Bitsarr.get t.bits i

let tree_slot_count t = Array.length t.tree
let tree_slot t i = t.tree.(i)
let absent_slot = et

let memory_bytes t =
  Ei_storage.Memmodel.seqtree_bytes ~capacity:t.capacity ~key_len:t.key_len
    ~levels:t.levels ~tid_slots:(Array.length t.tids)
    ~breathing:(t.breathing > 0)

(* ------------------------------------------------------------------ *)
(* BlindiTree construction.                                            *)

(* Index of the leftmost minimum entry of bits[lo..hi]; the ranges we are
   called on are in-order segments of trie subtrees, where the minimum is
   the subtree root. *)
let min_entry_index t lo hi =
  let best = ref lo and best_v = ref (Bitsarr.get t.bits lo) in
  for i = lo + 1 to hi do
    let v = Bitsarr.get t.bits i in
    if v < !best_v then begin
      best := i;
      best_v := v
    end
  done;
  !best

(* Rebuild the BlindiTree from BlindiBits.  Node [p] covers the in-order
   range [lo, hi] of BlindiBits indices; empty ranges leave ET. *)
let rebuild_tree t =
  Stats.global.rebuilds <- Stats.global.rebuilds + 1;
  let size = tree_size t.levels in
  let tree = t.tree in
  Array.fill tree 0 (Array.length tree) et;
  let rec fill p (lo : int) hi =
    if p < size && lo <= hi then begin
      let m = min_entry_index t lo hi in
      tree.(p) <- m;
      fill ((2 * p) + 1) lo (m - 1);
      fill ((2 * p) + 2) (m + 1) hi
    end
  in
  if size > 0 && t.n >= 2 then fill 0 0 (t.n - 2)

(* ------------------------------------------------------------------ *)
(* Search.                                                             *)

let key_bit key b = Ei_util.Key.bit key b

(* SeqTrie sequential scan over bits[lo..hi], assuming the searched key is
   one of keys lo..hi+1.  Returns the assumed key position. *)
let seq_scan t key lo hi =
  let j = ref lo and threshold = ref max_int in
  for i = lo to hi do
    Stats.global.scan_steps <- Stats.global.scan_steps + 1;
    let b = Bitsarr.get t.bits i in
    if b <= !threshold then
      if key_bit key b = 1 then begin
        j := i + 1;
        threshold := max_int
      end
      else threshold := b
  done;
  !j

(* BlindiTree descent: narrow the scan range, then scan sequentially.
   Returns the assumed position of [key] in [0, n). *)
let assumed_position t key =
  let size = tree_size t.levels in
  if t.n <= 1 then 0
  else begin
    let lo = ref 0 and hi = ref (t.n - 2) in
    let p = ref 0 in
    let fell_off = ref false in
    while (not !fell_off) && !p < size && !lo <= !hi do
      let m = t.tree.(!p) in
      if m = et then begin
        (* Absent trie node: the candidate is the range's first key. *)
        hi := !lo - 1;
        fell_off := true
      end
      else begin
        Stats.global.tree_steps <- Stats.global.tree_steps + 1;
        let b = Bitsarr.get t.bits m in
        if key_bit key b = 1 then begin
          lo := m + 1;
          p := (2 * !p) + 2
        end
        else begin
          hi := m - 1;
          p := (2 * !p) + 1
        end
      end
    done;
    if !lo > !hi then !lo else seq_scan t key !lo !hi
  end

type locate_result =
  | Found of int  (* key present at this position *)
  | Pred of int   (* key absent; position of its predecessor, -1 if none *)

(* Predecessor-semantics search (§5.2).  The assumed position is verified
   by loading the candidate key; on mismatch the true insertion point is
   recovered by scanning for the first discriminating bit below the
   divergence bit. *)
let locate t ~(load : load) key =
  Stats.global.searches <- Stats.global.searches + 1;
  assert (String.length key = t.key_len);
  if t.n = 0 then Pred (-1)
  else begin
    let j = assumed_position t key in
    let kj = load t.tids.(j) in
    Stats.global.key_compares <- Stats.global.key_compares + 1;
    match Ei_util.Key.first_diff_bit key kj with
    | None -> Found j
    | Some bd ->
      if key_bit key bd = 1 then begin
        (* key > kj: scan right for the first entry below bd. *)
        let rec right i =
          if i > t.n - 2 then t.n - 1
          else if Bitsarr.get t.bits i < bd then i
          else right (i + 1)
        in
        Pred (right j)
      end
      else begin
        (* key < kj: scan left for the first entry below bd. *)
        let rec left i =
          if i < 0 then -1
          else if Bitsarr.get t.bits i < bd then i
          else left (i - 1)
        in
        Pred (left (j - 1))
      end
  end

let find t ~load key =
  match locate t ~load key with Found j -> Some t.tids.(j) | Pred _ -> None

(* ------------------------------------------------------------------ *)
(* Tuple-id array maintenance (breathing, §5.4).                       *)

let ensure_tid_room t =
  if t.n = Array.length t.tids then begin
    assert (t.breathing > 0);
    let slots = tid_slots_for ~capacity:t.capacity ~breathing:t.breathing t.n in
    let tids = Array.make slots 0 in
    Array.blit t.tids 0 tids 0 t.n;
    t.tids <- tids
  end

let insert_tid t pos tid =
  ensure_tid_room t;
  Array.blit t.tids pos t.tids (pos + 1) (t.n - pos);
  t.tids.(pos) <- tid

let remove_tid t pos =
  Array.blit t.tids (pos + 1) t.tids pos (t.n - pos - 1)

(* ------------------------------------------------------------------ *)
(* Insert / remove.                                                    *)

let diff_bit a b =
  match Ei_util.Key.first_diff_bit a b with
  | Some b -> b
  | None -> invalid_arg "Seqtree: duplicate key"

(* Overwrite the tid of an existing key (value update).  The new row must
   hold the same key bytes, as DBMS updates to non-key columns do. *)
let update t ~(load : load) key tid =
  match locate t ~load key with
  | Found j ->
    t.tids.(j) <- tid;
    true
  | Pred _ -> false

(* ------------------------------------------------------------------ *)
(* Incremental BlindiTree maintenance (§5.3).

   After an insertion, the BlindiBits array has one NEW logical entry
   (value [v_new] at position [q']); all previous entries keep their
   values, those at positions >= q' shifted one to the right.  The tree
   is repaired by (1) shifting stored indices, then (2) walking the
   range containing q': where the new entry becomes a range minimum it
   is spliced in (we rebuild that small subtree); otherwise it only
   deepens the trie below the represented levels and nothing changes. *)

(* Rebuild the subtree rooted at tree slot [p] covering BlindiBits range
   [lo, hi]. *)
let fill_subtree t p lo hi =
  let size = tree_size t.levels in
  let rec clear p =
    if p < size then begin
      t.tree.(p) <- et;
      clear ((2 * p) + 1);
      clear ((2 * p) + 2)
    end
  in
  let rec fill p (lo : int) hi =
    if p < size && lo <= hi then begin
      let m = min_entry_index t lo hi in
      t.tree.(p) <- m;
      fill ((2 * p) + 1) lo (m - 1);
      fill ((2 * p) + 2) (m + 1) hi
    end
  in
  clear p;
  fill p lo hi

let tree_after_insert t q' v_new =
  let size = tree_size t.levels in
  if size > 0 then begin
    let entries = t.n - 1 in
    if entries <= 1 then rebuild_tree t
    else begin
      (* Shift stored indices for the slide of entries >= q'. *)
      for p = 0 to size - 1 do
        if t.tree.(p) <> et && t.tree.(p) >= q' then t.tree.(p) <- t.tree.(p) + 1
      done;
      let rec fix p lo hi =
        if p < size then begin
          if t.tree.(p) = et then
            (* The range was empty; it now holds exactly the new entry. *)
            t.tree.(p) <- q'
          else begin
            let m = t.tree.(p) in
            if v_new < Bitsarr.get t.bits m then
              (* The new entry becomes this subtree's root: splice by
                 rebuilding the (small) subtree over the new range. *)
              fill_subtree t p lo hi
            else if q' < m then fix ((2 * p) + 1) lo (m - 1)
            else fix ((2 * p) + 2) (m + 1) hi
          end
        end
      in
      fix 0 0 (entries - 1)
    end
  end

(* After removing logical entry [r] (stored entries > r slid left), drop
   it from the tree: shift indices, and if [r] was represented, rebuild
   the subtree that lost its root. *)
let tree_after_remove t r =
  let size = tree_size t.levels in
  if size > 0 then begin
    let entries = t.n - 1 in
    if entries <= 1 then rebuild_tree t
    else begin
      let holder = ref (-1) in
      for p = 0 to size - 1 do
        if t.tree.(p) = r then holder := p;
        if t.tree.(p) <> et && t.tree.(p) > r then t.tree.(p) <- t.tree.(p) - 1
      done;
      if !holder >= 0 then begin
        (* Recover the range of the node that held [r] by walking down
           from the root along its ancestor path. *)
        let path = ref [] in
        let p = ref !holder in
        while !p > 0 do
          path := !p :: !path;
          p := (!p - 1) / 2
        done;
        let lo = ref 0 and hi = ref (entries - 1) in
        let cur = ref 0 in
        List.iter
          (fun child ->
            let m = t.tree.(!cur) in
            if child = (2 * !cur) + 1 then hi := m - 1 else lo := m + 1;
            cur := child)
          !path;
        fill_subtree t !holder !lo !hi
      end
    end
  end

type insert_result = Inserted | Full | Duplicate

let insert t ~(load : load) key tid =
  match locate t ~load key with
  | Found _ -> Duplicate
  | Pred _ when t.n >= t.capacity -> Full
  | Pred p ->
      Stats.global.inserts <- Stats.global.inserts + 1;
      let q = p + 1 in
      (* Update BlindiBits around the insertion point.  Key indices after
         insertion: predecessor at q-1, new key at q, old successor at
         q+1.  [q'] and [v_new] identify the one logically-new entry for
         the incremental tree repair. *)
      if t.n > 0 then begin
        if q = 0 then begin
          let v = diff_bit key (load t.tids.(0)) in
          Bitsarr.insert t.bits ~count:(t.n - 1) 0 v;
          insert_tid t q tid;
          t.n <- t.n + 1;
          tree_after_insert t 0 v
        end
        else if q = t.n then begin
          let v = diff_bit (load t.tids.(t.n - 1)) key in
          Bitsarr.insert t.bits ~count:(t.n - 1) (t.n - 1) v;
          insert_tid t q tid;
          t.n <- t.n + 1;
          tree_after_insert t (t.n - 2) v
        end
        else begin
          let left = diff_bit (load t.tids.(q - 1)) key in
          let right = diff_bit key (load t.tids.(q)) in
          let d_old = Bitsarr.get t.bits (q - 1) in
          (* Entry q-1 covered the old (pred, succ) pair; it becomes the
             (pred, new) bit and a new entry for (new, succ) is added.
             Exactly one of [left]/[right] equals the old bit; the other
             is the logically-new entry. *)
          assert (min left right = d_old);
          Bitsarr.set t.bits (q - 1) left;
          Bitsarr.insert t.bits ~count:(t.n - 1) q right;
          insert_tid t q tid;
          t.n <- t.n + 1;
          if left = d_old then tree_after_insert t q right
          else tree_after_insert t (q - 1) left
        end
      end
      else begin
        insert_tid t q tid;
        t.n <- t.n + 1
      end;
      Inserted

type remove_result = Removed | Not_present

let remove t ~(load : load) key =
  match locate t ~load key with
  | Pred _ -> Not_present
  | Found j ->
    Stats.global.removes <- Stats.global.removes + 1;
    if t.n >= 2 then begin
      if j = 0 then begin
        Bitsarr.remove t.bits ~count:(t.n - 1) 0;
        remove_tid t j;
        t.n <- t.n - 1;
        tree_after_remove t 0
      end
      else if j = t.n - 1 then begin
        Bitsarr.remove t.bits ~count:(t.n - 1) (t.n - 2);
        remove_tid t j;
        t.n <- t.n - 1;
        tree_after_remove t (t.n - 1)
      end
      else begin
        (* Pairs (j-1, j) and (j, j+1) merge; the first differing bit of
           the outer keys is the minimum of the two old entries, so the
           logically-removed entry is the one holding the maximum. *)
        let a = Bitsarr.get t.bits (j - 1) and b = Bitsarr.get t.bits j in
        Bitsarr.set t.bits (j - 1) (min a b);
        Bitsarr.remove t.bits ~count:(t.n - 1) j;
        remove_tid t j;
        t.n <- t.n - 1;
        tree_after_remove t (if a > b then j - 1 else j)
      end
    end
    else begin
      remove_tid t j;
      t.n <- t.n - 1
    end;
    Removed

(* ------------------------------------------------------------------ *)
(* Bulk construction, split, merge.                                    *)

(* Build from tids whose keys are strictly increasing.  [keys] must be the
   corresponding key array (used only during construction; not stored). *)
let of_sorted ~key_len ~capacity ~levels ~breathing keys tids (n : int) =
  assert (n <= capacity);
  let t = create ~key_len ~capacity ~levels ~breathing () in
  t.tids <- Array.make (tid_slots_for ~capacity ~breathing n) 0;
  Array.blit tids 0 t.tids 0 n;
  t.n <- n;
  for i = 0 to n - 2 do
    Bitsarr.set t.bits i (diff_bit keys.(i) keys.(i + 1))
  done;
  rebuild_tree t;
  t

(* Split into two nodes holding the first [n/2] and remaining keys.  The
   discriminating bit between the halves is dropped (§5.3). *)
let split t ~left_capacity ~right_capacity =
  assert (t.n >= 2);
  let m = t.n / 2 in
  let nl = m and nr = t.n - m in
  assert (nl <= left_capacity && nr <= right_capacity);
  let mk cap n =
    let s = create ~key_len:t.key_len ~capacity:cap ~levels:t.levels ~breathing:t.breathing () in
    s.tids <- Array.make (tid_slots_for ~capacity:cap ~breathing:t.breathing n) 0;
    s.n <- n;
    s
  in
  let left = mk left_capacity nl and right = mk right_capacity nr in
  Array.blit t.tids 0 left.tids 0 nl;
  Array.blit t.tids m right.tids 0 nr;
  if nl >= 2 then Bitsarr.blit t.bits 0 left.bits 0 (nl - 1);
  if nr >= 2 then Bitsarr.blit t.bits m right.bits 0 (nr - 1);
  rebuild_tree left;
  rebuild_tree right;
  (left, right)

(* Merge two adjacent nodes (all keys of [a] below all keys of [b]) into a
   fresh node of the given capacity.  Introduces the discriminating bit
   between a's last and b's first key, loaded from the table (§5.3). *)
let merge a b ~(load : load) ~capacity ~levels =
  let n = a.n + b.n in
  assert (n <= capacity);
  assert (a.key_len = b.key_len);
  let t = create ~key_len:a.key_len ~capacity ~levels ~breathing:a.breathing () in
  t.tids <- Array.make (tid_slots_for ~capacity ~breathing:a.breathing n) 0;
  t.n <- n;
  Array.blit a.tids 0 t.tids 0 a.n;
  Array.blit b.tids 0 t.tids a.n b.n;
  if a.n >= 2 then Bitsarr.blit a.bits 0 t.bits 0 (a.n - 1);
  if a.n >= 1 && b.n >= 1 then
    Bitsarr.set t.bits (a.n - 1) (diff_bit (load a.tids.(a.n - 1)) (load b.tids.(0)));
  if b.n >= 2 then Bitsarr.blit b.bits 0 t.bits a.n (b.n - 1);
  rebuild_tree t;
  t

(* Rebuild this node with a new capacity/levels, e.g. when the elasticity
   algorithm grows or shrinks a compact leaf. *)
let with_capacity t ~capacity ~levels =
  assert (t.n <= capacity);
  let s = create ~key_len:t.key_len ~capacity ~levels ~breathing:t.breathing () in
  s.tids <- Array.make (tid_slots_for ~capacity ~breathing:t.breathing t.n) 0;
  s.n <- t.n;
  Array.blit t.tids 0 s.tids 0 t.n;
  if t.n >= 2 then Bitsarr.blit t.bits 0 s.bits 0 (t.n - 1);
  rebuild_tree s;
  s

(* ------------------------------------------------------------------ *)
(* Iteration (scans).                                                  *)

(* Fold over tids in key order starting at position [pos]. *)
let fold_from t pos f acc =
  let acc = ref acc in
  for i = max 0 pos to t.n - 1 do
    acc := f !acc t.tids.(i)
  done;
  !acc

let iter f t =
  for i = 0 to t.n - 1 do
    f t.tids.(i)
  done

(* Position of the first key >= [key]: the scan start for range queries. *)
let lower_bound t ~load key =
  match locate t ~load key with Found j -> j | Pred p -> p + 1

(* ------------------------------------------------------------------ *)
(* Invariant checking (used by tests).                                 *)

let check_invariants t ~load =
  assert (t.n >= 0 && t.n <= t.capacity);
  assert (Array.length t.tids >= t.n);
  (* With breathing the tid array never exceeds capacity; it may carry
     extra slack after removes (it shrinks only on rebuild/split). *)
  assert (Array.length t.tids <= max 1 t.capacity);
  (* Keys strictly increasing and BlindiBits consistent with them. *)
  for i = 0 to t.n - 2 do
    let a = load t.tids.(i) and b = load t.tids.(i + 1) in
    assert (Ei_util.Key.compare a b < 0);
    assert (Bitsarr.get t.bits i = diff_bit a b)
  done;
  (* BlindiTree entries are range minima of their in-order segments. *)
  let size = tree_size t.levels in
  let rec check p (lo : int) hi =
    if p < size then
      if lo > hi then begin
        assert (t.tree.(p) = et);
        check ((2 * p) + 1) 1 0;
        check ((2 * p) + 2) 1 0
      end
      else begin
        let m = t.tree.(p) in
        assert (m >= lo && m <= hi);
        for i = lo to hi do
          if i <> m then assert (Bitsarr.get t.bits i > Bitsarr.get t.bits m)
        done;
        check ((2 * p) + 1) lo (m - 1);
        check ((2 * p) + 2) (m + 1) hi
      end
  in
  if size > 0 then if t.n >= 2 then check 0 0 (t.n - 2) else check 0 1 0
