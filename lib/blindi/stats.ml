(* Global operation counters for the blind-trie representations.

   These feed the §6.1 operation-cost breakdown benchmark: how much work
   elasticity adds (compact-leaf searches, key comparisons against the
   table, node conversions). *)

type t = {
  mutable searches : int;        (* compact-leaf searches *)
  mutable scan_steps : int;      (* SeqTrie sequential-scan steps *)
  mutable tree_steps : int;      (* BlindiTree descent steps *)
  mutable key_compares : int;    (* verification compares against loaded keys *)
  mutable inserts : int;
  mutable removes : int;
  mutable rebuilds : int;        (* BlindiTree rebuilds *)
}

let global =
  { searches = 0; scan_steps = 0; tree_steps = 0; key_compares = 0;
    inserts = 0; removes = 0; rebuilds = 0 }

(* Folded into the ei_obs registry as probes: the hot paths keep their
   single unsynchronised field bump, and a registry snapshot reads the
   record only at exposition time.  (Counts from non-primary domains can
   be lost to races — same caveat as reading [global] directly.) *)
let () =
  let module Metrics = Ei_obs.Metrics in
  Metrics.register_probe "seqtree.searches" (fun () -> global.searches);
  Metrics.register_probe "seqtree.scan_steps" (fun () -> global.scan_steps);
  Metrics.register_probe "seqtree.tree_steps" (fun () -> global.tree_steps);
  Metrics.register_probe "seqtree.key_compares" (fun () ->
      global.key_compares);
  Metrics.register_probe "seqtree.inserts" (fun () -> global.inserts);
  Metrics.register_probe "seqtree.removes" (fun () -> global.removes);
  Metrics.register_probe "seqtree.rebuilds" (fun () -> global.rebuilds)

let reset () =
  global.searches <- 0;
  global.scan_steps <- 0;
  global.tree_steps <- 0;
  global.key_compares <- 0;
  global.inserts <- 0;
  global.removes <- 0;
  global.rebuilds <- 0
