(** Packed fixed-capacity array of small non-negative integers, 1 or 2
    bytes per entry — the physical layout of BlindiBits arrays (§5.1). *)

type t

val create : width:int -> capacity:int -> t
(** [width] must be 1 or 2. *)

val width_for_bits : int -> int
(** Entry width (1 or 2 bytes) for entries holding one of [count]
    distinct values 0 .. count-1. *)

val capacity : t -> int
val get : t -> int -> int
val set : t -> int -> int -> unit

val insert : t -> count:int -> int -> int -> unit
(** [insert t ~count i v] shifts entries [i, count) right and writes [v]
    at [i].  Requires capacity for [count + 1] entries. *)

val remove : t -> count:int -> int -> unit
(** [remove t ~count i] deletes entry [i], shifting the tail left. *)

val blit : t -> int -> t -> int -> int -> unit
val copy : t -> t
