(** SubTrie: the blind-trie node representation of Bumbulis and Bowman,
    used as the §6.4 comparison baseline.

    The trie's internal nodes are stored in preorder with, per node, its
    discriminating-bit position and the size of its left subtree
    (inclusive), which locates both children.  Searches descend the
    preorder arrays; like every blind trie, the candidate is verified by
    loading the key from the table.  Updates rebuild the preorder arrays
    from the in-order view. *)

type t

type load = int -> string

val create : key_len:int -> capacity:int -> unit -> t
val of_sorted : key_len:int -> capacity:int -> string array -> int array -> int -> t

val count : t -> int
val capacity : t -> int
val is_full : t -> bool
val tid_at : t -> int -> int
val memory_bytes : t -> int

type locate_result = Found of int | Pred of int

val locate : t -> load:load -> string -> locate_result
val find : t -> load:load -> string -> int option
val lower_bound : t -> load:load -> string -> int
val update : t -> load:load -> string -> int -> bool

type insert_result = Inserted | Full | Duplicate

val insert : t -> load:load -> string -> int -> insert_result

type remove_result = Removed | Not_present

val remove : t -> load:load -> string -> remove_result

val split : t -> left_capacity:int -> right_capacity:int -> t * t
val merge : t -> t -> load:load -> capacity:int -> t

val fold_from : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val iter : (int -> unit) -> t -> unit
val check_invariants : t -> load:load -> unit
