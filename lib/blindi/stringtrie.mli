(** String B-Trie node representation (Ferragina & Grossi), the third
    blind-trie layout of §5.1: every trie node stores its
    discriminating-bit position and explicit pointers to its two
    children (~3 B/key).  The extra byte buys pointer-based maintenance:
    inserts and removes splice single nodes instead of rebuilding
    arrays. *)

type t

type load = int -> string

val create : key_len:int -> capacity:int -> unit -> t
val of_sorted : key_len:int -> capacity:int -> string array -> int array -> int -> t

val count : t -> int
val capacity : t -> int
val is_full : t -> bool
val tid_at : t -> int -> int
val memory_bytes : t -> int

type locate_result = Found of int | Pred of int

val locate : t -> load:load -> string -> locate_result
val find : t -> load:load -> string -> int option
val lower_bound : t -> load:load -> string -> int
val update : t -> load:load -> string -> int -> bool

type insert_result = Inserted | Full | Duplicate

val insert : t -> load:load -> string -> int -> insert_result

type remove_result = Removed | Not_present

val remove : t -> load:load -> string -> remove_result

val split : t -> load:load -> left_capacity:int -> right_capacity:int -> t * t
val merge : t -> t -> load:load -> capacity:int -> t

val fold_from : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val iter : (int -> unit) -> t -> unit
val check_invariants : t -> load:load -> unit
