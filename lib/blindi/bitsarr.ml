(* Packed array of small non-negative integers (1 or 2 bytes per entry).

   This is the physical layout of the BlindiBits array of §5: one byte per
   discriminating-bit position for keys of at most 32 bytes, two bytes
   otherwise.  The array has a fixed capacity; the caller tracks how many
   entries are in use. *)

type t = { width : int; data : Bytes.t }

let create ~width ~capacity =
  assert (width = 1 || width = 2);
  { width; data = Bytes.make (max 1 (capacity * width)) '\000' }

(* [count] distinct values (0 .. count-1) per entry: one byte suffices
   for up to 256 values, e.g. bit positions of keys up to 32 bytes. *)
let width_for_bits count = if count <= 0x100 then 1 else 2

let capacity t = Bytes.length t.data / t.width

let get t i =
  if t.width = 1 then Char.code (Bytes.unsafe_get t.data i)
  else Bytes.get_uint16_le t.data (2 * i)

let set t i v =
  if t.width = 1 then begin
    assert (v >= 0 && v <= 0xff);
    Bytes.unsafe_set t.data i (Char.unsafe_chr v)
  end
  else begin
    assert (v >= 0 && v <= 0xffff);
    Bytes.set_uint16_le t.data (2 * i) v
  end

(* Shift entries [i, count) one slot right and write [v] at [i].
   Requires room for [count + 1] entries. *)
let insert t ~count (i : int) v =
  assert (i >= 0 && i <= count);
  assert ((count + 1) * t.width <= Bytes.length t.data);
  Bytes.blit t.data (i * t.width) t.data ((i + 1) * t.width) ((count - i) * t.width);
  set t i v

(* Remove entry [i], shifting entries [i+1, count) one slot left. *)
let remove t ~count (i : int) =
  assert (i >= 0 && i < count);
  Bytes.blit t.data ((i + 1) * t.width) t.data (i * t.width) ((count - i - 1) * t.width)

let blit src spos dst dpos len =
  assert (src.width = dst.width);
  Bytes.blit src.data (spos * src.width) dst.data (dpos * dst.width) (len * src.width)

let copy t = { width = t.width; data = Bytes.copy t.data }
