(* String B-Trie node representation (Ferragina & Grossi [13]), the
   third blind-trie layout §5.1 describes: every trie node stores its
   discriminating-bit position and explicit pointers to its two
   children — roughly 3 bytes per key for small nodes, against the
   SubTrie's 2 and the SeqTrie/SeqTree's 1.

   The pay-off for the extra byte is pointer-based maintenance: inserts
   and removes splice single nodes instead of rebuilding arrays, so
   structural updates are cheap.

   Layout: for n keys there are n-1 internal nodes kept in three parallel
   arrays (discriminating bit, left child, right child).  A child slot
   encodes either an internal node index or a key position (leaf).  Keys
   themselves are, as in every blind trie here, NOT stored: tuple ids sit
   in key order in [tids], and searches verify against the table. *)

type t = {
  key_len : int;
  capacity : int;
  mutable n : int;          (* keys stored *)
  mutable root : int;       (* child-encoded root; meaningless if n < 2 *)
  bits : Bitsarr.t;         (* per internal node *)
  left : int array;         (* child encoding, see below *)
  right : int array;
  tids : int array;
}

type load = int -> string

(* Child encoding: [0, capacity) = leaf holding key position;
   [capacity, 2*capacity) = internal node index + capacity. *)
let leaf_child pos = pos
let node_child i cap = i + cap
let is_node t c = c >= t.capacity
let node_index t c = c - t.capacity

let create ~key_len ~capacity () =
  assert (capacity >= 2);
  let bw = Bitsarr.width_for_bits (key_len * 8) in
  {
    key_len;
    capacity;
    n = 0;
    root = 0;
    bits = Bitsarr.create ~width:bw ~capacity:(capacity - 1);
    left = Array.make (capacity - 1) 0;
    right = Array.make (capacity - 1) 0;
    tids = Array.make capacity 0;
  }

let count t = t.n
let capacity t = t.capacity
let is_full t = t.n >= t.capacity

let tid_at t i =
  assert (i >= 0 && i < t.n);
  t.tids.(i)

let memory_bytes t =
  Ei_storage.Memmodel.stringtrie_bytes ~capacity:t.capacity ~key_len:t.key_len

let key_bit key b = Ei_util.Key.bit key b

(* ------------------------------------------------------------------ *)
(* Search.                                                             *)

(* Descend by the searched key's bits; returns the assumed position. *)
let assumed_position t key =
  let rec go c =
    if is_node t c then begin
      Stats.global.tree_steps <- Stats.global.tree_steps + 1;
      let i = node_index t c in
      if key_bit key (Bitsarr.get t.bits i) = 0 then go t.left.(i)
      else go t.right.(i)
    end
    else c
  in
  go t.root

(* Second descent with the divergence bit known: past [bd], take the
   extreme of the subtree (max when the key is greater, min otherwise). *)
let fixup_position t key bd go_right =
  let rec go c =
    if is_node t c then begin
      let i = node_index t c in
      let b = Bitsarr.get t.bits i in
      let dir = if b < bd then key_bit key b = 1 else go_right in
      if dir then go t.right.(i) else go t.left.(i)
    end
    else c
  in
  go t.root

type locate_result = Found of int | Pred of int

let locate t ~(load : load) key =
  Stats.global.searches <- Stats.global.searches + 1;
  if t.n = 0 then Pred (-1)
  else if t.n = 1 then begin
    let c = Ei_util.Key.compare key (load t.tids.(0)) in
    if c = 0 then Found 0 else if c < 0 then Pred (-1) else Pred 0
  end
  else begin
    let j = assumed_position t key in
    let kj = load t.tids.(j) in
    Stats.global.key_compares <- Stats.global.key_compares + 1;
    match Ei_util.Key.first_diff_bit key kj with
    | None -> Found j
    | Some bd ->
      if key_bit key bd = 1 then Pred (fixup_position t key bd true)
      else Pred (fixup_position t key bd false - 1)
  end

let find t ~load key =
  match locate t ~load key with Found j -> Some t.tids.(j) | Pred _ -> None

let lower_bound t ~load key =
  match locate t ~load key with Found j -> j | Pred p -> p + 1

let update t ~(load : load) key tid =
  match locate t ~load key with
  | Found j ->
    t.tids.(j) <- tid;
    true
  | Pred _ -> false

(* ------------------------------------------------------------------ *)
(* Maintenance helpers.                                                *)

(* Shift leaf references at or above [pos] by [delta] (key positions
   slide when a tid is inserted/removed). *)
let shift_leaf_refs t (pos : int) delta =
  for i = 0 to t.n - 2 do
    if (not (is_node t t.left.(i))) && t.left.(i) >= pos then
      t.left.(i) <- t.left.(i) + delta;
    if (not (is_node t t.right.(i))) && t.right.(i) >= pos then
      t.right.(i) <- t.right.(i) + delta
  done;
  if t.n >= 2 && (not (is_node t t.root)) && t.root >= pos then
    t.root <- t.root + delta

let diff_bit a b =
  match Ei_util.Key.first_diff_bit a b with
  | Some b -> b
  | None -> invalid_arg "Stringtrie: duplicate key"

type insert_result = Inserted | Full | Duplicate

let insert t ~(load : load) key tid =
  match locate t ~load key with
  | Found _ -> Duplicate
  | Pred _ when t.n >= t.capacity -> Full
  | Pred p ->
    Stats.global.inserts <- Stats.global.inserts + 1;
    let q = p + 1 in
    if t.n = 0 then begin
      t.tids.(0) <- tid;
      t.n <- 1
    end
    else begin
      (* Divergence bit against the closest neighbour (the longer shared
         prefix, i.e. the larger first-diff position). *)
      let bd =
        if q = 0 then diff_bit key (load t.tids.(0))
        else if q = t.n then diff_bit (load t.tids.(t.n - 1)) key
        else
          max (diff_bit (load t.tids.(q - 1)) key)
            (diff_bit key (load t.tids.(q)))
      in
      (* Make room for the tid and slide leaf references. *)
      Array.blit t.tids q t.tids (q + 1) (t.n - q);
      t.tids.(q) <- tid;
      shift_leaf_refs t q 1;
      let new_node = t.n - 1 in
      t.n <- t.n + 1;
      let bit_new = if key_bit key bd = 1 then `Right else `Left in
      Bitsarr.set t.bits new_node bd;
      (if t.n = 2 then begin
         (* First internal node. *)
         (match bit_new with
         | `Right ->
           t.left.(new_node) <- leaf_child (1 - q);
           t.right.(new_node) <- leaf_child q
         | `Left ->
           t.left.(new_node) <- leaf_child q;
           t.right.(new_node) <- leaf_child (1 - q));
         t.root <- node_child new_node t.capacity
       end
       else begin
         (* Splice: walk from the root while node bits are below bd,
            following the new key's bits; hang the displaced subtree and
            the new leaf off the fresh node. *)
         let rec place set c =
           let splice () =
             (match bit_new with
             | `Right ->
               t.left.(new_node) <- c;
               t.right.(new_node) <- leaf_child q
             | `Left ->
               t.left.(new_node) <- leaf_child q;
               t.right.(new_node) <- c);
             set (node_child new_node t.capacity)
           in
           if is_node t c then begin
             let i = node_index t c in
             let b = Bitsarr.get t.bits i in
             if b < bd then
               if key_bit key b = 0 then
                 place (fun v -> t.left.(i) <- v) t.left.(i)
               else place (fun v -> t.right.(i) <- v) t.right.(i)
             else splice ()
           end
           else splice ()
         in
         place (fun v -> t.root <- v) t.root
       end)
    end;
    Inserted

type remove_result = Removed | Not_present

let remove t ~(load : load) key =
  match locate t ~load key with
  | Pred _ -> Not_present
  | Found j ->
    Stats.global.removes <- Stats.global.removes + 1;
    if t.n >= 2 then begin
      (* Find the leaf's parent node (descending by the removed key's
         bits) and splice its sibling into the grandparent pointer. *)
      let rec find_parent set c =
        let i = node_index t c in
        let go_right = key_bit key (Bitsarr.get t.bits i) = 1 in
        let side = if go_right then t.right.(i) else t.left.(i) in
        if is_node t side then
          find_parent
            (fun v -> if go_right then t.right.(i) <- v else t.left.(i) <- v)
            side
        else begin
          assert (side = j);
          (i, set)
        end
      in
      let parent, set = find_parent (fun v -> t.root <- v) t.root in
      let sibling =
        if (not (is_node t t.left.(parent))) && t.left.(parent) = j then
          t.right.(parent)
        else t.left.(parent)
      in
      set sibling;
      (* Recycle the parent's slot: move the last node into it. *)
      let last = t.n - 2 in
      if parent <> last then begin
        Bitsarr.set t.bits parent (Bitsarr.get t.bits last);
        t.left.(parent) <- t.left.(last);
        t.right.(parent) <- t.right.(last);
        (* Redirect whatever pointed at [last]. *)
        let moved = node_child last t.capacity in
        let target = node_child parent t.capacity in
        if t.root = moved then t.root <- target;
        for i = 0 to t.n - 3 do
          if t.left.(i) = moved then t.left.(i) <- target;
          if t.right.(i) = moved then t.right.(i) <- target
        done
      end
    end;
    Array.blit t.tids (j + 1) t.tids j (t.n - j - 1);
    t.n <- t.n - 1;
    shift_leaf_refs t j (-1);
    Removed

(* ------------------------------------------------------------------ *)
(* Bulk construction, split, merge, iteration.                         *)

let of_sorted ~key_len ~capacity keys tids (n : int) =
  assert (n <= capacity);
  let t = create ~key_len ~capacity () in
  (* Insert in order; splices are O(depth) each. *)
  for i = 0 to n - 1 do
    match
      insert t
        ~load:(fun tid -> keys.(tid - 1_000_000))
        keys.(i)
        (i + 1_000_000)
    with
    | Inserted -> ()
    | Full | Duplicate ->
      Ei_util.Invariant.impossible "Stringtrie.of_sorted: bulk insert rejected"
  done;
  (* Replace the construction tids with the real ones. *)
  for i = 0 to n - 1 do
    t.tids.(i) <- tids.(t.tids.(i) - 1_000_000)
  done;
  t

let fold_from t pos f acc =
  let acc = ref acc in
  for i = max 0 pos to t.n - 1 do
    acc := f !acc t.tids.(i)
  done;
  !acc

let iter f t =
  for i = 0 to t.n - 1 do
    f t.tids.(i)
  done

let split t ~(load : load) ~left_capacity ~right_capacity =
  assert (t.n >= 2);
  let m = t.n / 2 in
  let keys = Array.init t.n (fun i -> load t.tids.(i)) in
  let left = of_sorted ~key_len:t.key_len ~capacity:left_capacity keys t.tids m in
  let right =
    of_sorted ~key_len:t.key_len ~capacity:right_capacity (Array.sub keys m (t.n - m))
      (Array.sub t.tids m (t.n - m))
      (t.n - m)
  in
  (left, right)

let merge a b ~(load : load) ~capacity =
  let n = a.n + b.n in
  assert (n <= capacity);
  let tids = Array.append (Array.sub a.tids 0 a.n) (Array.sub b.tids 0 b.n) in
  let keys = Array.map load tids in
  of_sorted ~key_len:a.key_len ~capacity keys tids n

(* ------------------------------------------------------------------ *)
(* Invariants.                                                         *)

let check_invariants t ~(load : load) =
  assert (t.n >= 0 && t.n <= t.capacity);
  for i = 0 to t.n - 2 do
    let a = load t.tids.(i) and b = load t.tids.(i + 1) in
    assert (Ei_util.Key.compare a b < 0)
  done;
  if t.n >= 2 then begin
    (* The trie's in-order leaf sequence must be 0..n-1 and node bits
       must strictly increase along every root-to-leaf path. *)
    let visited = Array.make (t.n - 1) false in
    let next_leaf = ref 0 in
    let rec walk c bound =
      if is_node t c then begin
        let i = node_index t c in
        assert (not visited.(i));
        visited.(i) <- true;
        let b = Bitsarr.get t.bits i in
        assert (b > bound || bound = -1);
        walk t.left.(i) b;
        walk t.right.(i) b
      end
      else begin
        assert (c = !next_leaf);
        incr next_leaf
      end
    in
    walk t.root (-1);
    assert (!next_leaf = t.n);
    (* Every node's bit is the first differing bit of the keys around the
       boundary it represents: node with in-order boundary between its
       left subtree's max leaf and right subtree's min leaf. *)
    let rec min_leaf c = if is_node t c then min_leaf t.left.(node_index t c) else c in
    let rec max_leaf c = if is_node t c then max_leaf t.right.(node_index t c) else c in
    let rec check c =
      if is_node t c then begin
        let i = node_index t c in
        let l = max_leaf t.left.(i) and r = min_leaf t.right.(i) in
        assert (r = l + 1);
        assert (Bitsarr.get t.bits i = diff_bit (load t.tids.(l)) (load t.tids.(r)));
        check t.left.(i);
        check t.right.(i)
      end
    in
    check t.root
  end
