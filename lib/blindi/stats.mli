(** Global operation counters for the blind-trie representations.

    These feed the §6.1 operation-cost breakdown benchmark: how much
    work elasticity adds (compact-leaf searches, sequential-scan and
    BlindiTree descent steps, key verifications against the base table,
    node conversions). *)

type t = {
  mutable searches : int;      (** compact-leaf searches *)
  mutable scan_steps : int;    (** SeqTrie sequential-scan steps *)
  mutable tree_steps : int;    (** BlindiTree descent steps *)
  mutable key_compares : int;  (** verification compares against loaded keys *)
  mutable inserts : int;
  mutable removes : int;
  mutable rebuilds : int;      (** BlindiTree rebuilds *)
}

val global : t
(** The single shared counter record (benchmarks snapshot and diff it). *)

val reset : unit -> unit
(** Zero every counter in {!global}. *)
