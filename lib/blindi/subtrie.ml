(* SubTrie: the blind-trie node representation of Bumbulis and Bowman
   [4], used as the comparison baseline of §6.4.

   The trie's internal nodes are stored in preorder.  For node [i],
   [bits.(i)] is its discriminating-bit position and [sizes.(i)] is the
   size of its left subtree inclusive of the node itself, which is enough
   to locate both children: the left child (when it exists) is [i + 1]
   and the right child is [i + sizes.(i)].

   A subtree with [m] internal nodes covers [m + 1] keys, so the descent
   tracks the key range covered by the current subtree and terminates at
   a single key position.  As with every blind trie, the candidate key is
   then loaded from the table for verification. *)

type t = {
  key_len : int;
  capacity : int;
  mutable n : int;
  bits : Bitsarr.t;   (* preorder discriminating bits, n - 1 in use *)
  sizes : Bitsarr.t;  (* preorder left-subtree sizes, n - 1 in use *)
  tids : int array;   (* key order *)
}

type load = int -> string

let create ~key_len ~capacity () =
  assert (capacity >= 2);
  let bw = Bitsarr.width_for_bits (key_len * 8) in
  let sw = Bitsarr.width_for_bits capacity in
  {
    key_len; capacity;
    n = 0;
    bits = Bitsarr.create ~width:bw ~capacity:(capacity - 1);
    sizes = Bitsarr.create ~width:sw ~capacity:(capacity - 1);
    tids = Array.make capacity 0;
  }

let count t = t.n
let capacity t = t.capacity
let is_full t = t.n >= t.capacity
let tid_at t i =
  assert (i >= 0 && i < t.n);
  t.tids.(i)

let memory_bytes t =
  Ei_storage.Memmodel.subtrie_bytes ~capacity:t.capacity ~key_len:t.key_len

(* ------------------------------------------------------------------ *)
(* Preorder construction from in-order discriminating bits.            *)

(* In-order bits (as in a SeqTrie) fully determine the trie: the root of
   any in-order segment is its minimum entry.  [emit] rebuilds the
   preorder arrays from in-order bits. *)
let rebuild_from_inorder t inorder n =
  t.n <- n;
  let pos = ref 0 in
  let rec emit (lo : int) hi =
    if lo <= hi then begin
      let m = ref lo in
      for i = lo + 1 to hi do
        if inorder.(i) < inorder.(!m) then m := i
      done;
      let p = !pos in
      incr pos;
      Bitsarr.set t.bits p inorder.(!m);
      Bitsarr.set t.sizes p (!m - lo + 1);
      emit lo (!m - 1);
      emit (!m + 1) hi
    end
  in
  if n >= 2 then emit 0 (n - 2);
  assert (!pos = max 0 (n - 1))

(* Reconstruct in-order bits from the preorder arrays (O(n)). *)
let to_inorder t =
  let out = Array.make (max 0 (t.n - 1)) 0 in
  let rec walk p (klo : int) khi =
    (* Subtree rooted at preorder index [p] covering keys [klo, khi]. *)
    if khi > klo then begin
      let l = Bitsarr.get t.sizes p in
      out.(klo + l - 1) <- Bitsarr.get t.bits p;
      if l > 1 then walk (p + 1) klo (klo + l - 1);
      if khi - klo - l > 0 then walk (p + l) (klo + l) khi
    end
  in
  if t.n >= 2 then walk 0 0 (t.n - 1);
  out

(* ------------------------------------------------------------------ *)
(* Search.                                                             *)

let key_bit key b = Ei_util.Key.bit key b

(* Descend assuming the key is present; returns its assumed position. *)
let assumed_position t key =
  let rec go p (klo : int) khi =
    if klo = khi then klo
    else begin
      Stats.global.tree_steps <- Stats.global.tree_steps + 1;
      let l = Bitsarr.get t.sizes p in
      if key_bit key (Bitsarr.get t.bits p) = 0 then
        if l = 1 then klo else go (p + 1) klo (klo + l - 1)
      else if khi - klo - l = 0 then khi
      else go (p + l) (klo + l) khi
    end
  in
  go 0 0 (t.n - 1)

(* Descend again, but once the discriminating bit reaches [bd] take the
   extreme of the subtree: if the searched key has bit [bd] set it is
   larger than every key sharing the prefix, so its predecessor is the
   subtree maximum; otherwise its successor is the subtree minimum. *)
let fixup_position t key bd go_right =
  let rec go p (klo : int) khi =
    if klo = khi then klo
    else begin
      let b = Bitsarr.get t.bits p in
      let l = Bitsarr.get t.sizes p in
      let dir =
        if b < bd then key_bit key b = 1
        else go_right
      in
      if not dir then
        if l = 1 then klo else go (p + 1) klo (klo + l - 1)
      else if khi - klo - l = 0 then khi
      else go (p + l) (klo + l) khi
    end
  in
  go 0 0 (t.n - 1)

type locate_result = Found of int | Pred of int

let locate t ~(load : load) key =
  Stats.global.searches <- Stats.global.searches + 1;
  if t.n = 0 then Pred (-1)
  else begin
    let j = assumed_position t key in
    let kj = load t.tids.(j) in
    Stats.global.key_compares <- Stats.global.key_compares + 1;
    match Ei_util.Key.first_diff_bit key kj with
    | None -> Found j
    | Some bd ->
      if key_bit key bd = 1 then Pred (fixup_position t key bd true)
      else Pred (fixup_position t key bd false - 1)
  end

let find t ~load key =
  match locate t ~load key with Found j -> Some t.tids.(j) | Pred _ -> None

let lower_bound t ~load key =
  match locate t ~load key with Found j -> j | Pred p -> p + 1

(* ------------------------------------------------------------------ *)
(* Updates: performed on the in-order representation, then the preorder
   arrays are rebuilt — the structural update cost the paper observes
   for trie-structured nodes. *)

(* Overwrite the tid of an existing key (value update). *)
let update t ~(load : load) key tid =
  match locate t ~load key with
  | Found j ->
    t.tids.(j) <- tid;
    true
  | Pred _ -> false

let diff_bit a b =
  match Ei_util.Key.first_diff_bit a b with
  | Some b -> b
  | None -> invalid_arg "Subtrie: duplicate key"

type insert_result = Inserted | Full | Duplicate

let insert t ~(load : load) key tid =
  match locate t ~load key with
  | Found _ -> Duplicate
  | Pred _ when t.n >= t.capacity -> Full
  | Pred p ->
      Stats.global.inserts <- Stats.global.inserts + 1;
      let q = p + 1 in
      let old = to_inorder t in
      let inorder = Array.make t.n 0 in
      if t.n > 0 then begin
        if q = 0 then begin
          inorder.(0) <- diff_bit key (load t.tids.(0));
          Array.blit old 0 inorder 1 (t.n - 1)
        end
        else if q = t.n then begin
          Array.blit old 0 inorder 0 (t.n - 1);
          inorder.(t.n - 1) <- diff_bit (load t.tids.(t.n - 1)) key
        end
        else begin
          Array.blit old 0 inorder 0 (q - 1);
          inorder.(q - 1) <- diff_bit (load t.tids.(q - 1)) key;
          inorder.(q) <- diff_bit key (load t.tids.(q));
          Array.blit old q inorder (q + 1) (t.n - 1 - q)
        end
      end;
      Array.blit t.tids q t.tids (q + 1) (t.n - q);
      t.tids.(q) <- tid;
      rebuild_from_inorder t inorder (t.n + 1);
      Inserted

type remove_result = Removed | Not_present

let remove t ~(load : load) key =
  match locate t ~load key with
  | Pred _ -> Not_present
  | Found j ->
    Stats.global.removes <- Stats.global.removes + 1;
    let old = to_inorder t in
    let inorder = Array.make (max 0 (t.n - 2)) 0 in
    if t.n >= 2 then begin
      if j = 0 then Array.blit old 1 inorder 0 (t.n - 2)
      else if j = t.n - 1 then Array.blit old 0 inorder 0 (t.n - 2)
      else begin
        Array.blit old 0 inorder 0 (j - 1);
        inorder.(j - 1) <- min old.(j - 1) old.(j);
        Array.blit old (j + 1) inorder j (t.n - 2 - j)
      end
    end;
    Array.blit t.tids (j + 1) t.tids j (t.n - j - 1);
    rebuild_from_inorder t inorder (t.n - 1);
    Removed

(* ------------------------------------------------------------------ *)
(* Bulk construction, split, iteration.                                *)

let of_sorted ~key_len ~capacity keys tids (n : int) =
  assert (n <= capacity);
  let t = create ~key_len ~capacity () in
  Array.blit tids 0 t.tids 0 n;
  let inorder = Array.init (max 0 (n - 1)) (fun i -> diff_bit keys.(i) keys.(i + 1)) in
  rebuild_from_inorder t inorder n;
  t

let split t ~left_capacity ~right_capacity =
  assert (t.n >= 2);
  let m = t.n / 2 in
  let inorder = to_inorder t in
  let left = create ~key_len:t.key_len ~capacity:left_capacity () in
  let right = create ~key_len:t.key_len ~capacity:right_capacity () in
  Array.blit t.tids 0 left.tids 0 m;
  Array.blit t.tids m right.tids 0 (t.n - m);
  rebuild_from_inorder left (Array.sub inorder 0 (max 0 (m - 1))) m;
  rebuild_from_inorder right
    (Array.sub inorder m (max 0 (t.n - m - 1)))
    (t.n - m);
  (left, right)

let merge a b ~(load : load) ~capacity =
  let n = a.n + b.n in
  assert (n <= capacity);
  let t = create ~key_len:a.key_len ~capacity () in
  Array.blit a.tids 0 t.tids 0 a.n;
  Array.blit b.tids 0 t.tids a.n b.n;
  let ia = to_inorder a and ib = to_inorder b in
  let inorder = Array.make (max 0 (n - 1)) 0 in
  Array.blit ia 0 inorder 0 (max 0 (a.n - 1));
  if a.n >= 1 && b.n >= 1 then
    inorder.(a.n - 1) <- diff_bit (load a.tids.(a.n - 1)) (load b.tids.(0));
  Array.blit ib 0 inorder a.n (max 0 (b.n - 1));
  rebuild_from_inorder t inorder n;
  t

let fold_from t pos f acc =
  let acc = ref acc in
  for i = max 0 pos to t.n - 1 do
    acc := f !acc t.tids.(i)
  done;
  !acc

let iter f t =
  for i = 0 to t.n - 1 do
    f t.tids.(i)
  done

let check_invariants t ~load =
  assert (t.n >= 0 && t.n <= t.capacity);
  for i = 0 to t.n - 2 do
    let a = load t.tids.(i) and b = load t.tids.(i + 1) in
    assert (Ei_util.Key.compare a b < 0)
  done;
  (* The preorder arrays must round-trip through the in-order view. *)
  let inorder = to_inorder t in
  for i = 0 to t.n - 2 do
    assert (inorder.(i) = diff_bit (load t.tids.(i)) (load t.tids.(i + 1)))
  done
