(** Leaf policies: the hook through which the elastic index framework
    (§3) customises the B+-tree.

    A policy decides what happens at the structure-modification points
    the elasticity algorithm piggybacks on — leaf overflow, underflow
    and merges — plus the expansion-state random split of compact leaves
    reached by searches (§4).  The plain STX B+-tree and the fully
    compacted STX-SeqTree / STX-SubTrie / prefix-compressed variants are
    degenerate policies of the same interface. *)

type leaf_spec =
  | Spec_std             (** standard leaf, internal key storage *)
  | Spec_seq of int      (** SeqTree with this capacity *)
  | Spec_sub of int      (** SubTrie with this capacity *)
  | Spec_pre             (** prefix-compressed leaf, standard capacity *)
  | Spec_str of int      (** String B-Trie with this capacity *)
  | Spec_bw              (** Bw-tree delta-chained leaf, standard capacity *)
  | Spec_gap             (** gapped/slotted leaf, standard capacity *)

(** What a policy may inspect when deciding. *)
type view = {
  bytes : int;           (** tracked index size under the memory model *)
  compact_leaves : int;  (** leaves currently in compact representation *)
  items : int;           (** keys stored in the index *)
}

type overflow_action =
  | Split of leaf_spec   (** split the leaf; both halves use this spec *)
  | Convert of leaf_spec (** rebuild the leaf in place with this spec *)

type underflow_action =
  | Rebalance            (** classic B+-tree borrow/merge with a sibling *)
  | Replace of leaf_spec (** rebuild the leaf in place (elastic shrink) *)

type t = {
  name : string;
  initial : leaf_spec;
  seq_levels : int;
  seq_breathing : int;
  on_overflow : view -> current:leaf_spec -> overflow_action;
  on_underflow : view -> current:leaf_spec -> count:int -> underflow_action;
  on_search_compact : view -> current:leaf_spec -> leaf_spec option;
  on_merge : view -> total:int -> left:leaf_spec -> right:leaf_spec -> leaf_spec;
  underflow_at : leaf_spec -> std_capacity:int -> count:int -> bool;
}

val std_underflow : leaf_spec -> std_capacity:int -> count:int -> bool
(** Standard B+-tree rule: underflow below half capacity. *)

val stx : t
(** The baseline STX B+-tree: never compacts anything. *)

val all_seqtree : ?levels:int -> ?breathing:int -> capacity:int -> unit -> t
(** STX-SeqTree: every leaf a SeqTree of fixed capacity. *)

val all_subtrie : capacity:int -> unit -> t
(** STX-SubTrie: every leaf a SubTrie of fixed capacity (§6.4). *)

val all_stringtrie : capacity:int -> unit -> t
(** STX-StringBTrie: every leaf a pointer-based String B-Trie (§5.1). *)

val all_prefix : unit -> t
(** Prefix-compressed B+-tree (§2's key-truncation comparison point). *)

val all_bw : unit -> t
(** Bw-tree-style B+-tree with delta-chained leaves (§6.1 baseline). *)

val all_gapped : unit -> t
(** Gapped-leaf B+-tree (BS-tree style): distributed in-leaf gaps, so
    inserts usually fill a slot instead of shifting the tail. *)

val spec_capacity : std_capacity:int -> leaf_spec -> int
val pp_spec : Format.formatter -> leaf_spec -> unit
