(** Prefix-compressed B+-tree leaf (InnoDB/Oracle-style key truncation,
    §2): the shared key prefix is stored once and each slot keeps only
    its suffix.  Operations behave like a standard leaf; the saving
    depends entirely on the key distribution. *)

type t

val create : key_len:int -> capacity:int -> unit -> t
val of_sorted : key_len:int -> capacity:int -> string array -> int array -> int -> t

val count : t -> int
val capacity : t -> int
val is_full : t -> bool
val key_at : t -> int -> string
val tid_at : t -> int -> int
val prefix_len : t -> int
(** Length of the currently shared prefix. *)

val memory_bytes : t -> int

val find : t -> string -> int option
val update : t -> string -> int -> bool
val insert : t -> string -> int -> Std_leaf.insert_result
val remove : t -> string -> Std_leaf.remove_result

val split : t -> t
val absorb : t -> t -> unit
val fold_from : t -> int -> ('a -> string -> int -> 'a) -> 'a -> 'a
val lower_bound : t -> string -> int
val check_invariants : t -> unit
