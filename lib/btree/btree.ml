(* B+-tree with pluggable leaf representations.

   Structure modifications at the leaf level (overflow, underflow, merge)
   are delegated to a {!Policy.t}, which is how the elastic index
   framework customises the tree: the STX baseline always splits, the
   STX-SeqTree/SubTrie variants keep every leaf compact, and the elastic
   policy converts leaves between representations in place (§4).

   Inner nodes are conventional: sorted separator keys, where separator
   [i] is (a lower bound on) the minimum key of child [i+1].  Leaves are
   chained for range scans.  Index size is tracked incrementally under
   the explicit memory model so policies can consult it in O(1). *)

module Key = Ei_util.Key
module Invariant = Ei_util.Invariant
module Tracker = Ei_storage.Tracker
module Memmodel = Ei_storage.Memmodel
module Metrics = Ei_obs.Metrics
module Trace = Ei_obs.Trace

(* Shared structure-modification counters (per-domain sharded; no-ops
   while the registry is disabled).  The per-instance [stats] record
   stays authoritative for tests and reports. *)
let c_conversions = Metrics.counter "btree.conversions"
let c_leaf_splits = Metrics.counter "btree.leaf_splits"
let c_leaf_merges = Metrics.counter "btree.leaf_merges"
let c_search_splits = Metrics.counter "btree.search_splits"

(* Grouped-descent span, mirroring [Btree_olc.ev_multi_find]: joins the
   ambient request flow when a {!Ei_obs.Ctx} is installed. *)
let ev_multi_find =
  Trace.define ~span:true ~arg1:"keys" ~cat:"btree" "btree.multi_find"

type node = Inner of inner | Leaf_node of Leaf.t

and inner = {
  mutable n : int;  (* separator keys in use; children in use = n + 1 *)
  keys : string array;
  children : node array;
}

type stats = {
  mutable conversions : int;   (* leaf representation changes *)
  mutable leaf_splits : int;
  mutable leaf_merges : int;
  mutable search_splits : int; (* expansion-state splits triggered by finds *)
}

type t = {
  key_len : int;
  std_capacity : int;
  inner_capacity : int;
  load : int -> string;
  mutable policy : Policy.t;
  tracker : Tracker.t;
  mutable root : node;
  mutable items : int;
  mutable compact_leaves : int;
  mutable sweep_cursor : Leaf.t option;  (* cold-compaction scan position *)
  stats : stats;
}

let inner_min t = t.inner_capacity / 2

let inner_bytes t =
  Memmodel.inner_bytes ~capacity:t.inner_capacity ~key_len:t.key_len

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

let empty_leaf t spec =
  let repr =
    Leaf.repr_of_spec ~key_len:t.key_len ~std_capacity:t.std_capacity
      ~seq_levels:t.policy.Policy.seq_levels
      ~seq_breathing:t.policy.Policy.seq_breathing spec [||] [||] 0
  in
  { Leaf.repr; next = None; hits = 0 }

let create ?(leaf_capacity = 16) ?(inner_capacity = 16) ~key_len ~load
    ~(policy : Policy.t) () =
  let t =
    {
      key_len;
      std_capacity = leaf_capacity;
      inner_capacity;
      load;
      policy;
      tracker = Tracker.create ();
      root = Inner { n = 0; keys = [||]; children = [||] } (* placeholder *);
      items = 0;
      compact_leaves = 0;
      sweep_cursor = None;
      stats = { conversions = 0; leaf_splits = 0; leaf_merges = 0; search_splits = 0 };
    }
  in
  let leaf = empty_leaf t policy.Policy.initial in
  t.root <- Leaf_node leaf;
  Tracker.add t.tracker (Leaf.memory_bytes leaf);
  if Leaf.is_compact leaf then t.compact_leaves <- 1;
  t

let count t = t.items

let key_len (t : t) = t.key_len
let std_capacity t = t.std_capacity
let memory_bytes t = Tracker.bytes t.tracker
let high_water_bytes t = Tracker.high_water t.tracker
let compact_leaves t = t.compact_leaves
let stats t = t.stats
let policy t = t.policy
let set_policy t p = t.policy <- p

let view t : Policy.view =
  { bytes = Tracker.bytes t.tracker; compact_leaves = t.compact_leaves; items = t.items }

(* ------------------------------------------------------------------ *)
(* Accounting helpers.                                                 *)

let account_delta t (before : int) after =
  if after >= before then Tracker.add t.tracker (after - before)
  else Tracker.sub t.tracker (before - after)

(* Run a mutation on a leaf, adjusting tracked bytes (breathing can grow
   the node on plain inserts) and the compact-leaf counter. *)
let mutate_leaf t leaf f =
  let before = Leaf.memory_bytes leaf in
  let compact_before = Leaf.is_compact leaf in
  let r = f () in
  account_delta t before (Leaf.memory_bytes leaf);
  let compact_after = Leaf.is_compact leaf in
  if compact_before && not compact_after then
    t.compact_leaves <- t.compact_leaves - 1
  else if (not compact_before) && compact_after then
    t.compact_leaves <- t.compact_leaves + 1;
  r

(* Rebuild a leaf in place to a new representation (conversion). *)
let convert_leaf t leaf spec =
  mutate_leaf t leaf (fun () ->
      let keys, tids = Leaf.entries leaf ~load:t.load in
      let n = Array.length keys in
      leaf.Leaf.repr <-
        Leaf.repr_of_spec ~key_len:t.key_len ~std_capacity:t.std_capacity
          ~seq_levels:t.policy.Policy.seq_levels
          ~seq_breathing:t.policy.Policy.seq_breathing spec keys tids n);
  t.stats.conversions <- t.stats.conversions + 1;
  Metrics.incr c_conversions

(* ------------------------------------------------------------------ *)
(* Inner-node helpers.                                                 *)

let new_inner t =
  Tracker.add t.tracker (inner_bytes t);
  {
    n = 0;
    keys = Array.make t.inner_capacity "";
    children = Array.make (t.inner_capacity + 1) (Inner { n = 0; keys = [||]; children = [||] });
  }

let free_inner t (_ : inner) = Tracker.sub t.tracker (inner_bytes t)

(* Number of separator keys <= [key]: the child to descend into. *)
let child_index nd key =
  let lo = ref 0 and hi = ref nd.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Key.compare_fast nd.keys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let inner_insert_at nd i sep child =
  Array.blit nd.keys i nd.keys (i + 1) (nd.n - i);
  Array.blit nd.children (i + 1) nd.children (i + 2) (nd.n - i);
  nd.keys.(i) <- sep;
  nd.children.(i + 1) <- child;
  nd.n <- nd.n + 1

let inner_remove_at nd i =
  (* Removes separator [i] and child [i + 1]. *)
  Array.blit nd.keys (i + 1) nd.keys i (nd.n - i - 1);
  Array.blit nd.children (i + 2) nd.children (i + 1) (nd.n - i - 1);
  nd.keys.(nd.n - 1) <- "";
  nd.n <- nd.n - 1

(* ------------------------------------------------------------------ *)
(* Leaf split.                                                         *)

(* Split [leaf] into itself (left half) and a fresh right leaf, both with
   representation [spec].  Returns (separator, right leaf). *)
let split_leaf t leaf (spec : Policy.leaf_spec) =
  t.stats.leaf_splits <- t.stats.leaf_splits + 1;
  Metrics.incr c_leaf_splits;
  let before = Leaf.memory_bytes leaf in
  let was_compact = Leaf.is_compact leaf in
  let right_repr =
    match (leaf.Leaf.repr, spec) with
    | Leaf.Std l, Policy.Spec_std -> Leaf.Std (Std_leaf.split l)
    | Leaf.Pre l, Policy.Spec_pre -> Leaf.Pre (Prefix_leaf.split l)
    | Leaf.Bw l, Policy.Spec_bw -> Leaf.Bw (Bw_leaf.split l)
    | Leaf.Gap l, Policy.Spec_gap -> Leaf.Gap (Gapped_leaf.split l)
    | Leaf.Seq l, Policy.Spec_seq c when Ei_blindi.Seqtree.capacity l = c ->
      let left, right = Ei_blindi.Seqtree.split l ~left_capacity:c ~right_capacity:c in
      leaf.Leaf.repr <- Leaf.Seq left;
      Leaf.Seq right
    | Leaf.Sub l, Policy.Spec_sub c when Ei_blindi.Subtrie.capacity l = c ->
      let left, right = Ei_blindi.Subtrie.split l ~left_capacity:c ~right_capacity:c in
      leaf.Leaf.repr <- Leaf.Sub left;
      Leaf.Sub right
    | Leaf.Str l, Policy.Spec_str c when Ei_blindi.Stringtrie.capacity l = c ->
      let left, right =
        Ei_blindi.Stringtrie.split l ~load:t.load ~left_capacity:c ~right_capacity:c
      in
      leaf.Leaf.repr <- Leaf.Str left;
      Leaf.Str right
    | _ ->
      (* Representation change during the split: rebuild both halves. *)
      let keys, tids = Leaf.entries leaf ~load:t.load in
      let n = Array.length keys in
      let m = n / 2 in
      let mk lo len =
        Leaf.repr_of_spec ~key_len:t.key_len ~std_capacity:t.std_capacity
          ~seq_levels:t.policy.Policy.seq_levels
          ~seq_breathing:t.policy.Policy.seq_breathing spec
          (Array.sub keys lo len) (Array.sub tids lo len) len
      in
      let left = mk 0 m in
      let right = mk m (n - m) in
      leaf.Leaf.repr <- left;
      right
  in
  let right = { Leaf.repr = right_repr; next = leaf.Leaf.next; hits = leaf.Leaf.hits } in
  leaf.Leaf.next <- Some right;
  account_delta t before (Leaf.memory_bytes leaf + Leaf.memory_bytes right);
  let delta =
    (if Leaf.is_compact leaf then 1 else 0)
    + (if Leaf.is_compact right then 1 else 0)
    - if was_compact then 1 else 0
  in
  t.compact_leaves <- t.compact_leaves + delta;
  let sep = Leaf.min_key right ~load:t.load in
  (sep, right)

(* ------------------------------------------------------------------ *)
(* Insert.                                                             *)

(* A leaf operation may cascade into several splits (e.g. a compact leaf
   walking back down the capacity progression produces exactly-full
   halves that split again on the pending insert), so the upward
   propagation carries a list of (separator, new right node) pairs. *)
type leaf_outcome = Done | Dup | Split_up of (string * node) list

(* Generic downward mutation that may split nodes on the way back up.
   [on_leaf] performs the leaf-level operation. *)
let rec descend_mutate t node key ~(on_leaf : Leaf.t -> leaf_outcome) :
    leaf_outcome =
  match node with
  | Leaf_node leaf -> on_leaf leaf
  | Inner nd -> (
    let i = child_index nd key in
    match descend_mutate t nd.children.(i) key ~on_leaf with
    | (Done | Dup) as r -> r
    | Split_up pendings ->
      if nd.n + List.length pendings <= t.inner_capacity then begin
        List.iter
          (fun (sep, right) -> inner_insert_at nd (child_index nd sep) sep right)
          pendings;
        Done
      end
      else begin
        (* Conceptually insert the pending separators into the node, then
           split at the median, so both halves end up with at least
           [inner_capacity / 2] keys.  (Pendings are few — at most the
           compact capacity progression depth — so one split suffices.) *)
        let total = nd.n + List.length pendings in
        assert (total <= 2 * t.inner_capacity);
        let keys = Array.make total "" in
        let children = Array.make (total + 1) nd.children.(0) in
        Array.blit nd.keys 0 keys 0 nd.n;
        Array.blit nd.children 0 children 0 (nd.n + 1);
        let count = ref nd.n in
        let insert_pending sep right =
          let lo = ref 0 and hi = ref !count in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if Key.compare_fast keys.(mid) sep <= 0 then lo := mid + 1 else hi := mid
          done;
          let pos = !lo in
          Array.blit keys pos keys (pos + 1) (!count - pos);
          Array.blit children (pos + 1) children (pos + 2) (!count - pos);
          keys.(pos) <- sep;
          children.(pos + 1) <- right;
          incr count
        in
        List.iter (fun (sep, right) -> insert_pending sep right) pendings;
        let mid = total / 2 in
        let up_key = keys.(mid) in
        let rnode = new_inner t in
        rnode.n <- total - mid - 1;
        Array.blit keys (mid + 1) rnode.keys 0 rnode.n;
        Array.blit children (mid + 1) rnode.children 0 (rnode.n + 1);
        nd.n <- mid;
        Array.blit keys 0 nd.keys 0 mid;
        Array.blit children 0 nd.children 0 (mid + 1);
        for k = mid to t.inner_capacity - 1 do
          nd.keys.(k) <- ""
        done;
        Split_up [ (up_key, Inner rnode) ]
      end)

(* Insert into a leaf, handling overflow per the policy.  Splits may
   cascade when the policy walks a compact leaf down the capacity
   progression (each split halves the capacity until the pending insert
   fits); the accumulated new right leaves are propagated together. *)
let rec insert_into_leaf t ?(pending = []) leaf key tid =
  leaf.Leaf.hits <- leaf.Leaf.hits + 1;
  match mutate_leaf t leaf (fun () -> Leaf.insert leaf ~load:t.load key tid) with
  | Leaf.Inserted ->
    t.items <- t.items + 1;
    (match pending with [] -> Done | _ :: _ -> Split_up (List.rev pending))
  | Leaf.Duplicate ->
    assert (match pending with [] -> true | _ :: _ -> false);
    Dup
  | Leaf.Full -> (
    match t.policy.Policy.on_overflow (view t) ~current:(Leaf.spec leaf) with
    | Policy.Convert spec ->
      assert (Policy.spec_capacity ~std_capacity:t.std_capacity spec > Leaf.count leaf);
      convert_leaf t leaf spec;
      insert_into_leaf t ~pending leaf key tid
    | Policy.Split spec ->
      let sep, right = split_leaf t leaf spec in
      let target = if Key.compare_fast key sep < 0 then leaf else right in
      insert_into_leaf t ~pending:((sep, Leaf_node right) :: pending) target key tid)

let grow_root t outcome =
  match outcome with
  | Done -> true
  | Dup -> false
  | Split_up pendings ->
    let nd = new_inner t in
    nd.children.(0) <- t.root;
    t.root <- Inner nd;
    List.iter
      (fun (sep, right) -> inner_insert_at nd (child_index nd sep) sep right)
      pendings;
    true

(* Insert a key/tid mapping; returns false if the key is present. *)
let insert t key tid =
  assert (String.length key = t.key_len);
  grow_root t
    (descend_mutate t t.root key ~on_leaf:(fun leaf -> insert_into_leaf t leaf key tid))

(* ------------------------------------------------------------------ *)
(* Expansion-state split of a compact leaf reached by a search (§4).   *)

let force_split_leaf t key spec =
  t.stats.search_splits <- t.stats.search_splits + 1;
  Metrics.incr c_search_splits;
  let outcome =
    descend_mutate t t.root key ~on_leaf:(fun leaf ->
        if Leaf.count leaf >= 2 then begin
          let sep, right = split_leaf t leaf spec in
          Split_up [ (sep, Leaf_node right) ]
        end
        else Done)
  in
  ignore (grow_root t outcome)

(* ------------------------------------------------------------------ *)
(* Find.                                                               *)

let rec find_leaf t node key =
  match node with
  | Leaf_node leaf -> leaf
  | Inner nd -> find_leaf t nd.children.(child_index nd key) key

let find t key =
  let leaf = find_leaf t t.root key in
  leaf.Leaf.hits <- leaf.Leaf.hits + 1;
  let result = Leaf.find leaf ~load:t.load key in
  (if Leaf.is_compact leaf then
     match t.policy.Policy.on_search_compact (view t) ~current:(Leaf.spec leaf) with
     | Some spec -> force_split_leaf t key spec
     | None -> ());
  result

let mem t key = Option.is_some (find t key)

(* Batched lookup: walk up to [group] keys through the tree in
   lockstep (see {!Interleave}), prefetching each cursor's next node a
   round ahead of its use so the per-level misses of a batch overlap.
   Result slot [i] is exactly [find t keys.(i)].

   Expansion-state splits requested by searches that land on compact
   leaves are deferred to the end of the batch: a split never changes
   lookup results, and replaying them afterwards keeps mid-batch
   structure mutations away from the other in-flight cursors. *)
let multi_find ?(group = 8) t keys =
  let tmf = Trace.start () in
  let nkeys = Array.length keys in
  let out = Array.make nkeys None in
  let splits = ref [] in
  let base = ref 0 in
  while !base < nkeys do
    let n = min group (nkeys - !base) in
    let first = !base in
    Interleave.run ~n
      ~start:(fun _ -> t.root)
      ~step:(fun i node ->
        let key = keys.(first + i) in
        match node with
        | Inner nd ->
          let child = nd.children.(child_index nd key) in
          Ei_util.Prefetch.prefetch child;
          Interleave.Continue child
        | Leaf_node leaf ->
          leaf.Leaf.hits <- leaf.Leaf.hits + 1;
          out.(first + i) <- Leaf.find leaf ~load:t.load key;
          (if Leaf.is_compact leaf then
             match
               t.policy.Policy.on_search_compact (view t)
                 ~current:(Leaf.spec leaf)
             with
             | Some spec -> splits := (key, spec) :: !splits
             | None -> ());
          Interleave.Done)
      ();
    base := first + n
  done;
  List.iter (fun (key, spec) -> force_split_leaf t key spec) (List.rev !splits);
  Trace.span ev_multi_find ~start_ns:tmf nkeys;
  out

(* In-place value update of an existing key; false if absent. *)
let update t key tid =
  let leaf = find_leaf t t.root key in
  leaf.Leaf.hits <- leaf.Leaf.hits + 1;
  Leaf.update leaf ~load:t.load key tid

(* ------------------------------------------------------------------ *)
(* Range scans.                                                        *)

(* Fold over up to [n] entries with keys >= [start], in key order.
   Compact leaves load each key from the table, modelling the indirect
   scan cost. *)
let fold_range t ~start ~n f acc =
  let leaf = find_leaf t t.root start in
  leaf.Leaf.hits <- leaf.Leaf.hits + 1;
  let pos = Leaf.lower_bound leaf ~load:t.load start in
  let remaining = ref n and acc = ref acc in
  let rec walk leaf pos =
    if !remaining > 0 then begin
      let _ =
        Leaf.fold_from leaf ~load:t.load pos
          (fun () k tid ->
            if !remaining > 0 then begin
              acc := f !acc k tid;
              decr remaining
            end)
          ()
      in
      if !remaining > 0 then
        match leaf.Leaf.next with Some nxt -> walk nxt 0 | None -> ()
    end
  in
  walk leaf pos;
  !acc

let iter t f =
  let rec leftmost = function
    | Leaf_node leaf -> leaf
    | Inner nd -> leftmost nd.children.(0)
  in
  let rec walk = function
    | None -> ()
    | Some leaf ->
      Leaf.fold_from leaf ~load:t.load 0 (fun () k tid -> f k tid) ();
      walk leaf.Leaf.next
  in
  walk (Some (leftmost t.root))

(* ------------------------------------------------------------------ *)
(* Cold-leaf compaction sweep (§4 names access-aware grow/shrink
   policies as an open design point).

   Walk the leaf chain from a persistent cursor, inspecting up to
   [batch] leaves: standard leaves that were not accessed since their
   last visit (hits = 0) are converted to the compact representation
   [spec]; visited leaves have their counters reset, giving an
   approximate one-sweep-generation coldness test.  Returns the number
   of conversions performed.  The cursor survives structural changes:
   a merged-away leaf's [next] still points into the live chain. *)
let compact_cold t ~batch ~spec =
  let rec leftmost = function
    | Leaf_node leaf -> leaf
    | Inner nd -> leftmost nd.children.(0)
  in
  let start =
    match t.sweep_cursor with
    | Some leaf -> leaf
    | None -> leftmost t.root
  in
  let converted = ref 0 in
  let rec walk leaf budget =
    if budget = 0 then t.sweep_cursor <- Some leaf
    else begin
      (if (not (Leaf.is_compact leaf)) && leaf.Leaf.hits = 0 then
         let count = Leaf.count leaf in
         if count > 0 && count <= Policy.spec_capacity ~std_capacity:t.std_capacity spec
         then begin
           convert_leaf t leaf spec;
           incr converted
         end);
      leaf.Leaf.hits <- 0;
      match leaf.Leaf.next with
      | Some next -> walk next (budget - 1)
      | None ->
        (* Wrapped around: restart from the leftmost leaf next time. *)
        t.sweep_cursor <- None
    end
  in
  walk start batch;
  !converted

(* Fold over the leaves in key order: representation spec and occupancy.
   Used by benchmarks to report the compact-leaf capacity distribution. *)
let fold_leaves t f acc =
  let rec leftmost = function
    | Leaf_node leaf -> leaf
    | Inner nd -> leftmost nd.children.(0)
  in
  let rec walk acc = function
    | None -> acc
    | Some leaf -> walk (f acc (Leaf.spec leaf) (Leaf.count leaf)) leaf.Leaf.next
  in
  walk acc (Some (leftmost t.root))

(* ------------------------------------------------------------------ *)
(* Remove.                                                             *)

(* Whether a leaf is underflowed under the current policy. *)
let leaf_underflowed t leaf =
  t.policy.Policy.underflow_at (Leaf.spec leaf) ~std_capacity:t.std_capacity
    ~count:(Leaf.count leaf)

(* Whether a leaf could give up one entry without itself underflowing. *)
let leaf_can_spare t leaf =
  not
    (t.policy.Policy.underflow_at (Leaf.spec leaf) ~std_capacity:t.std_capacity
       ~count:(Leaf.count leaf - 1))

(* Move one entry from [src] (at its first or last position) into [dst].
   [from_end] says which end of [src] to take. *)
let shift_entry t ~src ~dst ~from_end =
  let pos = if from_end then Leaf.count src - 1 else 0 in
  let key, tid = Leaf.entry_at src ~load:t.load pos in
  (match mutate_leaf t src (fun () -> Leaf.remove src ~load:t.load key) with
  | Leaf.Removed -> ()
  | Leaf.Not_present -> Invariant.impossible "Btree.shift_entry: source entry vanished");
  (match mutate_leaf t dst (fun () -> Leaf.insert dst ~load:t.load key tid) with
  | Leaf.Inserted -> ()
  | Leaf.Duplicate | Leaf.Full ->
    Invariant.impossible "Btree.shift_entry: destination rejected the entry")

(* Merge leaf children [i] and [i + 1] of inner node [nd]. *)
let merge_leaf_children t nd i left right =
  t.stats.leaf_merges <- t.stats.leaf_merges + 1;
  Metrics.incr c_leaf_merges;
  let total = Leaf.count left + Leaf.count right in
  let spec =
    t.policy.Policy.on_merge (view t) ~total ~left:(Leaf.spec left)
      ~right:(Leaf.spec right)
  in
  assert (Policy.spec_capacity ~std_capacity:t.std_capacity spec >= total);
  let before = Leaf.memory_bytes left + Leaf.memory_bytes right in
  let compact_before =
    (if Leaf.is_compact left then 1 else 0) + if Leaf.is_compact right then 1 else 0
  in
  (match (left.Leaf.repr, right.Leaf.repr, spec) with
  | Leaf.Std a, Leaf.Std b, Policy.Spec_std when Std_leaf.capacity a >= total ->
    Std_leaf.absorb a b
  | Leaf.Pre a, Leaf.Pre b, Policy.Spec_pre when Prefix_leaf.capacity a >= total ->
    Prefix_leaf.absorb a b
  | Leaf.Bw a, Leaf.Bw b, Policy.Spec_bw when Bw_leaf.capacity a >= total ->
    Bw_leaf.absorb a b
  | Leaf.Gap a, Leaf.Gap b, Policy.Spec_gap when Gapped_leaf.capacity a >= total ->
    Gapped_leaf.absorb a b
  | Leaf.Seq a, Leaf.Seq b, Policy.Spec_seq c ->
    left.Leaf.repr <-
      Leaf.Seq
        (Ei_blindi.Seqtree.merge a b ~load:t.load ~capacity:c
           ~levels:t.policy.Policy.seq_levels)
  | Leaf.Sub a, Leaf.Sub b, Policy.Spec_sub c ->
    left.Leaf.repr <- Leaf.Sub (Ei_blindi.Subtrie.merge a b ~load:t.load ~capacity:c)
  | Leaf.Str a, Leaf.Str b, Policy.Spec_str c ->
    left.Leaf.repr <- Leaf.Str (Ei_blindi.Stringtrie.merge a b ~load:t.load ~capacity:c)
  | _ ->
    let kl, tl = Leaf.entries left ~load:t.load in
    let kr, tr = Leaf.entries right ~load:t.load in
    left.Leaf.repr <-
      Leaf.repr_of_spec ~key_len:t.key_len ~std_capacity:t.std_capacity
        ~seq_levels:t.policy.Policy.seq_levels
        ~seq_breathing:t.policy.Policy.seq_breathing spec
        (Array.append kl kr) (Array.append tl tr) total);
  left.Leaf.next <- right.Leaf.next;
  account_delta t before (Leaf.memory_bytes left);
  let compact_after = if Leaf.is_compact left then 1 else 0 in
  t.compact_leaves <- t.compact_leaves + compact_after - compact_before;
  inner_remove_at nd i

(* Rebalance leaf child [i] of [nd] after an underflow. *)
let fix_leaf_child t nd i =
  let li = if i > 0 then i - 1 else i in
  let left =
    match nd.children.(li) with
    | Leaf_node l -> l
    | Inner _ -> Invariant.impossible "Btree.fix_leaf_child: left sibling is inner"
  in
  let right =
    match nd.children.(li + 1) with
    | Leaf_node l -> l
    | Inner _ -> Invariant.impossible "Btree.fix_leaf_child: right sibling is inner"
  in
  let sibling = if i > 0 then left else right in
  if leaf_can_spare t sibling then begin
    (* Borrow one entry through the separator. *)
    if i > 0 then shift_entry t ~src:left ~dst:right ~from_end:true
    else shift_entry t ~src:right ~dst:left ~from_end:false;
    nd.keys.(li) <- Leaf.min_key right ~load:t.load
  end
  else merge_leaf_children t nd li left right

(* Rebalance inner child [i] of [nd] after an underflow. *)
let fix_inner_child t nd i (child : inner) =
  let li = if i > 0 then i - 1 else i in
  let left =
    match nd.children.(li) with
    | Inner x -> x
    | Leaf_node _ -> Invariant.impossible "Btree.fix_inner_child: left sibling is a leaf"
  in
  let right =
    match nd.children.(li + 1) with
    | Inner x -> x
    | Leaf_node _ -> Invariant.impossible "Btree.fix_inner_child: right sibling is a leaf"
  in
  ignore child;
  if i > 0 && left.n > inner_min t then begin
    (* Rotate right: parent separator moves down, left's last key up. *)
    Array.blit right.keys 0 right.keys 1 right.n;
    Array.blit right.children 0 right.children 1 (right.n + 1);
    right.keys.(0) <- nd.keys.(li);
    right.children.(0) <- left.children.(left.n);
    right.n <- right.n + 1;
    nd.keys.(li) <- left.keys.(left.n - 1);
    left.keys.(left.n - 1) <- "";
    left.n <- left.n - 1
  end
  else if i = 0 && right.n > inner_min t then begin
    (* Rotate left. *)
    left.keys.(left.n) <- nd.keys.(li);
    left.children.(left.n + 1) <- right.children.(0);
    left.n <- left.n + 1;
    nd.keys.(li) <- right.keys.(0);
    Array.blit right.keys 1 right.keys 0 (right.n - 1);
    Array.blit right.children 1 right.children 0 right.n;
    right.keys.(right.n - 1) <- "";
    right.n <- right.n - 1
  end
  else begin
    (* Merge right into left around the separator. *)
    left.keys.(left.n) <- nd.keys.(li);
    Array.blit right.keys 0 left.keys (left.n + 1) right.n;
    Array.blit right.children 0 left.children (left.n + 1) (right.n + 1);
    left.n <- left.n + right.n + 1;
    free_inner t right;
    inner_remove_at nd li
  end

type remove_outcome = Removed of bool (* child underflowed *) | Absent

let rec remove_rec t node key : remove_outcome =
  match node with
  | Leaf_node leaf -> (
    match mutate_leaf t leaf (fun () -> Leaf.remove leaf ~load:t.load key) with
    | Leaf.Not_present -> Absent
    | Leaf.Removed ->
      t.items <- t.items - 1;
      let cnt = Leaf.count leaf in
      if leaf_underflowed t leaf then
        match
          t.policy.Policy.on_underflow (view t) ~current:(Leaf.spec leaf) ~count:cnt
        with
        | Policy.Replace spec ->
          assert (Policy.spec_capacity ~std_capacity:t.std_capacity spec >= cnt);
          convert_leaf t leaf spec;
          Removed false
        | Policy.Rebalance -> Removed true
      else Removed false)
  | Inner nd -> (
    let i = child_index nd key in
    match remove_rec t nd.children.(i) key with
    | Absent -> Absent
    | Removed false -> Removed false
    | Removed true ->
      (match nd.children.(i) with
      | Leaf_node _ -> fix_leaf_child t nd i
      | Inner child -> fix_inner_child t nd i child);
      Removed (nd.n < inner_min t))

(* Remove a key; returns false if absent. *)
let remove t key =
  match remove_rec t t.root key with
  | Absent -> false
  | Removed _ ->
    (* Collapse the root if it lost all separators. *)
    (match t.root with
    | Inner nd when nd.n = 0 ->
      t.root <- nd.children.(0);
      free_inner t nd
    | Inner _ | Leaf_node _ -> ());
    true

(* ------------------------------------------------------------------ *)
(* Bulk loading.                                                       *)

(* Build a tree from [n] strictly increasing keys in O(n): leaves are
   filled to ~90% of the policy's initial representation and chained,
   then inner levels are assembled bottom-up.  Equivalent to inserting
   the entries in order, but without per-insert descents and splits. *)
let of_sorted ?(leaf_capacity = 16) ?(inner_capacity = 16) ~key_len ~load
    ~(policy : Policy.t) keys tids n =
  let t =
    create ~leaf_capacity ~inner_capacity ~key_len ~load ~policy ()
  in
  if n = 0 then t
  else begin
    (* Discard the initial empty leaf's accounting. *)
    Tracker.reset t.tracker;
    t.compact_leaves <- 0;
    (* Balanced chunking: [m] items into ceil(m/cap) groups of size
       floor(m/groups) or +1, so no group is undersized. *)
    let chunk m cap =
      let groups = (m + cap - 1) / cap in
      let base = m / groups and rem = m mod groups in
      Array.init groups (fun g ->
          let lo = (g * base) + min g rem in
          let len = base + if g < rem then 1 else 0 in
          (lo, len))
    in
    let spec = policy.Policy.initial in
    let cap = Policy.spec_capacity ~std_capacity:leaf_capacity spec in
    let leaf_chunks = chunk n (max 2 (cap * 9 / 10)) in
    let leaves =
      Array.map
        (fun (lo, len) ->
          let repr =
            Leaf.repr_of_spec ~key_len ~std_capacity:leaf_capacity
              ~seq_levels:policy.Policy.seq_levels
              ~seq_breathing:policy.Policy.seq_breathing spec
              (Array.sub keys lo len) (Array.sub tids lo len) len
          in
          { Leaf.repr; next = None; hits = 0 })
        leaf_chunks
    in
    let leaf_count = Array.length leaves in
    Array.iteri
      (fun i leaf ->
        if i + 1 < leaf_count then leaf.Leaf.next <- Some leaves.(i + 1);
        Tracker.add t.tracker (Leaf.memory_bytes leaf);
        if Leaf.is_compact leaf then t.compact_leaves <- t.compact_leaves + 1)
      leaves;
    (* Assemble inner levels bottom-up; separators are the min keys of
       the right siblings. *)
    let rec build (children : node array) (mins : string array) =
      let m = Array.length children in
      if m = 1 then children.(0)
      else begin
        let groups = chunk m (inner_capacity + 1) in
        let parents =
          Array.map
            (fun (lo, len) ->
              let nd = new_inner t in
              nd.n <- len - 1;
              Array.blit children lo nd.children 0 len;
              for k = 1 to len - 1 do
                nd.keys.(k - 1) <- mins.(lo + k)
              done;
              Inner nd)
            groups
        in
        let parent_mins = Array.map (fun (lo, _) -> mins.(lo)) groups in
        build parents parent_mins
      end
    in
    t.root <-
      build
        (Array.map (fun l -> Leaf_node l) leaves)
        (Array.map (fun (lo, _) -> keys.(lo)) leaf_chunks);
    t.items <- n;
    t
  end

(* ------------------------------------------------------------------ *)
(* Introspection (sanitizer support).                                  *)

type introspection = {
  leaves : Leaf.t array;
  leaf_depths : int array;
  leaf_bounds : (string option * string option) array;
  chain : Leaf.t array;
  inner_fanouts : int array;
  inner_is_root : bool array;
  inner_seps : string array array;
  inner_node_bytes : int;
  inner_capacity : int;
  i_std_capacity : int;
  key_len : int;
  tracked_bytes : int;
  items : int;
  compact_count : int;
  load : int -> string;
}

(* Snapshot the structure for an external validator: leaves with their
   separator-derived bounds and depths (by tree walk), the leaf chain
   (by [next] pointers), and per-inner-node fanouts/separators.  The
   validator cross-checks the two leaf orders and the O(1) counters
   without access to the node types. *)
let introspect t =
  let leaves = ref [] and depths = ref [] and bounds = ref [] in
  let fanouts = ref [] and roots = ref [] and seps = ref [] in
  let rec walk node ~lo ~hi ~depth ~is_root =
    match node with
    | Leaf_node leaf ->
      leaves := leaf :: !leaves;
      depths := depth :: !depths;
      bounds := (lo, hi) :: !bounds
    | Inner nd ->
      fanouts := nd.n :: !fanouts;
      roots := is_root :: !roots;
      seps := Array.sub nd.keys 0 (max 0 nd.n) :: !seps;
      for i = 0 to nd.n do
        let lo' = if i = 0 then lo else Some nd.keys.(i - 1) in
        let hi' = if i = nd.n then hi else Some nd.keys.(i) in
        walk nd.children.(i) ~lo:lo' ~hi:hi' ~depth:(depth + 1) ~is_root:false
      done
  in
  walk t.root ~lo:None ~hi:None ~depth:0 ~is_root:true;
  let chain = ref [] in
  let rec leftmost = function
    | Leaf_node leaf -> leaf
    | Inner nd -> leftmost nd.children.(0)
  in
  let rec follow = function
    | None -> ()
    | Some leaf ->
      chain := leaf :: !chain;
      follow leaf.Leaf.next
  in
  follow (Some (leftmost t.root));
  let rev_array l = Array.of_list (List.rev l) in
  {
    leaves = rev_array !leaves;
    leaf_depths = rev_array !depths;
    leaf_bounds = rev_array !bounds;
    chain = rev_array !chain;
    inner_fanouts = rev_array !fanouts;
    inner_is_root = rev_array !roots;
    inner_seps = rev_array !seps;
    inner_node_bytes = inner_bytes t;
    inner_capacity = t.inner_capacity;
    i_std_capacity = t.std_capacity;
    key_len = t.key_len;
    tracked_bytes = Tracker.bytes t.tracker;
    items = t.items;
    compact_count = t.compact_leaves;
    load = t.load;
  }

(* ------------------------------------------------------------------ *)
(* Invariant checking (test support).                                  *)

let check_invariants (t : t) =
  let leaves = ref [] in
  (* Depth uniformity, separator bounds, occupancy. *)
  let rec walk node ~lo ~hi ~is_root =
    match node with
    | Leaf_node leaf ->
      leaves := leaf :: !leaves;
      Leaf.check_invariants leaf ~load:t.load;
      if not is_root then assert (Leaf.count leaf >= 1);
      Leaf.fold_from leaf ~load:t.load 0
        (fun () k _ ->
          (match lo with Some l -> assert (Key.compare l k <= 0) | None -> ());
          match hi with Some h -> assert (Key.compare k h < 0) | None -> ())
        ();
      1
    | Inner nd ->
      assert (nd.n >= 1);
      if not is_root then assert (nd.n >= inner_min t);
      assert (nd.n <= t.inner_capacity);
      for i = 0 to nd.n - 2 do
        assert (Key.compare nd.keys.(i) nd.keys.(i + 1) < 0)
      done;
      let depth = ref None in
      for i = 0 to nd.n do
        let lo' = if i = 0 then lo else Some nd.keys.(i - 1) in
        let hi' = if i = nd.n then hi else Some nd.keys.(i) in
        let d = walk nd.children.(i) ~lo:lo' ~hi:hi' ~is_root:false in
        match !depth with
        | None -> depth := Some d
        | Some d0 -> assert (Int.equal d d0)
      done;
      1 + Option.get !depth
  in
  ignore (walk t.root ~lo:None ~hi:None ~is_root:true);
  (* The leaf chain visits exactly the in-order leaves. *)
  let in_order = List.rev !leaves in
  (match in_order with
  | [] -> Invariant.impossible "Btree.check_invariants: tree with no leaves"
  | first :: _ ->
    let rec follow leaf expected =
      match (leaf.Leaf.next, expected) with
      | None, [] -> ()
      | Some nxt, e :: rest ->
        assert (nxt == e);
        follow nxt rest
      | None, _ :: _ | Some _, [] ->
        Invariant.broken "Btree: leaf chain diverges from in-order leaves"
    in
    follow first (List.tl in_order));
  (* Item count, compact count and tracked bytes match recomputation. *)
  let item_sum = List.fold_left (fun a l -> a + Leaf.count l) 0 in_order in
  assert (item_sum = t.items);
  let compact_sum =
    List.fold_left (fun a l -> a + if Leaf.is_compact l then 1 else 0) 0 in_order
  in
  assert (compact_sum = t.compact_leaves);
  let leaf_bytes = List.fold_left (fun a l -> a + Leaf.memory_bytes l) 0 in_order in
  let rec inner_count = function
    | Leaf_node _ -> 0
    | Inner nd ->
      let s = ref 1 in
      for i = 0 to nd.n do
        s := !s + inner_count nd.children.(i)
      done;
      !s
  in
  let expect = leaf_bytes + (inner_count t.root * inner_bytes t) in
  assert (expect = Tracker.bytes t.tracker)
