(** B+-tree with pluggable leaf representations.

    Leaf-level structure modifications (overflow, underflow, merge) are
    delegated to a {!Policy.t}: the STX baseline always splits, the
    STX-SeqTree / STX-SubTrie variants keep every leaf compact, and the
    elastic policy ({!Ei_core.Elasticity}) converts leaves between
    representations in place.  Index size is tracked incrementally under
    the explicit memory model ({!Ei_storage.Memmodel}). *)

type t

type stats = {
  mutable conversions : int;    (** leaf representation changes *)
  mutable leaf_splits : int;
  mutable leaf_merges : int;
  mutable search_splits : int;  (** expansion-state splits from finds *)
}

val create :
  ?leaf_capacity:int ->
  ?inner_capacity:int ->
  key_len:int ->
  load:(int -> string) ->
  policy:Policy.t ->
  unit ->
  t
(** [create ~key_len ~load ~policy ()] is an empty tree over fixed-length
    keys.  [load tid] must return the indexed key of row [tid]; compact
    leaves use it for verification and scans.  Default capacities are 16
    slots for both leaves and inner nodes, as in the STX B+-tree. *)

val of_sorted :
  ?leaf_capacity:int ->
  ?inner_capacity:int ->
  key_len:int ->
  load:(int -> string) ->
  policy:Policy.t ->
  string array ->
  int array ->
  int ->
  t
(** [of_sorted ~key_len ~load ~policy keys tids n] bulk-loads a tree from
    [n] strictly increasing keys in O(n), equivalent to inserting them in
    order. *)

val insert : t -> string -> int -> bool
(** [insert t key tid] maps [key] to [tid]; false if [key] is present. *)

val remove : t -> string -> bool
(** [remove t key] deletes the mapping; false if absent. *)

val update : t -> string -> int -> bool
(** In-place value overwrite of an existing key; false if absent. *)

val find : t -> string -> int option
(** Point lookup.  Under an elastic policy in the expanding state, a
    find reaching a compact leaf may split it (§4). *)

val mem : t -> string -> bool

val multi_find : ?group:int -> t -> string array -> int option array
(** Batched point lookup: slot [i] of the result is [find t keys.(i)].
    Keys are walked through the tree in lockstep groups of [group]
    (default 8) with software prefetch a round ahead of each descent
    step, so the per-level cache misses of a group overlap
    ({!Interleave}).  Expansion-state splits triggered by searches are
    replayed after the batch; results are unaffected. *)

val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
(** [fold_range t ~start ~n f acc] folds over up to [n] entries with
    keys [>= start] in ascending order.  Compact leaves load each key
    from the table — the indirect-access scan cost of §2. *)

val iter : t -> (string -> int -> unit) -> unit
(** In-order iteration over all entries. *)

val fold_leaves : t -> ('a -> Policy.leaf_spec -> int -> 'a) -> 'a -> 'a
(** Fold over the leaves in key order with their representation spec and
    occupancy (used to report compact-leaf distributions). *)

val compact_cold : t -> batch:int -> spec:Policy.leaf_spec -> int
(** Access-aware compaction sweep: inspect up to [batch] leaves from a
    persistent cursor and convert standard leaves that were not accessed
    since the previous visit to [spec].  Returns the number of
    conversions.  Implements §4's "compact infrequently accessed nodes"
    policy variant. *)

val count : t -> int
(** Number of stored keys. *)

val key_len : t -> int
(** Length in bytes of every key in the tree. *)

val memory_bytes : t -> int
(** Current index size under the memory model. *)

val high_water_bytes : t -> int

val compact_leaves : t -> int
(** Number of leaves currently in a compact representation. *)

val stats : t -> stats
val policy : t -> Policy.t
val set_policy : t -> Policy.t -> unit

val std_capacity : t -> int
(** Standard-leaf capacity the tree was created with. *)

(** Cheap structural snapshot for external validators ({!Ei_check}).
    Leaf cells are the live mutable cells — treat them as read-only. *)
type introspection = {
  leaves : Leaf.t array;  (** leaves in key order, by tree walk *)
  leaf_depths : int array;  (** root-to-leaf depth per leaf *)
  leaf_bounds : (string option * string option) array;
      (** separator-derived [lo <= keys < hi) bounds per leaf *)
  chain : Leaf.t array;  (** leaves by [next] pointers from the leftmost *)
  inner_fanouts : int array;  (** separator keys in use per inner node *)
  inner_is_root : bool array;  (** aligned with [inner_fanouts] *)
  inner_seps : string array array;  (** separator keys per inner node *)
  inner_node_bytes : int;  (** memory-model bytes of one inner node *)
  inner_capacity : int;
  i_std_capacity : int;
  key_len : int;
  tracked_bytes : int;  (** the tracker's running total *)
  items : int;  (** the O(1) item counter *)
  compact_count : int;  (** the O(1) compact-leaf counter *)
  load : int -> string;
}

val introspect : t -> introspection

val check_invariants : t -> unit
(** Assert structural invariants: uniform depth, separator ordering,
    leaf-chain consistency, and that tracked size, item and compact-leaf
    counts match recomputation.  Test support. *)
