(** Gapped (slotted) B+-tree leaf, BS-tree style: full-capacity key and
    tuple-id arrays with an occupancy map and evenly distributed gaps,
    so inserts usually fill a slot the search already found instead of
    shifting the packed tail, and removes just clear a bit.

    Searches are binary over the slot order — every used slot carries a
    key (gaps hold a copy of a neighbour's key), kept non-decreasing —
    so the search loop never branches on occupancy.

    Result types are shared with {!Std_leaf}; positions in the
    positional accessors ([key_at], [fold_from], [lower_bound]) are in
    key order over the live entries, exactly as for a packed leaf. *)

type t

val create : key_len:int -> capacity:int -> unit -> t

val of_sorted :
  key_len:int -> capacity:int -> string array -> int array -> int -> t
(** Lay out sorted entries with evenly distributed gaps. *)

val count : t -> int
val capacity : t -> int
val is_full : t -> bool
val key_at : t -> int -> string
val tid_at : t -> int -> int
val memory_bytes : t -> int

val find : t -> string -> int option
val update : t -> string -> int -> bool
val insert : t -> string -> int -> Std_leaf.insert_result
val remove : t -> string -> Std_leaf.remove_result

val split : t -> t
(** Keep the first half (redistributed) in place; return the second. *)

val absorb : t -> t -> unit
(** Redistribute both leaves' entries into the first (which must sort
    below); caller guarantees room. *)

val fold_from : t -> int -> ('a -> string -> int -> 'a) -> 'a -> 'a
val lower_bound : t -> string -> int
val check_invariants : t -> unit
