(* A B+-tree leaf slot: the mutable cell through which the tree sees a
   leaf, whatever its current representation.

   The elastic index converts leaves between representations *in place*
   (§4) — the parent inner node keeps pointing at the same [t] while
   [repr] is swapped — so conversions never touch the upper tree levels.
   Leaves are chained through [next] for range scans. *)

module Seqtree = Ei_blindi.Seqtree
module Subtrie = Ei_blindi.Subtrie
module Stringtrie = Ei_blindi.Stringtrie

type repr =
  | Std of Std_leaf.t
  | Seq of Seqtree.t
  | Sub of Subtrie.t
  | Pre of Prefix_leaf.t
  | Str of Stringtrie.t
  | Bw of Bw_leaf.t
  | Gap of Gapped_leaf.t

type t = {
  mutable repr : repr;
  mutable next : t option;
  mutable hits : int;  (* accesses since the last cold-sweep visit *)
}

type load = int -> string

let count t =
  match t.repr with
  | Std l -> Std_leaf.count l
  | Seq l -> Seqtree.count l
  | Sub l -> Subtrie.count l
  | Pre l -> Prefix_leaf.count l
  | Str l -> Stringtrie.count l
  | Bw l -> Bw_leaf.count l
  | Gap l -> Gapped_leaf.count l

let capacity t =
  match t.repr with
  | Std l -> Std_leaf.capacity l
  | Seq l -> Seqtree.capacity l
  | Sub l -> Subtrie.capacity l
  | Pre l -> Prefix_leaf.capacity l
  | Str l -> Stringtrie.capacity l
  | Bw l -> Bw_leaf.capacity l
  | Gap l -> Gapped_leaf.capacity l

let is_full t = count t >= capacity t

(* Prefix leaves store keys internally: not "compact" in the paper's
   indirect-key sense. *)
let is_compact t =
  match t.repr with
  | Std _ | Pre _ | Bw _ | Gap _ -> false
  | Seq _ | Sub _ | Str _ -> true

let spec t : Policy.leaf_spec =
  match t.repr with
  | Std _ -> Spec_std
  | Seq l -> Spec_seq (Seqtree.capacity l)
  | Sub l -> Spec_sub (Subtrie.capacity l)
  | Pre _ -> Spec_pre
  | Str l -> Spec_str (Stringtrie.capacity l)
  | Bw _ -> Spec_bw
  | Gap _ -> Spec_gap

(* Entry at a position in key order; compact leaves load the key. *)
let entry_at t ~(load : int -> string) i =
  match t.repr with
  | Std l -> (Std_leaf.key_at l i, Std_leaf.tid_at l i)
  | Pre l -> (Prefix_leaf.key_at l i, Prefix_leaf.tid_at l i)
  | Bw l -> (Bw_leaf.key_at l i, Bw_leaf.tid_at l i)
  | Gap l -> (Gapped_leaf.key_at l i, Gapped_leaf.tid_at l i)
  | Seq l ->
    let tid = Seqtree.tid_at l i in
    (load tid, tid)
  | Sub l ->
    let tid = Subtrie.tid_at l i in
    (load tid, tid)
  | Str l ->
    let tid = Stringtrie.tid_at l i in
    (load tid, tid)

let memory_bytes t =
  match t.repr with
  | Std l -> Std_leaf.memory_bytes l
  | Seq l -> Seqtree.memory_bytes l
  | Sub l -> Subtrie.memory_bytes l
  | Pre l -> Prefix_leaf.memory_bytes l
  | Str l -> Stringtrie.memory_bytes l
  | Bw l -> Bw_leaf.memory_bytes l
  | Gap l -> Gapped_leaf.memory_bytes l

let find t ~(load : load) key =
  match t.repr with
  | Std l -> Std_leaf.find l key
  | Seq l -> Seqtree.find l ~load key
  | Sub l -> Subtrie.find l ~load key
  | Pre l -> Prefix_leaf.find l key
  | Str l -> Stringtrie.find l ~load key
  | Bw l -> Bw_leaf.find l key
  | Gap l -> Gapped_leaf.find l key

type insert_result = Inserted | Full | Duplicate

let insert t ~(load : load) key tid =
  match t.repr with
  | Std l -> (
    match Std_leaf.insert l key tid with
    | Std_leaf.Inserted -> Inserted
    | Std_leaf.Full -> Full
    | Std_leaf.Duplicate -> Duplicate)
  | Pre l -> (
    match Prefix_leaf.insert l key tid with
    | Std_leaf.Inserted -> Inserted
    | Std_leaf.Full -> Full
    | Std_leaf.Duplicate -> Duplicate)
  | Bw l -> (
    match Bw_leaf.insert l key tid with
    | Std_leaf.Inserted -> Inserted
    | Std_leaf.Full -> Full
    | Std_leaf.Duplicate -> Duplicate)
  | Gap l -> (
    match Gapped_leaf.insert l key tid with
    | Std_leaf.Inserted -> Inserted
    | Std_leaf.Full -> Full
    | Std_leaf.Duplicate -> Duplicate)
  | Seq l -> (
    match Seqtree.insert l ~load key tid with
    | Seqtree.Inserted -> Inserted
    | Seqtree.Full -> Full
    | Seqtree.Duplicate -> Duplicate)
  | Sub l -> (
    match Subtrie.insert l ~load key tid with
    | Subtrie.Inserted -> Inserted
    | Subtrie.Full -> Full
    | Subtrie.Duplicate -> Duplicate)
  | Str l -> (
    match Stringtrie.insert l ~load key tid with
    | Stringtrie.Inserted -> Inserted
    | Stringtrie.Full -> Full
    | Stringtrie.Duplicate -> Duplicate)

let update t ~(load : load) key tid =
  match t.repr with
  | Std l -> Std_leaf.update l key tid
  | Seq l -> Seqtree.update l ~load key tid
  | Sub l -> Subtrie.update l ~load key tid
  | Pre l -> Prefix_leaf.update l key tid
  | Str l -> Stringtrie.update l ~load key tid
  | Bw l -> Bw_leaf.update l key tid
  | Gap l -> Gapped_leaf.update l key tid

type remove_result = Removed | Not_present

let remove t ~(load : load) key =
  match t.repr with
  | Std l -> (
    match Std_leaf.remove l key with
    | Std_leaf.Removed -> Removed
    | Std_leaf.Not_present -> Not_present)
  | Pre l -> (
    match Prefix_leaf.remove l key with
    | Std_leaf.Removed -> Removed
    | Std_leaf.Not_present -> Not_present)
  | Bw l -> (
    match Bw_leaf.remove l key with
    | Std_leaf.Removed -> Removed
    | Std_leaf.Not_present -> Not_present)
  | Gap l -> (
    match Gapped_leaf.remove l key with
    | Std_leaf.Removed -> Removed
    | Std_leaf.Not_present -> Not_present)
  | Seq l -> (
    match Seqtree.remove l ~load key with
    | Seqtree.Removed -> Removed
    | Seqtree.Not_present -> Not_present)
  | Sub l -> (
    match Subtrie.remove l ~load key with
    | Subtrie.Removed -> Removed
    | Subtrie.Not_present -> Not_present)
  | Str l -> (
    match Stringtrie.remove l ~load key with
    | Stringtrie.Removed -> Removed
    | Stringtrie.Not_present -> Not_present)

let lower_bound t ~(load : load) key =
  match t.repr with
  | Std l -> Std_leaf.lower_bound l key
  | Seq l -> Seqtree.lower_bound l ~load key
  | Sub l -> Subtrie.lower_bound l ~load key
  | Pre l -> Prefix_leaf.lower_bound l key
  | Str l -> Stringtrie.lower_bound l ~load key
  | Bw l -> Bw_leaf.lower_bound l key
  | Gap l -> Gapped_leaf.lower_bound l key

(* First key of the leaf; compact leaves load it from the table.  Used
   for separators.  The leaf must be non-empty. *)
let min_key t ~(load : load) =
  assert (count t > 0);
  match t.repr with
  | Std l -> Std_leaf.key_at l 0
  | Seq l -> load (Seqtree.tid_at l 0)
  | Sub l -> load (Subtrie.tid_at l 0)
  | Pre l -> Prefix_leaf.key_at l 0
  | Str l -> load (Stringtrie.tid_at l 0)
  | Bw l -> Bw_leaf.key_at l 0
  | Gap l -> Gapped_leaf.key_at l 0

(* Fold (key, tid) pairs in key order starting at position [pos].
   Compact leaves load every key — the indirect-access cost that makes
   their scans slower (§2, §6.1). *)
let fold_from t ~(load : load) pos f acc =
  match t.repr with
  | Std l -> Std_leaf.fold_from l pos f acc
  | Seq l -> Seqtree.fold_from l pos (fun acc tid -> f acc (load tid) tid) acc
  | Sub l -> Subtrie.fold_from l pos (fun acc tid -> f acc (load tid) tid) acc
  | Pre l -> Prefix_leaf.fold_from l pos f acc
  | Str l -> Stringtrie.fold_from l pos (fun acc tid -> f acc (load tid) tid) acc
  | Bw l -> Bw_leaf.fold_from l pos f acc
  | Gap l -> Gapped_leaf.fold_from l pos f acc

(* Extract all entries as sorted parallel arrays (keys loaded for compact
   leaves); used by rebuilds, mixed-representation merges and borrows. *)
let entries t ~(load : load) =
  let n = count t in
  match t.repr with
  | Std l ->
    (Array.init n (fun i -> Std_leaf.key_at l i), Array.init n (fun i -> Std_leaf.tid_at l i))
  | Pre l ->
    (Array.init n (fun i -> Prefix_leaf.key_at l i), Array.init n (fun i -> Prefix_leaf.tid_at l i))
  | Bw l ->
    (Array.init n (fun i -> Bw_leaf.key_at l i), Array.init n (fun i -> Bw_leaf.tid_at l i))
  | Gap l ->
    (* One ordered sweep instead of n [key_at] position scans. *)
    let keys = Array.make n "" and tids = Array.make n 0 in
    ignore
      (Gapped_leaf.fold_from l 0
         (fun i k tid ->
           keys.(i) <- k;
           tids.(i) <- tid;
           i + 1)
         0);
    (keys, tids)
  | Seq l ->
    let tids = Array.init n (fun i -> Seqtree.tid_at l i) in
    (Array.map load tids, tids)
  | Sub l ->
    let tids = Array.init n (fun i -> Subtrie.tid_at l i) in
    (Array.map load tids, tids)
  | Str l ->
    let tids = Array.init n (fun i -> Stringtrie.tid_at l i) in
    (Array.map load tids, tids)

(* Build a representation from sorted entries according to a spec. *)
let repr_of_spec ~key_len ~std_capacity ~seq_levels ~seq_breathing
    (spec : Policy.leaf_spec) keys tids n =
  match spec with
  | Policy.Spec_std ->
    assert (n <= std_capacity);
    Std (Std_leaf.of_sorted ~key_len ~capacity:std_capacity keys tids n)
  | Policy.Spec_seq c ->
    assert (n <= c);
    Seq
      (Seqtree.of_sorted ~key_len ~capacity:c ~levels:seq_levels
         ~breathing:seq_breathing keys tids n)
  | Policy.Spec_sub c ->
    assert (n <= c);
    Sub (Subtrie.of_sorted ~key_len ~capacity:c keys tids n)
  | Policy.Spec_pre ->
    assert (n <= std_capacity);
    Pre (Prefix_leaf.of_sorted ~key_len ~capacity:std_capacity keys tids n)
  | Policy.Spec_str c ->
    assert (n <= c);
    Str (Stringtrie.of_sorted ~key_len ~capacity:c keys tids n)
  | Policy.Spec_bw ->
    assert (n <= std_capacity);
    Bw (Bw_leaf.of_sorted ~key_len ~capacity:std_capacity keys tids n)
  | Policy.Spec_gap ->
    assert (n <= std_capacity);
    Gap (Gapped_leaf.of_sorted ~key_len ~capacity:std_capacity keys tids n)

let check_invariants t ~(load : load) =
  match t.repr with
  | Std l -> Std_leaf.check_invariants l
  | Seq l -> Seqtree.check_invariants l ~load
  | Sub l -> Subtrie.check_invariants l ~load
  | Pre l -> Prefix_leaf.check_invariants l
  | Str l -> Stringtrie.check_invariants l ~load
  | Bw l -> Bw_leaf.check_invariants l
  | Gap l -> Gapped_leaf.check_invariants l
