(** Group-descent engine: advance K independent cursors through a
    pointer chase in lockstep, one step per cursor per round, so their
    node fetches (and the step functions' software prefetches) overlap
    instead of serialising. *)

type 'c progress = Continue of 'c | Done

val run :
  ?yield:(unit -> unit) ->
  ?retry:(exn -> bool) ->
  n:int ->
  start:(int -> 'c) ->
  step:(int -> 'c -> 'c progress) ->
  unit ->
  unit
(** [run ~n ~start ~step ()] drives cursors [0 .. n-1] round-robin:
    each round calls [yield] once, then advances every unfinished
    cursor by one [step].  A cursor begins with [start i] and finishes
    when [step] returns [Done].  An exception for which [retry]
    returns [true] — an optimistic-concurrency validation failure —
    resets that cursor alone back to [start]; other exceptions
    propagate.  [yield] defaults to nothing; [retry] defaults to
    retrying nothing. *)
