(* Standard B+-tree leaf with internal key storage, as in the STX
   B+-tree: a sorted array of keys and the matching tuple ids.  This is
   the representation the elastic index converts *from* under memory
   pressure and back *to* when pressure subsides. *)

type t = {
  key_len : int;
  capacity : int;
  mutable n : int;
  keys : string array;
  tids : int array;
}

let create ~key_len ~capacity () =
  assert (capacity >= 2);
  { key_len; capacity; n = 0; keys = Array.make capacity ""; tids = Array.make capacity 0 }

let count t = t.n
let capacity t = t.capacity
let is_full t = t.n >= t.capacity
let key_at t i = t.keys.(i)
let tid_at t i = t.tids.(i)

let memory_bytes t =
  Ei_storage.Memmodel.std_leaf_bytes ~capacity:t.capacity ~key_len:t.key_len

type locate_result = Found of int | Pred of int

(* Binary search with predecessor semantics. *)
let locate t key =
  let lo = ref 0 and hi = ref (t.n - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Ei_util.Key.compare_fast t.keys.(mid) key in
    if c = 0 then begin
      res := mid;
      lo := !hi + 1 (* terminate *)
    end
    else if c < 0 then begin
      res := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  if !res >= 0 && Ei_util.Key.equal t.keys.(!res) key then Found !res
  else Pred !res

let find t key =
  match locate t key with Found i -> Some t.tids.(i) | Pred _ -> None

type insert_result = Inserted | Full | Duplicate

let insert t key tid =
  match locate t key with
  | Found _ -> Duplicate
  | Pred _ when t.n >= t.capacity -> Full
  | Pred p ->
    let q = p + 1 in
    Array.blit t.keys q t.keys (q + 1) (t.n - q);
    Array.blit t.tids q t.tids (q + 1) (t.n - q);
    t.keys.(q) <- key;
    t.tids.(q) <- tid;
    t.n <- t.n + 1;
    Inserted

(* Overwrite the tid of an existing key (value update). *)
let update t key tid =
  match locate t key with
  | Found j ->
    t.tids.(j) <- tid;
    true
  | Pred _ -> false

type remove_result = Removed | Not_present

let remove t key =
  match locate t key with
  | Pred _ -> Not_present
  | Found j ->
    Array.blit t.keys (j + 1) t.keys j (t.n - j - 1);
    Array.blit t.tids (j + 1) t.tids j (t.n - j - 1);
    t.n <- t.n - 1;
    t.keys.(t.n) <- "";
    Removed

let of_sorted ~key_len ~capacity keys tids (n : int) =
  assert (n <= capacity);
  let t = create ~key_len ~capacity () in
  Array.blit keys 0 t.keys 0 n;
  Array.blit tids 0 t.tids 0 n;
  t.n <- n;
  t

let split t =
  let m = t.n / 2 in
  let right =
    of_sorted ~key_len:t.key_len ~capacity:t.capacity
      (Array.sub t.keys m (t.n - m))
      (Array.sub t.tids m (t.n - m))
      (t.n - m)
  in
  for i = m to t.n - 1 do
    t.keys.(i) <- ""
  done;
  t.n <- m;
  right

(* Append all entries of [b] to [a]; caller guarantees order and room. *)
let absorb a b =
  assert (a.n + b.n <= a.capacity);
  Array.blit b.keys 0 a.keys a.n b.n;
  Array.blit b.tids 0 a.tids a.n b.n;
  a.n <- a.n + b.n

let fold_from t pos f acc =
  let acc = ref acc in
  for i = max 0 pos to t.n - 1 do
    acc := f !acc t.keys.(i) t.tids.(i)
  done;
  !acc

let lower_bound t key =
  match locate t key with Found j -> j | Pred p -> p + 1

let check_invariants t =
  assert (t.n >= 0 && t.n <= t.capacity);
  for i = 0 to t.n - 2 do
    assert (Ei_util.Key.compare t.keys.(i) t.keys.(i + 1) < 0)
  done
