(** Bw-tree-style delta-chained leaf (Levandoski et al.): updates
    prepend delta records to a chain in front of a consolidated base
    node; the chain is folded into a fresh base once it exceeds a
    threshold.  The §6.1 baseline the paper omits from its plots as
    dominated (similar space to STX, slower operations). *)

type t

val create : ?consolidate_at:int -> key_len:int -> capacity:int -> unit -> t
val of_sorted : key_len:int -> capacity:int -> string array -> int array -> int -> t

val count : t -> int
val capacity : t -> int
val is_full : t -> bool
val delta_count : t -> int
val consolidations : t -> int
val memory_bytes : t -> int

val find : t -> string -> int option
val insert : t -> string -> int -> Std_leaf.insert_result
val remove : t -> string -> Std_leaf.remove_result
val update : t -> string -> int -> bool

val key_at : t -> int -> string
val tid_at : t -> int -> int
val lower_bound : t -> string -> int
val fold_from : t -> int -> ('a -> string -> int -> 'a) -> 'a -> 'a

val consolidate : t -> unit
(** Fold the delta chain into the base node. *)

val split : t -> t
val absorb : t -> t -> unit
val check_invariants : t -> unit
