(* Group-descent engine: walk K independent cursors through a pointer
   chase in lockstep.

   A single tree descent serialises one cache miss per level: the next
   node's address is only known once the current node has arrived.
   Across *independent* lookups there is no such dependence, so the
   engine advances each live cursor by exactly one step per round,
   round-robin.  By the time cursor [i] is stepped again a full round
   has passed, which is the window in which its prefetched next node
   (the step functions issue {!Ei_util.Prefetch.prefetch} hints) — or,
   without the hint, the hand-interleaved out-of-order loads — can
   overlap with the other cursors' fetches.

   The engine is oblivious to what a cursor is; optimistic-concurrency
   callers pass [retry] to classify validation failures: a step that
   raises a retried exception resets *that cursor only* back to
   [start] (the next round re-acquires its root), so one conflicting
   writer never restarts the whole batch.  [yield] runs once per
   lockstep round — the hook for a deterministic-simulation scheduler
   to interleave writers between rounds. *)

type 'c progress = Continue of 'c | Done

type 'c state = Fresh | Cursor of 'c | Finished

let run ?(yield = fun () -> ()) ?(retry = fun (_ : exn) -> false) ~n ~start
    ~step () =
  if n > 0 then begin
    let st = Array.make n Fresh in
    let pending = ref n in
    while !pending > 0 do
      yield ();
      for i = 0 to n - 1 do
        match st.(i) with
        | Finished -> ()
        | Fresh -> (
          match start i with
          | c -> st.(i) <- Cursor c
          | exception e when retry e -> () (* re-acquire next round *))
        | Cursor c -> (
          match step i c with
          | Continue c' -> st.(i) <- Cursor c'
          | Done ->
            st.(i) <- Finished;
            decr pending
          | exception e when retry e -> st.(i) <- Fresh)
      done
    done
  end
