(** A B+-tree leaf slot: the mutable cell through which the tree sees a
    leaf, whatever its current representation.

    The elastic index converts leaves between representations *in place*
    — the parent inner node keeps pointing at the same [t] while [repr]
    is swapped — so conversions never touch the upper tree levels.
    Leaves are chained through [next] for range scans; [hits] feeds the
    access-aware cold-compaction sweep. *)

type repr =
  | Std of Std_leaf.t                (** standard sorted-array leaf *)
  | Seq of Ei_blindi.Seqtree.t       (** compact SeqTree (§5) *)
  | Sub of Ei_blindi.Subtrie.t       (** compact SubTrie *)
  | Pre of Prefix_leaf.t             (** prefix-compressed leaf *)
  | Str of Ei_blindi.Stringtrie.t    (** compact String B-Trie *)
  | Bw of Bw_leaf.t                  (** delta-chained Bw-tree leaf *)
  | Gap of Gapped_leaf.t             (** gapped/slotted leaf (BS-tree) *)

type t = { mutable repr : repr; mutable next : t option; mutable hits : int }

type load = int -> string

val count : t -> int
val capacity : t -> int
val is_full : t -> bool

val is_compact : t -> bool
(** Whether the representation stores keys indirectly. *)

val spec : t -> Policy.leaf_spec

val entry_at : t -> load:load -> int -> string * int
(** Entry at a position in key order (loads the key when compact). *)

val memory_bytes : t -> int

val find : t -> load:load -> string -> int option

type insert_result = Inserted | Full | Duplicate

val insert : t -> load:load -> string -> int -> insert_result
val update : t -> load:load -> string -> int -> bool

type remove_result = Removed | Not_present

val remove : t -> load:load -> string -> remove_result

val lower_bound : t -> load:load -> string -> int

val min_key : t -> load:load -> string
(** First key (loaded for compact leaves); the leaf must be non-empty. *)

val fold_from : t -> load:load -> int -> ('a -> string -> int -> 'a) -> 'a -> 'a
(** Fold (key, tid) in key order from a position; compact leaves load
    every key — the indirect scan cost of §2. *)

val entries : t -> load:load -> string array * int array
(** All entries as sorted parallel arrays (rebuild support). *)

val repr_of_spec :
  key_len:int ->
  std_capacity:int ->
  seq_levels:int ->
  seq_breathing:int ->
  Policy.leaf_spec ->
  string array ->
  int array ->
  int ->
  repr
(** Build a representation from sorted entries according to a spec. *)

val check_invariants : t -> load:load -> unit
