(* Leaf policies: the hook through which the elastic index framework
   (§3) customises the B+-tree.

   A policy decides what happens at the structure-modification points the
   elasticity algorithm piggybacks on — leaf overflow, leaf underflow,
   leaf merges — plus the expansion-state random split of compact leaves
   reached by searches (§4).  The plain STX B+-tree and the
   fully-compacted STX-SeqTree/SubTrie variants are degenerate policies
   of the same interface. *)

type leaf_spec =
  | Spec_std
  | Spec_seq of int  (* SeqTree with this capacity *)
  | Spec_sub of int  (* SubTrie with this capacity *)
  | Spec_pre         (* prefix-compressed leaf, standard capacity *)
  | Spec_str of int  (* String B-Trie with this capacity *)
  | Spec_bw          (* Bw-tree delta-chained leaf, standard capacity *)
  | Spec_gap         (* gapped/slotted leaf, standard capacity *)

(* What the policy may inspect when deciding. *)
type view = {
  bytes : int;           (* tracked index size under the memory model *)
  compact_leaves : int;  (* number of leaves in compact representation *)
  items : int;           (* keys stored in the index *)
}

type overflow_action =
  | Split of leaf_spec   (* split the leaf; both halves use this spec *)
  | Convert of leaf_spec (* rebuild the leaf in place with this spec
                            (std -> compact conversion, or compact grow) *)

type underflow_action =
  | Rebalance            (* classic B+-tree borrow/merge with a sibling *)
  | Replace of leaf_spec (* rebuild the leaf in place (elastic shrink) *)

type t = {
  name : string;
  initial : leaf_spec;  (* representation of a fresh (root) leaf *)
  seq_levels : int;     (* BlindiTree levels for SeqTree leaves *)
  seq_breathing : int;  (* breathing slack for SeqTree leaves *)
  on_overflow : view -> current:leaf_spec -> overflow_action;
  on_underflow : view -> current:leaf_spec -> count:int -> underflow_action;
  on_search_compact : view -> current:leaf_spec -> leaf_spec option;
  (* [Some spec]: split the compact leaf reached by this search into two
     leaves of [spec] (expansion state, §4). *)
  on_merge : view -> total:int -> left:leaf_spec -> right:leaf_spec -> leaf_spec;
  (* Representation for the result of merging two underflowed leaves. *)
  underflow_at : leaf_spec -> std_capacity:int -> count:int -> bool;
  (* Whether a leaf with this representation and occupancy is
     underflowed.  Standard B+-tree semantics use [count < capacity/2];
     the elastic policy uses the paper's [count < capacity/2 + 1] for
     compact leaves (§4). *)
}

(* Standard B+-tree underflow rule. *)
let std_underflow spec ~std_capacity ~count =
  let capacity =
    match spec with
    | Spec_std | Spec_pre | Spec_bw | Spec_gap -> std_capacity
    | Spec_seq c | Spec_sub c | Spec_str c -> c
  in
  count < capacity / 2

(* The baseline STX B+-tree: never compacts anything. *)
let stx =
  {
    name = "stx";
    initial = Spec_std;
    seq_levels = 2;
    seq_breathing = 0;
    on_overflow = (fun _ ~current:_ -> Split Spec_std);
    on_underflow = (fun _ ~current:_ ~count:_ -> Rebalance);
    on_search_compact = (fun _ ~current:_ -> None);
    on_merge = (fun _ ~total:_ ~left:_ ~right:_ -> Spec_std);
    underflow_at = std_underflow;
  }

(* STX-SeqTree: every leaf is a SeqTree of fixed capacity — the paper's
   bound on maximum space savings and maximum query overhead. *)
let all_seqtree ?(levels = 2) ?(breathing = 4) ~capacity () =
  {
    name = Printf.sprintf "stx-seqtree%d" capacity;
    initial = Spec_seq capacity;
    seq_levels = levels;
    seq_breathing = breathing;
    on_overflow = (fun _ ~current:_ -> Split (Spec_seq capacity));
    on_underflow = (fun _ ~current:_ ~count:_ -> Rebalance);
    on_search_compact = (fun _ ~current:_ -> None);
    on_merge = (fun _ ~total:_ ~left:_ ~right:_ -> Spec_seq capacity);
    underflow_at = std_underflow;
  }

(* Prefix-compressed B+-tree: every leaf truncates the shared key prefix
   (the §2 comparison point for commercial index key compression). *)
let all_prefix () =
  {
    name = "stx-prefix";
    initial = Spec_pre;
    seq_levels = 0;
    seq_breathing = 0;
    on_overflow = (fun _ ~current:_ -> Split Spec_pre);
    on_underflow = (fun _ ~current:_ ~count:_ -> Rebalance);
    on_search_compact = (fun _ ~current:_ -> None);
    on_merge = (fun _ ~total:_ ~left:_ ~right:_ -> Spec_pre);
    underflow_at = std_underflow;
  }

(* Bw-tree-style B+-tree: every leaf a delta-chained node (the §6.1
   baseline omitted from the paper's plots as dominated). *)
let all_bw () =
  {
    name = "bwtree";
    initial = Spec_bw;
    seq_levels = 0;
    seq_breathing = 0;
    on_overflow = (fun _ ~current:_ -> Split Spec_bw);
    on_underflow = (fun _ ~current:_ ~count:_ -> Rebalance);
    on_search_compact = (fun _ ~current:_ -> None);
    on_merge = (fun _ ~total:_ ~left:_ ~right:_ -> Spec_bw);
    underflow_at = std_underflow;
  }

(* Gapped-leaf B+-tree (BS-tree style): every leaf keeps distributed
   gaps so inserts usually fill a slot instead of shifting the tail. *)
let all_gapped () =
  {
    name = "stx-gapped";
    initial = Spec_gap;
    seq_levels = 0;
    seq_breathing = 0;
    on_overflow = (fun _ ~current:_ -> Split Spec_gap);
    on_underflow = (fun _ ~current:_ ~count:_ -> Rebalance);
    on_search_compact = (fun _ ~current:_ -> None);
    on_merge = (fun _ ~total:_ ~left:_ ~right:_ -> Spec_gap);
    underflow_at = std_underflow;
  }

(* STX-StringBTrie: every leaf a pointer-based String B-Trie (§5.1's
   third blind-trie representation). *)
let all_stringtrie ~capacity () =
  {
    name = Printf.sprintf "stx-stringtrie%d" capacity;
    initial = Spec_str capacity;
    seq_levels = 0;
    seq_breathing = 0;
    on_overflow = (fun _ ~current:_ -> Split (Spec_str capacity));
    on_underflow = (fun _ ~current:_ ~count:_ -> Rebalance);
    on_search_compact = (fun _ ~current:_ -> None);
    on_merge = (fun _ ~total:_ ~left:_ ~right:_ -> Spec_str capacity);
    underflow_at = std_underflow;
  }

(* STX-SubTrie: every leaf a SubTrie of fixed capacity (§6.4 baseline). *)
let all_subtrie ~capacity () =
  {
    name = Printf.sprintf "stx-subtrie%d" capacity;
    initial = Spec_sub capacity;
    seq_levels = 0;
    seq_breathing = 0;
    on_overflow = (fun _ ~current:_ -> Split (Spec_sub capacity));
    on_underflow = (fun _ ~current:_ ~count:_ -> Rebalance);
    on_search_compact = (fun _ ~current:_ -> None);
    on_merge = (fun _ ~total:_ ~left:_ ~right:_ -> Spec_sub capacity);
    underflow_at = std_underflow;
  }

let spec_capacity ~std_capacity = function
  | Spec_std | Spec_pre | Spec_bw | Spec_gap -> std_capacity
  | Spec_seq c | Spec_sub c | Spec_str c -> c

let pp_spec ppf = function
  | Spec_std -> Fmt.string ppf "std"
  | Spec_seq c -> Fmt.pf ppf "seq%d" c
  | Spec_sub c -> Fmt.pf ppf "sub%d" c
  | Spec_pre -> Fmt.string ppf "pre"
  | Spec_str c -> Fmt.pf ppf "str%d" c
  | Spec_bw -> Fmt.string ppf "bw"
  | Spec_gap -> Fmt.string ppf "gap"
