(* Bw-tree-style delta-chained leaf (Levandoski et al. [18, 31]).

   Updates prepend delta records to a chain in front of a consolidated
   base node instead of modifying it; once the chain exceeds a threshold
   the node is consolidated (deltas folded into a fresh base).  Point
   operations walk the chain first — the extra memory references that
   make the Bw-tree "perform worse than STX with only slightly smaller
   space" (§6.1's reason for omitting it from the plots).

   The original Bw-tree is lock-free via a mapping table and CAS on
   chain heads; this single-threaded rendition keeps the structural
   behaviour (chains, consolidation cost, tightly-sized base nodes)
   that the space/performance comparison rests on.  Positional reads
   (scans, separators) merge the chain on the fly without mutating the
   node; splits and merges consolidate first. *)

module Strtbl = Ei_util.Strtbl

type delta = Dins of string * int | Ddel of string

type t = {
  key_len : int;
  capacity : int;
  consolidate_at : int;
  mutable base : Std_leaf.t;
  mutable deltas : delta list;  (* newest first *)
  mutable delta_count : int;
  mutable n : int;              (* live entries (base + deltas) *)
  mutable consolidations : int;
}

let create ?(consolidate_at = 8) ~key_len ~capacity () =
  {
    key_len;
    capacity;
    consolidate_at;
    base = Std_leaf.create ~key_len ~capacity ();
    deltas = [];
    delta_count = 0;
    n = 0;
    consolidations = 0;
  }

let count t = t.n
let capacity t = t.capacity
let is_full t = t.n >= t.capacity
let delta_count t = t.delta_count
let consolidations t = t.consolidations

(* Base nodes are consolidated exactly-sized (the Bw-tree allocates
   per-consolidation buffers, not fixed slotted pages); deltas cost a
   key copy plus a record header and the chain pointer. *)
let memory_bytes t =
  Ei_storage.Memmodel.node_header + (2 * Ei_storage.Memmodel.word)
  + (Std_leaf.count t.base * (t.key_len + Ei_storage.Memmodel.word))
  + (t.delta_count * (t.key_len + (2 * Ei_storage.Memmodel.word)))

(* Chain walk: the newest delta for [key] decides. *)
let rec chain_find deltas key =
  match deltas with
  | [] -> `Base
  | Dins (k, tid) :: _ when Ei_util.Key.equal k key -> `Live tid
  | Ddel k :: _ when Ei_util.Key.equal k key -> `Dead
  | _ :: rest -> chain_find rest key

let find t key =
  match chain_find t.deltas key with
  | `Live tid -> Some tid
  | `Dead -> None
  | `Base -> Std_leaf.find t.base key

(* Fold the chain into a fresh, tightly-packed base. *)
let consolidate t =
  if t.delta_count > 0 then begin
    t.consolidations <- t.consolidations + 1;
    (* Oldest-first application; the newest decision per key wins, so
       apply newest-first with a "seen" set instead. *)
    let seen = Strtbl.create 16 in
    let live = Strtbl.create 16 in
    List.iter
      (fun d ->
        let k = match d with Dins (k, _) -> k | Ddel k -> k in
        if not (Strtbl.mem seen k) then begin
          Strtbl.add seen k ();
          match d with
          | Dins (_, tid) -> Strtbl.add live k tid
          | Ddel _ -> ()
        end)
      t.deltas;
    let entries = ref [] in
    Std_leaf.fold_from t.base 0
      (fun () k tid -> if not (Strtbl.mem seen k) then entries := (k, tid) :: !entries)
      ();
    Strtbl.iter (fun k tid -> entries := (k, tid) :: !entries) live;
    let arr = Array.of_list !entries in
    Array.sort (fun (a, _) (b, _) -> Ei_util.Key.compare a b) arr;
    let n = Array.length arr in
    assert (n = t.n);
    t.base <-
      Std_leaf.of_sorted ~key_len:t.key_len ~capacity:t.capacity
        (Array.map fst arr) (Array.map snd arr) n;
    t.deltas <- [];
    t.delta_count <- 0
  end

let maybe_consolidate t =
  if t.delta_count >= t.consolidate_at then consolidate t

let insert t key tid =
  match find t key with
  | Some _ -> Std_leaf.Duplicate
  | None ->
    if t.n >= t.capacity then Std_leaf.Full
    else begin
      t.deltas <- Dins (key, tid) :: t.deltas;
      t.delta_count <- t.delta_count + 1;
      t.n <- t.n + 1;
      maybe_consolidate t;
      Std_leaf.Inserted
    end

let remove t key =
  match find t key with
  | None -> Std_leaf.Not_present
  | Some _ ->
    t.deltas <- Ddel key :: t.deltas;
    t.delta_count <- t.delta_count + 1;
    t.n <- t.n - 1;
    maybe_consolidate t;
    Std_leaf.Removed

let update t key tid =
  match find t key with
  | None -> false
  | Some _ ->
    (* An update is just a fresh insert delta shadowing older state. *)
    t.deltas <- Dins (key, tid) :: t.deltas;
    t.delta_count <- t.delta_count + 1;
    maybe_consolidate t;
    true

(* Positional reads use a merged view computed on the fly, WITHOUT
   mutating the node: a scan over a delta chain must merge it (the
   Bw-tree's scan cost), and read paths must not change the node's
   size (the tree's memory accounting wraps only mutations). *)
let merged t =
  if t.delta_count = 0 then
    Array.init (Std_leaf.count t.base) (fun i ->
        (Std_leaf.key_at t.base i, Std_leaf.tid_at t.base i))
  else begin
    let seen = Strtbl.create 16 in
    let live = Strtbl.create 16 in
    List.iter
      (fun d ->
        let k = match d with Dins (k, _) -> k | Ddel k -> k in
        if not (Strtbl.mem seen k) then begin
          Strtbl.add seen k ();
          match d with
          | Dins (_, tid) -> Strtbl.add live k tid
          | Ddel _ -> ()
        end)
      t.deltas;
    let entries = ref [] in
    Std_leaf.fold_from t.base 0
      (fun () k tid -> if not (Strtbl.mem seen k) then entries := (k, tid) :: !entries)
      ();
    Strtbl.iter (fun k tid -> entries := (k, tid) :: !entries) live;
    let arr = Array.of_list !entries in
    Array.sort (fun (a, _) (b, _) -> Ei_util.Key.compare a b) arr;
    arr
  end

let key_at t i = fst (merged t).(i)
let tid_at t i = snd (merged t).(i)

let lower_bound t key =
  if t.delta_count = 0 then Std_leaf.lower_bound t.base key
  else begin
    let m = merged t in
    let lo = ref 0 and hi = ref (Array.length m) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Ei_util.Key.compare (fst m.(mid)) key < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo
  end

let fold_from t pos f acc =
  if t.delta_count = 0 then Std_leaf.fold_from t.base pos f acc
  else begin
    let m = merged t in
    let acc = ref acc in
    for i = max 0 pos to Array.length m - 1 do
      let k, tid = m.(i) in
      acc := f !acc k tid
    done;
    !acc
  end

let of_sorted ~key_len ~capacity keys tids n =
  let t = create ~key_len ~capacity () in
  t.base <- Std_leaf.of_sorted ~key_len ~capacity keys tids n;
  t.n <- n;
  t

let split t =
  consolidate t;
  let right_base = Std_leaf.split t.base in
  let right = create ~consolidate_at:t.consolidate_at ~key_len:t.key_len ~capacity:t.capacity () in
  right.base <- right_base;
  right.n <- Std_leaf.count right_base;
  t.n <- Std_leaf.count t.base;
  right

let absorb a b =
  consolidate a;
  consolidate b;
  Std_leaf.absorb a.base b.base;
  a.n <- Std_leaf.count a.base

let check_invariants t =
  Std_leaf.check_invariants t.base;
  assert (t.delta_count = List.length t.deltas);
  assert (t.delta_count <= t.consolidate_at);
  (* The merged view is sorted and sized like the live count. *)
  let m = merged t in
  assert (Array.length m = t.n);
  for i = 0 to t.n - 2 do
    assert (Ei_util.Key.compare (fst m.(i)) (fst m.(i + 1)) < 0)
  done;
  (* Live count matches a from-scratch fold of the chain over the base. *)
  let seen = Strtbl.create 16 in
  let live = ref 0 in
  List.iter
    (fun d ->
      let k = match d with Dins (k, _) -> k | Ddel k -> k in
      if not (Strtbl.mem seen k) then begin
        Strtbl.add seen k ();
        match d with Dins _ -> incr live | Ddel _ -> ()
      end)
    t.deltas;
  Std_leaf.fold_from t.base 0
    (fun () k _ -> if not (Strtbl.mem seen k) then incr live)
    ();
  assert (!live = t.n)
