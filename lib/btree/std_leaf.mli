(** Standard B+-tree leaf with internal key storage (STX-style): a
    sorted key array plus the matching tuple ids.  The representation
    the elastic index converts from and back to. *)

type t

val create : key_len:int -> capacity:int -> unit -> t
val of_sorted : key_len:int -> capacity:int -> string array -> int array -> int -> t

val count : t -> int
val capacity : t -> int
val is_full : t -> bool
val key_at : t -> int -> string
val tid_at : t -> int -> int
val memory_bytes : t -> int

type locate_result = Found of int | Pred of int

val locate : t -> string -> locate_result
(** Binary search with predecessor semantics. *)

val find : t -> string -> int option
val update : t -> string -> int -> bool

type insert_result = Inserted | Full | Duplicate

val insert : t -> string -> int -> insert_result

type remove_result = Removed | Not_present

val remove : t -> string -> remove_result

val split : t -> t
(** Keep the first half in place; return the second half. *)

val absorb : t -> t -> unit
(** Append all entries of the second leaf (which must sort after). *)

val fold_from : t -> int -> ('a -> string -> int -> 'a) -> 'a -> 'a
val lower_bound : t -> string -> int
val check_invariants : t -> unit
