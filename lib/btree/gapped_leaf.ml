(* Gapped (slotted) B+-tree leaf, BS-tree style.

   A standard leaf keeps its entries packed, so every out-of-order
   insert pays an [Array.blit] of the tail and every remove pays one
   back.  Here the key/tid arrays always span the full capacity and an
   occupancy map marks which slots are live; [of_sorted] distributes
   the entries evenly so the gaps land between them.  An insert then
   usually just fills the gap the search already found, a remove only
   clears an occupancy bit, and only an insert into an exhausted
   neighbourhood shifts — and then merely up to the nearest gap.

   Searches stay binary and branchless over the *slot order*: every
   slot in the used prefix [0, hi_slot) carries a key — a gap holds a
   copy of a neighbouring key — kept non-decreasing, with the live
   keys strictly increasing.  The search loop therefore never consults
   the occupancy map; only the final hop from the landing slot to the
   next live slot does.

   Invariants (checked by [check_invariants]):
   - live slots all lie in [0, hi_slot) and [hi_slot] is tight (slot
     [hi_slot - 1] is live when the leaf is non-empty);
   - [keys] is non-decreasing over [0, hi_slot) and strictly
     increasing over the live slots;
   - slots at and above [hi_slot] are virgin: not live, key [""]. *)

module Key = Ei_util.Key

type t = {
  key_len : int;
  capacity : int;
  mutable n : int;  (* live slots *)
  mutable hi_slot : int;  (* used prefix: slots >= hi_slot are virgin *)
  keys : string array;
  tids : int array;
  occ : bool array;
}

let create ~key_len ~capacity () =
  assert (capacity >= 2);
  {
    key_len;
    capacity;
    n = 0;
    hi_slot = 0;
    keys = Array.make capacity "";
    tids = Array.make capacity 0;
    occ = Array.make capacity false;
  }

let count t = t.n
let capacity t = t.capacity
let is_full t = t.n >= t.capacity

let memory_bytes t =
  Ei_storage.Memmodel.gapped_leaf_bytes ~capacity:t.capacity
    ~key_len:t.key_len

(* Leftmost slot of the used prefix whose key is >= [key]; [hi_slot]
   if every used slot sorts below.  No occupancy branch in the loop. *)
let slot_lower_bound t key =
  let lo = ref 0 and hi = ref t.hi_slot in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Key.compare_fast t.keys.(mid) key < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* First live slot at or after [s] (within the used prefix);
   [hi_slot] if none.  Gap runs are short by construction. *)
let next_live t s =
  let i = ref s in
  while !i < t.hi_slot && not t.occ.(!i) do
    incr i
  done;
  !i

(* The slot holding [key], or [hi_slot] sentinel when absent: the
   first live slot at or after the lower bound holds the smallest
   live key >= [key] (slots below the lower bound all sort below). *)
let locate_slot t key =
  let j = next_live t (slot_lower_bound t key) in
  if j < t.hi_slot && Key.equal t.keys.(j) key then j else t.hi_slot

let find t key =
  let j = locate_slot t key in
  if j < t.hi_slot then Some t.tids.(j) else None

let update t key tid =
  let j = locate_slot t key in
  if j < t.hi_slot then begin
    t.tids.(j) <- tid;
    true
  end
  else false

let place t s key tid =
  t.keys.(s) <- key;
  t.tids.(s) <- tid;
  t.occ.(s) <- true;
  t.n <- t.n + 1

(* Nearest gap strictly below [s]; -1 if the prefix below is solid. *)
let prev_gap t s =
  let i = ref (s - 1) in
  while !i >= 0 && t.occ.(!i) do
    decr i
  done;
  !i

(* Nearest free slot strictly above [s]: a gap in the used prefix, or
   the first virgin slot; [capacity] if the suffix is solid. *)
let next_free t s =
  let i = ref (s + 1) in
  while !i < t.hi_slot && t.occ.(!i) do
    incr i
  done;
  if !i >= t.hi_slot && t.hi_slot >= t.capacity then t.capacity else !i

let insert t key tid =
  let lb = slot_lower_bound t key in
  let j = next_live t lb in
  if j < t.hi_slot && Key.equal t.keys.(j) key then Std_leaf.Duplicate
  else if t.n >= t.capacity then Std_leaf.Full
  else begin
    (if lb < t.hi_slot && not t.occ.(lb) then
       (* The landing slot is a gap: its stale key is >= [key] and its
          left neighbour sorts below, so overwriting keeps the slot
          order sorted.  The common case — no data moves. *)
       place t lb key tid
     else if lb = t.hi_slot then
       if t.hi_slot < t.capacity then begin
         (* Append into virgin territory. *)
         place t t.hi_slot key tid;
         t.hi_slot <- t.hi_slot + 1
       end
       else begin
         (* Used prefix exhausted: free the last slot by sliding the
            run below it down onto its nearest gap. *)
         let g = prev_gap t t.capacity in
         for i = g to t.capacity - 2 do
           t.keys.(i) <- t.keys.(i + 1);
           t.tids.(i) <- t.tids.(i + 1)
         done;
         t.occ.(g) <- true;
         t.keys.(t.capacity - 1) <- key;
         t.tids.(t.capacity - 1) <- tid;
         t.n <- t.n + 1
       end
     else begin
       (* Slot [lb] is live with a larger key: open a slot by shifting
          the shorter side's run one step onto its nearest free slot. *)
       let gl = prev_gap t lb in
       let gr = next_free t lb in
       if gl >= 0 && (gr >= t.capacity || lb - gl <= gr - lb) then begin
         (* Slide [gl+1, lb-1] down one; slot [lb-1] takes the key. *)
         for i = gl to lb - 2 do
           t.keys.(i) <- t.keys.(i + 1);
           t.tids.(i) <- t.tids.(i + 1)
         done;
         t.occ.(gl) <- true;
         t.keys.(lb - 1) <- key;
         t.tids.(lb - 1) <- tid;
         t.n <- t.n + 1
       end
       else begin
         (* Slide [lb, gr-1] up one; slot [lb] takes the key. *)
         for i = gr downto lb + 1 do
           t.keys.(i) <- t.keys.(i - 1);
           t.tids.(i) <- t.tids.(i - 1)
         done;
         t.occ.(gr) <- true;
         if gr >= t.hi_slot then t.hi_slot <- gr + 1;
         t.keys.(lb) <- key;
         t.tids.(lb) <- tid;
         t.n <- t.n + 1
       end
     end);
    Std_leaf.Inserted
  end

let remove t key =
  let j = locate_slot t key in
  if j >= t.hi_slot then Std_leaf.Not_present
  else begin
    t.occ.(j) <- false;
    t.n <- t.n - 1;
    (* Keep [hi_slot] tight so stale maxima never shadow appends. *)
    while t.hi_slot > 0 && not t.occ.(t.hi_slot - 1) do
      t.hi_slot <- t.hi_slot - 1;
      t.keys.(t.hi_slot) <- ""
    done;
    Std_leaf.Removed
  end

(* Lay [n] sorted entries out with evenly distributed gaps (slot of
   entry [i] is [i * capacity / n]; entry 0 lands on slot 0, so there
   are no leading gaps) and fill each gap with its left neighbour's
   key so the slot order stays sorted. *)
let fill_distributed t keys tids n =
  assert (n <= t.capacity);
  if n = 0 then ()
  else begin
    for i = 0 to n - 1 do
      let s = i * t.capacity / n in
      t.keys.(s) <- keys.(i);
      t.tids.(s) <- tids.(i);
      t.occ.(s) <- true
    done;
    t.hi_slot <- (((n - 1) * t.capacity / n) + 1);
    let last = ref t.keys.(0) in
    for s = 0 to t.hi_slot - 1 do
      if t.occ.(s) then last := t.keys.(s) else t.keys.(s) <- !last
    done;
    t.n <- n
  end

let of_sorted ~key_len ~capacity keys tids (n : int) =
  let t = create ~key_len ~capacity () in
  fill_distributed t keys tids n;
  t

(* Live entries, packed. *)
let packed t =
  let keys = Array.make t.n "" and tids = Array.make t.n 0 in
  let p = ref 0 in
  for s = 0 to t.hi_slot - 1 do
    if t.occ.(s) then begin
      keys.(!p) <- t.keys.(s);
      tids.(!p) <- t.tids.(s);
      incr p
    end
  done;
  assert (!p = t.n);
  (keys, tids)

let reset t =
  Array.fill t.keys 0 t.capacity "";
  Array.fill t.occ 0 t.capacity false;
  t.n <- 0;
  t.hi_slot <- 0

let split t =
  let keys, tids = packed t in
  let n = Array.length keys in
  let m = n / 2 in
  let right =
    of_sorted ~key_len:t.key_len ~capacity:t.capacity
      (Array.sub keys m (n - m))
      (Array.sub tids m (n - m))
      (n - m)
  in
  reset t;
  fill_distributed t keys tids m;
  right

(* Redistribute both leaves' entries into [a]; caller guarantees order
   and room, as for {!Std_leaf.absorb}. *)
let absorb a b =
  assert (a.n + b.n <= a.capacity);
  let ka, ta = packed a and kb, tb = packed b in
  let keys = Array.append ka kb and tids = Array.append ta tb in
  reset a;
  fill_distributed a keys tids (Array.length keys)

(* Key-order addressing: position [i] is the [i]-th live slot. *)
let slot_of_pos t i =
  let s = ref 0 and left = ref i in
  while !left > 0 || not t.occ.(!s) do
    if t.occ.(!s) then decr left;
    incr s
  done;
  !s

let key_at t i = t.keys.(slot_of_pos t i)
let tid_at t i = t.tids.(slot_of_pos t i)

let fold_from t pos f acc =
  let acc = ref acc in
  let skip = ref (max 0 pos) in
  for s = 0 to t.hi_slot - 1 do
    if t.occ.(s) then
      if !skip > 0 then decr skip else acc := f !acc t.keys.(s) t.tids.(s)
  done;
  !acc

(* Key-order position of the first live entry >= [key] (i.e. the
   number of live entries sorting below), as for
   {!Std_leaf.lower_bound}. *)
let lower_bound t key =
  let j = next_live t (slot_lower_bound t key) in
  let c = ref 0 in
  for s = 0 to j - 1 do
    if t.occ.(s) then incr c
  done;
  !c

let check_invariants t =
  assert (t.n >= 0 && t.n <= t.capacity);
  assert (t.hi_slot >= 0 && t.hi_slot <= t.capacity);
  let live = ref 0 in
  Array.iter (fun o -> if o then incr live) t.occ;
  assert (!live = t.n);
  if t.n > 0 then assert (t.occ.(t.hi_slot - 1));
  for s = t.hi_slot to t.capacity - 1 do
    assert (not t.occ.(s));
    assert (String.length t.keys.(s) = 0)
  done;
  for s = 0 to t.hi_slot - 2 do
    assert (Key.compare t.keys.(s) t.keys.(s + 1) <= 0)
  done;
  let prev = ref None in
  for s = 0 to t.hi_slot - 1 do
    if t.occ.(s) then begin
      (match !prev with
      | Some p -> assert (Key.compare p t.keys.(s) < 0)
      | None -> ());
      prev := Some t.keys.(s)
    end
  done
