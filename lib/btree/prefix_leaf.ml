(* Prefix-compressed B+-tree leaf: the classic key-prefix truncation of
   commercial B+-trees (InnoDB/Oracle index key compression, §2's
   references [22, 23]).

   Keys in a sorted leaf share a common prefix, which is stored once;
   each slot keeps only its suffix.  Because keys are fully
   reconstructible inside the node, operations behave exactly like a
   standard leaf (no indirect loads) — prefix compression is cheap.  Its
   weakness, which §2 contrasts against the always-compact SeqTree, is
   that the saving *depends on the key distribution*: random keys share
   nothing and the per-leaf prefix bookkeeping can even add space.

   The implementation keeps full keys in memory for speed (as the
   repository-wide convention, space is accounted through the explicit
   memory model): the modelled layout is header, prefix length byte,
   shared prefix bytes, and [capacity] slots of (key_len - prefix_len)
   suffix bytes plus a tuple id. *)

type t = {
  std : Std_leaf.t;
  mutable prefix_len : int;  (* shared-prefix length of the current keys *)
}

let shared_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

(* The shared prefix of a sorted key set is the shared prefix of its
   extremes. *)
let recompute t =
  let n = Std_leaf.count t.std in
  t.prefix_len <-
    (if n = 0 then 0
     else if n = 1 then String.length (Std_leaf.key_at t.std 0)
     else shared_prefix_len (Std_leaf.key_at t.std 0) (Std_leaf.key_at t.std (n - 1)))

let create ~key_len ~capacity () =
  { std = Std_leaf.create ~key_len ~capacity (); prefix_len = 0 }

let count t = Std_leaf.count t.std
let capacity t = Std_leaf.capacity t.std
let is_full t = Std_leaf.is_full t.std
let key_at t i = Std_leaf.key_at t.std i
let tid_at t i = Std_leaf.tid_at t.std i
let prefix_len t = t.prefix_len

let memory_bytes t =
  let key_len =
    if Std_leaf.count t.std = 0 then 0
    else String.length (Std_leaf.key_at t.std 0)
  in
  Ei_storage.Memmodel.prefix_leaf_bytes ~capacity:(Std_leaf.capacity t.std)
    ~key_len ~prefix_len:t.prefix_len

let find t key = Std_leaf.find t.std key

let insert t key tid =
  let r = Std_leaf.insert t.std key tid in
  (match r with Std_leaf.Inserted -> recompute t | _ -> ());
  r

let update t key tid = Std_leaf.update t.std key tid

let remove t key =
  let r = Std_leaf.remove t.std key in
  (match r with Std_leaf.Removed -> recompute t | _ -> ());
  r

let of_sorted ~key_len ~capacity keys tids n =
  let t = { std = Std_leaf.of_sorted ~key_len ~capacity keys tids n; prefix_len = 0 } in
  recompute t;
  t

let split t =
  let right = { std = Std_leaf.split t.std; prefix_len = 0 } in
  recompute t;
  recompute right;
  right

let absorb a b =
  Std_leaf.absorb a.std b.std;
  recompute a

let fold_from t pos f acc = Std_leaf.fold_from t.std pos f acc
let lower_bound t key = Std_leaf.lower_bound t.std key

let check_invariants t =
  Std_leaf.check_invariants t.std;
  let n = Std_leaf.count t.std in
  (* The recorded prefix really is shared by every key, and is maximal. *)
  if n >= 1 then begin
    let p = String.sub (Std_leaf.key_at t.std 0) 0 t.prefix_len in
    for i = 0 to n - 1 do
      assert (String.length (Std_leaf.key_at t.std i) >= t.prefix_len);
      assert (String.equal (String.sub (Std_leaf.key_at t.std i) 0 t.prefix_len) p)
    done;
    if n >= 2 then
      assert (
        t.prefix_len
        = shared_prefix_len (Std_leaf.key_at t.std 0) (Std_leaf.key_at t.std (n - 1)))
  end
