(** B+-tree with Optimistic Lock Coupling (Leis et al.), used by the
    multithreaded evaluation (§6.2): BTreeOLC with standard leaves and
    BTreeOLC-SeqTree with compact (indirect-key) leaves.

    Readers descend without locking and validate per-node version words,
    restarting on conflict; writers upgrade versions with a CAS.  Full
    nodes split eagerly during descent while the parent is locked.
    Deletions are lazy (no rebalancing), keeping the sibling chain used
    by range scans immutable.  Safe to use from multiple domains. *)

type t

type leaf_kind =
  | Olc_std
  | Olc_seqtree of { capacity : int; levels : int; breathing : int }
  | Olc_elastic of elastic_config
      (** elastic BTreeOLC: the variant §6.2 names but does not
          implement — leaf conversions happen in place under the leaf's
          write lock, with shared atomic size/state accounting *)

and elastic_config = {
  size_bound : int;
  shrink_fraction : float;
  expand_fraction : float;
  initial_compact_capacity : int;
  max_compact_capacity : int;
  seq_levels : int;
  breathing : int;
}

val default_elastic_config : size_bound:int -> elastic_config

val elastic_memory_bytes : t -> int
(** Atomically tracked size (elastic trees only; 0 otherwise).  Safe to
    read under concurrency, unlike {!memory_bytes}. *)

val elastic_size_bound : t -> int
(** The live soft bound (elastic trees only; 0 otherwise). *)

val set_size_bound : t -> int -> unit
(** Retune the live soft bound (elastic trees only; no-op otherwise) and
    re-evaluate the state machine.  Safe from any domain — this is the
    lever the global memory coordinator pulls. *)

val elastic_state_name : t -> string
val elastic_compact_leaves : t -> int
val elastic_conversions : t -> int

val safe_loader :
  key_len:int -> table_length:(unit -> int) -> load:(int -> string) ->
  int -> string
(** Wrap a table loader so torn optimistic reads of tuple ids cannot trip
    bounds checks; out-of-range loads return a dummy key and version
    validation rejects the result. *)

val create :
  ?leaf_capacity:int ->
  ?inner_capacity:int ->
  ?kind:leaf_kind ->
  key_len:int ->
  load:(int -> string) ->
  unit ->
  t

val insert : t -> string -> int -> bool
val remove : t -> string -> bool
val update : t -> string -> int -> bool
(** In-place value overwrite under the leaf's write lock; [false] if the
    key is absent. *)

val find : t -> string -> int option
val mem : t -> string -> bool

val multi_find : ?group:int -> t -> string array -> int option array
(** Batched point lookup: slot [i] is [find t keys.(i)].  Walks up to
    [group] (default 8) keys in lockstep with software prefetch ahead
    of each descent step; every cursor follows the standard OLC read
    protocol, and restarts on version conflicts are per-cursor, so one
    writer never restarts the whole batch. *)

val key_len : t -> int

val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
(** Ordered scan: snapshots one leaf at a time under version validation,
    walking the immutable sibling chain. *)

val count : t -> int
(** Full traversal; call without concurrent mutators. *)

val memory_bytes : t -> int
(** Size under the memory model; call without concurrent mutators. *)

val fold_leaves :
  t ->
  ('a -> compact:bool -> capacity:int -> count:int -> bytes:int -> 'a) ->
  'a ->
  'a
(** Leaves in key order with representation snapshots (sanitizer
    support); call without concurrent mutators. *)

val leaf_capacity : t -> int
(** Standard-leaf capacity. *)

val elastic_config : t -> elastic_config option

val check_invariants : t -> unit
(** Single-threaded structural check (no concurrent mutators). *)
