(* B+-tree with Optimistic Lock Coupling (Leis et al. [17]), as used by
   the multithreaded evaluation of §6.2: BTreeOLC with standard leaves,
   and BTreeOLC-SeqTree with compact (indirect-key) leaves.

   Every node carries a version word (an [int Atomic.t]); bit 0 is the
   lock bit and the remaining bits count modifications.  Readers descend
   without locking, re-validating each node's version after reading it,
   and restart from the root on any conflict.  Writers upgrade the
   observed version with a CAS.  Full nodes are split eagerly during the
   descent while holding the parent's lock, so a parent always has room
   for the separator of a splitting child.

   OCaml's memory safety makes optimistic reads benign: a torn read can
   produce a wrong value or an out-of-bounds index, never a wild pointer.
   Any exception raised on a torn read is translated into a restart.

   Deletions are lazy (no rebalancing), as in the reference BTreeOLC:
   leaves may become sparse but are never merged, which keeps the
   sibling chain used by range scans immutable. *)

module Key = Ei_util.Key
module Invariant = Ei_util.Invariant
module Std_leaf = Ei_btree.Std_leaf
module Seqtree = Ei_blindi.Seqtree
module Metrics = Ei_obs.Metrics
module Trace = Ei_obs.Trace

(* --- Observability (shared across instances) ------------------------- *)

let c_transitions = Metrics.counter "olc.transitions"
let c_conversions = Metrics.counter "olc.conversions"

let ev_state =
  Trace.define ~cat:"elastic" ~arg0:"state" ~arg1:"bytes" "olc.elastic.state"

(* Leaf representation changes, with the capacities involved
   (0 = standard leaf). *)
let ev_convert =
  Trace.define ~cat:"elastic" ~arg0:"to_capacity" ~arg1:"from_capacity"
    "olc.elastic.convert"

let ev_set_bound =
  Trace.define ~cat:"elastic" ~arg0:"new_bound" ~arg1:"old_bound"
    "olc.elastic.set_bound"

(* One span per grouped lockstep descent, on the calling (shard)
   domain's track; under an ambient request {!Ei_obs.Ctx} it joins that
   request's flow as the tree-descent stage. *)
let ev_multi_find =
  Trace.define ~span:true ~arg1:"keys" ~cat:"olc" "olc.multi_find"

exception Restart

(* --- Simulation preemption points ------------------------------------ *)

(* Pure yield points for the deterministic scheduler in ei_sim: inert
   single atomic loads in production, suspension points when a Fault tap
   is installed.  They mark the schedule-sensitive transitions of the
   protocol — spinning on a held lock, restarting after a conflict,
   entering a write-locked section, converting a leaf representation,
   and stepping the sibling chain of a scan.  The spin point is
   load-bearing for the simulator: a fiber spinning in [read_lock] on a
   lock held by a parked fiber must itself yield or the simulated run
   livelocks. *)
module Fault = Ei_fault.Fault

let yp_spin = Fault.site "olc.yield.spin"
let yp_restart = Fault.site "olc.yield.restart"
let yp_locked = Fault.site "olc.yield.locked"
let yp_convert = Fault.site "olc.yield.convert"
let yp_scan = Fault.site "olc.yield.scan"
let yp_multi = Fault.site "olc.yield.multi"

(* --- Version locks -------------------------------------------------- *)

let is_locked v = v land 1 = 1

let rec read_lock a =
  let v = Atomic.get a in
  if is_locked v then begin
    Fault.point yp_spin;
    Domain.cpu_relax ();
    read_lock a
  end
  else v

let validate a v = Atomic.get a = v
let check a v = if not (validate a v) then raise Restart
let try_upgrade a v = Atomic.compare_and_set a v (v lor 1)

let upgrade_or_restart a v =
  if try_upgrade a v then Fault.point yp_locked else raise Restart

(* Release a write lock, bumping the version. *)
let write_unlock a = Atomic.set a ((Atomic.get a lxor 1) + 2)

(* Release a write lock without a version bump (nothing was modified). *)
let write_abort a = Atomic.set a (Atomic.get a lxor 1)

(* Run [f] with [a] write-locked by the caller.  A non-[Restart]
   exception inside a critical section is a genuine broken invariant —
   the node is private while locked, so there is no torn read to excuse
   it: release the lock with a version bump (the mutation may be
   partial) and re-raise as {!Invariant.Broken}, which [with_restart]
   does not swallow.  Without this, the leaked lock wedges every later
   operation that spins in [read_lock] on the node. *)
let critical a f =
  try f () with
  | Restart ->
    write_abort a;
    raise Restart
  | Invariant.Broken _ as e ->
    write_unlock a;
    raise e
  | e ->
    write_unlock a;
    raise
      (Invariant.Broken
         ("Btree_olc: exception in locked section: " ^ Printexc.to_string e))

(* --- Structure ------------------------------------------------------ *)

type leaf_repr = Lstd of Std_leaf.t | Lseq of Seqtree.t

type node =
  | Inner of inner
  | Leaf of leaf

and inner = {
  iversion : int Atomic.t;
  mutable n : int [@ei.guarded_by "iversion"];
  keys : string array [@ei.guarded_by "iversion"];
  children : node array [@ei.guarded_by "iversion"];
}

and leaf = {
  lversion : int Atomic.t;
  mutable repr : leaf_repr [@ei.guarded_by "lversion"];
  (* sibling chain; never unlinked *)
  mutable next : leaf option [@ei.guarded_by "lversion"];
}

type leaf_kind =
  | Olc_std
  | Olc_seqtree of { capacity : int; levels : int; breathing : int }
  | Olc_elastic of elastic_config
    (* The elastic index framework applied to the concurrent tree — the
       variant §6.2 names but does not implement.  Conversions happen
       in place under a leaf's write lock; the size total and state are
       shared atomics, so the soft bound is approximate under races but
       convergent. *)

and elastic_config = {
  size_bound : int;
  shrink_fraction : float;
  expand_fraction : float;
  initial_compact_capacity : int;
  max_compact_capacity : int;
  seq_levels : int;
  breathing : int;
}

let default_elastic_config ~size_bound =
  {
    size_bound;
    shrink_fraction = 0.9;
    expand_fraction = 0.75;
    initial_compact_capacity = 32;
    max_compact_capacity = 128;
    seq_levels = 2;
    breathing = 4;
  }

(* Concurrent elasticity state: 0 = normal, 1 = shrinking, 2 = expanding. *)
type elastic_state = {
  cfg : elastic_config;
  ebound : int Atomic.t;     (* live soft bound; coordinator-adjustable *)
  ebytes : int Atomic.t;
  ecompact : int Atomic.t;   (* number of compact leaves *)
  estate : int Atomic.t;
  econversions : int Atomic.t;
}

type t = {
  key_len : int;
  leaf_capacity : int;   (* standard-leaf capacity *)
  inner_capacity : int;
  kind : leaf_kind;
  load : int -> string;
  root_lock : int Atomic.t;  (* guards the root pointer *)
  mutable root : node [@ei.guarded_by "root_lock"];
  elastic : elastic_state option;
}

(* The loader handed to compact leaves must never trip the table's bounds
   assertion on a torn tid; out-of-range loads return a dummy key and the
   version validation rejects the result. *)
let safe_loader ~key_len ~table_length ~load =
  let dummy = String.make key_len '\000' in
  fun (tid : int) ->
    if tid >= 0 && tid < table_length () then load tid else dummy

let empty_leaf t =
  let repr =
    match t.kind with
    | Olc_std | Olc_elastic _ ->
      Lstd (Std_leaf.create ~key_len:t.key_len ~capacity:t.leaf_capacity ())
    | Olc_seqtree { capacity; levels; breathing } ->
      Lseq (Seqtree.create ~key_len:t.key_len ~capacity ~levels ~breathing ())
  in
  { lversion = Atomic.make 0; repr; next = None }

let leaf_bytes l =
  match l.repr with
  | Lstd x -> Std_leaf.memory_bytes x
  | Lseq x -> Seqtree.memory_bytes x

let create ?(leaf_capacity = 16) ?(inner_capacity = 16) ?(kind = Olc_std)
    ~key_len ~load () =
  let elastic =
    match kind with
    | Olc_elastic cfg ->
      Some
        {
          cfg;
          ebound = Atomic.make cfg.size_bound;
          ebytes = Atomic.make 0;
          ecompact = Atomic.make 0;
          estate = Atomic.make 0;
          econversions = Atomic.make 0;
        }
    | Olc_std | Olc_seqtree _ -> None
  in
  let t =
    {
      key_len;
      leaf_capacity;
      inner_capacity;
      kind;
      load;
      root_lock = Atomic.make 0;
      root = Leaf { lversion = Atomic.make 0; repr = Lstd (Std_leaf.create ~key_len ~capacity:2 ()); next = None };
      elastic;
    }
  in
  let first = empty_leaf t in
  t.root <- Leaf first;
  (match elastic with
  | Some e -> Atomic.set e.ebytes (leaf_bytes first)
  | None -> ());
  t

(* --- Elastic bookkeeping --------------------------------------------- *)

let account t delta =
  match t.elastic with
  | Some e -> ignore (Atomic.fetch_and_add e.ebytes delta)
  | None -> ()

let account_compact t delta =
  match t.elastic with
  | Some e -> ignore (Atomic.fetch_and_add e.ecompact delta)
  | None -> ()

(* Transition the elastic state machine, making the change visible to
   the shared registry and trace ring.  Callers only reach here when the
   new state differs from the one they just observed, so every call is a
   real transition (races between domains can at worst double-report a
   transition, never invent a state). *)
let set_estate e s ~bytes =
  Atomic.set e.estate s;
  Metrics.incr c_transitions;
  Trace.emit ev_state s bytes

let update_elastic_state t =
  match t.elastic with
  | None -> ()
  | Some e ->
    let bytes = Atomic.get e.ebytes in
    let bound = Atomic.get e.ebound in
    let shrink_at =
      int_of_float (e.cfg.shrink_fraction *. float_of_int bound)
    in
    let expand_at =
      int_of_float (e.cfg.expand_fraction *. float_of_int bound)
    in
    (match Atomic.get e.estate with
    | 0 -> if bytes >= shrink_at then set_estate e 1 ~bytes
    | 1 -> if bytes <= expand_at then set_estate e 2 ~bytes
    | _ ->
      if bytes >= shrink_at then set_estate e 1 ~bytes
      else if Atomic.get e.ecompact = 0 then set_estate e 0 ~bytes)

let elastic_memory_bytes t =
  match t.elastic with Some e -> Atomic.get e.ebytes | None -> 0

let elastic_size_bound t =
  match t.elastic with Some e -> Atomic.get e.ebound | None -> 0

(* Coordinator lever: retune the live soft bound and re-evaluate the
   state machine immediately, so a starved tree starts shrinking without
   waiting for its next structure modification.  Safe from any domain. *)
let set_size_bound t bound =
  match t.elastic with
  | None -> ()
  | Some e ->
    assert (bound > 0);
    let old_bound = Atomic.exchange e.ebound bound in
    Trace.emit ev_set_bound bound old_bound;
    update_elastic_state t

let key_len t = t.key_len

let elastic_state_name t =
  match t.elastic with
  | None -> ""
  | Some e -> (
    match Atomic.get e.estate with
    | 0 -> "normal"
    | 1 -> "shrinking"
    | _ -> "expanding")

let elastic_compact_leaves t =
  match t.elastic with Some e -> Atomic.get e.ecompact | None -> 0

let elastic_conversions t =
  match t.elastic with Some e -> Atomic.get e.econversions | None -> 0

(* Convert a write-locked leaf's representation in place (std -> compact
   or compact capacity change), adjusting the shared accounting. *)
let convert_locked_leaf t l ~capacity ~levels ~breathing =
  Fault.point yp_convert;
  let before = leaf_bytes l in
  let was_compact = match l.repr with Lstd _ -> false | Lseq _ -> true in
  let from_capacity =
    match l.repr with Lstd _ -> 0 | Lseq x -> Seqtree.capacity x
  in
  let n, keys, tids =
    match l.repr with
    | Lstd x ->
      let n = Std_leaf.count x in
      ( n,
        Array.init n (fun i -> Std_leaf.key_at x i),
        Array.init n (fun i -> Std_leaf.tid_at x i) )
    | Lseq x ->
      let n = Seqtree.count x in
      let tids = Array.init n (fun i -> Seqtree.tid_at x i) in
      (n, Array.map t.load tids, tids)
  in
  l.repr <-
    (if capacity <= t.leaf_capacity then
       Lstd (Std_leaf.of_sorted ~key_len:t.key_len ~capacity:t.leaf_capacity keys tids n)
     else
       Lseq
         (Seqtree.of_sorted ~key_len:t.key_len ~capacity ~levels ~breathing keys
            tids n));
  let is_compact = match l.repr with Lstd _ -> false | Lseq _ -> true in
  account t (leaf_bytes l - before);
  if is_compact && not was_compact then account_compact t 1
  else if (not is_compact) && was_compact then account_compact t (-1);
  (match t.elastic with
  | Some e ->
    ignore (Atomic.fetch_and_add e.econversions 1);
    Metrics.incr c_conversions;
    Trace.emit ev_convert
      (if capacity <= t.leaf_capacity then 0 else capacity)
      from_capacity
  | None -> ());
  update_elastic_state t

let leaf_count l =
  match l.repr with Lstd x -> Std_leaf.count x | Lseq x -> Seqtree.count x

let leaf_full l =
  match l.repr with Lstd x -> Std_leaf.is_full x | Lseq x -> Seqtree.is_full x

let node_version = function
  | Inner nd -> nd.iversion
  | Leaf l -> l.lversion

let node_full t = function
  | Inner nd -> nd.n >= t.inner_capacity
  | Leaf l -> leaf_full l

(* --- Memory model --------------------------------------------------- *)

let memory_bytes t =
  let rec go = function
    | Inner nd ->
      let s =
        ref
          (Ei_storage.Memmodel.inner_bytes ~capacity:t.inner_capacity
             ~key_len:t.key_len)
      in
      for i = 0 to nd.n do
        s := !s + go nd.children.(i)
      done;
      !s
    | Leaf l -> (
      match l.repr with
      | Lstd x -> Std_leaf.memory_bytes x
      | Lseq x -> Seqtree.memory_bytes x)
  in
  go t.root

let count t =
  let rec go = function
    | Inner nd ->
      let s = ref 0 in
      for i = 0 to nd.n do
        s := !s + go nd.children.(i)
      done;
      !s
    | Leaf l -> leaf_count l
  in
  go t.root

(* Single-threaded leaf walk for external validators: leaves in key
   order with their representation snapshot. *)
let fold_leaves t f acc =
  let rec go acc = function
    | Inner nd ->
      let acc = ref acc in
      for i = 0 to nd.n do
        acc := go !acc nd.children.(i)
      done;
      !acc
    | Leaf l ->
      let compact, capacity =
        match l.repr with
        | Lstd x -> (false, Std_leaf.capacity x)
        | Lseq x -> (true, Seqtree.capacity x)
      in
      f acc ~compact ~capacity ~count:(leaf_count l) ~bytes:(leaf_bytes l)
  in
  go acc t.root

let leaf_capacity t = t.leaf_capacity

let elastic_config t =
  match t.elastic with Some e -> Some e.cfg | None -> None

(* --- Descent helpers ------------------------------------------------ *)

let child_index nd key =
  let lo = ref 0 and hi = ref nd.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Key.compare_fast nd.keys.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Split a full leaf (write-locked by the caller); returns the separator
   and new right leaf. *)
let split_leaf t l =
  let before = leaf_bytes l in
  let right_repr, sep =
    match l.repr with
    | Lstd x ->
      let right = Std_leaf.split x in
      (Lstd right, Std_leaf.key_at right 0)
    | Lseq x ->
      let c = Seqtree.capacity x in
      let left, right = Seqtree.split x ~left_capacity:c ~right_capacity:c in
      l.repr <- Lseq left;
      (Lseq right, t.load (Seqtree.tid_at right 0))
  in
  let right = { lversion = Atomic.make 0; repr = right_repr; next = l.next } in
  l.next <- Some right;
  account t (leaf_bytes l + leaf_bytes right - before);
  (match right.repr with Lseq _ -> account_compact t 1 | Lstd _ -> ());
  (sep, Leaf right)

(* Split a full inner node (write-locked); returns separator + right. *)
let split_inner t nd =
  let mid = nd.n / 2 in
  let sep = nd.keys.(mid) in
  let right =
    {
      iversion = Atomic.make 0;
      n = nd.n - mid - 1;
      keys = Array.make t.inner_capacity "";
      children = Array.make (t.inner_capacity + 1) (Leaf (empty_leaf t));
    }
  in
  Array.blit nd.keys (mid + 1) right.keys 0 right.n;
  Array.blit nd.children (mid + 1) right.children 0 (right.n + 1);
  for i = mid to nd.n - 1 do
    nd.keys.(i) <- ""
  done;
  nd.n <- mid;
  (sep, Inner right)

let inner_insert_at nd i sep child =
  Array.blit nd.keys i nd.keys (i + 1) (nd.n - i);
  Array.blit nd.children (i + 1) nd.children (i + 2) (nd.n - i);
  nd.keys.(i) <- sep;
  nd.children.(i + 1) <- child;
  nd.n <- nd.n + 1

(* Split a full node, with the parent (or the root lock) already
   write-locked by the caller.  The node itself is locked here. *)
let split_child t ~parent ~node ~node_version:nv =
  upgrade_or_restart (node_version node) nv;
  critical (node_version node) (fun () ->
      let sep, right =
        match node with
        | Leaf l -> split_leaf t l
        | Inner nd ->
          account t
            (Ei_storage.Memmodel.inner_bytes ~capacity:t.inner_capacity
               ~key_len:t.key_len);
          split_inner t nd
      in
      (match parent with
      | Some pnd -> inner_insert_at pnd (child_index pnd sep) sep right
      | None ->
        (* Growing the tree: new root above the old one. *)
        let root =
          {
            iversion = Atomic.make 0;
            n = 1;
            keys = Array.make t.inner_capacity "";
            children = Array.make (t.inner_capacity + 1) right;
          }
        in
        root.keys.(0) <- sep;
        root.children.(0) <- node;
        root.children.(1) <- right;
        account t
          (Ei_storage.Memmodel.inner_bytes ~capacity:t.inner_capacity
             ~key_len:t.key_len);
        t.root <- Inner root);
      update_elastic_state t);
  write_unlock (node_version node)

(* Decide how an elastic tree handles a full leaf: convert in place
   (returning the new capacity) while shrinking, or split (None). *)
let elastic_overflow t node =
  match (t.elastic, node) with
  | Some e, Leaf l ->
    update_elastic_state t;
    if Atomic.get e.estate = 1 then begin
      match l.repr with
      | Lstd _ -> Some e.cfg.initial_compact_capacity
      | Lseq x ->
        let c = Seqtree.capacity x in
        if c < e.cfg.max_compact_capacity then Some (2 * c) else None
    end
    else None
  | _ -> None

(* Convert a full leaf in place under its write lock (elastic shrink),
   then restart the caller's descent. *)
let convert_full_leaf t node nv capacity =
  upgrade_or_restart (node_version node) nv;
  critical (node_version node) (fun () ->
      match node with
      | Leaf l -> (
        match t.elastic with
        | Some e ->
          convert_locked_leaf t l ~capacity ~levels:e.cfg.seq_levels
            ~breathing:e.cfg.breathing
        | None ->
          Invariant.impossible "Btree_olc.convert_full_leaf: no elastic config")
      | Inner _ -> Invariant.impossible "Btree_olc.convert_full_leaf: inner node");
  write_unlock (node_version node);
  raise Restart

(* --- Operations ----------------------------------------------------- *)

let with_restart f =
  let rec go n =
    try f () with
    | Restart ->
      Fault.point yp_restart;
      Domain.cpu_relax ();
      go (n + 1)
    | Invalid_argument _ | Assert_failure _ ->
      (* torn optimistic read *)
      Fault.point yp_restart;
      Domain.cpu_relax ();
      go (n + 1)
  in
  go 0

let find t key =
  with_restart (fun () ->
      let rv = read_lock t.root_lock in
      let node = t.root in
      let nv = read_lock (node_version node) in
      check t.root_lock rv;
      let rec go node nv =
        match node with
        | Leaf l ->
          let r =
            match l.repr with
            | Lstd x -> Std_leaf.find x key
            | Lseq x -> Seqtree.find x ~load:t.load key
          in
          check l.lversion nv;
          r
        | Inner nd ->
          let i = child_index nd key in
          let child = nd.children.(i) in
          let cv = read_lock (node_version child) in
          check nd.iversion nv;
          go child cv
      in
      go node nv)

let mem t key = Option.is_some (find t key)

(* Batched lookups: walk up to [group] keys through the tree in
   lockstep ({!Ei_btree.Interleave}), one descent step per cursor per
   round, prefetching each child node before touching its version
   word.  A step re-validates exactly what [find]'s would — the
   current node's version after reading the child pointer (or the leaf
   payload) — so each cursor follows the standard OLC read protocol
   unchanged.

   Restarts are per-cursor, not per-batch: the validation failures
   [with_restart] would catch ([Restart], plus [Invalid_argument] /
   [Assert_failure] from torn optimistic reads) are passed to the
   engine as its [retry] classifier, which resets only the conflicting
   cursor back to root re-acquisition.  Batch-wide restarts would let
   one hot writer starve K lookups at a time.  [yp_multi] fires once
   per lockstep round so the simulation scheduler can interleave
   writers *between* rounds, in the middle of a batch. *)
let multi_find ?(group = 8) t keys =
  let tmf = Trace.start () in
  let nkeys = Array.length keys in
  let out = Array.make nkeys None in
  let base = ref 0 in
  while !base < nkeys do
    let n = min group (nkeys - !base) in
    let first = !base in
    Ei_btree.Interleave.run
      ~yield:(fun () -> Fault.point yp_multi)
      ~retry:(function
        | Restart | Invalid_argument _ | Assert_failure _ -> true
        | _ -> false)
      ~n
      ~start:(fun _ ->
        let rv = read_lock t.root_lock in
        let node = t.root in
        let nv = read_lock (node_version node) in
        check t.root_lock rv;
        (node, nv))
      ~step:(fun i (node, nv) ->
        let key = keys.(first + i) in
        match node with
        | Leaf l ->
          let r =
            match l.repr with
            | Lstd x -> Std_leaf.find x key
            | Lseq x -> Seqtree.find x ~load:t.load key
          in
          check l.lversion nv;
          out.(first + i) <- r;
          Ei_btree.Interleave.Done
        | Inner nd ->
          let ci = child_index nd key in
          let child = nd.children.(ci) in
          Ei_util.Prefetch.prefetch child;
          let cv = read_lock (node_version child) in
          check nd.iversion nv;
          Ei_btree.Interleave.Continue (child, cv))
      ();
    base := first + n
  done;
  Trace.span ev_multi_find ~start_ns:tmf nkeys;
  out

let insert t key tid =
  with_restart (fun () ->
      let rv = read_lock t.root_lock in
      let node = t.root in
      let nv = read_lock (node_version node) in
      check t.root_lock rv;
      if node_full t node then begin
        match elastic_overflow t node with
        | Some capacity ->
          (* Elastic shrink: convert the root leaf in place. *)
          convert_full_leaf t node nv capacity
        | None ->
          (* Split the root under the root lock, then restart. *)
          upgrade_or_restart t.root_lock rv;
          (try split_child t ~parent:None ~node ~node_version:nv
           with Restart ->
             write_abort t.root_lock;
             raise Restart);
          write_unlock t.root_lock;
          raise Restart
      end;
      let rec go parent node nv =
        (* Invariant: [node] is not full; parent has room. *)
        match node with
        | Leaf l ->
          upgrade_or_restart l.lversion nv;
          let r =
            critical l.lversion (fun () ->
                let before = leaf_bytes l in
                let r =
                  match l.repr with
                  | Lstd x -> Std_leaf.insert x key tid
                  | Lseq x -> (
                    match Seqtree.insert x ~load:t.load key tid with
                    | Seqtree.Inserted -> Std_leaf.Inserted
                    | Seqtree.Full -> Std_leaf.Full
                    | Seqtree.Duplicate -> Std_leaf.Duplicate)
                in
                account t (leaf_bytes l - before);
                r)
          in
          write_unlock l.lversion;
          (match r with
          | Std_leaf.Inserted -> true
          | Std_leaf.Duplicate -> false
          | Std_leaf.Full ->
            Invariant.impossible "Btree_olc.insert: leaf still full after split")
        | Inner nd ->
          let i = child_index nd key in
          let child = nd.children.(i) in
          let cv = read_lock (node_version child) in
          check nd.iversion nv;
          if node_full t child then begin
            match elastic_overflow t child with
            | Some capacity ->
              (* Elastic shrink: convert the leaf in place — no parent
                 lock needed, the upper tree is untouched. *)
              convert_full_leaf t child cv capacity
            | None ->
              (* Eager split with this (non-full) node locked as parent. *)
              upgrade_or_restart nd.iversion nv;
              (try split_child t ~parent:(Some nd) ~node:child ~node_version:cv
               with Restart ->
                 write_abort nd.iversion;
                 raise Restart);
              write_unlock nd.iversion;
              raise Restart
          end
          else begin
            ignore parent;
            go (Some nd) child cv
          end
      in
      go None node nv)

let remove t key =
  (* Lazy deletion: lock the leaf and remove; leaves are never merged. *)
  with_restart (fun () ->
      let rv = read_lock t.root_lock in
      let node = t.root in
      let nv = read_lock (node_version node) in
      check t.root_lock rv;
      let rec go node nv =
        match node with
        | Leaf l ->
          upgrade_or_restart l.lversion nv;
          let r =
            critical l.lversion (fun () ->
                let before = leaf_bytes l in
                let r =
                  match l.repr with
                  | Lstd x -> (
                    match Std_leaf.remove x key with
                    | Std_leaf.Removed -> true
                    | Std_leaf.Not_present -> false)
                  | Lseq x -> (
                    match Seqtree.remove x ~load:t.load key with
                    | Seqtree.Removed -> true
                    | Seqtree.Not_present -> false)
                in
                account t (leaf_bytes l - before);
                (* Elastic underflow: a compact leaf below the §4
                   invariant shrinks back down the capacity progression,
                   while holding the write lock. *)
                (match (t.elastic, l.repr) with
                | Some e, Lseq x when r ->
                  let c = Seqtree.capacity x in
                  if Seqtree.count x < (c / 2) + 1 then begin
                    let capacity =
                      if c / 2 > t.leaf_capacity then c / 2 else 0
                    in
                    convert_locked_leaf t l
                      ~capacity:(max capacity t.leaf_capacity)
                      ~levels:e.cfg.seq_levels ~breathing:e.cfg.breathing
                  end
                | _ -> ());
                update_elastic_state t;
                r)
          in
          write_unlock l.lversion;
          r
        | Inner nd ->
          let i = child_index nd key in
          let child = nd.children.(i) in
          let cv = read_lock (node_version child) in
          check nd.iversion nv;
          go child cv
      in
      go node nv)

(* In-place value overwrite: lock the leaf and replace the tid of an
   existing key.  No size change, so no elastic accounting. *)
let update t key tid =
  with_restart (fun () ->
      let rv = read_lock t.root_lock in
      let node = t.root in
      let nv = read_lock (node_version node) in
      check t.root_lock rv;
      let rec go node nv =
        match node with
        | Leaf l ->
          upgrade_or_restart l.lversion nv;
          let r =
            critical l.lversion (fun () ->
                match l.repr with
                | Lstd x -> Std_leaf.update x key tid
                | Lseq x -> Seqtree.update x ~load:t.load key tid)
          in
          write_unlock l.lversion;
          r
        | Inner nd ->
          let i = child_index nd key in
          let child = nd.children.(i) in
          let cv = read_lock (node_version child) in
          check nd.iversion nv;
          go child cv
      in
      go node nv)

(* Range scan: locate the start leaf, then walk the immutable sibling
   chain, validating each leaf's version around its snapshot. *)
let fold_range t ~start ~n f acc =
  let first =
    with_restart (fun () ->
        let rv = read_lock t.root_lock in
        let node = t.root in
        let nv = read_lock (node_version node) in
        check t.root_lock rv;
        let rec go node nv =
          match node with
          | Leaf l ->
            check l.lversion nv;
            l
          | Inner nd ->
            let i = child_index nd start in
            let child = nd.children.(i) in
            let cv = read_lock (node_version child) in
            check nd.iversion nv;
            go child cv
        in
        go node nv)
  in
  (* Snapshot one leaf's entries >= start (with key loads for compact
     leaves), retrying on version conflicts. *)
  let snapshot l =
    with_restart (fun () ->
        let v = read_lock l.lversion in
        let entries =
          match l.repr with
          | Lstd x ->
            let out = ref [] in
            for i = Std_leaf.count x - 1 downto 0 do
              let k = Std_leaf.key_at x i in
              if Key.compare k start >= 0 then
                out := (k, Std_leaf.tid_at x i) :: !out
            done;
            !out
          | Lseq x ->
            let out = ref [] in
            for i = Seqtree.count x - 1 downto 0 do
              let tid = Seqtree.tid_at x i in
              let k = t.load tid in
              if Key.compare k start >= 0 then out := (k, tid) :: !out
            done;
            !out
        in
        let next = l.next in
        check l.lversion v;
        (entries, next))
  in
  let rec walk l remaining acc =
    if remaining <= 0 then acc
    else begin
      Fault.point yp_scan;
      let entries, next = snapshot l in
      let taken = ref 0 in
      let acc =
        List.fold_left
          (fun acc (k, tid) ->
            if !taken < remaining then begin
              incr taken;
              f acc k tid
            end
            else acc)
          acc entries
      in
      match next with
      | Some nxt when remaining - !taken > 0 -> walk nxt (remaining - !taken) acc
      | _ -> acc
    end
  in
  walk first n acc

(* Single-threaded invariant check (no concurrent mutators). *)
let check_invariants t =
  let rec walk node ~lo ~hi =
    match node with
    | Leaf l ->
      let n = leaf_count l in
      let key_at i =
        match l.repr with
        | Lstd x -> Std_leaf.key_at x i
        | Lseq x -> t.load (Seqtree.tid_at x i)
      in
      for i = 0 to n - 2 do
        assert (Key.compare (key_at i) (key_at (i + 1)) < 0)
      done;
      for i = 0 to n - 1 do
        (match lo with Some b -> assert (Key.compare b (key_at i) <= 0) | None -> ());
        match hi with Some b -> assert (Key.compare (key_at i) b < 0) | None -> ()
      done;
      1
    | Inner nd ->
      assert (nd.n >= 1 && nd.n <= t.inner_capacity);
      for i = 0 to nd.n - 2 do
        assert (Key.compare nd.keys.(i) nd.keys.(i + 1) < 0)
      done;
      let d = ref (-1) in
      for i = 0 to nd.n do
        let lo' = if i = 0 then lo else Some nd.keys.(i - 1) in
        let hi' = if i = nd.n then hi else Some nd.keys.(i) in
        let di = walk nd.children.(i) ~lo:lo' ~hi:hi' in
        if !d = -1 then d := di else assert (di = !d)
      done;
      1 + !d
  in
  ignore (walk t.root ~lo:None ~hi:None)
