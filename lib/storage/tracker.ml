(* Incremental memory accounting.

   Indexes report node allocations and frees here so the elasticity
   algorithm can consult the current index size in O(1) on every
   operation.  Tests cross-check the tracked total against a
   recomputed-from-scratch sum over all live nodes. *)

type t = { mutable bytes : int; mutable high_water : int }

let create () = { bytes = 0; high_water = 0 }

let add t n =
  t.bytes <- t.bytes + n;
  if t.bytes > t.high_water then t.high_water <- t.bytes

let sub t n =
  t.bytes <- t.bytes - n;
  assert (t.bytes >= 0)

let bytes t = t.bytes
let high_water t = t.high_water

let reset t =
  t.bytes <- 0;
  t.high_water <- 0
