(* Explicit node-size model.

   The paper measures packed C++ node layouts.  OCaml's GC heap has its
   own block headers, so instead of measuring the OCaml heap we account
   index memory with this model, which mirrors the C layouts the paper
   describes.  All "memory consumption" figures in the benchmarks are
   computed from these formulas; compression *ratios* — the quantity the
   paper's claims are about — are therefore preserved.

   Conventions:
   - pointers and tuple identifiers are 8 bytes ([word]);
   - every node has a fixed [node_header] (allocator/bookkeeping word plus
     an occupancy counter), as in the STX implementation;
   - a discriminating-bit entry is 1 byte when the key has at most 256
     bits (keys <= 32 B) and 2 bytes otherwise (§5.1);
   - a BlindiTree entry is 1 byte when the node capacity is < 255 and
     2 bytes otherwise. *)

let word = 8
let node_header = 16

(* STX-style B+-tree leaf: header, next/prev leaf pointers, and
   [capacity] slots of key bytes plus tuple id. *)
let std_leaf_bytes ~capacity ~key_len =
  node_header + (2 * word) + (capacity * (key_len + word))

(* Gapped (slotted) B+-tree leaf, BS-tree style: the standard leaf
   layout plus a one-byte-per-slot occupancy map.  The key/tid arrays
   are always allocated at full [capacity] — the gaps are the point —
   so the space cost relative to [std_leaf_bytes] is exactly the
   occupancy bytes. *)
let gapped_leaf_bytes ~capacity ~key_len =
  std_leaf_bytes ~capacity ~key_len + capacity

(* B+-tree inner node: header, [capacity] separator keys and
   [capacity + 1] child pointers. *)
let inner_bytes ~capacity ~key_len =
  node_header + (capacity * key_len) + ((capacity + 1) * word)

(* Prefix-compressed B+-tree leaf (InnoDB/Oracle-style key truncation):
   header, next/prev pointers, one prefix-length byte, the shared prefix
   stored once, and [capacity] slots of suffix bytes plus tuple id.  With
   unshared keys (prefix_len = 0) this is a standard leaf plus one byte —
   §2's observation that prefix compression can even increase space. *)
let prefix_leaf_bytes ~capacity ~key_len ~prefix_len =
  node_header + (2 * word) + 1 + prefix_len
  + (capacity * (key_len - prefix_len + word))

let bits_entry_bytes ~key_len = if key_len * 8 <= 256 then 1 else 2
let tree_entry_bytes ~capacity = if capacity < 255 then 1 else 2

(* SeqTree compact leaf (§5): header, next/prev leaf pointers, BlindiBits
   array of [capacity - 1] entries, BlindiTree of [2^levels - 1] entries,
   and the tuple-id array.  Without breathing the tid array has [capacity]
   slots; with breathing it has [tid_slots] slots plus one indirection
   word (the array is reallocated as the node grows, §5.4).

   Levels 1-3 fit into node padding in the C layout (§6.4); we model that
   by charging nothing for trees of at most 7 entries. *)
let seqtree_bytes ~capacity ~key_len ~levels ~tid_slots ~breathing =
  let tree_entries = (1 lsl levels) - 1 in
  let tree_bytes =
    if tree_entries <= 7 then 0 else tree_entries * tree_entry_bytes ~capacity
  in
  let bits_bytes = (capacity - 1) * bits_entry_bytes ~key_len in
  let tid_bytes =
    if breathing then (tid_slots * word) + word else capacity * word
  in
  node_header + (2 * word) + bits_bytes + tree_bytes + tid_bytes

(* String B-Trie compact leaf (Ferragina & Grossi): per internal node a
   discriminating-bit entry plus two child slots, each 1 byte while the
   child space (2 * capacity values) fits a byte — the ~3 B/key layout of
   §5.1 — plus a root slot and the tuple-id array. *)
let stringtrie_bytes ~capacity ~key_len =
  let child = if 2 * capacity <= 256 then 1 else 2 in
  node_header + (2 * word) + child
  + ((capacity - 1) * (bits_entry_bytes ~key_len + (2 * child)))
  + (capacity * word)

(* SubTrie compact leaf: preorder discriminating-bit array plus the
   left-subtree-size array, each of [capacity - 1] entries (§5.1), and a
   full-capacity tuple-id array. *)
let subtrie_bytes ~capacity ~key_len =
  let size_entry = if capacity <= 256 then 1 else 2 in
  node_header + (2 * word)
  + ((capacity - 1) * (bits_entry_bytes ~key_len + size_entry))
  + (capacity * word)

(* HOT-substitute adaptive blind-trie node: [entries] partial keys
   (1 byte each) plus [entries] child/tid words, [discriminating_bits]
   position bytes and a small header.  Real HOT packs several trie
   levels into one node with a single header and bit-packed layouts, so
   the per-node overhead is charged at 8 bytes (not the generic
   [node_header]) and per actual entry, which calibrates the model to
   HOT's reported ~0.5x-of-B+-tree space for 64-bit keys [3]. *)
let hot_node_header = 8

let hot_node_bytes ~entries ~discriminating_bits =
  hot_node_header + discriminating_bits + entries + (entries * word)

(* Binary Patricia trie inner node: discriminating bit position plus two
   child words. *)
let patricia_node_bytes = node_header + 2 + (2 * word)

(* Skip list node of a given tower height: key bytes, value word and
   [height] forward pointers. *)
let skiplist_node_bytes ~key_len ~height =
  node_header + key_len + word + (height * word)

(* ART node sizes (Leis et al.): header of 16 B plus the per-type arrays. *)
let art_node4_bytes = node_header + 4 + (4 * word)
let art_node16_bytes = node_header + 16 + (16 * word)
let art_node48_bytes = node_header + 256 + (48 * word)
let art_node256_bytes = node_header + (256 * word)
let art_leaf_bytes ~key_len = node_header + key_len + word
