(** In-memory row table: the database tuples indexes point into.

    A tuple identifier ([tid]) is the row's index in the table.  Compact
    index nodes store only tids and load keys from the table through
    {!loader}, modelling the paper's indirect key storage.  Every load is
    counted so benchmarks can report indirect-access costs. *)

type t

val create : ?initial_capacity:int -> key_len:int -> unit -> t

val length : t -> int
val key_len : t -> int

val append : t -> string -> int
(** Append a row with the given indexed key; returns its tid. *)

val key : t -> int -> string
(** Load the indexed key of a row (counted as an indirect load). *)

val loader : t -> int -> string
(** [loader t] is the [load_key] closure handed to indexes. *)

val loads : t -> int
val reset_loads : t -> unit

(** {2 Row liveness}

    Per-row live marks, maintained by callers that treat the table as
    the recovery source of truth (the shard supervisor marks rows as
    their index entries are applied; a rebuild replays exactly the live
    rows).  Rows start dead on {!append}.  Marks on distinct rows are
    safe from different domains (one byte per row, no shared
    read-modify-write), and the store is {e growth-stable}: marks live
    in fixed-size chunks that are appended but never moved, so a
    domain marking row [tid] concurrently with an {!append} that grows
    the table can never lose its mark — the supervised serving layer
    relies on this.  ({!append} itself is still single-writer: marks
    may race a grow, appends may not race each other.) *)

val mark_live : t -> int -> unit
val mark_dead : t -> int -> unit
val is_live : t -> int -> bool

val fold_live : t -> (int -> string -> 'a -> 'a) -> 'a -> 'a
(** Fold [f tid key acc] over the live rows in tid order. *)

val restore_row : t -> tid:int -> key:string -> unit
(** Rematerialise the row at [tid] with [key] and mark it live: the
    {!Ei_wal} recovery path, which replays records holding tids from a
    previous process where the matching {!append}s never ran.  Grows
    the table as needed; intervening gap rows stay dead with an empty
    key.  Single-writer, like {!append}. *)

val data_bytes : ?row_bytes:int -> t -> int
(** Size of the stored row data: [n * (key_len + row_bytes)]. *)
