(** In-memory row table: the database tuples indexes point into.

    A tuple identifier ([tid]) is the row's index in the table.  Compact
    index nodes store only tids and load keys from the table through
    {!loader}, modelling the paper's indirect key storage.  Every load is
    counted so benchmarks can report indirect-access costs. *)

type t

val create : ?initial_capacity:int -> key_len:int -> unit -> t

val length : t -> int
val key_len : t -> int

val append : t -> string -> int
(** Append a row with the given indexed key; returns its tid. *)

val key : t -> int -> string
(** Load the indexed key of a row (counted as an indirect load). *)

val loader : t -> int -> string
(** [loader t] is the [load_key] closure handed to indexes. *)

val loads : t -> int
val reset_loads : t -> unit

val data_bytes : ?row_bytes:int -> t -> int
(** Size of the stored row data: [n * (key_len + row_bytes)]. *)
