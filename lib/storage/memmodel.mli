(** Explicit node-size model mirroring the paper's packed C layouts.

    All "memory consumption" numbers in this repository come from these
    formulas rather than the OCaml heap, so compression ratios — the
    quantity the paper's claims are about — are preserved.  Conventions:
    8-byte words for pointers/tuple ids; a fixed per-node header;
    1-byte discriminating-bit entries for keys of at most 32 bytes. *)

val word : int
val node_header : int

val std_leaf_bytes : capacity:int -> key_len:int -> int
(** STX-style leaf: header, sibling pointers, [capacity] key+tid slots. *)

val gapped_leaf_bytes : capacity:int -> key_len:int -> int
(** Gapped (slotted) leaf, BS-tree style: a standard leaf plus one
    occupancy byte per slot; key/tid arrays stay at full capacity. *)

val inner_bytes : capacity:int -> key_len:int -> int
(** B+-tree inner node: separators plus child pointers. *)

val prefix_leaf_bytes : capacity:int -> key_len:int -> prefix_len:int -> int
(** Prefix-compressed leaf: shared prefix stored once, suffix slots. *)

val bits_entry_bytes : key_len:int -> int
val tree_entry_bytes : capacity:int -> int

val seqtree_bytes :
  capacity:int -> key_len:int -> levels:int -> tid_slots:int -> breathing:bool -> int
(** SeqTree compact leaf (§5): BlindiBits + BlindiTree + tuple-id array.
    Trees of at most 7 entries fit node padding and are charged 0. *)

val subtrie_bytes : capacity:int -> key_len:int -> int
(** SubTrie compact leaf: preorder bit and subtree-size arrays. *)

val stringtrie_bytes : capacity:int -> key_len:int -> int
(** String B-Trie compact leaf: per-node bit plus two child pointers
    (~3 B/key, §5.1). *)

val hot_node_header : int

val hot_node_bytes : entries:int -> discriminating_bits:int -> int
(** HOT-substitute trie node, calibrated to HOT's reported space. *)

val patricia_node_bytes : int
val skiplist_node_bytes : key_len:int -> height:int -> int

val art_node4_bytes : int
val art_node16_bytes : int
val art_node48_bytes : int
val art_node256_bytes : int
val art_leaf_bytes : key_len:int -> int
