(* In-memory row table: the database tuples that indexes point into.

   The table stores each row's indexed key (the bytes of the indexed
   column(s)).  A tuple identifier (tid) is the row's index in the table.
   Compact index nodes hold only tids and load keys from here, which is
   exactly the "indirect key storage" of the paper: every such access
   models the extra memory reference into the base table. *)

type t = {
  key_len : int;
  mutable keys : string array;
  mutable live : Bytes.t;
  (* one byte per row, '\001' = live.  Maintained by callers that treat
     the table as the recovery source of truth (the shard supervisor);
     rows start dead, so an append alone never resurrects into a
     rebuild.  One whole byte per row keeps marks from two domains on
     different rows race-free (no read-modify-write of shared bits). *)
  mutable n : int;
  mutable loads : int;  (* number of indirect key loads, for profiling *)
}

let create ?(initial_capacity = 1024) ~key_len () =
  let cap = max 1 initial_capacity in
  {
    key_len;
    keys = Array.make cap "";
    live = Bytes.make cap '\000';
    n = 0;
    loads = 0;
  }

let length t = t.n
let key_len t = t.key_len

let grow t =
  let cap = Array.length t.keys in
  let keys = Array.make (2 * cap) "" in
  Array.blit t.keys 0 keys 0 t.n;
  let live = Bytes.make (2 * cap) '\000' in
  Bytes.blit t.live 0 live 0 t.n;
  t.keys <- keys;
  t.live <- live

let append t key =
  assert (String.length key = t.key_len);
  if t.n = Array.length t.keys then grow t;
  t.keys.(t.n) <- key;
  Bytes.set t.live t.n '\000';
  t.n <- t.n + 1;
  t.n - 1

let key t tid =
  assert (tid >= 0 && tid < t.n);
  t.loads <- t.loads + 1;
  Array.unsafe_get t.keys tid

(* Loader closure handed to indexes with indirect key storage. *)
let loader t = key t

let loads t = t.loads
let reset_loads t = t.loads <- 0

(* --- Row liveness (recovery source of truth) ------------------------- *)

let mark_live t tid =
  assert (tid >= 0 && tid < t.n);
  Bytes.set t.live tid '\001'

let mark_dead t tid =
  assert (tid >= 0 && tid < t.n);
  Bytes.set t.live tid '\000'

let is_live t tid = tid >= 0 && tid < t.n && Char.equal (Bytes.get t.live tid) '\001'

let fold_live t f init =
  let acc = ref init in
  for tid = 0 to t.n - 1 do
    if Char.equal (Bytes.get t.live tid) '\001' then
      acc := f tid t.keys.(tid) !acc
  done;
  !acc

(* Size of the row data itself (excluding any index), for the dataset-size
   baselines of §6.3: row payloads are fixed-size. *)
let data_bytes ?(row_bytes = 0) t = t.n * (t.key_len + row_bytes)
