(* In-memory row table: the database tuples that indexes point into.

   The table stores each row's indexed key (the bytes of the indexed
   column(s)).  A tuple identifier (tid) is the row's index in the table.
   Compact index nodes hold only tids and load keys from here, which is
   exactly the "indirect key storage" of the paper: every such access
   models the extra memory reference into the base table. *)

(* Liveness is stored in fixed-size chunks that are appended and never
   moved: growth allocates new chunks and a longer chunk array but
   leaves every existing chunk object in place, so a mark racing a
   grow always lands in the byte the next reader (and the recovery
   rebuild) will consult.  The flat-Bytes alternative loses marks: a
   grow blits into a fresh buffer, and a mark landing in the old one
   afterwards vanishes. *)
let live_chunk_bits = 12
let live_chunk = 1 lsl live_chunk_bits (* 4096 rows per chunk *)

type t = {
  key_len : int;
  mutable keys : string array;
  mutable live : Bytes.t array;
  (* one byte per row, '\001' = live, chunked (see above).  Maintained
     by callers that treat the table as the recovery source of truth
     (the shard supervisor); rows start dead, so an append alone never
     resurrects into a rebuild.  One whole byte per row keeps marks
     from two domains on different rows race-free (no read-modify-write
     of shared bits). *)
  mutable n : int;
  mutable loads : int;  (* number of indirect key loads, for profiling *)
}

let live_chunks_for cap = (cap + live_chunk - 1) / live_chunk

let create ?(initial_capacity = 1024) ~key_len () =
  let cap = max 1 initial_capacity in
  {
    key_len;
    keys = Array.make cap "";
    live =
      Array.init (live_chunks_for cap) (fun _ -> Bytes.make live_chunk '\000');
    n = 0;
    loads = 0;
  }

let length t = t.n
let key_len t = t.key_len

let grow t =
  let cap = Array.length t.keys in
  let keys = Array.make (2 * cap) "" in
  Array.blit t.keys 0 keys 0 t.n;
  t.keys <- keys;
  (* Extend the chunk array by appending fresh chunks; existing chunk
     objects stay shared between the old and new arrays, so concurrent
     marks on already-appended rows are never lost. *)
  let have = Array.length t.live in
  let need = live_chunks_for (2 * cap) in
  if need > have then
    t.live <-
      Array.init need (fun c ->
          if c < have then t.live.(c) else Bytes.make live_chunk '\000')

let append t key =
  assert (String.length key = t.key_len);
  if t.n = Array.length t.keys then grow t;
  t.keys.(t.n) <- key;
  t.n <- t.n + 1;
  t.n - 1

let key t tid =
  assert (tid >= 0 && tid < t.n);
  t.loads <- t.loads + 1;
  Array.unsafe_get t.keys tid

(* Loader closure handed to indexes with indirect key storage. *)
let loader t = key t

let loads t = t.loads
let reset_loads t = t.loads <- 0

(* --- Row liveness (recovery source of truth) ------------------------- *)

(* A marker always reaches an existing chunk: [tid] was appended (so
   its chunk was allocated) before any caller could hold it, and
   chunks are never moved, so even a stale read of [t.live] indexes
   the same chunk object a fresh read would. *)
let live_byte t tid = (t.live.(tid lsr live_chunk_bits), tid land (live_chunk - 1))

let mark_live t tid =
  assert (tid >= 0 && tid < t.n);
  let chunk, off = live_byte t tid in
  Bytes.set chunk off '\001'

let mark_dead t tid =
  assert (tid >= 0 && tid < t.n);
  let chunk, off = live_byte t tid in
  Bytes.set chunk off '\000'

let is_live t tid =
  tid >= 0 && tid < t.n
  &&
  let chunk, off = live_byte t tid in
  Char.equal (Bytes.get chunk off) '\001'

let fold_live t f init =
  let acc = ref init in
  for tid = 0 to t.n - 1 do
    let chunk, off = live_byte t tid in
    if Char.equal (Bytes.get chunk off) '\001' then
      acc := f tid t.keys.(tid) !acc
  done;
  !acc

(* WAL recovery rematerialises rows at the tids the log recorded, in a
   fresh process where [append] never ran.  Single-writer (the
   recovering domain), like [append].  Gap rows (tids never mentioned
   by any surviving record) keep the empty key and stay dead, so they
   are invisible to [fold_live] and unreachable from any index. *)
let restore_row t ~tid ~key =
  assert (tid >= 0 && String.length key = t.key_len);
  while tid >= Array.length t.keys do
    grow t
  done;
  t.keys.(tid) <- key;
  if tid >= t.n then t.n <- tid + 1;
  mark_live t tid

(* Size of the row data itself (excluding any index), for the dataset-size
   baselines of §6.3: row payloads are fixed-size. *)
let data_bytes ?(row_bytes = 0) t = t.n * (t.key_len + row_bytes)
