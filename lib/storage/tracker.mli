(** Incremental memory accounting for index structures.

    Indexes report node allocations/frees; the elasticity algorithm reads
    the running total in O(1). *)

type t

val create : unit -> t
val add : t -> int -> unit
val sub : t -> int -> unit
val bytes : t -> int
val high_water : t -> int
val reset : t -> unit
