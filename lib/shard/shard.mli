(** Range-partitioned shard router: N {!Ei_harness.Index_ops.t}
    instances (any registry kind) behind one [Index_ops.t].

    Point operations route to the owning shard ({!Shard_map}), scans
    continue into successive shards with the same start key (the
    partition is monotone in key order), aggregates sum over the parts.
    The router adds no synchronisation — see {!Serve} for the
    domain-per-shard executor. *)

type t

val create : Ei_harness.Index_ops.t array -> t
(** [create parts] routes over [parts] in shard order.  All parts must
    share one [key_len]; requires at least one part. *)

val shard_count : t -> int
val parts : t -> Ei_harness.Index_ops.t array
val key_len : t -> int

val shard_of_key : t -> string -> int
val part_for : t -> string -> Ei_harness.Index_ops.t

val memory_bytes : t -> int
val count : t -> int

val set_size_bound : t -> int -> unit
(** Split a global bound evenly across the parts (static fallback; the
    {!Serve} coordinator's demand-weighted split supersedes this). *)

val index_ops : ?name:string -> t -> Ei_harness.Index_ops.t
(** The router as a uniform index ([backend = B_composite]); single
    domain — {!Ei_check.Check.run} recurses into every part. *)
