(* Range-partitioned shard router.

   Composes N {!Ei_harness.Index_ops.t} instances (any registry kind)
   behind one [Index_ops.t]: point operations route to the owning shard
   via {!Shard_map}, scans walk shards in ascending order (partitioning
   is monotone in key order, so the same start key is correct in every
   successive shard), and aggregates sum over the parts.

   The router itself adds no synchronisation: used directly it is a
   single-domain composition; {!Serve} puts each part behind its own
   domain and request queue for parallel traffic. *)

module Index_ops = Ei_harness.Index_ops

type t = {
  map : Shard_map.t;
  (* slot [i] is swapped only by shard [i]'s recovery, under that
     shard's [qlock] (see {!Serve.recover}) *)
  parts : Index_ops.t array [@ei.guarded_by "shards.(i).qlock"];
}

let create parts =
  assert (Array.length parts > 0);
  let key_len = parts.(0).Index_ops.key_len in
  Array.iter (fun p -> assert (p.Index_ops.key_len = key_len)) parts;
  { map = Shard_map.create ~key_len ~shards:(Array.length parts); parts }

let shard_count t = Array.length t.parts
let parts t = t.parts
let key_len t = Shard_map.key_len t.map
let shard_of_key t key = Shard_map.shard_of_key t.map key
let part_for t key = t.parts.(shard_of_key t key)

(* Cross-shard scan: drain the owning shard, then continue into the
   shards above it until [n] entries are visited or the fleet is
   exhausted. *)
let scan_parts t start n per_part =
  let total = ref 0 in
  let s = ref (shard_of_key t start) in
  while !s < Array.length t.parts && !total < n do
    total := !total + per_part t.parts.(!s) (n - !total);
    incr s
  done;
  !total

let memory_bytes t =
  Array.fold_left (fun a p -> a + p.Index_ops.memory_bytes ()) 0 t.parts

let count t = Array.fold_left (fun a p -> a + p.Index_ops.count ()) 0 t.parts

(* Even split of a global bound (the static fallback; {!Serve}'s
   coordinator replaces this with a demand-weighted split). *)
let set_size_bound t bound =
  let n = Array.length t.parts in
  let per = max 1 (bound / n) in
  Array.iter (fun p -> p.Index_ops.set_size_bound per) t.parts

let info t =
  let parts_info =
    Array.to_list t.parts
    |> List.filter_map (fun p ->
           match p.Index_ops.info () with "" -> None | s -> Some s)
  in
  match parts_info with
  | [] -> Printf.sprintf "%d shards" (Array.length t.parts)
  | l ->
    Printf.sprintf "%d shards [%s]" (Array.length t.parts)
      (String.concat " | " l)

let index_ops ?(name = "sharded") t =
  {
    Index_ops.name;
    backend = Index_ops.B_composite t.parts;
    key_len = key_len t;
    insert = (fun k tid -> (part_for t k).Index_ops.insert k tid);
    remove = (fun k -> (part_for t k).Index_ops.remove k);
    update = (fun k tid -> (part_for t k).Index_ops.update k tid);
    find = (fun k -> (part_for t k).Index_ops.find k);
    multi_find =
      (* Bucket the batch by owning shard so each part sees one grouped
         call (group descent only overlaps fetches within one tree);
         results scatter back to the caller's slots. *)
      (fun keys ->
        let nparts = Array.length t.parts in
        let out = Array.make (Array.length keys) None in
        let buckets = Array.make nparts [] in
        Array.iteri
          (fun i k ->
            let s = shard_of_key t k in
            buckets.(s) <- i :: buckets.(s))
          keys;
        Array.iteri
          (fun s rev ->
            match rev with
            | [] -> ()
            | rev ->
              let idxs = Array.of_list (List.rev rev) in
              let sub = Array.map (fun i -> keys.(i)) idxs in
              let r = t.parts.(s).Index_ops.multi_find sub in
              Array.iteri (fun j i -> out.(i) <- r.(j)) idxs)
          buckets;
        out);
    scan =
      (fun start n ->
        scan_parts t start n (fun p left -> p.Index_ops.scan start left));
    scan_keys =
      (fun start n visit ->
        scan_parts t start n (fun p left ->
            p.Index_ops.scan_keys start left visit));
    memory_bytes = (fun () -> memory_bytes t);
    count = (fun () -> count t);
    set_size_bound = set_size_bound t;
    info = (fun () -> info t);
  }
