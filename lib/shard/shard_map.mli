(** Range partitioning by key prefix.

    [shard_of_key] is monotone in lexicographic key order (it maps the
    key's first 16 bits through [prefix * shards / 65536]), so each
    shard owns one contiguous key range and cross-shard scans visit
    shards in ascending order with an unchanged start key. *)

type t

val create : key_len:int -> shards:int -> t
(** Requires [0 <= key_len], [1 <= shards <= 65536]. *)

val key_len : t -> int
val shards : t -> int

val shard_of_key : t -> string -> int
(** The owning shard, in [0, shards); monotone in key order. *)
