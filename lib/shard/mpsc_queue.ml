(* Bounded multi-producer single-consumer queue (Mutex + Condition).

   The per-shard request queue of the serving layer: clients push
   sub-batches, the shard's domain drains them in batches.  Producers
   block while the queue is full (backpressure instead of unbounded
   growth) and the consumer blocks while it is empty — blocking, not
   spinning, because shard domains share cores with their clients and a
   waiting party must get off the CPU.

   [close] is race-safe against producers blocked on a full queue: it
   broadcasts both conditions under the lock, and a woken producer
   re-checks [closed] before re-checking fullness, so a blocked [push]
   raises {!Closed} promptly instead of waiting for space that will
   never appear (the consumer may already be gone).

   Optional fault sites ([?fault_prefix]) make the queue a chaos
   surface: [<prefix>.refuse] makes a push fail as if the queue were
   closed, [<prefix>.delay] stalls it, [<prefix>.drop] loses the
   element after admission — message loss the caller's timeout
   machinery must absorb. *)

module Invariant = Ei_util.Invariant
module Fault = Ei_fault.Fault

exception Closed

type faults = {
  f_drop : Fault.site;
  f_delay : Fault.site;
  f_refuse : Fault.site;
}

(* Every mutable datum of the queue — ring slots included — is read and
   written under [lock] only, hence the type-level guard. *)
type 'a t = {
  buf : 'a option array;  (* ring; [None] marks a free slot *)
  capacity : int;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
  mutable closed : bool;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  faults : faults option;
}
[@@ei.guarded_by "lock"]

let create ?fault_prefix ~capacity () =
  assert (capacity > 0);
  {
    buf = Array.make capacity None;
    capacity;
    head = 0;
    len = 0;
    closed = false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    faults =
      Option.map
        (fun p ->
          {
            f_drop = Fault.site (p ^ ".drop");
            f_delay = Fault.site (p ^ ".delay");
            f_refuse = Fault.site (p ^ ".refuse");
          })
        fault_prefix;
  }

(* [inject:false] bypasses the fault sites: the retry/recovery path of a
   supervisor must not re-draw the fault streams, or first-attempt
   schedules would stop being deterministic.

   Draw protocol (shared with {!draw_faults}): refuse first — a refused
   push draws nothing else, exactly like a real [Closed] retry path —
   then delay and drop together, {e before} admission.  Drawing drop up
   front keeps the per-site call counts a pure function of the fault
   streams alone: whether the queue happens to be closed (a recovery
   racing this push) must not add or skip a draw, or equal-seed runs
   would diverge on schedule.  A drop decided here and refused
   admission is indistinguishable from one applied after it. *)
let draw t =
  match t.faults with
  | Some f when Fault.enabled () ->
    if Fault.fire f.f_refuse then `Refuse
    else begin
      let delayed = Fault.fire f.f_delay in
      let dropped = Fault.fire f.f_drop in
      if delayed then Unix.sleepf 0.001;
      if dropped then `Drop else `Pass
    end
  | _ -> `Pass

let draw_faults t = ignore (draw t)

let push ?(inject = true) t x =
  let drawn = if inject then draw t else `Pass in
  (match drawn with `Refuse -> raise Closed | `Drop | `Pass -> ());
  Mutex.lock t.lock;
  let rec admitted () =
    if t.closed then false
    else if t.len = t.capacity then begin
      Condition.wait t.not_full t.lock;
      admitted ()
    end
    else true
  in
  let ok = admitted () in
  let dropped = match drawn with `Drop -> true | `Refuse | `Pass -> false in
  if ok && not dropped then begin
    t.buf.((t.head + t.len) mod t.capacity) <- Some x;
    t.len <- t.len + 1;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.lock;
  if not ok then raise Closed

let pop_batch t ~max:m =
  assert (m > 0);
  Mutex.lock t.lock;
  let rec available () =
    if t.len > 0 then true
    else if t.closed then false
    else begin
      Condition.wait t.not_empty t.lock;
      available ()
    end
  in
  let out =
    (* Release the lock even if the ring invariant trips: a leaked lock
       turns a crash into a deadlock for every later producer. *)
    try
      if not (available ()) then []
      else begin
        let k = if t.len < m then t.len else m in
        let rec take i acc =
          if i = k then List.rev acc
          else begin
            let x =
              match t.buf.(t.head) with
              | Some x -> x
              | None ->
                Invariant.impossible "Mpsc_queue: empty slot inside ring"
            in
            t.buf.(t.head) <- None;
            t.head <- (t.head + 1) mod t.capacity;
            take (i + 1) (x :: acc)
          end
        in
        let xs = take 0 [] in
        t.len <- t.len - k;
        Condition.broadcast t.not_full;
        xs
      end
    with e ->
      Mutex.unlock t.lock;
      raise e
  in
  Mutex.unlock t.lock;
  out

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock

let is_closed t =
  Mutex.lock t.lock;
  let c = t.closed in
  Mutex.unlock t.lock;
  c

let length t =
  Mutex.lock t.lock;
  let n = t.len in
  Mutex.unlock t.lock;
  n
