(* Bounded multi-producer single-consumer queue (Mutex + Condition).

   The per-shard request queue of the serving layer: clients push
   sub-batches, the shard's domain drains them in batches.  Producers
   block while the queue is full (backpressure instead of unbounded
   growth) and the consumer blocks while it is empty — blocking, not
   spinning, because shard domains share cores with their clients and a
   waiting party must get off the CPU. *)

module Invariant = Ei_util.Invariant

type 'a t = {
  buf : 'a option array;  (* ring; [None] marks a free slot *)
  capacity : int;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
  mutable closed : bool;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  assert (capacity > 0);
  {
    buf = Array.make capacity None;
    capacity;
    head = 0;
    len = 0;
    closed = false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let push t x =
  Mutex.lock t.lock;
  let rec admitted () =
    if t.closed then false
    else if t.len = t.capacity then begin
      Condition.wait t.not_full t.lock;
      admitted ()
    end
    else true
  in
  let ok = admitted () in
  if ok then begin
    t.buf.((t.head + t.len) mod t.capacity) <- Some x;
    t.len <- t.len + 1;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.lock;
  ok

let pop_batch t ~max:m =
  assert (m > 0);
  Mutex.lock t.lock;
  let rec available () =
    if t.len > 0 then true
    else if t.closed then false
    else begin
      Condition.wait t.not_empty t.lock;
      available ()
    end
  in
  let out =
    if not (available ()) then []
    else begin
      let k = if t.len < m then t.len else m in
      let rec take i acc =
        if i = k then List.rev acc
        else begin
          let x =
            match t.buf.(t.head) with
            | Some x -> x
            | None -> Invariant.impossible "Mpsc_queue: empty slot inside ring"
          in
          t.buf.(t.head) <- None;
          t.head <- (t.head + 1) mod t.capacity;
          take (i + 1) (x :: acc)
        end
      in
      let xs = take 0 [] in
      t.len <- t.len - k;
      Condition.broadcast t.not_full;
      xs
    end
  in
  Mutex.unlock t.lock;
  out

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock

let length t =
  Mutex.lock t.lock;
  let n = t.len in
  Mutex.unlock t.lock;
  n
