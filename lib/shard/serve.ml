(* Domain-per-shard serving layer with a global elastic memory
   coordinator and a self-healing shard supervisor.

   Each shard of a {!Shard.t} is owned by exactly one domain, which
   drains a bounded MPSC request queue in batches and applies the
   operations to its part — exclusive ownership makes every sequential
   registry index domain-safe behind the queue, with no locks on the
   index itself.  Clients partition an operation batch by shard
   ({!exec}), enqueue one sub-batch per shard, and block on a shared
   waiter until every sub-batch has been applied.  Scans that exhaust a
   shard continue into the next one in follow-up rounds (the partition
   is monotone in key order).

   The coordinator lifts the paper's elasticity policy from one tree to
   the fleet: a background domain periodically reads each shard's
   published size (shard domains store it into an [Atomic] after every
   drained batch) and re-splits one global soft bound across the shards
   — [demand_weight] of the budget proportionally to current sizes, the
   rest evenly, floored at [min_fraction] of the even share — delivering
   the new per-shard bounds as control messages through the same queues.
   Hot shards keep more standard leaves; cold shards compact first.

   The supervisor (optional) makes the fleet self-healing.  A shard
   domain that dies — a crash escaping the batch loop, or structural
   poison surfacing as [Invariant.Broken] — parks its exception in a
   per-shard slot; a heartbeat counter bumped after every drained batch
   is the backstop for a wedged domain that stops making progress
   without dying.  The supervisor domain polls both signals and runs
   the recovery sequence: quarantine the shard (reads degrade to direct
   single-threaded access under the quarantine lock; writes retry with
   exponential backoff until recovery or their deadline), close and
   drain the dead queue (failing the pending sub-batches so clients
   observe [Timed_out] rather than hanging), rebuild the part from the
   {!Ei_storage.Table} row table — the source of truth for acknowledged
   writes: shard domains maintain per-row liveness as they apply —
   re-spawn the domain on a fresh queue, and re-admit the shard.  A
   per-operation generation fence keeps an abandoned wedged domain from
   applying or acknowledging anything if it ever wakes: it stops within
   one op, never touches the replacement part (each domain captures its
   part at spawn), and completes — without applying — any waiters it
   raced away from the supervisor's drain.

   Fault injection: [start ~fault_prefix:p] arms {!Ei_fault.Fault}
   sites [p.crash.shard<i>] (domain dies mid-batch),
   [p.poison.shard<i>] (domain raises [Invariant.Broken]) and the
   queue sites [p.queue.shard<i>.{drop,delay,refuse}].  All are inert
   until a fault plan is configured. *)

module Index_ops = Ei_harness.Index_ops
module Fault = Ei_fault.Fault
module Table = Ei_storage.Table
module Invariant = Ei_util.Invariant
module Metrics = Ei_obs.Metrics
module Trace = Ei_obs.Trace
module Ctx = Ei_obs.Ctx
module Flight = Ei_obs.Flight
module Clock = Ei_util.Bench_clock
module Wal = Ei_wal.Wal

(* --- Observability (shared across fleets) ----------------------------- *)

let h_batch = Metrics.histogram "serve.batch_ns"
let h_queue_depth = Metrics.histogram "serve.queue_depth"
let c_recoveries = Metrics.counter "serve.recoveries"

(* Per-shard op-mix counters for the telemetry timeline: interned lazily
   per shard index (cold, on fleet start), bumped once per applied op.
   The scan counter against the read/write split is what lets a
   timeline frame reconstruct each shard's workload mix. *)
type shard_mix = {
  mx_reads : Metrics.counter;
  mx_writes : Metrics.counter;
  mx_scans : Metrics.counter;
}

let shard_mix i =
  let n k = Printf.sprintf "serve.shard%d.%s" i k in
  {
    mx_reads = Metrics.counter (n "reads");
    mx_writes = Metrics.counter (n "writes");
    mx_scans = Metrics.counter (n "scans");
  }

let g_shard_queue i = Metrics.gauge (Printf.sprintf "serve.shard%d.queue_depth" i)

(* One span per drained batch, on the shard domain's own track. *)
let ev_batch = Trace.define ~span:true ~arg1:"ops" ~cat:"serve" "serve.batch"

(* Causal request flow: [serve.request] covers one client [exec] on the
   submitting domain and roots the trace; [serve.sub] covers one
   sub-batch's application on its shard domain as a child span; the
   [serve.ack] instant marks results scattered back.  Tree descents and
   WAL commits nested under a sub inherit its ambient {!Ctx}. *)
let ev_request =
  Trace.define ~span:true ~arg1:"ops" ~cat:"serve" "serve.request"

let ev_sub = Trace.define ~span:true ~arg1:"ops" ~cat:"serve" "serve.sub"
let ev_ack = Trace.define ~cat:"serve" ~arg0:"ops" "serve.ack"

let ev_quarantine =
  Trace.define ~cat:"serve" ~arg0:"shard" "serve.quarantine"

let ev_rebuild =
  Trace.define ~cat:"serve" ~arg0:"shard" ~arg1:"rows" "serve.rebuild"

let ev_readmit = Trace.define ~cat:"serve" ~arg0:"shard" "serve.readmit"

type op =
  | Insert of string * int
  | Remove of string
  | Update of string * int
  | Find of string
  | Scan of string * int

type outcome = Applied of int | Rejected | Timed_out

exception Crashed of string

let () =
  Printexc.register_printer (function
    | Crashed site -> Some ("Serve.Crashed: " ^ site)
    | _ -> None)

(* In-flight results are ints — Insert/Remove/Update 1 = applied, 0 =
   not; Find the tid or -1; Scan the visited count — with two sentinel
   codes no real result can collide with (tids are non-negative row
   ids): a slot still holding [pending_code] when the client's wait
   ends was never applied ([Timed_out]); [rejected_code] marks a
   transient injected fault ([Rejected]). *)
let pending_code = min_int
let rejected_code = min_int + 1

type waiter = {
  wlock : Mutex.t;
  wcond : Condition.t;
  (* sub-batches not yet applied *)
  mutable pending : int [@ei.guarded_by "wlock"];
}

type sub = {
  (* [sops] and [dest] are filled by the submitting client before the
     sub-batch is enqueued and never written afterwards; the queue's
     lock publishes them to the shard domain. *)
  sops : op array [@ei.guarded_by "queue handoff (frozen after enqueue)"];
  dest : int array [@ei.guarded_by "queue handoff (frozen after enqueue)"];
  (* result slots are written by the shard domain and read by the client
     only after [waiter.pending] reaches zero under [wlock] *)
  results : int array [@ei.guarded_by "waiter.wlock"];
  collect : (string -> unit) option;  (* scan_keys sink *)
  waiter : waiter;
  (* span context frozen at submit: the root trace id and the span to
     parent the shard-side work under (both 0 when tracing is off) *)
  tctx : int;
  tspan : int;
}

type msg = Work of sub | Set_bound of int

type coordinator_config = {
  global_bound : int;  (* bytes, split across the fleet *)
  interval_s : float;  (* seconds between rebalances *)
  demand_weight : float;  (* fraction of budget split by current size *)
  min_fraction : float;  (* per-shard floor, as fraction of even share *)
}

let default_coordinator ~global_bound =
  {
    global_bound;
    interval_s = 0.05;
    demand_weight = 0.5;
    min_fraction = 0.5;
  }

type supervisor_config = {
  table : Table.t;  (* row table: rebuild source of truth *)
  rebuild : int -> Index_ops.t;  (* fresh, empty part for shard [i] *)
  poll_interval_s : float;  (* seconds between supervisor passes *)
  stall_timeout_s : float;  (* heartbeat silence that means wedged *)
}

let default_supervisor ~table ~rebuild =
  { table; rebuild; poll_interval_s = 0.002; stall_timeout_s = 1.0 }

(* Shard status: running (clients enqueue) or quarantined (reads go
   direct under [qlock], writes back off until recovery). *)
let st_running = 0
let st_quarantined = 1

type shard_faults = { crash : Fault.site; poison : Fault.site }

type shard_state = {
  queue : msg Mpsc_queue.t Atomic.t;  (* swapped at every recovery *)
  status : int Atomic.t;
  gen : int Atomic.t;  (* bumped per recovery; fences out zombies *)
  heartbeat : int Atomic.t;  (* bumped per drained batch *)
  failed : (int * exn) option Atomic.t;
  (* failure parked by a dying domain, tagged with its generation: the
     supervisor acts only on current-generation failures *)
  qlock : Mutex.t;  (* quarantined direct access vs. rebuild *)
  mix : shard_mix;  (* per-shard op-mix counters (timeline input) *)
  qdepth : Metrics.gauge;  (* queue depth at last batch drain *)
  faults : shard_faults option;
  wal_faults : Wal.faults option;
  (* the WAL writer the shard domain currently owns (captured at spawn,
     like the part); this slot is supervisor / stop only, like [domain] *)
  mutable wal : Wal.writer option [@ei.single_domain];
  (* supervisor / stop only *)
  mutable domain : unit Domain.t option [@ei.single_domain];
  (* wedged, never joined; supervisor-only like [domain] *)
  mutable abandoned : unit Domain.t list [@ei.single_domain];
}

type recovery = {
  r_shard : int;
  r_cause : string;  (* printed exception, or the wedge diagnosis *)
  r_rows : int;  (* live rows reinserted from the table *)
}

type t = {
  router : Shard.t;
  shards : shard_state array [@ei.guarded_by "frozen after create"];
  sizes : int Atomic.t array;  (* published by shard domains *)
  batches : int Atomic.t;  (* sub-batches applied, fleet-wide *)
  rebalances : int Atomic.t;
  recoveries_n : int Atomic.t;
  coordinator : coordinator_config option;
  supervisor : supervisor_config option;
  timeout_s : float option;  (* default exec deadline *)
  batch : int;
  queue_capacity : int;
  fault_prefix : string option;
  wal_cfg : Wal.config option;
  wal_restore : (tid:int -> key:string -> unit) option;
  wal_boot : (int * Wal.recovery) list;  (* start-time recovery reports *)
  stopping : bool Atomic.t;
  log_lock : Mutex.t;
  (* newest first *)
  mutable log : recovery list [@ei.guarded_by "log_lock"];
  (* coordinator + supervisor; written by create/stop only *)
  mutable aux : unit Domain.t list [@ei.single_domain];
}

let now () = Unix.gettimeofday ()

(* --- Shard domains --------------------------------------------------- *)

let apply (ix : Index_ops.t) collect op =
  match op with
  | Insert (k, tid) -> if ix.Index_ops.insert k tid then 1 else 0
  | Remove k -> if ix.Index_ops.remove k then 1 else 0
  | Update (k, tid) -> if ix.Index_ops.update k tid then 1 else 0
  | Find k -> ( match ix.Index_ops.find k with Some tid -> tid | None -> -1)
  | Scan (k, n) -> (
    match collect with
    | Some visit -> ix.Index_ops.scan_keys k n visit
    | None -> ix.Index_ops.scan k n)

(* Supervised apply additionally maintains per-row liveness in the row
   table, keeping it the source of truth a recovery rebuilds from.  An
   op marks only after the index accepted it, so a row is never live
   without having been applied; removes and updates look the old tid up
   first because the index is the only map from key to tid. *)
let apply_logged table (ix : Index_ops.t) collect op =
  match op with
  | Insert (k, tid) ->
    if ix.Index_ops.insert k tid then begin
      Table.mark_live table tid;
      1
    end
    else 0
  | Remove k ->
    let prev = ix.Index_ops.find k in
    if ix.Index_ops.remove k then begin
      (match prev with
      | Some tid -> Table.mark_dead table tid
      | None -> ());
      1
    end
    else 0
  | Update (k, tid) ->
    let prev = ix.Index_ops.find k in
    if ix.Index_ops.update k tid then begin
      (match prev with
      | Some old when old <> tid -> Table.mark_dead table old
      | Some _ | None -> ());
      Table.mark_live table tid;
      1
    end
    else 0
  | Find _ | Scan _ -> apply ix collect op

let complete w =
  Mutex.lock w.wlock;
  w.pending <- w.pending - 1;
  if w.pending = 0 then Condition.signal w.wcond;
  Mutex.unlock w.wlock

(* Park a failure for the supervisor, tagged with the dying domain's
   generation.  Same-or-newer parked failures are never overwritten: an
   abandoned zombie dying late can neither trigger a spurious recovery
   of its healthy replacement nor clobber the replacement's own parked
   failure.  (The supervisor clears stale-generation parks.) *)
let yp_park = Fault.site "serve.yield.park"

let rec park st ~gen e =
  match Atomic.get st.failed with
  | Some (g, _) when g >= gen -> ()
  | cur ->
    if not (Atomic.compare_and_set st.failed cur (Some (gen, e))) then begin
      (* Preemption point on the CAS-retry edge so the schedule
         explorer can interleave two domains racing to park. *)
      Fault.point yp_park;
      park st ~gen e
    end

exception Stale_generation

(* Apply one sub-batch.  [part] is this domain's own part, captured
   once at spawn: a domain must never re-read [Shard.parts] — after a
   recovery swaps in a fresh part, an abandoned zombie re-reading the
   array would mutate its single-owner replacement concurrently with
   the new domain.  The generation fence is re-checked before every
   operation, so a wedged domain that wakes mid-batch stops applying
   (and stops drawing fault sites) within one operation.

   Per operation: fence, then draw the crash and poison sites (either
   escapes the loop and kills the domain — the crash as a distinct
   exception, the poison as [Invariant.Broken], i.e. the signature of
   real structural corruption); then apply, absorbing a transient
   {!Fault.Injected} from the part itself as a rejected op. *)
let yp_op = Fault.site "serve.yield.op"
let yp_submit = Fault.site "serve.yield.submit"
let yp_rebuild = Fault.site "serve.yield.rebuild"

let shard_apply t i ~gen (st : shard_state) part ~wal ~defer sub =
  let n = Array.length sub.sops in
  (* Re-root the client's span context on this shard domain: everything
     the apply emits below — grouped descents, elastic conversions, the
     batch's WAL commit — carries the request's trace id.  The op-mix
     counters feed the telemetry timeline's per-shard frames. *)
  let tsub = Trace.start () in
  if tsub > 0 && sub.tctx <> 0 then
    Ctx.set_child ~trace:sub.tctx ~parent:sub.tspan;
  if Metrics.enabled () then
    Array.iter
      (function
        | Find _ -> Metrics.incr st.mix.mx_reads
        | Scan _ -> Metrics.incr st.mix.mx_scans
        | Insert _ | Remove _ | Update _ -> Metrics.incr st.mix.mx_writes)
      sub.sops;
  (* With a WAL, outcomes are group-committed: every result is deferred
     into [defer] and scattered to its slot only after [Wal.commit]
     succeeds at the batch boundary, so no outcome — not even one read
     by a client whose deadline expired mid-batch — is observable
     before the batch is durable.  Without a WAL the deferral is one
     [None] branch per result (the append-site cost of durability
     off). *)
  let put s v =
    match defer with
    | None -> sub.results.(s) <- v
    | Some buf -> buf := (sub.results, s, v) :: !buf
  in
  (* An accepted mutation is framed into the WAL buffer right after the
     index applied it; rejected or no-op outcomes (r <> 1) log nothing,
     so replay re-applies exactly the accepted writes.  [Wal.log_*]
     raises [Died] on a fenced writer, killing the batch like any other
     domain death. *)
  let log_write j r =
    match wal with
    | None -> ()
    | Some w ->
      if r = 1 then (
        match sub.sops.(j) with
        | Insert (k, tid) -> Wal.log_insert w k tid
        | Remove k -> Wal.log_remove w k
        | Update (k, tid) -> Wal.log_update w k tid
        | Find _ | Scan _ -> ())
  in
  let apply_one j =
    let r =
      try
        match t.supervisor with
        | Some scfg -> apply_logged scfg.table part sub.collect sub.sops.(j)
        | None -> apply part sub.collect sub.sops.(j)
      with Fault.Injected _ -> rejected_code
    in
    log_write j r;
    put sub.dest.(j) r
  in
  (* Runs of consecutive point reads are deferred and flushed as one
     grouped [multi_find], stable-sorted by key first so the group
     descent shares upper-level nodes (sorted neighbours take the same
     root-to-leaf path prefix).  Only reads are ever reordered, and
     only with other reads of the same run — a read never crosses a
     write in either direction, so each read still observes exactly
     the writes that preceded it in submission order.  Acks stay
     order-correct because results are slot-addressed: every op
     carries its client slot in [dest] (frozen before enqueue), each
     result is scattered to its own slot, and the waiter completes
     only after the whole sub-batch — clients never observe the
     in-batch application order, only the filled slots. *)
  let run = ref [] in
  let run_len = ref 0 in
  let flush () =
    (match !run with
    | [] -> ()
    | [ j ] -> apply_one j
    | rev ->
      let key_at j =
        match sub.sops.(j) with
        | Find k -> k
        | _ -> Ei_util.Invariant.impossible "serve: non-read in read run"
      in
      (* Sort by a 63-bit immediate prefix of each key (precomputed
         once per element), so almost every comparison is an int
         compare; only prefix ties pay the full key comparison. *)
      let tagged = Array.make !run_len (0, 0) in
      let l = ref rev in
      for x = !run_len - 1 downto 0 do
        (match !l with
        | j :: tl ->
          tagged.(x) <- (Ei_util.Key.sort_prefix (key_at j), j);
          l := tl
        | [] -> Ei_util.Invariant.impossible "serve: read-run length drift")
      done;
      Array.stable_sort
        (fun ((pa : int), a) ((pb : int), b) ->
          if pa = pb then Ei_util.Key.compare_fast (key_at a) (key_at b)
          else Int.compare pa pb)
        tagged;
      let keys = Array.map (fun (_, j) -> key_at j) tagged in
      (match part.Index_ops.multi_find keys with
      | rs ->
        Array.iteri
          (fun x (_, j) ->
            put sub.dest.(j)
              (match rs.(x) with Some tid -> tid | None -> -1))
          tagged
      | exception Fault.Injected _ ->
        (* The grouped call cannot tell which keys it served before
           the injected fault, so the run falls back to per-key
           applies, each absorbing its own draw as a rejected op. *)
        Array.iter (fun (_, j) -> apply_one j) tagged));
    run := [];
    run_len := 0
  in
  (try
     for j = 0 to n - 1 do
       (* Preemption point for the ei_sim schedule explorer: per applied
          operation, so a perturbed run can stretch the window between a
          client's submission and the shard's apply.  Inert in production
          (one atomic load). *)
       Fault.point yp_op;
       if Atomic.get st.gen <> gen then raise Stale_generation;
       (match st.faults with
       | Some f ->
         if Fault.fire f.crash then raise (Crashed (Fault.name f.crash));
         if Fault.fire f.poison then
           Invariant.brokenf "Serve: injected poison at shard %d" i
       | None -> ());
       match sub.sops.(j) with
       | Find _ ->
         run := j :: !run;
         incr run_len
       | Insert _ | Remove _ | Update _ | Scan _ ->
         flush ();
         apply_one j
     done
   with e ->
     (* Dying (crash / poison / stale generation) mid-batch: deferred
        reads were never applied — their slots keep the pending
        sentinel and the client observes [Timed_out], exactly as for
        the ops after the death point.  The sub span still closes so
        the flow view shows where the request died. *)
     run := [];
     run_len := 0;
     Trace.span ev_sub ~start_ns:tsub n;
     raise e);
  match flush () with
  | () -> Trace.span ev_sub ~start_ns:tsub n
  | exception e ->
    Trace.span ev_sub ~start_ns:tsub n;
    raise e

let shard_loop t i ~gen ?wal q =
  let st = t.shards.(i) in
  let part = (Shard.parts t.router).(i) in
  (* Complete the waiters of popped-but-unapplied work: the slots stay
     at the pending sentinel, so clients observe [Timed_out] instead of
     hanging on messages a stale domain will never apply (with no
     deadline, an uncompleted waiter would block its client forever). *)
  let fail_popped msgs =
    List.iter
      (function Work sub -> complete sub.waiter | Set_bound _ -> ())
      msgs
  in
  let rec loop () =
    match Mpsc_queue.pop_batch q ~max:t.batch with
    | [] -> ()  (* closed and drained: the domain exits *)
    | msgs ->
      (* Generation fence: a wedged domain the supervisor abandoned and
         replaced must not apply or acknowledge anything if it wakes.
         Messages it raced away from the supervisor's [drain_and_fail]
         are failed here, exactly as the supervisor would have. *)
      if Atomic.get st.gen <> gen then fail_popped msgs
      else begin
        (* Clock read gated on the master switches so the disabled-path
           cost of the batch span is one or two atomic loads. *)
        let t0 =
          if Metrics.enabled () || Trace.enabled () then Clock.now_ns ()
          else 0
        in
        if t0 <> 0 then begin
          let depth = List.length msgs + Mpsc_queue.length q in
          Metrics.observe h_queue_depth depth;
          Metrics.set_gauge st.qdepth depth
        end;
        let finish_batch () =
          (* Publish the size the coordinator rebalances from.  Every
             registry index tracks its size in O(1); the elastic OLC
             tree's tracker is additionally safe under concurrent
             mutation. *)
          Atomic.set t.sizes.(i) (part.Index_ops.memory_bytes ());
          Atomic.incr st.heartbeat;
          ignore (Atomic.fetch_and_add t.batches (List.length msgs));
          if t0 <> 0 then begin
            Metrics.observe h_batch (Clock.now_ns () - t0);
            (* The batch span belongs to no single request: drop the
               last sub's ambient context before emitting it. *)
            Ctx.clear ();
            Trace.span ev_batch ~start_ns:t0 (List.length msgs)
          end;
          loop ()
        in
        match wal with
        | None ->
          let rec process = function
            | [] -> finish_batch ()
            | Set_bound b :: rest ->
              part.Index_ops.set_size_bound b;
              process rest
            | Work sub :: rest -> (
              match shard_apply t i ~gen st part ~wal:None ~defer:None sub with
              | () ->
                complete sub.waiter;
                process rest
              | exception Stale_generation ->
                (* Abandoned mid-batch: stop without parking — the parked
                   slot belongs to the replacement's world — and fail
                   whatever was popped but not applied. *)
                complete sub.waiter;
                fail_popped rest
              | exception e ->
                (* Dying mid-sub: park the failure before waking the
                   client — a client that observed the timeout must
                   also observe the fleet as unhealthy until recovery
                   completes — then let the exception reach the
                   supervisor.  Applied slots stand; untouched slots
                   read as timed out. *)
                park st ~gen e;
                complete sub.waiter;
                raise e)
          in
          process msgs
        | Some w ->
          (* Group commit: results and acks for the whole drained batch
             are held back until one [Wal.commit] at the end has made
             every accepted mutation durable — ack ⇒ framed + fsynced.
             If the commit (or anything before it) dies, the deferred
             results are discarded: slots keep the pending sentinel,
             clients observe [Timed_out], and the supervisor rebuilds
             the shard from disk — acknowledged and durable stay the
             same set. *)
          let defer = ref [] in
          let acked = ref [] in
          let release_acks () = List.iter complete (List.rev !acked) in
          let rec process_wal = function
            | [] -> (
              match Wal.commit w ~part with
              | () ->
                List.iter
                  (fun (res, s, v) -> res.(s) <- v)
                  (List.rev !defer);
                release_acks ();
                finish_batch ()
              | exception e ->
                (* The batch is applied in memory but not durable: wake
                   the waiters with their slots untouched (Timed_out)
                   and let the supervisor replace this part with the
                   recovered-from-disk one. *)
                Flight.trigger ~reason:"wal-commit-failure"
                  ~detail:
                    (Printf.sprintf "shard %d: %s" i (Printexc.to_string e));
                park st ~gen e;
                release_acks ();
                raise e)
            | Set_bound b :: rest -> (
              part.Index_ops.set_size_bound b;
              match Wal.log_bound w b with
              | () -> process_wal rest
              | exception e ->
                park st ~gen e;
                release_acks ();
                raise e)
            | Work sub :: rest -> (
              match shard_apply t i ~gen st part ~wal ~defer:(Some defer) sub with
              | () ->
                acked := sub.waiter :: !acked;
                process_wal rest
              | exception Stale_generation ->
                (* Abandoned mid-batch: nothing of this batch was
                   released, so waking every collected waiter with its
                   slots still pending is the usual Timed_out path. *)
                release_acks ();
                complete sub.waiter;
                fail_popped rest
              | exception e ->
                park st ~gen e;
                release_acks ();
                complete sub.waiter;
                raise e)
          in
          process_wal msgs
      end
  in
  try loop ()
  with
  | Stale_generation -> ()
  | e -> (
    park st ~gen e;
    match t.supervisor with
    | Some _ -> ()  (* the supervisor joins this domain and recovers *)
    | None -> raise e)

(* --- Coordinator ----------------------------------------------------- *)

(* Demand-weighted split of the global bound: shard i gets
   [G * (lambda * size_i / total + (1 - lambda) / n)], floored at
   [min_fraction] of the even share, then scaled so the bounds sum to
   [G].  Pure — the unit the coordinator edge-case tests drive. *)
let split_bounds cfg ~sizes =
  let n = Array.length sizes in
  if n = 0 then [||]
  else begin
    let total = Array.fold_left ( + ) 0 sizes in
    let g = float_of_int cfg.global_bound in
    let nf = float_of_int n in
    let lambda = cfg.demand_weight in
    let floor_share = cfg.min_fraction *. g /. nf in
    let raw =
      Array.map
        (fun s ->
          let share =
            if total = 0 then g /. nf
            else
              g
              *. ((lambda *. float_of_int s /. float_of_int total)
                 +. ((1. -. lambda) /. nf))
          in
          if Float.compare share floor_share < 0 then floor_share else share)
        sizes
    in
    let sum = Array.fold_left ( +. ) 0. raw in
    Array.map
      (fun r ->
        let b =
          if Float.compare sum 0. > 0 then int_of_float (r *. g /. sum)
          else int_of_float (g /. nf)
        in
        if b < 1 then 1 else b)
      raw
  end

(* Deliver through the queues so only the owning domain touches its
   index.  Control messages bypass the fault sites ([inject:false]) —
   coordinator timing is not deterministic, and must not perturb the
   workload's fault schedule.  A queue closed for recovery just misses
   this round's bound; the next pass delivers a fresh one. *)
let rebalance t cfg =
  let bounds = split_bounds cfg ~sizes:(Array.map Atomic.get t.sizes) in
  Array.iteri
    (fun i b ->
      match
        Mpsc_queue.push ~inject:false (Atomic.get t.shards.(i).queue)
          (Set_bound b)
      with
      | () -> ()
      | exception Mpsc_queue.Closed -> ())
    bounds;
  ignore (Atomic.fetch_and_add t.rebalances 1)

(* Sleep in short slices so [stop] is prompt. *)
let pause t ~slice total =
  let rec go left =
    if Float.compare left 0. > 0 && not (Atomic.get t.stopping) then begin
      Unix.sleepf (if Float.compare left slice < 0 then left else slice);
      go (left -. slice)
    end
  in
  go total

let coordinator_loop t cfg =
  while not (Atomic.get t.stopping) do
    pause t ~slice:0.01 cfg.interval_s;
    if not (Atomic.get t.stopping) then rebalance t cfg
  done

(* --- Supervisor ------------------------------------------------------ *)

let make_queue ~fault_prefix ~capacity i =
  match fault_prefix with
  | Some p ->
    Mpsc_queue.create
      ~fault_prefix:(Printf.sprintf "%s.queue.shard%d" p i)
      ~capacity ()
  | None -> Mpsc_queue.create ~capacity ()

let append_recovery t r =
  Mutex.lock t.log_lock;
  t.log <- r :: t.log;
  Mutex.unlock t.log_lock;
  Atomic.incr t.recoveries_n

(* Close the dead shard's queue — waking any producer blocked on it —
   and fail whatever was pending: completing the waiters lets clients
   observe [Timed_out] on the unapplied slots instead of hanging. *)
let drain_and_fail q =
  Mpsc_queue.close q;
  let rec go () =
    match Mpsc_queue.pop_batch q ~max:64 with
    | [] -> ()
    | msgs ->
      List.iter
        (function Work sub -> complete sub.waiter | Set_bound _ -> ())
        msgs;
      go ()
  in
  go ()

(* The recovery sequence: quarantine, fence, reap, fail pending work,
   rebuild from the row table, swap part and queue, re-spawn, re-admit.
   Runs on the supervisor domain only. *)
let recover t scfg i ~cause =
  let st = t.shards.(i) in
  (* The quarantine lock is taken before the quarantine is published:
     a client that observes [st_quarantined] and degrades to a direct
     read then blocks on [qlock] until the rebuild below has swapped in
     the fresh part, so degraded reads always see post-recovery state —
     never the dying part mid-autopsy.  (Besides never exposing a
     half-built or poisoned part, this keeps degraded-read results a
     pure function of the acknowledged writes, which the deterministic
     chaos soak relies on.) *)
  Mutex.lock st.qlock;
  Atomic.set st.status st_quarantined;
  Trace.instant ~a:i ev_quarantine;
  Flight.trigger ~reason:"shard-quarantine"
    ~detail:(Printf.sprintf "shard %d: %s" i cause);
  Atomic.incr st.gen;
  (* Whether the old domain can be joined decides how its WAL writer is
     retired below: joined ⇒ the domain is gone, the descriptor can be
     closed ([dispose]); abandoned (wedged, [st.domain] already cleared
     by the supervisor pass) ⇒ fence only — closing the fd under a
     zombie could let the OS recycle it for the replacement's segment
     and misdirect a zombie write into the new log. *)
  let joined = st.domain <> None in
  (match st.domain with Some d -> Domain.join d | None -> ());
  st.domain <- None;
  drain_and_fail (Atomic.get st.queue);
  let fresh = scfg.rebuild i in
  let rows = ref 0 in
  (match t.wal_cfg with
  | Some wcfg ->
    (* Durable shard: the WAL, not the row table, is the recovery source
       of truth — rebuild exactly what was framed and fsynced, the same
       state a fresh process would recover.  (The in-memory part may be
       ahead of the log by the batch whose commit died; those ops were
       never acknowledged, so dropping them here is the contract, not a
       loss.) *)
    (match st.wal with
    | Some oldw -> if joined then Wal.dispose oldw else Wal.fence oldw
    | None -> ());
    let w, r =
      Wal.recover ?faults:st.wal_faults ?restore:t.wal_restore wcfg
        ~shard:i ~part:fresh
    in
    st.wal <- Some w;
    rows := r.Wal.r_ckpt_entries + r.Wal.r_replayed
  | None ->
    (* [fold_live] over the row table replays exactly the acknowledged
       writes; rows of other shards may be marked concurrently by their
       (healthy) domains, but those are filtered out by routing, and
       this shard's rows are quiescent — its writes are backing off
       until re-admission.  A transient injected fault from the fresh
       part is retried until the row lands: a rebuild must not shed
       acknowledged rows. *)
    Table.fold_live scfg.table
      (fun tid key () ->
        if Shard.shard_of_key t.router key = i then begin
          let rec ins () =
            match fresh.Index_ops.insert key tid with
            | _ -> ()
            | exception Fault.Injected _ ->
              (* Preemption point on the rebuild retry edge: without it a
                 permanently-armed site spins the supervisor invisibly to
                 the schedule explorer. *)
              Fault.point yp_rebuild;
              ins ()
          in
          ins ();
          incr rows
        end)
      ());
  (Shard.parts t.router).(i) <- fresh;
  Trace.emit ev_rebuild i !rows;
  Atomic.set t.sizes.(i) (fresh.Index_ops.memory_bytes ());
  Atomic.set st.failed None;
  let q =
    make_queue ~fault_prefix:t.fault_prefix ~capacity:t.queue_capacity i
  in
  Atomic.set st.queue q;
  Mutex.unlock st.qlock;
  let gen = Atomic.get st.gen in
  let w = st.wal in
  st.domain <- Some (Domain.spawn (fun () -> shard_loop t i ~gen ?wal:w q));
  Atomic.set st.status st_running;
  Trace.instant ~a:i ev_readmit;
  Metrics.incr c_recoveries;
  append_recovery t { r_shard = i; r_cause = cause; r_rows = !rows }

let supervisor_loop t scfg =
  let n = Array.length t.shards in
  let last_hb = Array.make n (-1) in
  let stalled_since = Array.make n 0. in
  let pass () =
    let tnow = now () in
    for i = 0 to n - 1 do
      let st = t.shards.(i) in
      let parked = Atomic.get st.failed in
      match parked with
      | Some (g, e) when g = Atomic.get st.gen ->
        recover t scfg i ~cause:(Printexc.to_string e)
      | Some _ ->
        (* A zombie's late death from a superseded generation: clear
           and ignore — the replacement domain is unaffected. *)
        ignore (Atomic.compare_and_set st.failed parked None)
      | None ->
        let hb = Atomic.get st.heartbeat in
        let busy = Mpsc_queue.length (Atomic.get st.queue) > 0 in
        if (not busy) || hb <> last_hb.(i) then begin
          last_hb.(i) <- hb;
          stalled_since.(i) <- tnow
        end
        else if
          Float.compare (tnow -. stalled_since.(i)) scfg.stall_timeout_s > 0
        then begin
          (* Wedged: work queued, heartbeat frozen, domain not dead.  It
             cannot be joined; abandon it — the generation fence keeps
             it from acknowledging anything if it ever wakes. *)
          (match st.domain with
          | Some d -> st.abandoned <- d :: st.abandoned
          | None -> ());
          st.domain <- None;
          last_hb.(i) <- -1;
          stalled_since.(i) <- tnow;
          recover t scfg i ~cause:"wedged: heartbeat stalled under load"
        end
    done
  in
  while not (Atomic.get t.stopping) do
    pause t ~slice:0.001 scfg.poll_interval_s;
    if not (Atomic.get t.stopping) then pass ()
  done

(* --- Lifecycle ------------------------------------------------------- *)

let start ?(queue_capacity = 64) ?(batch = 32) ?coordinator ?supervisor
    ?fault_prefix ?timeout_s ?wal ?wal_restore router =
  let n = Shard.shard_count router in
  let shards =
    Array.init n (fun i ->
        {
          queue = Atomic.make (make_queue ~fault_prefix ~capacity:queue_capacity i);
          status = Atomic.make st_running;
          gen = Atomic.make 0;
          heartbeat = Atomic.make 0;
          failed = Atomic.make None;
          qlock = Mutex.create ();
          mix = shard_mix i;
          qdepth = g_shard_queue i;
          faults =
            (match fault_prefix with
            | Some p ->
              Some
                {
                  crash = Fault.site (Printf.sprintf "%s.crash.shard%d" p i);
                  poison = Fault.site (Printf.sprintf "%s.poison.shard%d" p i);
                }
            | None -> None);
          wal_faults =
            (match (wal, fault_prefix) with
            | Some _, Some p -> Some (Wal.faults ~prefix:p ~shard:i)
            | _ -> None);
          wal = None;
          domain = None;
          abandoned = [];
        })
  in
  (* With a WAL, every shard recovers from disk before its domain is
     spawned: newest valid checkpoint plus log replay into the part
     (which the caller hands over empty), rematerialising table rows
     through [wal_restore].  On a fresh WAL directory this is a no-op
     that just opens the first segment. *)
  let wal_boot =
    match wal with
    | None -> []
    | Some cfg ->
      let parts = Shard.parts router in
      List.init n (fun i ->
          let st = shards.(i) in
          let w, r =
            Wal.recover ?faults:st.wal_faults ?restore:wal_restore cfg
              ~shard:i ~part:parts.(i)
          in
          st.wal <- Some w;
          (i, r))
  in
  let t =
    {
      router;
      shards;
      sizes = Array.init n (fun _ -> Atomic.make 0);
      batches = Atomic.make 0;
      rebalances = Atomic.make 0;
      recoveries_n = Atomic.make 0;
      coordinator;
      supervisor;
      timeout_s;
      batch;
      queue_capacity;
      fault_prefix;
      wal_cfg = wal;
      wal_restore;
      wal_boot;
      stopping = Atomic.make false;
      log_lock = Mutex.create ();
      log = [];
      aux = [];
    }
  in
  Array.iteri
    (fun i ix -> Atomic.set t.sizes.(i) (ix.Index_ops.memory_bytes ()))
    (Shard.parts router);
  Array.iteri
    (fun i st ->
      let q = Atomic.get st.queue in
      let w = st.wal in
      st.domain <- Some (Domain.spawn (fun () -> shard_loop t i ~gen:0 ?wal:w q)))
    t.shards;
  let aux =
    match coordinator with
    | Some cfg -> [ Domain.spawn (fun () -> coordinator_loop t cfg) ]
    | None -> []
  in
  let aux =
    match supervisor with
    | Some cfg -> Domain.spawn (fun () -> supervisor_loop t cfg) :: aux
    | None -> aux
  in
  t.aux <- aux;
  t

let stop t =
  Atomic.set t.stopping true;
  (* Supervisor and coordinator first, so no recovery re-spawns a shard
     after its queue is closed below. *)
  List.iter Domain.join t.aux;
  t.aux <- [];
  Array.iter (fun st -> Mpsc_queue.close (Atomic.get st.queue)) t.shards;
  Array.iter
    (fun st ->
      (match st.domain with Some d -> Domain.join d | None -> ());
      st.domain <- None;
      (* The domain drained its queue and committed its last batch; a
         clean close flushes, fsyncs whatever the cadence left pending
         and writes the clean-shutdown marker the next [recover] reads.
         A dead writer (the domain died and [stop] raced the
         supervisor) just releases its descriptor. *)
      match st.wal with
      | Some w ->
        Wal.close w;
        st.wal <- None
      | None -> ())
    t.shards

let router t = t.router
let shard_sizes t = Array.map Atomic.get t.sizes
let batches t = Atomic.get t.batches
let rebalances t = Atomic.get t.rebalances
let recoveries t = Atomic.get t.recoveries_n

let wal_recoveries t = t.wal_boot

let recovery_log t =
  Mutex.lock t.log_lock;
  let l = List.rev t.log in
  Mutex.unlock t.log_lock;
  List.map (fun r -> (r.r_shard, r.r_cause, r.r_rows)) l

let quarantined t =
  Array.map (fun st -> Atomic.get st.status = st_quarantined) t.shards

(* Running, with no current-generation failure awaiting recovery.  A
   stale-generation park (an abandoned zombie dying late) does not
   count: the replacement domain is healthy and the supervisor will
   clear the stale slot on its next pass. *)
let shard_ready st =
  Atomic.get st.status = st_running
  &&
  match Atomic.get st.failed with
  | None -> true
  | Some (g, _) -> g <> Atomic.get st.gen

let healthy t = Array.for_all shard_ready t.shards

let rebalance_now t =
  match t.coordinator with Some cfg -> rebalance t cfg | None -> ()

let rebalance_with t cfg = rebalance t cfg

(* --- Client side ----------------------------------------------------- *)

let op_key = function
  | Insert (k, _) | Remove k | Update (k, _) | Find k | Scan (k, _) -> k

let is_read = function
  | Find _ | Scan _ -> true
  | Insert _ | Remove _ | Update _ -> false

(* Degraded read on a quarantined shard: direct, single-threaded,
   serialised against the rebuild by the quarantine lock.  A transient
   injected fault or structural poison surfaces as a rejected op — the
   degraded path must stay up even when the part is sick. *)
let direct_read t s collect op =
  let st = t.shards.(s) in
  Mutex.lock st.qlock;
  let r =
    match apply (Shard.parts t.router).(s) collect op with
    | v -> Ok v
    | exception e -> Error e
  in
  Mutex.unlock st.qlock;
  match r with
  | Ok v -> v
  | Error (Fault.Injected _) | Error (Ei_util.Invariant.Broken _) ->
    rejected_code
  | Error e -> raise e

let backoff_s attempt =
  let b = 0.001 *. float_of_int (1 lsl min attempt 6) in
  if Float.compare b 0.05 > 0 then 0.05 else b

(* Submit one sub-batch to its shard, riding out recovery.  Running:
   enqueue (only the first attempt draws the queue fault sites — a
   retry must not re-draw the schedule).  Quarantined: answer the reads
   directly now, then keep backing off with the writes until the shard
   is re-admitted or the deadline passes.  [Closed] from a push means
   the queue is being recycled (or refused by fault): back off and
   re-resolve the current queue.

   [barrier] (the deterministic chaos soak) waits for the shard to be
   re-admitted instead of taking the degraded path, bounded by the
   deadline like any other wait: every fault-site draw then happens in
   the same fleet state on every equal-seed run — a crash or poison
   site is only ever drawn by the owning domain, never skipped because
   a submission raced a recovery.  Without [barrier], a first attempt
   that finds the shard quarantined still draws the queue sites
   ({!Mpsc_queue.draw_faults}): recovery timing decides whether a
   submission is queued or degraded, and must not add or remove
   draws. *)
let rec submit_sub t ~deadline ~barrier s sub attempt =
  (* Preemption point per submission attempt (client side), pairing with
     [yp_op] on the shard side so the explorer can reorder
     submit/apply/recover interleavings. *)
  Fault.point yp_submit;
  let st = t.shards.(s) in
  let expired () =
    match deadline with
    | Some dl -> Float.compare (now ()) dl >= 0
    | None -> false
  in
  if Atomic.get t.stopping || expired () then complete sub.waiter
  else if barrier && not (shard_ready st) then begin
    Unix.sleepf 0.0002;
    submit_sub t ~deadline ~barrier s sub attempt
  end
  else if Atomic.get st.status = st_running then begin
    match Mpsc_queue.push ~inject:(attempt = 0) (Atomic.get st.queue) (Work sub) with
    | () -> ()
    | exception Mpsc_queue.Closed ->
      Unix.sleepf (backoff_s attempt);
      submit_sub t ~deadline ~barrier s sub (attempt + 1)
  end
  else begin
    if attempt = 0 then Mpsc_queue.draw_faults (Atomic.get st.queue);
    let writes = ref [] in
    Array.iteri
      (fun j o ->
        if is_read o then begin
          if sub.results.(sub.dest.(j)) = pending_code then
            sub.results.(sub.dest.(j)) <- direct_read t s sub.collect o
        end
        else writes := j :: !writes)
      sub.sops;
    match List.rev !writes with
    | [] -> complete sub.waiter
    | ws ->
      let sops = Array.of_list (List.map (fun j -> sub.sops.(j)) ws) in
      let dest = Array.of_list (List.map (fun j -> sub.dest.(j)) ws) in
      Unix.sleepf (backoff_s attempt);
      submit_sub t ~deadline ~barrier s { sub with sops; dest } (attempt + 1)
  end

(* Block until every sub-batch completed, or poll until the deadline
   (the stdlib has no timed condition wait).  On timeout the client
   just walks away: a shard domain writing into the results array
   afterwards stores into slots this client already classified as
   [Timed_out] — word-sized stores, never reread. *)
let wait_waiter w ~deadline =
  match deadline with
  | None ->
    Mutex.lock w.wlock;
    while w.pending > 0 do
      Condition.wait w.wcond w.wlock
    done;
    Mutex.unlock w.wlock
  | Some dl ->
    let rec spin () =
      Mutex.lock w.wlock;
      let left = w.pending in
      Mutex.unlock w.wlock;
      if left > 0 && Float.compare (now ()) dl < 0 then begin
        Unix.sleepf 0.0002;
        spin ()
      end
    in
    spin ()

(* One round: group (slot, shard, op) triples by shard, submit a
   sub-batch per shard, wait.  Results land in [results] at each
   triple's slot. *)
let run_round t ?collect ~deadline ~barrier results triples =
  let nshards = Array.length t.shards in
  let counts = Array.make nshards 0 in
  List.iter (fun (_, s, _) -> counts.(s) <- counts.(s) + 1) triples;
  let active = ref 0 in
  Array.iter (fun c -> if c > 0 then incr active) counts;
  if !active > 0 then begin
    let waiter =
      { wlock = Mutex.create (); wcond = Condition.create (); pending = !active }
    in
    (* Freeze the submitting domain's ambient span context into each
       sub so the shard executor can re-root its work under it. *)
    let c = Ctx.cell () in
    let tctx = c.Ctx.c_trace and tspan = c.Ctx.c_span in
    let subs =
      Array.map
        (fun c ->
          if c = 0 then None
          else
            Some
              {
                sops = Array.make c (Find "");
                dest = Array.make c 0;
                results;
                collect;
                waiter;
                tctx;
                tspan;
              })
        counts
    in
    let fill = Array.make nshards 0 in
    List.iter
      (fun (slot, s, op) ->
        match subs.(s) with
        | Some sub ->
          sub.sops.(fill.(s)) <- op;
          sub.dest.(fill.(s)) <- slot;
          fill.(s) <- fill.(s) + 1
        | None -> ())
      triples;
    Array.iteri
      (fun s sub ->
        match sub with
        | Some sub -> submit_sub t ~deadline ~barrier s sub 0
        | None -> ())
      subs;
    wait_waiter waiter ~deadline
  end

let exec ?collect ?timeout_s ?(barrier = false) t (ops : op array) =
  let n = Array.length ops in
  let outcomes = Array.make n Timed_out in
  if n > 0 then begin
    (* Root of the causal flow: one trace per client exec, installed as
       this domain's ambient context so [run_round] freezes it into
       every sub-batch.  When a caller already carries a context (the
       net front end roots one per connection round), join its flow as
       a child instead of starting a fresh trace — the whole chain
       net.request → serve.request → serve.sub then renders as one
       flow. *)
    let prev = Ctx.current () in
    let treq = Trace.start () in
    if treq > 0 then
      Ctx.set (if prev.Ctx.trace = 0 then Ctx.mint () else Ctx.child prev);
    let timeout = match timeout_s with Some _ as s -> s | None -> t.timeout_s in
    let deadline = Option.map (fun s -> now () +. s) timeout in
    let nshards = Array.length t.shards in
    let results = Array.make n pending_code in
    let first =
      List.init n (fun i ->
          (i, Shard.shard_of_key t.router (op_key ops.(i)), ops.(i)))
    in
    run_round t ?collect ~deadline ~barrier results first;
    (* Scans that exhausted their shard continue into the next one; the
       partition is monotone in key order, so the start key is
       unchanged.  Each round accumulates into [acc]; a round that
       fails (sentinel in the slot) fixes the scan's fate — a partial
       scan is not silently passed off as complete. *)
    let acc = Array.make n 0 in
    let cur = Array.make n 0 in
    let fate = Array.make n None in
    (* Scans with a round in flight: only these are re-examined after
       each round — a scan that already settled must not be reread
       (its slot was recycled to the pending sentinel). *)
    let live = Array.make n false in
    List.iter (fun (i, s, _) -> cur.(i) <- s) first;
    Array.iteri
      (fun i op ->
        match op with
        | Scan _ -> live.(i) <- true
        | Insert _ | Remove _ | Update _ | Find _ -> ())
      ops;
    let continuations () =
      let out = ref [] in
      for i = n - 1 downto 0 do
        if live.(i) then begin
          match ops.(i) with
          | Scan (k, want) ->
            let r = results.(i) in
            if r = pending_code then begin
              fate.(i) <- Some Timed_out;
              live.(i) <- false
            end
            else if r = rejected_code then begin
              fate.(i) <- Some Rejected;
              live.(i) <- false
            end
            else begin
              acc.(i) <- acc.(i) + r;
              results.(i) <- pending_code;
              if acc.(i) < want && cur.(i) + 1 < nshards then begin
                cur.(i) <- cur.(i) + 1;
                out := (i, cur.(i), Scan (k, want - acc.(i))) :: !out
              end
              else live.(i) <- false
            end
          | Insert _ | Remove _ | Update _ | Find _ -> live.(i) <- false
        end
      done;
      !out
    in
    let rec settle () =
      match continuations () with
      | [] -> ()
      | conts ->
        run_round t ?collect ~deadline ~barrier results conts;
        settle ()
    in
    settle ();
    Array.iteri
      (fun i op ->
        outcomes.(i) <-
          (match op with
          | Scan _ -> (
            match fate.(i) with Some o -> o | None -> Applied acc.(i))
          | Insert _ | Remove _ | Update _ | Find _ ->
            let r = results.(i) in
            if r = pending_code then Timed_out
            else if r = rejected_code then Rejected
            else Applied r))
      ops;
    if treq > 0 then begin
      Trace.instant ~a:n ev_ack;
      Trace.span ev_request ~start_ns:treq n;
      Ctx.set prev
    end
  end;
  outcomes

(* --- The serving layer as a uniform index ---------------------------- *)

let index_ops ?(name = "served") t =
  let one op = (exec t [| op |]).(0) in
  let parts = Shard.parts t.router in
  {
    Index_ops.name;
    backend = Index_ops.B_composite parts;
    key_len = Shard.key_len t.router;
    insert =
      (fun k tid ->
        match one (Insert (k, tid)) with
        | Applied r -> r = 1
        | Rejected | Timed_out -> false);
    remove =
      (fun k ->
        match one (Remove k) with
        | Applied r -> r = 1
        | Rejected | Timed_out -> false);
    update =
      (fun k tid ->
        match one (Update (k, tid)) with
        | Applied r -> r = 1
        | Rejected | Timed_out -> false);
    find =
      (fun k ->
        match one (Find k) with
        | Applied tid when tid >= 0 -> Some tid
        | Applied _ | Rejected | Timed_out -> None);
    multi_find =
      (* one exec round: [run_round] buckets the reads per shard, and
         each shard domain answers its sub-batch through the grouped
         descent path of [shard_apply] *)
      (fun keys ->
        let outcomes = exec t (Array.map (fun k -> Find k) keys) in
        Array.map
          (function
            | Applied tid when tid >= 0 -> Some tid
            | Applied _ | Rejected | Timed_out -> None)
          outcomes);
    scan =
      (fun start n ->
        match one (Scan (start, n)) with
        | Applied c -> c
        | Rejected | Timed_out -> 0);
    scan_keys =
      (fun start n visit ->
        match (exec ~collect:visit t [| Scan (start, n) |]).(0) with
        | Applied c -> c
        | Rejected | Timed_out -> 0);
    memory_bytes =
      (* published sizes: safe to read while shard domains run *)
      (fun () -> Array.fold_left ( + ) 0 (shard_sizes t));
    count =
      (* full per-part counts; quiesce mutators first (as with any
         single-index [count] on a concurrent tree) *)
      (fun () -> Array.fold_left (fun a p -> a + p.Index_ops.count ()) 0 parts);
    set_size_bound =
      (* even split through the queues; the periodic coordinator's
         demand-weighted split supersedes it at the next interval *)
      (fun bound ->
        let per = max 1 (bound / Array.length t.shards) in
        Array.iter
          (fun st ->
            match
              Mpsc_queue.push ~inject:false (Atomic.get st.queue)
                (Set_bound per)
            with
            | () -> ()
            | exception Mpsc_queue.Closed -> ())
          t.shards);
    info =
      (fun () ->
        Printf.sprintf "%d shards, %d batches, %d rebalances, %d recoveries"
          (Array.length parts) (batches t) (rebalances t) (recoveries t));
  }
