(* Domain-per-shard serving layer with a global elastic memory
   coordinator.

   Each shard of a {!Shard.t} is owned by exactly one domain, which
   drains a bounded MPSC request queue in batches and applies the
   operations to its part — exclusive ownership makes every sequential
   registry index domain-safe behind the queue, with no locks on the
   index itself.  Clients partition an operation batch by shard
   ({!exec}), enqueue one sub-batch per shard, and block on a shared
   waiter until every sub-batch has been applied.  Scans that exhaust a
   shard continue into the next one in follow-up rounds (the partition
   is monotone in key order).

   The coordinator lifts the paper's elasticity policy from one tree to
   the fleet: a background domain periodically reads each shard's
   published size (shard domains store it into an [Atomic] after every
   drained batch) and re-splits one global soft bound across the shards
   — [demand_weight] of the budget proportionally to current sizes, the
   rest evenly, floored at [min_fraction] of the even share — delivering
   the new per-shard bounds as control messages through the same queues.
   Hot shards keep more standard leaves; cold shards compact first. *)

module Index_ops = Ei_harness.Index_ops

type op =
  | Insert of string * int
  | Remove of string
  | Update of string * int
  | Find of string
  | Scan of string * int

(* Results are ints: Insert/Remove/Update 1 = applied, 0 = not; Find
   the tid or -1; Scan the number of entries visited. *)

type waiter = {
  wlock : Mutex.t;
  wcond : Condition.t;
  mutable pending : int;  (* sub-batches not yet applied *)
}

type sub = {
  sops : op array;
  dest : int array;  (* result slot of each op *)
  results : int array;  (* shared with the submitting client *)
  collect : (string -> unit) option;  (* scan_keys sink *)
  waiter : waiter;
}

type msg = Work of sub | Set_bound of int

type coordinator_config = {
  global_bound : int;  (* bytes, split across the fleet *)
  interval_s : float;  (* seconds between rebalances *)
  demand_weight : float;  (* fraction of budget split by current size *)
  min_fraction : float;  (* per-shard floor, as fraction of even share *)
}

let default_coordinator ~global_bound =
  {
    global_bound;
    interval_s = 0.05;
    demand_weight = 0.5;
    min_fraction = 0.5;
  }

type t = {
  router : Shard.t;
  queues : msg Mpsc_queue.t array;
  sizes : int Atomic.t array;  (* published by shard domains *)
  batches : int Atomic.t;  (* sub-batches applied, fleet-wide *)
  rebalances : int Atomic.t;
  coordinator : coordinator_config option;
  stopping : bool Atomic.t;
  mutable domains : unit Domain.t list;
}

(* --- Shard domains --------------------------------------------------- *)

let apply (ix : Index_ops.t) collect op =
  match op with
  | Insert (k, tid) -> if ix.Index_ops.insert k tid then 1 else 0
  | Remove k -> if ix.Index_ops.remove k then 1 else 0
  | Update (k, tid) -> if ix.Index_ops.update k tid then 1 else 0
  | Find k -> ( match ix.Index_ops.find k with Some tid -> tid | None -> -1)
  | Scan (k, n) -> (
    match collect with
    | Some visit -> ix.Index_ops.scan_keys k n visit
    | None -> ix.Index_ops.scan k n)

let complete w =
  Mutex.lock w.wlock;
  w.pending <- w.pending - 1;
  if w.pending = 0 then Condition.signal w.wcond;
  Mutex.unlock w.wlock

let shard_loop t ~batch i =
  let ix = (Shard.parts t.router).(i) in
  let q = t.queues.(i) in
  let rec loop () =
    match Mpsc_queue.pop_batch q ~max:batch with
    | [] -> ()  (* closed and drained: the domain exits *)
    | msgs ->
      List.iter
        (fun msg ->
          match msg with
          | Set_bound b -> ix.Index_ops.set_size_bound b
          | Work sub ->
            let n = Array.length sub.sops in
            for j = 0 to n - 1 do
              sub.results.(sub.dest.(j)) <-
                apply ix sub.collect sub.sops.(j)
            done;
            complete sub.waiter)
        msgs;
      (* Publish the size the coordinator rebalances from.  Every
         registry index tracks its size in O(1); the elastic OLC tree's
         tracker is additionally safe under concurrent mutation. *)
      Atomic.set t.sizes.(i) (ix.Index_ops.memory_bytes ());
      ignore (Atomic.fetch_and_add t.batches (List.length msgs));
      loop ()
  in
  loop ()

(* --- Coordinator ----------------------------------------------------- *)

(* Demand-weighted split of the global bound: shard i gets
   [G * (lambda * size_i / total + (1 - lambda) / n)], floored at
   [min_fraction] of the even share, then scaled so the bounds sum to
   [G].  Delivered through the queues so only the owning domain touches
   its index. *)
let rebalance t cfg =
  let n = Array.length t.queues in
  let sizes = Array.map Atomic.get t.sizes in
  let total = Array.fold_left ( + ) 0 sizes in
  let g = float_of_int cfg.global_bound in
  let nf = float_of_int n in
  let lambda = cfg.demand_weight in
  let floor_share = cfg.min_fraction *. g /. nf in
  let raw =
    Array.map
      (fun s ->
        let share =
          if total = 0 then g /. nf
          else
            g
            *. ((lambda *. float_of_int s /. float_of_int total)
               +. ((1. -. lambda) /. nf))
        in
        if Float.compare share floor_share < 0 then floor_share else share)
      sizes
  in
  let sum = Array.fold_left ( +. ) 0. raw in
  Array.iteri
    (fun i r ->
      let b = int_of_float (r *. g /. sum) in
      let b = if b < 1 then 1 else b in
      ignore (Mpsc_queue.push t.queues.(i) (Set_bound b)))
    raw;
  ignore (Atomic.fetch_and_add t.rebalances 1)

let coordinator_loop t cfg =
  (* Sleep in short slices so [stop] is prompt. *)
  let slice = 0.01 in
  let rec pause left =
    if Float.compare left 0. > 0 && not (Atomic.get t.stopping) then begin
      Unix.sleepf (if Float.compare left slice < 0 then left else slice);
      pause (left -. slice)
    end
  in
  while not (Atomic.get t.stopping) do
    pause cfg.interval_s;
    if not (Atomic.get t.stopping) then rebalance t cfg
  done

(* --- Lifecycle ------------------------------------------------------- *)

let start ?(queue_capacity = 64) ?(batch = 32) ?coordinator router =
  let n = Shard.shard_count router in
  let t =
    {
      router;
      queues = Array.init n (fun _ -> Mpsc_queue.create ~capacity:queue_capacity);
      sizes = Array.init n (fun _ -> Atomic.make 0);
      batches = Atomic.make 0;
      rebalances = Atomic.make 0;
      coordinator;
      stopping = Atomic.make false;
      domains = [];
    }
  in
  Array.iteri
    (fun i ix -> Atomic.set t.sizes.(i) (ix.Index_ops.memory_bytes ()))
    (Shard.parts router);
  let shards =
    List.init n (fun i -> Domain.spawn (fun () -> shard_loop t ~batch i))
  in
  let coord =
    match coordinator with
    | Some cfg -> [ Domain.spawn (fun () -> coordinator_loop t cfg) ]
    | None -> []
  in
  t.domains <- shards @ coord;
  t

let stop t =
  Atomic.set t.stopping true;
  Array.iter Mpsc_queue.close t.queues;
  List.iter Domain.join t.domains;
  t.domains <- []

let router t = t.router
let shard_sizes t = Array.map Atomic.get t.sizes
let batches t = Atomic.get t.batches
let rebalances t = Atomic.get t.rebalances

let rebalance_now t =
  match t.coordinator with Some cfg -> rebalance t cfg | None -> ()

(* --- Client side ----------------------------------------------------- *)

let op_key = function
  | Insert (k, _) | Remove k | Update (k, _) | Find k | Scan (k, _) -> k

(* One round: group (slot, shard, op) triples by shard, enqueue a
   sub-batch per shard, block until all are applied.  Results land in
   [results] at each triple's slot. *)
let run_round t ?collect results triples =
  let nshards = Array.length t.queues in
  let counts = Array.make nshards 0 in
  List.iter (fun (_, s, _) -> counts.(s) <- counts.(s) + 1) triples;
  let active = ref 0 in
  Array.iter (fun c -> if c > 0 then incr active) counts;
  if !active > 0 then begin
    let waiter =
      { wlock = Mutex.create (); wcond = Condition.create (); pending = !active }
    in
    let subs =
      Array.map
        (fun c ->
          if c = 0 then None
          else
            Some
              {
                sops = Array.make c (Find "");
                dest = Array.make c 0;
                results;
                collect;
                waiter;
              })
        counts
    in
    let fill = Array.make nshards 0 in
    List.iter
      (fun (slot, s, op) ->
        match subs.(s) with
        | Some sub ->
          sub.sops.(fill.(s)) <- op;
          sub.dest.(fill.(s)) <- slot;
          fill.(s) <- fill.(s) + 1
        | None -> ())
      triples;
    Array.iteri
      (fun s sub ->
        match sub with
        | Some sub ->
          if not (Mpsc_queue.push t.queues.(s) (Work sub)) then
            (* Queue closed mid-shutdown: count the sub-batch as done;
               its slots keep their defaults. *)
            complete waiter
        | None -> ())
      subs;
    Mutex.lock waiter.wlock;
    while waiter.pending > 0 do
      Condition.wait waiter.wcond waiter.wlock
    done;
    Mutex.unlock waiter.wlock
  end

let exec ?collect t (ops : op array) =
  let n = Array.length ops in
  let results = Array.make n (-1) in
  if n > 0 then begin
    let nshards = Array.length t.queues in
    let first =
      List.init n (fun i ->
          (i, Shard.shard_of_key t.router (op_key ops.(i)), ops.(i)))
    in
    run_round t ?collect results first;
    (* Scans that exhausted their shard continue into the next one; the
       partition is monotone in key order, so the start key is
       unchanged.  Each round accumulates into [acc]. *)
    let acc = Array.make n 0 in
    let cur = Array.make n 0 in
    List.iter (fun (i, s, _) -> cur.(i) <- s) first;
    let continuations () =
      let out = ref [] in
      for i = n - 1 downto 0 do
        match ops.(i) with
        | Scan (k, want) ->
          acc.(i) <- acc.(i) + results.(i);
          results.(i) <- 0;
          if acc.(i) < want && cur.(i) + 1 < nshards then begin
            cur.(i) <- cur.(i) + 1;
            out := (i, cur.(i), Scan (k, want - acc.(i))) :: !out
          end
        | Insert _ | Remove _ | Update _ | Find _ -> ()
      done;
      !out
    in
    let rec settle () =
      match continuations () with
      | [] -> ()
      | conts ->
        run_round t ?collect results conts;
        settle ()
    in
    settle ();
    Array.iteri
      (fun i op ->
        match op with
        | Scan _ -> results.(i) <- acc.(i)
        | Insert _ | Remove _ | Update _ | Find _ -> ())
      ops
  end;
  results

(* --- The serving layer as a uniform index ---------------------------- *)

let index_ops ?(name = "served") t =
  let one op = (exec t [| op |]).(0) in
  let parts = Shard.parts t.router in
  {
    Index_ops.name;
    backend = Index_ops.B_composite parts;
    key_len = Shard.key_len t.router;
    insert = (fun k tid -> one (Insert (k, tid)) = 1);
    remove = (fun k -> one (Remove k) = 1);
    update = (fun k tid -> one (Update (k, tid)) = 1);
    find =
      (fun k ->
        let r = one (Find k) in
        if r < 0 then None else Some r);
    scan = (fun start n -> one (Scan (start, n)));
    scan_keys =
      (fun start n visit -> (exec ~collect:visit t [| Scan (start, n) |]).(0));
    memory_bytes =
      (* published sizes: safe to read while shard domains run *)
      (fun () -> Array.fold_left ( + ) 0 (shard_sizes t));
    count =
      (* full per-part counts; quiesce mutators first (as with any
         single-index [count] on a concurrent tree) *)
      (fun () -> Array.fold_left (fun a p -> a + p.Index_ops.count ()) 0 parts);
    set_size_bound =
      (* even split through the queues; the periodic coordinator's
         demand-weighted split supersedes it at the next interval *)
      (fun bound ->
        let per = max 1 (bound / Array.length t.queues) in
        Array.iter
          (fun q -> ignore (Mpsc_queue.push q (Set_bound per)))
          t.queues);
    info =
      (fun () ->
        Printf.sprintf "%d shards, %d batches, %d rebalances"
          (Array.length parts) (batches t) (rebalances t));
  }
