(** Bounded multi-producer single-consumer queue (blocking, batched).

    The per-shard request queue of the serving layer.  Producers block
    while the queue is full (backpressure), the consumer blocks while it
    is empty and drains in batches.  Closing is race-safe against
    blocked producers: they wake and raise {!Closed} instead of waiting
    for space that will never appear. *)

exception Closed
(** Raised by {!push} when the queue is (or behaves as if) closed. *)

type 'a t

val create : ?fault_prefix:string -> capacity:int -> unit -> 'a t
(** A queue holding up to [capacity] elements; requires [capacity > 0].
    [fault_prefix] registers the {!Ei_fault.Fault} sites
    [<prefix>.drop] (element lost after admission), [<prefix>.delay]
    (push stalled ~1 ms) and [<prefix>.refuse] (push raises {!Closed}
    as if the queue were closed). *)

val push : ?inject:bool -> 'a t -> 'a -> unit
(** Enqueue, blocking while the queue is full.  Raises {!Closed} if the
    queue was closed before admission — including while blocked on a
    full queue.  [inject:false] (default [true]) bypasses the fault
    sites: recovery retries must not re-draw the fault streams.
    Injecting pushes draw refuse first (a refused push draws nothing
    else), then delay and drop — always in that pattern, regardless of
    the queue's state, so per-site call counts are a pure function of
    the fault streams. *)

val draw_faults : 'a t -> unit
(** Make exactly the fault-site draws an injecting {!push} would make,
    without touching the queue (a fired delay still sleeps; refuse and
    drop outcomes are discarded).  Callers that handle a submission
    away from the queue — the serving layer's degraded quarantine path
    — use this so the draw schedule stays pure whether or not the
    queue was bypassed. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Dequeue up to [max] elements in FIFO order, blocking while the
    queue is empty.  [[]] iff the queue is closed and fully drained —
    the consumer's termination signal. *)

val close : 'a t -> unit
(** Reject future pushes and wake all waiters (blocked pushes raise
    {!Closed}); queued elements remain poppable. *)

val is_closed : 'a t -> bool

val length : 'a t -> int
(** Current number of queued elements (racy under concurrency). *)
