(** Bounded multi-producer single-consumer queue (blocking, batched).

    The per-shard request queue of the serving layer.  Producers block
    while the queue is full (backpressure), the consumer blocks while it
    is empty and drains in batches. *)

type 'a t

val create : capacity:int -> 'a t
(** A queue holding up to [capacity] elements; requires
    [capacity > 0]. *)

val push : 'a t -> 'a -> bool
(** Enqueue, blocking while the queue is full.  [false] iff the queue
    was closed (the element was not enqueued). *)

val pop_batch : 'a t -> max:int -> 'a list
(** Dequeue up to [max] elements in FIFO order, blocking while the
    queue is empty.  [[]] iff the queue is closed and fully drained —
    the consumer's termination signal. *)

val close : 'a t -> unit
(** Reject future pushes and wake all waiters; queued elements remain
    poppable. *)

val length : 'a t -> int
(** Current number of queued elements (racy under concurrency). *)
