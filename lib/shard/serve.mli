(** Domain-per-shard serving layer with a global elastic memory
    coordinator.

    Each shard of a {!Shard.t} is owned by one domain draining a
    bounded MPSC request queue in batches; exclusive ownership makes
    any sequential registry index domain-safe behind its queue.
    Clients submit operation batches with {!exec} — partitioned by
    shard, applied in parallel, scans continuing across shards in
    follow-up rounds — or use the blocking single-op facade
    {!index_ops}.

    The coordinator (optional) periodically re-splits one global soft
    size bound across the shards from their published sizes — the
    paper's elasticity policy lifted from one tree to the fleet: hot
    shards keep more standard leaves, cold shards compact first. *)

type op =
  | Insert of string * int
  | Remove of string
  | Update of string * int
  | Find of string
  | Scan of string * int

type coordinator_config = {
  global_bound : int;  (** bytes, split across the fleet *)
  interval_s : float;  (** seconds between rebalances *)
  demand_weight : float;
      (** fraction of the budget split proportionally to current shard
          sizes; the rest is split evenly *)
  min_fraction : float;
      (** per-shard floor, as a fraction of the even share *)
}

val default_coordinator : global_bound:int -> coordinator_config
(** 50 ms interval, [demand_weight = 0.5], [min_fraction = 0.5]. *)

type t

val start :
  ?queue_capacity:int ->
  ?batch:int ->
  ?coordinator:coordinator_config ->
  Shard.t ->
  t
(** Spawn one domain per shard (plus the coordinator domain when
    configured).  [queue_capacity] bounds each shard's request queue
    (producers block when full); [batch] caps the sub-batches drained
    per wakeup. *)

val stop : t -> unit
(** Close the queues, drain remaining work, join all domains.  The
    underlying indexes remain usable single-threaded afterwards. *)

val exec : ?collect:(string -> unit) -> t -> op array -> int array
(** Apply a batch: partition by shard, enqueue one sub-batch per shard,
    block until all are applied.  Results positionally: insert / remove
    / update 1 if applied else 0; find the tid or -1; scan the visited
    count.  Scans continue across shards until satisfied.  [collect]
    receives every key visited by scan ops (shared by all scans in the
    batch). *)

val index_ops : ?name:string -> t -> Ei_harness.Index_ops.t
(** Blocking single-op facade over {!exec} ([backend = B_composite]).
    [memory_bytes] sums the published shard sizes (safe under
    concurrency); [count] walks the parts (quiesce mutators first). *)

val router : t -> Shard.t
val shard_sizes : t -> int array
(** Per-shard sizes as last published by the shard domains. *)

val batches : t -> int
(** Sub-batches applied so far, fleet-wide. *)

val rebalances : t -> int
(** Coordinator passes completed so far. *)

val rebalance_now : t -> unit
(** Run one coordinator pass immediately (no-op without a coordinator
    config); deterministic-test support. *)
