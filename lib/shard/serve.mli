(** Domain-per-shard serving layer with a global elastic memory
    coordinator and a self-healing shard supervisor.

    Each shard of a {!Shard.t} is owned by one domain draining a
    bounded MPSC request queue in batches; exclusive ownership makes
    any sequential registry index domain-safe behind its queue.
    Clients submit operation batches with {!exec} — partitioned by
    shard, applied in parallel, scans continuing across shards in
    follow-up rounds — or use the blocking single-op facade
    {!index_ops}.

    The coordinator (optional) periodically re-splits one global soft
    size bound across the shards from their published sizes — the
    paper's elasticity policy lifted from one tree to the fleet: hot
    shards keep more standard leaves, cold shards compact first.

    The supervisor (optional) makes the fleet self-healing: a shard
    domain that dies or wedges is detected (parked exception /
    heartbeat stall), its shard quarantined — reads degrade to direct
    single-threaded access, writes back off exponentially until
    re-admission or their deadline — its part rebuilt from the
    {!Ei_storage.Table} row table (the source of truth: supervised
    shard domains maintain per-row liveness as they apply), and a
    fresh domain re-admitted.  Recovery never loses an acknowledged
    write: only applied operations mark the table.

    Durability (optional): [start ~wal:cfg] gives every shard a
    {!Ei_wal.Wal} writer.  Mutations are framed as they apply and
    group-committed once per drained batch; results and waiter
    completions are withheld until the commit returns, so {e ack ⇒
    framed + fsynced} (at the default cadence).  On [start] and on
    every supervised recovery the part is rebuilt from disk — newest
    valid fingerprinted checkpoint plus log replay — instead of from
    the row table, which makes acknowledged writes survive process
    death, not just domain death.

    Fault injection ({!Ei_fault.Fault}): [start ~fault_prefix:p] arms
    sites [p.crash.shard<i>], [p.poison.shard<i>] and
    [p.queue.shard<i>.{drop,delay,refuse}] — all inert until a fault
    plan is configured.  With a WAL, additionally
    [p.wal.{torn,fsync,ckpt}.shard<i>] (see {!Ei_wal.Wal.faults}). *)

type op =
  | Insert of string * int
  | Remove of string
  | Update of string * int
  | Find of string
  | Scan of string * int

(** Per-operation result of {!exec}. *)
type outcome =
  | Applied of int
      (** applied; the int is the op's result — insert / remove /
          update 1 if it took effect else 0, find the tid or -1, scan
          the visited count *)
  | Rejected
      (** shed by a transient injected fault; safe to retry — the
          operation was not applied *)
  | Timed_out
      (** not acknowledged before the deadline (or failed by a shard
          crash): the operation may or may not have been applied *)

(** {b Exactly-one-outcome guarantee} (the contract the net front end
    builds on): {!exec} settles {e every} slot of its batch, whatever
    happens underneath.  A shard-domain crash or quarantine mid-batch
    leaves the affected slots at the pending sentinel, which settles
    as [Timed_out]; injected transient faults settle as [Rejected].
    No slot is ever skipped, so a network server can map outcomes
    positionally to typed wire replies ([Applied] / [Rejected] /
    [Timed_out]) and promise each in-flight request exactly one
    response instead of a dropped connection — the mapping
    [Ei_net.Server] implements and [test_net] asserts across
    crash-during-pipeline runs. *)

exception Crashed of string
(** An injected shard-domain crash (carries the fault site name);
    escapes into the supervisor, never to clients. *)

type coordinator_config = {
  global_bound : int;  (** bytes, split across the fleet *)
  interval_s : float;  (** seconds between rebalances *)
  demand_weight : float;
      (** fraction of the budget split proportionally to current shard
          sizes; the rest is split evenly *)
  min_fraction : float;
      (** per-shard floor, as a fraction of the even share *)
}

val default_coordinator : global_bound:int -> coordinator_config
(** 50 ms interval, [demand_weight = 0.5], [min_fraction = 0.5]. *)

val split_bounds : coordinator_config -> sizes:int array -> int array
(** The coordinator's split as a pure function: demand-weighted,
    floored at [min_fraction] of the even share, renormalised to sum
    to [global_bound], each bound at least 1.  [[||]] for an empty
    fleet. *)

type supervisor_config = {
  table : Ei_storage.Table.t;
      (** the row table recoveries rebuild from; supervised shard
          domains maintain its per-row liveness as they apply.
          Growing the table while the fleet serves is safe: the
          liveness store is growth-stable (chunked pages that are
          appended, never moved — see {!Ei_storage.Table}), so a mark
          racing an append-driven grow is never lost *)
  rebuild : int -> Ei_harness.Index_ops.t;
      (** fresh, empty part for shard [i] (same kind/key_len as the
          one it replaces) *)
  poll_interval_s : float;  (** seconds between supervisor passes *)
  stall_timeout_s : float;
      (** heartbeat silence under queued load that diagnoses a wedged
          domain.  Must sit well above the worst-case batch time: an
          abandoned slow-but-alive domain is fenced per operation by
          its generation (it stops applying and completes its popped
          waiters within one op of waking), but an operation it is
          {e inside} when abandoned can still mark row liveness
          concurrently with the rebuild — the one residual wedge
          race *)
}

val default_supervisor :
  table:Ei_storage.Table.t ->
  rebuild:(int -> Ei_harness.Index_ops.t) ->
  supervisor_config
(** 2 ms poll interval, 1 s stall timeout. *)

type t

val start :
  ?queue_capacity:int ->
  ?batch:int ->
  ?coordinator:coordinator_config ->
  ?supervisor:supervisor_config ->
  ?fault_prefix:string ->
  ?timeout_s:float ->
  ?wal:Ei_wal.Wal.config ->
  ?wal_restore:(tid:int -> key:string -> unit) ->
  Shard.t ->
  t
(** Spawn one domain per shard (plus the coordinator and supervisor
    domains when configured).  [queue_capacity] bounds each shard's
    request queue (producers block when full); [batch] caps the
    sub-batches drained per wakeup; [fault_prefix] arms the injection
    sites; [timeout_s] is the default {!exec} deadline (none: block
    until applied).

    [wal] makes the shards durable: before any domain is spawned,
    every part — which must be handed over {e empty} — is recovered
    from [wal.dir] ({!Ei_wal.Wal.recover}), with [wal_restore] invoked
    per recovered [(tid, key)] so the caller can rematerialise
    backing-store rows ({!Ei_storage.Table.restore_row}).  Crash
    recovery of a WAL fault requires a [supervisor] (the domain dies
    and must be rebuilt from disk); a WAL without a supervisor is
    fine for clean stop/start durability. *)

val stop : t -> unit
(** Join the coordinator and supervisor, close the queues, drain
    remaining work, join all shard domains, and cleanly close the WAL
    writers (final fsync + clean-shutdown marker).  The underlying
    indexes remain usable single-threaded afterwards. *)

val exec :
  ?collect:(string -> unit) ->
  ?timeout_s:float ->
  ?barrier:bool ->
  t ->
  op array ->
  outcome array
(** Apply a batch: partition by shard, enqueue one sub-batch per
    shard, block until every sub-batch settles or the deadline
    ([timeout_s], defaulting to the [start] value) passes.  Outcomes
    are positional.  Scans continue across shards until satisfied; a
    scan whose continuation fails reports the failure, never a partial
    count as if complete.  [collect] receives every key visited by
    scan ops (shared by all scans in the batch).  On a quarantined
    shard, reads are answered directly (degraded single-threaded path,
    serialised against the rebuild — a degraded read always sees the
    rebuilt part, never the dying one) and writes retry with
    exponential backoff until re-admission or the deadline.

    [barrier] (default [false]) trades the degraded path for
    determinism: each sub-batch submission first waits — bounded by
    the deadline — until its shard is re-admitted, so every fault-site
    draw happens in the same fleet state on every equal-seed run.  The
    deterministic chaos soak submits with [barrier:true]. *)

val index_ops : ?name:string -> t -> Ei_harness.Index_ops.t
(** Blocking single-op facade over {!exec} ([backend = B_composite]).
    Rejected / timed-out ops surface as failures ([false] / [None] /
    0).  [memory_bytes] sums the published shard sizes (safe under
    concurrency); [count] walks the parts (quiesce mutators first). *)

val router : t -> Shard.t
val shard_sizes : t -> int array
(** Per-shard sizes as last published by the shard domains. *)

val batches : t -> int
(** Sub-batches applied so far, fleet-wide. *)

val rebalances : t -> int
(** Coordinator passes completed so far. *)

val recoveries : t -> int
(** Shard recoveries completed so far. *)

val recovery_log : t -> (int * string * int) list
(** Completed recoveries, oldest first: shard index, cause (printed
    exception or wedge diagnosis), rows reinserted (from the row table,
    or from checkpoint + replay when a WAL is configured). *)

val wal_recoveries : t -> (int * Ei_wal.Wal.recovery) list
(** Per-shard start-time WAL recovery reports ([[]] without a WAL):
    checkpoint loaded, records replayed, torn tails truncated, clean
    marker seen. *)

val quarantined : t -> bool array
(** Per-shard quarantine flags (racy snapshot: a shard may be
    re-admitted concurrently). *)

val healthy : t -> bool
(** No shard is quarantined and no failure is awaiting recovery.  A
    shard-domain death parks its failure before acknowledging the
    in-flight batch, so a client that saw a [Timed_out] caused by a
    crash observes [healthy = false] until that shard is rebuilt and
    re-admitted — the barrier the deterministic chaos soak spins on. *)

val rebalance_now : t -> unit
(** Run one coordinator pass immediately (no-op without a coordinator
    config); deterministic-test support. *)

val rebalance_with : t -> coordinator_config -> unit
(** Run one coordinator pass with an explicit config — the
    deterministic, client-driven rebalance used by the chaos soak
    (which runs without the coordinator domain so its fault schedule
    stays a pure function of the seed). *)
