(* Range partitioning by key prefix.

   A key's shard is a monotone function of its first 16 bits:
   [prefix16 * shards / 65536].  Monotonicity means each shard owns one
   contiguous key range and shard ids ascend with key order, so a
   cross-shard scan continues into successive shards with the same start
   key — every key in shard [s + 1] has a strictly larger 16-bit prefix
   than any key routed to shard [s], hence compares greater regardless
   of its remaining bytes.

   Uniform key distributions (YCSB's hashed keyspace) spread evenly;
   skewed prefixes make hot shards, which is exactly the imbalance the
   elastic memory coordinator compensates for. *)

type t = { key_len : int; shards : int }

let create ~key_len ~shards =
  assert (key_len >= 0);
  assert (shards >= 1 && shards <= 65536);
  { key_len; shards }

let key_len t = t.key_len
let shards t = t.shards

let prefix16 key =
  match String.length key with
  | 0 -> 0
  | 1 -> Char.code (String.unsafe_get key 0) lsl 8
  | _ ->
    (Char.code (String.unsafe_get key 0) lsl 8)
    lor Char.code (String.unsafe_get key 1)

let shard_of_key t key = prefix16 key * t.shards / 65536
