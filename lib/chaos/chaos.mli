(** Deterministic chaos soak for the sharded serving layer.

    Seeded YCSB-style churn against a supervised {!Ei_shard.Serve}
    fleet under an {!Ei_fault.Fault} plan: crashes, poisonings, queue
    faults, transient op failures and elastic bound slashes — all
    drawn from per-site streams derived from one seed, so a failing
    run replays exactly.  Every acknowledged write is tracked in a
    shadow model; the run ends by reconciling the fleet against the
    shadow (zero lost acknowledged writes, zero phantoms) and
    deep-validating every shard with {!Ei_check}.

    Determinism: a single client issues one batch round at a time and
    barriers on {!Ei_shard.Serve.healthy} after any round with a
    timed-out operation, so fault-site draws never race a concurrent
    rebuild; rebalances are client-driven at fixed rounds.  Two runs
    with the same config agree on {!schedule_digest}. *)

type config = {
  seed : int;
  scale : float;  (** 1.0 = full soak; CI smoke uses ~0.05 *)
  shards : int;
  key_len : int;
  plan : (string * float) list;
  timeout_s : float;
      (** exec deadline; bounds the cost of a dropped sub-batch *)
  rebalance_every : int;
      (** rounds between client-driven rebalances; 0 = off *)
  progress : (string -> unit) option;
}

val default_plan : (string * float) list
(** Every fault kind the serving layer exposes, at soak-tuned
    probabilities. *)

val default_config : seed:int -> config
(** Full scale, 4 shards, {!default_plan}, 0.5 s deadline, rebalance
    every 25 rounds, silent. *)

type report = {
  rounds : int;
  ops : int;
  applied : int;
  rejected : int;
  timed_out : int;
  barriers : int;  (** post-anomaly waits for fleet health *)
  recoveries : int;
  recovery_log : (int * string * int) list;
  lost : int;
      (** settled-present keys missing or with the wrong tid — any
          non-zero value is a lost acknowledged write *)
  phantoms : int;  (** settled-absent keys still present *)
  unsettled : int;  (** keys left ambiguous by timed-out writes *)
  find_mismatches : int;
      (** acknowledged reads that contradicted the shadow mid-churn *)
  check_errors : int;
      (** {!Ei_check} [Error] findings across all shards, post-run *)
  fault_stats : (string * int * int) list;
      (** per-site (name, draws, fired) — the fault schedule *)
}

val ok : report -> bool
(** Zero lost, zero phantoms, zero find mismatches, zero check
    errors.  Unsettled keys and shed (rejected / timed-out) operations
    are legal under injected faults. *)

val run : config -> report
(** Execute the soak.  Configures the global fault plan on entry and
    clears it before reconciliation; the fleet is stopped and every
    part deep-validated before returning. *)

val pp_report : Format.formatter -> report -> unit

val schedule_digest : report -> string
(** The fault schedule and recovery sequence serialised — the value
    two equal-seed runs must agree on byte-for-byte. *)
