(** Deterministic chaos soak for the sharded serving layer.

    Seeded YCSB-style churn against a supervised {!Ei_shard.Serve}
    fleet under an {!Ei_fault.Fault} plan: crashes, poisonings, queue
    faults, transient op failures and elastic bound slashes — all
    drawn from per-site streams derived from one seed, so a failing
    run replays exactly.  Every acknowledged write is tracked in a
    shadow model; the run ends by reconciling the fleet against the
    shadow (zero lost acknowledged writes, zero phantoms) and
    deep-validating every shard with {!Ei_check}.

    Determinism: a single client issues one batch round at a time and
    barriers on {!Ei_shard.Serve.healthy} after any round with a
    timed-out operation, so fault-site draws never race a concurrent
    rebuild; rebalances are client-driven at fixed rounds.  Two runs
    with the same config agree on {!schedule_digest}. *)

type config = {
  seed : int;
  scale : float;  (** 1.0 = full soak; CI smoke uses ~0.05 *)
  shards : int;
  key_len : int;
  plan : (string * float) list;
  timeout_s : float;
      (** exec deadline; bounds the cost of a dropped sub-batch *)
  rebalance_every : int;
      (** rounds between client-driven rebalances; 0 = off *)
  progress : (string -> unit) option;
  wal_dir : string option;
      (** durable shards: group-commit WAL under this root (reset on
          entry), an fsynced acknowledgement journal beside it, and a
          post-soak restart check — recover every shard from disk and
          hold it against the live fleet *)
  kill_at : int;
      (** round at which a side domain SIGKILLs the whole process,
          mid-batch (0 = never).  The run does not return; a fresh
          process then proves recovery with {!verify}.  Requires
          [wal_dir]. *)
}

val default_plan : (string * float) list
(** Every fault kind the serving layer exposes, at soak-tuned
    probabilities. *)

val default_wal_plan : (string * float) list
(** {!default_plan} plus the WAL crash sites: torn batch tail and
    dropped page cache (drawn per group commit), checkpoint corruption
    (drawn per checkpoint cut, so at a much higher probability). *)

val default_config : seed:int -> config
(** Full scale, 4 shards, {!default_plan}, 0.5 s deadline, rebalance
    every 25 rounds, silent, no WAL. *)

type report = {
  rounds : int;
  ops : int;
  applied : int;
  rejected : int;
  timed_out : int;
  barriers : int;  (** post-anomaly waits for fleet health *)
  recoveries : int;
  recovery_log : (int * string * int) list;
  lost : int;
      (** settled-present keys missing or with the wrong tid — any
          non-zero value is a lost acknowledged write *)
  phantoms : int;  (** settled-absent keys still present *)
  unsettled : int;  (** keys left ambiguous by timed-out writes *)
  find_mismatches : int;
      (** acknowledged reads that contradicted the shadow mid-churn *)
  check_errors : int;
      (** {!Ei_check} [Error] findings across all shards, post-run *)
  fault_stats : (string * int * int) list;
      (** per-site (name, draws, fired) — the fault schedule *)
  wal : bool;  (** the soak ran with durable shards *)
  fp_mismatches : int;
      (** restart check: shards whose recovered-from-disk fingerprint
          differs from the live part's *)
  restart_lost : int;
      (** restart check: settled-present keys missing after recovery *)
  restart_phantoms : int;
  restart_replayed : int;
  restart_fallbacks : int;  (** corrupt checkpoints skipped *)
  restart_torn : int;  (** torn tails truncated *)
  restart_check_errors : int;
      (** {!Ei_check} errors across the recovered parts *)
}

val ok : report -> bool
(** Zero lost, zero phantoms, zero find mismatches, zero check errors
    — and, for durable soaks, a clean restart check: zero fingerprint
    mismatches, zero keys lost or phantom after recovery from disk.
    Unsettled keys and shed (rejected / timed-out) operations are
    legal under injected faults. *)

val run : config -> report
(** Execute the soak.  Configures the global fault plan on entry and
    clears it before reconciliation; the fleet is stopped and every
    part deep-validated before returning. *)

val pp_report : Format.formatter -> report -> unit

val schedule_digest : report -> string
(** The fault schedule and recovery sequence serialised — the value
    two equal-seed runs must agree on byte-for-byte.  For durable
    soaks the digest keeps only the schedule-pure families (crash /
    poison / queue draws and the recoveries they cause): WAL crash
    sites draw per group commit, and batch boundaries are wall-clock,
    so their draw counts — and everything downstream of a WAL-fault
    recovery — are deliberately outside the replay-equality claim
    (the durability claims are checked directly instead). *)

(** {1 Fresh-process crash verification}

    The kill -9 protocol: run the soak with [wal_dir] set and
    [kill_at > 0] — the process SIGKILLs itself mid-batch (expect exit
    137) — then, from a fresh process, call {!verify} on the same
    directory.  The journal's intent blocks are fsynced before each
    round is submitted, so every acknowledged write the journal
    settles must be recovered; keys of the killed round without a
    durable outcome are unsettled and skipped. *)

type verify_report = {
  v_shards : int;
  v_settled : int;  (** journal keys reconciled (present + absent) *)
  v_unsettled : int;  (** journal keys skipped as ambiguous *)
  v_lost : int;
      (** settled-present keys missing or wrong after recovery — any
          non-zero value is a lost acknowledged write *)
  v_phantoms : int;  (** settled-absent keys present after recovery *)
  v_ckpt_entries : int;
  v_replayed : int;
  v_fallbacks : int;  (** corrupt checkpoints skipped *)
  v_torn : int;  (** torn tails truncated *)
  v_clean : int;  (** shards whose clean-shutdown marker was present *)
  v_check_errors : int;
      (** {!Ei_check} errors across the recovered shards *)
}

val verify : ?shards:int -> ?key_len:int -> dir:string -> unit -> verify_report
(** Recover every shard of a (possibly killed) soak from [dir], rebuild
    the acknowledged-write shadow from the journal, reconcile, and
    deep-validate.  [shards] and [key_len] must match the soak's
    config (defaults match {!default_config}).  Run with no fault plan
    configured. *)

val verify_ok : verify_report -> bool
(** Zero lost, zero phantoms, zero check errors. *)

val pp_verify : Format.formatter -> verify_report -> unit
