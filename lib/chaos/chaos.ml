(* Deterministic chaos soak for the sharded serving layer.

   One seed drives everything: the workload stream, every fault site's
   splitmix64 stream, and therefore the crash / poison / queue-fault
   schedule and the supervisor's recovery sequence.  The engine runs
   seeded YCSB-style churn against a supervised {!Ei_shard.Serve}
   fleet under a fault plan, tracks every *acknowledged* write in a
   shadow model, and at the end reconciles the fleet against the
   shadow and deep-validates every shard with {!Ei_check}.

   Determinism protocol.  Reproducibility requires every fault site's
   draw sequence to be a pure function of the seed:

   - a single client domain issues one batch round at a time, so each
     shard domain sees a deterministic operation sequence (queue sites
     draw on the client; crash / poison / op / slash sites draw on the
     shard domain or, during a rebuild, on the supervisor — and those
     two are serialised by the domain's death and the re-spawn);
   - every batch is submitted with [barrier:true]: {!Ei_shard.Serve}
     then waits — per sub-batch, bounded by the deadline — for the
     target shard to be re-admitted before submitting, so no draw ever
     depends on whether a submission raced a recovery (in particular a
     scan continuation landing on a shard that crashed earlier in the
     same batch is queued after its rebuild, not answered degraded);
   - after any round containing a timed-out operation the client
     additionally spins until {!Ei_shard.Serve.healthy} — a crash
     parks its failure before acknowledging the batch, so this cannot
     miss a recovery in flight — keeping whole rounds aligned with
     recoveries;
   - the coordinator domain is not used; rebalances are client-driven
     at fixed round numbers ({!Ei_shard.Serve.rebalance_with});
   - retries ([inject:false] pushes, rebuild re-inserts) never re-draw
     a fault stream out of schedule.

   Acknowledged-write semantics: only [Applied] outcomes update the
   shadow; a timed-out write leaves its key *unsettled* (the operation
   may or may not have been applied) until a later acknowledged write
   settles it.  Reconciliation demands exact agreement on every
   settled key — a lost acknowledged write or a phantom row fails the
   soak — and merely counts the unsettled ones.

   The row table is deliberately under-sized: client appends grow it
   mid-run while supervised shard domains mark row liveness, which the
   growth-stable chunked liveness store ({!Ei_storage.Table}) makes
   safe — the soak exercises exactly that race. *)

module Fault = Ei_fault.Fault
module Table = Ei_storage.Table
module Index_ops = Ei_harness.Index_ops
module Registry = Ei_harness.Registry
module Serve = Ei_shard.Serve
module Shard = Ei_shard.Shard
module Check = Ei_check.Check
module Rng = Ei_util.Rng
module Strtbl = Ei_util.Strtbl
module Key = Ei_util.Key
module Wal = Ei_wal.Wal

type config = {
  seed : int;
  scale : float;  (* 1.0 = full soak; CI smoke uses ~0.05 *)
  shards : int;
  key_len : int;
  plan : (string * float) list;
  timeout_s : float;  (* exec deadline; bounds the cost of a dropped sub *)
  rebalance_every : int;  (* rounds between client-driven rebalances; 0 = off *)
  progress : (string -> unit) option;
  wal_dir : string option;  (* durable shards; the dir is reset on entry *)
  kill_at : int;  (* round at which the soak SIGKILLs itself; 0 = never *)
}

(* Every fault kind the serving layer exposes, at probabilities tuned
   so a full-scale run sees a handful of recoveries per shard while
   the smoke scale still crosses the fault paths. *)
let default_plan =
  [
    ("serve.crash", 0.0015);
    ("serve.poison", 0.0008);
    ("serve.queue.*.drop", 0.0008);
    ("serve.queue.*.delay", 0.002);
    ("serve.queue.*.refuse", 0.003);
    ("serve.op", 0.002);
    ("elastic.slash", 0.005);
  ]

(* The durable-shard plan adds the WAL crash sites: torn last frame and
   dropped page cache draw once per group commit (so at full scale each
   fires a few times across the fleet), checkpoint corruption draws
   only when a checkpoint is cut, hence the much higher probability. *)
let default_wal_plan =
  default_plan
  @ [
      ("serve.wal.torn", 0.002);
      ("serve.wal.fsync", 0.002);
      ("serve.wal.ckpt", 0.1);
    ]

let default_config ~seed =
  {
    seed;
    scale = 1.0;
    shards = 4;
    key_len = 8;
    plan = default_plan;
    timeout_s = 0.5;
    rebalance_every = 25;
    progress = None;
    wal_dir = None;
    kill_at = 0;
  }

(* Soak-tuned WAL config: fsync every commit (the ack ⇒ durable
   contract under test), checkpoints and rotations frequent enough
   that a soak crosses them many times. *)
let wal_config ~dir =
  {
    (Wal.default_config ~dir) with
    Wal.fsync_every = 1;
    checkpoint_every = 64;
    segment_bytes = 256 * 1024;
  }

type report = {
  rounds : int;
  ops : int;
  applied : int;
  rejected : int;
  timed_out : int;
  barriers : int;  (* post-anomaly waits for fleet health *)
  recoveries : int;
  recovery_log : (int * string * int) list;
  lost : int;  (* settled-present keys missing or with the wrong tid *)
  phantoms : int;  (* settled-absent keys still present *)
  unsettled : int;  (* keys left ambiguous by timed-out writes *)
  find_mismatches : int;  (* online read inconsistencies during churn *)
  check_errors : int;  (* Ei_check Error findings across all shards *)
  fault_stats : (string * int * int) list;
  wal : bool;  (* the soak ran with durable shards *)
  (* Restart check (WAL soaks only): each shard recovered from disk
     into a fresh part after the soak, compared against the live one. *)
  fp_mismatches : int;  (* recovered fingerprint <> live fingerprint *)
  restart_lost : int;  (* settled-present keys missing after recovery *)
  restart_phantoms : int;
  restart_replayed : int;
  restart_fallbacks : int;  (* corrupt checkpoints skipped *)
  restart_torn : int;  (* torn tails truncated *)
  restart_check_errors : int;  (* Ei_check errors on recovered parts *)
}

let ok r =
  r.lost = 0 && r.phantoms = 0 && r.find_mismatches = 0 && r.check_errors = 0
  && r.fp_mismatches = 0 && r.restart_lost = 0 && r.restart_phantoms = 0
  && r.restart_check_errors = 0

(* Shadow state of one key, from acknowledged outcomes only. *)
type entry = Present of int | Absent | Unsettled

(* --- Acknowledgement journal ------------------------------------------ *)

(* A WAL soak mirrors its shadow model into an fsynced append-only
   journal under the WAL root, so a *fresh process* can verify a
   crashed soak: [verify] recovers the shards from disk and reconciles
   them against the journal — zero lost acknowledged writes, zero
   phantoms — with no memory of the run that died.

   Per round, two fsynced blocks bracket the batch:

     S <round>          round start
     T <hexkey> ...     every key a write op of this round touches
     --- fsync; the batch runs; then ---
     P <hexkey> <tid>   acked insert/update: settled present
     A <hexkey>         acked remove: settled absent
     K <hexkey>         acked no-op or rejected: prior state stands
     U <hexkey>         timed out: unsettled
     R <round>          round complete; fsync

   The intent block is durable *before* any op of the round is
   submitted, so however the process dies, every key whose outcome the
   journal missed is listed in an incomplete round and is treated as
   unsettled — the journal never claims more than was acknowledged,
   and never misses an acknowledged write that a later crash could
   surface as lost. *)

let hex_of_key k =
  let b = Buffer.create (2 * String.length k) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) k;
  Buffer.contents b

let key_of_hex s =
  let n = String.length s / 2 in
  String.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

type journal = { jfd : Unix.file_descr; jbuf : Buffer.t }

let journal_path dir = Filename.concat dir "shadow.journal"

let jopen dir =
  {
    jfd =
      Unix.openfile (journal_path dir)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644;
    jbuf = Buffer.create 4096;
  }

let jline j fmt = Printf.ksprintf (fun s -> Buffer.add_string j.jbuf s; Buffer.add_char j.jbuf '\n') fmt

let jflush j =
  let s = Buffer.contents j.jbuf in
  Buffer.clear j.jbuf;
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring j.jfd s !off (n - !off)
  done;
  Unix.fsync j.jfd

let jclose j = try Unix.close j.jfd with Unix.Unix_error _ -> ()

(* Rebuild the shadow from the journal.  Only complete lines count (a
   torn last line is unacked tail); keys of an incomplete trailing
   round with no outcome line are unsettled. *)
let read_journal path =
  let shadow : entry Strtbl.t = Strtbl.create 4096 in
  let pending : unit Strtbl.t = Strtbl.create 64 in
  (if Sys.file_exists path then
     let ic = open_in_bin path in
     let len = in_channel_length ic in
     let data = really_input_string ic len in
     close_in ic;
     let lines = String.split_on_char '\n' data in
     (* the writer terminates every line: a non-empty final element is
        a torn tail, and [split_on_char] puts it (or "") last *)
     let rec complete = function
       | [] | [ _ ] -> []
       | l :: rest -> l :: complete rest
     in
     List.iter
       (fun line ->
         match String.split_on_char ' ' line with
         | [ "S"; _ ] -> ()
         | [ "T"; h ] -> Strtbl.replace pending (key_of_hex h) ()
         | [ "P"; h; tid ] ->
           let k = key_of_hex h in
           Strtbl.remove pending k;
           Strtbl.replace shadow k (Present (int_of_string tid))
         | [ "A"; h ] ->
           let k = key_of_hex h in
           Strtbl.remove pending k;
           Strtbl.replace shadow k Absent
         | [ "K"; h ] -> Strtbl.remove pending (key_of_hex h)
         | [ "U"; h ] ->
           let k = key_of_hex h in
           Strtbl.remove pending k;
           Strtbl.replace shadow k Unsettled
         | [ "R"; _ ] -> Strtbl.clear pending
         | _ -> ())
       (complete lines));
  Strtbl.iter (fun k () -> Strtbl.replace shadow k Unsettled) pending;
  shadow

let run cfg =
  Fault.configure ~seed:cfg.seed cfg.plan;
  let scaled x =
    let v = int_of_float (float_of_int x *. cfg.scale) in
    if v < 1 then 1 else v
  in
  let nkeys = scaled 6_000 in
  let rounds = scaled 400 in
  let batch_sz = 64 in
  let global_bound = scaled 400_000 in
  let say fmt =
    Printf.ksprintf
      (fun s -> match cfg.progress with Some f -> f s | None -> ())
      fmt
  in
  (* Under-sized on purpose: appends grow the table mid-run while shard
     domains mark liveness (see above). *)
  let table =
    Table.create
      ~initial_capacity:(max 64 (nkeys / 4))
      ~key_len:cfg.key_len ()
  in
  let mk_part i =
    let ecfg =
      Ei_core.Elasticity.default_config ~size_bound:(max 1 (global_bound / cfg.shards))
    in
    let ecfg =
      {
        ecfg with
        Ei_core.Elasticity.fault_site = Printf.sprintf "elastic.slash.shard%d" i;
      }
    in
    let ix =
      Registry.make
        ~name:(Printf.sprintf "chaos-shard%d" i)
        ~key_len:cfg.key_len ~load:(Table.loader table) (Registry.Elastic ecfg)
    in
    Index_ops.inject ~site:(Fault.site (Printf.sprintf "serve.op.shard%d" i)) ix
  in
  let router = Shard.create (Array.init cfg.shards mk_part) in
  (* Durable mode: reset the WAL root (a soak owns its directory), open
     the acknowledgement journal beside the shard logs, and hand every
     shard a writer.  The start-time recovery below is a no-op on the
     fresh directory. *)
  let wal =
    Option.map
      (fun dir ->
        Wal.reset_dir dir;
        wal_config ~dir)
      cfg.wal_dir
  in
  let journal = Option.map jopen cfg.wal_dir in
  let serve =
    Serve.start
      ~supervisor:(Serve.default_supervisor ~table ~rebuild:mk_part)
      ~fault_prefix:"serve" ~timeout_s:cfg.timeout_s ?wal
      ?wal_restore:
        (Option.map (fun _ ~tid ~key -> Table.restore_row table ~tid ~key) wal)
      router
  in
  let coord = Serve.default_coordinator ~global_bound in
  let rng = Rng.stream cfg.seed 0x1 in
  let pool = Array.init nkeys (fun _ -> Key.random rng cfg.key_len) in
  let shadow : entry Strtbl.t = Strtbl.create (2 * nkeys) in
  let applied = ref 0
  and rejected = ref 0
  and timed_out = ref 0
  and barriers = ref 0
  and find_mismatches = ref 0 in
  let barrier_pending = ref false in
  for round = 1 to rounds do
    if !barrier_pending then begin
      incr barriers;
      while not (Serve.healthy serve) do
        Unix.sleepf 0.0005
      done;
      barrier_pending := false
    end;
    let ops =
      Array.init batch_sz (fun _ ->
          let k = pool.(Rng.int rng nkeys) in
          let c = Rng.int rng 100 in
          if c < 40 then Serve.Insert (k, Table.append table k)
          else if c < 55 then Serve.Remove k
          else if c < 65 then Serve.Update (k, Table.append table k)
          else if c < 90 then Serve.Find k
          else Serve.Scan (k, 16))
    in
    (* Intent block: durable before any op of the round is submitted,
       so a kill mid-batch leaves every touched key listed for [verify]
       to treat as unsettled. *)
    (match journal with
    | Some j ->
      jline j "S %d" round;
      Array.iter
        (function
          | Serve.Insert (k, _) | Serve.Remove k | Serve.Update (k, _) ->
            jline j "T %s" (hex_of_key k)
          | Serve.Find _ | Serve.Scan _ -> ())
        ops;
      jflush j
    | None -> ());
    (* The crash under test: SIGKILL from a side domain lands while the
       shard domains are mid-batch — framing, fsyncing, checkpointing.
       Nothing below this round runs; a fresh process must [verify]. *)
    if round = cfg.kill_at then
      ignore
        (Domain.spawn (fun () ->
             Unix.sleepf 0.003;
             Unix.kill (Unix.getpid ()) Sys.sigkill));
    let outs = Serve.exec ~barrier:true serve ops in
    Array.iteri
      (fun i out ->
        match (ops.(i), out) with
        | Serve.Insert (k, tid), Serve.Applied 1 ->
          incr applied;
          Strtbl.replace shadow k (Present tid)
        | Serve.Remove k, Serve.Applied 1 ->
          incr applied;
          Strtbl.replace shadow k Absent
        | Serve.Update (k, tid), Serve.Applied 1 ->
          incr applied;
          Strtbl.replace shadow k (Present tid)
        | Serve.Find k, Serve.Applied r -> (
          incr applied;
          (* Single client + per-shard FIFO: an acknowledged read must
             agree with the shadow whenever the key is settled. *)
          match Strtbl.find_opt shadow k with
          | Some (Present tid) -> if r <> tid then incr find_mismatches
          | Some Absent | None -> if r >= 0 then incr find_mismatches
          | Some Unsettled -> ())
        | (Serve.Insert _ | Serve.Remove _ | Serve.Update _ | Serve.Scan _), Serve.Applied _
          ->
          incr applied
        | _, Serve.Rejected -> incr rejected
        | (Serve.Insert (k, _) | Serve.Remove k | Serve.Update (k, _)), Serve.Timed_out
          ->
          incr timed_out;
          Strtbl.replace shadow k Unsettled;
          barrier_pending := true
        | (Serve.Find _ | Serve.Scan _), Serve.Timed_out ->
          incr timed_out;
          barrier_pending := true)
      outs;
    (* Outcome block: the journal settles exactly the keys the shadow
       settled, then marks the round complete. *)
    (match journal with
    | Some j ->
      Array.iteri
        (fun i out ->
          match (ops.(i), out) with
          | (Serve.Insert (k, tid) | Serve.Update (k, tid)), Serve.Applied 1
            ->
            jline j "P %s %d" (hex_of_key k) tid
          | Serve.Remove k, Serve.Applied 1 -> jline j "A %s" (hex_of_key k)
          | ( (Serve.Insert (k, _) | Serve.Remove k | Serve.Update (k, _)),
              (Serve.Applied _ | Serve.Rejected) ) ->
            jline j "K %s" (hex_of_key k)
          | ( (Serve.Insert (k, _) | Serve.Remove k | Serve.Update (k, _)),
              Serve.Timed_out ) ->
            jline j "U %s" (hex_of_key k)
          | (Serve.Find _ | Serve.Scan _), _ -> ())
        outs;
      jline j "R %d" round;
      jflush j
    | None -> ());
    if cfg.rebalance_every > 0 && round mod cfg.rebalance_every = 0 then
      Serve.rebalance_with serve coord;
    if round mod 100 = 0 then
      say "round %d/%d: %d applied, %d rejected, %d timed out, %d recoveries"
        round rounds !applied !rejected !timed_out (Serve.recoveries serve)
  done;
  (* Quiesce: let any final recovery land, freeze the fault schedule
     digest, then disarm every site so reconciliation reads draw
     nothing. *)
  while not (Serve.healthy serve) do
    Unix.sleepf 0.0005
  done;
  let fault_stats = Fault.stats () in
  Fault.clear ();
  let lost = ref 0 and phantoms = ref 0 and unsettled = ref 0 in
  (* One linear pass in 512-key windows over an array snapshot of the
     shadow (a list-chunking reconcile would re-traverse the tail per
     chunk, quadratic at full scale). *)
  let entries =
    Array.of_list (Strtbl.fold (fun k e acc -> (k, e) :: acc) shadow [])
  in
  let chunk = 512 in
  let base = ref 0 in
  while !base < Array.length entries do
    let len = min chunk (Array.length entries - !base) in
    let window = Array.sub entries !base len in
    let outs =
      Serve.exec serve (Array.map (fun (k, _) -> Serve.Find k) window)
    in
    Array.iteri
      (fun i (_, e) ->
        match (e, outs.(i)) with
        | Unsettled, _ -> incr unsettled
        | Present tid, Serve.Applied r -> if r <> tid then incr lost
        | Present _, (Serve.Rejected | Serve.Timed_out) -> incr lost
        | Absent, Serve.Applied r -> if r >= 0 then incr phantoms
        | Absent, (Serve.Rejected | Serve.Timed_out) -> incr phantoms)
      window;
    base := !base + len
  done;
  Serve.stop serve;
  Option.iter jclose journal;
  let check_errors =
    Array.fold_left
      (fun acc part -> acc + List.length (Check.errors (Check.run part)))
      0 (Shard.parts router)
  in
  (* Restart check (WAL soaks): recover every shard from disk into a
     fresh part — the exact path a fresh process would take — and hold
     it against the live fleet: content fingerprints must match
     per shard, every settled key must reconcile, and the recovered
     parts must be {!Ei_check}-clean.  The live part equals the durable
     state by construction (an unacknowledged batch that died before
     its commit was already discarded by the supervisor's own
     rebuild-from-disk), so any difference here is a recovery bug. *)
  let fp_mismatches = ref 0
  and restart_lost = ref 0
  and restart_phantoms = ref 0
  and restart_replayed = ref 0
  and restart_fallbacks = ref 0
  and restart_torn = ref 0
  and restart_check_errors = ref 0 in
  (match wal with
  | None -> ()
  | Some wcfg ->
    let live = Shard.parts router in
    let rec_parts =
      Array.init cfg.shards (fun i ->
          let part = mk_part i in
          let w, r =
            Wal.recover wcfg ~shard:i ~part
              ~restore:(fun ~tid ~key -> Table.restore_row table ~tid ~key)
          in
          Wal.close w;
          restart_replayed := !restart_replayed + r.Wal.r_replayed;
          restart_fallbacks := !restart_fallbacks + r.Wal.r_ckpt_fallbacks;
          restart_torn := !restart_torn + r.Wal.r_torn;
          if
            Index_ops.fingerprint part <> Index_ops.fingerprint live.(i)
          then incr fp_mismatches;
          restart_check_errors :=
            !restart_check_errors + List.length (Check.errors (Check.run part));
          part)
    in
    Strtbl.iter
      (fun k e ->
        let part = rec_parts.(Shard.shard_of_key router k) in
        match e with
        | Unsettled -> ()
        | Present tid -> (
          match part.Index_ops.find k with
          | Some t when t = tid -> ()
          | Some _ | None -> incr restart_lost)
        | Absent -> (
          match part.Index_ops.find k with
          | Some _ -> incr restart_phantoms
          | None -> ()))
      shadow);
  let report =
    {
      rounds;
      ops = rounds * batch_sz;
      applied = !applied;
      rejected = !rejected;
      timed_out = !timed_out;
      barriers = !barriers;
      recoveries = Serve.recoveries serve;
      recovery_log = Serve.recovery_log serve;
      lost = !lost;
      phantoms = !phantoms;
      unsettled = !unsettled;
      find_mismatches = !find_mismatches;
      check_errors;
      fault_stats;
      wal = wal <> None;
      fp_mismatches = !fp_mismatches;
      restart_lost = !restart_lost;
      restart_phantoms = !restart_phantoms;
      restart_replayed = !restart_replayed;
      restart_fallbacks = !restart_fallbacks;
      restart_torn = !restart_torn;
      restart_check_errors = !restart_check_errors;
    }
  in
  say "done: %d ops, %d applied, %d recoveries, lost %d, phantoms %d, %d check errors"
    report.ops report.applied report.recoveries report.lost report.phantoms
    report.check_errors;
  report

let pp_report fmt r =
  Format.fprintf fmt
    "chaos soak: %d rounds / %d ops%s@\n\
    \  applied %d, rejected %d, timed out %d, barriers %d@\n\
    \  recoveries %d, unsettled keys %d@\n\
    \  lost acknowledged writes %d, phantoms %d, find mismatches %d, check errors %d@\n"
    r.rounds r.ops
    (if r.wal then " (durable shards)" else "")
    r.applied r.rejected r.timed_out r.barriers r.recoveries r.unsettled
    r.lost r.phantoms r.find_mismatches r.check_errors;
  if r.wal then
    Format.fprintf fmt
      "  restart: %d replayed, %d ckpt fallbacks, %d torn tails; lost %d, \
       phantoms %d, fp mismatches %d, check errors %d@\n"
      r.restart_replayed r.restart_fallbacks r.restart_torn r.restart_lost
      r.restart_phantoms r.fp_mismatches r.restart_check_errors;
  List.iter
    (fun (shard, cause, rows) ->
      Format.fprintf fmt "  recovery: shard %d (%s), %d rows rebuilt@\n" shard
        cause rows)
    r.recovery_log;
  List.iter
    (fun (site, calls, fired) ->
      if fired > 0 then
        Format.fprintf fmt "  fault %s: %d/%d fired@\n" site fired calls)
    r.fault_stats

(* The digest two equal-seed runs must agree on exactly: the fault
   schedule and, per shard, the recovery sequence.  Recoveries are
   stable-sorted by shard first: each shard's own sequence is
   schedule-pure, but when two shards fail in the same round the
   supervisor may reach them in either order across runs (its polling
   is wall-clock), so the cross-shard interleaving is not part of the
   reproducibility claim.

   Durable soaks narrow the claim further.  The WAL crash sites draw
   once per *group commit*, and batch boundaries are wall-clock (how
   many sub-batches a domain drains per wakeup varies run to run), so
   their draw counts — and everything downstream of a WAL-fault
   recovery: the replay's retry draws on the op and slash sites, the
   rebuilt-rows counts, the WAL-caused recovery entries — are not pure
   functions of the seed.  The digest therefore keeps only the
   schedule-pure families (crash / poison / queue, whose draws are
   per-operation or per-submission on a deterministic sequence) and
   the recovery entries they cause, by shard and cause with the
   timing-dependent row counts dropped.  The durability claims
   themselves (zero lost acks, fingerprint-equal restart) are checked
   directly by the report, not by replay equality. *)
let schedule_digest r =
  let pure_site s =
    (not r.wal)
    || String.starts_with ~prefix:"serve.crash" s
    || String.starts_with ~prefix:"serve.poison" s
    || String.starts_with ~prefix:"serve.queue" s
  in
  let wal_caused cause =
    (* [Wal.Died] recoveries are group-commit-timed, not seed-pure *)
    let sub = "Wal.Died" in
    let n = String.length cause and m = String.length sub in
    let rec has i = i + m <= n && (String.sub cause i m = sub || has (i + 1)) in
    r.wal && has 0
  in
  let b = Buffer.create 256 in
  List.iter
    (fun (site, calls, fired) ->
      if pure_site site then
        Buffer.add_string b (Printf.sprintf "%s:%d:%d;" site calls fired))
    r.fault_stats;
  List.iter
    (fun (shard, cause, rows) ->
      if not (wal_caused cause) then
        if r.wal then Buffer.add_string b (Printf.sprintf "R%d:%s;" shard cause)
        else Buffer.add_string b (Printf.sprintf "R%d:%s:%d;" shard cause rows))
    (List.stable_sort
       (fun (a, _, _) (b, _, _) -> Int.compare a b)
       r.recovery_log);
  Buffer.contents b

(* --- Fresh-process crash verification --------------------------------- *)

type verify_report = {
  v_shards : int;
  v_settled : int;  (* journal keys reconciled (present + absent) *)
  v_unsettled : int;  (* journal keys skipped as ambiguous *)
  v_lost : int;  (* settled-present keys missing or wrong after recovery *)
  v_phantoms : int;  (* settled-absent keys present after recovery *)
  v_ckpt_entries : int;
  v_replayed : int;
  v_fallbacks : int;  (* corrupt checkpoints skipped *)
  v_torn : int;  (* torn tails truncated *)
  v_clean : int;  (* shards whose clean-shutdown marker was present *)
  v_check_errors : int;  (* Ei_check errors across recovered shards *)
}

let verify_ok v = v.v_lost = 0 && v.v_phantoms = 0 && v.v_check_errors = 0

(* Recover a killed soak's fleet in a process with no memory of it:
   rebuild each shard from its WAL (checkpoint + replay), rebuild the
   acknowledged-write shadow from the fsynced journal, and reconcile.
   No fault plan may be configured — verification must draw nothing. *)
let verify ?(shards = 4) ?(key_len = 8) ~dir () =
  let shadow = read_journal (journal_path dir) in
  let table = Table.create ~key_len () in
  let mk_part i =
    Registry.make
      ~name:(Printf.sprintf "verify-shard%d" i)
      ~key_len ~load:(Table.loader table)
      (Registry.Elastic
         (Ei_core.Elasticity.default_config ~size_bound:max_int))
  in
  let parts = Array.init shards mk_part in
  let router = Shard.create parts in
  let ckpt_entries = ref 0
  and replayed = ref 0
  and fallbacks = ref 0
  and torn = ref 0
  and clean = ref 0
  and check_errors = ref 0 in
  Array.iteri
    (fun i part ->
      let w, r =
        Wal.recover (wal_config ~dir) ~shard:i ~part
          ~restore:(fun ~tid ~key -> Table.restore_row table ~tid ~key)
      in
      Wal.close w;
      ckpt_entries := !ckpt_entries + r.Wal.r_ckpt_entries;
      replayed := !replayed + r.Wal.r_replayed;
      fallbacks := !fallbacks + r.Wal.r_ckpt_fallbacks;
      torn := !torn + r.Wal.r_torn;
      if r.Wal.r_clean then incr clean;
      check_errors :=
        !check_errors + List.length (Check.errors (Check.run part)))
    parts;
  let settled = ref 0
  and unsettled = ref 0
  and lost = ref 0
  and phantoms = ref 0 in
  Strtbl.iter
    (fun k e ->
      let part = parts.(Shard.shard_of_key router k) in
      match e with
      | Unsettled -> incr unsettled
      | Present tid -> (
        incr settled;
        match part.Index_ops.find k with
        | Some t when t = tid -> ()
        | Some _ | None -> incr lost)
      | Absent -> (
        incr settled;
        match part.Index_ops.find k with
        | Some _ -> incr phantoms
        | None -> ()))
    shadow;
  {
    v_shards = shards;
    v_settled = !settled;
    v_unsettled = !unsettled;
    v_lost = !lost;
    v_phantoms = !phantoms;
    v_ckpt_entries = !ckpt_entries;
    v_replayed = !replayed;
    v_fallbacks = !fallbacks;
    v_torn = !torn;
    v_clean = !clean;
    v_check_errors = !check_errors;
  }

let pp_verify fmt v =
  Format.fprintf fmt
    "crash verify: %d shard(s) recovered (%d ckpt entries + %d replayed, \
     %d fallbacks, %d torn tails, %d clean)@\n\
    \  %d settled keys reconciled, %d unsettled skipped@\n\
    \  lost acknowledged writes %d, phantoms %d, check errors %d@\n"
    v.v_shards v.v_ckpt_entries v.v_replayed v.v_fallbacks v.v_torn v.v_clean
    v.v_settled v.v_unsettled v.v_lost v.v_phantoms v.v_check_errors
