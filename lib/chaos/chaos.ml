(* Deterministic chaos soak for the sharded serving layer.

   One seed drives everything: the workload stream, every fault site's
   splitmix64 stream, and therefore the crash / poison / queue-fault
   schedule and the supervisor's recovery sequence.  The engine runs
   seeded YCSB-style churn against a supervised {!Ei_shard.Serve}
   fleet under a fault plan, tracks every *acknowledged* write in a
   shadow model, and at the end reconciles the fleet against the
   shadow and deep-validates every shard with {!Ei_check}.

   Determinism protocol.  Reproducibility requires every fault site's
   draw sequence to be a pure function of the seed:

   - a single client domain issues one batch round at a time, so each
     shard domain sees a deterministic operation sequence (queue sites
     draw on the client; crash / poison / op / slash sites draw on the
     shard domain or, during a rebuild, on the supervisor — and those
     two are serialised by the domain's death and the re-spawn);
   - every batch is submitted with [barrier:true]: {!Ei_shard.Serve}
     then waits — per sub-batch, bounded by the deadline — for the
     target shard to be re-admitted before submitting, so no draw ever
     depends on whether a submission raced a recovery (in particular a
     scan continuation landing on a shard that crashed earlier in the
     same batch is queued after its rebuild, not answered degraded);
   - after any round containing a timed-out operation the client
     additionally spins until {!Ei_shard.Serve.healthy} — a crash
     parks its failure before acknowledging the batch, so this cannot
     miss a recovery in flight — keeping whole rounds aligned with
     recoveries;
   - the coordinator domain is not used; rebalances are client-driven
     at fixed round numbers ({!Ei_shard.Serve.rebalance_with});
   - retries ([inject:false] pushes, rebuild re-inserts) never re-draw
     a fault stream out of schedule.

   Acknowledged-write semantics: only [Applied] outcomes update the
   shadow; a timed-out write leaves its key *unsettled* (the operation
   may or may not have been applied) until a later acknowledged write
   settles it.  Reconciliation demands exact agreement on every
   settled key — a lost acknowledged write or a phantom row fails the
   soak — and merely counts the unsettled ones.

   The row table is deliberately under-sized: client appends grow it
   mid-run while supervised shard domains mark row liveness, which the
   growth-stable chunked liveness store ({!Ei_storage.Table}) makes
   safe — the soak exercises exactly that race. *)

module Fault = Ei_fault.Fault
module Table = Ei_storage.Table
module Index_ops = Ei_harness.Index_ops
module Registry = Ei_harness.Registry
module Serve = Ei_shard.Serve
module Shard = Ei_shard.Shard
module Check = Ei_check.Check
module Rng = Ei_util.Rng
module Strtbl = Ei_util.Strtbl
module Key = Ei_util.Key

type config = {
  seed : int;
  scale : float;  (* 1.0 = full soak; CI smoke uses ~0.05 *)
  shards : int;
  key_len : int;
  plan : (string * float) list;
  timeout_s : float;  (* exec deadline; bounds the cost of a dropped sub *)
  rebalance_every : int;  (* rounds between client-driven rebalances; 0 = off *)
  progress : (string -> unit) option;
}

(* Every fault kind the serving layer exposes, at probabilities tuned
   so a full-scale run sees a handful of recoveries per shard while
   the smoke scale still crosses the fault paths. *)
let default_plan =
  [
    ("serve.crash", 0.0015);
    ("serve.poison", 0.0008);
    ("serve.queue.*.drop", 0.0008);
    ("serve.queue.*.delay", 0.002);
    ("serve.queue.*.refuse", 0.003);
    ("serve.op", 0.002);
    ("elastic.slash", 0.005);
  ]

let default_config ~seed =
  {
    seed;
    scale = 1.0;
    shards = 4;
    key_len = 8;
    plan = default_plan;
    timeout_s = 0.5;
    rebalance_every = 25;
    progress = None;
  }

type report = {
  rounds : int;
  ops : int;
  applied : int;
  rejected : int;
  timed_out : int;
  barriers : int;  (* post-anomaly waits for fleet health *)
  recoveries : int;
  recovery_log : (int * string * int) list;
  lost : int;  (* settled-present keys missing or with the wrong tid *)
  phantoms : int;  (* settled-absent keys still present *)
  unsettled : int;  (* keys left ambiguous by timed-out writes *)
  find_mismatches : int;  (* online read inconsistencies during churn *)
  check_errors : int;  (* Ei_check Error findings across all shards *)
  fault_stats : (string * int * int) list;
}

let ok r =
  r.lost = 0 && r.phantoms = 0 && r.find_mismatches = 0 && r.check_errors = 0

(* Shadow state of one key, from acknowledged outcomes only. *)
type entry = Present of int | Absent | Unsettled

let run cfg =
  Fault.configure ~seed:cfg.seed cfg.plan;
  let scaled x =
    let v = int_of_float (float_of_int x *. cfg.scale) in
    if v < 1 then 1 else v
  in
  let nkeys = scaled 6_000 in
  let rounds = scaled 400 in
  let batch_sz = 64 in
  let global_bound = scaled 400_000 in
  let say fmt =
    Printf.ksprintf
      (fun s -> match cfg.progress with Some f -> f s | None -> ())
      fmt
  in
  (* Under-sized on purpose: appends grow the table mid-run while shard
     domains mark liveness (see above). *)
  let table =
    Table.create
      ~initial_capacity:(max 64 (nkeys / 4))
      ~key_len:cfg.key_len ()
  in
  let mk_part i =
    let ecfg =
      Ei_core.Elasticity.default_config ~size_bound:(max 1 (global_bound / cfg.shards))
    in
    let ecfg =
      {
        ecfg with
        Ei_core.Elasticity.fault_site = Printf.sprintf "elastic.slash.shard%d" i;
      }
    in
    let ix =
      Registry.make
        ~name:(Printf.sprintf "chaos-shard%d" i)
        ~key_len:cfg.key_len ~load:(Table.loader table) (Registry.Elastic ecfg)
    in
    Index_ops.inject ~site:(Fault.site (Printf.sprintf "serve.op.shard%d" i)) ix
  in
  let router = Shard.create (Array.init cfg.shards mk_part) in
  let serve =
    Serve.start
      ~supervisor:(Serve.default_supervisor ~table ~rebuild:mk_part)
      ~fault_prefix:"serve" ~timeout_s:cfg.timeout_s router
  in
  let coord = Serve.default_coordinator ~global_bound in
  let rng = Rng.stream cfg.seed 0x1 in
  let pool = Array.init nkeys (fun _ -> Key.random rng cfg.key_len) in
  let shadow : entry Strtbl.t = Strtbl.create (2 * nkeys) in
  let applied = ref 0
  and rejected = ref 0
  and timed_out = ref 0
  and barriers = ref 0
  and find_mismatches = ref 0 in
  let barrier_pending = ref false in
  for round = 1 to rounds do
    if !barrier_pending then begin
      incr barriers;
      while not (Serve.healthy serve) do
        Unix.sleepf 0.0005
      done;
      barrier_pending := false
    end;
    let ops =
      Array.init batch_sz (fun _ ->
          let k = pool.(Rng.int rng nkeys) in
          let c = Rng.int rng 100 in
          if c < 40 then Serve.Insert (k, Table.append table k)
          else if c < 55 then Serve.Remove k
          else if c < 65 then Serve.Update (k, Table.append table k)
          else if c < 90 then Serve.Find k
          else Serve.Scan (k, 16))
    in
    let outs = Serve.exec ~barrier:true serve ops in
    Array.iteri
      (fun i out ->
        match (ops.(i), out) with
        | Serve.Insert (k, tid), Serve.Applied 1 ->
          incr applied;
          Strtbl.replace shadow k (Present tid)
        | Serve.Remove k, Serve.Applied 1 ->
          incr applied;
          Strtbl.replace shadow k Absent
        | Serve.Update (k, tid), Serve.Applied 1 ->
          incr applied;
          Strtbl.replace shadow k (Present tid)
        | Serve.Find k, Serve.Applied r -> (
          incr applied;
          (* Single client + per-shard FIFO: an acknowledged read must
             agree with the shadow whenever the key is settled. *)
          match Strtbl.find_opt shadow k with
          | Some (Present tid) -> if r <> tid then incr find_mismatches
          | Some Absent | None -> if r >= 0 then incr find_mismatches
          | Some Unsettled -> ())
        | (Serve.Insert _ | Serve.Remove _ | Serve.Update _ | Serve.Scan _), Serve.Applied _
          ->
          incr applied
        | _, Serve.Rejected -> incr rejected
        | (Serve.Insert (k, _) | Serve.Remove k | Serve.Update (k, _)), Serve.Timed_out
          ->
          incr timed_out;
          Strtbl.replace shadow k Unsettled;
          barrier_pending := true
        | (Serve.Find _ | Serve.Scan _), Serve.Timed_out ->
          incr timed_out;
          barrier_pending := true)
      outs;
    if cfg.rebalance_every > 0 && round mod cfg.rebalance_every = 0 then
      Serve.rebalance_with serve coord;
    if round mod 100 = 0 then
      say "round %d/%d: %d applied, %d rejected, %d timed out, %d recoveries"
        round rounds !applied !rejected !timed_out (Serve.recoveries serve)
  done;
  (* Quiesce: let any final recovery land, freeze the fault schedule
     digest, then disarm every site so reconciliation reads draw
     nothing. *)
  while not (Serve.healthy serve) do
    Unix.sleepf 0.0005
  done;
  let fault_stats = Fault.stats () in
  Fault.clear ();
  let lost = ref 0 and phantoms = ref 0 and unsettled = ref 0 in
  (* One linear pass in 512-key windows over an array snapshot of the
     shadow (a list-chunking reconcile would re-traverse the tail per
     chunk, quadratic at full scale). *)
  let entries =
    Array.of_list (Strtbl.fold (fun k e acc -> (k, e) :: acc) shadow [])
  in
  let chunk = 512 in
  let base = ref 0 in
  while !base < Array.length entries do
    let len = min chunk (Array.length entries - !base) in
    let window = Array.sub entries !base len in
    let outs =
      Serve.exec serve (Array.map (fun (k, _) -> Serve.Find k) window)
    in
    Array.iteri
      (fun i (_, e) ->
        match (e, outs.(i)) with
        | Unsettled, _ -> incr unsettled
        | Present tid, Serve.Applied r -> if r <> tid then incr lost
        | Present _, (Serve.Rejected | Serve.Timed_out) -> incr lost
        | Absent, Serve.Applied r -> if r >= 0 then incr phantoms
        | Absent, (Serve.Rejected | Serve.Timed_out) -> incr phantoms)
      window;
    base := !base + len
  done;
  Serve.stop serve;
  let check_errors =
    Array.fold_left
      (fun acc part -> acc + List.length (Check.errors (Check.run part)))
      0 (Shard.parts router)
  in
  let report =
    {
      rounds;
      ops = rounds * batch_sz;
      applied = !applied;
      rejected = !rejected;
      timed_out = !timed_out;
      barriers = !barriers;
      recoveries = Serve.recoveries serve;
      recovery_log = Serve.recovery_log serve;
      lost = !lost;
      phantoms = !phantoms;
      unsettled = !unsettled;
      find_mismatches = !find_mismatches;
      check_errors;
      fault_stats;
    }
  in
  say "done: %d ops, %d applied, %d recoveries, lost %d, phantoms %d, %d check errors"
    report.ops report.applied report.recoveries report.lost report.phantoms
    report.check_errors;
  report

let pp_report fmt r =
  Format.fprintf fmt
    "chaos soak: %d rounds / %d ops@\n\
    \  applied %d, rejected %d, timed out %d, barriers %d@\n\
    \  recoveries %d, unsettled keys %d@\n\
    \  lost acknowledged writes %d, phantoms %d, find mismatches %d, check errors %d@\n"
    r.rounds r.ops r.applied r.rejected r.timed_out r.barriers r.recoveries
    r.unsettled r.lost r.phantoms r.find_mismatches r.check_errors;
  List.iter
    (fun (shard, cause, rows) ->
      Format.fprintf fmt "  recovery: shard %d (%s), %d rows rebuilt@\n" shard
        cause rows)
    r.recovery_log;
  List.iter
    (fun (site, calls, fired) ->
      if fired > 0 then
        Format.fprintf fmt "  fault %s: %d/%d fired@\n" site fired calls)
    r.fault_stats

(* The digest two equal-seed runs must agree on exactly: the fault
   schedule and, per shard, the recovery sequence.  Recoveries are
   stable-sorted by shard first: each shard's own sequence is
   schedule-pure, but when two shards fail in the same round the
   supervisor may reach them in either order across runs (its polling
   is wall-clock), so the cross-shard interleaving is not part of the
   reproducibility claim. *)
let schedule_digest r =
  let b = Buffer.create 256 in
  List.iter
    (fun (site, calls, fired) ->
      Buffer.add_string b (Printf.sprintf "%s:%d:%d;" site calls fired))
    r.fault_stats;
  List.iter
    (fun (shard, cause, rows) ->
      Buffer.add_string b (Printf.sprintf "R%d:%s:%d;" shard cause rows))
    (List.stable_sort
       (fun (a, _, _) (b, _, _) -> Int.compare a b)
       r.recovery_log);
  Buffer.contents b
