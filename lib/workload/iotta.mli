(** Synthetic cloud object-store access log, standing in for the SNIA
    IOTTA trace of §6.3.

    Rows mirror the paper's schema: four 8-byte columns (timestamp,
    request type, object id, size).  Timestamps are strictly increasing,
    so the 16-byte composite index key (timestamp, object id) is unique
    and time-ordered; object ids are Zipf-distributed; request types are
    categorical with GETs dominating; sizes are heavy-tailed. *)

type row = { ts : int; op : int; obj : int; size : int }

val op_name : int -> string
(** Name of a request-type code ("GET", "PUT", ...). *)

val generate : ?seed:int -> rows:int -> objects:int -> unit -> row array
(** Deterministic trace of [rows] rows over [objects] distinct objects. *)

val key_of_row : row -> string
(** The 16-byte (timestamp, object id) index key. *)

val row_bytes : int
(** Stored size of one row (32 bytes: four 8-byte columns). *)
