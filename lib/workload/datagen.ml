(* Daily data-volume model reproducing the burstiness of Figure 1: the
   size of the data extracted per day from a cloud object-store's logs.

   The paper reports many days at ~1.5x the period average and occasional
   days at 2x-3.5x.  We model a baseline log-normal-ish day-to-day
   variation plus a small probability of a spike day. *)

module Rng = Ei_util.Rng

(* Relative daily volumes, normalised so the mean is ~1.0. *)
let daily_volumes ?(seed = 1) ~days () =
  let rng = Rng.create seed in
  let raw =
    Array.init days (fun _ ->
        (* Baseline: 0.5x-1.5x, mildly skewed upwards. *)
        let base = 0.5 +. Rng.float rng in
        let spike = Rng.float rng in
        if spike < 0.04 then base *. (2.0 +. (Rng.float rng *. 1.5))
        else if spike < 0.15 then base *. 1.5
        else base)
  in
  let mean = Array.fold_left ( +. ) 0.0 raw /. float_of_int days in
  Array.map (fun v -> v /. mean) raw

(* Summary statistics used by the fig1 benchmark output. *)
let stats volumes =
  let n = Array.length volumes in
  let mean = Array.fold_left ( +. ) 0.0 volumes /. float_of_int n in
  let above threshold =
    Array.fold_left (fun a v -> if v >= threshold *. mean then a + 1 else a) 0 volumes
  in
  let max_v = Array.fold_left Float.max 0.0 volumes in
  (mean, above 1.5, above 2.0, max_v)
