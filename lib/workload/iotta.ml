(* Synthetic cloud object-store access log, standing in for the SNIA
   IOTTA trace of §6.3 (the public trace is not redistributable here).

   Each row mirrors the paper's schema: four 8-byte columns — request
   timestamp, request type, target object id, and size.  Timestamps are
   strictly increasing with jittered gaps (so the 16-byte composite index
   key (timestamp, object id) is unique and time-ordered), object ids are
   Zipf-distributed over a large population (hot objects), request types
   are categorical with a realistic skew, and sizes are drawn from a
   heavy-tailed distribution. *)

module Rng = Ei_util.Rng
module Zipf = Ei_util.Zipf
module Key = Ei_util.Key

type row = { ts : int; op : int; obj : int; size : int }

(* REST operation types observed in object-store logs. *)
let op_types = [| "GET"; "PUT"; "HEAD"; "DELETE"; "LIST"; "COPY" |]
let op_weights = [| 55; 25; 10; 5; 3; 2 |]

let op_name i = op_types.(i)

let pick_op rng =
  let total = Array.fold_left ( + ) 0 op_weights in
  let r = Rng.int rng total in
  let rec go i acc =
    let acc = acc + op_weights.(i) in
    if r < acc then i else go (i + 1) acc
  in
  go 0 0

(* Heavy-tailed object size in bytes: most objects are small, a few are
   huge (log-uniform between 128 B and 1 GiB). *)
let pick_size rng =
  let exp = 7.0 +. (Rng.float rng *. 23.0) in
  int_of_float (Float.pow 2.0 exp)

let generate ?(seed = 2022) ~rows ~objects () =
  let rng = Rng.create seed in
  let zipf = Zipf.create ~scramble:true objects in
  let ts = ref 0 in
  Array.init rows (fun _ ->
      (* Strictly increasing timestamps with bursty gaps. *)
      ts := !ts + 1 + Rng.int rng 64;
      {
        ts = !ts;
        op = pick_op rng;
        obj = Zipf.next zipf rng;
        size = pick_size rng;
      })

(* The paper's index key: 16-byte (timestamp, object id) composite. *)
let key_of_row r = Key.of_int_pair r.ts r.obj

let row_bytes = 32 (* four 8-byte columns *)
