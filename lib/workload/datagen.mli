(** Daily data-volume model reproducing the burstiness of Figure 1:
    many days near the period average, some at 1.5x, occasional spikes
    of 2x-3.5x. *)

val daily_volumes : ?seed:int -> days:int -> unit -> float array
(** Relative daily volumes, normalised to a mean of ~1.0. *)

val stats : float array -> float * int * int * float
(** [(mean, days >= 1.5x, days >= 2x, max)] of a volume series. *)
