(** YCSB core workloads (A-F) over any index from the registry, as used
    by the §6.2 evaluation.

    Keys are 64-bit values produced by a bijective hash of a sequence
    number, so the load phase's population is uniform and keys are
    unique.  The transaction phase draws keys uniformly, Zipfian, or
    "latest"-skewed. *)

type workload = A | B | C | D | E | F

val workload_name : workload -> string

type distribution = Uniform | Zipfian | Latest

val key_of_seq : int -> string
(** The bijective sequence-number to key mapping (8-byte keys). *)

type t

val create :
  ?seed:int ->
  index:Ei_harness.Index_ops.t ->
  table:Ei_storage.Table.t ->
  record_count:int ->
  unit ->
  t

val load : t -> int -> unit
(** Load phase: insert [n] fresh records.  Raises on key loss. *)

val run : t -> workload:workload -> dist:distribution -> ops:int -> int
(** Transaction phase: run [ops] operations; returns the number of reads
    served.  Raises if the index loses a key (consistency check). *)
