(* YCSB core workloads (Cooper et al. [7]), as used by the index
   evaluation framework of Wang et al. [31] in §6.2.

   Keys are 64-bit values obtained by a bijective hash of a sequence
   number (YCSB's key scrambling), so every key is unique and the load
   phase's key population is uniform over the key space.  The transaction
   phase picks keys uniformly, Zipf-distributed, or "latest"-distributed
   over the inserted population. *)

module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Zipf = Ei_util.Zipf
module Table = Ei_storage.Table
module Index_ops = Ei_harness.Index_ops

type workload = A | B | C | D | E | F

let workload_name = function
  | A -> "A"
  | B -> "B"
  | C -> "C"
  | D -> "D"
  | E -> "E"
  | F -> "F"

(* Operation mix per workload, in percent. *)
type mix = { read : int; update : int; insert : int; scan : int; rmw : int }

let mix_of = function
  | A -> { read = 50; update = 50; insert = 0; scan = 0; rmw = 0 }
  | B -> { read = 95; update = 5; insert = 0; scan = 0; rmw = 0 }
  | C -> { read = 100; update = 0; insert = 0; scan = 0; rmw = 0 }
  | D -> { read = 95; update = 0; insert = 5; scan = 0; rmw = 0 }
  | E -> { read = 0; update = 0; insert = 5; scan = 95; rmw = 0 }
  | F -> { read = 50; update = 0; insert = 0; scan = 0; rmw = 50 }

type distribution = Uniform | Zipfian | Latest

(* Bijective 64-bit mix (splitmix64 finaliser): sequence number -> key. *)
let key_of_seq seq =
  let z = Int64.of_int seq in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Key.of_int64 z

type t = {
  index : Index_ops.t;
  table : Table.t;
  rng : Rng.t;
  zipf : Zipf.t;
  mutable next_seq : int;  (* keys 0 .. next_seq-1 are inserted *)
  mutable tids : int array;  (* tid of sequence number i *)
}

let create ?(seed = 7) ~index ~table ~record_count () =
  {
    index;
    table;
    rng = Rng.create seed;
    zipf = Zipf.create ~scramble:true (max 1 record_count);
    next_seq = 0;
    tids = Array.make (max 1 record_count) 0;
  }

let insert_next t =
  let seq = t.next_seq in
  let key = key_of_seq seq in
  let tid = Table.append t.table key in
  if seq >= Array.length t.tids then begin
    let grown = Array.make (2 * Array.length t.tids) 0 in
    Array.blit t.tids 0 grown 0 (Array.length t.tids);
    t.tids <- grown
  end;
  t.tids.(seq) <- tid;
  t.next_seq <- seq + 1;
  if not (t.index.Index_ops.insert key tid) then Ei_util.Invariant.broken "ycsb: duplicate key"

(* Load phase: insert [n] records. *)
let load t n =
  for _ = 1 to n do
    insert_next t
  done

let pick_seq t dist =
  match dist with
  | Uniform -> Rng.int t.rng t.next_seq
  | Zipfian -> Zipf.next t.zipf t.rng mod t.next_seq
  | Latest -> Zipf.next_latest t.zipf t.rng ~max_item:(t.next_seq - 1)

(* Transaction phase: run [ops] operations of the given workload. *)
let run t ~workload ~dist ~ops =
  let mix = mix_of workload in
  let dist = if workload = D then Latest else dist in
  let r_read = mix.read in
  let r_update = r_read + mix.update in
  let r_insert = r_update + mix.insert in
  let r_scan = r_insert + mix.scan in
  let found = ref 0 in
  for _ = 1 to ops do
    let c = Rng.int t.rng 100 in
    if c < r_read then begin
      let seq = pick_seq t dist in
      match t.index.Index_ops.find (key_of_seq seq) with
      | Some _ -> incr found
      | None -> Ei_util.Invariant.broken "ycsb: read lost a key"
    end
    else if c < r_update then begin
      let seq = pick_seq t dist in
      if not (t.index.Index_ops.update (key_of_seq seq) t.tids.(seq)) then
        Ei_util.Invariant.broken "ycsb: update lost a key"
    end
    else if c < r_insert then insert_next t
    else if c < r_scan then begin
      let seq = pick_seq t dist in
      let len = 1 + Rng.int t.rng 100 in
      ignore (t.index.Index_ops.scan (key_of_seq seq) len)
    end
    else begin
      (* read-modify-write *)
      let seq = pick_seq t dist in
      (match t.index.Index_ops.find (key_of_seq seq) with
      | Some _ -> incr found
      | None -> Ei_util.Invariant.broken "ycsb: rmw lost a key");
      if not (t.index.Index_ops.update (key_of_seq seq) t.tids.(seq)) then
        Ei_util.Invariant.broken "ycsb: rmw update lost a key"
    end
  done;
  !found
