(** ei_obs flight recorder: on failure, dump the last N trace events,
    the telemetry timeline and registered extra sections (fault draws)
    to a self-describing [.flight.json] artifact.

    {!arm} hooks {!Ei_util.Invariant.set_on_broken}; the serving layer
    calls {!trigger} directly for shard quarantine and WAL commit
    failure.  Unarmed cost is one atomic load; dumps are capped and
    recursion-guarded, and {!trigger} never raises. *)

val arm : ?dir:string -> ?max_dumps:int -> ?events:int -> unit -> unit
(** Start recording triggers.  Dumps go to [dir] (default ["."]) as
    [ei-<seq>.flight.json], at most [max_dumps] (default 4) per arm,
    each carrying the newest [events] (default 2048) trace events. *)

val disarm : unit -> unit

val armed : unit -> bool

val trigger : reason:string -> detail:string -> unit
(** Write a dump now (no-op when unarmed, over the dump cap, or
    already dumping).  Never raises. *)

val last_dump : unit -> string option
(** Path of the most recent dump written since {!arm}. *)

val register_section : string -> (unit -> Ei_util.Mini_json.t) -> unit
(** Add a named section evaluated at dump time; re-registering a name
    replaces it.  How lower layers (the fault injector) contribute
    context without ei_obs depending on them. *)
