(* ei_obs flight recorder: when the system breaks, dump what it was
   doing.

   Arming installs a hook on {!Ei_util.Invariant.broken} and exposes
   {!trigger} for the serving layer's other two failure classes (shard
   quarantine, WAL commit failure).  A trigger snapshots the last N
   trace-ring events (decoded, with span context), the telemetry
   timeline frames, and any registered extra sections (the fault
   injector registers its recent draws) into a self-describing
   [.flight.json] artifact — so a chaos or sim failure ships its own
   post-mortem instead of a bare exception line.

   Armed-off cost is one atomic load.  Dumps are capped ([max_dumps])
   and serialised by a compare-and-set guard, so a cascade of failures
   produces a bounded set of artifacts and a trigger raised *while*
   dumping (e.g. an invariant breaking inside a section callback)
   cannot recurse.  [trigger] never raises: a flight recorder that
   turns one failure into two is worse than none. *)

module Clock = Ei_util.Bench_clock
module Invariant = Ei_util.Invariant
module Json = Ei_util.Mini_json

let armed_flag = Atomic.make false
let armed () = Atomic.get armed_flag

(* Configuration is written only by [arm]/[disarm] (cold, single
   caller by convention) and read by [trigger]; a trigger racing a
   re-arm merely dumps under the old settings. *)
let cfg_dir = ref "." [@ei.single_domain]
let cfg_max_dumps = ref 4 [@ei.single_domain]
let cfg_events = ref 2048 [@ei.single_domain]

let dumping = Atomic.make false
let dumps_done = Atomic.make 0
let last = Atomic.make None

(* Dumps that themselves failed (disk full, unwritable dir).  [trigger]
   must not raise, so the failure is counted instead of propagated. *)
let failed_dumps = Atomic.make 0

let last_dump () = Atomic.get last

(* Extra data providers: lower layers (ei_fault) register a named
   thunk evaluated at dump time. *)
let sections_lock = Mutex.create ()
let[@ei.guarded_by "sections_lock"] sections : (string * (unit -> Json.t)) list ref =
  ref []

let register_section name f =
  Mutex.lock sections_lock;
  sections := (name, f) :: List.remove_assoc name !sections;
  Mutex.unlock sections_lock

let trace_json limit =
  let evs =
    Trace.fold_events_ctx
      (fun acc ~domain ~ts ~id ~a ~b ~trace ~span ~parent ->
        (ts, domain, id, a, b, trace, span, parent) :: acc)
      []
  in
  let evs =
    List.stable_sort
      (fun (t1, _, _, _, _, _, _, _) (t2, _, _, _, _, _, _, _) ->
        Int.compare t1 t2)
      evs
  in
  let total = List.length evs in
  let evs =
    if total <= limit then evs
    else List.filteri (fun i _ -> i >= total - limit) evs
  in
  Json.List
    (List.map
       (fun (ts, domain, id, a, b, trace, span, parent) ->
         let name, cat = Trace.kind_info id in
         Json.Obj
           ([
              ("name", Json.Str name);
              ("cat", Json.Str cat);
              ("domain", Json.Int domain);
              ("ts_ns", Json.Int ts);
              ("a", Json.Int a);
              ("b", Json.Int b);
            ]
           @
           if trace = 0 then []
           else
             [
               ("trace", Json.Int trace);
               ("span", Json.Int span);
               ("parent", Json.Int parent);
             ]))
       evs)

let write_dump ~reason ~detail =
  let seq = Atomic.fetch_and_add dumps_done 1 in
  if seq < !cfg_max_dumps then begin
    let secs =
      Mutex.lock sections_lock;
      let s = !sections in
      Mutex.unlock sections_lock;
      List.rev_map
        (fun (n, f) -> (n, try f () with _ -> Json.Str "<section failed>"))
        s
    in
    let doc =
      Json.Obj
        [
          ("reason", Json.Str reason);
          ("detail", Json.Str detail);
          ("ts_ns", Json.Int (Clock.now_ns ()));
          ("trace", trace_json !cfg_events);
          ( "timeline",
            Json.List (List.map Timeline.json_of_frame (Timeline.frames ())) );
          ("sections", Json.Obj secs);
        ]
    in
    let path = Filename.concat !cfg_dir (Printf.sprintf "ei-%d.flight.json" seq) in
    let oc = open_out path in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Atomic.set last (Some path)
  end

let trigger ~reason ~detail =
  if Atomic.get armed_flag && Atomic.compare_and_set dumping false true then begin
    (try write_dump ~reason ~detail
     with _ -> Atomic.incr failed_dumps);
    Atomic.set dumping false
  end

let arm ?(dir = ".") ?(max_dumps = 4) ?(events = 2048) () =
  cfg_dir := dir;
  cfg_max_dumps := max_dumps;
  cfg_events := events;
  Atomic.set dumps_done 0;
  Atomic.set last None;
  Invariant.set_on_broken (fun msg ->
      trigger ~reason:"invariant-broken" ~detail:msg);
  Atomic.set armed_flag true

let disarm () =
  Atomic.set armed_flag false;
  Invariant.set_on_broken (fun _ -> ())
