(** ei_obs telemetry timeline: a fixed-size ring of timestamped frames
    capturing the {!Metrics} registry's trajectory — counter deltas,
    gauge values and windowed histogram quantiles between consecutive
    captures — exported as JSON-Lines.

    Deltas telescope: summing one counter's deltas over every frame
    reproduces its final value.  Captures happen at phase boundaries
    ({!capture}[ ~label]) and on a periodic ticker domain; both are
    cold paths that take the registry lock.  The frame ring is the
    input contract for workload-aware tuning (ROADMAP item 3) and one
    of the flight recorder's data sources. *)

val set_enabled : bool -> unit
(** Master switch; off by default.  {!capture} is a no-op when off. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Frames retained (oldest evicted); resets the ring.  Min 4,
    default 256. *)

(** {1 Frames} *)

type hist_frame = {
  hf_count : int;  (** samples observed in this window *)
  hf_sum : int;
  hf_p50 : int;
  hf_p99 : int;
  hf_p999 : int;
  hf_min : int;  (** cumulative min watermark at capture time *)
  hf_max : int;
}

type frame = {
  fr_seq : int;
  fr_ts_ns : int;
  fr_label : string;
  fr_counters : (string * int) list;
      (** counter deltas since the previous capture; zero deltas
          omitted *)
  fr_gauges : (string * int) list;  (** values at capture time *)
  fr_hists : (string * hist_frame) list;
      (** histograms with at least one sample in the window *)
}

val capture : ?label:string -> unit -> unit
(** Snapshot the registry into a new frame (no-op when disabled). *)

val frames : unit -> frame list
(** Retained frames, oldest first. *)

val latest : unit -> frame option

val reset : unit -> unit
(** Drop all frames and delta baselines. *)

(** {1 Periodic ticker} *)

val start_ticker : interval_s:float -> unit
(** Spawn a domain capturing a ["tick"] frame every [interval_s]
    seconds; no-op when one is already running. *)

val stop_ticker : unit -> unit
(** Stop and join the ticker domain, if any. *)

(** {1 Export} *)

val json_of_frame : frame -> Ei_util.Mini_json.t

val export_jsonl : unit -> string
(** One JSON object per line per frame, oldest first: [{"seq", "ts_ns",
    "label", "counters": {name: delta}, "gauges": {name: value},
    "histograms": {name: {count, sum, p50_ns, p99_ns, p999_ns, min_ns,
    max_ns}}}]. *)

val write_jsonl : string -> unit
