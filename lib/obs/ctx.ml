(* ei_obs span context: the causal identity a request carries across
   domains.

   A context is three small ints — a trace id naming the whole client
   request, a span id naming the current stage, and the parent span id
   linking back one stage.  Contexts are minted from one global atomic
   counter (cold: only when tracing is live) and installed into a
   per-domain mutable cell, so propagation is three field stores with
   no allocation: the client mints a root context in [Serve.exec],
   freezes its ids into the enqueued sub, and the shard executor
   re-installs a child context before applying the sub.  {!Trace.write}
   reads the ambient cell on every emission, stamping each ring event
   with whatever request is in flight on that domain — which is how a
   WAL group commit or an elastic conversion joins the flow of the
   request that triggered it without any plumbing of its own. *)

type t = { trace : int; span : int; parent : int }

let none = { trace = 0; span = 0; parent = 0 }

(* Ids are process-global so a span id never collides across domains;
   0 is reserved for "no context". *)
let next = Atomic.make 1
let fresh () = Atomic.fetch_and_add next 1

type cell = {
  mutable c_trace : int;
  mutable c_span : int;
  mutable c_parent : int;
}
[@@ei.single_domain]

let cell_key =
  Domain.DLS.new_key (fun () -> { c_trace = 0; c_span = 0; c_parent = 0 })

let cell () = Domain.DLS.get cell_key

let mint () =
  let id = fresh () in
  { trace = id; span = id; parent = 0 }

let child t = { trace = t.trace; span = fresh (); parent = t.span }

let set t =
  let c = cell () in
  c.c_trace <- t.trace;
  c.c_span <- t.span;
  c.c_parent <- t.parent

let set_child ~trace ~parent =
  let c = cell () in
  c.c_trace <- trace;
  c.c_span <- fresh ();
  c.c_parent <- parent

let clear () =
  let c = cell () in
  c.c_trace <- 0;
  c.c_span <- 0;
  c.c_parent <- 0

let current () =
  let c = cell () in
  { trace = c.c_trace; span = c.c_span; parent = c.c_parent }

let current_trace () = (cell ()).c_trace
