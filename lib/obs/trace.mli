(** ei_obs trace ring: a fixed-size lock-free ring buffer of binary
    events per domain, exported as Chrome [trace_events] JSON
    (loadable in [chrome://tracing] and Perfetto).

    Recording is a no-op until {!set_enabled}[ true]; when enabled, an
    emission is four array stores into the calling domain's own
    single-writer ring — no locks, no allocation.  Rings wrap, keeping
    the newest {!set_ring_capacity} events per domain. *)

val set_enabled : bool -> unit
(** Master switch for event recording.  Off by default. *)

val enabled : unit -> bool

val set_ring_capacity : int -> unit
(** Capacity (events per domain), rounded up to a power of two, min 16.
    Applies to rings created afterwards — set it before enabling
    tracing.  Default 32768. *)

(** {1 Event kinds} *)

val define :
  ?span:bool -> ?arg0:string -> ?arg1:string -> cat:string -> string -> int
(** [define ~cat name] interns an event kind and returns its id (cold
    path; do it once at module init).  [arg0]/[arg1] name the payload
    words in the exported JSON.  With [~span:true] the event renders as
    a Chrome "X" complete event: payload word 0 is its duration in
    nanoseconds ([arg0] is ignored). *)

val kind_info : int -> string * string
(** Name and category of an interned kind id ([("event-N", "unknown")]
    for an id never defined) — for decoders like the flight
    recorder. *)

(** {1 Recording} *)

val emit : int -> int -> int -> unit
(** [emit id a b] records an event of kind [id] with payload words [a]
    and [b], timestamped now.  Every recording also stamps the ambient
    {!Ctx} span context (trace/span/parent ids, 0 when none), so events
    emitted while a request context is installed join that request's
    flow in the export. *)

val instant : ?a:int -> ?b:int -> int -> unit

val start : unit -> int
(** Clock value opening a span, or 0 when tracing is off. *)

val span : int -> start_ns:int -> int -> unit
(** [span id ~start_ns b] records a span-kind event covering
    [start_ns .. now] with second payload word [b].  Dropped when
    [start_ns] is 0. *)

(** {1 Reading and export} *)

val events : unit -> int
(** Number of retained events across all rings. *)

val fold_events :
  ('acc -> domain:int -> ts:int -> id:int -> a:int -> b:int -> 'acc) ->
  'acc ->
  'acc
(** Fold over every ring's retained events, per ring in write order.
    Quiesce emitters first: rings are single-writer and the reader
    takes no lock against them. *)

val fold_events_ctx :
  ('acc ->
  domain:int ->
  ts:int ->
  id:int ->
  a:int ->
  b:int ->
  trace:int ->
  span:int ->
  parent:int ->
  'acc) ->
  'acc ->
  'acc
(** {!fold_events} plus each event's span context (all 0 when the event
    was recorded outside any request). *)

val reset : unit -> unit
(** Drop all retained events (rings stay allocated). *)

val export_json : unit -> string
(** The merged rings as Chrome [trace_events] JSON: events sorted by
    timestamp, normalised to the earliest event, one track per domain,
    plus thread-name metadata records.  Span events carrying a {!Ctx}
    context gain [trace]/[span]/[parent] args and Perfetto flow events
    ([ph] "s"/"t"/"f", [id] = trace id) linking one request's slices
    across domains into an arrow chain. *)

val write_json : string -> unit
(** {!export_json} to a file. *)
