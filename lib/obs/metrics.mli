(** ei_obs metrics registry: counters, gauges and log-bucketed latency
    histograms, sharded per domain and merged on read.

    Every recording call is a no-op (one atomic load + branch) until
    {!set_enabled}[ true]; when enabled, recording is a single atomic
    increment on a per-domain cell, so concurrent domains never lose
    counts and rarely contend.  Handles are interned by name —
    constructing the same metric twice returns the same cells. *)

val set_enabled : bool -> unit
(** Master switch for all recording (counters, gauges, histograms).
    Off by default. *)

val enabled : unit -> bool

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Interned by name; dotted names ([serve.batches]) group related
    metrics and map to [ei_serve_batches] in Prometheus exposition. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Merged total across the per-domain cells. *)

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit

val add_gauge : gauge -> int -> unit
(** Atomically add a (possibly negative) delta — for level gauges
    moved by concurrent writers, e.g. open-connection counts. *)

val gauge_value : gauge -> int

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Power-of-two-bucketed histogram; values are nanoseconds by
    convention but any non-negative int works (bucket [i] holds
    [2{^i} .. 2{^i+1}-1]; bucket 0 also absorbs 0). *)

val observe : histogram -> int -> unit
(** Record a value: bucket + sum increments, min/max watermark
    relaxation, and — when an ambient {!Ctx} trace is installed — the
    bucket's exemplar is updated to that trace id. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val histogram_min : histogram -> int
(** Smallest value ever observed (since the last reset); 0 when
    empty. *)

val histogram_max : histogram -> int
(** Largest value ever observed (since the last reset); 0 when
    empty. *)

val quantile : histogram -> float -> int
(** [quantile h q] for [q] in [0, 1]: linear interpolation inside the
    log2 bucket containing the rank-[ceil (q*n)] sample, clamped to the
    observed min/max watermarks — a single-sample histogram reports the
    sample itself.  0 when the histogram is empty. *)

val quantile_exemplar : histogram -> float -> int
(** The trace id most recently observed into the bucket where
    [quantile h q]'s rank falls — a Prometheus-style exemplar pointing
    from a latency quantile into the trace ring.  0 when unknown. *)

val reset_histogram : histogram -> unit

(** {1 Probes} *)

val register_probe : string -> (unit -> int) -> unit
(** Fold an externally-maintained counter into the export surface; the
    callback is evaluated at dump time.  Re-registering a name replaces
    the callback. *)

(** {1 Lifecycle and export} *)

val reset : unit -> unit
(** Zero every registered counter, gauge and histogram (probes are
    external and not touched). *)

val dump_prometheus : unit -> string
(** Text exposition: counters, gauges, probes-as-gauges, histograms as
    summaries with p50/p90/p99/p999 quantile lines. *)

val dump_json : unit -> string
(** One JSON object: [{"counters": {..}, "gauges": {..}, "probes":
    {..}, "histograms": {name: {count, sum, min_ns, max_ns, p50_ns,
    ..., p999_exemplar?}}}] — exemplar fields appear only for
    quantiles whose bucket recorded a trace id. *)

(** {1 Registry listings}

    Stable name-sorted views of the registry for snapshot engines
    ({!Timeline}): counters and gauges as values, histograms as live
    handles so bucket arrays can be delta'd between frames. *)

val counters_list : unit -> (string * int) list
val gauges_list : unit -> (string * int) list
val histograms_list : unit -> (string * histogram) list
val histogram_name : histogram -> string

val histogram_buckets : histogram -> int array
(** A fresh merged copy of the per-domain bucket rows. *)

(**/**)

val bucket_of : int -> int
val bucket_upper : int -> int
(** Exposed for the test suite: the bucket index of a value and a
    bucket's inclusive upper bound. *)

val quantile_of_buckets : ?lo:int -> ?hi:int -> int array -> float -> int
(** Quantile over a raw (merged or delta'd) bucket array, interpolated
    and clamped to [lo]/[hi] when given — what {!Timeline} uses on
    windowed bucket deltas. *)
