(** ei_obs span context: the causal identity a request carries across
    domains.

    A context names a client request ([trace]), the current stage of
    its journey ([span]) and the stage that caused it ([parent]).  The
    ambient context lives in a per-domain mutable cell; {!Trace}
    stamps every ring event with it, so installing a context before a
    section is all it takes for that section's events — including
    nested WAL commits and elastic conversions — to join the request's
    flow in the exported Perfetto view.

    Minting draws from a global atomic counter and is meant to be
    gated on {!Trace.enabled}; id 0 means "no context". *)

type t = { trace : int; span : int; parent : int }

val none : t

val mint : unit -> t
(** A fresh root context: new trace id, [span = trace], no parent. *)

val child : t -> t
(** Same trace, fresh span id, parent = the given context's span. *)

val set : t -> unit
(** Install as this domain's ambient context (three field stores). *)

val set_child : trace:int -> parent:int -> unit
(** Install a fresh child span of [(trace, parent)] as the ambient
    context without allocating — the shard-executor fast path. *)

val clear : unit -> unit

val current : unit -> t

val current_trace : unit -> int
(** Ambient trace id, 0 when none — non-allocating; what histogram
    exemplars record. *)

(**/**)

type cell = private {
  mutable c_trace : int;
  mutable c_span : int;
  mutable c_parent : int;
}

val cell : unit -> cell
(** The domain-local context cell, for {!Trace.write}'s single read. *)
