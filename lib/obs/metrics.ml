(* ei_obs metrics registry: counters, gauges and log-bucketed latency
   histograms over the whole serving stack.

   Hot-path discipline: every recording call first loads one global
   [enabled] atomic and returns when observability is off, so compiled-in
   instrumentation costs a load and a predictable branch on production
   paths.  When enabled, a recording is a single [Atomic.fetch_and_add]
   on a per-domain cell — counters and histogram buckets are sharded
   [shards] ways by domain id and merged on read, so concurrent shard
   domains never contend on one cache line and never lose increments.

   Histograms bucket values (nanoseconds by convention) into power-of-two
   buckets: bucket [i] holds values in [2^i, 2^{i+1}) (bucket 0 also
   absorbs 0).  Quantiles walk the merged buckets to the bucket holding
   the rank-[ceil (q*n)] sample and interpolate linearly inside it
   (assuming samples spread uniformly across the bucket), clamped to the
   histogram's observed min/max watermarks — so a single-sample
   histogram reports the sample itself, not a power-of-two ceiling.
   Each bucket also retains the {!Ctx} trace id of its most recent hit
   (an exemplar, Prometheus-style): ask a histogram for its p999 and it
   can also name a trace that actually landed there.

   [register_probe] folds externally-maintained counters (e.g. the
   SeqTree scan-length stats of {!Ei_blindi.Stats}) into the same export
   surface without forcing them through atomic cells. *)

module Strtbl = Ei_util.Strtbl

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Power of two; domain ids map onto cells by masking.  16 ways covers
   the shard counts the serving layer runs (1..8 domains plus
   supervisor/coordinator) with few collisions, and a collision only
   costs contention, never a lost count. *)
let shards = 16

let cell () = (Domain.self () :> int) land (shards - 1)

(* --- Counters --------------------------------------------------------- *)

type counter = { cname : string; ccells : int Atomic.t array }

let sum_cells cells =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells

let incr c =
  if Atomic.get on then
    ignore (Atomic.fetch_and_add c.ccells.(cell ()) 1)

let add c n =
  if Atomic.get on then
    ignore (Atomic.fetch_and_add c.ccells.(cell ()) n)

let counter_value c = sum_cells c.ccells

(* --- Gauges ----------------------------------------------------------- *)

type gauge = { gname : string; gcell : int Atomic.t }

let set_gauge g v = if Atomic.get on then Atomic.set g.gcell v

let add_gauge g d =
  if Atomic.get on then ignore (Atomic.fetch_and_add g.gcell d)

let gauge_value g = Atomic.get g.gcell

(* --- Histograms ------------------------------------------------------- *)

(* 63 buckets cover every non-negative OCaml int. *)
let buckets = 63

type histogram = {
  hname : string;
  hcounts : int Atomic.t array;  (* shards * buckets, row per shard *)
  hsums : int Atomic.t array;    (* per-shard value sums *)
  hmins : int Atomic.t array;    (* per-shard min watermark; max_int = none *)
  hmaxs : int Atomic.t array;    (* per-shard max watermark; -1 = none *)
  hexem : int Atomic.t array;    (* per-bucket last trace id; last-write-wins *)
}

(* Floor of log2 for v > 0, by binary reduction (no popcount/clz in the
   stdlib; six shifts beat a loop on the hot path). *)
let log2 v =
  let v = ref v and r = ref 0 in
  if !v lsr 32 <> 0 then begin v := !v lsr 32; r := !r + 32 end;
  if !v lsr 16 <> 0 then begin v := !v lsr 16; r := !r + 16 end;
  if !v lsr 8 <> 0 then begin v := !v lsr 8; r := !r + 8 end;
  if !v lsr 4 <> 0 then begin v := !v lsr 4; r := !r + 4 end;
  if !v lsr 2 <> 0 then begin v := !v lsr 2; r := !r + 2 end;
  if !v lsr 1 <> 0 then r := !r + 1;
  !r

let bucket_of v = if v <= 1 then 0 else min (buckets - 1) (log2 v)

(* Inclusive upper bound of bucket [i]: the value a quantile reports. *)
let bucket_upper i = if i >= buckets - 1 then max_int else (1 lsl (i + 1)) - 1

(* CAS loops for the watermarks: collisions need two domains to share a
   cell (rare) and race the same extremum update (rarer); the common
   case is one read finding the watermark already past [v]. *)
let rec relax_min c v =
  let cur = Atomic.get c in
  if v < cur && not (Atomic.compare_and_set c cur v) then relax_min c v

let rec relax_max c v =
  let cur = Atomic.get c in
  if v > cur && not (Atomic.compare_and_set c cur v) then relax_max c v

let observe h v =
  if Atomic.get on then begin
    let s = cell () in
    let bkt = bucket_of v in
    ignore (Atomic.fetch_and_add h.hcounts.((s * buckets) + bkt) 1);
    ignore (Atomic.fetch_and_add h.hsums.(s) v);
    relax_min h.hmins.(s) v;
    relax_max h.hmaxs.(s) v;
    let tr = Ctx.current_trace () in
    if tr <> 0 then Atomic.set h.hexem.(bkt) tr
  end

(* Merge the per-domain rows into one bucket array. *)
let merged h =
  let out = Array.make buckets 0 in
  for s = 0 to shards - 1 do
    for b = 0 to buckets - 1 do
      out.(b) <- out.(b) + Atomic.get h.hcounts.((s * buckets) + b)
    done
  done;
  out

let histogram_count h = sum_cells h.hcounts

let histogram_sum h = sum_cells h.hsums

let histogram_min h =
  let m = Array.fold_left (fun acc c -> min acc (Atomic.get c)) max_int h.hmins in
  if m = max_int then 0 else m

let histogram_max h =
  let m = Array.fold_left (fun acc c -> max acc (Atomic.get c)) (-1) h.hmaxs in
  if m < 0 then 0 else m

(* Inclusive lower bound of bucket [i]. *)
let bucket_lower i = if i = 0 then 0 else 1 lsl i

(* Index of the bucket holding the rank-[ceil (q*n)] sample, with the
   sample's rank offset inside the bucket — shared by quantile and
   exemplar lookup.  None when the histogram is empty. *)
let quantile_bucket bs q =
  let n = Array.fold_left ( + ) 0 bs in
  if n = 0 then None
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let rec walk i acc =
      if i >= buckets then Some (buckets - 1, 1, 1)
      else
        let acc' = acc + bs.(i) in
        if acc' >= rank then Some (i, rank - acc, bs.(i)) else walk (i + 1) acc'
    in
    walk 0 0
  end

(* [quantile_of_buckets bs q] interpolates linearly inside the rank's
   bucket — samples are assumed uniform across [lower .. upper] — and
   clamps to the [lo]/[hi] watermarks when given, so exact extrema
   (min, max, single sample) report themselves.  Empty: 0. *)
let quantile_of_buckets ?(lo = 0) ?(hi = max_int) bs q =
  match quantile_bucket bs q with
  | None -> 0
  | Some (i, in_rank, in_count) ->
    let l = bucket_lower i and u = bucket_upper i in
    let frac = float_of_int in_rank /. float_of_int (max in_count 1) in
    let v = l + int_of_float (frac *. float_of_int (u - l)) in
    let v = if v < lo then lo else v in
    if v > hi then hi else v

let quantile h q =
  quantile_of_buckets ~lo:(histogram_min h) ~hi:(histogram_max h) (merged h) q

(* The trace id most recently observed into the bucket a quantile's
   rank lands in; 0 when the histogram is empty or the bucket never saw
   a hit while a request context was installed. *)
let quantile_exemplar h q =
  match quantile_bucket (merged h) q with
  | None -> 0
  | Some (i, _, _) -> Atomic.get h.hexem.(i)

let reset_histogram h =
  Array.iter (fun c -> Atomic.set c 0) h.hcounts;
  Array.iter (fun c -> Atomic.set c 0) h.hsums;
  Array.iter (fun c -> Atomic.set c max_int) h.hmins;
  Array.iter (fun c -> Atomic.set c (-1)) h.hmaxs;
  Array.iter (fun c -> Atomic.set c 0) h.hexem

(* --- Registry --------------------------------------------------------- *)

let lock = Mutex.create ()
let[@ei.guarded_by "lock"] counters : counter Strtbl.t = Strtbl.create 64
let[@ei.guarded_by "lock"] gauges : gauge Strtbl.t = Strtbl.create 16
let[@ei.guarded_by "lock"] histograms : histogram Strtbl.t = Strtbl.create 32
let[@ei.guarded_by "lock"] probes : (unit -> int) Strtbl.t = Strtbl.create 16

let with_lock f =
  Mutex.lock lock;
  let r = try f () with e -> Mutex.unlock lock; raise e in
  Mutex.unlock lock;
  r

let intern tbl name make =
  with_lock (fun () ->
      match Strtbl.find_opt tbl name with
      | Some x -> x
      | None ->
        let x = make () in
        Strtbl.add tbl name x;
        x)

let counter name =
  intern counters name (fun () ->
      { cname = name; ccells = Array.init shards (fun _ -> Atomic.make 0) })

let gauge name =
  intern gauges name (fun () -> { gname = name; gcell = Atomic.make 0 })

let histogram name =
  intern histograms name (fun () ->
      {
        hname = name;
        hcounts = Array.init (shards * buckets) (fun _ -> Atomic.make 0);
        hsums = Array.init shards (fun _ -> Atomic.make 0);
        hmins = Array.init shards (fun _ -> Atomic.make max_int);
        hmaxs = Array.init shards (fun _ -> Atomic.make (-1));
        hexem = Array.init buckets (fun _ -> Atomic.make 0);
      })

let register_probe name f =
  with_lock (fun () -> Strtbl.replace probes name f)

let reset () =
  with_lock (fun () ->
      Strtbl.iter
        (fun _ c -> Array.iter (fun a -> Atomic.set a 0) c.ccells)
        counters;
      Strtbl.iter (fun _ g -> Atomic.set g.gcell 0) gauges;
      Strtbl.iter (fun _ h -> reset_histogram h) histograms)

(* --- Export ----------------------------------------------------------- *)

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Strtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

type hist_snap = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_quantiles : (float * int) list;
  hs_exemplars : (float * int) list;  (* quantile -> trace id, 0 = none *)
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * int) list;
  snap_probes : (string * int) list;
  snap_histograms : (string * hist_snap) list;
}

let export_quantiles = [ 0.5; 0.9; 0.99; 0.999 ]

let hist_snap_of h =
  let bs = merged h in
  let lo = histogram_min h and hi = histogram_max h in
  {
    hs_count = Array.fold_left ( + ) 0 bs;
    hs_sum = histogram_sum h;
    hs_min = lo;
    hs_max = hi;
    hs_quantiles =
      List.map (fun q -> (q, quantile_of_buckets ~lo ~hi bs q)) export_quantiles;
    hs_exemplars =
      List.map
        (fun q ->
          ( q,
            match quantile_bucket bs q with
            | None -> 0
            | Some (i, _, _) -> Atomic.get h.hexem.(i) ))
        export_quantiles;
  }

let snapshot () =
  with_lock (fun () ->
      {
        snap_counters =
          List.map
            (fun (n, c) -> (n, counter_value c))
            (sorted_bindings counters);
        snap_gauges =
          List.map (fun (n, g) -> (n, gauge_value g)) (sorted_bindings gauges);
        snap_probes =
          List.map (fun (n, f) -> (n, f ())) (sorted_bindings probes);
        snap_histograms =
          List.map (fun (n, h) -> (n, hist_snap_of h)) (sorted_bindings histograms);
      })

(* Registry listings for the {!Timeline} snapshot engine: stable
   name-sorted views, histogram entries as live handles so the caller
   can delta merged bucket arrays between frames. *)
let counters_list () =
  with_lock (fun () ->
      List.map (fun (n, c) -> (n, counter_value c)) (sorted_bindings counters))

let gauges_list () =
  with_lock (fun () ->
      List.map (fun (n, g) -> (n, gauge_value g)) (sorted_bindings gauges))

let histograms_list () = with_lock (fun () -> sorted_bindings histograms)

let histogram_name h = h.hname
let histogram_buckets h = merged h

(* Prometheus metric names allow [a-zA-Z0-9_:]; dotted registry names
   map onto underscores under an [ei_] namespace. *)
let prom_name n =
  let b = Bytes.of_string ("ei_" ^ n) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

let dump_prometheus () =
  let s = snapshot () in
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  List.iter
    (fun (n, v) ->
      line "# TYPE %s counter" (prom_name n);
      line "%s %d" (prom_name n) v)
    s.snap_counters;
  List.iter
    (fun (n, v) ->
      line "# TYPE %s gauge" (prom_name n);
      line "%s %d" (prom_name n) v)
    (s.snap_gauges @ s.snap_probes);
  List.iter
    (fun (n, hs) ->
      let pn = prom_name n in
      line "# TYPE %s summary" pn;
      List.iter (fun (q, v) -> line "%s{quantile=\"%g\"} %d" pn q v) hs.hs_quantiles;
      line "%s_sum %d" pn hs.hs_sum;
      line "%s_count %d" pn hs.hs_count;
      line "%s_min %d" pn hs.hs_min;
      line "%s_max %d" pn hs.hs_max)
    s.snap_histograms;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dump_json () =
  let s = snapshot () in
  let b = Buffer.create 4096 in
  let obj fields =
    "{" ^ String.concat ", " fields ^ "}"
  in
  let scalars kvs =
    List.map (fun (n, v) -> Printf.sprintf "\"%s\": %d" (json_escape n) v) kvs
  in
  let qname q =
    (* 0.5 -> "p50", 0.999 -> "p999" *)
    match Printf.sprintf "%g" q with
    | "0.5" -> "p50"
    | "0.9" -> "p90"
    | "0.99" -> "p99"
    | "0.999" -> "p999"
    | s -> "p" ^ s
  in
  let hists =
    List.map
      (fun (n, hs) ->
        Printf.sprintf "\"%s\": %s" (json_escape n)
          (obj
             (Printf.sprintf "\"count\": %d" hs.hs_count
             :: Printf.sprintf "\"sum\": %d" hs.hs_sum
             :: Printf.sprintf "\"min_ns\": %d" hs.hs_min
             :: Printf.sprintf "\"max_ns\": %d" hs.hs_max
             :: List.map
                  (fun (q, v) -> Printf.sprintf "\"%s_ns\": %d" (qname q) v)
                  hs.hs_quantiles
             @ List.filter_map
                 (fun (q, tr) ->
                   if tr = 0 then None
                   else
                     Some
                       (Printf.sprintf "\"%s_exemplar\": %d" (qname q) tr))
                 hs.hs_exemplars)))
      s.snap_histograms
  in
  Buffer.add_string b
    (obj
       [
         Printf.sprintf "\"counters\": %s" (obj (scalars s.snap_counters));
         Printf.sprintf "\"gauges\": %s" (obj (scalars s.snap_gauges));
         Printf.sprintf "\"probes\": %s" (obj (scalars s.snap_probes));
         Printf.sprintf "\"histograms\": %s" (obj hists);
       ]);
  Buffer.contents b
