(* ei_obs telemetry timeline: the registry's trajectory over time, not
   just its total at exit.

   A [capture] walks the {!Metrics} registry and appends one *frame* to
   a fixed-size ring: counter deltas since the previous capture (only
   the ones that moved), current gauge values, and per-histogram
   *windowed* statistics — count/sum/p50/p99/p999 over exactly the
   samples that landed between the two captures, computed by
   subtracting the previous capture's merged bucket array.  Deltas
   telescope: summing a counter's deltas across every frame reproduces
   its final value, which is what makes the frames an honest input for
   a tuner replaying "what was the op mix while p99 degraded?".

   Captures are driven two ways: explicitly at phase boundaries
   ([capture ~label]), and periodically by a ticker domain
   ([start_ticker]).  Both are cold paths — a capture takes the
   registry lock and allocates freely; nothing here touches a request
   hot path.  The frame ring is the flight recorder's second data
   source and the JSON-Lines export behind [ei timeline]. *)

module Clock = Ei_util.Bench_clock
module Invariant = Ei_util.Invariant
module Json = Ei_util.Mini_json
module Strtbl = Ei_util.Strtbl

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

type hist_frame = {
  hf_count : int;  (* samples in this window *)
  hf_sum : int;
  hf_p50 : int;
  hf_p99 : int;
  hf_p999 : int;
  hf_min : int;  (* cumulative watermarks at capture time *)
  hf_max : int;
}

type frame = {
  fr_seq : int;
  fr_ts_ns : int;
  fr_label : string;
  fr_counters : (string * int) list;  (* deltas since previous frame *)
  fr_gauges : (string * int) list;    (* values at capture time *)
  fr_hists : (string * hist_frame) list;
}

(* All state below the lock: the frame ring plus the previous capture's
   counter values and histogram bucket arrays (the delta baselines). *)
let lock = Mutex.create ()
let[@ei.guarded_by "lock"] frames_ring : frame option array ref = ref (Array.make 256 None)
let[@ei.guarded_by "lock"] next_seq = ref 0
let[@ei.guarded_by "lock"] prev_counters : int Strtbl.t = Strtbl.create 64
let[@ei.guarded_by "lock"] prev_buckets : int array Strtbl.t = Strtbl.create 32
let[@ei.guarded_by "lock"] prev_sums : int Strtbl.t = Strtbl.create 32

let with_lock f =
  Mutex.lock lock;
  let r = try f () with e -> Mutex.unlock lock; raise e in
  Mutex.unlock lock;
  r

let set_capacity n =
  if n < 4 then Invariant.brokenf "Timeline: frame capacity %d too small" n;
  with_lock (fun () ->
      frames_ring := Array.make n None;
      next_seq := 0)

let reset () =
  with_lock (fun () ->
      Array.fill !frames_ring 0 (Array.length !frames_ring) None;
      next_seq := 0;
      Strtbl.reset prev_counters;
      Strtbl.reset prev_buckets;
      Strtbl.reset prev_sums)

let capture ?(label = "") () =
  if Atomic.get on then begin
    let ts = Clock.now_ns () in
    let counters = Metrics.counters_list () in
    let gauges = Metrics.gauges_list () in
    let hists = Metrics.histograms_list () in
    with_lock (fun () ->
        let fr_counters =
          List.filter_map
            (fun (n, v) ->
              let prev =
                Option.value ~default:0 (Strtbl.find_opt prev_counters n)
              in
              Strtbl.replace prev_counters n v;
              if v - prev = 0 then None else Some (n, v - prev))
            counters
        in
        let fr_hists =
          List.filter_map
            (fun (n, h) ->
              let bs = Metrics.histogram_buckets h in
              let sum = Metrics.histogram_sum h in
              let prev_bs = Strtbl.find_opt prev_buckets n in
              let prev_sum =
                Option.value ~default:0 (Strtbl.find_opt prev_sums n)
              in
              Strtbl.replace prev_buckets n (Array.copy bs);
              Strtbl.replace prev_sums n sum;
              (match prev_bs with
              | Some pb -> Array.iteri (fun i p -> bs.(i) <- bs.(i) - p) pb
              | None -> ());
              let count = Array.fold_left ( + ) 0 bs in
              if count = 0 then None
              else
                let lo = Metrics.histogram_min h
                and hi = Metrics.histogram_max h in
                let q p = Metrics.quantile_of_buckets ~lo ~hi bs p in
                Some
                  ( n,
                    {
                      hf_count = count;
                      hf_sum = sum - prev_sum;
                      hf_p50 = q 0.5;
                      hf_p99 = q 0.99;
                      hf_p999 = q 0.999;
                      hf_min = lo;
                      hf_max = hi;
                    } ))
            hists
        in
        let fr =
          {
            fr_seq = !next_seq;
            fr_ts_ns = ts;
            fr_label = label;
            fr_counters;
            fr_gauges = gauges;
            fr_hists;
          }
        in
        let ring = !frames_ring in
        ring.(!next_seq mod Array.length ring) <- Some fr;
        incr next_seq)
  end

let frames () =
  with_lock (fun () ->
      let ring = !frames_ring in
      let cap = Array.length ring in
      let first = if !next_seq > cap then !next_seq - cap else 0 in
      let out = ref [] in
      for s = !next_seq - 1 downto first do
        match ring.(s mod cap) with
        | Some fr -> out := fr :: !out
        | None -> ()
      done;
      !out)

let latest () =
  with_lock (fun () ->
      if !next_seq = 0 then None
      else !frames_ring.((!next_seq - 1) mod Array.length !frames_ring))

(* --- Periodic ticker --------------------------------------------------- *)

let ticker_lock = Mutex.create ()
let[@ei.guarded_by "ticker_lock"] ticker : unit Domain.t option ref = ref None
let ticker_stop = Atomic.make false

let start_ticker ~interval_s =
  Mutex.lock ticker_lock;
  (if !ticker = None then begin
     Atomic.set ticker_stop false;
     ticker :=
       Some
         (Domain.spawn (fun () ->
              while not (Atomic.get ticker_stop) do
                Unix.sleepf interval_s;
                if not (Atomic.get ticker_stop) then capture ~label:"tick" ()
              done))
   end);
  Mutex.unlock ticker_lock

let stop_ticker () =
  Mutex.lock ticker_lock;
  let d = !ticker in
  ticker := None;
  Mutex.unlock ticker_lock;
  match d with
  | None -> ()
  | Some d ->
    Atomic.set ticker_stop true;
    Domain.join d

(* --- JSON-Lines export ------------------------------------------------- *)

let json_of_hist_frame hf =
  Json.Obj
    [
      ("count", Json.Int hf.hf_count);
      ("sum", Json.Int hf.hf_sum);
      ("p50_ns", Json.Int hf.hf_p50);
      ("p99_ns", Json.Int hf.hf_p99);
      ("p999_ns", Json.Int hf.hf_p999);
      ("min_ns", Json.Int hf.hf_min);
      ("max_ns", Json.Int hf.hf_max);
    ]

let json_of_frame fr =
  Json.Obj
    [
      ("seq", Json.Int fr.fr_seq);
      ("ts_ns", Json.Int fr.fr_ts_ns);
      ("label", Json.Str fr.fr_label);
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) fr.fr_counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) fr.fr_gauges));
      ( "histograms",
        Json.Obj
          (List.map (fun (n, hf) -> (n, json_of_hist_frame hf)) fr.fr_hists) );
    ]

let export_jsonl () =
  let b = Buffer.create 4096 in
  List.iter
    (fun fr ->
      Buffer.add_string b (Json.to_string (json_of_frame fr));
      Buffer.add_char b '\n')
    (frames ());
  Buffer.contents b

let write_jsonl path =
  let oc = open_out path in
  output_string oc (export_jsonl ());
  close_out oc
