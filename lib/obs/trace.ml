(* ei_obs trace ring: one fixed-size lock-free ring buffer of binary
   events per domain, exported as Chrome [trace_events] JSON.

   Each event is four words — a {!Ei_util.Bench_clock.now_ns} timestamp,
   an event id, and two payload words — written into the calling
   domain's own ring at a single-writer cursor, so the hot path is four
   array stores and a cursor bump with no locks and no allocation.  The
   ring wraps: a long run keeps the newest [ring_capacity] events per
   domain, which is exactly what a post-mortem wants.

   Event *kinds* are interned once, cold, through {!define}: a kind
   carries a name, a Chrome category, optional payload-argument names
   and whether the event is a span (payload word 0 is then a duration in
   nanoseconds and the event renders as a Chrome "X" complete event
   instead of an instant).

   The exporter merges every domain's ring, sorts by timestamp,
   normalises to the earliest event and emits
   [{"traceEvents": [...], ...}] — loadable in [chrome://tracing] and
   Perfetto, with each domain as its own track. *)

module Clock = Ei_util.Bench_clock
module Invariant = Ei_util.Invariant

(* Monomorphic int-keyed table for the exporter's per-trace slice
   counts (trace ids are ints; the seeded string table would be the
   wrong shape and the polymorphic default is linted out). *)
module Itbl = Hashtbl.Make (Int)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* --- Event kinds ------------------------------------------------------ *)

type kind = {
  ev_name : string;
  ev_cat : string;
  ev_span : bool;
  ev_arg0 : string;  (* "" = unnamed; spans render arg0 as the duration *)
  ev_arg1 : string;
}

let kinds_lock = Mutex.create ()
let[@ei.guarded_by "kinds_lock"] kinds : kind array ref = ref [||]

let kind_info id =
  let ks = !kinds in
  if id >= 0 && id < Array.length ks then (ks.(id).ev_name, ks.(id).ev_cat)
  else (Printf.sprintf "event-%d" id, "unknown")

let define ?(span = false) ?(arg0 = "") ?(arg1 = "") ~cat name =
  Mutex.lock kinds_lock;
  let ks = !kinds in
  let id = Array.length ks in
  kinds :=
    Array.append ks
      [| { ev_name = name; ev_cat = cat; ev_span = span; ev_arg0 = arg0; ev_arg1 = arg1 } |];
  Mutex.unlock kinds_lock;
  id

(* --- Rings ------------------------------------------------------------ *)

(* One ring per domain, written only by its owner; a reader walking the
   ring after the fact tolerates torn slots (see [drain]).  [rtr] holds
   the ambient {!Ctx} trace id (0 = no request in flight) and [rsl] the
   span/parent pair packed into one word. *)
type ring = {
  rdom : int;
  rts : int array;
  rev : int array;
  ra : int array;
  rb : int array;
  rtr : int array;
  rsl : int array;
  mutable cursor : int;  (* total events ever written; single writer *)
}
[@@ei.single_domain]

(* Span and parent ids share a word: 31 bits each fits any id a real
   run mints (ids are sequential) inside OCaml's 63-bit int. *)
let pack_link ~span ~parent =
  ((parent land 0x7fffffff) lsl 31) lor (span land 0x7fffffff)

let link_span sl = sl land 0x7fffffff
let link_parent sl = (sl lsr 31) land 0x7fffffff

let default_capacity = 32768
let capacity = Atomic.make default_capacity

let rec pow2_at_least n p = if p >= n then p else pow2_at_least n (p * 2)

let set_ring_capacity n =
  if n < 16 then Invariant.brokenf "Trace: ring capacity %d too small" n;
  Atomic.set capacity (pow2_at_least n 16)

let rings_lock = Mutex.create ()
let[@ei.guarded_by "rings_lock"] rings : ring list ref = ref []

let new_ring () =
  let cap = Atomic.get capacity in
  let r =
    {
      rdom = (Domain.self () :> int);
      rts = Array.make cap 0;
      rev = Array.make cap 0;
      ra = Array.make cap 0;
      rb = Array.make cap 0;
      rtr = Array.make cap 0;
      rsl = Array.make cap 0;
      cursor = 0;
    }
  in
  Mutex.lock rings_lock;
  rings := r :: !rings;
  Mutex.unlock rings_lock;
  r

(* Domain-local ring, created on a domain's first emission.  Rings of
   exited domains stay registered so their events survive into the
   export. *)
let ring_key = Domain.DLS.new_key new_ring

let write r ts id a b =
  let i = r.cursor land (Array.length r.rts - 1) in
  let c = Ctx.cell () in
  r.rts.(i) <- ts;
  r.rev.(i) <- id;
  r.ra.(i) <- a;
  r.rb.(i) <- b;
  r.rtr.(i) <- c.Ctx.c_trace;
  r.rsl.(i) <-
    (if c.Ctx.c_trace = 0 then 0
     else pack_link ~span:c.Ctx.c_span ~parent:c.Ctx.c_parent);
  r.cursor <- r.cursor + 1

let emit id a b =
  if Atomic.get on then
    write (Domain.DLS.get ring_key) (Clock.now_ns ()) id a b

let instant ?(a = 0) ?(b = 0) id = emit id a b

(* Span support: [start ()] reads the clock only when tracing is live;
   [span id ~start_ns b] then stamps the event at [start_ns] with the
   elapsed time as payload word 0.  A [start_ns] of 0 (tracing was off
   at the start of the section) drops the span. *)
let start () = if Atomic.get on then Clock.now_ns () else 0

let span id ~start_ns b =
  if Atomic.get on && start_ns > 0 then begin
    let dur = Clock.now_ns () - start_ns in
    write (Domain.DLS.get ring_key) start_ns id (if dur < 0 then 0 else dur) b
  end

let reset () =
  Mutex.lock rings_lock;
  List.iter (fun r -> r.cursor <- 0) !rings;
  Mutex.unlock rings_lock

(* --- Reading ---------------------------------------------------------- *)

(* Iterate the retained events of every ring, per ring in write order.
   Call after mutators quiesce: the rings are single-writer and the
   reader takes no lock against them. *)
let fold_events_ctx f acc =
  Mutex.lock rings_lock;
  let rs = List.rev !rings in
  Mutex.unlock rings_lock;
  List.fold_left
    (fun acc r ->
      let cap = Array.length r.rts in
      let first = if r.cursor > cap then r.cursor - cap else 0 in
      let acc = ref acc in
      for n = first to r.cursor - 1 do
        let i = n land (cap - 1) in
        let sl = r.rsl.(i) in
        acc :=
          f !acc ~domain:r.rdom ~ts:r.rts.(i) ~id:r.rev.(i) ~a:r.ra.(i)
            ~b:r.rb.(i) ~trace:r.rtr.(i) ~span:(link_span sl)
            ~parent:(link_parent sl)
      done;
      !acc)
    acc rs

let fold_events f acc =
  fold_events_ctx
    (fun acc ~domain ~ts ~id ~a ~b ~trace:_ ~span:_ ~parent:_ ->
      f acc ~domain ~ts ~id ~a ~b)
    acc

let events () = fold_events (fun n ~domain:_ ~ts:_ ~id:_ ~a:_ ~b:_ -> n + 1) 0

(* --- Chrome trace_events export --------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let export_json () =
  let ks = !kinds in
  let evs =
    fold_events_ctx
      (fun acc ~domain ~ts ~id ~a ~b ~trace ~span ~parent ->
        (ts, domain, id, a, b, trace, span, parent) :: acc)
      []
  in
  let evs =
    List.stable_sort
      (fun (t1, _, _, _, _, _, _, _) (t2, _, _, _, _, _, _, _) ->
        Int.compare t1 t2)
      evs
  in
  let t0 = match evs with (t, _, _, _, _, _, _, _) :: _ -> t | [] -> 0 in
  let doms =
    List.sort_uniq Int.compare (List.map (fun (_, d, _, _, _, _, _, _) -> d) evs)
  in
  let kind_of id =
    if id >= 0 && id < Array.length ks then ks.(id)
    else
      { ev_name = Printf.sprintf "event-%d" id; ev_cat = "unknown";
        ev_span = false; ev_arg0 = ""; ev_arg1 = "" }
  in
  (* Flow events stitch one trace's span events ("X" slices) into a
     Perfetto arrow chain; a trace needs at least two slices to draw
     one.  Count slices per trace up front so each slice can be tagged
     start ("s"), step ("t") or finish ("f") as it streams out. *)
  let flow_total = Itbl.create 64 in
  List.iter
    (fun (_, _, id, _, _, trace, _, _) ->
      if trace <> 0 && (kind_of id).ev_span then
        Itbl.replace flow_total trace
          (1 + Option.value ~default:0 (Itbl.find_opt flow_total trace)))
    evs;
  let flow_seen = Itbl.create 64 in
  let buf = Buffer.create (65536 + (List.length evs * 96)) in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  let first = ref true in
  let add_obj s =
    if !first then first := false else Buffer.add_string buf ",";
    Buffer.add_string buf "\n";
    Buffer.add_string buf s
  in
  List.iter
    (fun d ->
      add_obj
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \
            \"args\": {\"name\": \"domain %d\"}}"
           d d))
    doms;
  List.iter
    (fun (ts, dom, id, a, b, trace, span, parent) ->
      let k = kind_of id in
      let us = float_of_int (ts - t0) /. 1e3 in
      let arg dflt nm v =
        Printf.sprintf "\"%s\": %d" (json_escape (if nm = "" then dflt else nm)) v
      in
      let ctx_args =
        if trace = 0 then ""
        else
          Printf.sprintf ", \"trace\": %d, \"span\": %d, \"parent\": %d" trace
            span parent
      in
      let obj =
        if k.ev_span then
          Printf.sprintf
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \
             \"dur\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": {%s%s}}"
            (json_escape k.ev_name) (json_escape k.ev_cat) us
            (float_of_int a /. 1e3)
            dom
            (arg "a1" k.ev_arg1 b) ctx_args
        else
          Printf.sprintf
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": {%s, %s%s}}"
            (json_escape k.ev_name) (json_escape k.ev_cat) us dom
            (arg "a0" k.ev_arg0 a) (arg "a1" k.ev_arg1 b) ctx_args
      in
      add_obj obj;
      if trace <> 0 && k.ev_span then begin
        match Itbl.find_opt flow_total trace with
        | Some total when total >= 2 ->
          let seen =
            1 + Option.value ~default:0 (Itbl.find_opt flow_seen trace)
          in
          Itbl.replace flow_seen trace seen;
          (* Same ts as the slice it binds to, emitted right after it,
             so the stream stays sorted by ts. *)
          let ph, bp =
            if seen = 1 then ("s", "")
            else if seen = total then ("f", ", \"bp\": \"e\"")
            else ("t", ", \"bp\": \"e\"")
          in
          add_obj
            (Printf.sprintf
               "{\"name\": \"req\", \"cat\": \"flow\", \"ph\": \"%s\", \
                \"ts\": %.3f, \"pid\": 1, \"tid\": %d, \"id\": %d%s}"
               ph us dom trace bp)
        | _ -> ()
      end)
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_json path =
  let oc = open_out path in
  output_string oc (export_json ());
  close_out oc
