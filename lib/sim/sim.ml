(* ei_sim: deterministic simulation testing for the index zoo and the
   serving layer.

   Three engines, FoundationDB-discipline throughout (every failure
   replays from a seed or an explicit artifact):

   1. Differential tapes — replay one {!Tape} through a subject and
      through the pure {!Oracle} (or any other subject), record a
      per-op result trace, and diff the traces.  Each subject runs the
      tape in its own full pass with the fault plan re-seeded
      identically, so per-site fault streams line up op-for-op across
      the pair and the diff sees semantics, not draw interleaving.

   2. Schedule exploration — {!Sched} fibers over the production yield
      points for the OLC tree, and seeded delay perturbation at the
      same sites for the real-domain Serve fleet (via {!explore_serve},
      which drives the ei_chaos soak with its shadow-model oracle).

   3. Shrinking — ddmin over op tapes and over schedules, emitting a
      replayable [.sim.json] artifact that `ei sim --replay` (or
      {!replay_artifact}) loads to reproduce a CI failure locally. *)

module Rng = Ei_util.Rng
module Key = Ei_util.Key
module Fnv = Ei_util.Fnv
module Strtbl = Ei_util.Strtbl
module Invariant = Ei_util.Invariant
module Fault = Ei_fault.Fault
module Table = Ei_storage.Table
module Index_ops = Ei_harness.Index_ops
module Registry = Ei_harness.Registry
module Olc = Ei_olc.Btree_olc
module Wal = Ei_wal.Wal
module J = Mini_json

(* --- Subjects --------------------------------------------------------- *)

type subject = {
  s_name : string;
  s_elastic : bool;  (* bound compliance is checkable at checkpoints *)
  s_make : Table.t -> Index_ops.t;
}

let subject ~name ~elastic make =
  { s_name = name; s_elastic = elastic; s_make = make }

let oracle ~key_len =
  {
    s_name = "oracle";
    s_elastic = true;  (* 0 bytes: trivially compliant *)
    s_make = (fun _ -> Oracle.create ~key_len ());
  }

let subject_names =
  [
    "oracle"; "btree"; "seqtree"; "skiplist"; "prefix"; "elastic";
    "elastic-skiplist"; "olc"; "olc-elastic";
  ]

let subject_of_name ?(bound = 1 lsl 20) ~key_len name =
  let mk ?leaf_capacity kind elastic =
    Ok
      {
        s_name = name;
        s_elastic = elastic;
        s_make =
          (fun table ->
            Registry.make ~name ?leaf_capacity ~key_len
              ~load:(Table.loader table) kind);
      }
  in
  match name with
  | "oracle" -> Ok (oracle ~key_len)
  | "btree" -> mk Registry.Stx false
  | "seqtree" -> mk (Registry.Seqtree 64) false
  | "skiplist" -> mk Registry.Skiplist false
  | "prefix" -> mk Registry.Prefix false
  | "elastic" ->
    mk
      (Registry.Elastic (Ei_core.Elasticity.default_config ~size_bound:bound))
      true
  | "elastic-skiplist" ->
    mk
      (Registry.Elastic_skiplist
         (Ei_core.Elastic_skiplist.default_config ~size_bound:bound))
      true
  | "olc" -> mk (Registry.Olc Olc.Olc_std) false
  | "olc-elastic" ->
    mk
      (Registry.Olc
         (Olc.Olc_elastic (Olc.default_elastic_config ~size_bound:bound)))
      true
  | _ ->
    Error
      (Printf.sprintf "unknown subject %S (one of: %s)" name
         (String.concat " " subject_names))

(* --- Differential engine ---------------------------------------------- *)

(* Transient-fault site armed by tape fault windows; one draw per point
   op through {!Index_ops.inject}. *)
let op_site = Fault.site "sim.op"

type trace = string array

(* Replay the tape through one subject, recording one result string per
   op (plus a final implicit checkpoint, so end-state divergences
   survive any shrink that drops explicit checkpoints).  Determinism
   contract: everything here is a pure function of the tape —
   table appends are positional, fault windows re-seed the plan from
   (tape seed, window ordinal), and checkpoints walk the structure with
   the *unwrapped* index so they draw nothing. *)
let run_tape ?(slack = 3.0) ?(check_mem = false) (s : subject) (tape : Tape.t)
    : trace =
  let keys = Tape.keys tape in
  let table = Table.create ~key_len:tape.Tape.key_len () in
  let base_tid = Array.map (fun k -> Table.append table k) keys in
  let raw = s.s_make table in
  let ix = Index_ops.inject ~site:op_site raw in
  Fault.clear ();
  let nops = Array.length tape.Tape.ops in
  let out = Array.make (nops + 1) "" in
  let bound = ref 0 in
  let window = ref 0 in
  let windows = ref 0 in
  let checkpoint () =
    let n = raw.Index_ops.count () in
    let fp = Index_ops.fingerprint raw in
    let mem_ok =
      (not check_mem) || (not s.s_elastic) || !bound = 0
      || Float.compare
           (float_of_int (raw.Index_ops.memory_bytes ()))
           (slack *. float_of_int !bound)
         <= 0
    in
    Printf.sprintf "chk n=%d fp=%x mem=%b" n fp mem_ok
  in
  let point_op label f =
    let r = match f () with r -> r | exception Fault.Injected _ -> "!" in
    if !window > 0 then begin
      decr window;
      if !window = 0 then Fault.clear ()
    end;
    label ^ " " ^ r
  in
  Array.iteri
    (fun idx op ->
      out.(idx) <-
        (match op with
        | Tape.Insert i ->
          point_op
            (Printf.sprintf "ins %d" i)
            (fun () -> string_of_bool (ix.Index_ops.insert keys.(i) base_tid.(i)))
        | Tape.Remove i ->
          point_op
            (Printf.sprintf "rem %d" i)
            (fun () -> string_of_bool (ix.Index_ops.remove keys.(i)))
        | Tape.Update i ->
          (* The fresh row is appended before the op runs (and even if
             the op is injected away), so tids stay positional across
             subjects and across fault outcomes. *)
          let tid = Table.append table keys.(i) in
          point_op
            (Printf.sprintf "upd %d" i)
            (fun () -> string_of_bool (ix.Index_ops.update keys.(i) tid))
        | Tape.Find i ->
          point_op
            (Printf.sprintf "fnd %d" i)
            (fun () ->
              match ix.Index_ops.find keys.(i) with
              | Some tid -> string_of_int tid
              | None -> "none")
        | Tape.Scan (i, n) ->
          let h = ref 0 in
          let c =
            ix.Index_ops.scan_keys keys.(i) n (fun k -> h := Fnv.hash ~seed:!h k)
          in
          Printf.sprintf "scn %d %d -> %d %x" i n c !h
        | Tape.Set_bound b ->
          ix.Index_ops.set_size_bound b;
          bound := b;
          Printf.sprintf "bnd %d" b
        | Tape.Fault_window n ->
          incr windows;
          window := n;
          Fault.configure
            ~seed:(Tape.window_seed tape !windows)
            [ ("sim.op", 0.5) ];
          Printf.sprintf "flt %d" n
        | Tape.Checkpoint -> checkpoint ()))
    tape.Tape.ops;
  Fault.clear ();
  out.(nops) <- checkpoint ();
  out

type divergence = { d_index : int; d_a : string; d_b : string }

let diff_traces (a : trace) (b : trace) =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i >= n then
      if la = lb then None
      else
        Some
          {
            d_index = n;
            d_a = Printf.sprintf "<%d entries>" la;
            d_b = Printf.sprintf "<%d entries>" lb;
          }
    else if String.equal a.(i) b.(i) then go (i + 1)
    else Some { d_index = i; d_a = a.(i); d_b = b.(i) }
  in
  go 0

let diff_pair ?slack ?check_mem a b tape =
  let check_mem =
    match check_mem with
    | Some v -> v
    | None -> a.s_elastic && b.s_elastic
  in
  diff_traces
    (run_tape ?slack ~check_mem a tape)
    (run_tape ?slack ~check_mem b tape)

let shrink_tape ?slack ?check_mem ?(budget = 400) a b (tape : Tape.t) =
  let fails ops =
    Option.is_some (diff_pair ?slack ?check_mem a b { tape with Tape.ops })
  in
  { tape with Tape.ops = Ddmin.minimize ~budget tape.Tape.ops fails }

let pp_divergence ~a ~b d =
  Printf.sprintf "op %d: %s says %S, %s says %S" d.d_index a d.d_a b d.d_b

(* --- Scenario registry ------------------------------------------------ *)

let scenarios : (unit -> Sched.scenario) Strtbl.t = Strtbl.create 16
let register_scenario name mk = Strtbl.replace scenarios name mk
let scenario name = Strtbl.find_opt scenarios name

let scenario_names () =
  List.sort String.compare (Strtbl.fold (fun k _ acc -> k :: acc) scenarios [])

(* A deliberately racy read-modify-write: the self-test that proves the
   explorer finds real interleaving bugs (any schedule where both
   fibers read before either writes loses an update). *)
let lost_update_scenario () =
  let counter = ref 0 in
  let bump () =
    let v = !counter in
    Sched.pause ();
    counter := v + 1
  in
  {
    Sched.fibers = [| ("a", bump); ("b", bump) |];
    check =
      (fun () ->
        if !counter <> 2 then
          Invariant.brokenf "lost update: counter=%d, expected 2" !counter);
  }

let low_key key_len = String.make key_len '\000'

(* Two writers and a scanning reader over one elastic OLC tree under a
   tight bound: inserts race removes race in-place leaf conversions.
   Writers own disjoint key slices, so the final contents are
   schedule-independent and exactly checkable. *)
let olc_race_scenario () =
  let key_len = 8 in
  let table = Table.create ~key_len () in
  let nkeys = 64 in
  let keys = Array.init nkeys (fun i -> Key.of_int (i * 3)) in
  let tids = Array.map (fun k -> Table.append table k) keys in
  let tree =
    Olc.create ~leaf_capacity:8
      ~kind:(Olc.Olc_elastic (Olc.default_elastic_config ~size_bound:2048))
      ~key_len ~load:(Table.loader table) ()
  in
  let expected i = i mod 3 <> 0 || i mod 6 = 0 in
  let writer lo hi () =
    for i = lo to hi - 1 do
      ignore (Olc.insert tree keys.(i) tids.(i));
      if i mod 3 = 0 then ignore (Olc.remove tree keys.(i));
      if i mod 6 = 0 then ignore (Olc.insert tree keys.(i) tids.(i))
    done
  in
  let reader () =
    for _ = 1 to 6 do
      let prev = ref "" in
      Olc.fold_range tree ~start:(low_key key_len) ~n:max_int
        (fun () k _ ->
          if String.length !prev > 0 && String.compare !prev k >= 0 then
            Invariant.broken "olc-race: scan not strictly ordered";
          prev := k)
        ();
      Sched.pause ()
    done
  in
  let check () =
    Olc.check_invariants tree;
    Array.iteri
      (fun i k ->
        let want = if expected i then Some tids.(i) else None in
        if not (Option.equal Int.equal want (Olc.find tree k)) then
          Invariant.brokenf "olc-race: key %d: wrong final state" i)
      keys
  in
  {
    Sched.fibers =
      [|
        ("w0", writer 0 (nkeys / 2));
        ("w1", writer (nkeys / 2) nkeys);
        ("scan", reader);
      |];
    check;
  }

(* A scanner crossing compact/standard leaf boundaries while a churn
   fiber slashes the bound and forces in-place conversions on the very
   leaves being scanned — the elasticity §4 edge.  Stable keys (evens)
   are never mutated, so every scan must return them all, in order. *)
let olc_convert_scan_scenario () =
  let key_len = 8 in
  let table = Table.create ~key_len () in
  let n = 96 in
  let keys = Array.init n Key.of_int in
  let tids = Array.map (fun k -> Table.append table k) keys in
  let tree =
    Olc.create ~leaf_capacity:8
      ~kind:
        (Olc.Olc_elastic (Olc.default_elastic_config ~size_bound:(1 lsl 20)))
      ~key_len ~load:(Table.loader table) ()
  in
  Array.iteri
    (fun i k -> if i mod 2 = 0 then ignore (Olc.insert tree k tids.(i)))
    keys;
  let start = keys.(n / 4) in
  let churn () =
    Olc.set_size_bound tree 256;  (* enter shrinking: conversions start *)
    for i = 0 to n - 1 do
      if i mod 2 = 1 then begin
        ignore (Olc.insert tree keys.(i) tids.(i));
        if i mod 4 = 1 then ignore (Olc.remove tree keys.(i))
      end
    done;
    Olc.set_size_bound tree (1 lsl 20)  (* re-expand mid-scan *)
  in
  let scan () =
    for _ = 1 to 6 do
      let seen = ref [] in
      Olc.fold_range tree ~start ~n:max_int
        (fun () k _ -> seen := k :: !seen)
        ();
      let seen = List.rev !seen in
      let rec ordered = function
        | a :: (b :: _ as rest) ->
          if String.compare a b >= 0 then
            Invariant.broken "olc-convert-scan: scan not strictly ordered";
          ordered rest
        | _ -> ()
      in
      ordered seen;
      Array.iteri
        (fun i k ->
          if
            i mod 2 = 0
            && Key.compare k start >= 0
            && not (List.exists (String.equal k) seen)
          then Invariant.brokenf "olc-convert-scan: stable key %d missing" i)
        keys;
      Sched.pause ()
    done
  in
  let check () =
    Olc.check_invariants tree;
    Array.iteri
      (fun i k ->
        let want =
          if i mod 2 = 0 || i mod 4 = 3 then Some tids.(i) else None
        in
        if not (Option.equal Int.equal want (Olc.find tree k)) then
          Invariant.brokenf "olc-convert-scan: key %d: wrong final state" i)
      keys
  in
  { Sched.fibers = [| ("churn", churn); ("scan", scan) |]; check }

(* A batched reader interleaving group descents with a churn writer and
   in-place leaf conversions: the per-cursor restart discipline of
   [Olc.multi_find] under schedule exploration.  [yp_multi] yields once
   per lockstep round, so the scheduler can park the reader mid-batch
   with half its cursors resting on nodes the writer is about to split
   or convert.  Stable keys (evens) are never mutated — every batch
   must return exactly their tids — and the final check demands
   bit-equivalence with a sequential [find] loop. *)
let olc_multi_find_scenario () =
  let key_len = 8 in
  let table = Table.create ~key_len () in
  let n = 96 in
  let keys = Array.init n Key.of_int in
  let tids = Array.map (fun k -> Table.append table k) keys in
  let tree =
    Olc.create ~leaf_capacity:8
      ~kind:
        (Olc.Olc_elastic (Olc.default_elastic_config ~size_bound:(1 lsl 20)))
      ~key_len ~load:(Table.loader table) ()
  in
  Array.iteri
    (fun i k -> if i mod 2 = 0 then ignore (Olc.insert tree k tids.(i)))
    keys;
  (* the batch mixes stable, churned and duplicate keys *)
  let probe = Array.init 24 (fun j -> keys.(j * 4 mod n)) in
  let churn () =
    Olc.set_size_bound tree 256;  (* enter shrinking: conversions start *)
    for i = 0 to n - 1 do
      if i mod 2 = 1 then begin
        ignore (Olc.insert tree keys.(i) tids.(i));
        if i mod 4 = 1 then ignore (Olc.remove tree keys.(i))
      end
    done;
    Olc.set_size_bound tree (1 lsl 20)
  in
  let reader () =
    for _ = 1 to 6 do
      let got = Olc.multi_find tree probe in
      Array.iteri
        (fun j k ->
          let i = j * 4 mod n in
          if i mod 2 = 0 && not (Option.equal Int.equal got.(j) (Some tids.(i)))
          then
            Invariant.brokenf "olc-multi-find: stable key %d wrong in batch" i;
          ignore k)
        probe;
      Sched.pause ()
    done
  in
  let check () =
    Olc.check_invariants tree;
    let batched = Olc.multi_find tree keys in
    Array.iteri
      (fun i k ->
        let want =
          if i mod 2 = 0 || i mod 4 = 3 then Some tids.(i) else None
        in
        if not (Option.equal Int.equal want batched.(i)) then
          Invariant.brokenf "olc-multi-find: key %d: wrong final state" i;
        if not (Option.equal Int.equal batched.(i) (Olc.find tree k)) then
          Invariant.brokenf "olc-multi-find: key %d: batch <> find loop" i)
      keys
  in
  { Sched.fibers = [| ("churn", churn); ("batch", reader) |]; check }

(* A WAL writer racing a crash lever under schedule exploration: the
   durability-prefix contract of {!Ei_wal.Wal}.  One fiber applies a
   fixed op tape (inserts, removes, in-place updates, elastic bound
   retunes) to a live part while logging every mutation, group-
   committing every 4 ops; a crasher fiber pauses a few times and then
   fires a deterministic crash lever — [crash_torn] (the batch tail
   never reaches the file) or [crash_unsynced] (everything since the
   last fsync lived only in the page cache).  Where the crash lands
   relative to the writer's commits is exactly what the scheduler
   explores.

   The check recovers the shard from disk into a fresh part and demands
   that the recovered state is a *prefix* of the logged history: its
   fingerprint must equal the shadow oracle's fingerprint at LSN
   [r_last_lsn], and that LSN must lie in the window
   [durable-at-crash, appended-at-crash] — below the window an fsynced
   (hence acknowledgeable) record was lost; above it recovery invented
   records.  The recovered elastic bound is held to the same prefix.
   [wal-torn] runs with fsync_every = 1 (ack => durable: the window
   floor is every committed op); [wal-fsync] runs with fsync_every = 3,
   so committed-but-unsynced batches legally vanish and the window is
   genuinely wide. *)
let wal_crash_scenario ~label ~fsync_every ~crash () =
  let key_len = 8 in
  let table = Table.create ~key_len () in
  let n = 40 in
  let keys = Array.init n Key.of_int in
  let tids = Array.map (fun k -> Table.append table k) keys in
  (* second row per key, so updates remap to a real, distinct tid *)
  let alt = Array.map (fun k -> Table.append table k) keys in
  let mk_part name table =
    Registry.make ~name ~key_len ~load:(Table.loader table)
      (Registry.Elastic
         (Ei_core.Elasticity.default_config ~size_bound:(1 lsl 20)))
  in
  let part = mk_part (label ^ "-live") table in
  let shadow = Oracle.create ~key_len () in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ei-sim-%d-%s" (Unix.getpid ()) label)
  in
  Wal.reset_dir dir;
  let cfg =
    {
      (Wal.default_config ~dir) with
      Wal.fsync_every;
      checkpoint_every = 4;
      segment_bytes = 1024;  (* force rotation inside a 40-op tape *)
    }
  in
  let w, _ = Wal.recover cfg ~shard:0 ~part in
  (* shadow fingerprint and expected elastic bound per LSN (dense,
     1-based, at most 4 records per tape step): the oracle prefix
     states the recovered part must land on *)
  let max_lsn = 4 * n in
  let recorded = Array.make (max_lsn + 1) false in
  let fps = Array.make (max_lsn + 1) 0 in
  let bnds = Array.make (max_lsn + 1) 0 in
  let bound_now = ref 0 in
  recorded.(0) <- true;
  fps.(0) <- Index_ops.fingerprint shadow;
  let record () =
    let l = Wal.last_lsn w in
    recorded.(l) <- true;
    fps.(l) <- Index_ops.fingerprint shadow;
    bnds.(l) <- !bound_now
  in
  let crash_at = ref None in
  let writer () =
    try
      for i = 0 to n - 1 do
        if i mod 10 = 5 then begin
          let b = if i mod 20 = 5 then 512 else 1 lsl 20 in
          Wal.log_bound w b;
          part.Index_ops.set_size_bound b;
          bound_now := b;
          record ()
        end;
        Wal.log_insert w keys.(i) tids.(i);
        ignore (part.Index_ops.insert keys.(i) tids.(i));
        ignore (shadow.Index_ops.insert keys.(i) tids.(i));
        record ();
        if i mod 5 = 3 then begin
          Wal.log_remove w keys.(i - 2);
          ignore (part.Index_ops.remove keys.(i - 2));
          ignore (shadow.Index_ops.remove keys.(i - 2));
          record ()
        end;
        if i mod 7 = 6 then begin
          Wal.log_update w keys.(i - 1) alt.(i - 1);
          ignore (part.Index_ops.update keys.(i - 1) alt.(i - 1));
          ignore (shadow.Index_ops.update keys.(i - 1) alt.(i - 1));
          record ()
        end;
        if i mod 4 = 3 then Wal.commit w ~part;
        Sched.pause ()
      done
    with Wal.Died _ -> ()
  in
  let crasher () =
    Sched.pause ();
    Sched.pause ();
    Sched.pause ();
    crash_at := Some (Wal.durable_lsn w, Wal.last_lsn w);
    try crash w with Wal.Died _ -> ()
  in
  let check () =
    let durable, appended =
      match !crash_at with
      | Some x -> x
      | None -> Invariant.broken (label ^ ": crash lever never fired")
    in
    Wal.dispose w;
    let rtable = Table.create ~key_len () in
    let fresh = mk_part (label ^ "-recovered") rtable in
    let w2, r =
      Wal.recover cfg ~shard:0
        ~restore:(fun ~tid ~key -> Table.restore_row rtable ~tid ~key)
        ~part:fresh
    in
    Wal.close w2;
    if r.Wal.r_clean then
      Invariant.brokenf "%s: clean-shutdown marker present after a crash"
        label;
    if r.Wal.r_last_lsn < durable then
      Invariant.brokenf "%s: durable record lost: recovered to LSN %d < %d"
        label r.Wal.r_last_lsn durable;
    if r.Wal.r_last_lsn > appended then
      Invariant.brokenf "%s: recovered past the append horizon: %d > %d"
        label r.Wal.r_last_lsn appended;
    let l = r.Wal.r_last_lsn in
    if l > max_lsn || not recorded.(l) then
      Invariant.brokenf "%s: recovered to an unknown LSN %d" label l;
    if Index_ops.fingerprint fresh <> fps.(l) then
      Invariant.brokenf
        "%s: recovered state is not the LSN-%d prefix of the history" label l;
    if r.Wal.r_bound <> bnds.(l) then
      Invariant.brokenf "%s: recovered bound %d, prefix says %d" label
        r.Wal.r_bound bnds.(l)
  in
  { Sched.fibers = [| ("writer", writer); ("crash", crasher) |]; check }

let wal_torn_scenario () =
  wal_crash_scenario ~label:"wal-torn" ~fsync_every:1 ~crash:Wal.crash_torn ()

let wal_fsync_scenario () =
  wal_crash_scenario ~label:"wal-fsync" ~fsync_every:3
    ~crash:Wal.crash_unsynced ()

(* The ei_net connection state machines under adversarial interleavings
   of partial reads and writes — runnable here precisely because they
   are pure: no socket, no lock, just bytes in and bytes out.

   Three fibers share two in-memory byte pipes.  A client writer pushes
   the encoded requests toward the server in 1–3 byte chunks and drops
   the connection mid-frame (the last request's frame is cut short); a
   server fiber reads short chunks, feeds the {!Ei_net.Session} engine,
   forms rounds on its own cadence (every third step, so frames pile up
   past the window and the shed path runs), completes them from a pure
   model, and flushes the reply bytes in short writes; a client reader
   consumes the reply stream one byte at a time.

   The check is schedule-independent even though shedding is not:
   whatever the interleaving, the replies must be exactly one per
   completely-received request, in request order (the ordered-prefix
   invariant: batch acks always carry older ids than the same round's
   [Busy] sheds), each either [Applied] with the model's value or
   [Busy] — never a lost, duplicated, reordered or corrupted reply,
   and never a reply for the torn frame. *)
let net_pipeline_scenario () =
  let module Wire = Ei_net.Wire in
  let module Conn = Ei_net.Conn in
  let module Session = Ei_net.Session in
  let n = 10 in
  let window = 3 in
  let reqs =
    Array.init n (fun i ->
        { Wire.id = i; op = Wire.Insert (Printf.sprintf "key-%04d" i) })
  in
  let c2s = Buffer.create 512 in
  let c2s_off = ref 0 in
  let c2s_eof = ref false in
  let s2c = Buffer.create 512 in
  let s2c_off = ref 0 in
  let s2c_eof = ref false in
  let session = Session.create ~window () in
  let reader = Conn.reader ~decode:Wire.decode_reply in
  let replies = ref [] in
  let client_writer () =
    let all =
      String.concat ""
        (Array.to_list (Array.map Wire.encode_request reqs))
    in
    (* Cut the tail mid-frame: the last request must get no reply. *)
    let keep = String.length all - 5 in
    let i = ref 0 in
    while !i < keep do
      let len = min (1 + (!i mod 3)) (keep - !i) in
      Buffer.add_substring c2s all !i len;
      i := !i + len;
      Sched.pause ()
    done;
    c2s_eof := true
  in
  let server () =
    let step = ref 0 in
    let finished () =
      !c2s_eof
      && !c2s_off = Buffer.length c2s
      && Session.queued session = 0
      && Session.out_pending session = 0
    in
    while not (finished ()) do
      let avail = Buffer.length c2s - !c2s_off in
      if avail > 0 then begin
        let len = min (1 + (7 * !step mod 37)) avail in
        let chunk = Buffer.sub c2s !c2s_off len in
        c2s_off := !c2s_off + len;
        match Session.feed session chunk with
        | Ok () -> ()
        | Error msg ->
          Invariant.brokenf "net-pipeline: server saw corruption: %s" msg
      end;
      (* Rounds only every third step: decoded requests pile up past the
         window in between, so some schedules exercise the Busy shed. *)
      if !step mod 3 = 0 || (!c2s_eof && !c2s_off = Buffer.length c2s) then begin
        let batch = Session.take session in
        if Array.length batch > 0 then
          Session.complete session
            (Array.map
               (fun (r : Wire.request) -> Wire.Applied r.Wire.id)
               batch)
      end;
      Buffer.add_string s2c
        (Session.out_take session ~max:(1 + (!step mod 5)));
      incr step;
      Sched.pause ()
    done;
    s2c_eof := true
  in
  let client_reader () =
    let finished () = !s2c_eof && !s2c_off = Buffer.length s2c in
    while not (finished ()) do
      if Buffer.length s2c - !s2c_off > 0 then begin
        let chunk = Buffer.sub s2c !s2c_off 1 in
        s2c_off := !s2c_off + 1;
        match Conn.feed reader chunk with
        | Ok rs -> List.iter (fun r -> replies := r :: !replies) rs
        | Error msg ->
          Invariant.brokenf "net-pipeline: client saw corruption: %s" msg
      end;
      Sched.pause ()
    done
  in
  let check () =
    (match Session.error session with
    | Some e -> Invariant.brokenf "net-pipeline: session poisoned: %s" e
    | None -> ());
    let rs = List.rev !replies in
    let expect = n - 1 in
    if List.length rs <> expect then
      Invariant.brokenf "net-pipeline: %d replies for %d complete requests"
        (List.length rs) expect;
    List.iteri
      (fun i (r : Wire.reply) ->
        if r.Wire.rid <> i then
          Invariant.brokenf
            "net-pipeline: reply %d carries id %d — lost or reordered" i
            r.Wire.rid;
        match r.Wire.status with
        | Wire.Applied v when v = i -> ()
        | Wire.Busy -> ()
        | _ ->
          Invariant.brokenf "net-pipeline: id %d: unexpected %s" i
            (Wire.describe_reply r))
      rs
  in
  {
    Sched.fibers =
      [| ("cw", client_writer); ("srv", server); ("cr", client_reader) |];
    check;
  }

let () =
  register_scenario "lost-update" lost_update_scenario;
  register_scenario "olc-race" olc_race_scenario;
  register_scenario "olc-convert-scan" olc_convert_scan_scenario;
  register_scenario "olc-multi-find" olc_multi_find_scenario;
  register_scenario "wal-torn" wal_torn_scenario;
  register_scenario "wal-fsync" wal_fsync_scenario;
  register_scenario "net-pipeline" net_pipeline_scenario

(* --- Serve exploration ------------------------------------------------ *)

(* Real domains cannot be cooperatively scheduled, so the Serve fleet
   is explored by *perturbation*: a tap that injects seeded microsecond
   delays at the yield/fault sites of the serving stack, stretching the
   submit/apply/recover windows, while the ei_chaos soak provides the
   oracle (shadow model, zero lost acks, deep validation).  This
   samples schedules rather than enumerating them; byte-exact replay is
   the tape and fiber engines' job. *)
let perturbed_prefixes = [ "serve."; "olc."; "queue."; "net." ]

let explore_serve ?(shards = 2) ?(scale = 0.02) ~seed ~rounds () =
  let module Chaos = Ei_chaos.Chaos in
  let rec go r =
    if r >= rounds then None
    else begin
      let round_seed = seed + r in
      let rng = Rng.stream round_seed 0x7e57 in
      let lock = Mutex.create () in
      let tap site =
        let delay_us =
          Mutex.lock lock;
          let d = if Rng.int rng 4 = 0 then 1 + Rng.int rng 200 else 0 in
          Mutex.unlock lock;
          d
        in
        if
          delay_us > 0
          && List.exists
               (fun p -> String.starts_with ~prefix:p site)
               perturbed_prefixes
        then Unix.sleepf (float_of_int delay_us *. 1e-6)
      in
      Fault.set_tap (Some tap);
      let report =
        Fun.protect
          ~finally:(fun () -> Fault.set_tap None)
          (fun () ->
            Chaos.run { (Chaos.default_config ~seed:round_seed) with shards; scale })
      in
      if Chaos.ok report then go (r + 1)
      else
        Some
          ( round_seed,
            Format.asprintf "%a" Chaos.pp_report report )
    end
  in
  go 0

(* --- Artifacts -------------------------------------------------------- *)

type artifact =
  | A_diff of {
      tape : Tape.t;
      a : string;
      b : string;
      bound : int;
      slack : float;
      check_mem : bool;
      divergence : string;  (* informational: what the writer saw *)
    }
  | A_sched of {
      scenario : string;
      seed : int;  (* informational: the failing explore round *)
      schedule : int list;
      error : string;
    }
  | A_serve of {
      seed : int;  (* the exact per-round chaos seed *)
      shards : int;
      scale : float;
      error : string;
    }

let artifact_to_json = function
  | A_diff { tape; a; b; bound; slack; check_mem; divergence } ->
    J.Obj
      [
        ("kind", J.Str "diff");
        ("a", J.Str a);
        ("b", J.Str b);
        ("bound", J.Int bound);
        ("slack", J.Float slack);
        ("check_mem", J.Bool check_mem);
        ("divergence", J.Str divergence);
        ("tape", Tape.to_json tape);
      ]
  | A_sched { scenario; seed; schedule; error } ->
    J.Obj
      [
        ("kind", J.Str "sched");
        ("scenario", J.Str scenario);
        ("seed", J.Int seed);
        ("schedule", J.List (List.map (fun c -> J.Int c) schedule));
        ("error", J.Str error);
      ]
  | A_serve { seed; shards; scale; error } ->
    J.Obj
      [
        ("kind", J.Str "serve");
        ("seed", J.Int seed);
        ("shards", J.Int shards);
        ("scale", J.Float scale);
        ("error", J.Str error);
      ]

let artifact_of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (J.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "artifact: missing or bad field %S" name)
  in
  let* kind = field "kind" J.as_str in
  match kind with
  | "diff" ->
    let* a = field "a" J.as_str in
    let* b = field "b" J.as_str in
    let* bound = field "bound" J.as_int in
    let* slack = field "slack" J.as_float in
    let* check_mem = field "check_mem" J.as_bool in
    let* divergence = field "divergence" J.as_str in
    let* tape =
      match J.member "tape" j with
      | Some tj -> Tape.of_json tj
      | None -> Error "artifact: missing tape"
    in
    Ok (A_diff { tape; a; b; bound; slack; check_mem; divergence })
  | "sched" ->
    let* scenario = field "scenario" J.as_str in
    let* seed = field "seed" J.as_int in
    let* error = field "error" J.as_str in
    let* raw = field "schedule" J.as_list in
    let* schedule =
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          match J.as_int c with
          | Some i -> Ok (i :: acc)
          | None -> Error "artifact: non-int schedule entry")
        (Ok []) raw
    in
    Ok (A_sched { scenario; seed; schedule = List.rev schedule; error })
  | "serve" ->
    let* seed = field "seed" J.as_int in
    let* shards = field "shards" J.as_int in
    let* scale = field "scale" J.as_float in
    let* error = field "error" J.as_str in
    Ok (A_serve { seed; shards; scale; error })
  | k -> Error (Printf.sprintf "artifact: unknown kind %S" k)

let write_artifact ~path artifact =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (J.to_string (artifact_to_json artifact));
      output_char oc '\n')

let read_artifact ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Result.bind (J.parse s) artifact_of_json
  | exception Sys_error e -> Error e

(* Reproduce an artifact: [Ok (true, msg)] when the failure fires
   again, [Ok (false, msg)] when it no longer does (fixed — or, for
   the perturbation engine, not deterministic), [Error] when the
   artifact cannot be run at all. *)
let replay_artifact artifact : (bool * string, string) result =
  match artifact with
  | A_diff { tape; a; b; bound; slack; check_mem; _ } -> (
    let key_len = tape.Tape.key_len in
    match
      ( subject_of_name ~bound ~key_len a,
        subject_of_name ~bound ~key_len b )
    with
    | Ok sa, Ok sb -> (
      match diff_pair ~slack ~check_mem sa sb tape with
      | Some d -> Ok (true, pp_divergence ~a ~b d)
      | None -> Ok (false, "traces agree: divergence no longer reproduces"))
    | Error e, _ | _, Error e -> Error e)
  | A_sched { scenario = name; schedule; error; _ } -> (
    match scenario name with
    | None ->
      Error
        (Printf.sprintf "unknown scenario %S (one of: %s)" name
           (String.concat " " (scenario_names ())))
    | Some mk -> (
      match Sched.replay ~schedule mk with
      | Error (_, e) -> Ok (true, "reproduced: " ^ e)
      | Ok _ ->
        Ok (false, "schedule passes: no longer reproduces (was: " ^ error ^ ")")))
  | A_serve { seed; shards; scale; _ } -> (
    match explore_serve ~shards ~scale ~seed ~rounds:1 () with
    | Some (_, e) -> Ok (true, "reproduced:\n" ^ e)
    | None -> Ok (false, "round passes: not reproduced (perturbation samples)"))

let replay_file ~path =
  Result.bind (read_artifact ~path) replay_artifact
