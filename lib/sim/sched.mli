(** Deterministic cooperative fiber scheduler — the schedule-exploration
    engine of ei_sim.

    Scenario "threads" run as fibers on one domain; the production
    yield points ({!Ei_fault.Fault.point} sites in [Btree_olc] and
    [Serve]) reach the scheduler through the Fault tap as a [Yield]
    effect.  A schedule is an explicit choice list (one index into the
    runnable set per step), so it can be recorded, replayed
    bit-identically, shrunk with ddmin and stored in a [.sim.json]
    artifact. *)

val pause : unit -> unit
(** Explicit yield for scenario bodies (site ["sim.pause"]); inert
    outside the scheduler, like every other yield point. *)

type scenario = {
  fibers : (string * (unit -> unit)) array;  (** (label, body) *)
  check : unit -> unit;
      (** runs after quiescence with the tap uninstalled; raise to fail
          the run *)
}

type policy =
  | Random of Ei_util.Rng.t
      (** sample: at each step pick uniformly among runnable fibers *)
  | Replay of int list
      (** follow a recorded choice list (each choice taken modulo the
          runnable count), then deterministic round-robin — so any
          prefix or ddmin-shrunk subsequence is a valid schedule *)

exception Stuck of string
(** Raised (into the run's [Error]) when a run exceeds its step budget
    — a livelock under the chosen schedule. *)

val run :
  ?max_steps:int ->
  policy:policy ->
  scenario ->
  (int list, int list * string) result
(** Run all fibers to quiescence, then [check].  [Ok schedule] is the
    realized schedule; [Error (schedule, msg)] carries the realized
    prefix and the failure (fiber exception, [Stuck], or [check]
    failure).  On abort every parked fiber is unwound so locks held by
    OLC critical sections are released.  Default [max_steps] 200_000. *)

type found = { round : int; schedule : int list; error : string }

val explore :
  ?max_steps:int ->
  seed:int ->
  rounds:int ->
  (unit -> scenario) ->
  found option
(** Sample [rounds] random schedules (round [r] uses
    [Rng.stream seed r]); first failure wins.  [mk] must build a fresh
    scenario per round. *)

val replay :
  ?max_steps:int ->
  schedule:int list ->
  (unit -> scenario) ->
  (int list, int list * string) result

val shrink :
  ?max_steps:int ->
  ?budget:int ->
  schedule:int list ->
  (unit -> scenario) ->
  int list
(** ddmin the choice list under "still fails when replayed"; sound
    because only failing candidates are kept. *)

val enumerate :
  ?max_steps:int ->
  ?cap:int ->
  fanout:int ->
  depth:int ->
  (unit -> scenario) ->
  found option * int
(** Exhaustive bounded exploration: every choice prefix in
    [[0, fanout)]{^ depth} (capped at [cap] runs), continuing
    round-robin past the prefix.  Returns the first failure (if any)
    and the number of distinct realized schedules. *)
