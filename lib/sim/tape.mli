(** Op tapes: the replayable input of the differential engine.

    A tape is a seed plus a pure description of a run — a key pool and
    an op sequence referencing the pool by index.  Two replays of one
    tape are bit-identical; any subsequence of the ops is itself a
    valid tape (the property ddmin shrinking relies on); tapes
    round-trip through [.sim.json] artifacts. *)

type op =
  | Insert of int  (** pool index *)
  | Remove of int
  | Update of int
      (** append a fresh row for the key, then overwrite its value *)
  | Find of int
  | Scan of int * int  (** start pool index, max entries *)
  | Set_bound of int  (** retune the elastic soft bound (bytes) *)
  | Fault_window of int
      (** arm the [sim.op] transient-fault site for the next [n] point
          ops *)
  | Checkpoint
      (** record count, contents fingerprint and bound compliance *)

type t = {
  seed : int;
  key_len : int;
  pool : int;  (** distinct keys; ops address them by index *)
  ops : op array;
}

val keys : t -> string array
(** The derived key pool: stream 0 of the tape seed, never stored. *)

val window_seed : t -> int -> int
(** Fault-plan seed of the [n]-th fault window: deterministic in
    (tape seed, ordinal), decorrelated from the op stream. *)

type gen = {
  g_ops : int;
  g_pool : int;
  g_scan_max : int;
  g_checkpoint_every : int;  (** exact cadence; 0 = final only *)
  g_bound_every : int;  (** ~one [Set_bound] per this many ops; 0 = none *)
  g_fault_every : int;
      (** ~one [Fault_window] per this many ops; 0 = none *)
  g_base_bound : int;  (** [Set_bound] draws around this many bytes *)
}

val default_gen : ?pool:int -> ops:int -> unit -> gen
(** Point/scan mix with periodic checkpoints; no bound changes, no
    fault windows. *)

val elastic_gen : ?pool:int -> ops:int -> base_bound:int -> unit -> gen
(** [default_gen] plus bound changes sweeping [[base/2, 3*base/2)]. *)

val faulty_gen : ?pool:int -> ops:int -> unit -> gen
(** [default_gen] plus transient-fault windows. *)

val generate : ?key_len:int -> seed:int -> gen -> t
(** Derive a tape: pure in [(seed, g)]. *)

val op_to_string : op -> string
val op_of_string : string -> (op, string) result

val to_json : t -> Mini_json.t
val of_json : Mini_json.t -> (t, string) result
