(** Deterministic simulation testing: differential tapes against a
    pure oracle, schedule exploration over the production yield points,
    and ddmin shrinking to replayable [.sim.json] artifacts.

    Every failure replays from a seed or an artifact; see {!Tape},
    {!Oracle}, {!Sched} for the building blocks. *)

(** {2 Subjects} *)

type subject = {
  s_name : string;
  s_elastic : bool;
      (** bound compliance is checkable at checkpoints *)
  s_make : Ei_storage.Table.t -> Ei_harness.Index_ops.t;
}

val subject :
  name:string ->
  elastic:bool ->
  (Ei_storage.Table.t -> Ei_harness.Index_ops.t) ->
  subject
(** Wrap any index constructor as a sim subject (used by tests to plant
    deliberately buggy branches). *)

val oracle : key_len:int -> subject
(** The pure sorted-map reference ({!Oracle}). *)

val subject_names : string list

val subject_of_name :
  ?bound:int -> key_len:int -> string -> (subject, string) result
(** Named subjects for the CLI and artifacts: oracle, btree, seqtree,
    skiplist, prefix, elastic, elastic-skiplist, olc, olc-elastic.
    [bound] seeds the elastic configs (default 1 MiB). *)

(** {2 Differential engine} *)

type trace = string array
(** One result string per tape op, plus a final implicit checkpoint. *)

val run_tape : ?slack:float -> ?check_mem:bool -> subject -> Tape.t -> trace
(** Replay the tape through the subject.  Pure in the tape: fault
    windows re-seed the global plan from (tape seed, window ordinal),
    table appends are positional, checkpoints walk the structure with
    the unwrapped index.  [check_mem] (with [slack], default 3.0) makes
    checkpoints record whether [memory_bytes <= slack * bound]. *)

type divergence = { d_index : int; d_a : string; d_b : string }

val diff_traces : trace -> trace -> divergence option
(** First differing entry (or length mismatch). *)

val diff_pair :
  ?slack:float ->
  ?check_mem:bool ->
  subject ->
  subject ->
  Tape.t ->
  divergence option
(** Run the tape through both subjects (each in its own full pass, so
    fault streams align) and diff.  [check_mem] defaults to "both
    subjects elastic". *)

val shrink_tape :
  ?slack:float ->
  ?check_mem:bool ->
  ?budget:int ->
  subject ->
  subject ->
  Tape.t ->
  Tape.t
(** ddmin the op array under "the pair still diverges" (default budget
    400 predicate runs). *)

val pp_divergence : a:string -> b:string -> divergence -> string

(** {2 Scenario registry (fiber engine)} *)

val register_scenario : string -> (unit -> Sched.scenario) -> unit
val scenario : string -> (unit -> Sched.scenario) option
val scenario_names : unit -> string list
(** Built-ins: ["lost-update"] (planted race, the explorer self-test),
    ["olc-race"] (two writers and a scanning reader over one elastic
    OLC tree under a tight bound), ["olc-convert-scan"] (scans
    straddling compact/standard leaf boundaries during in-place
    conversions — the elasticity §4 edge), ["olc-multi-find"] (batched
    group descents interleaved with churn and conversions: per-cursor
    OLC restarts, checked bit-equivalent to a sequential find loop),
    ["wal-torn"] and ["wal-fsync"] (a group-committing WAL writer
    racing a deterministic crash lever — torn batch tail / dropped page
    cache; recovery from disk must land on an exact prefix of the
    logged history, no lower than the fsynced horizon at the crash),
    ["net-pipeline"] (the pure [ei_net] connection state machines under
    1-byte reads, short writes and a mid-frame connection drop: the
    reply stream must be exactly one in-order reply per complete
    request — [Applied] or [Busy] — with nothing lost, duplicated or
    invented for the torn frame). *)

(** {2 Serve exploration (perturbation engine)} *)

val explore_serve :
  ?shards:int ->
  ?scale:float ->
  seed:int ->
  rounds:int ->
  unit ->
  (int * string) option
(** Drive the ei_chaos soak (shadow-model oracle, zero-lost-ack and
    deep-validation acceptance) with seeded microsecond delays injected
    at the serving stack's yield and fault sites, stretching
    submit/apply/recover windows.  Round [r] uses chaos seed
    [seed + r]; returns [(round_seed, report)] of the first failing
    round.  Samples schedules — byte-exact replay is the tape and
    fiber engines' job. *)

(** {2 Artifacts} *)

type artifact =
  | A_diff of {
      tape : Tape.t;
      a : string;
      b : string;
      bound : int;
      slack : float;
      check_mem : bool;
      divergence : string;
    }
  | A_sched of {
      scenario : string;
      seed : int;
      schedule : int list;
      error : string;
    }
  | A_serve of { seed : int; shards : int; scale : float; error : string }

val artifact_to_json : artifact -> Mini_json.t
val artifact_of_json : Mini_json.t -> (artifact, string) result
val write_artifact : path:string -> artifact -> unit
val read_artifact : path:string -> (artifact, string) result

val replay_artifact : artifact -> (bool * string, string) result
(** [Ok (reproduced, message)]; [Error] when the artifact names an
    unknown subject or scenario. *)

val replay_file : path:string -> (bool * string, string) result
