(* The reference oracle: a pure sorted map behind the uniform
   {!Ei_harness.Index_ops} interface.

   The oracle is deliberately trivial — [Map.Make (String)] over the
   fixed-length big-endian keys, whose lexicographic order is exactly
   {!Ei_util.Key.compare} — so its behaviour is beyond suspicion.  The
   differential engine replays one tape through the oracle and through
   a real index and diffs the traces; anything the structures disagree
   with the map about is a bug in the structures.

   [backend] is [B_composite [||]]: no real structure behind it, and
   deep validators ({!Ei_check}) recurse into zero parts. *)

module Smap = Map.Make (String)
module Index_ops = Ei_harness.Index_ops

let create ?(name = "oracle") ~key_len () : Index_ops.t =
  let m = ref Smap.empty in
  let scan_from start n visit =
    let taken = ref 0 in
    (try
       Seq.iter
         (fun (k, _) ->
           if !taken >= n then raise Stdlib.Exit;
           incr taken;
           visit k)
         (Smap.to_seq_from start !m)
     with Stdlib.Exit -> ());
    !taken
  in
  {
    Index_ops.name;
    backend = Index_ops.B_composite [||];
    key_len;
    insert =
      (fun k tid ->
        if Smap.mem k !m then false
        else begin
          m := Smap.add k tid !m;
          true
        end);
    remove =
      (fun k ->
        if Smap.mem k !m then begin
          m := Smap.remove k !m;
          true
        end
        else false);
    update =
      (fun k tid ->
        if Smap.mem k !m then begin
          m := Smap.add k tid !m;
          true
        end
        else false);
    find = (fun k -> Smap.find_opt k !m);
    multi_find = (fun keys -> Array.map (fun k -> Smap.find_opt k !m) keys);
    scan = (fun start n -> scan_from start n (fun _ -> ()));
    scan_keys = (fun start n visit -> scan_from start n visit);
    memory_bytes = (fun () -> 0);
    (* The model spends no index bytes, so bound compliance is
       trivially satisfied — the real subject's side of the checkpoint
       is where the elastic check bites. *)
    count = (fun () -> Smap.cardinal !m);
    set_size_bound = Index_ops.no_size_bound;
    info = (fun () -> "oracle");
  }
