(* Delta-debugging minimisation (Zeller & Hildebrandt's ddmin, the
   complement-reduction form): given a failing input sequence and a
   predicate, repeatedly try dropping chunks — coarse halves first,
   then finer granularity down to single elements — keeping any
   complement that still fails.  The result is 1-minimal up to the
   test budget: sound by construction (only failing subsets are ever
   kept), and the budget caps the worst case on stubborn inputs. *)

let minimize ?(budget = 1000) (input : 'a array) (fails : 'a array -> bool) :
    'a array =
  let tests = ref 0 in
  let test a =
    if !tests >= budget then false
    else begin
      incr tests;
      fails a
    end
  in
  let rec go current granularity =
    let len = Array.length current in
    if len <= 1 || granularity > len || !tests >= budget then current
    else begin
      let chunk = max 1 (len / granularity) in
      let rec try_complements i =
        if i * chunk >= len then None
        else begin
          let lo = i * chunk in
          let hi = min len (lo + chunk) in
          let comp =
            Array.append (Array.sub current 0 lo)
              (Array.sub current hi (len - hi))
          in
          if Array.length comp < len && test comp then Some comp
          else try_complements (i + 1)
        end
      in
      match try_complements 0 with
      | Some comp ->
        (* A chunk was removed: restart near-coarse on the smaller
           input (classic ddmin resets granularity to max 2 (g-1)). *)
        go comp (max 2 (granularity - 1))
      | None ->
        if chunk > 1 then go current (min len (granularity * 2))
        else current
    end
  in
  if Array.length input > 0 && fails input then go input 2 else input
