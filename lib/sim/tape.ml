(* Op tapes: the replayable input of the differential engine.

   A tape is a seed plus a pure description of a run — a key pool and a
   sequence of operations referencing the pool by index.  Everything a
   run needs (keys, transient-fault windows, checkpoints, elastic bound
   changes) derives from the tape alone, so two replays of one tape are
   bit-identical, any subsequence of the ops is itself a valid tape
   (what lets ddmin shrink freely), and a tape round-trips through the
   [.sim.json] artifact format. *)

module Rng = Ei_util.Rng
module Key = Ei_util.Key
module Fnv = Ei_util.Fnv

type op =
  | Insert of int  (* pool index *)
  | Remove of int
  | Update of int  (* fresh row appended for the key, then value overwrite *)
  | Find of int
  | Scan of int * int  (* start pool index, max entries *)
  | Set_bound of int  (* retune the elastic soft bound (bytes) *)
  | Fault_window of int
      (* arm the sim.op transient-fault site for the next n point ops *)
  | Checkpoint  (* record count, contents fingerprint, bound compliance *)

type t = {
  seed : int;
  key_len : int;
  pool : int;  (* distinct keys; ops address them by index *)
  ops : op array;
}

(* The pool is derived, never stored: stream 0 of the tape seed.
   Key collisions inside the pool are harmless (both runs of a pair see
   the same duplicates) and vanishingly rare at the pool sizes used. *)
let keys t =
  let rng = Rng.stream t.seed 0 in
  Array.init t.pool (fun _ -> Key.random rng t.key_len)

(* Per-window fault seed: decorrelated from the op stream, deterministic
   in (tape seed, window ordinal). *)
let window_seed t ordinal = Fnv.hash ~seed:t.seed (string_of_int ordinal)

(* --- Generation ------------------------------------------------------- *)

type gen = {
  g_ops : int;
  g_pool : int;
  g_scan_max : int;  (* scans draw a width in [1, g_scan_max] *)
  g_checkpoint_every : int;  (* exact cadence; 0 = final checkpoint only *)
  g_bound_every : int;  (* ~one Set_bound per this many ops; 0 = none *)
  g_fault_every : int;  (* ~one Fault_window per this many ops; 0 = none *)
  g_base_bound : int;  (* Set_bound draws around this many bytes *)
}

let default_gen ?(pool = 512) ~ops () =
  {
    g_ops = ops;
    g_pool = pool;
    g_scan_max = 64;
    g_checkpoint_every = max 1 (ops / 64);
    g_bound_every = 0;
    g_fault_every = 0;
    g_base_bound = 0;
  }

let elastic_gen ?(pool = 512) ~ops ~base_bound () =
  {
    (default_gen ~pool ~ops ()) with
    g_bound_every = max 1 (ops / 32);
    g_base_bound = base_bound;
  }

let faulty_gen ?(pool = 512) ~ops () =
  { (default_gen ~pool ~ops ()) with g_fault_every = max 1 (ops / 16) }

let generate ?(key_len = 8) ~seed g =
  (* Stream 1: op draws (stream 0 is the key pool). *)
  let rng = Rng.stream seed 1 in
  let pool = max 1 g.g_pool in
  let pick () = Rng.int rng pool in
  let ops =
    Array.init g.g_ops (fun i ->
        if
          g.g_checkpoint_every > 0 && (i + 1) mod g.g_checkpoint_every = 0
        then Checkpoint
        else if
          g.g_bound_every > 0 && g.g_base_bound > 0
          && Rng.int rng g.g_bound_every = 0
        then
          (* Bounds sweep [base/2, 3*base/2): tight enough to drive the
             elastic state machine through shrink and re-expand. *)
          Set_bound ((g.g_base_bound / 2) + Rng.int rng g.g_base_bound)
        else if g.g_fault_every > 0 && Rng.int rng g.g_fault_every = 0 then
          Fault_window (1 + Rng.int rng 32)
        else
          match Rng.int rng 100 with
          | d when d < 35 -> Insert (pick ())
          | d when d < 50 -> Remove (pick ())
          | d when d < 60 -> Update (pick ())
          | d when d < 85 -> Find (pick ())
          | _ -> Scan (pick (), 1 + Rng.int rng g.g_scan_max))
  in
  { seed; key_len; pool; ops }

(* --- Encoding --------------------------------------------------------- *)

let op_to_string = function
  | Insert i -> Printf.sprintf "i %d" i
  | Remove i -> Printf.sprintf "r %d" i
  | Update i -> Printf.sprintf "u %d" i
  | Find i -> Printf.sprintf "f %d" i
  | Scan (i, n) -> Printf.sprintf "s %d %d" i n
  | Set_bound b -> Printf.sprintf "b %d" b
  | Fault_window n -> Printf.sprintf "w %d" n
  | Checkpoint -> "c"

let op_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "c" ] -> Ok Checkpoint
  | [ tag; a ] -> (
    match (tag, int_of_string_opt a) with
    | "i", Some i -> Ok (Insert i)
    | "r", Some i -> Ok (Remove i)
    | "u", Some i -> Ok (Update i)
    | "f", Some i -> Ok (Find i)
    | "b", Some b -> Ok (Set_bound b)
    | "w", Some n -> Ok (Fault_window n)
    | _ -> Error (Printf.sprintf "bad op %S" s))
  | [ "s"; a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some i, Some n -> Ok (Scan (i, n))
    | _ -> Error (Printf.sprintf "bad op %S" s))
  | _ -> Error (Printf.sprintf "bad op %S" s)

let to_json t =
  Mini_json.Obj
    [
      ("seed", Mini_json.Int t.seed);
      ("key_len", Mini_json.Int t.key_len);
      ("pool", Mini_json.Int t.pool);
      ( "ops",
        Mini_json.List
          (Array.to_list
             (Array.map (fun op -> Mini_json.Str (op_to_string op)) t.ops)) );
    ]

let of_json j =
  let field name conv =
    match Option.bind (Mini_json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "tape: missing or bad field %S" name)
  in
  let ( let* ) = Result.bind in
  let* seed = field "seed" Mini_json.as_int in
  let* key_len = field "key_len" Mini_json.as_int in
  let* pool = field "pool" Mini_json.as_int in
  let* raw_ops = field "ops" Mini_json.as_list in
  let* ops =
    List.fold_left
      (fun acc jop ->
        let* acc = acc in
        match Option.map op_of_string (Mini_json.as_str jop) with
        | Some (Ok op) -> Ok (op :: acc)
        | Some (Error e) -> Error e
        | None -> Error "tape: non-string op")
      (Ok []) raw_ops
  in
  Ok { seed; key_len; pool; ops = Array.of_list (List.rev ops) }
