(** Delta-debugging minimisation (ddmin, complement-reduction form). *)

val minimize : ?budget:int -> 'a array -> ('a array -> bool) -> 'a array
(** [minimize input fails] is a subsequence of [input] on which [fails]
    still holds, 1-minimal up to the test [budget] (default 1000
    predicate evaluations).  Sound by construction: every kept
    candidate was tested failing.  If [input] itself does not fail (or
    is empty) it is returned unchanged. *)
