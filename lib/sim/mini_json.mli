(** Re-export of {!Ei_util.Mini_json} (the module moved to [ei_util]
    so that [ei_wal] checkpoint manifests can use it without a
    dependency on the simulator).  Kept so [Ei_sim.Mini_json] remains
    a valid path for artifact tooling. *)

include module type of struct
  include Ei_util.Mini_json
end
