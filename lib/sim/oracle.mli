(** The reference oracle: a pure sorted map ([Map.Make (String)], whose
    order is exactly {!Ei_util.Key.compare}) behind the uniform
    {!Ei_harness.Index_ops} interface.  The differential engine diffs
    real indexes against it op-by-op. *)

val create : ?name:string -> key_len:int -> unit -> Ei_harness.Index_ops.t
(** A fresh, empty oracle.  [memory_bytes] is 0 (the model spends no
    index bytes), [set_size_bound] is a no-op, [backend] is
    [B_composite [||]]. *)
