(* Compatibility re-export.

   Mini_json moved to ei_util so layers below the simulator (ei_wal
   checkpoint manifests, CLI inspectors) can read and write JSON
   without depending on ei_sim.  Existing users of [Ei_sim.Mini_json]
   keep working through this alias. *)

include Ei_util.Mini_json
