(* Deterministic cooperative fiber scheduler: the schedule-exploration
   engine of ei_sim.

   Concurrency bugs in the OLC tree live in *interleavings*, and real
   domains give no control over those.  Here every "thread" of a
   scenario is a fiber on one domain; the production yield points
   ([Fault.point] sites in Btree_olc and Serve) are routed to this
   scheduler through the Fault tap, which performs a [Yield] effect —
   the fiber parks and the scheduler picks who runs next.  The schedule
   is then an explicit, replayable value: a list of choices, one per
   step, each an index into the runnable set.

   Two policies: [Random rng] samples schedules (seeded, so a failing
   round replays from its seed), [Replay cs] follows a recorded choice
   list and falls back to deterministic round-robin when it runs out —
   which makes any choice-list prefix a valid schedule, the property
   ddmin shrinking relies on.  Choices are taken modulo the runnable
   count, so shrunk or hand-edited lists never go out of range.

   Everything runs on the calling domain: no parallelism, no timing,
   no races — a schedule replays bit-identically. *)

module Fault = Ei_fault.Fault
module Rng = Ei_util.Rng
module Invariant = Ei_util.Invariant

type _ Effect.t += Yield : string -> unit Effect.t

(* An explicit yield for scenario bodies, through the same tap as the
   production sites so it is inert outside the scheduler. *)
let pause_site = Fault.site "sim.pause"
let pause () = Fault.point pause_site

type scenario = {
  fibers : (string * (unit -> unit)) array;
  check : unit -> unit;  (* runs after quiescence, tap uninstalled *)
}

type policy = Random of Rng.t | Replay of int list

exception Stuck of string

let () =
  Printexc.register_printer (function
    | Stuck msg -> Some ("Sched.Stuck: " ^ msg)
    | _ -> None)

(* The handler answer type: a fiber step either finishes the fiber or
   parks it with the continuation to resume. *)
type step = Done | Parked of (unit, step) Effect.Deep.continuation

type fiber =
  | Not_started of (unit -> unit)
  | Suspended of (unit, step) Effect.Deep.continuation
  | Finished

let handler : (unit, step) Effect.Deep.handler =
  {
    retc = (fun () -> Done);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield _ ->
          Some
            (fun (k : (a, step) Effect.Deep.continuation) -> Parked k)
        | _ -> None);
  }

let run ?(max_steps = 200_000) ~policy scenario =
  let n = Array.length scenario.fibers in
  let state = Array.init n (fun i -> Not_started (snd scenario.fibers.(i))) in
  let alive = ref n in
  let last = ref (-1) in
  let chosen = ref [] in
  let steps = ref 0 in
  let replay = ref (match policy with Replay cs -> cs | Random _ -> []) in
  let runnable () =
    let out = ref [] in
    for i = n - 1 downto 0 do
      match state.(i) with Finished -> () | _ -> out := i :: !out
    done;
    !out
  in
  let round_robin rs =
    match List.find_opt (fun i -> i > !last) rs with
    | Some i -> i
    | None -> List.hd rs
  in
  let step_fiber i =
    last := i;
    chosen := i :: !chosen;
    let outcome =
      match state.(i) with
      | Not_started body ->
        Effect.Deep.match_with (fun () -> body ()) () handler
      | Suspended k -> Effect.Deep.continue k ()
      | Finished -> Invariant.impossible "Sched: stepped a finished fiber"
    in
    match outcome with
    | Done ->
      state.(i) <- Finished;
      decr alive
    | Parked k -> state.(i) <- Suspended k
  in
  (* On abort, unwind every parked fiber so its cleanup (e.g. an OLC
     critical section releasing its lock) runs; secondary failures
     during teardown are counted but cannot mask the primary error. *)
  let teardown () =
    Fault.set_tap None;
    let secondary = ref 0 in
    Array.iteri
      (fun i st ->
        match st with
        | Suspended k -> (
          state.(i) <- Finished;
          match Effect.Deep.discontinue k Stdlib.Exit with
          | (_ : step) -> ()
          | exception _ -> incr secondary)
        | Not_started _ | Finished -> ())
      state;
    !secondary
  in
  Fault.set_tap
    (Some (fun site -> Effect.perform (Yield site)));
  match
    while !alive > 0 do
      incr steps;
      if !steps > max_steps then
        raise
          (Stuck
             (Printf.sprintf "no quiescence after %d steps (%d fibers live)"
                max_steps !alive));
      let rs = runnable () in
      let pick =
        match policy with
        | Random rng -> List.nth rs (Rng.int rng (List.length rs))
        | Replay _ -> (
          match !replay with
          | c :: rest ->
            replay := rest;
            List.nth rs (c mod List.length rs)
          | [] -> round_robin rs)
      in
      step_fiber pick
    done
  with
  | () -> (
    Fault.set_tap None;
    match scenario.check () with
    | () -> Ok (List.rev !chosen)
    | exception e -> Error (List.rev !chosen, Printexc.to_string e))
  | exception e ->
    let secondary = teardown () in
    let msg = Printexc.to_string e in
    let msg =
      if secondary = 0 then msg
      else Printf.sprintf "%s (+%d secondary teardown failures)" msg secondary
    in
    Error (List.rev !chosen, msg)

(* --- Exploration ------------------------------------------------------ *)

type found = { round : int; schedule : int list; error : string }

let explore ?max_steps ~seed ~rounds mk =
  let rec go r =
    if r >= rounds then None
    else
      match run ?max_steps ~policy:(Random (Rng.stream seed r)) (mk ()) with
      | Ok _ -> go (r + 1)
      | Error (schedule, error) -> Some { round = r; schedule; error }
  in
  go 0

let replay ?max_steps ~schedule mk =
  run ?max_steps ~policy:(Replay schedule) (mk ())

let shrink ?max_steps ?(budget = 300) ~schedule mk =
  let fails cs =
    match run ?max_steps ~policy:(Replay (Array.to_list cs)) (mk ()) with
    | Error _ -> true
    | Ok _ -> false
  in
  Array.to_list
    (Ddmin.minimize ~budget (Array.of_list schedule) fails)

(* Exhaustive bounded exploration: every choice prefix in
   [0, fanout)^depth (the run continues round-robin past the prefix).
   Distinct prefixes can realize the same schedule — the runnable set
   shrinks as fibers finish — so coverage is reported as the number of
   distinct realized schedules. *)
let enumerate ?max_steps ?(cap = 20_000) ~fanout ~depth mk =
  let module Strtbl = Ei_util.Strtbl in
  let seen = Strtbl.create 64 in
  let failure = ref None in
  let total =
    let rec pow acc i = if i = 0 then acc else pow (acc * fanout) (i - 1) in
    min cap (pow 1 depth)
  in
  for idx = 0 to total - 1 do
    if Option.is_none !failure then begin
      let prefix =
        let digits = Array.make depth 0 in
        let rec fill i v =
          if i >= 0 then begin
            digits.(i) <- v mod fanout;
            fill (i - 1) (v / fanout)
          end
        in
        fill (depth - 1) idx;
        Array.to_list digits
      in
      match run ?max_steps ~policy:(Replay prefix) (mk ()) with
      | Ok schedule ->
        Strtbl.replace seen
          (String.concat "," (List.map string_of_int schedule))
          ()
      | Error (schedule, error) ->
        failure := Some { round = idx; schedule = prefix; error };
        ignore schedule
    end
  done;
  (!failure, Strtbl.length seen)
