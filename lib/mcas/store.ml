(* MCAS-like in-memory store: a partitioned architecture in which each
   partition's operations are handled by a single-threaded execution
   engine [29].  Partitions hold a raw key-value pool plus optionally an
   attached ADO plugin; clients address a partition and submit either
   plain KV operations or ADO work requests.

   This is the full-system substrate for §6.3: the end-to-end cost of an
   operation includes the request dispatch and pool bookkeeping, which is
   why index-level slowdowns translate into only small end-to-end
   slowdowns (Fig 8). *)

module Strtbl = Ei_util.Strtbl

type partition = {
  id : int;
  pool : string Strtbl.t;
  mutable ado : Ado.t option;
  mutable kv_ops : int;
  mutable ado_ops : int;
}

type t = { partitions : partition array; request_work : int; hash_seed : int }

(* Per-request engine work: MCAS is network-attached, so every operation
   pays request (de)serialisation and engine dispatch before reaching the
   index.  We model it with a fixed checksum loop over a request-sized
   buffer ([request_work] rounds; ~2 microseconds at the default).  This
   fixed cost is why §6.3 sees only 0.4-2.6% end-to-end degradation on
   point operations while 1000-key scans — which amortise it over the
   scan — still expose the index difference. *)
let request_buffer = Bytes.make 256 '\x5a'

let simulate_request_path rounds =
  let acc = ref 0 in
  for r = 0 to rounds - 1 do
    let i = (r * 13) land 255 in
    acc := (!acc * 31) + Char.code (Bytes.unsafe_get request_buffer i)
  done;
  ignore (Sys.opaque_identity !acc)

let create ?(partitions = 1) ?(request_work = 2048) ?(hash_seed = 0x5143) () =
  assert (partitions >= 1);
  {
    partitions =
      Array.init partitions (fun id ->
          { id; pool = Strtbl.create 1024; ado = None; kv_ops = 0; ado_ops = 0 });
    request_work;
    hash_seed;
  }

let partition_count t = Array.length t.partitions

(* Partition routing: seeded FNV-1a over the key bytes.  Unlike
   [Hashtbl.hash] — whose bounded-prefix fold collapses long
   shared-prefix keys onto few partitions and whose output is
   unspecified across compiler versions — this is deterministic,
   reproducible, and sensitive to every key byte; the seed lets
   deployments re-shuffle a pathological key set without code changes. *)
let route t key = Ei_util.Fnv.hash ~seed:t.hash_seed key mod Array.length t.partitions

(* --- Plain KV operations -------------------------------------------- *)

let put t key value =
  simulate_request_path t.request_work;
  let p = t.partitions.(route t key) in
  p.kv_ops <- p.kv_ops + 1;
  Strtbl.replace p.pool key value

let get t key =
  simulate_request_path t.request_work;
  let p = t.partitions.(route t key) in
  p.kv_ops <- p.kv_ops + 1;
  Strtbl.find_opt p.pool key

let delete t key =
  simulate_request_path t.request_work;
  let p = t.partitions.(route t key) in
  p.kv_ops <- p.kv_ops + 1;
  let existed = Strtbl.mem p.pool key in
  Strtbl.remove p.pool key;
  existed

(* --- ADO ------------------------------------------------------------- *)

let attach_ado t ~partition ado =
  let p = t.partitions.(partition) in
  assert (Option.is_none p.ado);
  p.ado <- Some ado

let invoke t ~partition work =
  simulate_request_path t.request_work;
  let p = t.partitions.(partition) in
  p.ado_ops <- p.ado_ops + 1;
  match p.ado with
  | Some ado -> ado.Ado.on_work work
  | None -> invalid_arg "Store.invoke: no ADO attached"

let ado_ops t ~partition = t.partitions.(partition).ado_ops

let ado_memory_bytes t ~partition =
  match t.partitions.(partition).ado with
  | Some ado -> ado.Ado.memory_bytes ()
  | None -> 0

let ado_data_bytes t ~partition =
  match t.partitions.(partition).ado with
  | Some ado -> ado.Ado.data_bytes ()
  | None -> 0
