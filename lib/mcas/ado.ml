(* Active Data Object (ADO) interface, modelled on MCAS [29, 30]: an ADO
   plugin extends the store with custom functionality invoked through
   work requests handled inside a partition's execution engine.

   Our plugin of interest is the indexed multi-column log table of §6.3;
   the work-request protocol below is its domain-specific API (load,
   point query, range scan). *)

module Iotta = Ei_workload.Iotta

type work =
  | Ingest of Iotta.row          (* append a log row and index it *)
  | Lookup of string             (* 16-byte (timestamp, object id) key *)
  | Scan of string * int         (* scan [n] keys from a start key *)
  | Distinct_objects of string * int
    (* monitoring query: distinct object ids among the next [n] log
       entries from a start key.  Covered by the index key alone (the
       object id is part of it) — the included-column query of §2. *)

type response =
  | Ack                          (* row ingested *)
  | Found of Iotta.row option    (* point-query result *)
  | Scanned of int               (* number of keys visited *)
  | Distinct of int              (* distinct object ids in the range *)

type t = {
  name : string;
  on_work : work -> response;
  memory_bytes : unit -> int;    (* memory used by the plugin's index *)
  data_bytes : unit -> int;      (* memory used by the stored rows *)
}
