(** Active Data Object (ADO) interface, modelled on MCAS: a plugin
    extends the store with custom functionality invoked through work
    requests handled inside a partition's execution engine.  The work
    protocol below is the domain-specific API of the indexed log table
    of §6.3. *)

type work =
  | Ingest of Ei_workload.Iotta.row  (** append a log row and index it *)
  | Lookup of string                 (** 16-byte (timestamp, object id) key *)
  | Scan of string * int             (** scan [n] keys from a start key *)
  | Distinct_objects of string * int
      (** monitoring query: distinct object ids among the next [n] log
          entries — covered by the index key alone (§2's included-column
          query) *)

type response =
  | Ack
  | Found of Ei_workload.Iotta.row option
  | Scanned of int
  | Distinct of int

type t = {
  name : string;
  on_work : work -> response;
  memory_bytes : unit -> int;  (** memory used by the plugin's index *)
  data_bytes : unit -> int;    (** memory used by the stored rows *)
}
