(** The indexed multi-column log table ADO plugin of §6.3.

    Rows are stored column-wise (timestamp, request type, object id,
    size) and indexed by the 16-byte (timestamp, object id) composite
    key.  The index is pluggable via {!Ei_harness.Registry.kind};
    compact indexes reconstruct keys from the columns. *)

type t

val key_len : int
(** 16 bytes: (timestamp, object id). *)

val create :
  ?initial_capacity:int -> index_kind:Ei_harness.Registry.kind -> unit -> t

val ingest : t -> Ei_workload.Iotta.row -> unit
(** Append a row and index it.  Raises on duplicate key. *)

val lookup : t -> string -> Ei_workload.Iotta.row option
val scan : t -> start:string -> n:int -> int

val distinct_objects : t -> start:string -> n:int -> int
(** Monitoring query: distinct object ids among the next [n] entries,
    computed from the index keys alone (§2's included-column query). *)

val row_count : t -> int
val index_memory_bytes : t -> int
val data_bytes : t -> int
val index_name : t -> string
val index : t -> Ei_harness.Index_ops.t
val index_info : t -> string

val ado : t -> Ado.t
(** Package the table as an ADO plugin for {!Store.attach_ado}. *)
