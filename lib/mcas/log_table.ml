(* The indexed multi-column table ADO plugin of §6.3.

   Rows are stored column-wise in four integer columns (timestamp,
   request type, object id, size).  The table is indexed by the 16-byte
   composite key (timestamp, object id); the index is pluggable so the
   benchmark can compare STX, elastic B+-trees with different shrink
   bounds, STX-SeqTree128 and HOT inside the same full-system path.

   Indexes with indirect key storage reconstruct keys from the columns
   through the [load] closure — the key is derivable from the row, as
   the paper requires (§5). *)

module Iotta = Ei_workload.Iotta
module Index_ops = Ei_harness.Index_ops
module Registry = Ei_harness.Registry

type columns = {
  mutable ts : int array;
  mutable op : int array;
  mutable obj : int array;
  mutable size : int array;
  mutable n : int;
}

type t = { cols : columns; index : Index_ops.t }

let key_len = 16

let grow c =
  let cap = Array.length c.ts in
  let extend a =
    let b = Array.make (2 * cap) 0 in
    Array.blit a 0 b 0 c.n;
    b
  in
  c.ts <- extend c.ts;
  c.op <- extend c.op;
  c.obj <- extend c.obj;
  c.size <- extend c.size

(* Reconstruct the index key of a row from its columns: the indirect
   key access compact indexes pay for. *)
let load_key c tid = Ei_util.Key.of_int_pair c.ts.(tid) c.obj.(tid)

let row_at c tid =
  { Iotta.ts = c.ts.(tid); op = c.op.(tid); obj = c.obj.(tid); size = c.size.(tid) }

let create ?(initial_capacity = 1024) ~index_kind () =
  let cols =
    {
      ts = Array.make initial_capacity 0;
      op = Array.make initial_capacity 0;
      obj = Array.make initial_capacity 0;
      size = Array.make initial_capacity 0;
      n = 0;
    }
  in
  let index = Registry.make ~key_len ~load:(load_key cols) index_kind in
  { cols; index }

let ingest t (r : Iotta.row) =
  let c = t.cols in
  if c.n = Array.length c.ts then grow c;
  let tid = c.n in
  c.ts.(tid) <- r.Iotta.ts;
  c.op.(tid) <- r.Iotta.op;
  c.obj.(tid) <- r.Iotta.obj;
  c.size.(tid) <- r.Iotta.size;
  c.n <- tid + 1;
  if not (t.index.Index_ops.insert (Iotta.key_of_row r) tid) then
    invalid_arg "Log_table.ingest: duplicate key"

let lookup t key =
  match t.index.Index_ops.find key with
  | Some tid -> Some (row_at t.cols tid)
  | None -> None

let scan t ~start ~n = t.index.Index_ops.scan start n

(* Included-column monitoring query: the object id occupies bytes 8-15 of
   the index key, so the result is computed from scanned keys alone —
   no row accesses for key-storing indexes, one indirect load per key
   for compact/blind ones (§2). *)
let distinct_objects t ~start ~n =
  let seen = Ei_util.Strtbl.create 64 in
  ignore
    (t.index.Index_ops.scan_keys start n (fun key ->
         Ei_util.Strtbl.replace seen (String.sub key 8 8) ()));
  Ei_util.Strtbl.length seen

let row_count t = t.cols.n
let index_memory_bytes t = t.index.Index_ops.memory_bytes ()
let data_bytes t = t.cols.n * Iotta.row_bytes
let index_name t = t.index.Index_ops.name
let index t = t.index

(* Status string of the underlying index (elastic state, if any). *)
let index_info t = t.index.Index_ops.info ()

(* Package the table as an ADO plugin. *)
let ado t =
  {
    Ado.name = Printf.sprintf "log-table(%s)" (index_name t);
    on_work =
      (fun work ->
        match work with
        | Ado.Ingest row ->
          ingest t row;
          Ado.Ack
        | Ado.Lookup key -> Ado.Found (lookup t key)
        | Ado.Scan (start, n) -> Ado.Scanned (scan t ~start ~n)
        | Ado.Distinct_objects (start, n) ->
          Ado.Distinct (distinct_objects t ~start ~n));
    memory_bytes = (fun () -> index_memory_bytes t);
    data_bytes = (fun () -> data_bytes t);
  }
