(** MCAS-like in-memory store: a partitioned architecture where each
    partition's operations are handled by a single-threaded execution
    engine.  Partitions hold a raw key-value pool and optionally an
    attached {!Ado} plugin.

    Every operation pays a modelled request-processing cost (MCAS is
    network-attached), which is why index-level slowdowns translate to
    only small end-to-end slowdowns on point operations (§6.3) while
    large scans still expose them. *)

type t

val create : ?partitions:int -> ?request_work:int -> ?hash_seed:int -> unit -> t
(** [request_work] scales the modelled per-request engine cost
    (checksum rounds; default 2048, ~2 microseconds).  [hash_seed]
    seeds the FNV-1a partition-routing hash: routing is deterministic
    for a given seed and every key byte contributes to it. *)

val partition_count : t -> int

val put : t -> string -> string -> unit
val get : t -> string -> string option
val delete : t -> string -> bool

val attach_ado : t -> partition:int -> Ado.t -> unit
(** Attach an ADO plugin to a partition (at most one per partition). *)

val invoke : t -> partition:int -> Ado.work -> Ado.response
(** Submit a work request to the partition's ADO. *)

val ado_ops : t -> partition:int -> int
val ado_memory_bytes : t -> partition:int -> int
val ado_data_bytes : t -> partition:int -> int
