(** Adaptive-span blind radix trie over fixed-length keys — the design
    space of HOT and ART.

    Inner nodes discriminate on one byte position; non-branching
    positions are skipped without storing the skipped bytes (a blind
    trie).  With [store_keys = false] (default), only tuple ids are kept
    and keys are loaded from the base table for verification and scans —
    our HOT substitute.  With [store_keys = true], leaves carry key
    copies, as in ART. *)

type t

val create :
  ?store_keys:bool -> key_len:int -> load:(int -> string) -> unit -> t

val count : t -> int
val key_len : t -> int

val key_loads : t -> int
(** Number of indirect key loads performed (indirect mode). *)

val memory_bytes : t -> int
(** Size under the memory model (computed by traversal). *)

val insert : t -> string -> int -> bool
val remove : t -> string -> bool
val update : t -> string -> int -> bool
val find : t -> string -> int option
val mem : t -> string -> bool

val iter : t -> (string -> int -> unit) -> unit
(** In-order iteration; loads every key in indirect mode. *)

val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
(** Ordered scan over up to [n] entries with keys [>= start].  The
    boundary is located with at most two key loads per trie level. *)

val check_invariants : t -> unit
