(** Skip list with internal key storage (Pugh) — a comparison baseline.
    Every node stores its key inline plus a tower of forward pointers,
    which is why skip lists consume more memory than the STX B+-tree. *)

type t

val create : ?seed:int -> key_len:int -> unit -> t

val count : t -> int
val memory_bytes : t -> int

val key_len : t -> int

val level : t -> int
(** Current list level: the height of the tallest live tower. *)

val max_level : int
(** Tower height cap (24). *)

val fold_towers : t -> ('a -> string -> int -> int -> 'a) -> 'a -> 'a
(** [fold_towers t f acc] folds [f acc key tid height] over all nodes in
    key order along level 0.  Sanitizer support ({!Ei_check}). *)

val fold_level : t -> int -> ('a -> string -> int -> 'a) -> 'a -> 'a
(** [fold_level t lvl f acc] folds [f acc key height] over the nodes
    linked at level [lvl] in key order. *)

val insert : t -> string -> int -> bool
val remove : t -> string -> bool
val update : t -> string -> int -> bool
val find : t -> string -> int option
val mem : t -> string -> bool

val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
val iter : t -> (string -> int -> unit) -> unit

val check_invariants : t -> unit
