(** Skip list with internal key storage (Pugh) — a comparison baseline.
    Every node stores its key inline plus a tower of forward pointers,
    which is why skip lists consume more memory than the STX B+-tree. *)

type t

val create : ?seed:int -> key_len:int -> unit -> t

val count : t -> int
val memory_bytes : t -> int

val insert : t -> string -> int -> bool
val remove : t -> string -> bool
val update : t -> string -> int -> bool
val find : t -> string -> int option
val mem : t -> string -> bool

val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
val iter : t -> (string -> int -> unit) -> unit

val check_invariants : t -> unit
