(** Hybrid index (Zhang et al.): the two-stage architecture §2 contrasts
    with elastic indexes — a small dynamic B+-tree in front of a compact
    read-only sorted array, merged wholesale when the dynamic stage
    outgrows [merge_ratio] of the static stage. *)

type t

type stats = {
  mutable merges : int;
  mutable merge_work : int;  (** entries rewritten by merges *)
}

val create : ?merge_ratio:float -> key_len:int -> load:(int -> string) -> unit -> t

val insert : t -> string -> int -> bool
val remove : t -> string -> bool
val update : t -> string -> int -> bool
(** Updating a static entry shadows it through the dynamic stage — the
    skew-assumption cost when updates hit old entries. *)

val find : t -> string -> int option
val mem : t -> string -> bool

val fold_range : t -> start:string -> n:int -> ('a -> string -> int -> 'a) -> 'a -> 'a
val iter : t -> (string -> int -> unit) -> unit

val count : t -> int
val key_len : t -> int
val memory_bytes : t -> int
val stats : t -> stats

val check_invariants : t -> unit
