(* Adaptive-span blind radix trie over fixed-length keys.

   Inner nodes discriminate on one *byte* position; non-branching byte
   positions are skipped entirely (path compression without storing the
   skipped bytes), so the structure is a blind trie with byte-granularity
   spans — the design space of HOT [3] and ART [16]:

   - with [store_keys = false] the trie stores only tuple ids at the
     leaves and loads keys from the base table to verify searches and to
     produce scan output.  This is our HOT substitute: compact and fast
     for point operations, but paying an indirect access per scanned key
     (the behaviour §2 and §6.1 rely on);
   - with [store_keys = true] each leaf carries a copy of its key (ART's
     single-value leaves), removing verification loads at the price of
     key storage.

   Children within a node are kept sorted by byte value, so in-order
   traversal yields keys in ascending order (keys in a subtree agree on
   every skipped byte, hence on every byte before the node's position). *)

module Key = Ei_util.Key
module Invariant = Ei_util.Invariant
module Memmodel = Ei_storage.Memmodel

type node =
  | Empty
  | Leaf of { tid : int; key : string }  (* key = "" when not stored *)
  | Inner of inner

and inner = {
  pos : int;  (* discriminating byte index *)
  mutable n : int;
  mutable bytes : Bytes.t;     (* sorted child byte values *)
  mutable children : node array;
}

type t = {
  key_len : int;
  store_keys : bool;
  load : int -> string;
  mutable root : node;
  mutable items : int;
  mutable node_count : int;
  mutable key_loads : int;
}

let create ?(store_keys = false) ~key_len ~load () =
  { key_len; store_keys; load; root = Empty; items = 0; node_count = 0; key_loads = 0 }

let count t = t.items

let key_len (t : t) = t.key_len
let key_loads t = t.key_loads

let key_of_leaf t ~tid ~key =
  if t.store_keys then key
  else begin
    t.key_loads <- t.key_loads + 1;
    t.load tid
  end

let mk_leaf t tid key = Leaf { tid; key = (if t.store_keys then key else "") }

(* Allocation tiers mirroring ART's Node4/16/48/256 for both the array
   growth policy and the memory model. *)
let tier n = if n <= 4 then 4 else if n <= 16 then 16 else if n <= 48 then 48 else 256

let node_bytes t nd =
  ignore t;
  Memmodel.hot_node_bytes ~entries:nd.n ~discriminating_bits:1

let leaf_bytes t =
  if t.store_keys then Memmodel.art_leaf_bytes ~key_len:t.key_len else 0

let rec subtree_bytes t = function
  | Empty -> 0
  | Leaf _ -> leaf_bytes t
  | Inner nd ->
    let s = ref (node_bytes t nd) in
    for i = 0 to nd.n - 1 do
      s := !s + subtree_bytes t nd.children.(i)
    done;
    !s

let memory_bytes t = subtree_bytes t t.root

(* ------------------------------------------------------------------ *)
(* Inner-node child management.                                        *)

let byte_at key pos = Char.code (String.unsafe_get key pos)

(* Exact child index for byte [b], or the position where it belongs. *)
let locate_child nd b =
  let lo = ref 0 and hi = ref nd.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Char.code (Bytes.get nd.bytes mid) < b then lo := mid + 1 else hi := mid
  done;
  let i = !lo in
  if i < nd.n && Char.code (Bytes.get nd.bytes i) = b then `Exact i else `Insert_at i

let add_child nd i b child =
  if nd.n = Bytes.length nd.bytes then begin
    let cap = tier (nd.n + 1) in
    let bytes = Bytes.make cap '\000' in
    Bytes.blit nd.bytes 0 bytes 0 nd.n;
    let children = Array.make cap Empty in
    Array.blit nd.children 0 children 0 nd.n;
    nd.bytes <- bytes;
    nd.children <- children
  end;
  Bytes.blit nd.bytes i nd.bytes (i + 1) (nd.n - i);
  Array.blit nd.children i nd.children (i + 1) (nd.n - i);
  Bytes.set nd.bytes i (Char.chr b);
  nd.children.(i) <- child;
  nd.n <- nd.n + 1

let remove_child nd i =
  Bytes.blit nd.bytes (i + 1) nd.bytes i (nd.n - i - 1);
  Array.blit nd.children (i + 1) nd.children i (nd.n - i - 1);
  nd.n <- nd.n - 1;
  nd.children.(nd.n) <- Empty

let new_inner t pos =
  t.node_count <- t.node_count + 1;
  { pos; n = 0; bytes = Bytes.make 4 '\000'; children = Array.make 4 Empty }

(* ------------------------------------------------------------------ *)
(* Point lookup.                                                       *)

let find t key =
  assert (String.length key = t.key_len);
  let rec go = function
    | Empty -> None
    | Leaf { tid; key = stored } ->
      if Key.equal (key_of_leaf t ~tid ~key:stored) key then Some tid else None
    | Inner nd -> (
      match locate_child nd (byte_at key nd.pos) with
      | `Exact i -> go nd.children.(i)
      | `Insert_at _ -> None)
  in
  go t.root

let mem t key = Option.is_some (find t key)

(* In-place value update of an existing key; false if absent.  The new
   row must hold the same key bytes. *)
let update t key tid =
  let rec go parent_set = function
    | Empty -> false
    | Leaf { tid = old_tid; key = stored } ->
      if Key.equal (key_of_leaf t ~tid:old_tid ~key:stored) key then begin
        parent_set (mk_leaf t tid key);
        true
      end
      else false
    | Inner nd -> (
      match locate_child nd (byte_at key nd.pos) with
      | `Exact i -> go (fun child -> nd.children.(i) <- child) nd.children.(i)
      | `Insert_at _ -> false)
  in
  go (fun n -> t.root <- n) t.root

(* ------------------------------------------------------------------ *)
(* Insert.                                                             *)

(* Any leaf of a subtree (leftmost), used as the comparison candidate. *)
let rec leftmost_leaf = function
  | Empty -> None
  | Leaf { tid; key } -> Some (tid, key)
  | Inner nd -> leftmost_leaf nd.children.(0)

(* Candidate leaf for [key]: follow exact byte matches while possible,
   then any path.  The first differing byte between the candidate's key
   and [key] determines the insertion point. *)
let rec candidate t key = function
  | Empty -> None
  | Leaf { tid; key = stored } -> Some (tid, stored)
  | Inner nd -> (
    match locate_child nd (byte_at key nd.pos) with
    | `Exact i -> candidate t key nd.children.(i)
    | `Insert_at _ -> leftmost_leaf (Inner nd))

let insert t key tid =
  assert (String.length key = t.key_len);
  match candidate t key t.root with
  | None ->
    t.root <- mk_leaf t tid key;
    t.items <- 1;
    true
  | Some (ctid, cstored) -> (
    let ckey = key_of_leaf t ~tid:ctid ~key:cstored in
    match Key.first_diff_bit key ckey with
    | None -> false (* duplicate *)
    | Some db ->
      let d = db / 8 in
      (* Walk to the first node whose position is >= d; all node keys
         agree with [key] (and the candidate) on bytes before d. *)
      let rec place parent_set node =
        match node with
        | Empty -> Invariant.impossible "Radix.place: empty node on insert path"
        | Leaf _ -> splice parent_set node
        | Inner nd ->
          if nd.pos < d then begin
            match locate_child nd (byte_at key nd.pos) with
            | `Exact i ->
              place (fun child -> nd.children.(i) <- child) nd.children.(i)
            | `Insert_at _ ->
              Invariant.impossible "Radix.place: missing child below diff byte"
          end
          else if nd.pos = d then begin
            match locate_child nd (byte_at key d) with
            | `Exact _ ->
              (* An exact child here would contradict the diff byte d. *)
              Invariant.impossible "Radix.place: exact child at diff byte"
            | `Insert_at i -> add_child nd i (byte_at key d) (mk_leaf t tid key)
          end
          else splice parent_set node
      and splice parent_set node =
        (* Create a new inner discriminating at byte d above [node]. *)
        let nd = new_inner t d in
        let old_b = byte_at ckey d and new_b = byte_at key d in
        assert (old_b <> new_b);
        if old_b < new_b then begin
          add_child nd 0 old_b node;
          add_child nd 1 new_b (mk_leaf t tid key)
        end
        else begin
          add_child nd 0 new_b (mk_leaf t tid key);
          add_child nd 1 old_b node
        end;
        parent_set (Inner nd)
      in
      place (fun n -> t.root <- n) t.root;
      t.items <- t.items + 1;
      true)

(* ------------------------------------------------------------------ *)
(* Remove.                                                             *)

let remove t key =
  let rec go parent_set = function
    | Empty -> false
    | Leaf { tid; key = stored } ->
      if Key.equal (key_of_leaf t ~tid ~key:stored) key then begin
        parent_set Empty;
        true
      end
      else false
    | Inner nd -> (
      match locate_child nd (byte_at key nd.pos) with
      | `Insert_at _ -> false
      | `Exact i ->
        let removed =
          go
            (fun child ->
              match child with
              | Empty -> remove_child nd i
              | c -> nd.children.(i) <- c)
            nd.children.(i)
        in
        if removed && nd.n = 1 then begin
          (* Path-compress: a single-child node disappears. *)
          t.node_count <- t.node_count - 1;
          parent_set nd.children.(0)
        end;
        removed)
  in
  let removed = go (fun n -> t.root <- n) t.root in
  if removed then t.items <- t.items - 1;
  removed

(* ------------------------------------------------------------------ *)
(* Ordered iteration and range scans.                                  *)

let iter t f =
  let rec go = function
    | Empty -> ()
    | Leaf { tid; key } -> f (key_of_leaf t ~tid ~key) tid
    | Inner nd ->
      for i = 0 to nd.n - 1 do
        go nd.children.(i)
      done
  in
  go t.root

(* Fold over up to [n] entries with key >= [start], ascending.  The
   boundary is located with at most two key loads per level: the
   subtree's minimum determines whether the whole subtree lies before or
   after [start], or whether it splits at this node's byte. *)
let fold_range t ~start ~n f acc =
  let remaining = ref n and acc = ref acc in
  let emit key tid =
    if !remaining > 0 then begin
      acc := f !acc key tid;
      decr remaining
    end
  in
  let rec emit_all = function
    | Empty -> ()
    | Leaf { tid; key } -> if !remaining > 0 then emit (key_of_leaf t ~tid ~key) tid
    | Inner nd ->
      let i = ref 0 in
      while !remaining > 0 && !i < nd.n do
        emit_all nd.children.(!i);
        incr i
      done
  in
  (* Returns true if emission has started inside this subtree. *)
  let rec seek node =
    match node with
    | Empty -> false
    | Leaf { tid; key } ->
      let k = key_of_leaf t ~tid ~key in
      if Key.compare k start >= 0 then begin
        emit k tid;
        true
      end
      else false
    | Inner nd -> (
      match leftmost_leaf node with
      | None -> false
      | Some (ltid, lkey) -> (
        let m = key_of_leaf t ~tid:ltid ~key:lkey in
        match Key.first_diff_bit m start with
        | None ->
          (* start is exactly the subtree minimum *)
          emit_all node;
          true
        | Some db ->
          if Key.compare m start > 0 then begin
            (* whole subtree > start *)
            emit_all node;
            true
          end
          else begin
            let d = db / 8 in
            if d < nd.pos then false (* whole subtree < start *)
            else begin
              (* The subtree splits at this node's byte: children with a
                 smaller byte are entirely below [start], the exact-match
                 child (if any) contains the boundary, larger ones are
                 entirely above. *)
              let b = byte_at start nd.pos in
              let found0, i0 =
                match locate_child nd b with
                | `Exact i -> (seek nd.children.(i), i + 1)
                | `Insert_at i -> (false, i)
              in
              for i = i0 to nd.n - 1 do
                emit_all nd.children.(i)
              done;
              found0 || i0 < nd.n
            end
          end))
  in
  ignore (seek t.root);
  !acc

(* ------------------------------------------------------------------ *)
(* Invariants (test support).                                          *)

let check_invariants t =
  let items = ref 0 in
  let rec go node ~min_pos =
    match node with
    | Empty -> assert (t.items = 0)
    | Leaf { tid; key } ->
      incr items;
      if t.store_keys then assert (String.length key = t.key_len)
      else assert (String.equal key "");
      ignore tid
    | Inner nd ->
      assert (nd.n >= 2);
      assert (nd.pos >= min_pos && nd.pos < t.key_len);
      for i = 0 to nd.n - 2 do
        assert (Bytes.get nd.bytes i < Bytes.get nd.bytes (i + 1))
      done;
      for i = 0 to nd.n - 1 do
        (* Every key under child i has byte nd.pos equal to the label. *)
        (match leftmost_leaf nd.children.(i) with
        | Some (ltid, lkey) ->
          let k = key_of_leaf t ~tid:ltid ~key:lkey in
          assert (byte_at k nd.pos = Char.code (Bytes.get nd.bytes i))
        | None -> Invariant.broken "Radix: inner node with an empty child");
        go nd.children.(i) ~min_pos:(nd.pos + 1)
      done
  in
  go t.root ~min_pos:0;
  (match t.root with Empty -> assert (t.items = 0) | _ -> assert (!items = t.items));
  (* Global order. *)
  let prev = ref None in
  iter t (fun k _ ->
      (match !prev with Some p -> assert (Key.compare p k < 0) | None -> ());
      prev := Some k)
