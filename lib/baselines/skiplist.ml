(* Skip list with internal key storage (Pugh [25]) — one of the
   comparison baselines the paper evaluates.  Each node stores its key
   inline (like a B+-tree leaf entry) plus a tower of forward pointers,
   which is why the paper finds skip lists consume *more* memory than the
   STX B+-tree: every key pays a node header and an average of two
   pointers. *)

module Key = Ei_util.Key
module Memmodel = Ei_storage.Memmodel

let max_level = 24

type node = {
  key : string;
  mutable tid : int;
  forward : node option array;  (* length = tower height *)
}

type t = {
  key_len : int;
  rng : Ei_util.Rng.t;
  head : node;  (* sentinel with an empty key, never compared *)
  mutable level : int;
  mutable items : int;
  mutable node_bytes : int;
}

let create ?(seed = 42) ~key_len () =
  {
    key_len;
    rng = Ei_util.Rng.create seed;
    head = { key = ""; tid = -1; forward = Array.make max_level None };
    level = 1;
    items = 0;
    node_bytes = 0;
  }

let count t = t.items
let memory_bytes t = t.node_bytes
let level t = t.level
let key_len t = t.key_len

(* Introspection for the deep sanitizer ({!Ei_check}): walk the towers
   and per-level chains without exposing the node type. *)
let fold_towers t f acc =
  let rec go acc = function
    | Some nd -> go (f acc nd.key nd.tid (Array.length nd.forward)) nd.forward.(0)
    | None -> acc
  in
  go acc t.head.forward.(0)

let fold_level t lvl f acc =
  assert (lvl >= 0 && lvl < max_level);
  let rec go acc = function
    | Some nd ->
      go (f acc nd.key (Array.length nd.forward)) nd.forward.(lvl)
    | None -> acc
  in
  go acc t.head.forward.(lvl)

let random_height t =
  let rec go h = if h < max_level && Ei_util.Rng.bool t.rng then go (h + 1) else h in
  go 1

(* Fill [update] with the last node at each level whose key is < [key];
   returns the node after position 0, the candidate. *)
let find_predecessors t key update =
  let x = ref t.head in
  for i = t.level - 1 downto 0 do
    let rec advance () =
      match !x.forward.(i) with
      | Some nxt when Key.compare_fast nxt.key key < 0 ->
        x := nxt;
        advance ()
      | Some _ | None -> ()
    in
    advance ();
    update.(i) <- !x
  done;
  !x.forward.(0)

let find t key =
  let update = Array.make max_level t.head in
  match find_predecessors t key update with
  | Some nxt when Key.equal nxt.key key -> Some nxt.tid
  | Some _ | None -> None

let mem t key = Option.is_some (find t key)

(* In-place value update of an existing key; false if absent. *)
let update t key tid =
  let update_arr = Array.make max_level t.head in
  match find_predecessors t key update_arr with
  | Some nxt when Key.equal nxt.key key ->
    nxt.tid <- tid;
    true
  | Some _ | None -> false

let insert t key tid =
  assert (String.length key = t.key_len);
  let update = Array.make max_level t.head in
  match find_predecessors t key update with
  | Some nxt when Key.equal nxt.key key -> false
  | Some _ | None ->
    let h = random_height t in
    if h > t.level then begin
      for i = t.level to h - 1 do
        update.(i) <- t.head
      done;
      t.level <- h
    end;
    let node = { key; tid; forward = Array.make h None } in
    for i = 0 to h - 1 do
      node.forward.(i) <- update.(i).forward.(i);
      update.(i).forward.(i) <- Some node
    done;
    t.items <- t.items + 1;
    t.node_bytes <-
      t.node_bytes + Memmodel.skiplist_node_bytes ~key_len:t.key_len ~height:h;
    true

let remove t key =
  let update = Array.make max_level t.head in
  match find_predecessors t key update with
  | Some nxt when Key.equal nxt.key key ->
    let h = Array.length nxt.forward in
    for i = 0 to h - 1 do
      match update.(i).forward.(i) with
      | Some n when n == nxt -> update.(i).forward.(i) <- nxt.forward.(i)
      | Some _ | None -> ()
    done;
    (* Shrink the list level if upper levels emptied. *)
    while t.level > 1 && Option.is_none t.head.forward.(t.level - 1) do
      t.level <- t.level - 1
    done;
    t.items <- t.items - 1;
    t.node_bytes <-
      t.node_bytes - Memmodel.skiplist_node_bytes ~key_len:t.key_len ~height:h;
    true
  | Some _ | None -> false

let fold_range t ~start ~n f acc =
  let update = Array.make max_level t.head in
  let first = find_predecessors t start update in
  let rec go node remaining acc =
    match node with
    | Some nd when remaining > 0 ->
      go nd.forward.(0) (remaining - 1) (f acc nd.key nd.tid)
    | Some _ | None -> acc
  in
  go first n acc

let iter t f =
  let rec go = function
    | Some nd ->
      f nd.key nd.tid;
      go nd.forward.(0)
    | None -> ()
  in
  go t.head.forward.(0)

let check_invariants t =
  (* Level-0 keys strictly ascending and item count consistent. *)
  let n = ref 0 in
  let prev = ref None in
  iter t (fun k _ ->
      incr n;
      (match !prev with Some p -> assert (Key.compare p k < 0) | None -> ());
      prev := Some k);
  assert (!n = t.items);
  (* Every upper-level chain is a subsequence of level 0. *)
  for i = 1 to t.level - 1 do
    let rec walk = function
      | Some nd ->
        assert (Array.length nd.forward > i);
        walk nd.forward.(i)
      | None -> ()
    in
    walk t.head.forward.(i)
  done
