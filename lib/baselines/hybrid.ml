(* Hybrid index (Zhang et al. [33]): the two-stage architecture §2
   contrasts with elastic indexes.

   Recently inserted data lives in a small *dynamic* stage (an STX-style
   B+-tree); the bulk lives in a *static* stage — a compact, read-only
   sorted array with no per-node overhead.  When the dynamic stage grows
   beyond [merge_ratio] of the static stage, a merge rebuilds the static
   stage entirely from both (the bulk rebuild cost §2 points out).
   Deletes of static entries are tombstones until the next merge;
   updates of static entries shadow them in the dynamic stage.

   §2's two criticisms are observable here: merges rewrite the whole
   static stage (coarse-grained, latency spikes), and efficiency rests
   on the skew assumption that updated entries are the recently inserted
   ones — an update stream against old entries makes the dynamic stage
   balloon with shadows and forces frequent full merges. *)

module Strtbl = Ei_util.Strtbl
module Key = Ei_util.Key
module Btree = Ei_btree.Btree
module Memmodel = Ei_storage.Memmodel

type stats = {
  mutable merges : int;
  mutable merge_work : int;  (* entries rewritten by merges *)
}

type t = {
  key_len : int;
  merge_ratio : float;
  load : int -> string;
  mutable dynamic : Btree.t;
  mutable static_keys : string array;
  mutable static_tids : int array;
  mutable static_n : int;
  tombstones : unit Strtbl.t;
  mutable shadows : int;  (* keys present in both stages (dynamic wins) *)
  stats : stats;
}

let create ?(merge_ratio = 0.1) ~key_len ~load () =
  {
    key_len;
    merge_ratio;
    load;
    dynamic = Btree.create ~key_len ~load ~policy:Ei_btree.Policy.stx ();
    static_keys = [||];
    static_tids = [||];
    static_n = 0;
    tombstones = Strtbl.create 64;
    shadows = 0;
    stats = { merges = 0; merge_work = 0 };
  }

let stats t = t.stats

let key_len (t : t) = t.key_len

let count t =
  Btree.count t.dynamic + t.static_n - Strtbl.length t.tombstones - t.shadows

let memory_bytes t =
  Btree.memory_bytes t.dynamic
  + Memmodel.node_header
  + (t.static_n * (t.key_len + Memmodel.word))
  + (Strtbl.length t.tombstones * (t.key_len + Memmodel.word))

(* Binary search in the static stage: position of the first key >= k. *)
let static_lower_bound t key =
  let lo = ref 0 and hi = ref t.static_n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Key.compare t.static_keys.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let static_find t key =
  let i = static_lower_bound t key in
  if i < t.static_n && Key.equal t.static_keys.(i) key then Some t.static_tids.(i)
  else None

let find t key =
  match Btree.find t.dynamic key with
  | Some tid -> Some tid
  | None ->
    if Strtbl.mem t.tombstones key then None else static_find t key

let mem t key = Option.is_some (find t key)

(* Rebuild the static stage from static minus tombstones plus dynamic.
   This is the full rebuild §2 contrasts with per-node conversion. *)
let merge t =
  t.stats.merges <- t.stats.merges + 1;
  let total = count t in
  let keys = Array.make (max 1 total) "" in
  let tids = Array.make (max 1 total) 0 in
  let out = ref 0 in
  let put k v =
    keys.(!out) <- k;
    tids.(!out) <- v;
    incr out
  in
  (* Merge the two sorted streams; dynamic shadows static. *)
  let si = ref 0 in
  let emit_static_below limit =
    let stop k =
      match limit with None -> false | Some l -> Key.compare k l >= 0
    in
    while
      !si < t.static_n
      && (not (stop t.static_keys.(!si)))
    do
      let k = t.static_keys.(!si) in
      if not (Strtbl.mem t.tombstones k) then put k t.static_tids.(!si);
      incr si
    done
  in
  Btree.iter t.dynamic (fun k v ->
      emit_static_below (Some k);
      (* Skip a shadowed static entry with the same key. *)
      if !si < t.static_n && Key.equal t.static_keys.(!si) k then incr si;
      put k v);
  emit_static_below None;
  assert (!out = total);
  t.static_keys <- Array.sub keys 0 !out;
  t.static_tids <- Array.sub tids 0 !out;
  t.static_n <- !out;
  t.stats.merge_work <- t.stats.merge_work + !out;
  Strtbl.reset t.tombstones;
  t.shadows <- 0;
  (* The dynamic stage starts over. *)
  t.dynamic <-
    Btree.create ~key_len:t.key_len ~load:t.load ~policy:Ei_btree.Policy.stx ()

let maybe_merge t =
  if
    Float.compare
      (float_of_int (Btree.count t.dynamic))
      (t.merge_ratio *. float_of_int (max 64 t.static_n))
    > 0
  then merge t

let insert t key tid =
  assert (String.length key = t.key_len);
  if Option.is_some (Btree.find t.dynamic key) then false
  else if (not (Strtbl.mem t.tombstones key)) && Option.is_some (static_find t key) then
    false
  else begin
    if Strtbl.mem t.tombstones key then begin
      (* A tombstoned static entry is resurrected through the dynamic
         stage, shadowing the stale static entry. *)
      Strtbl.remove t.tombstones key;
      t.shadows <- t.shadows + 1
    end;
    let inserted = Btree.insert t.dynamic key tid in
    assert inserted;
    maybe_merge t;
    true
  end

let remove t key =
  if Btree.remove t.dynamic key then begin
    (* The key may also have a stale static entry it was shadowing. *)
    if Option.is_some (static_find t key) then begin
      Strtbl.replace t.tombstones key ();
      t.shadows <- t.shadows - 1
    end;
    true
  end
  else if (not (Strtbl.mem t.tombstones key)) && Option.is_some (static_find t key)
  then begin
    Strtbl.replace t.tombstones key ();
    true
  end
  else false

let update t key tid =
  if Btree.update t.dynamic key tid then true
  else if (not (Strtbl.mem t.tombstones key)) && Option.is_some (static_find t key)
  then begin
    (* Static entries are immutable: shadow through the dynamic stage —
       the skew-assumption cost when updates hit old entries. *)
    ignore (Btree.insert t.dynamic key tid);
    t.shadows <- t.shadows + 1;
    maybe_merge t;
    true
  end
  else false

let fold_range t ~start ~n f acc =
  (* Collect up to [n] candidates from the dynamic stage, then merge with
     the static stage, honouring shadows and tombstones. *)
  let dyn =
    List.rev
      (Btree.fold_range t.dynamic ~start ~n (fun acc k v -> (k, v) :: acc) [])
  in
  let rec go dyn si (taken : int) acc =
    if taken >= n then acc
    else
      let static_entry =
        if si < t.static_n then
          let k = t.static_keys.(si) in
          if Strtbl.mem t.tombstones k then `Skip else `Entry (k, t.static_tids.(si))
        else `End
      in
      match (dyn, static_entry) with
      | _, `Skip -> go dyn (si + 1) taken acc
      | [], `End -> acc
      | (k, v) :: rest, `End -> go rest si (taken + 1) (f acc k v)
      | [], `Entry (k, v) -> go [] (si + 1) (taken + 1) (f acc k v)
      | (dk, dv) :: drest, `Entry (sk, sv) ->
        let c = Key.compare dk sk in
        if c < 0 then go drest si (taken + 1) (f acc dk dv)
        else if c = 0 then (* dynamic shadows static *)
          go drest (si + 1) (taken + 1) (f acc dk dv)
        else go dyn (si + 1) (taken + 1) (f acc sk sv)
  in
  go dyn (static_lower_bound t start) 0 acc

let iter t f =
  ignore (fold_range t ~start:(String.make t.key_len '\000') ~n:max_int
            (fun () k v -> f k v) ())

let check_invariants t =
  Btree.check_invariants t.dynamic;
  (* Recount shadows. *)
  let shadows = ref 0 in
  Btree.iter t.dynamic (fun k _ ->
      if Option.is_some (static_find t k) then begin
        incr shadows;
        assert (not (Strtbl.mem t.tombstones k))
      end);
  assert (!shadows = t.shadows);
  for i = 0 to t.static_n - 2 do
    assert (Key.compare t.static_keys.(i) t.static_keys.(i + 1) < 0)
  done;
  (* Tombstones refer to static entries only. *)
  Strtbl.iter
    (fun k () ->
      assert (Option.is_some (static_find t k)))
    t.tombstones
