(* Per-shard write-ahead log: group commit, fingerprinted checkpoints,
   crash recovery.

   One [writer] belongs to one shard domain (single-writer discipline —
   the same MPSC ownership Serve already enforces).  Mutations are
   buffered as CRC-framed records during a batch and made durable by
   one [commit] call at the batch boundary: a single [write] of all
   buffered frames followed by at most one [fsync] — the group-commit
   amortisation.  With [fsync_every = 1] (the default) an acknowledged
   op is framed *and* fsynced before its waiter is released; larger
   cadences trade that guarantee for throughput and are documented as
   relaxed durability.

   On-disk layout of one shard directory [<dir>/shard<i>/]:

     wal-<first_lsn>.seg   log segments, frames in LSN order
     ckpt-<seq>.dat        checkpoint data: Insert frames in key order
     ckpt-<seq>.json       manifest {lsn, count, fingerprint, bound}
     clean                 marker written by a clean [close]

   Checkpoints reuse the fingerprinted-snapshot idea from the ei_sim
   differential engine: the data file is walked in key order and the
   manifest records the same chained FNV-1a digest Index_ops.fingerprint
   computes, so a checkpoint is validated byte-for-byte (CRC per frame)
   *and* content-for-content (digest over decoded pairs) before a
   single entry touches the index.  At least [keep_checkpoints] (>= 2
   by default) manifests are retained so a corrupt newest checkpoint
   falls back to the previous one; log segments are pruned only past
   the oldest retained checkpoint's LSN.

   Recovery = newest valid checkpoint + ordered replay of every record
   with a larger LSN, truncating a torn tail (incomplete or
   CRC-mismatched final frame) of the last segment.  A fresh segment is
   always opened after recovery, so a fenced zombie writer holding the
   old file descriptor can no longer reach bytes the new writer owns. *)

module Fault = Ei_fault.Fault
module Metrics = Ei_obs.Metrics
module Trace = Ei_obs.Trace
module Index_ops = Ei_harness.Index_ops
module J = Ei_util.Mini_json
module Fnv = Ei_util.Fnv

exception Died of string

(* Distinct from [Fault.Injected]: an injected WAL fault is a *crash*
   of the owning domain, not a transient op failure the batch loop may
   absorb — Serve must let it escape so the supervisor rebuilds the
   shard from disk. *)

type config = {
  dir : string;
  fsync_every : int;
  checkpoint_every : int;
  segment_bytes : int;
  keep_checkpoints : int;
}

let default_config ~dir =
  let fsync_every =
    match Option.bind (Sys.getenv_opt "EI_WAL_FSYNC") int_of_string_opt with
    | Some n when n >= 0 -> n
    | Some _ | None -> 1
  in
  {
    dir;
    fsync_every;
    checkpoint_every = 256;
    segment_bytes = 4 * 1024 * 1024;
    keep_checkpoints = 2;
  }

(* --- Fault sites ------------------------------------------------------ *)

type faults = {
  f_torn : Fault.site;
  f_fsync : Fault.site;
  f_ckpt : Fault.site;
}

let faults ~prefix ~shard =
  {
    f_torn = Fault.site (Printf.sprintf "%s.wal.torn.shard%d" prefix shard);
    f_fsync = Fault.site (Printf.sprintf "%s.wal.fsync.shard%d" prefix shard);
    f_ckpt = Fault.site (Printf.sprintf "%s.wal.ckpt.shard%d" prefix shard);
  }

(* --- Metrics ---------------------------------------------------------- *)

let h_fsync = Metrics.histogram "wal.fsync_ns"
let h_commit_records = Metrics.histogram "wal.commit_records"
let h_replay = Metrics.histogram "wal.replay_ns"
let h_ckpt = Metrics.histogram "wal.checkpoint_ns"
let c_records = Metrics.counter "wal.records"
let c_fsyncs = Metrics.counter "wal.fsyncs"
let c_rotations = Metrics.counter "wal.rotations"
let c_checkpoints = Metrics.counter "wal.checkpoints"
let c_torn = Metrics.counter "wal.torn_truncations"
let c_fallbacks = Metrics.counter "wal.ckpt_fallbacks"
let c_replayed = Metrics.counter "wal.replayed"

(* Span events on the shard domain's track: a [commit] emitted under a
   request's ambient {!Ei_obs.Ctx} joins that request's flow, making
   group-commit stalls attributable per request in the Perfetto view. *)
let ev_commit = Trace.define ~span:true ~arg1:"records" ~cat:"wal" "wal.commit"
let ev_fsync = Trace.define ~span:true ~cat:"wal" "wal.fsync"
let ev_replay = Trace.define ~span:true ~arg1:"replayed" ~cat:"wal" "wal.replay"

(* --- Small file helpers ---------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_fully fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
  | exception Unix.Unix_error _ -> ()
(* Directory fsync is a durability nicety for renames/creates; platforms
   that refuse to open a directory simply skip it. *)

let write_file_atomic path s =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_fully fd s;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

(* --- Shard-directory layout ------------------------------------------ *)

let shard_dir_in dir shard = Filename.concat dir (Printf.sprintf "shard%d" shard)
let shard_dir cfg shard = shard_dir_in cfg.dir shard
let seg_path sdir first_lsn = Filename.concat sdir (Printf.sprintf "wal-%016d.seg" first_lsn)
let ckpt_dat_path sdir seq = Filename.concat sdir (Printf.sprintf "ckpt-%06d.dat" seq)
let ckpt_json_path sdir seq = Filename.concat sdir (Printf.sprintf "ckpt-%06d.json" seq)
let clean_path sdir = Filename.concat sdir "clean"

let parse_named ~prefix ~suffix name =
  if
    String.length name > String.length prefix + String.length suffix
    && String.starts_with ~prefix name
    && String.ends_with ~suffix name
  then
    int_of_string_opt
      (String.sub name (String.length prefix)
         (String.length name - String.length prefix - String.length suffix))
  else None

let readdir_sorted dir =
  match Sys.readdir dir with
  | names ->
    Array.sort String.compare names;
    Array.to_list names
  | exception Sys_error _ -> []

let list_segments sdir =
  List.filter_map
    (fun name ->
      Option.map
        (fun lsn -> (lsn, Filename.concat sdir name))
        (parse_named ~prefix:"wal-" ~suffix:".seg" name))
    (readdir_sorted sdir)
  |> List.sort compare

let list_ckpts sdir =
  List.filter_map
    (fun name ->
      Option.map
        (fun seq -> (seq, Filename.concat sdir name))
        (parse_named ~prefix:"ckpt-" ~suffix:".json" name))
    (readdir_sorted sdir)
  |> List.sort (fun (a, _) (b, _) -> compare b a)

let shards ~dir =
  List.filter_map (parse_named ~prefix:"shard" ~suffix:"")
    (List.filter
       (fun n -> Sys.is_directory (Filename.concat dir n))
       (readdir_sorted dir))
  |> List.sort compare

(* --- The writer ------------------------------------------------------- *)

type writer = {
  cfg : config;
  shard : int;
  sdir : string;
  faults : faults option;
  dead : bool Atomic.t;
      (* set by the owner on an injected crash, or by the supervisor
         ([fence]) before it reads the files — the only cross-domain
         field; everything below is owner-domain-only *)
  mutable fd : Unix.file_descr; [@ei.single_domain]
  mutable seg_first_lsn : int; [@ei.single_domain]
  mutable seg_len : int; [@ei.single_domain]
  mutable synced_len : int; [@ei.single_domain]
  mutable next_lsn : int; [@ei.single_domain]
  mutable written_lsn : int; [@ei.single_domain]
  mutable durable : int; [@ei.single_domain]
  buf : Buffer.t; [@ei.single_domain]
  mutable buffered : int; [@ei.single_domain]
  mutable unsynced_commits : int; [@ei.single_domain]
  mutable commits : int; [@ei.single_domain]
  mutable last_bound : int; [@ei.single_domain]
  mutable ckpt_seq : int; [@ei.single_domain]
  mutable closed : bool; [@ei.single_domain]
}

let durable_lsn w = w.durable
let last_lsn w = w.next_lsn - 1
let fence w = Atomic.set w.dead true

let dispose w =
  fence w;
  if not w.closed then begin
    w.closed <- true;
    try Unix.close w.fd with Unix.Unix_error _ -> ()
  end

let check_alive w =
  if w.closed then raise (Died "writer closed");
  if Atomic.get w.dead then raise (Died "writer fenced")

let take_lsn w =
  let l = w.next_lsn in
  w.next_lsn <- l + 1;
  l

let log_record w r =
  check_alive w;
  Frame.encode_into w.buf r;
  w.buffered <- w.buffered + 1

let log_insert w key tid = log_record w (Frame.Insert { lsn = take_lsn w; key; tid })
let log_remove w key = log_record w (Frame.Remove { lsn = take_lsn w; key })
let log_update w key tid = log_record w (Frame.Update { lsn = take_lsn w; key; tid })

let log_bound w bound =
  log_record w (Frame.Bound { lsn = take_lsn w; bound });
  w.last_bound <- bound

let flush_buf w =
  if w.buffered > 0 then begin
    let s = Buffer.contents w.buf in
    write_fully w.fd s;
    w.seg_len <- w.seg_len + String.length s;
    w.written_lsn <- w.next_lsn - 1;
    Metrics.add c_records w.buffered;
    Metrics.observe h_commit_records w.buffered;
    Buffer.clear w.buf;
    w.buffered <- 0
  end

let do_fsync w =
  let ts = Trace.start () in
  let t0 = Ei_util.Bench_clock.now_ns () in
  Unix.fsync w.fd;
  Metrics.observe h_fsync (Ei_util.Bench_clock.now_ns () - t0);
  Metrics.incr c_fsyncs;
  Trace.span ev_fsync ~start_ns:ts 0;
  w.synced_len <- w.seg_len;
  w.durable <- w.written_lsn;
  w.unsynced_commits <- 0

(* Crash hooks: each models one physical failure, marks the writer
   dead and raises [Died].  They double as the bodies of the injected
   fault sites and as deterministic levers for ei_sim schedules. *)

let crash_torn w =
  (* A torn write: the tail of the buffered batch never reaches the
     file — everything minus the last few bytes lands, tearing the
     final frame mid-payload.  With nothing buffered a bare partial
     header is appended instead, so the tail is torn either way. *)
  let s = if w.buffered > 0 then Buffer.contents w.buf else "\xff\xff\xff" in
  let cut = max 1 (String.length s - 3) in
  write_fully w.fd (String.sub s 0 cut);
  Buffer.clear w.buf;
  w.buffered <- 0;
  Atomic.set w.dead true;
  raise (Died "torn write")

let crash_unsynced w =
  (* A power-style crash before fsync: bytes written since the last
     sync lived only in the page cache and are lost — modeled by
     truncating the segment back to the synced prefix. *)
  Buffer.clear w.buf;
  w.buffered <- 0;
  (try Unix.ftruncate w.fd w.synced_len
   with Unix.Unix_error _ -> ());
  Atomic.set w.dead true;
  raise (Died "unsynced bytes lost")

let open_segment w ~first_lsn =
  w.fd <-
    Unix.openfile (seg_path w.sdir first_lsn)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644;
  w.seg_first_lsn <- first_lsn;
  w.seg_len <- 0;
  w.synced_len <- 0

let rotate w =
  if w.cfg.fsync_every > 0 then do_fsync w;
  Unix.close w.fd;
  open_segment w ~first_lsn:w.next_lsn;
  fsync_dir w.sdir;
  Metrics.incr c_rotations

(* --- Checkpoints ------------------------------------------------------ *)

let corrupt_one_byte path =
  match (Unix.stat path).Unix.st_size with
  | 0 -> ()
  | size ->
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let off = size / 2 in
        let b = Bytes.create 1 in
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        if Unix.read fd b 0 1 = 1 then begin
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1)
        end)
  | exception Unix.Unix_error _ -> ()

let read_manifest path =
  match J.parse (read_file path) with
  | Error msg -> Error msg
  | Ok j -> (
    let field name =
      match Option.bind (J.member name j) J.as_int with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "manifest missing %s" name)
    in
    match (field "lsn", field "count", field "fingerprint", field "bound") with
    | Ok lsn, Ok count, Ok fp, Ok bound -> Ok (lsn, count, fp, bound)
    | (Error _ as e), _, _, _
    | _, (Error _ as e), _, _
    | _, _, (Error _ as e), _
    | _, _, _, (Error _ as e) ->
      e)
  | exception Sys_error msg -> Error msg

let prune w =
  let keep = max 1 w.cfg.keep_checkpoints in
  let ckpts = list_ckpts w.sdir in
  let rec split i = function
    | [] -> ([], [])
    | x :: rest when i < keep ->
      let kept, dropped = split (i + 1) rest in
      (x :: kept, dropped)
    | dropped -> ([], dropped)
  in
  let kept, dropped = split 0 ckpts in
  List.iter
    (fun (seq, json) ->
      (try Sys.remove (ckpt_dat_path w.sdir seq) with Sys_error _ -> ());
      try Sys.remove json with Sys_error _ -> ())
    dropped;
  (* Log segments whose every record the oldest retained checkpoint
     already covers are dead: segment [k] can go once segment [k+1]
     starts at or below that checkpoint's lsn + 1 (all of [k]'s lsns
     are below the successor's first).  The open segment never goes. *)
  match List.rev kept with
  | [] -> ()
  | (_, oldest_json) :: _ -> (
    match read_manifest oldest_json with
    | Error _ -> ()
    | Ok (covered, _, _, _) ->
      let rec drop = function
        | (l1, p1) :: ((l2, _) :: _ as rest)
          when l2 <= covered + 1 && l1 <> w.seg_first_lsn ->
          (try Sys.remove p1 with Sys_error _ -> ());
          drop rest
        | _ -> ()
      in
      drop (list_segments w.sdir))

(* The part may be wrapped with {!Index_ops.inject} (the chaos soak
   does): a transient [Fault.Injected] from a point operation is
   retried until it lands — an acknowledged, durable record must never
   be shed by a snapshot or a replay — mirroring the supervisor's
   rebuild-from-table retry, yield point included so a permanently
   armed site cannot spin invisibly to the schedule explorer. *)
let yp_replay = Fault.site "wal.yield.replay"

let rec absorb_injected f =
  match f () with
  | v -> v
  | exception Fault.Injected _ ->
    Fault.point yp_replay;
    absorb_injected f

let checkpoint w ~(part : Index_ops.t) =
  check_alive w;
  let t0 = Ei_util.Bench_clock.now_ns () in
  let seq = w.ckpt_seq + 1 in
  let dat = ckpt_dat_path w.sdir seq in
  let tmp = dat ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let count = ref 0 in
  let h = ref 0 in
  match
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let buf = Buffer.create 65536 in
        let low = String.make part.Index_ops.key_len '\000' in
        ignore
          (part.Index_ops.scan_keys low max_int (fun k ->
               let tid =
                 match absorb_injected (fun () -> part.Index_ops.find k) with
                 | Some t -> t
                 | None -> -1
               in
               Frame.encode_into buf (Frame.Insert { lsn = 0; key = k; tid });
               (* the same chained digest Index_ops.fingerprint computes,
                  folded during the single key-order walk *)
               h := Fnv.hash ~seed:!h (k ^ string_of_int tid);
               incr count;
               if Buffer.length buf >= 65536 then begin
                 write_fully fd (Buffer.contents buf);
                 Buffer.clear buf
               end));
        write_fully fd (Buffer.contents buf);
        Unix.fsync fd)
  with
  | exception Fault.Injected _ ->
    (* A transient fault from the scan itself cannot be resumed
       mid-walk: abandon this snapshot (the log it would have covered
       stays) and let the next cadence point retry from scratch. *)
    (try Sys.remove tmp with Sys_error _ -> ())
  | () ->
  (match w.faults with
  | Some f -> if Fault.fire f.f_ckpt then corrupt_one_byte tmp
  | None -> ());
  Sys.rename tmp dat;
  (* manifest last: a checkpoint exists only once its manifest does *)
  write_file_atomic (ckpt_json_path w.sdir seq)
    (J.to_string
       (J.Obj
          [
            ("version", J.Int 1);
            ("shard", J.Int w.shard);
            ("seq", J.Int seq);
            ("lsn", J.Int w.written_lsn);
            ("count", J.Int !count);
            ("fingerprint", J.Int !h);
            ("bound", J.Int w.last_bound);
          ]));
  w.ckpt_seq <- seq;
  Metrics.incr c_checkpoints;
  Metrics.observe h_ckpt (Ei_util.Bench_clock.now_ns () - t0);
  prune w

let commit w ~part =
  let tc = Trace.start () in
  let recs = w.buffered in
  let run () =
    check_alive w;
    (* Both crash sites draw on *every* commit — applicable or not — so
       the per-site draw sequence is a pure function of the batch
       schedule and equal-seed replays stay byte-identical. *)
    let torn_fired, fsync_fired =
      match w.faults with
      | Some f -> (Fault.fire f.f_torn, Fault.fire f.f_fsync)
      | None -> (false, false)
    in
    if torn_fired then crash_torn w;
    flush_buf w;
    w.commits <- w.commits + 1;
    w.unsynced_commits <- w.unsynced_commits + 1;
    if fsync_fired then crash_unsynced w;
    if w.cfg.fsync_every > 0 && w.unsynced_commits >= w.cfg.fsync_every then
      do_fsync w;
    if w.seg_len >= w.cfg.segment_bytes then rotate w;
    if w.cfg.checkpoint_every > 0 && w.commits mod w.cfg.checkpoint_every = 0
    then checkpoint w ~part
  in
  (* The span closes on the crash paths too — a commit that died torn
     still shows up, attributed to the request it was acking. *)
  match run () with
  | () -> Trace.span ev_commit ~start_ns:tc recs
  | exception e ->
    Trace.span ev_commit ~start_ns:tc recs;
    raise e

let close w =
  if not w.closed then begin
    if not (Atomic.get w.dead) then begin
      (* Clean shutdown makes everything durable whatever the cadence,
         then leaves the marker recovery reports as a clean restart. *)
      flush_buf w;
      do_fsync w;
      write_file_atomic (clean_path w.sdir) (string_of_int w.written_lsn)
    end;
    w.closed <- true;
    try Unix.close w.fd with Unix.Unix_error _ -> ()
  end

(* --- Recovery --------------------------------------------------------- *)

type recovery = {
  r_ckpt_seq : int;
  r_ckpt_entries : int;
  r_ckpt_fallbacks : int;
  r_replayed : int;
  r_torn : int;
  r_last_lsn : int;
  r_bound : int;
  r_clean : bool;
}

(* Full validation before a single entry touches the index: every frame
   CRC-checked by the codec, the record shape checked (Insert-only,
   strictly ascending keys), and the chained FNV digest recomputed over
   the decoded pairs and compared to the manifest. *)
let validate_ckpt ~sdir seq =
  let json = ckpt_json_path sdir seq in
  let dat = ckpt_dat_path sdir seq in
  match read_manifest json with
  | Error msg -> Error (Printf.sprintf "manifest: %s" msg)
  | Ok (lsn, count, fp, bound) -> (
    match read_file dat with
    | exception Sys_error msg -> Error msg
    | s -> (
      match Frame.decode_all s with
      | _, Some (off, msg) ->
        Error (Printf.sprintf "data frame at %d: %s" off msg)
      | records, None ->
        let h = ref 0 in
        let n = ref 0 in
        let prev = ref "" in
        let bad = ref None in
        List.iter
          (fun r ->
            match (!bad, r) with
            | Some _, _ -> ()
            | None, Frame.Insert { key; tid; _ } ->
              if !n > 0 && String.compare !prev key >= 0 then
                bad := Some "keys not strictly ascending"
              else begin
                prev := key;
                h := Fnv.hash ~seed:!h (key ^ string_of_int tid);
                incr n
              end
            | None, _ -> bad := Some "non-insert record in checkpoint")
          records;
        (match !bad with
        | Some msg -> Error msg
        | None ->
          if !n <> count then
            Error (Printf.sprintf "count %d, manifest says %d" !n count)
          else if !h <> fp then Error "fingerprint mismatch"
          else
            Ok
              ( lsn,
                bound,
                List.filter_map
                  (function
                    | Frame.Insert { key; tid; _ } -> Some (key, tid)
                    | _ -> None)
                  records ))))

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd len)

let apply_record ~(part : Index_ops.t) ~restore r =
  match r with
  | Frame.Insert { key; tid; _ } ->
    restore ~tid ~key;
    absorb_injected (fun () ->
        if not (part.Index_ops.insert key tid) then
          ignore (part.Index_ops.update key tid))
  | Frame.Update { key; tid; _ } ->
    restore ~tid ~key;
    absorb_injected (fun () ->
        if not (part.Index_ops.update key tid) then
          ignore (part.Index_ops.insert key tid))
  | Frame.Remove { key; _ } ->
    absorb_injected (fun () -> ignore (part.Index_ops.remove key))
  | Frame.Bound { bound; _ } ->
    absorb_injected (fun () -> part.Index_ops.set_size_bound bound)

let recover ?faults ?(restore = fun ~tid:_ ~key:_ -> ()) cfg ~shard
    ~(part : Index_ops.t) =
  let tr = Trace.start () in
  let t0 = Ei_util.Bench_clock.now_ns () in
  let sdir = shard_dir cfg shard in
  mkdir_p sdir;
  let r_clean = Sys.file_exists (clean_path sdir) in
  if r_clean then Sys.remove (clean_path sdir);
  (* sweep orphan temporaries a crash mid-checkpoint may have left *)
  List.iter
    (fun name ->
      if String.ends_with ~suffix:".tmp" name then
        try Sys.remove (Filename.concat sdir name) with Sys_error _ -> ())
    (readdir_sorted sdir);
  (* newest checkpoint that validates wins; every reject is a fallback *)
  let ckpts = list_ckpts sdir in
  let max_seq = match ckpts with (s, _) :: _ -> s | [] -> 0 in
  let rec pick fallbacks = function
    | [] -> (0, 0, 0, 0, fallbacks)
    | (seq, _) :: rest -> (
      match validate_ckpt ~sdir seq with
      | Ok (lsn, bound, entries) ->
        if bound > 0 then
          absorb_injected (fun () -> part.Index_ops.set_size_bound bound);
        List.iter
          (fun (key, tid) ->
            restore ~tid ~key;
            absorb_injected (fun () ->
                ignore (part.Index_ops.insert key tid)))
          entries;
        (seq, List.length entries, lsn, bound, fallbacks)
      | Error _ ->
        Metrics.incr c_fallbacks;
        pick (fallbacks + 1) rest)
  in
  let ckpt_seq, ckpt_entries, base_lsn, base_bound, fallbacks = pick 0 ckpts in
  let last = ref base_lsn in
  let bound = ref base_bound in
  let replayed = ref 0 in
  let torn = ref 0 in
  let segs = list_segments sdir in
  let nsegs = List.length segs in
  List.iteri
    (fun i (_, path) ->
      let records, err = Frame.decode_all (read_file path) in
      (match err with
      | None -> ()
      | Some (off, msg) ->
        if i = nsegs - 1 then begin
          (* torn tail of the newest segment: unacked bytes, cut them *)
          truncate_file path off;
          incr torn;
          Metrics.incr c_torn
        end
        else
          raise
            (Died
               (Printf.sprintf "corrupt interior segment %s at byte %d: %s"
                  path off msg)));
      List.iter
        (fun r ->
          let l = Frame.lsn r in
          if l > !last then begin
            apply_record ~part ~restore r;
            (match r with Frame.Bound { bound = b; _ } -> bound := b | _ -> ());
            last := l;
            incr replayed
          end)
        records)
    segs;
  Metrics.add c_replayed !replayed;
  Metrics.observe h_replay (Ei_util.Bench_clock.now_ns () - t0);
  Trace.span ev_replay ~start_ns:tr !replayed;
  let w =
    {
      cfg;
      shard;
      sdir;
      faults;
      dead = Atomic.make false;
      fd = Unix.stdin (* replaced by open_segment just below *);
      seg_first_lsn = 0;
      seg_len = 0;
      synced_len = 0;
      next_lsn = !last + 1;
      written_lsn = !last;
      durable = !last;
      buf = Buffer.create 4096;
      buffered = 0;
      unsynced_commits = 0;
      commits = 0;
      last_bound = !bound;
      ckpt_seq = max_seq;
      closed = false;
    }
  in
  open_segment w ~first_lsn:w.next_lsn;
  fsync_dir sdir;
  ( w,
    {
      r_ckpt_seq = ckpt_seq;
      r_ckpt_entries = ckpt_entries;
      r_ckpt_fallbacks = fallbacks;
      r_replayed = !replayed;
      r_torn = !torn;
      r_last_lsn = !last;
      r_bound = !bound;
      r_clean;
    } )

(* --- Read-only inspection (ei wal) ------------------------------------ *)

type segment_info = {
  si_path : string;
  si_first_lsn : int;
  si_bytes : int;
  si_frames : int;
  si_last_lsn : int;
  si_torn : (int * string) option;
}

type ckpt_info = {
  ci_seq : int;
  ci_lsn : int;
  ci_count : int;
  ci_fingerprint : int;
  ci_bound : int;
  ci_error : string option;
}

let inspect_shard ~dir ~shard =
  let sdir = shard_dir_in dir shard in
  let segs =
    List.map
      (fun (first_lsn, path) ->
        let s = try read_file path with Sys_error _ -> "" in
        let records, err = Frame.decode_all s in
        {
          si_path = path;
          si_first_lsn = first_lsn;
          si_bytes = String.length s;
          si_frames = List.length records;
          si_last_lsn =
            List.fold_left (fun acc r -> max acc (Frame.lsn r)) 0 records;
          si_torn = err;
        })
      (list_segments sdir)
  in
  let ckpts =
    List.map
      (fun (seq, json) ->
        match validate_ckpt ~sdir seq with
        | Ok (lsn, bound, entries) ->
          let fp =
            match read_manifest json with Ok (_, _, fp, _) -> fp | Error _ -> 0
          in
          {
            ci_seq = seq;
            ci_lsn = lsn;
            ci_count = List.length entries;
            ci_fingerprint = fp;
            ci_bound = bound;
            ci_error = None;
          }
        | Error msg -> (
          match read_manifest json with
          | Ok (lsn, count, fp, bound) ->
            {
              ci_seq = seq;
              ci_lsn = lsn;
              ci_count = count;
              ci_fingerprint = fp;
              ci_bound = bound;
              ci_error = Some msg;
            }
          | Error _ ->
            {
              ci_seq = seq;
              ci_lsn = 0;
              ci_count = 0;
              ci_fingerprint = 0;
              ci_bound = 0;
              ci_error = Some msg;
            }))
      (list_ckpts sdir)
  in
  (segs, ckpts, Sys.file_exists (clean_path sdir))

let manifest ~dir ~shard =
  let sdir = shard_dir_in dir shard in
  List.find_map
    (fun (_, json) ->
      match J.parse (read_file json) with
      | Ok j -> Some j
      | Error _ -> None
      | exception Sys_error _ -> None)
    (list_ckpts sdir)

let truncate_torn ~dir ~shard =
  let sdir = shard_dir_in dir shard in
  match List.rev (list_segments sdir) with
  | [] -> 0
  | (_, path) :: _ -> (
    match Frame.decode_all (read_file path) with
    | _, Some (off, _) ->
      truncate_file path off;
      1
    | _, None -> 0)

let records ~dir ~shard =
  let sdir = shard_dir_in dir shard in
  List.concat_map
    (fun (_, path) -> fst (Frame.decode_all (read_file path)))
    (list_segments sdir)

(* --- Test/chaos support ----------------------------------------------- *)

let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let reset_dir dir =
  if String.length dir = 0 || String.equal dir "/" then
    invalid_arg "Wal.reset_dir: refusing to clear this path";
  remove_tree dir;
  mkdir_p dir
