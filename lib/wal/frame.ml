(* Length-prefixed, CRC-framed binary codec for WAL records.

   Wire layout of one frame (all integers little-endian):

     u32 payload_len | u32 crc32(payload) | payload

   payload = u8 tag | u64 lsn | tag-specific fields
     tag 1 Insert : u16 key_len | key bytes | u64 tid
     tag 2 Remove : u16 key_len | key bytes
     tag 3 Update : u16 key_len | key bytes | u64 tid
     tag 4 Bound  : u64 bound

   The decoder is total: every failure — truncation, bit flip, bad
   tag, over-long length, trailing payload bytes — is an [Error],
   never an exception and never a wrong record (the CRC covers the
   whole payload, the length field is bounded before any allocation,
   and the payload must be consumed exactly). *)

type record =
  | Insert of { lsn : int; key : string; tid : int }
  | Remove of { lsn : int; key : string }
  | Update of { lsn : int; key : string; tid : int }
  | Bound of { lsn : int; bound : int }

let lsn = function
  | Insert { lsn; _ } | Remove { lsn; _ } | Update { lsn; _ } | Bound { lsn; _ }
    ->
    lsn

let hex s =
  String.concat ""
    (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let describe = function
  | Insert { lsn; key; tid } ->
    Printf.sprintf "%d insert %s tid=%d" lsn (hex key) tid
  | Remove { lsn; key } -> Printf.sprintf "%d remove %s" lsn (hex key)
  | Update { lsn; key; tid } ->
    Printf.sprintf "%d update %s tid=%d" lsn (hex key) tid
  | Bound { lsn; bound } -> Printf.sprintf "%d bound %d" lsn bound

(* Keys are short fixed-length byte strings (u16 length field); the
   largest payload is tag + lsn + key_len + key + tid. *)
let max_payload = 1 + 8 + 2 + 0xffff + 8
let header_bytes = 8

(* --- Encoding -------------------------------------------------------- *)

let add_key buf key =
  if String.length key > 0xffff then invalid_arg "Frame.encode: key too long";
  Buffer.add_uint16_le buf (String.length key);
  Buffer.add_string buf key

let encode_payload buf r =
  match r with
  | Insert { lsn; key; tid } ->
    Buffer.add_uint8 buf 1;
    Buffer.add_int64_le buf (Int64.of_int lsn);
    add_key buf key;
    Buffer.add_int64_le buf (Int64.of_int tid)
  | Remove { lsn; key } ->
    Buffer.add_uint8 buf 2;
    Buffer.add_int64_le buf (Int64.of_int lsn);
    add_key buf key
  | Update { lsn; key; tid } ->
    Buffer.add_uint8 buf 3;
    Buffer.add_int64_le buf (Int64.of_int lsn);
    add_key buf key;
    Buffer.add_int64_le buf (Int64.of_int tid)
  | Bound { lsn; bound } ->
    Buffer.add_uint8 buf 4;
    Buffer.add_int64_le buf (Int64.of_int lsn);
    Buffer.add_int64_le buf (Int64.of_int bound)

let encode_into buf r =
  if lsn r < 0 then invalid_arg "Frame.encode: negative lsn";
  let payload = Buffer.create 32 in
  encode_payload payload r;
  let p = Buffer.contents payload in
  Buffer.add_int32_le buf (Int32.of_int (String.length p));
  Buffer.add_int32_le buf (Int32.of_int (Crc32.string p));
  Buffer.add_string buf p

let encode r =
  let buf = Buffer.create 48 in
  encode_into buf r;
  Buffer.contents buf

(* --- Decoding -------------------------------------------------------- *)

let u32 s pos = Int32.to_int (String.get_int32_le s pos) land 0xffffffff

let i64 s pos =
  let v = String.get_int64_le s pos in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    None
  else Some (Int64.to_int v)

let decode s ~pos =
  let n = String.length s in
  if pos < 0 || pos > n then Error "position out of range"
  else if n - pos < header_bytes then Error "truncated frame header"
  else begin
    let len = u32 s pos in
    let crc = u32 s (pos + 4) in
    if len < 9 || len > max_payload then
      Error (Printf.sprintf "implausible payload length %d" len)
    else if n - pos - header_bytes < len then Error "truncated payload"
    else begin
      let base = pos + header_bytes in
      if Crc32.string ~pos:base ~len s <> crc then Error "crc mismatch"
      else begin
        (* CRC passed: the payload is byte-exact, so field errors below
           can only come from an encoder this decoder does not know —
           still rejected, never a guess. *)
        let tag = Char.code s.[base] in
        let with_key k =
          (* [k pos key] parses the tag-specific tail after the key. *)
          if len < 11 then Error "payload too short for key"
          else begin
            let klen = Char.code s.[base + 9] lor (Char.code s.[base + 10] lsl 8) in
            if 11 + klen > len then Error "key overruns payload"
            else k (base + 11 + klen) (String.sub s (base + 9 + 2) klen)
          end
        in
        let finish consumed r =
          if consumed - base <> len then Error "payload length mismatch"
          else Ok (r, base + len)
        in
        match i64 s (base + 1) with
        | None -> Error "bad lsn"
        | Some lsn -> (
          match tag with
          | 1 ->
            with_key (fun p key ->
                if p + 8 > base + len then Error "truncated tid"
                else
                  match i64 s p with
                  | None -> Error "bad tid"
                  | Some tid -> finish (p + 8) (Insert { lsn; key; tid }))
          | 2 -> with_key (fun p key -> finish p (Remove { lsn; key }))
          | 3 ->
            with_key (fun p key ->
                if p + 8 > base + len then Error "truncated tid"
                else
                  match i64 s p with
                  | None -> Error "bad tid"
                  | Some tid -> finish (p + 8) (Update { lsn; key; tid }))
          | 4 ->
            if len <> 17 then Error "bad bound payload"
            else (
              match i64 s (base + 9) with
              | None -> Error "bad bound"
              | Some bound -> finish (base + 17) (Bound { lsn; bound }))
          | t -> Error (Printf.sprintf "unknown tag %d" t))
      end
    end
  end

let decode_all s =
  let n = String.length s in
  let rec go pos acc =
    if pos = n then (List.rev acc, None)
    else
      match decode s ~pos with
      | Ok (r, next) -> go next (r :: acc)
      | Error msg -> (List.rev acc, Some (pos, msg))
  in
  go 0 []
