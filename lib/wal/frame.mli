(** The WAL record codec: length-prefixed, CRC-32-framed binary frames.

    One frame is [u32 payload_len | u32 crc32(payload) | payload], all
    little-endian; the payload carries a tag byte, the record's LSN and
    the tag-specific fields.  Decoding is {e total}: truncated, torn or
    bit-flipped input yields [Error], never an exception and never a
    wrong record — the property the adversarial qcheck suite pins
    down, and what makes torn-tail truncation during recovery safe. *)

type record =
  | Insert of { lsn : int; key : string; tid : int }
  | Remove of { lsn : int; key : string }
  | Update of { lsn : int; key : string; tid : int }
  | Bound of { lsn : int; bound : int }
      (** elastic size-bound retune, logged so the elasticity state
          survives restart (checkpoints record it too) *)

val lsn : record -> int

val describe : record -> string
(** One human-readable line (hex keys) for [ei wal inspect]. *)

val encode : record -> string
(** A complete frame.  Raises [Invalid_argument] on a negative LSN or
    a key longer than 65535 bytes (never produced by the writer). *)

val encode_into : Buffer.t -> record -> unit

val header_bytes : int
(** Frame header size (length + CRC words). *)

val decode : string -> pos:int -> (record * int, string) result
(** [decode s ~pos] reads one frame starting at [pos] and returns the
    record plus the position one past it.  Any malformation — short
    header, implausible length, truncated payload, CRC mismatch,
    unknown tag, payload size disagreement — is [Error]; the function
    never raises on any input. *)

val decode_all : string -> record list * (int * string) option
(** Decode frames from position 0 until the end of the string or the
    first malformed frame; returns the good prefix and, if decoding
    stopped early, the byte offset and reason — the torn-tail
    truncation point. *)
