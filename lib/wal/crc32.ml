(* CRC-32 (IEEE 802.3, reflected, polynomial 0xedb88320) over bytes.

   Table-driven, one 256-entry int array computed on first use.  The
   32-bit digest fits a non-negative OCaml int on 64-bit platforms,
   which is all this repository targets. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update_byte tbl crc b = tbl.((crc lxor b) land 0xff) lxor (crc lsr 8)

let bytes ?(pos = 0) ?len (b : Bytes.t) =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes";
  let tbl = Lazy.force table in
  let crc = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    crc := update_byte tbl !crc (Char.code (Bytes.unsafe_get b i))
  done;
  !crc lxor 0xffffffff

let string ?pos ?len s = bytes ?pos ?len (Bytes.unsafe_of_string s)
