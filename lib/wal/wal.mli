(** Per-shard write-ahead log with group commit, fingerprinted
    checkpoints and crash recovery.

    A {!writer} is owned by exactly one shard domain.  During a batch
    the domain buffers mutation records ([log_insert] / [log_remove] /
    [log_update] / [log_bound]); one {!commit} at the batch boundary
    writes all buffered frames with a single [write] and at most one
    [fsync] — group commit.  With [fsync_every = 1] (default) the
    ordering guarantee is: {e every acknowledged op is framed and
    fsynced before its waiter is released} (Serve releases waiters
    only after [commit] returns).  [fsync_every = n > 1] fsyncs every
    n-th commit (relaxed durability: a crash may lose up to n - 1
    committed batches); [0] never fsyncs outside [close].

    Checkpoints are compact snapshots — Insert frames in key order plus
    a JSON manifest recording the covered LSN, the entry count, the
    chained FNV-1a fingerprint (identical to
    {!Ei_harness.Index_ops.fingerprint}) and the elastic size bound.
    Recovery loads the newest checkpoint that validates in full
    (falling back across [keep_checkpoints] retained generations) and
    replays every log record with a larger LSN, truncating a torn tail
    of the newest segment.  All decoding is total: corrupt bytes are
    rejected, never parsed or raised through. *)

exception Died of string
(** The writer crashed (injected fault, fence, or use after close).
    Deliberately distinct from {!Ei_fault.Fault.Injected}: a WAL fault
    kills the owning shard domain so the supervisor rebuilds from
    disk, rather than being absorbed as a transient op failure. *)

type config = {
  dir : string;  (** root; each shard writes under [<dir>/shard<i>/] *)
  fsync_every : int;
      (** commits per fsync: 1 = every commit (ack ⇒ durable),
          n > 1 = relaxed, 0 = only at [close] *)
  checkpoint_every : int;  (** commits per checkpoint; 0 = never *)
  segment_bytes : int;  (** rotate the log past this size *)
  keep_checkpoints : int;
      (** checkpoint generations retained (>= 2 gives corrupt-newest
          fallback); older ones and the segments they cover are pruned *)
}

val default_config : dir:string -> config
(** fsync every commit ([EI_WAL_FSYNC] overrides the cadence),
    checkpoint every 256 commits, 4 MiB segments, keep 2 checkpoints. *)

type faults = {
  f_torn : Ei_fault.Fault.site;  (** [<p>.wal.torn.shard<i>] *)
  f_fsync : Ei_fault.Fault.site;  (** [<p>.wal.fsync.shard<i>] *)
  f_ckpt : Ei_fault.Fault.site;  (** [<p>.wal.ckpt.shard<i>] *)
}

val faults : prefix:string -> shard:int -> faults
(** Register the three named crash sites for one shard.  [torn] tears
    the final frame of a batch write and kills the writer; [fsync]
    drops every byte since the last sync (page-cache loss) and kills
    the writer; [ckpt] flips one byte in the checkpoint being written
    (the writer survives — recovery must reject and fall back). *)

type writer

(** {1 Writing}  All of these are owner-domain-only. *)

val log_insert : writer -> string -> int -> unit
val log_remove : writer -> string -> unit
val log_update : writer -> string -> int -> unit

val log_bound : writer -> int -> unit
(** Log an elastic size-bound retune so elasticity survives restart. *)

val commit : writer -> part:Ei_harness.Index_ops.t -> unit
(** Group-commit the buffered records: one write, then fsync / rotate /
    checkpoint per the configured cadences.  [part] is the shard's
    index, snapshotted when a checkpoint falls due.  Raises {!Died} if
    the writer is fenced, closed, or an injected crash fires; buffered
    records may then be partially on disk but are, by construction,
    unacknowledged. *)

val close : writer -> unit
(** Clean shutdown: flush, fsync (whatever the cadence), write the
    clean marker, close.  Idempotent; a no-op beyond releasing the
    descriptor on a dead writer. *)

val durable_lsn : writer -> int
(** Last LSN covered by an fsync. *)

val last_lsn : writer -> int
(** Last LSN assigned to a record (buffered or written). *)

(** {1 Supervisor side} *)

val fence : writer -> unit
(** Mark the writer dead from another domain: every subsequent log or
    commit on it raises {!Died}.  The supervisor fences the old writer
    before reading the shard's files, so an abandoned (wedged) domain
    cannot keep appending.  (A zombie already inside a [write] can
    still finish that syscall — the same residual window as the
    documented wedge-mark race in Serve; recovery always opens a fresh
    segment, so the zombie can only touch a file recovery has already
    consumed or truncated.) *)

val dispose : writer -> unit
(** [fence] plus descriptor close — only safe once the owning domain
    has been joined. *)

(** {1 Recovery} *)

type recovery = {
  r_ckpt_seq : int;  (** checkpoint loaded, 0 = none *)
  r_ckpt_entries : int;
  r_ckpt_fallbacks : int;  (** corrupt newer checkpoints skipped *)
  r_replayed : int;  (** log records applied *)
  r_torn : int;  (** torn tails truncated *)
  r_last_lsn : int;
  r_bound : int;  (** recovered elastic bound, 0 = none *)
  r_clean : bool;  (** the clean-shutdown marker was present *)
}

val recover :
  ?faults:faults ->
  ?restore:(tid:int -> key:string -> unit) ->
  config ->
  shard:int ->
  part:Ei_harness.Index_ops.t ->
  writer * recovery
(** Rebuild [part] (which must be empty) from disk — newest valid
    checkpoint, then ordered log replay with torn-tail truncation —
    and open a writer on a fresh segment.  [restore] is invoked with
    every [(tid, key)] pair before it is inserted, so the caller can
    rematerialise backing-store rows (see
    {!Ei_storage.Table.restore_row}).  Also the way a {e fresh} WAL
    directory is opened (everything is zero).  Raises {!Died} only on
    non-tail corruption of an interior segment, which group commit
    never produces. *)

(** {1 Read-only inspection (the [ei wal] CLI)} *)

type segment_info = {
  si_path : string;
  si_first_lsn : int;
  si_bytes : int;
  si_frames : int;
  si_last_lsn : int;
  si_torn : (int * string) option;  (** byte offset and decode error *)
}

type ckpt_info = {
  ci_seq : int;
  ci_lsn : int;
  ci_count : int;
  ci_fingerprint : int;
  ci_bound : int;
  ci_error : string option;  (** [None] iff the checkpoint validates *)
}

val shards : dir:string -> int list
(** Shard ids present under a WAL root. *)

val inspect_shard :
  dir:string -> shard:int -> segment_info list * ckpt_info list * bool
(** Segments (ascending LSN), checkpoints (newest first) and whether
    the clean-shutdown marker is present.  Touches nothing. *)

val manifest : dir:string -> shard:int -> Ei_util.Mini_json.t option
(** The newest parseable checkpoint manifest, verbatim. *)

val truncate_torn : dir:string -> shard:int -> int
(** Repair a torn tail of the newest segment in place; returns the
    number of segments truncated (0 or 1). *)

val records : dir:string -> shard:int -> Frame.record list
(** Every decodable log record in LSN order (stops at a torn tail). *)

(** {1 Test and chaos support} *)

val reset_dir : string -> unit
(** Destructively clear and recreate a WAL root (refuses [""] and
    ["/"]).  Chaos runs own their directory. *)

val crash_torn : writer -> 'a
(** Deterministic crash lever for ei_sim schedules: tear the tail of
    the buffered batch onto disk, mark the writer dead, raise
    {!Died}. *)

val crash_unsynced : writer -> 'a
(** Drop everything since the last fsync (truncate to the synced
    prefix), mark the writer dead, raise {!Died}. *)
