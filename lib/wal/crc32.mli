(** CRC-32 (IEEE 802.3) checksums for WAL frame integrity.

    The reflected polynomial 0xedb88320 variant used by zlib, Ethernet
    and PNG: a well-understood error-detection code that catches all
    single-bit flips and any burst of up to 32 bits — the torn-write
    and bit-rot failure modes log replay must reject. *)

val string : ?pos:int -> ?len:int -> string -> int
(** CRC-32 of [len] bytes of [s] starting at [pos] (defaults: the whole
    string).  The result is in [\[0, 2{^32})]. *)

val bytes : ?pos:int -> ?len:int -> Bytes.t -> int
