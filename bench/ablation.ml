(* Ablation studies for the design choices DESIGN.md calls out:

   a. prefix compression vs the compact (SeqTree) representation on
      shared-prefix and random key distributions (§2's argument that
      prefix compression is distribution-dependent while compaction
      always saves);
   b. the hybrid two-stage index vs the elastic B+-tree under insert-only
      and uniform-update workloads (§2's skew-assumption argument);
   c. the overflow-piggyback policy vs the access-aware cold-sweep
      variant on an append-only key pattern (§4's policy design space);
   d. the elastic framework applied to a skip list (§3's generality
      claim);
   e. the three blind-trie node representations of §5.1 (SeqTrie /
      SubTrie / String B-Trie) plus the SeqTree, at the B+-tree level. *)

open Bench_util
module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Elasticity = Ei_core.Elasticity

(* --- a. prefix compression vs compaction ---------------------------- *)

let prefix_ablation () =
  subheader "a. prefix compression vs SeqTree by key distribution (16B keys)";
  let n = scaled 30_000 in
  let key_len = 16 in
  let shared =
    Array.init n (fun i ->
        let b = Bytes.make key_len 'u' in
        Bytes.set_int64_be b 8 (Int64.of_int i);
        Bytes.unsafe_to_string b)
  in
  let rng = Rng.create 71 in
  let table0 = Table.create ~key_len () in
  let random = Array.map fst (unique_keys rng table0 n key_len) in
  let build kind keys =
    let table = Table.create ~key_len () in
    let index = Registry.make ~key_len ~load:(Table.loader table) kind in
    Array.iter (fun k -> ignore (index.Index_ops.insert k (Table.append table k))) keys;
    index.Index_ops.memory_bytes ()
  in
  print_row ~w:13 [ "keys"; "stx MB"; "prefix"; "seqtree128" ];
  List.iter
    (fun (label, keys) ->
      let stx = build Registry.Stx keys in
      let pre = build Registry.Prefix keys in
      let seq = build (Registry.Seqtree 128) keys in
      let record index bytes =
        emit ~name:"ablation-prefix"
          ~params:[ ("index", index); ("dist", label) ]
          ~ops_per_sec:0.0 ~bytes
      in
      record "stx" stx;
      record "prefix" pre;
      record "seqtree128" seq;
      print_row ~w:13
        [
          label;
          mb stx;
          f2 (float_of_int pre /. float_of_int stx);
          f2 (float_of_int seq /. float_of_int stx);
        ])
    [ ("shared-prefix", shared); ("random", random) ];
  pf "(fractions of STX; prefix compression collapses on random keys,\n\
      the compact representation saves on both)\n"

(* --- b. hybrid index vs elastic -------------------------------------- *)

let hybrid_ablation () =
  subheader "b. hybrid two-stage index vs elastic B+-tree (8B keys)";
  let n = scaled 60_000 in
  let key_len = 8 in
  let rng = Rng.create 72 in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let keys = unique_keys rng table n key_len in
  let stx_probe = Registry.make ~key_len ~load Registry.Stx in
  Array.iter (fun (k, tid) -> ignore (stx_probe.Index_ops.insert k tid)) keys;
  let budget = stx_probe.Index_ops.memory_bytes () / 2 in
  let mk = function
    | `Hybrid -> Registry.make ~key_len ~load (Registry.Hybrid 0.1)
    | `Elastic ->
      Registry.make ~key_len ~load
        (Registry.Elastic (Elasticity.default_config ~size_bound:budget))
  in
  print_row ~w:13
    [ "index"; "ins Mops"; "upd Mops"; "mem MB"; "info" ];
  List.iter
    (fun (label, which) ->
      let index = mk which in
      let ins =
        mops n (fun () ->
            Array.iter (fun (k, tid) -> ignore (index.Index_ops.insert k tid)) keys)
      in
      (* Uniform updates of old entries: the anti-skew workload. *)
      let updates = n / 2 in
      let rng = Rng.create 5 in
      let upd =
        mops updates (fun () ->
            for _ = 1 to updates do
              let k, tid = keys.(Rng.int rng n) in
              ignore (index.Index_ops.update k tid)
            done)
      in
      let bytes = index.Index_ops.memory_bytes () in
      let cell phase m =
        emit_mops ~name:"ablation-hybrid"
          ~params:[ ("index", label); ("phase", phase) ]
          ~mops:m ~bytes
      in
      cell "insert" ins;
      cell "update" upd;
      print_row ~w:13
        [ label; f3 ins; f3 upd; mb bytes; index.Index_ops.info () ])
    [ ("hybrid", `Hybrid); ("elastic", `Elastic) ];
  pf
    "(hybrid is compact on insert-only loads but uniform updates violate\n\
     its skew assumption: every update shadows an old entry and periodic\n\
     full rebuilds absorb the churn; the elastic index updates in place)\n"

(* --- c. cold-sweep policy on append-only keys ------------------------- *)

let cold_sweep_ablation () =
  subheader "c. overflow-piggyback vs access-aware cold sweep (append-only)";
  let n = scaled 60_000 in
  let run ~cold_sweep_period =
    let table = Table.create ~key_len:8 () in
    let bound = n * 18 in
    let config =
      {
        (Elasticity.default_config ~size_bound:bound) with
        Elasticity.cold_sweep_period;
        cold_sweep_batch = 16;
      }
    in
    let tree =
      Ei_core.Elastic_btree.create ~key_len:8 ~load:(Table.loader table) config ()
    in
    let (), dt =
      Ei_util.Bench_clock.time (fun () ->
          for i = 0 to n - 1 do
            let k = Key.of_int i in
            ignore (Ei_core.Elastic_btree.insert tree k (Table.append table k))
          done)
    in
    ( Ei_util.Bench_clock.mops n dt,
      Ei_core.Elastic_btree.memory_bytes tree,
      bound )
  in
  let d_tput, d_mem, bound = run ~cold_sweep_period:0 in
  let c_tput, c_mem, _ = run ~cold_sweep_period:8 in
  emit_mops ~name:"ablation-coldsweep"
    ~params:[ ("policy", "overflow-only"); ("phase", "insert") ]
    ~mops:d_tput ~bytes:d_mem;
  emit_mops ~name:"ablation-coldsweep"
    ~params:[ ("policy", "cold-sweep"); ("phase", "insert") ]
    ~mops:c_tput ~bytes:c_mem;
  print_row ~w:16 [ "policy"; "ins Mops"; "mem MB"; "vs bound" ];
  print_row ~w:16
    [ "overflow-only"; f3 d_tput; mb d_mem; f2 (float_of_int d_mem /. float_of_int bound) ];
  print_row ~w:16
    [ "cold-sweep"; f3 c_tput; mb c_mem; f2 (float_of_int c_mem /. float_of_int bound) ];
  pf
    "(append-only keys never overflow cold leaves, so the default policy\n\
     cannot compact them and overshoots; the sweep holds the bound)\n"

(* --- e. the blind-trie representation trio of §5.1 -------------------- *)

let representations_ablation () =
  subheader "e. blind-trie node representations (§5.1): space and speed";
  let n = scaled 60_000 in
  let rng = Rng.create 74 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let keys = unique_keys rng table n 8 in
  let bench which =
    let index =
      match which with
      | `Kind kind -> Registry.make ~key_len:8 ~load kind
      | `Seqtree levels ->
        (* SeqTree at the given BlindiTree level, breathing off so the
           three representations differ only in their trie layout. *)
        Ei_harness.Index_ops.of_btree "seqtree"
          (Ei_btree.Btree.create ~key_len:8 ~load
             ~policy:(Ei_btree.Policy.all_seqtree ~levels ~breathing:0 ~capacity:128 ())
             ())
    in
    let ins =
      mops n (fun () ->
          Array.iter (fun (k, tid) -> ignore (index.Index_ops.insert k tid)) keys)
    in
    let rng = Rng.create 4 in
    let srch =
      mops n (fun () ->
          for _ = 1 to n do
            let k, _ = keys.(Rng.int rng n) in
            ignore (index.Index_ops.find k)
          done)
    in
    (ins, srch, index.Index_ops.memory_bytes ())
  in
  print_row ~w:16 [ "repr"; "B/key"; "ins Mops"; "srch Mops" ];
  List.iter
    (fun (label, which) ->
      let ins, srch, bytes = bench which in
      let cell phase m =
        emit_mops ~name:"ablation-repr"
          ~params:[ ("repr", label); ("phase", phase) ]
          ~mops:m ~bytes
      in
      cell "insert" ins;
      cell "search" srch;
      print_row ~w:16
        [
          label;
          f2 (float_of_int bytes /. float_of_int n);
          f3 ins;
          f3 srch;
        ])
    [
      ("seqtrie (lvl0)", `Seqtree 0);
      ("seqtree (lvl2)", `Seqtree 2);
      ("subtrie", `Kind (Registry.Subtrie 128));
      ("stringtrie", `Kind (Registry.Stringtrie 128));
      ("stx", `Kind Registry.Stx);
    ];
  pf
    "(paper's B/key for the trie structures alone: SeqTrie ~1, SubTrie ~2,\n\
     String B-Trie ~3 - plus 8 B/key of tuple ids for all of them; the\n\
     SeqTree adds the BlindiTree to the SeqTrie for free at level <= 3)\n"

(* --- d. elastic skip list --------------------------------------------- *)

let skiplist_ablation () =
  subheader "d. framework generality: elastic skip list vs plain skip list";
  let n = scaled 60_000 in
  let key_len = 16 in
  let rng = Rng.create 73 in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let keys = unique_keys rng table n key_len in
  let plain = Ei_baselines.Skiplist.create ~key_len () in
  let p_ins =
    mops n (fun () ->
        Array.iter (fun (k, tid) -> ignore (Ei_baselines.Skiplist.insert plain k tid)) keys)
  in
  let plain_bytes = Ei_baselines.Skiplist.memory_bytes plain in
  let config =
    Ei_core.Elastic_skiplist.default_config ~size_bound:(plain_bytes / 3)
  in
  let elastic = Ei_core.Elastic_skiplist.create ~key_len ~load config () in
  let e_ins =
    mops n (fun () ->
        Array.iter
          (fun (k, tid) -> ignore (Ei_core.Elastic_skiplist.insert elastic k tid))
          keys)
  in
  let probes = scaled 100_000 in
  let lookup index_find =
    mops probes (fun () ->
        for _ = 1 to probes do
          let k, _ = keys.(Rng.int rng n) in
          ignore (index_find k)
        done)
  in
  let p_lkp = lookup (Ei_baselines.Skiplist.find plain) in
  let e_lkp = lookup (Ei_core.Elastic_skiplist.find elastic) in
  let elastic_bytes = Ei_core.Elastic_skiplist.memory_bytes elastic in
  let cell index phase m bytes =
    emit_mops ~name:"ablation-skiplist"
      ~params:[ ("index", index); ("phase", phase) ]
      ~mops:m ~bytes
  in
  cell "skiplist" "insert" p_ins plain_bytes;
  cell "skiplist" "lookup" p_lkp plain_bytes;
  cell "elastic-sl" "insert" e_ins elastic_bytes;
  cell "elastic-sl" "lookup" e_lkp elastic_bytes;
  print_row ~w:16 [ "index"; "ins Mops"; "lkp Mops"; "mem MB" ];
  print_row ~w:16 [ "skiplist"; f3 p_ins; f3 p_lkp; mb plain_bytes ];
  print_row ~w:16 [ "elastic-sl"; f3 e_ins; f3 e_lkp; mb elastic_bytes ];
  pf "(elastic segments: %d, state %s — the same transformation, size\n\
      bound and state machine as the elastic B+-tree, on a skip list)\n"
    (Ei_core.Elastic_skiplist.segments elastic)
    (Ei_core.Elastic_skiplist.state_name (Ei_core.Elastic_skiplist.state elastic))

(* --- f. the dominated baselines of §6.1 -------------------------------- *)

let dominated_ablation () =
  subheader "f. §6.1's omitted baselines: each dominated by a plotted index";
  let n = scaled 60_000 in
  let key_len = 8 in
  let rng = Rng.create 75 in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let keys = unique_keys rng table n key_len in
  let bench kind =
    let index = Registry.make ~key_len ~load kind in
    let ins =
      mops n (fun () ->
          Array.iter (fun (k, tid) -> ignore (index.Index_ops.insert k tid)) keys)
    in
    let rng = Rng.create 4 in
    let lkp =
      mops n (fun () ->
          for _ = 1 to n do
            let k, _ = keys.(Rng.int rng n) in
            ignore (index.Index_ops.find k)
          done)
    in
    (ins, lkp, index.Index_ops.memory_bytes ())
  in
  print_row ~w:12 [ "index"; "mem MB"; "ins Mops"; "lkp Mops" ];
  let results =
    List.map
      (fun (label, kind) ->
        let ins, lkp, bytes = bench kind in
        let cell phase m =
          emit_mops ~name:"ablation-dominated"
            ~params:[ ("index", label); ("phase", phase) ]
            ~mops:m ~bytes
        in
        cell "insert" ins;
        cell "lookup" lkp;
        print_row ~w:12 [ label; mb bytes; f3 ins; f3 lkp ];
        (label, (ins, lkp, bytes)))
      [
        ("stx", Registry.Stx);
        ("hot", Registry.Hot);
        ("skiplist", Registry.Skiplist);
        ("bwtree", Registry.Bwtree);
        ("art", Registry.Art);
      ]
  in
  let get l = List.assoc l results in
  let _, _, stx_b = get "stx" in
  let _, _, sl_b = get "skiplist" in
  let bw_i, bw_l, bw_b = get "bwtree" in
  let stx_i, stx_l, _ = get "stx" in
  let _, _, art_b = get "art" in
  let _, _, hot_b = get "hot" in
  pf "paper's reasons to omit: skiplist memory > STX (%b); bwtree space <=
      STX (%b) but slower (%b); ART bigger than HOT (%b)
"
    (sl_b > (stx_b : int))
    (bw_b <= (stx_b : int))
    (Float.compare bw_i stx_i < 0 && Float.compare bw_l stx_l < 0)
    (art_b > (hot_b : int))

let run () =
  header "Ablations: design-choice studies beyond the paper's figures";
  prefix_ablation ();
  hybrid_ablation ();
  cold_sweep_ablation ();
  skiplist_ablation ();
  representations_ablation ();
  dominated_ablation ()
