(* Figure 6: YCSB single-threaded experiments (§6.2).

   Load phase inserts uniformly distributed 64-bit keys; the transaction
   phase runs workloads A (50r/50u), E (95 scan/5 insert) and F
   (50r/50rmw) with uniform and Zipfian key choice.  ElasticXX starts
   shrinking once XX% of the records are loaded (its size bound is
   derived from STX's memory for the same load).

   Workloads B, C and D behave like A/C in our runs, matching the paper's
   remark that they "yield similar results and hence are not shown". *)

open Bench_util
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Ycsb = Ei_workload.Ycsb

let elastic_bound ~stx_bytes ~percent =
  int_of_float (float_of_int stx_bytes *. float_of_int percent /. 100.0 /. 0.9)

let index_kinds ~stx_bytes =
  [
    ("stx", Registry.Stx);
    ("hot", Registry.Hot);
    ("seqtree128", Registry.Seqtree 128);
  ]
  @ List.map
      (fun pct ->
        ( Printf.sprintf "elastic%d" pct,
          Registry.Elastic
            (Ei_core.Elasticity.default_config
               ~size_bound:(elastic_bound ~stx_bytes ~percent:pct)) ))
      [ 90; 75; 66; 50 ]

let fresh kind ~record_count =
  let table = Table.create ~key_len:8 () in
  let index = Registry.make ~key_len:8 ~load:(Table.loader table) kind in
  (Ycsb.create ~index ~table ~record_count (), index)

(* STX memory for this record count, used to size elastic bounds. *)
let stx_load_bytes record_count =
  let runner, index = fresh Registry.Stx ~record_count in
  Ycsb.load runner record_count;
  index.Index_ops.memory_bytes ()

let run () =
  header "Figure 6: YCSB workloads, single-threaded";
  let record_count = scaled 100_000 in
  let ops = scaled 200_000 in
  let stx_bytes = stx_load_bytes record_count in
  let kinds = index_kinds ~stx_bytes in
  pf "load = %d records; %d transactions per workload (E: %d)\n" record_count
    ops (ops / 4);
  (* 6a: load throughput + memory after load (used again by Fig 7a). *)
  subheader "6a: load-phase throughput (Mops) and memory after load (MB)";
  print_row [ "index"; "load Mops"; "mem MB"; "vs stx" ];
  let load_mem =
    List.map
      (fun (label, kind) ->
        let runner, index = fresh kind ~record_count in
        let tput = mops record_count (fun () -> Ycsb.load runner record_count) in
        let bytes = index.Index_ops.memory_bytes () in
        print_row
          [
            label;
            f3 tput;
            mb bytes;
            f2 (float_of_int bytes /. float_of_int stx_bytes);
          ];
        emit_mops ~name:"fig6"
          ~params:[ ("index", label); ("phase", "load") ]
          ~mops:tput ~bytes;
        (label, kind, bytes))
      kinds
  in
  ignore load_mem;
  (* 6b/6c: transaction throughput. *)
  let workloads = [ (Ycsb.A, ops); (Ycsb.E, ops / 4); (Ycsb.F, ops) ] in
  List.iter
    (fun (dist, dist_label) ->
      subheader
        (Printf.sprintf "6%s: transaction throughput (Mops), %s keys"
           (match dist with Ycsb.Uniform -> "b" | _ -> "c")
           dist_label);
      print_row
        ("index"
        :: List.map (fun (w, _) -> Ycsb.workload_name w) workloads);
      List.iter
        (fun (label, kind) ->
          let cells =
            List.map
              (fun (w, wops) ->
                let runner, index = fresh kind ~record_count in
                Ycsb.load runner record_count;
                let tput =
                  mops wops (fun () ->
                      ignore (Ycsb.run runner ~workload:w ~dist ~ops:wops))
                in
                emit_mops ~name:"fig6"
                  ~params:
                    [
                      ("index", label);
                      ("dist", dist_label);
                      ("workload", Ycsb.workload_name w);
                    ]
                  ~mops:tput ~bytes:(index.Index_ops.memory_bytes ());
                f3 tput)
              workloads
          in
          print_row (label :: cells))
        kinds)
    [ (Ycsb.Uniform, "uniform"); (Ycsb.Zipfian, "zipfian") ];
  pf
    "paper shapes: STX fastest on E (scans); elastic variants between STX\n\
     and seqtree128, degrading with lower shrink thresholds; load tput of\n\
     elastic above HOT, seqtree128 about half of STX\n%!"
