(* Figure 8: the elastic B+-tree inside the MCAS-like store (§6.3).

   A synthetic IOTTA-style log trace is ingested through the store's ADO
   path into the indexed multi-column table; we then measure lookup and
   1000-key scan throughput end-to-end.  ElasticXX starts shrinking when
   the index reaches XX% of the dataset size (rows * 32 B), as in the
   paper. *)

open Bench_util
module Iotta = Ei_workload.Iotta
module Registry = Ei_harness.Registry
module Rng = Ei_util.Rng

let run () =
  header "Figure 8: MCAS in-memory data store with an IOTTA-like log trace";
  let rows_n = scaled 300_000 in
  let rows = Iotta.generate ~rows:rows_n ~objects:(max 100 (rows_n / 10)) () in
  let dataset_bytes = rows_n * Iotta.row_bytes in
  pf "trace: %d rows (dataset %.1f MB), 16-byte (timestamp, object id) keys\n"
    rows_n
    (Ei_util.Bench_clock.mib dataset_bytes);
  let elastic pct =
    ( Printf.sprintf "elastic%d" pct,
      Registry.Elastic
        (Ei_core.Elasticity.default_config
           ~size_bound:
             (int_of_float
                (float_of_int dataset_bytes *. float_of_int pct /. 100.0 /. 0.9))) )
  in
  let kinds =
    [ ("stx", Registry.Stx) ]
    @ List.map elastic [ 83; 66; 50; 33 ]
    @ [ ("seqtree128", Registry.Seqtree 128); ("hot", Registry.Hot) ]
  in
  let lookups = max 1000 (rows_n / 3) in
  let scans = max 100 (rows_n / 600) in
  print_row ~w:14
    [ "index"; "ins Mops"; "lkp Mops"; "scan/s"; "mem MB"; "vs data"; "vs stx" ];
  let stx_mem = ref 0 in
  List.iter
    (fun (label, kind) ->
      let store = Ei_mcas.Store.create () in
      let table = Ei_mcas.Log_table.create ~index_kind:kind () in
      Ei_mcas.Store.attach_ado store ~partition:0 (Ei_mcas.Log_table.ado table);
      let ins =
        mops rows_n (fun () ->
            Array.iter
              (fun r ->
                ignore (Ei_mcas.Store.invoke store ~partition:0 (Ei_mcas.Ado.Ingest r)))
              rows)
      in
      let rng = Rng.create 17 in
      let lkp =
        mops lookups (fun () ->
            for _ = 1 to lookups do
              let r = rows.(Rng.int rng rows_n) in
              ignore
                (Ei_mcas.Store.invoke store ~partition:0
                   (Ei_mcas.Ado.Lookup (Iotta.key_of_row r)))
            done)
      in
      let (), scan_dt =
        Ei_util.Bench_clock.time (fun () ->
            for _ = 1 to scans do
              let r = rows.(Rng.int rng rows_n) in
              ignore
                (Ei_mcas.Store.invoke store ~partition:0
                   (Ei_mcas.Ado.Scan (Iotta.key_of_row r, 1000)))
            done)
      in
      let bytes = Ei_mcas.Store.ado_memory_bytes store ~partition:0 in
      if String.equal label "stx" then stx_mem := bytes;
      let cell phase m =
        emit_mops ~name:"fig8"
          ~params:[ ("index", label); ("phase", phase) ]
          ~mops:m ~bytes
      in
      cell "insert" ins;
      cell "lookup" lkp;
      emit ~name:"fig8"
        ~params:[ ("index", label); ("phase", "scan1000") ]
        ~ops_per_sec:(float_of_int scans /. scan_dt)
        ~bytes;
      print_row ~w:14
        [
          label;
          f3 ins;
          f3 lkp;
          Printf.sprintf "%.0f" (float_of_int scans /. scan_dt);
          mb bytes;
          f2 (float_of_int bytes /. float_of_int dataset_bytes);
          f2 (float_of_int bytes /. float_of_int !stx_mem);
        ])
    kinds;
  pf
    "paper shapes: STX index ~1.2x dataset; elastic83/66/50/33 at\n\
     0.76/0.55/0.39/0.30 of STX; insert/lookup degradation only 0.4-2.6%%\n\
     end-to-end; STX scans 2.3x HOT, elastic33 scans 1.73x HOT\n%!"
