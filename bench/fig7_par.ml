(* Figure 7 (parallel): domain scaling of the BTreeOLC variants behind
   the sharded serving layer.

   Where Fig 7b/7c hammer one shared OLC tree from N domains, this
   driver gives each domain its own shard of the key space — the
   domain-per-shard layout of {!Ei_shard.Serve} — and reports aggregate
   read and insert throughput at 1/2/4/8 shard domains plus index
   memory after the load.  The elastic variant additionally runs the
   global memory coordinator over the fleet. *)

open Bench_util
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Ycsb = Ei_workload.Ycsb
module Olc = Ei_olc.Btree_olc
module Shard = Ei_shard.Shard
module Serve = Ei_shard.Serve
module Rng = Ei_util.Rng

let kinds ~record_count =
  let elastic_bound = record_count * 27 * 6 / 10 in
  [
    ("olc", (fun (_ : int) -> Registry.Olc Olc.Olc_std), None);
    ( "olc-seqtree",
      (fun _ ->
        Registry.Olc
          (Olc.Olc_seqtree { capacity = 128; levels = 2; breathing = 4 })),
      None );
    ( "olc-elastic",
      (fun shards ->
        Registry.Olc
          (Olc.Olc_elastic
             (Olc.default_elastic_config
                ~size_bound:(max 1 (elastic_bound / shards))))),
      Some elastic_bound );
  ]

type cell = {
  read : float;
  insert : float;
  bytes : int;
  read_q : (int * int * int) option;
  insert_q : (int * int * int) option;
      (* per-phase batch-latency quantiles, captured at run time (the
         shared histogram is reset between phases and cells) *)
}

let run_cell ~kind_of_shard ~bound ~shards ~record_count ~ops =
  let table, router =
    Fig6_par.mk_fleet ~shards ~kind_of_shard:(fun _ -> kind_of_shard shards)
  in
  let coordinator =
    Option.map (fun global_bound -> Serve.default_coordinator ~global_bound)
      bound
  in
  let serve = Serve.start ?coordinator router in
  let tids = Array.make record_count 0 in
  for seq = 0 to record_count - 1 do
    tids.(seq) <- Table.append table (Ycsb.key_of_seq seq)
  done;
  let load_ops =
    Array.init record_count (fun seq ->
        Serve.Insert (Ycsb.key_of_seq seq, tids.(seq)))
  in
  let shed = ref 0 in
  begin_phase Fig6_par.h_batch;
  let insert =
    mops record_count (fun () ->
        shed := !shed + Fig6_par.run_batches serve load_ops)
  in
  let insert_q = phase_quantiles Fig6_par.h_batch in
  let rng = domain_rng 0 in
  let read_ops =
    Array.init ops (fun _ ->
        Serve.Find (Ycsb.key_of_seq (Rng.int rng record_count)))
  in
  begin_phase Fig6_par.h_batch;
  let read =
    mops ops (fun () -> shed := !shed + Fig6_par.run_batches serve read_ops)
  in
  let read_q = phase_quantiles Fig6_par.h_batch in
  Serve.rebalance_now serve;
  let bytes = Fig6_par.aggregate_bytes serve in
  Serve.stop serve;
  Fig6_par.warn_shed (Printf.sprintf "%d shards" shards) !shed;
  { read; insert; bytes; read_q; insert_q }

let run () =
  header "Figure 7 (parallel): shard-domain scaling of BTreeOLC variants";
  let record_count = scaled 100_000 in
  let ops = scaled 200_000 in
  pf "load = %d records; %d reads per cell\n" record_count ops;
  let kinds = kinds ~record_count in
  let shard_counts = Fig6_par.shard_counts in
  let cells =
    List.map
      (fun (label, kind_of_shard, bound) ->
        ( label,
          List.map
            (fun shards ->
              (shards, run_cell ~kind_of_shard ~bound ~shards ~record_count ~ops))
            shard_counts ))
      kinds
  in
  let table phase pick =
    subheader
      (Printf.sprintf "7%s-par: %s over shard domains (total Mops)"
         (if String.equal phase "read" then "b" else "c")
         phase);
    print_row ("index" :: List.map string_of_int shard_counts);
    List.iter
      (fun (label, row) ->
        print_row (label :: List.map (fun (_, c) -> f3 (pick c)) row))
      cells
  in
  table "read" (fun c -> c.read);
  table "insert" (fun c -> c.insert);
  subheader "7a-par: aggregate index memory after load (MB)";
  print_row ("index" :: List.map string_of_int shard_counts);
  List.iter
    (fun (label, row) ->
      print_row (label :: List.map (fun (_, c) -> mb c.bytes) row))
    cells;
  List.iter
    (fun (label, row) ->
      List.iter
        (fun (shards, c) ->
          let cell phase m q =
            emit_mops_q ?quantiles:q ~name:"fig7_par"
              ~params:
                [
                  ("index", label);
                  ("shards", string_of_int shards);
                  ("phase", phase);
                ]
              ~mops:m ~bytes:c.bytes ()
          in
          cell "read" c.read c.read_q;
          cell "insert" c.insert c.insert_q)
        row)
    cells;
  pf
    "expected shapes: olc above olc-seqtree, olc-elastic between the two;\n\
     aggregate memory flat in the shard count (same records, split)\n";
  pf
    "note: this machine reports %d core(s); with a single core the shard\n\
     domains timeshare it and aggregate throughput stays flat\n%!"
    (Domain.recommended_domain_count ())
