(* Figure 10: SeqTree vs SubTrie (§6.4).

   STX-SubTrie and STX-SeqTree (tree levels = 2, breathing disabled)
   across leaf capacities; space, search and insert results normalised
   to STX-SeqTree, as in the paper. *)

open Bench_util
module Table = Ei_storage.Table
module Rng = Ei_util.Rng
module Btree = Ei_btree.Btree
module Policy = Ei_btree.Policy

let slot_values = [ 32; 64; 128; 256; 512 ]

let bench ~keys ~load policy =
  let tree = Btree.create ~key_len:8 ~load ~policy () in
  let n = Array.length keys in
  let ins =
    mops n (fun () ->
        Array.iter (fun (k, tid) -> ignore (Btree.insert tree k tid)) keys)
  in
  let rng = Rng.create 4 in
  let srch =
    mops n (fun () ->
        for _ = 1 to n do
          let k, _ = keys.(Rng.int rng n) in
          ignore (Btree.find tree k)
        done)
  in
  (ins, srch, Btree.memory_bytes tree)

let run () =
  header "Figure 10: SubTrie vs SeqTree (normalised to SeqTree, 64-bit keys)";
  let n = scaled 60_000 in
  let rng = Rng.create 10 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let keys = unique_keys rng table n 8 in
  pf "N=%d inserts then %d searches per configuration\n" n n;
  print_row ~w:13
    [ "slots"; "space"; "search"; "insert"; "seq MB"; "seq srch" ];
  List.iter
    (fun slots ->
      let seq_ins, seq_srch, seq_bytes =
        bench ~keys ~load (Policy.all_seqtree ~levels:2 ~breathing:0 ~capacity:slots ())
      in
      let sub_ins, sub_srch, sub_bytes =
        bench ~keys ~load (Policy.all_subtrie ~capacity:slots ())
      in
      List.iter
        (fun (policy, ins, srch, bytes) ->
          let cell phase m =
            emit_mops ~name:"fig10"
              ~params:
                [
                  ("policy", policy);
                  ("slots", string_of_int slots);
                  ("phase", phase);
                ]
              ~mops:m ~bytes
          in
          cell "insert" ins;
          cell "search" srch)
        [
          ("seqtree", seq_ins, seq_srch, seq_bytes);
          ("subtrie", sub_ins, sub_srch, sub_bytes);
        ];
      print_row ~w:13
        [
          string_of_int slots;
          f2 (float_of_int sub_bytes /. float_of_int seq_bytes);
          f2 (sub_srch /. seq_srch);
          f2 (sub_ins /. seq_ins);
          mb seq_bytes;
          f3 seq_srch;
        ])
    slot_values;
  pf
    "paper shapes: SubTrie space overhead grows with slots (up to ~1.2x at\n\
     512); SeqTree slightly faster at <=128 slots, SubTrie faster beyond\n%!"
