(* Benchmark harness entry point: one experiment per figure of the
   paper's evaluation (§6), plus the §6.1 operation-cost breakdown and
   Bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe                 # run everything
     dune exec bench/main.exe fig5 fig9       # selected experiments
     EI_SCALE=2 dune exec bench/main.exe fig8 # scale item counts

   EXPERIMENTS.md records the expected shapes next to the paper's
   reported numbers. *)

let experiments =
  [
    ("fig1", Fig1.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig6_par", Fig6_par.run);
    ("fig7_par", Fig7_par.run);
    ("cost", Cost.run);
    ("keysize", Keysize.run);
    ("ablation", Ablation.run);
    ("net", Bench_net.run);
    ("micro", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  Printf.printf "elastic-indexes benchmark suite (EI_SCALE=%.2f, EI_SEED=%d)\n%!"
    Bench_util.scale Bench_util.seed;
  Bench_util.reset_results ();
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
        let (), dt = Ei_util.Bench_clock.time run in
        Printf.printf "[%s done in %.1f s]\n%!" name dt
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n%!" name
          (String.concat ", " (List.map fst experiments));
        exit 2)
    requested
