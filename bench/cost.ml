(* §6.1 operation-cost breakdown: how much work elasticity adds during
   the insertion phase (the paper profiles 18.3% of execution time in
   elasticity-related work: 8.6% compact-leaf search, 5% key comparisons,
   4.7% leaf conversions).

   We report (a) the measured wall-clock overhead of the elastic tree vs
   plain STX on the identical insertion stream, and (b) the operation
   counters of the compact-node machinery (searches, sequential-scan and
   tree-descent steps, verification key loads, conversions). *)

open Bench_util
module Table = Ei_storage.Table
module Rng = Ei_util.Rng
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Stats = Ei_blindi.Stats

let run () =
  header "Operation-cost breakdown of elasticity (insertion phase)";
  let n = scaled 200_000 in
  let rng = Rng.create 12 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let keys = unique_keys rng table n 8 in
  (* STX baseline time. *)
  let stx = Registry.make ~key_len:8 ~load Registry.Stx in
  let (), stx_dt =
    Ei_util.Bench_clock.time (fun () ->
        Array.iter (fun (k, tid) -> ignore (stx.Index_ops.insert k tid)) keys)
  in
  let half_bytes = stx.Index_ops.memory_bytes () / 2 in
  (* Elastic run with shrinking starting at half the keys. *)
  let config =
    Ei_core.Elasticity.default_config
      ~size_bound:(int_of_float (float_of_int half_bytes /. 0.9))
  in
  let tree =
    Ei_core.Elastic_btree.create ~key_len:8 ~load:(Table.loader table) config ()
  in
  Stats.reset ();
  Table.reset_loads table;
  let (), ela_dt =
    Ei_util.Bench_clock.time (fun () ->
        Array.iter
          (fun (k, tid) -> ignore (Ei_core.Elastic_btree.insert tree k tid))
          keys)
  in
  let s = Stats.global in
  let bstats = Ei_core.Elastic_btree.stats tree in
  emit ~name:"cost"
    ~params:[ ("index", "stx"); ("phase", "insert") ]
    ~ops_per_sec:(float_of_int n /. stx_dt)
    ~bytes:(stx.Index_ops.memory_bytes ());
  emit ~name:"cost"
    ~params:[ ("index", "elastic"); ("phase", "insert") ]
    ~ops_per_sec:(float_of_int n /. ela_dt)
    ~bytes:(Ei_core.Elastic_btree.memory_bytes tree);
  pf "items inserted:            %d\n" n;
  pf "STX insert time:           %.3f s\n" stx_dt;
  pf "elastic insert time:       %.3f s\n" ela_dt;
  pf "elasticity overhead:       %.1f%% of elastic execution time (paper: 18.3%%)\n"
    (100.0 *. (ela_dt -. stx_dt) /. ela_dt);
  pf "compact-leaf searches:     %d (%.2f per insert)\n" s.Stats.searches
    (float_of_int s.Stats.searches /. float_of_int n);
  pf "  sequential-scan steps:   %d (%.1f per compact search)\n" s.Stats.scan_steps
    (float_of_int s.Stats.scan_steps /. float_of_int (max 1 s.Stats.searches));
  pf "  BlindiTree descents:     %d steps\n" s.Stats.tree_steps;
  pf "verification key loads:    %d table loads\n" (Table.loads table);
  pf "leaf conversions:          %d (std->compact grows and shrinks)\n"
    bstats.Ei_btree.Btree.conversions;
  pf "leaf splits / merges:      %d / %d\n" bstats.Ei_btree.Btree.leaf_splits
    bstats.Ei_btree.Btree.leaf_merges;
  pf "compact leaves at end:     %d of index with %d items\n"
    (Ei_core.Elastic_btree.compact_leaves tree)
    (Ei_core.Elastic_btree.count tree);
  pf "final state:               %s\n%!"
    (Ei_core.Elasticity.state_name (Ei_core.Elastic_btree.state tree))
