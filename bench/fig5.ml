(* Figure 5: elastic index operation trade-offs (§6.1).

   A single thread inserts N unique 64-bit keys in 10 chunks and then
   deletes them in 10 chunks.  After each chunk we measure lookup and
   scan throughput (scans iterate 15 keys from a random start) and the
   index's memory consumption.  The elastic B+-tree's size bound is set
   so that shrinking starts once half the keys are inserted, exactly as
   the paper configures it (50 M of 100 M items).

   Indexes: elastic B+-tree, STX, SeqTree128 (maximum compaction) and the
   HOT substitute. *)

open Bench_util
module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops

type series = {
  label : string;
  items : int array;
  insert_mops : float array;  (* insertion chunks *)
  remove_mops : float array;  (* deletion chunks *)
  lookup_mops : float array;  (* after every chunk: 2 * chunks points *)
  scan_mops : float array;
  mem_mb : float array;
}

let chunks = 10

let run_one ~key_len ~keys ~load ~lookups ~scans kind label =
  let n = Array.length keys in
  let chunk = n / chunks in
  let rng = Rng.create 42 in
  let index = Registry.make ~key_len ~load kind in
  let points = 2 * chunks in
  let s =
    {
      label;
      items = Array.make points 0;
      insert_mops = Array.make chunks 0.0;
      remove_mops = Array.make chunks 0.0;
      lookup_mops = Array.make points 0.0;
      scan_mops = Array.make points 0.0;
      mem_mb = Array.make points 0.0;
    }
  in
  let measure_queries point ~live_hi =
    (* Lookups of random inserted keys. *)
    s.lookup_mops.(point) <-
      mops lookups (fun () ->
          for _ = 1 to lookups do
            let k, _ = keys.(Rng.int rng live_hi) in
            ignore (index.Index_ops.find k)
          done);
    (* 15-key scans from random start keys. *)
    s.scan_mops.(point) <-
      mops scans (fun () ->
          for _ = 1 to scans do
            ignore (index.Index_ops.scan (Key.random rng key_len) 15)
          done);
    s.mem_mb.(point) <- Ei_util.Bench_clock.mib (index.Index_ops.memory_bytes ());
    s.items.(point) <- index.Index_ops.count ()
  in
  (* Insertion phase. *)
  for c = 0 to chunks - 1 do
    s.insert_mops.(c) <-
      mops chunk (fun () ->
          for i = c * chunk to ((c + 1) * chunk) - 1 do
            let k, tid = keys.(i) in
            ignore (index.Index_ops.insert k tid)
          done);
    measure_queries c ~live_hi:((c + 1) * chunk)
  done;
  (* Deletion phase: scrambled order, in chunks. *)
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  for c = 0 to chunks - 1 do
    s.remove_mops.(c) <-
      mops chunk (fun () ->
          for i = c * chunk to ((c + 1) * chunk) - 1 do
            let k, _ = keys.(order.(i)) in
            ignore (index.Index_ops.remove k)
          done);
    (* Lookups against the full key set (some now absent, as deletion
       progresses), scans from random starts. *)
    measure_queries (chunks + c) ~live_hi:n
  done;
  s

let print_table title all get =
  subheader title;
  print_row ("items" :: List.map (fun s -> s.label) all);
  let points = Array.length (List.hd all).items in
  for p = 0 to points - 1 do
    print_row
      (string_of_int (List.hd all).items.(p)
      :: List.map (fun s -> f3 (get s p)) all)
  done

let run_keylen ~key_len ~detail =
  let n = scaled 200_000 in
  let n = n - (n mod chunks) in
  let lookups = max 1000 (3 * n / 100) in
  let scans = max 500 (n / 100) in
  let rng = Rng.create 5 in
  let table = Table.create ~key_len () in
  let load = Table.loader table in
  let keys = unique_keys rng table n key_len in
  pf "N=%d %d-byte keys, %d chunks; %d lookups, %d 15-key scans per point\n"
    n key_len chunks lookups scans;
  (* Size the elastic bound from STX's memory at half the keys. *)
  let stx_probe = Registry.make ~key_len ~load Registry.Stx in
  for i = 0 to (n / 2) - 1 do
    let k, tid = keys.(i) in
    ignore (stx_probe.Index_ops.insert k tid)
  done;
  let half_bytes = stx_probe.Index_ops.memory_bytes () in
  let bound = int_of_float (float_of_int half_bytes /. 0.9) in
  pf "elastic size bound = %.1f MB (STX size at N/2 = %.1f MB)\n"
    (Ei_util.Bench_clock.mib bound)
    (Ei_util.Bench_clock.mib half_bytes);
  let config = Ei_core.Elasticity.default_config ~size_bound:bound in
  let runs =
    [
      ("elastic", Registry.Elastic config);
      ("stx", Registry.Stx);
      ("seqtree128", Registry.Seqtree 128);
      ("hot", Registry.Hot);
    ]
  in
  let all =
    List.map
      (fun (label, kind) -> run_one ~key_len ~keys ~load ~lookups ~scans kind label)
      runs
  in
  (* Record each index at peak size (end of the insertion phase). *)
  let peak = chunks - 1 in
  List.iter
    (fun s ->
      let bytes = int_of_float (s.mem_mb.(peak) *. 1024. *. 1024.) in
      let cell phase m =
        emit_mops ~name:"fig5"
          ~params:
            [
              ("index", s.label);
              ("key_len", string_of_int key_len);
              ("phase", phase);
            ]
          ~mops:m ~bytes
      in
      cell "scan" s.scan_mops.(peak);
      cell "lookup" s.lookup_mops.(peak);
      cell "insert" s.insert_mops.(peak))
    all;
  if detail then begin
    print_table "5a: scan throughput (Mops, scan = 15 keys)" all (fun s p ->
        s.scan_mops.(p));
    print_table "5b: index memory (MB)" all (fun s p -> s.mem_mb.(p));
    print_table "5c: lookup throughput (Mops)" all (fun s p -> s.lookup_mops.(p));
    subheader "5d: insertion throughput per chunk (Mops)";
    print_row ("chunk" :: List.map (fun s -> s.label) all);
    for c = 0 to chunks - 1 do
      print_row
        (string_of_int (c + 1) :: List.map (fun s -> f3 s.insert_mops.(c)) all)
    done;
    subheader "5e: remove throughput per chunk (Mops)";
    print_row ("chunk" :: List.map (fun s -> s.label) all);
    for c = 0 to chunks - 1 do
      print_row
        (string_of_int (c + 1) :: List.map (fun s -> f3 s.remove_mops.(c)) all)
    done
  end
  else begin
    (* Summary at peak size (end of insertion phase), as the paper only
       details 64-bit keys and summarises the others. *)
    let peak = chunks - 1 in
    subheader
      (Printf.sprintf "summary at peak size (%d-byte keys; paper: larger keys \
                       favour the elastic index)" key_len);
    print_row ~w:12 [ "index"; "mem MB"; "scan"; "lookup"; "insert" ];
    List.iter
      (fun s ->
        print_row ~w:12
          [
            s.label;
            f2 s.mem_mb.(peak);
            f3 s.scan_mops.(peak);
            f3 s.lookup_mops.(peak);
            f3 s.insert_mops.(chunks - 1);
          ])
      all
  end

let run () =
  header "Figure 5: elastic B+-tree operation trade-offs";
  run_keylen ~key_len:8 ~detail:true;
  run_keylen ~key_len:16 ~detail:false;
  run_keylen ~key_len:30 ~detail:false;
  pf
    "paper shapes: elastic == STX until shrink point, then degrades towards\n\
     seqtree128; memory flattens after shrink; HOT scans 1.5-2x below STX;\n\
     larger keys give better compression and smaller degradation\n%!"
