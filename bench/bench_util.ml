(* Shared benchmark plumbing: scaling, timing, table output.

   Paper experiments run 50-100 M items on large Xeons; these benchmarks
   default to ~100-500 k items so the full suite completes in minutes.
   Set EI_SCALE (a float, default 1.0) to scale all sizes; shapes are
   stable from ~0.5 upwards.  EXPERIMENTS.md records paper-vs-measured
   at the default scale. *)

module Clock = Ei_util.Bench_clock

let scale =
  match Sys.getenv_opt "EI_SCALE" with
  | Some s -> ( try float_of_string s with _ -> 1.0)
  | None -> 1.0

let scaled n = max 1 (int_of_float (float_of_int n *. scale))

(* Single experiment seed (EI_SEED, default 42).  Parallel drivers
   derive one splitmix64 stream per domain from it, so multi-domain
   runs are reproducible: same seed, same per-domain op sequences,
   regardless of interleaving. *)
let seed =
  match Sys.getenv_opt "EI_SEED" with
  | Some s -> ( try int_of_string s with _ -> 42)
  | None -> 42

let domain_rng d = Ei_util.Rng.stream seed d

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let subheader s = Printf.printf "--- %s ---\n%!" s

(* Measure a closure's throughput in Mops for [ops] operations. *)
let mops ops f =
  let (), dt = Clock.time f in
  Clock.mops ops dt

(* Warmup once, then repeat and take the median throughput — the
   repeatable middle of the run-to-run distribution (GC and allocator
   noise skew the mean).  [f] must be idempotent (read-only workloads,
   or rebuilt state per call). *)
let median_mops ?(warmup = 1) ?(repeat = 3) ops f =
  assert (repeat >= 1);
  for _ = 1 to warmup do
    f ()
  done;
  let samples = Array.init repeat (fun _ -> mops ops f) in
  Array.sort Float.compare samples;
  samples.(repeat / 2)

(* --- Machine-readable results (BENCH_results.json) ------------------- *)

(* Every experiment appends one JSON object per measurement, one per
   line (JSON Lines), so the perf trajectory of the repo is diffable
   across commits.  [reset] truncates at suite start. *)

let results_file = "BENCH_results.json"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let reset_results () =
  let oc = open_out results_file in
  close_out oc

(* [emit ~name ~params ~ops_per_sec ~bytes] appends one record.
   [params] is a list of (key, value) strings describing the
   configuration cell (index kind, domains, workload, ...). *)
let emit ~name ~params ~ops_per_sec ~bytes =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 results_file
  in
  let params_json =
    params
    |> List.map (fun (k, v) ->
           Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
    |> String.concat ", "
  in
  Printf.fprintf oc
    "{\"name\": \"%s\", \"params\": {%s}, \"ops_per_sec\": %.0f, \"bytes\": %d, \"scale\": %g, \"seed\": %d}\n"
    (json_escape name) params_json ops_per_sec bytes scale seed;
  close_out oc

(* Convenience: most call sites measure Mops. *)
let emit_mops ~name ~params ~mops:m ~bytes =
  emit ~name ~params ~ops_per_sec:(m *. 1e6) ~bytes

let pf = Printf.printf

let print_row ?(w = 12) cells =
  List.iter (fun c -> pf "%*s" w c) cells;
  pf "\n%!"

let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let mb bytes = Printf.sprintf "%.1f" (Clock.mib bytes)

(* Unique random keys of a given length, backed by a table. *)
let unique_keys rng table n key_len =
  let seen = Hashtbl.create (2 * n) in
  Array.init n (fun _ ->
      let rec fresh () =
        let k = Ei_util.Key.random rng key_len in
        if Hashtbl.mem seen k then fresh ()
        else begin
          Hashtbl.add seen k ();
          k
        end
      in
      let k = fresh () in
      (k, Ei_storage.Table.append table k))
