(* Shared benchmark plumbing: scaling, timing, table output.

   Paper experiments run 50-100 M items on large Xeons; these benchmarks
   default to ~100-500 k items so the full suite completes in minutes.
   Set EI_SCALE (a float, default 1.0) to scale all sizes; shapes are
   stable from ~0.5 upwards.  EXPERIMENTS.md records paper-vs-measured
   at the default scale. *)

module Clock = Ei_util.Bench_clock

let scale =
  match Sys.getenv_opt "EI_SCALE" with
  | Some s -> ( try float_of_string s with _ -> 1.0)
  | None -> 1.0

let scaled n = max 1 (int_of_float (float_of_int n *. scale))

(* Single experiment seed (EI_SEED, default 42).  Parallel drivers
   derive one splitmix64 stream per domain from it, so multi-domain
   runs are reproducible: same seed, same per-domain op sequences,
   regardless of interleaving. *)
let seed = Ei_util.Rng.env_seed ~default:42

let domain_rng d = Ei_util.Rng.stream seed d

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let subheader s = Printf.printf "--- %s ---\n%!" s

(* Measure a closure's throughput in Mops for [ops] operations. *)
let mops ops f =
  let (), dt = Clock.time f in
  Clock.mops ops dt

(* Warmup once, then repeat and take the median throughput — the
   repeatable middle of the run-to-run distribution (GC and allocator
   noise skew the mean).  [f] must be idempotent (read-only workloads,
   or rebuilt state per call). *)
let median_mops ?(warmup = 1) ?(repeat = 3) ops f =
  assert (repeat >= 1);
  for _ = 1 to warmup do
    f ()
  done;
  let samples = Array.init repeat (fun _ -> mops ops f) in
  Array.sort Float.compare samples;
  samples.(repeat / 2)

(* --- Machine-readable results (BENCH_results.json) ------------------- *)

(* Every experiment appends one JSON object per measurement, one per
   line (JSON Lines), so the perf trajectory of the repo is diffable
   across commits.  [reset] truncates at suite start. *)

let results_file = "BENCH_results.json"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let reset_results () =
  let oc = open_out results_file in
  close_out oc

(* [emit ~name ~params ~ops_per_sec ~bytes] appends one record.
   [params] is a list of (key, value) strings describing the
   configuration cell (index kind, domains, workload, ...).
   [quantiles], when present, adds tail-latency fields
   [p50_ns]/[p99_ns]/[p999_ns]; prior keys are unchanged, so old lines
   and old consumers keep parsing. *)
let emit_record ?quantiles ~name ~params ~ops_per_sec ~bytes () =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 results_file
  in
  let params_json =
    params
    |> List.map (fun (k, v) ->
           Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
    |> String.concat ", "
  in
  let quantiles_json =
    match quantiles with
    | None -> ""
    | Some (p50, p99, p999) ->
      Printf.sprintf ", \"p50_ns\": %d, \"p99_ns\": %d, \"p999_ns\": %d" p50
        p99 p999
  in
  Printf.fprintf oc
    "{\"name\": \"%s\", \"params\": {%s}, \"ops_per_sec\": %.0f, \"bytes\": %d, \"scale\": %g, \"seed\": %d%s}\n"
    (json_escape name) params_json ops_per_sec bytes scale seed quantiles_json;
  close_out oc

let emit ~name ~params ~ops_per_sec ~bytes =
  emit_record ~name ~params ~ops_per_sec ~bytes ()

(* Convenience: most call sites measure Mops. *)
let emit_mops ~name ~params ~mops:m ~bytes =
  emit ~name ~params ~ops_per_sec:(m *. 1e6) ~bytes

(* Mops record with tail latencies (see [emit_record ?quantiles]). *)
let emit_mops_q ?quantiles ~name ~params ~mops:m ~bytes () =
  emit_record ?quantiles ~name ~params ~ops_per_sec:(m *. 1e6) ~bytes ()

(* --- Driver-side observability (EI_OBS=1) ---------------------------- *)

(* Benchmarks run with the registry disabled by default, so the recorded
   throughput is the obs-compiled-but-off configuration EXPERIMENTS.md
   tracks.  EI_OBS=1 turns the whole observability stack on for the
   driver run: the metrics registry (phase histograms then feed the
   [p50_ns]/[p99_ns]/[p999_ns] fields of emitted records), the trace
   ring with span contexts, and the telemetry timeline — drivers that
   cut phase frames ({!phase_capture}) and dump artifacts do so only
   under this flag. *)
let obs_enabled =
  match Sys.getenv_opt "EI_OBS" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let () =
  if obs_enabled then begin
    Ei_obs.Metrics.set_enabled true;
    Ei_obs.Trace.set_enabled true;
    Ei_obs.Timeline.set_enabled true
  end

(* Cut a timeline frame at a phase boundary (no-op when EI_OBS unset). *)
let phase_capture label =
  if obs_enabled then Ei_obs.Timeline.capture ~label ()

(* Start a measurement phase feeding histogram [h] (clears samples left
   by earlier phases or warmup). *)
let begin_phase h = if obs_enabled then Ei_obs.Metrics.reset_histogram h

(* The phase's tail latencies, for [emit ?quantiles]. *)
let phase_quantiles h =
  if obs_enabled && Ei_obs.Metrics.histogram_count h > 0 then
    Some
      ( Ei_obs.Metrics.quantile h 0.5,
        Ei_obs.Metrics.quantile h 0.99,
        Ei_obs.Metrics.quantile h 0.999 )
  else None

let pf = Printf.printf

let print_row ?(w = 12) cells =
  List.iter (fun c -> pf "%*s" w c) cells;
  pf "\n%!"

let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let mb bytes = Printf.sprintf "%.1f" (Clock.mib bytes)

(* Unique random keys of a given length, backed by a table. *)
let unique_keys rng table n key_len =
  let seen = Hashtbl.create (2 * n) in
  Array.init n (fun _ ->
      let rec fresh () =
        let k = Ei_util.Key.random rng key_len in
        if Hashtbl.mem seen k then fresh ()
        else begin
          Hashtbl.add seen k ();
          k
        end
      in
      let k = fresh () in
      (k, Ei_storage.Table.append table k))
