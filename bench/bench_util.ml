(* Shared benchmark plumbing: scaling, timing, table output.

   Paper experiments run 50-100 M items on large Xeons; these benchmarks
   default to ~100-500 k items so the full suite completes in minutes.
   Set EI_SCALE (a float, default 1.0) to scale all sizes; shapes are
   stable from ~0.5 upwards.  EXPERIMENTS.md records paper-vs-measured
   at the default scale. *)

module Clock = Ei_util.Bench_clock

let scale =
  match Sys.getenv_opt "EI_SCALE" with
  | Some s -> ( try float_of_string s with _ -> 1.0)
  | None -> 1.0

let scaled n = max 1 (int_of_float (float_of_int n *. scale))

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let subheader s = Printf.printf "--- %s ---\n%!" s

(* Measure a closure's throughput in Mops for [ops] operations. *)
let mops ops f =
  let (), dt = Clock.time f in
  Clock.mops ops dt

let pf = Printf.printf

let print_row ?(w = 12) cells =
  List.iter (fun c -> pf "%*s" w c) cells;
  pf "\n%!"

let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let mb bytes = Printf.sprintf "%.1f" (Clock.mib bytes)

(* Unique random keys of a given length, backed by a table. *)
let unique_keys rng table n key_len =
  let seen = Hashtbl.create (2 * n) in
  Array.init n (fun _ ->
      let rec fresh () =
        let k = Ei_util.Key.random rng key_len in
        if Hashtbl.mem seen k then fresh ()
        else begin
          Hashtbl.add seen k ();
          k
        end
      in
      let k = fresh () in
      (k, Ei_storage.Table.append table k))
