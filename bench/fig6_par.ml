(* Figure 6 (parallel): sharded YCSB over the domain-per-shard serving
   layer with the global elastic memory coordinator.

   Each shard count builds a fleet of elastic BTreeOLC shards behind
   {!Ei_shard.Serve}: one domain per shard drains a bounded request
   queue, and the coordinator periodically re-splits one global soft
   size bound across the shards from their published sizes.  Phases:
   load (inserts through the queues), uniform point reads, short range
   scans (which continue across shard boundaries), and a YCSB-A-style
   churn mix (50 % reads, 25 % inserts of fresh keys, 25 % removes /
   updates) under which the coordinator must keep the fleet's aggregate
   elastic bytes within the global bound. *)

open Bench_util
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Ycsb = Ei_workload.Ycsb
module Olc = Ei_olc.Btree_olc
module Shard = Ei_shard.Shard
module Serve = Ei_shard.Serve
module Rng = Ei_util.Rng
module Wal = Ei_wal.Wal

let shard_counts = [ 1; 2; 4; 8 ]

(* EI_WAL=dir runs every fleet durable: group-commit WAL under
   dir/shards<N> (reset per fleet), so an EI_OBS=1 run's trace shows
   the full serve → shard → tree → WAL commit flow.  Unset = the
   in-memory configuration EXPERIMENTS.md tracks. *)
let wal_base = Sys.getenv_opt "EI_WAL"

(* Client-side sub-batch size; Serve re-partitions each batch by shard. *)
let batch = 512

(* A fleet of [shards] registry indexes over one shared table, with the
   torn-read-proof loader every concurrently compacted leaf needs. *)
let mk_fleet ~shards ~kind_of_shard =
  let table = Table.create ~key_len:8 () in
  let load =
    Olc.safe_loader ~key_len:8
      ~table_length:(fun () -> Table.length table)
      ~load:(Table.loader table)
  in
  let parts =
    Array.init shards (fun i ->
        let kind = kind_of_shard i in
        Registry.make
          ~name:(Printf.sprintf "%s/%d" (Registry.kind_name kind) i)
          ~key_len:8 ~load kind)
  in
  (table, Shard.create parts)

let elastic_fleet ~shards ~global_bound =
  mk_fleet ~shards ~kind_of_shard:(fun _ ->
      Registry.Olc
        (Olc.Olc_elastic
           (Olc.default_elastic_config
              ~size_bound:(max 1 (global_bound / shards)))))

(* Returns the number of shed (rejected / timed-out) operations — zero
   in a fault-free benchmark run; a non-zero count would taint the
   throughput numbers and is surfaced by the caller. *)
let run_batches serve ops =
  let n = Array.length ops in
  let shed = ref 0 in
  let i = ref 0 in
  while !i < n do
    let len = min batch (n - !i) in
    Array.iter
      (function
        | Serve.Applied _ -> ()
        | Serve.Rejected | Serve.Timed_out -> incr shed)
      (Serve.exec serve (Array.sub ops !i len));
    i := !i + len
  done;
  !shed

let warn_shed name shed =
  if shed > 0 then
    Printf.printf "  (%s: %d operation(s) shed — throughput tainted)\n" name shed

let aggregate_bytes serve = Array.fold_left ( + ) 0 (Serve.shard_sizes serve)

(* Under EI_OBS=1 each phase's batch-execution latencies land in the
   serving layer's [serve.batch_ns] histogram; resetting it per phase
   turns the shared histogram into a per-phase one. *)
let h_batch = Ei_obs.Metrics.histogram "serve.batch_ns"

let run () =
  header "Figure 6 (parallel): sharded YCSB with the global memory coordinator";
  let record_count = scaled 100_000 in
  let ops = scaled 200_000 in
  (* Global soft bound: ~60 % of an unconstrained BTreeOLC for this load
     (the same heuristic as Fig 7's elastic line), split across shards
     by the coordinator. *)
  let global_bound = record_count * 27 * 6 / 10 in
  pf "load = %d records; %d ops per phase; global bound = %s MB\n"
    record_count ops (mb global_bound);
  print_row ~w:11
    [ "shards"; "load"; "read"; "scan"; "churn"; "mem/bound"; "rebal" ];
  List.iter
    (fun shards ->
      let table, router = elastic_fleet ~shards ~global_bound in
      let wal =
        Option.map
          (fun base ->
            let dir = Filename.concat base (Printf.sprintf "shards%d" shards) in
            Wal.reset_dir dir;
            Wal.default_config ~dir)
          wal_base
      in
      let serve =
        Serve.start
          ~coordinator:(Serve.default_coordinator ~global_bound)
          ?wal router
      in
      (* Load: pre-append to the shared table, insert through the queues. *)
      let tids = Array.make record_count 0 in
      for seq = 0 to record_count - 1 do
        tids.(seq) <- Table.append table (Ycsb.key_of_seq seq)
      done;
      let load_ops =
        Array.init record_count (fun seq ->
            Serve.Insert (Ycsb.key_of_seq seq, tids.(seq)))
      in
      let shed = ref 0 in
      begin_phase h_batch;
      let load_mops =
        mops record_count (fun () -> shed := !shed + run_batches serve load_ops)
      in
      let load_q = phase_quantiles h_batch in
      phase_capture (Printf.sprintf "load/%d" shards);
      (* Uniform point reads (workload C shape). *)
      let rng = domain_rng 0 in
      let read_ops =
        Array.init ops (fun _ ->
            Serve.Find (Ycsb.key_of_seq (Rng.int rng record_count)))
      in
      begin_phase h_batch;
      let read_mops =
        mops ops (fun () -> shed := !shed + run_batches serve read_ops)
      in
      let read_q = phase_quantiles h_batch in
      phase_capture (Printf.sprintf "read/%d" shards);
      (* Short scans from uniform starts; a scan landing near the top of
         a shard's range continues into the next shard (workload E
         shape).  Throughput is entries visited per second. *)
      let scan_len = 50 in
      let nscan = max 1 (ops / scan_len) in
      let scan_ops =
        Array.init nscan (fun _ ->
            Serve.Scan (Ycsb.key_of_seq (Rng.int rng record_count), scan_len))
      in
      begin_phase h_batch;
      let scan_mops =
        mops (nscan * scan_len) (fun () ->
            shed := !shed + run_batches serve scan_ops)
      in
      let scan_q = phase_quantiles h_batch in
      phase_capture (Printf.sprintf "scan/%d" shards);
      (* Churn: 50 % reads, 25 % inserts of fresh keys, 25 % removes of
         the oldest fresh key (falling back to updates before any fresh
         insert has landed), so the record count stays near constant
         while allocation pressure keeps the elastic machinery and the
         coordinator busy. *)
      let fresh_cap = (ops / 4) + 1 in
      let fresh_keys =
        Array.init fresh_cap (fun i -> Ycsb.key_of_seq (record_count + i))
      in
      let fresh_tids = Array.map (Table.append table) fresh_keys in
      let next_ins = ref 0 and next_rem = ref 0 in
      let churn_ops =
        Array.init ops (fun _ ->
            let r = Rng.int rng 4 in
            if r < 2 then
              Serve.Find (Ycsb.key_of_seq (Rng.int rng record_count))
            else if r = 2 && !next_ins < fresh_cap then begin
              let i = !next_ins in
              incr next_ins;
              Serve.Insert (fresh_keys.(i), fresh_tids.(i))
            end
            else if !next_rem < !next_ins then begin
              let i = !next_rem in
              incr next_rem;
              Serve.Remove fresh_keys.(i)
            end
            else begin
              (* In-place update: the new tid must reference a row
                 holding the same key bytes (compact leaves load keys
                 through the tid). *)
              let s = Rng.int rng record_count in
              Serve.Update (Ycsb.key_of_seq s, tids.(s))
            end)
      in
      begin_phase h_batch;
      let churn_mops =
        mops ops (fun () -> shed := !shed + run_batches serve churn_ops)
      in
      let churn_q = phase_quantiles h_batch in
      phase_capture (Printf.sprintf "churn/%d" shards);
      (* Bound check: after one final coordinator pass the aggregate
         tracked bytes must respect the global soft bound (+10 %
         tolerance for in-flight splits). *)
      Serve.rebalance_now serve;
      let agg = aggregate_bytes serve in
      let ratio = float_of_int agg /. float_of_int global_bound in
      let rebal = Serve.rebalances serve in
      Serve.stop serve;
      warn_shed (Printf.sprintf "%d shards" shards) !shed;
      let expect = record_count + !next_ins - !next_rem in
      let got = Shard.count router in
      if got <> expect then
        pf "WARNING: count mismatch after churn: expected %d, got %d\n"
          expect got;
      if Float.compare ratio 1.1 > 0 then
        pf "WARNING: aggregate %s MB exceeds bound %s MB by >10%%\n"
          (mb agg) (mb global_bound);
      print_row ~w:11
        [
          string_of_int shards;
          f3 load_mops;
          f3 read_mops;
          f3 scan_mops;
          f3 churn_mops;
          f2 ratio;
          string_of_int rebal;
        ];
      let cell phase m q =
        emit_mops_q ?quantiles:q ~name:"fig6_par"
          ~params:
            [
              ("index", "olc-elastic");
              ("shards", string_of_int shards);
              ("phase", phase);
            ]
          ~mops:m ~bytes:agg ()
      in
      cell "load" load_mops load_q;
      cell "read" read_mops read_q;
      cell "scan" scan_mops scan_q;
      cell "churn" churn_mops churn_q)
    shard_counts;
  pf
    "expected shapes: throughput grows with shards up to the core count;\n\
     mem/bound stays <= 1.1 at every shard count (the coordinator keeps\n\
     the fleet inside the global soft bound)\n";
  pf
    "note: this machine reports %d core(s); with a single core the shard\n\
     domains timeshare it and aggregate throughput stays flat\n%!"
    (Domain.recommended_domain_count ());
  (* EI_OBS=1 artifacts: the causal trace (one client op renders as a
     serve → shard → tree → WAL flow in Perfetto when EI_WAL is also
     set) and the timeline frame ring cut at the phase boundaries
     above. *)
  if obs_enabled then begin
    Ei_obs.Trace.write_json "fig6_par.trace.json";
    Ei_obs.Timeline.write_jsonl "fig6_par.timeline.jsonl";
    pf "wrote fig6_par.trace.json (%d events) and fig6_par.timeline.jsonl\n%!"
      (Ei_obs.Trace.events ())
  end
