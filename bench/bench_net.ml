(* Wire-protocol serving benchmark: ei_net end to end over loopback
   unix sockets, 1-8 shard fleets, closed- and open-loop load.

   Clients are real separate PROCESSES, not domains: the load generator
   must not share a GC, a scheduler or a socket implementation with the
   server under test, or a server stall hides inside the generator's
   own pauses.  All children are forked up front — before the parent
   spawns any domain — each waits for its cell's socket to appear,
   drives its connection, and ships its latency samples back over a
   length-prefixed pipe.

   Closed loop (fixed pipelining window per client) measures peak
   sustainable throughput; open loop (fixed-rate schedule) measures the
   honest tail — queueing delay under a saturating arrival process is
   part of each sample, not hidden by the generator backing off. *)

module Client = Ei_net.Client
module Wire = Ei_net.Wire
module Server = Ei_net.Server
module Serve = Ei_shard.Serve
module Shard = Ei_shard.Shard
module Olc = Ei_olc.Btree_olc
module Registry = Ei_harness.Registry
module Table = Ei_storage.Table
module Key = Ei_util.Key

type mode = Closed | Open

let mode_name = function Closed -> "closed" | Open -> "open"

let clients = 4
let window = 64

(* Per-client request counts and open-loop arrival rate.  The open loop
   sends fewer requests: its cell runtime is count/rate by design. *)
let closed_count () = Bench_util.scaled 20_000
let open_count () = Bench_util.scaled 10_000
let open_rate = 25_000.0

let cells =
  [ 1; 2; 4; 8 ] |> List.concat_map (fun s -> [ (s, Closed); (s, Open) ])

let sock_path cell =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ei-bench-net-%d-%d.sock" (Unix.getpid ()) cell)

(* --- Child side -------------------------------------------------------- *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

(* Connect with retry: the parent starts this cell's server only after
   the earlier cells have finished. *)
let connect_patiently path =
  let deadline = Unix.gettimeofday () +. 300.0 in
  let rec go () =
    match Client.connect (Unix.ADDR_UNIX path) with
    | c -> c
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
      if Float.compare (Unix.gettimeofday ()) deadline > 0 then
        failwith "bench_net: server socket never appeared"
      else begin
        Unix.sleepf 0.05;
        go ()
      end
  in
  go ()

(* The forked client body.  [Unix._exit] everywhere: a child must not
   run the parent's at_exit machinery (results flushing, obs dumps). *)
let child_main ~path ~mode ~count ~j ~wfd =
  match
    let c = connect_patiently path in
    let op i = Wire.Insert (Key.of_int ((j * count) + i)) in
    let stats =
      match mode with
      | Closed -> Client.run_closed c ~window ~count ~op
      | Open -> Client.run_open c ~rate:open_rate ~count ~op
    in
    Client.close c;
    let payload = Marshal.to_bytes stats [] in
    let hdr = Bytes.create 8 in
    Bytes.set_int64_le hdr 0 (Int64.of_int (Bytes.length payload));
    write_all wfd hdr 0 8;
    write_all wfd payload 0 (Bytes.length payload)
  with
  | () -> Unix._exit 0
  | exception Client.Protocol msg ->
    Printf.eprintf "bench_net client %d: protocol error: %s\n%!" j msg;
    Unix._exit 3
  | exception e ->
    Printf.eprintf "bench_net client %d: %s\n%!" j (Printexc.to_string e);
    Unix._exit 4

let rec read_exactly fd b pos len =
  if len > 0 then
    match Unix.read fd b pos len with
    | 0 -> failwith "bench_net: client pipe closed early"
    | n -> read_exactly fd b (pos + n) (len - n)

let read_stats rfd : Client.stats =
  let hdr = Bytes.create 8 in
  read_exactly rfd hdr 0 8;
  let len = Int64.to_int (Bytes.get_int64_le hdr 0) in
  let payload = Bytes.create len in
  read_exactly rfd payload 0 len;
  Marshal.from_bytes payload 0

(* --- Parent side ------------------------------------------------------- *)

let mk_fleet shards =
  let table = Table.create ~key_len:8 () in
  let load =
    Olc.safe_loader ~key_len:8
      ~table_length:(fun () -> Table.length table)
      ~load:(Table.loader table)
  in
  let mk i =
    Registry.make
      ~name:(Printf.sprintf "olc/%d" i)
      ~key_len:8 ~load (Registry.Olc Olc.Olc_std)
  in
  (table, Shard.create (Array.init shards mk))

let numbered = List.mapi (fun i c -> (c, i)) cells

let run_cell ~shards ~mode ~kids =
  let table, router = mk_fleet shards in
  let serve = Serve.start router in
  let server =
    Server.start ~serve ~table
      (Unix.ADDR_UNIX (sock_path (List.assoc (shards, mode) numbered)))
  in
  let per_client =
    List.map
      (fun (pid, rfd) ->
        let stats = read_stats rfd in
        Unix.close rfd;
        (match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, st ->
          let what =
            match st with
            | Unix.WEXITED c -> Printf.sprintf "exit %d" c
            | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
          in
          failwith (Printf.sprintf "bench_net: client died (%s)" what));
        stats)
      kids
  in
  Server.stop server;
  Serve.stop serve;
  Client.merge_stats per_client

let run () =
  Bench_util.header "net: wire-protocol serving (ei_net over unix sockets)";
  Printf.printf
    "%d client processes per cell; closed loop window %d, open loop %.0f \
     req/s per client\n"
    clients window open_rate;
  List.iter (fun (c, _) -> try Sys.remove (sock_path (List.assoc c numbered)) with Sys_error _ -> ()) numbered;
  (* Fork every cell's clients before any domain exists in this
     process: mixing fork with live domains is undefined.  Each child
     polls for its own cell's socket, so later cells' clients idle
     until the parent gets there. *)
  Stdlib.flush stdout;
  Stdlib.flush stderr;
  let kids =
    List.map
      (fun ((_shards, mode) as cell) ->
        let count =
          match mode with Closed -> closed_count () | Open -> open_count ()
        in
        let path = sock_path (List.assoc cell numbered) in
        ( cell,
          List.init clients (fun j ->
              let rfd, wfd = Unix.pipe ~cloexec:false () in
              match Unix.fork () with
              | 0 ->
                Unix.close rfd;
                child_main ~path ~mode ~count ~j ~wfd
              | pid ->
                Unix.close wfd;
                (pid, rfd)) ))
      cells
  in
  Bench_util.print_row ~w:11
    [ "shards"; "mode"; "mops"; "p50us"; "p99us"; "p999us"; "busy" ];
  List.iter
    (fun ((shards, mode), cell_kids) ->
      let s = run_cell ~shards ~mode ~kids:cell_kids in
      let mops =
        float_of_int s.Client.sent
        /. Float.max 1e-9 s.Client.elapsed_s /. 1e6
      in
      let q p = float_of_int (Client.quantile s.Client.lat_ns p) /. 1e3 in
      if s.Client.rejected > 0 || s.Client.timed_out > 0 then
        Printf.printf "!! %d rejected, %d timed out\n" s.Client.rejected
          s.Client.timed_out;
      Bench_util.print_row ~w:11
        [
          string_of_int shards;
          mode_name mode;
          Bench_util.f2 mops;
          Bench_util.f2 (q 0.5);
          Bench_util.f2 (q 0.99);
          Bench_util.f2 (q 0.999);
          string_of_int s.Client.busy;
        ];
      Bench_util.emit_mops_q
        ~quantiles:
          ( Client.quantile s.Client.lat_ns 0.5,
            Client.quantile s.Client.lat_ns 0.99,
            Client.quantile s.Client.lat_ns 0.999 )
        ~name:"net"
        ~params:
          [
            ("shards", string_of_int shards);
            ("mode", mode_name mode);
            ("clients", string_of_int clients);
            ("per_client", string_of_int (s.Client.sent / clients));
            ( (match mode with Closed -> "window" | Open -> "rate"),
              match mode with
              | Closed -> string_of_int window
              | Open -> Printf.sprintf "%.0f" open_rate );
          ]
        ~mops ~bytes:0 ())
    kids;
  List.iter
    (fun (c, _) ->
      try Sys.remove (sock_path (List.assoc c numbered))
      with Sys_error _ -> ())
    numbered
