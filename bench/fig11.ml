(* Figure 11: breathing analysis (§5.4, §6.4).

   STX-SeqTree (tree levels = 2) with breathing parameter s in
   {off, 1, 2, 4, 8} across leaf capacities; leaf space normalised to
   breathing-off, plus search and insert throughput. *)

open Bench_util
module Table = Ei_storage.Table
module Rng = Ei_util.Rng
module Btree = Ei_btree.Btree
module Policy = Ei_btree.Policy

let slot_values = [ 16; 32; 64; 128 ]
let breathing_values = [ 0; 1; 2; 4; 8 ]

let bench ~keys ~load ~slots ~breathing =
  let policy = Policy.all_seqtree ~levels:2 ~breathing ~capacity:slots () in
  let tree = Btree.create ~key_len:8 ~load ~policy () in
  let n = Array.length keys in
  let ins =
    mops n (fun () ->
        Array.iter (fun (k, tid) -> ignore (Btree.insert tree k tid)) keys)
  in
  let rng = Rng.create 6 in
  let srch =
    mops n (fun () ->
        for _ = 1 to n do
          let k, _ = keys.(Rng.int rng n) in
          ignore (Btree.find tree k)
        done)
  in
  (ins, srch, Btree.memory_bytes tree)

let run () =
  header "Figure 11: breathing parameter (64-bit keys, tree levels = 2)";
  let n = scaled 60_000 in
  let rng = Rng.create 11 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let keys = unique_keys rng table n 8 in
  pf "N=%d inserts then %d searches per cell\n" n n;
  let results =
    List.map
      (fun slots ->
        ( slots,
          List.map
            (fun s ->
              let ((ins, srch, bytes) as r) = bench ~keys ~load ~slots ~breathing:s in
              let cell phase m =
                emit_mops ~name:"fig11"
                  ~params:
                    [
                      ("slots", string_of_int slots);
                      ("breathing", string_of_int s);
                      ("phase", phase);
                    ]
                  ~mops:m ~bytes
              in
              cell "insert" ins;
              cell "search" srch;
              r)
            breathing_values ))
      slot_values
  in
  let print_grid title get =
    subheader title;
    print_row ~w:10
      ("slots\\s"
      :: List.map (fun s -> if s = 0 then "off" else string_of_int s) breathing_values);
    List.iter
      (fun (slots, cells) ->
        print_row ~w:10 (string_of_int slots :: List.map get cells))
      results
  in
  subheader "11a: space normalised to breathing off";
  print_row ~w:10
    ("slots\\s"
    :: List.map (fun s -> if s = 0 then "off" else string_of_int s) breathing_values);
  List.iter
    (fun (slots, cells) ->
      let _, _, off_bytes = List.hd cells in
      print_row ~w:10
        (string_of_int slots
        :: List.map
             (fun (_, _, b) -> f2 (float_of_int b /. float_of_int off_bytes))
             cells))
    results;
  print_grid "11b: search throughput (Mops)" (fun (_, s, _) -> f3 s);
  print_grid "11c: insert throughput (Mops)" (fun (i, _, _) -> f3 i);
  pf
    "paper shapes: breathing saves ~20%% space at capacity >= 64; search\n\
     barely affected; insert ~10%% slower at s = 4 (reallocation cost)\n%!"
