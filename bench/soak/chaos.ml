(* Chaos soak driver (not part of `dune runtest`): seeded fault
   injection against the supervised serving layer, with shadow-model
   reconciliation and deep validation.  See lib/chaos for the engine
   and EXPERIMENTS.md for the methodology.

   Run with: dune exec bench/soak/chaos.exe -- [--seed N] [--scale F]
             [--shards N] [--plan SPEC] [--wal-dir DIR] [--kill-at N]
             [--quiet]

   EI_SEED is honoured when --seed is absent.  Exits non-zero on any
   lost acknowledged write, phantom row, read inconsistency or
   Ei_check violation — the soak's pass/fail line. *)

module Chaos = Ei_chaos.Chaos
module Fault = Ei_fault.Fault

let () =
  let seed = ref None
  and scale = ref 1.0
  and shards = ref 4
  and plan = ref None
  and wal_dir = ref None
  and kill_at = ref 0
  and quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
      seed := Some (int_of_string v);
      parse rest
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--shards" :: v :: rest ->
      shards := int_of_string v;
      parse rest
    | "--plan" :: v :: rest ->
      (match Fault.parse_plan v with
      | Ok p -> plan := Some p
      | Error e ->
        prerr_endline e;
        exit 2);
      parse rest
    | "--wal-dir" :: v :: rest ->
      wal_dir := Some v;
      parse rest
    | "--kill-at" :: v :: rest ->
      kill_at := int_of_string v;
      parse rest
    | "--quiet" :: rest ->
      quiet := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf "chaos: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seed =
    match !seed with
    | Some s -> s
    | None -> Ei_util.Rng.env_seed ~default:42
  in
  let cfg = Chaos.default_config ~seed in
  let cfg =
    {
      cfg with
      Chaos.scale = !scale;
      shards = !shards;
      plan =
        (match (!plan, !wal_dir) with
        | Some p, _ -> p
        | None, Some _ -> Chaos.default_wal_plan
        | None, None -> cfg.Chaos.plan);
      progress = (if !quiet then None else Some print_endline);
      wal_dir = !wal_dir;
      kill_at = !kill_at;
    }
  in
  let report = Chaos.run cfg in
  Format.printf "%a%!" Chaos.pp_report report;
  if Chaos.ok report then print_endline "chaos soak: OK"
  else begin
    print_endline "chaos soak: FAILED";
    Printf.printf "reproduce with: dune exec bench/soak/chaos.exe -- --seed %d --scale %g --shards %d\n"
      seed !scale !shards;
    exit 1
  end
