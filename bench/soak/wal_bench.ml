(* WAL cost/recovery bench (not part of `dune runtest`): the numbers
   behind the EXPERIMENTS.md durability tables.

   Run with: dune exec bench/soak/wal_bench.exe -- [--ops N] [--dir DIR]

   Two sweeps:
   - fsync cadence: append --ops inserts through a group-committing
     writer (batch 32) at fsync_every in {1, 4, 32, 0} plus a no-WAL
     baseline, reporting Mops and the per-op overhead.
   - recovery: rebuild the same log into a fresh part, with
     checkpoints disabled (pure replay) and at the default cadence
     (newest checkpoint + tail replay), reporting wall time and the
     replayed-record count. *)

module Key = Ei_util.Key
module Clock = Ei_util.Bench_clock
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Wal = Ei_wal.Wal

let batch = 32

let mk_part table name =
  Registry.make ~name ~key_len:8 ~load:(Table.loader table)
    (Registry.Elastic (Ei_core.Elasticity.default_config ~size_bound:max_int))

let mk_keys table n =
  let keys = Array.init n (fun i -> Key.of_int (i * 2654435761)) in
  let tids = Array.map (Table.append table) keys in
  (keys, tids)

let append_run ~ops ~wal table keys tids =
  let part = mk_part table "wal-bench" in
  let w =
    Option.map
      (fun cfg ->
        Wal.reset_dir cfg.Wal.dir;
        fst (Wal.recover cfg ~shard:0 ~part))
      wal
  in
  let t0 = Clock.now_ns () in
  for i = 0 to ops - 1 do
    Option.iter (fun w -> Wal.log_insert w keys.(i) tids.(i)) w;
    ignore (part.Index_ops.insert keys.(i) tids.(i));
    if i mod batch = batch - 1 then
      Option.iter (fun w -> Wal.commit w ~part) w
  done;
  Option.iter Wal.close w;
  let dt = Clock.now_ns () - t0 in
  (part, dt)

let mops ops ns = float_of_int ops /. (float_of_int ns /. 1e9) /. 1e6

let () =
  let ops = ref 200_000 and dir = ref "/tmp/ei-wal-bench" in
  let rec parse = function
    | [] -> ()
    | "--ops" :: v :: rest ->
      ops := int_of_string v;
      parse rest
    | "--dir" :: v :: rest ->
      dir := v;
      parse rest
    | arg :: _ ->
      Printf.eprintf "wal_bench: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let ops = !ops and dir = !dir in
  let table = Table.create ~initial_capacity:(2 * ops) ~key_len:8 () in
  let keys, tids = mk_keys table ops in
  (* fsync cadence sweep *)
  let _, base_ns = append_run ~ops ~wal:None table keys tids in
  Printf.printf "# fsync cadence (ops %d, commit batch %d)\n" ops batch;
  Printf.printf "%-12s %10s %10s\n" "cadence" "Mops" "vs none";
  Printf.printf "%-12s %10.2f %10s\n" "none" (mops ops base_ns) "1.00x";
  List.iter
    (fun fsync_every ->
      (* checkpoints off: isolate the framing + fsync cost *)
      let cfg =
        {
          (Wal.default_config ~dir) with
          Wal.fsync_every;
          checkpoint_every = 0;
        }
      in
      let _, ns = append_run ~ops ~wal:(Some cfg) table keys tids in
      Printf.printf "%-12s %10.2f %9.2fx\n"
        (if fsync_every = 0 then "close-only"
         else Printf.sprintf "every %d" fsync_every)
        (mops ops ns)
        (float_of_int base_ns /. float_of_int ns))
    [ 1; 4; 32; 0 ];
  (* recovery sweep: pure replay vs checkpoint + tail *)
  Printf.printf "\n# recovery (ops %d)\n" ops;
  Printf.printf "%-24s %10s %12s %12s\n" "layout" "ms" "ckpt rows" "replayed";
  List.iter
    (fun (label, checkpoint_every) ->
      let cfg =
        { (Wal.default_config ~dir) with Wal.fsync_every = 0; checkpoint_every }
      in
      let part, _ = append_run ~ops ~wal:(Some cfg) table keys tids in
      let want = Index_ops.fingerprint part in
      let t2 = Table.create ~initial_capacity:(2 * ops) ~key_len:8 () in
      let p2 = mk_part t2 "wal-bench-rec" in
      let t0 = Clock.now_ns () in
      let w2, r =
        Wal.recover cfg ~shard:0
          ~restore:(fun ~tid ~key -> Table.restore_row t2 ~tid ~key)
          ~part:p2
      in
      let dt = Clock.now_ns () - t0 in
      Wal.close w2;
      if (Index_ops.fingerprint p2 : int) <> want then begin
        Printf.eprintf "recovery diverged (%s)\n" label;
        exit 1
      end;
      Printf.printf "%-24s %10.1f %12d %12d\n" label
        (float_of_int dt /. 1e6)
        r.Wal.r_ckpt_entries r.Wal.r_replayed)
    [ ("log only", 0); ("checkpoint + tail", 256) ]
