(* Extended soak utility (not part of `dune runtest`, which favours CI
   speed): 300k mixed operations on the elastic B+-tree (cold sweep
   enabled) and 150k on the elastic skip list, validated against Map
   reference models with structural invariant checks every 10k steps.

   Run with: dune exec bench/soak/soak.exe *)
module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Table = Ei_storage.Table
module Smap = Map.Make (String)

let soak_btree () =
  let table = Table.create ~key_len:8 () in
  let config = Ei_core.Elasticity.default_config ~size_bound:120_000 in
  let config = { config with Ei_core.Elasticity.cold_sweep_period = 32 } in
  let t = Ei_core.Elastic_btree.create ~key_len:8 ~load:(Table.loader table) config () in
  let rng = Rng.create 424242 in
  let pool = Array.init 12_000 (fun _ -> Key.random rng 8) in
  let tid_of = Hashtbl.create 1024 in
  let model = ref Smap.empty in
  for step = 1 to 300_000 do
    let k = pool.(Rng.int rng (Array.length pool)) in
    let c = Rng.int rng 100 in
    if c < 50 then begin
      let tid = match Hashtbl.find_opt tid_of k with
        | Some t -> t | None -> let t = Table.append table k in Hashtbl.add tid_of k t; t in
      let r = Ei_core.Elastic_btree.insert t k tid in
      if Bool.equal r (Smap.mem k !model) then failwith "insert mismatch";
      if r then model := Smap.add k tid !model
    end else if c < 75 then begin
      let r = Ei_core.Elastic_btree.remove t k in
      if not (Bool.equal r (Smap.mem k !model)) then failwith "remove mismatch";
      model := Smap.remove k !model
    end else if c < 90 then begin
      if not (Option.equal Int.equal (Ei_core.Elastic_btree.find t k)
                (Smap.find_opt k !model))
      then failwith "find mismatch"
    end else begin
      let got = Ei_core.Elastic_btree.fold_range t ~start:k ~n:12 (fun a k' v -> (k',v)::a) [] |> List.rev in
      let exp = Smap.to_seq !model |> Seq.filter (fun (k',_) -> Key.compare k' k >= 0) |> Seq.take 12 |> List.of_seq in
      let pair_eq (k1, v1) (k2, v2) = String.equal k1 k2 && Int.equal v1 v2 in
      if not (List.equal pair_eq got exp) then failwith "scan mismatch"
    end;
    if step mod 10_000 = 0 then Ei_core.Elastic_btree.check_invariants t
  done;
  Printf.printf "btree soak: 300k ops ok; %d items, %d transitions, %d compact leaves, %.2f MB\n%!"
    (Ei_core.Elastic_btree.count t) (Ei_core.Elastic_btree.transitions t)
    (Ei_core.Elastic_btree.compact_leaves t)
    (float_of_int (Ei_core.Elastic_btree.memory_bytes t) /. 1048576.)

let soak_skiplist () =
  let module E = Ei_core.Elastic_skiplist in
  let table = Table.create ~key_len:8 () in
  let t = E.create ~key_len:8 ~load:(Table.loader table) (E.default_config ~size_bound:60_000) () in
  let rng = Rng.create 777 in
  let pool = Array.init 6_000 (fun _ -> Key.random rng 8) in
  let tid_of = Hashtbl.create 1024 in
  let model = ref Smap.empty in
  for step = 1 to 150_000 do
    let k = pool.(Rng.int rng (Array.length pool)) in
    let c = Rng.int rng 100 in
    if c < 50 then begin
      let tid = match Hashtbl.find_opt tid_of k with
        | Some t -> t | None -> let t = Table.append table k in Hashtbl.add tid_of k t; t in
      let r = E.insert t k tid in
      if Bool.equal r (Smap.mem k !model) then failwith "sl insert mismatch";
      if r then model := Smap.add k tid !model
    end else if c < 75 then begin
      let r = E.remove t k in
      if not (Bool.equal r (Smap.mem k !model)) then failwith "sl remove mismatch";
      model := Smap.remove k !model
    end else if
      not (Option.equal Int.equal (Ei_core.Elastic_skiplist.find t k)
             (Smap.find_opt k !model))
    then failwith "sl find mismatch";
    if step mod 10_000 = 0 then E.check_invariants t
  done;
  Printf.printf "skiplist soak: 150k ops ok; %d items, %d segments\n%!" (E.count t) (E.segments t)

let () = soak_btree (); soak_skiplist ()
