(* Figure 7: YCSB memory consumption and multithreaded scaling (§6.2).

   7a reports index memory after the YCSB load for each variant.
   7b/7c run BTreeOLC and BTreeOLC-SeqTree over OCaml domains: lookups
   (workload C, Zipfian) and inserts, at increasing thread counts.

   The paper's HOT line is not reproduced here: our HOT substitute is a
   sequential structure (real HOT's lock-free synchronisation is out of
   scope); the BTreeOLC vs BTreeOLC-SeqTree comparison — the bounds for
   an elastic BTreeOLC, as the paper frames it — is preserved. *)

open Bench_util
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops
module Ycsb = Ei_workload.Ycsb
module Olc = Ei_olc.Btree_olc
module Rng = Ei_util.Rng

let run_7a record_count =
  subheader "7a: index memory after YCSB load (MB)";
  let stx_bytes = Fig6.stx_load_bytes record_count in
  print_row [ "index"; "mem MB"; "vs stx" ];
  List.iter
    (fun (label, kind) ->
      let runner, index = Fig6.fresh kind ~record_count in
      Ei_workload.Ycsb.load runner record_count;
      let bytes = index.Index_ops.memory_bytes () in
      print_row
        [ label; mb bytes; f2 (float_of_int bytes /. float_of_int stx_bytes) ];
      emit ~name:"fig7"
        ~params:[ ("index", label); ("phase", "mem") ]
        ~ops_per_sec:0.0 ~bytes)
    (Fig6.index_kinds ~stx_bytes)

let mk_olc kind ~record_count =
  let table = Table.create ~key_len:8 () in
  let load =
    Olc.safe_loader ~key_len:8
      ~table_length:(fun () -> Table.length table)
      ~load:(Table.loader table)
  in
  let tree = Olc.create ~kind ~key_len:8 ~load () in
  let tids = Array.make record_count 0 in
  for seq = 0 to record_count - 1 do
    let k = Ycsb.key_of_seq seq in
    tids.(seq) <- Table.append table k
  done;
  (tree, table, tids)

(* Domain counts to run.  On a single-core machine the extra domains
   timeshare the core (total throughput stays flat); the experiment still
   validates concurrent correctness and reproduces the paper's ordering
   between the two variants.  On multicore, scaling appears directly. *)
let thread_counts =
  if Domain.recommended_domain_count () >= 8 then [ 1; 2; 4; 8 ] else [ 1; 2; 4 ]

(* Total wall-clock throughput of [per_thread] ops on [t] domains. *)
let parallel_mops t per_thread worker =
  let ds = List.init t (fun d -> Domain.spawn (fun () -> worker d)) in
  let (), dt =
    Ei_util.Bench_clock.time (fun () -> List.iter Domain.join ds)
  in
  Ei_util.Bench_clock.mops (t * per_thread) dt

let run_7bc record_count =
  let ops = scaled 200_000 in
  (* The elastic BTreeOLC (which the paper frames as bounded by the other
     two but does not implement) runs with a bound of ~60% of BTreeOLC's
     size for this load. *)
  let elastic_bound = record_count * 27 * 6 / 10 in
  let kinds =
    [
      ("btreeolc", Olc.Olc_std);
      ("btreeolc-seqtree", Olc.Olc_seqtree { capacity = 128; levels = 2; breathing = 4 });
      ("btreeolc-elastic", Olc.Olc_elastic (Olc.default_elastic_config ~size_bound:elastic_bound));
    ]
  in
  subheader "7b: workload C (lookups, zipfian) scaling over domains (total Mops)";
  print_row ("index" :: List.map string_of_int thread_counts);
  List.iter
    (fun (label, kind) ->
      let tree, _table, tids = mk_olc kind ~record_count in
      for seq = 0 to record_count - 1 do
        ignore (Olc.insert tree (Ycsb.key_of_seq seq) tids.(seq))
      done;
      let cells =
        List.map
          (fun t ->
            let per_thread = ops / t in
            let zipf = Ei_util.Zipf.create ~scramble:true record_count in
            let tput =
              parallel_mops t per_thread (fun d ->
                  let rng = domain_rng d in
                  for _ = 1 to per_thread do
                    let seq = Ei_util.Zipf.next zipf rng mod record_count in
                    ignore (Olc.find tree (Ycsb.key_of_seq seq))
                  done)
            in
            emit_mops ~name:"fig7"
              ~params:
                [
                  ("index", label);
                  ("threads", string_of_int t);
                  ("phase", "read");
                ]
              ~mops:tput ~bytes:(Olc.memory_bytes tree);
            f3 tput)
          thread_counts
      in
      print_row (label :: cells))
    kinds;
  subheader "7c: insert scaling over domains (total Mops)";
  print_row ("index" :: List.map string_of_int thread_counts);
  List.iter
    (fun (label, kind) ->
      let cells =
        List.map
          (fun t ->
            let total = ops in
            let per_thread = total / t in
            let tree, table, _ = mk_olc kind ~record_count:1 in
            (* Fresh keys per run, pre-appended to the table. *)
            let keys =
              Array.init total (fun i -> Ycsb.key_of_seq (1_000_000 + i))
            in
            let tids = Array.map (Table.append table) keys in
            let tput =
              parallel_mops t per_thread (fun d ->
                  for i = d * per_thread to ((d + 1) * per_thread) - 1 do
                    ignore (Olc.insert tree keys.(i) tids.(i))
                  done)
            in
            emit_mops ~name:"fig7"
              ~params:
                [
                  ("index", label);
                  ("threads", string_of_int t);
                  ("phase", "insert");
                ]
              ~mops:tput ~bytes:(Olc.memory_bytes tree);
            f3 tput)
          thread_counts
      in
      print_row (label :: cells))
    kinds;
  pf
    "paper shapes: both scale with threads; BTreeOLC above BTreeOLC-SeqTree\n\
     (1.66x on inserts at high thread counts); the elastic BTreeOLC (our\n\
     extension of the paper's future work) sits between the two bounds\n";
  pf "note: this machine reports %d core(s); with a single core the extra\n\
      domains timeshare it and total throughput stays flat\n%!"
    (Domain.recommended_domain_count ())

let run () =
  header "Figure 7: YCSB memory and multithreaded scaling";
  let record_count = scaled 100_000 in
  run_7a record_count;
  run_7bc record_count
