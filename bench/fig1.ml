(* Figure 1: daily volume of data extracted from a cloud object store's
   logs — the motivating burstiness.  We print the synthetic daily series
   (normalised to the period average) and its burst statistics. *)

open Bench_util

let run () =
  header "Figure 1: daily extracted-data volume (normalised to average)";
  let days = 120 in
  let volumes = Ei_workload.Datagen.daily_volumes ~days () in
  pf "day series (x of period average):\n";
  Array.iteri
    (fun d v ->
      pf "%5.2f%s" v (if (d + 1) mod 10 = 0 then "\n" else " "))
    volumes;
  let mean, above_15, above_20, max_v = Ei_workload.Datagen.stats volumes in
  pf "\nmean=%.2f  days>=1.5x: %d  days>=2x: %d  max=%.2fx\n" mean above_15
    above_20 max_v;
  pf "paper: many days at 1.5x the average, some days 2x-3.5x\n%!"
