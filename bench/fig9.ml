(* Figure 9: SeqTree tree-levels analysis (§6.4).

   STX-SeqTree with varying leaf capacity (leafSlots) and BlindiTree
   levels, breathing disabled: insert N uniform 64-bit keys, then N
   uniform searches.  For a leaf capacity c, up to log2(c) - 1 levels are
   available. *)

open Bench_util
module Table = Ei_storage.Table
module Rng = Ei_util.Rng
module Key = Ei_util.Key
module Btree = Ei_btree.Btree
module Policy = Ei_btree.Policy

let slot_values = [ 32; 64; 128; 256; 512 ]

let max_levels slots =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  log2 slots - 1

let bench_one ~keys ~load ~slots ~levels =
  let policy = Policy.all_seqtree ~levels ~breathing:0 ~capacity:slots () in
  let tree = Btree.create ~key_len:8 ~load ~policy () in
  let n = Array.length keys in
  let ins =
    mops n (fun () ->
        Array.iter (fun (k, tid) -> ignore (Btree.insert tree k tid)) keys)
  in
  let rng = Rng.create 3 in
  let srch =
    mops n (fun () ->
        for _ = 1 to n do
          let k, _ = keys.(Rng.int rng n) in
          ignore (Btree.find tree k)
        done)
  in
  (ins, srch)

let run () =
  header "Figure 9: SeqTree tree levels vs throughput (64-bit keys)";
  let n = scaled 60_000 in
  let rng = Rng.create 9 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let keys = unique_keys rng table n 8 in
  pf "N=%d inserts then %d searches per cell; breathing off\n" n n;
  let all_levels = List.init 8 (fun i -> i) in
  let results =
    List.map
      (fun slots ->
        ( slots,
          List.map
            (fun lvl ->
              if lvl <= (max_levels slots : int) then begin
                let ((ins, srch) as r) = bench_one ~keys ~load ~slots ~levels:lvl in
                let cell phase m =
                  emit_mops ~name:"fig9"
                    ~params:
                      [
                        ("slots", string_of_int slots);
                        ("levels", string_of_int lvl);
                        ("phase", phase);
                      ]
                    ~mops:m ~bytes:0
                in
                cell "insert" ins;
                cell "search" srch;
                Some r
              end
              else None)
            all_levels ))
      slot_values
  in
  let print_grid title get =
    subheader title;
    print_row ~w:10 ("slots\\lvl" :: List.map string_of_int all_levels);
    List.iter
      (fun (slots, cells) ->
        print_row ~w:10
          (string_of_int slots
          :: List.map
               (function Some r -> f3 (get r) | None -> "-")
               cells))
      results
  in
  print_grid "insert throughput (Mops)" fst;
  print_grid "search throughput (Mops)" snd;
  pf
    "paper shapes: levels help more as leafSlots grows; insert peaks at\n\
     level 2-3 (tree maintenance costs grow with levels), search peaks at\n\
     higher levels (5-6) for large leaves\n%!"
