(* Key-size analysis: the abstract's headline claim that the elastic
   B+-tree stores "2x-5x the number of keys (depending on key size)"
   within a B+-tree-sized memory budget.

   For each key size we measure STX's memory for N keys, then fill a
   fully-compacted tree (SeqTree128, the elastic index's limit shape)
   until it reaches the same budget, and report the key-count ratio.
   The elastic index's own compression at its bound is reported next to
   it. *)

open Bench_util
module Key = Ei_util.Key
module Rng = Ei_util.Rng
module Table = Ei_storage.Table
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops

let fill_until index keys ~budget =
  let n = Array.length keys in
  let i = ref 0 in
  while !i < n && index.Index_ops.memory_bytes () < (budget : int) do
    let k, tid = keys.(!i) in
    ignore (index.Index_ops.insert k tid);
    incr i
  done;
  index.Index_ops.count ()

let run () =
  header "Key-size sweep: keys stored within an STX-sized budget";
  let base_n = scaled 40_000 in
  print_row ~w:12
    [ "key bytes"; "stx keys"; "compact"; "ratio"; "elastic"; "e-ratio" ];
  List.iter
    (fun key_len ->
      let rng = Rng.create (100 + key_len) in
      let table = Table.create ~key_len () in
      let load = Table.loader table in
      (* Enough unique keys to overfill the budget at max compression. *)
      let keys = unique_keys rng table (8 * base_n) key_len in
      let stx = Registry.make ~key_len ~load Registry.Stx in
      for i = 0 to base_n - 1 do
        let k, tid = keys.(i) in
        ignore (stx.Index_ops.insert k tid)
      done;
      let budget = stx.Index_ops.memory_bytes () in
      let compact =
        fill_until (Registry.make ~key_len ~load (Registry.Seqtree 128)) keys ~budget
      in
      let elastic =
        fill_until
          (Registry.make ~key_len ~load
             (Registry.Elastic (Ei_core.Elasticity.default_config ~size_bound:budget)))
          keys ~budget
      in
      let record index keys_stored =
        emit ~name:"keysize"
          ~params:
            [
              ("index", index);
              ("key_len", string_of_int key_len);
              ("keys", string_of_int keys_stored);
            ]
          ~ops_per_sec:0.0 ~bytes:budget
      in
      record "stx" base_n;
      record "seqtree128" compact;
      record "elastic" elastic;
      print_row ~w:12
        [
          string_of_int key_len;
          string_of_int base_n;
          string_of_int compact;
          f2 (float_of_int compact /. float_of_int base_n);
          string_of_int elastic;
          f2 (float_of_int elastic /. float_of_int base_n);
        ])
    [ 8; 16; 30 ];
  pf
    "paper claim: 2x at 8-byte keys up to 5x at 30-byte keys (the compact\n\
     column is the elastic index's limit shape; the elastic column stops\n\
     at its soft bound, slightly below)\n%!"
