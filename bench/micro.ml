(* Bechamel micro-benchmarks: per-operation latency of point lookups and
   inserts on each index representation, complementing the throughput
   figures with statistically analysed single-op costs. *)

open Bechamel
module Table = Ei_storage.Table
module Rng = Ei_util.Rng
module Key = Ei_util.Key
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops

let prepared_index kind =
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let index = Registry.make ~key_len:8 ~load kind in
  let rng = Rng.create 1 in
  let keys =
    Bench_util.unique_keys rng table 50_000 8
  in
  Array.iter (fun (k, tid) -> ignore (index.Index_ops.insert k tid)) keys;
  (index, keys, rng)

let lookup_test name kind =
  let index, keys, rng = prepared_index kind in
  let n = Array.length keys in
  Test.make ~name:(name ^ "-lookup")
    (Staged.stage (fun () ->
         let k, _ = keys.(Rng.int rng n) in
         ignore (index.Index_ops.find k)))

let scan_test name kind =
  let index, keys, rng = prepared_index kind in
  let n = Array.length keys in
  Test.make ~name:(name ^ "-scan15")
    (Staged.stage (fun () ->
         let k, _ = keys.(Rng.int rng n) in
         ignore (index.Index_ops.scan k 15)))

let tests () =
  Test.make_grouped ~name:"micro"
    [
      lookup_test "stx" Registry.Stx;
      lookup_test "seqtree128" (Registry.Seqtree 128);
      lookup_test "hot" Registry.Hot;
      scan_test "stx" Registry.Stx;
      scan_test "seqtree128" (Registry.Seqtree 128);
      scan_test "hot" Registry.Hot;
    ]

(* --- Interleaved multi-lookup sweep ----------------------------------- *)

(* Batched lookups vs the sequential find loop, K ∈ {1,4,8,16,32} with
   the software-prefetch hint on and off, on the sequential B+-tree and
   the OLC tree.  Emits one JSON-Lines row per cell ([micro_multi]):
   [k = "loop"] is the per-key baseline, numeric [k] the group-descent
   width.  EXPERIMENTS.md reads the chosen serving-path K off this
   table. *)
let multi_sweep () =
  let module Btree = Ei_btree.Btree in
  let module Policy = Ei_btree.Policy in
  let module Olc = Ei_olc.Btree_olc in
  let module Prefetch = Ei_util.Prefetch in
  Bench_util.subheader "interleaved multi-lookup (batch 512, 8-byte keys)";
  let n = Bench_util.scaled 200_000 in
  let nbatches = 64 in
  let batch = 512 in
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let rng = Rng.create Bench_util.seed in
  let keys = Bench_util.unique_keys rng table n 8 in
  let stx = Btree.create ~key_len:8 ~load ~policy:Policy.stx () in
  let olc = Olc.create ~key_len:8 ~load () in
  Array.iter
    (fun (k, tid) ->
      ignore (Btree.insert stx k tid);
      ignore (Olc.insert olc k tid))
    keys;
  let queries =
    Array.init nbatches (fun _ ->
        Array.init batch (fun _ -> fst keys.(Rng.int rng n)))
  in
  let ops = nbatches * batch in
  let emit ~index ~k ~prefetch ~bytes m =
    Bench_util.emit_mops_q ~name:"micro_multi"
      ~params:[ ("index", index); ("k", k); ("prefetch", prefetch) ]
      ~mops:m ~bytes ();
    Printf.printf "  %-4s  K=%-5s prefetch=%-3s %8.2f Mops\n%!" index k
      prefetch m
  in
  let was_enabled = Prefetch.is_enabled () in
  let backends =
    [
      ( "stx",
        Btree.memory_bytes stx,
        (fun q -> Array.iter (fun k -> ignore (Btree.find stx k)) q),
        fun ~group q -> ignore (Btree.multi_find ~group stx q) );
      ( "olc",
        Olc.elastic_memory_bytes olc,
        (fun q -> Array.iter (fun k -> ignore (Olc.find olc k)) q),
        fun ~group q -> ignore (Olc.multi_find ~group olc q) );
    ]
  in
  List.iter
    (fun (index, bytes, loop, multi) ->
      let m =
        Bench_util.median_mops ops (fun () -> Array.iter loop queries)
      in
      emit ~index ~k:"loop" ~prefetch:"n/a" ~bytes m;
      List.iter
        (fun prefetch ->
          Prefetch.set_enabled prefetch;
          List.iter
            (fun group ->
              let m =
                Bench_util.median_mops ops (fun () ->
                    Array.iter (fun q -> multi ~group q) queries)
              in
              emit ~index ~k:(string_of_int group)
                ~prefetch:(if prefetch then "on" else "off")
                ~bytes m)
            [ 1; 4; 8; 16; 32 ])
        [ true; false ])
    backends;
  Prefetch.set_enabled was_enabled

let run () =
  Bench_util.header "Bechamel micro-benchmarks (ns per operation)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-28s %10.1f ns/op\n%!" name est
      | Some [] | None -> Printf.printf "%-28s (no estimate)\n%!" name)
    results;
  multi_sweep ()
