(* Bechamel micro-benchmarks: per-operation latency of point lookups and
   inserts on each index representation, complementing the throughput
   figures with statistically analysed single-op costs. *)

open Bechamel
module Table = Ei_storage.Table
module Rng = Ei_util.Rng
module Key = Ei_util.Key
module Registry = Ei_harness.Registry
module Index_ops = Ei_harness.Index_ops

let prepared_index kind =
  let table = Table.create ~key_len:8 () in
  let load = Table.loader table in
  let index = Registry.make ~key_len:8 ~load kind in
  let rng = Rng.create 1 in
  let keys =
    Bench_util.unique_keys rng table 50_000 8
  in
  Array.iter (fun (k, tid) -> ignore (index.Index_ops.insert k tid)) keys;
  (index, keys, rng)

let lookup_test name kind =
  let index, keys, rng = prepared_index kind in
  let n = Array.length keys in
  Test.make ~name:(name ^ "-lookup")
    (Staged.stage (fun () ->
         let k, _ = keys.(Rng.int rng n) in
         ignore (index.Index_ops.find k)))

let scan_test name kind =
  let index, keys, rng = prepared_index kind in
  let n = Array.length keys in
  Test.make ~name:(name ^ "-scan15")
    (Staged.stage (fun () ->
         let k, _ = keys.(Rng.int rng n) in
         ignore (index.Index_ops.scan k 15)))

let tests () =
  Test.make_grouped ~name:"micro"
    [
      lookup_test "stx" Registry.Stx;
      lookup_test "seqtree128" (Registry.Seqtree 128);
      lookup_test "hot" Registry.Hot;
      scan_test "stx" Registry.Stx;
      scan_test "seqtree128" (Registry.Seqtree 128);
      scan_test "hot" Registry.Hot;
    ]

let run () =
  Bench_util.header "Bechamel micro-benchmarks (ns per operation)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-28s %10.1f ns/op\n%!" name est
      | Some [] | None -> Printf.printf "%-28s (no estimate)\n%!" name)
    results
