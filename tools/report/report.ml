(* Shared diagnostic report for the static-analysis tools.

   Both ei_lint (untyped-parsetree rules) and ei_race (typedtree
   concurrency rules) funnel their findings through this one type, so
   CI consumes a uniform shape from either tool: text diagnostics are
   [file:line:col: [rule] message] and JSON is
   [{"tool": ..., "findings": [{file, line, col, rule, message}, ...]}]
   plus tool-specific extra fields. *)

type diag = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp_diag ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.msg

let of_location ~rule ~msg (loc : Location.t) ~file =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    msg;
  }

(* --- JSON ------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let diag_json d =
  Printf.sprintf
    "{\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
     \"message\": \"%s\"}"
    (json_escape d.file) d.line d.col (json_escape d.rule) (json_escape d.msg)

(* [extra] entries are preformatted JSON values keyed by field name;
   they land after the findings array. *)
let to_json ~tool ?(extra = []) diags =
  let fields =
    Printf.sprintf "\"tool\": \"%s\"" (json_escape tool)
    :: Printf.sprintf "\"findings\": [%s]"
         (String.concat ", " (List.map diag_json diags))
    :: List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) v)
         extra
  in
  "{" ^ String.concat ", " fields ^ "}"

type format = Text | Json

let parse_format = function
  | "text" -> Some Text
  | "json" -> Some Json
  | _ -> None

(* Recognise [--format=FMT] (or [--format FMT]) in an argument list,
   returning the format and the remaining arguments. *)
let split_format_arg args =
  let rec go fmt acc = function
    | [] -> Ok (fmt, List.rev acc)
    | "--format" :: v :: rest -> (
      match parse_format v with
      | Some f -> go (Some f) acc rest
      | None -> Error v)
    | a :: rest
      when String.length a > 9 && String.equal (String.sub a 0 9) "--format="
      -> (
      let v = String.sub a 9 (String.length a - 9) in
      match parse_format v with
      | Some f -> go (Some f) acc rest
      | None -> Error v)
    | a :: rest -> go fmt (a :: acc) rest
  in
  go None [] args
