(* ei_lint rules engine.

   Table-driven AST lint over the untyped parsetree (compiler-libs):
   each rule is an entry in {!expr_rules} — a name, a one-line
   rationale, a file scope, and a checker over [Parsetree.expression] —
   so adding a rule is adding one list element.

   The poly-compare rule works without type information.  It flags an
   application of a polymorphic comparison operator unless one operand
   is *evidently immediate* (an int/char/bool literal, an application of
   a known int-returning function, a field access known to hold an int,
   a ref deref, an [: int] constraint, or a variable the per-file
   environment saw bound to one of those), and it flags the application
   regardless when an operand is *evidently structural* (a constructor,
   tuple, record, list, variant or string literal) — comparing those
   with [=] walks the polymorphic comparator over arbitrary structure.
   The classifier is deliberately conservative: code that compares ints
   through an alias the tables don't know gets annotated at the use
   site, which is the fix we want anyway. *)

open Parsetree

(* The diagnostic type is shared with ei_race through {!Report} so both
   tools print and serialise findings identically. *)
type diag = Report.diag = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let compare_diag = Report.compare_diag
let pp_diag = Report.pp_diag

(* ------------------------------------------------------------------ *)
(* Scopes and tables.                                                  *)

(* Hot-path directories: modules where a polymorphic compare on the key
   path costs a C call per comparison. *)
let hot_dirs =
  [ "lib/btree/"; "lib/blindi/"; "lib/core/"; "lib/olc/"; "lib/baselines/" ]

(* Does [file]'s path contain directory component [d] ("lib/obs/")? *)
let in_dir d file =
  let has_prefix_at i =
    i + String.length d <= String.length file
    && String.equal (String.sub file i (String.length d)) d
  in
  let n = String.length file in
  let rec scan i = i < n && (has_prefix_at i || scan (i + 1)) in
  scan 0

let in_hot_path file = List.exists (fun d -> in_dir d file) hot_dirs
let in_lib file = in_dir "lib/" file

(* Harness code (drivers, measurement loops) compares keys and latencies
   just as hotly as the libraries do. *)
let in_harness file = in_dir "bench/" file || in_dir "tools/" file

(* Library code owns no std stream; the obs exposition layer does. *)
let in_quiet_lib file = in_lib file && not (in_dir "lib/obs/" file)

(* Per-file, per-rule suppressions.  Deliberately empty: genuine
   findings get fixed, not allowlisted.  Entries are
   [(rule, path_suffix)]. *)
let allowlist : (string * string) list = []

let poly_cmp_ops = [ "="; "<>"; "<"; ">"; "<="; ">=" ]
let poly_fn_ops = [ "compare"; "equal" ]
let poly_minmax_ops = [ "min"; "max" ]

(* Functions whose application is evidently an immediate value (int or
   char), keyed by the final path component, so [Array.length],
   [Bitsarr.get] and [Key.compare] all resolve. *)
let int_fns =
  [
    "+"; "-"; "*"; "/"; "~-"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr";
    "asr"; "abs"; "succ"; "pred"; "min"; "max"; "compare"; "length";
    "code"; "get"; "unsafe_get"; "count"; "capacity"; "level"; "levels";
    "height"; "bit"; "key_bit"; "byte_at"; "diff_bit"; "first_byte";
    "width_for_bits"; "tree_size"; "tid_slots_for"; "tid_at"; "tid_slots";
    "spec_capacity"; "std_capacity"; "memory_bytes"; "high_water_bytes";
    "bytes"; "node_bytes"; "leaf_bytes"; "inner_bytes"; "seqtree_bytes";
    "subtrie_bytes"; "stringtrie_bytes"; "skiplist_node_bytes";
    "int_of_float"; "int_of_char"; "to_int"; "of_int"; "int"; "hash";
    "child_index"; "lower_bound"; "random_height"; "segments";
    "transitions"; "conversions"; "index"; "compact_leaves";
    "node_child"; "shared_prefix_len";
  ]

(* Record fields known to hold ints across the index libraries. *)
let int_fields =
  [
    "n"; "pos"; "level"; "levels"; "items"; "capacity"; "key_len";
    "breathing"; "hits"; "tid"; "bytes"; "node_bytes"; "std_capacity";
    "inner_capacity"; "size_bound"; "initial_compact_capacity";
    "max_compact_capacity"; "segment_capacity"; "max_segment_capacity";
    "cold_sweep_period"; "cold_sweep_batch"; "seed"; "transitions";
    "segments"; "conversions"; "leaf_splits"; "leaf_merges";
    "search_splits"; "searches"; "scan_steps"; "tree_steps"; "hi_slot";
    "key_compares"; "inserts"; "removes"; "rebuilds"; "merges";
    "merge_work"; "key_loads"; "ops"; "width"; "seq_levels";
    "seq_breathing"; "static_n"; "compact_leaves"; "delta_count";
    "consolidate_at"; "prefix_len"; "leaf_capacity";
  ]

(* Identifiers that are immediate constants wherever they appear. *)
let int_idents = [ "max_int"; "min_int"; "et"; "max_level" ]

(* ------------------------------------------------------------------ *)
(* Longident helpers.                                                  *)

let rec last_of = function
  | Longident.Lident s -> s
  | Longident.Ldot (_, s) -> s
  | Longident.Lapply (_, l) -> last_of l

let path_of lid = try Longident.flatten lid with Misc.Fatal_error -> []

(* [Hashtbl.f] or [Stdlib.Hashtbl.f]. *)
let is_stdlib_hashtbl lid f =
  match path_of lid with
  | [ "Hashtbl"; g ] | [ "Stdlib"; "Hashtbl"; g ] -> String.equal f g
  | _ -> false

(* Unqualified [op] or [Stdlib.op]: the polymorphic one. *)
let is_stdlib_op lid ops =
  match path_of lid with
  | [ op ] | [ "Stdlib"; op ] -> List.mem op ops
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The evidently-immediate classifier.                                 *)

type env = (string, unit) Hashtbl.t
(* Variables the current file let-bound (or annotated) to an immediate
   value. *)

let int_typ ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt = Longident.Lident ("int" | "char" | "bool"); _ }, [])
    ->
    true
  | _ -> false

let rec immediate (env : env) e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false" | "()"); _ }, None)
    ->
    true
  | Pexp_ident { txt; _ } ->
    let n = last_of txt in
    List.mem n int_idents || Hashtbl.mem env n
  | Pexp_field (_, { txt; _ }) -> List.mem (last_of txt) int_fields
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let n = last_of txt in
    String.equal n "!" || List.mem n int_fns
  | Pexp_constraint (_, ty) -> int_typ ty
  | Pexp_ifthenelse (_, a, Some b) -> immediate env a && immediate env b
  | _ -> false

(* Values whose comparison with a polymorphic operator walks structure:
   always a finding, whatever the other operand. *)
let structural e =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> (
    match last_of txt with "true" | "false" | "()" -> false | _ -> true)
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ | Pexp_variant _ -> true
  | Pexp_constant (Pconst_string _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rule table.                                                         *)

type emit = loc:Location.t -> rule:string -> string -> unit

type expr_rule = {
  name : string;
  short : string;  (* one-line rationale, shown by --rules *)
  applies : string -> bool;  (* file-path scope of the rule *)
  check : emit:emit -> env -> expression -> unit;
}

let everywhere (_ : string) = true

let two_args args =
  match args with
  | [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] -> Some (a, b)
  | _ -> None

let rule_poly_compare =
  {
    name = "poly-compare";
    short =
      "hot-path comparisons must be monomorphic (Key.compare, \
       String.compare, Int.equal, or evidently-int operands)";
    applies = (fun file -> in_hot_path file || in_harness file);
    check =
      (fun ~emit env e ->
        match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
          let flag op why = emit ~loc ~rule:"poly-compare" (why op) in
          let op = last_of txt in
          let cmp = is_stdlib_op txt poly_cmp_ops in
          let fn = is_stdlib_op txt poly_fn_ops in
          let mm = is_stdlib_op txt poly_minmax_ops in
          if cmp || fn || mm then (
            match two_args args with
            | Some (a, b) ->
              if structural a || structural b then
                flag op
                  (Printf.sprintf
                     "polymorphic (%s) over a structured value; match on it \
                      or use a monomorphic equality")
              else if fn then
                flag op
                  (Printf.sprintf
                     "polymorphic %s; use Key.compare / String.compare / \
                      Int.equal")
              else if not (immediate env a || immediate env b) then
                flag op
                  (Printf.sprintf
                     "polymorphic (%s) on operands not evidently immediate; \
                      use a monomorphic comparison or annotate an operand \
                      with its (immediate) type")
            | None ->
              (* Partial application: cannot see the operands. *)
              flag op
                (Printf.sprintf
                   "partial application of polymorphic (%s); use a \
                    monomorphic comparison"))
        | _ -> ());
  }

let rule_hashtbl =
  {
    name = "hashtbl";
    short =
      "Hashtbl.hash folds a bounded key prefix and the default Hashtbl is \
       keyed on it; use Ei_util.Fnv / Ei_util.Strtbl for string keys";
    applies = in_lib;
    check =
      (fun ~emit _env e ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } when is_stdlib_hashtbl txt "hash" ->
          emit ~loc ~rule:"hashtbl"
            "Hashtbl.hash truncates variable-length keys (bounded-prefix \
             fold); use Ei_util.Fnv.hash"
        | Pexp_ident { txt; loc } when is_stdlib_hashtbl txt "create" ->
          emit ~loc ~rule:"hashtbl"
            "default Hashtbl uses the truncating polymorphic hash; use \
             Ei_util.Strtbl (seeded FNV-1a) for string keys"
        | _ -> ());
  }

let rule_obj_magic =
  {
    name = "obj-magic";
    short = "Obj.magic is never acceptable in library code";
    applies = everywhere;
    check =
      (fun ~emit _env e ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } when
            (match path_of txt with
            | [ "Obj"; "magic" ] | [ "Stdlib"; "Obj"; "magic" ] -> true
            | _ -> false) ->
          emit ~loc ~rule:"obj-magic" "Obj.magic defeats the type system"
        | _ -> ());
  }

let rule_no_abort =
  {
    name = "no-abort";
    short =
      "library code must not abort anonymously: raise Ei_util.Invariant \
       (Broken/impossible) instead of failwith / assert false";
    applies = in_lib;
    check =
      (fun ~emit _env e ->
        match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
          when is_stdlib_op txt [ "failwith" ] ->
          emit ~loc ~rule:"no-abort"
            "failwith raises an anonymous Failure; use \
             Ei_util.Invariant.broken with a diagnosis"
        | Pexp_assert
            {
              pexp_desc =
                Pexp_construct ({ txt = Longident.Lident "false"; _ }, None);
              pexp_loc = loc;
              _;
            } ->
          emit ~loc ~rule:"no-abort"
            "assert false aborts without a diagnosis; use \
             Ei_util.Invariant.impossible"
        | _ -> ());
  }

let rule_no_swallow =
  {
    name = "no-swallow";
    short =
      "a handler of the form [with _ -> ()] silently discards the \
       exception; match the exceptions you mean and park or re-raise \
       the rest";
    applies = everywhere;
    check =
      (fun ~emit _env e ->
        match e.pexp_desc with
        | Pexp_try (_, cases) ->
          List.iter
            (fun c ->
              let unit_body =
                match c.pc_rhs.pexp_desc with
                | Pexp_construct ({ txt = Longident.Lident "()"; _ }, None) ->
                  true
                | _ -> false
              in
              match c.pc_lhs.ppat_desc with
              | (Ppat_any | Ppat_var _)
                when Option.is_none c.pc_guard && unit_body ->
                emit ~loc:c.pc_lhs.ppat_loc ~rule:"no-swallow"
                  "catch-all handler swallows the exception (a crashed \
                   domain would die silently); match the exceptions you \
                   expect, or record the failure before dropping it"
              | _ -> ())
            cases
        | _ -> ());
  }

(* Bare printing channels in library code bypass the observability
   layer: the output interleaves arbitrarily across domains, cannot be
   scraped, and taints benchmark stdout.  Formatting into strings
   (Printf.sprintf / Format.asprintf) stays fine. *)
let print_idents =
  [
    "print_endline"; "print_string"; "print_newline"; "print_int";
    "print_char"; "print_float"; "print_bytes"; "prerr_endline";
    "prerr_string"; "prerr_newline"; "prerr_int";
  ]

let is_print_path lid =
  match path_of lid with
  | [ ("Printf" | "Format"); ("printf" | "eprintf") ]
  | [ "Stdlib"; ("Printf" | "Format"); ("printf" | "eprintf") ] ->
    true
  | _ -> false

let rule_no_print =
  {
    name = "no-print";
    short =
      "library code must not write to std streams (Printf.printf, \
       print_endline, ...); record through Ei_obs or return strings \
       (lib/obs and CLI/bench code are exempt)";
    applies = in_quiet_lib;
    check =
      (fun ~emit _env e ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } when is_stdlib_op txt print_idents ->
          emit ~loc ~rule:"no-print"
            (Printf.sprintf
               "%s writes to a std stream from library code; record \
                through Ei_obs or return the string to the caller"
               (last_of txt))
        | Pexp_ident { txt; loc } when is_print_path txt ->
          emit ~loc ~rule:"no-print"
            "Printf/Format printf writes to a std stream from library \
             code; use Printf.sprintf and return it, or record through \
             Ei_obs"
        | _ -> ());
  }

(* --- span-leak ----------------------------------------------------- *)

(* A [let t = Trace.start () in ...] that can finish without a matching
   [Trace.span _ ~start_ns:t _] leaves an unclosed span: the slice never
   reaches the ring and the request's flow silently loses a link.  The
   reachability check is structural: sequences and lets cover when any
   element covers; if/match/try require every branch (exception cases
   included) to cover.  Two idioms are recognised as closing on all
   paths: gating the emit on the start value itself ([if t > 0 then
   ... span ...] — the skipped path is the tracing-off path, where
   [Trace.start] returned 0 and there is no span to close), and the
   [match body () with () -> span | exception e -> span; raise e]
   bracket. *)

let is_trace_start e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match path_of txt with
    | [ "Trace"; "start" ] | [ "Ei_obs"; "Trace"; "start" ] -> true
    | _ -> false)
  | _ -> false

let is_var v e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> String.equal n v
  | _ -> false

let mentions v e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      Ast_iterator.expr =
        (fun it x ->
          if is_var v x then found := true;
          super.Ast_iterator.expr it x);
    }
  in
  it.Ast_iterator.expr it e;
  !found

let rec span_reaches v e =
  match e.pexp_desc with
  | Pexp_apply (_, args) ->
    (* Any application receiving [v] counts as the close — in practice
       [Trace.span _ ~start_ns:v _], but a helper that takes the start
       is a close too. *)
    List.exists (fun (_, a) -> is_var v a || span_reaches v a) args
  | Pexp_sequence (a, b) -> span_reaches v a || span_reaches v b
  | Pexp_let (_, vbs, body) ->
    List.exists (fun vb -> span_reaches v vb.pvb_expr) vbs
    || span_reaches v body
  | Pexp_ifthenelse (c, a, b) ->
    if mentions v c then
      (* Gated on the start value: the else path is tracing-off. *)
      span_reaches v a
    else
      span_reaches v a
      && (match b with Some b -> span_reaches v b | None -> false)
  | Pexp_match (scrut, cases) ->
    span_reaches v scrut
    || (match cases with
       | [] -> false
       | _ :: _ -> List.for_all (fun c -> span_reaches v c.pc_rhs) cases)
  | Pexp_try (body, cases) -> (
    span_reaches v body
    &&
    match cases with
    | [] -> false
    | _ :: _ -> List.for_all (fun c -> span_reaches v c.pc_rhs) cases)
  | Pexp_constraint (x, _) | Pexp_open (_, x) | Pexp_letmodule (_, _, x) ->
    span_reaches v x
  | _ -> false

let rule_span_leak =
  {
    name = "span-leak";
    short =
      "every [let t = Trace.start ()] must reach a [Trace.span _ \
       ~start_ns:t _] on all branches (exception cases included); gate \
       the emit on [t > 0] or use the match/exception bracket";
    applies = everywhere;
    check =
      (fun ~emit _env e ->
        match e.pexp_desc with
        | Pexp_let (_, vbs, cont) ->
          List.iter
            (fun vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = v; _ } when is_trace_start vb.pvb_expr ->
                if not (span_reaches v cont) then
                  emit ~loc:vb.pvb_pat.ppat_loc ~rule:"span-leak"
                    (Printf.sprintf
                       "span started as %s may finish without a matching \
                        Trace.span on every branch (exception paths \
                        included); close it on all paths or gate the \
                        branch on %s itself"
                       v v)
              | _ -> ())
            vbs
        | _ -> ());
  }

let expr_rules =
  [
    rule_poly_compare; rule_hashtbl; rule_obj_magic; rule_no_abort;
    rule_no_swallow; rule_no_print; rule_span_leak;
  ]

(* ------------------------------------------------------------------ *)
(* Per-file driver.                                                    *)

let allowlisted ~file ~rule =
  List.exists
    (fun (r, suffix) ->
      String.equal r rule
      && String.length file >= String.length suffix
      && String.equal
           (String.sub file
              (String.length file - String.length suffix)
              (String.length suffix))
           suffix)
    allowlist

(* Track immediate-valued bindings: [let n = ...], [for i = ...],
   [fun (x : int) ->], and constrained let patterns. *)
let bind_env env pat rhs =
  match (pat.ppat_desc, rhs) with
  | Ppat_var { txt; _ }, Some e when immediate env e ->
    Hashtbl.replace env txt ()
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, ty), _
    when int_typ ty ->
    Hashtbl.replace env txt ()
  | _ -> ()

let lint_structure ~file structure =
  let diags = ref [] in
  let emit ~loc ~rule msg =
    if not (allowlisted ~file ~rule) then begin
      let p = loc.Location.loc_start in
      diags :=
        {
          file;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          rule;
          msg;
        }
        :: !diags
    end
  in
  let env : env = Hashtbl.create 64 in
  let active = List.filter (fun r -> r.applies file) expr_rules in
  let super = Ast_iterator.default_iterator in
  let iter =
    {
      super with
      Ast_iterator.expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_let (_, vbs, _) ->
            List.iter (fun vb -> bind_env env vb.pvb_pat (Some vb.pvb_expr)) vbs
          | Pexp_fun (_, _, pat, _) -> bind_env env pat None
          | Pexp_for (pat, _, _, _, _) -> (
            match pat.ppat_desc with
            | Ppat_var { txt; _ } -> Hashtbl.replace env txt ()
            | _ -> ())
          | _ -> ());
          List.iter (fun r -> r.check ~emit env e) active;
          super.Ast_iterator.expr it e);
      Ast_iterator.value_binding =
        (fun it vb ->
          bind_env env vb.pvb_pat (Some vb.pvb_expr);
          super.Ast_iterator.value_binding it vb);
    }
  in
  iter.Ast_iterator.structure iter structure;
  List.sort_uniq compare_diag !diags

let parse_diag ~file exn =
  let line, col, msg =
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
      let loc = report.Location.main.Location.loc in
      let p = loc.Location.loc_start in
      ( p.Lexing.pos_lnum,
        p.Lexing.pos_cnum - p.Lexing.pos_bol,
        Format.asprintf "%t" report.Location.main.Location.txt )
    | Some `Already_displayed | None -> (1, 0, Printexc.to_string exn)
  in
  [ { file; line; col; rule = "syntax"; msg } ]

let lint_file ~path ~display =
  if Filename.check_suffix path ".mli" then
    (* Interfaces carry no expressions; parsing still validates them. *)
    try
      ignore (Pparse.parse_interface ~tool_name:"ei_lint" path);
      []
    with exn -> parse_diag ~file:display exn
  else
    match Pparse.parse_implementation ~tool_name:"ei_lint" path with
    | structure -> lint_structure ~file:display structure
    | exception exn -> parse_diag ~file:display exn

(* Every library module must have an interface: the .mli is where the
   invariants live, and unconstrained exports are how internals leak. *)
let check_mli_coverage ~ml_files =
  List.filter_map
    (fun (path, display) ->
      if Sys.file_exists (path ^ "i") then None
      else
        Some
          {
            file = display;
            line = 1;
            col = 0;
            rule = "mli-coverage";
            msg = "library module without an interface; add a .mli";
          })
    ml_files

let rules_help () =
  String.concat "\n"
    (List.map (fun r -> Printf.sprintf "%-14s %s" r.name r.short) expr_rules
    @ [
        Printf.sprintf "%-14s %s" "mli-coverage"
          "every library module must have a .mli";
      ])
