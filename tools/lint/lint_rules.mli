(** ei_lint rules engine (table-driven, untyped-AST).

    Rules: [poly-compare] (hot-path modules must compare through
    monomorphic functions unless an operand is evidently an immediate
    value), [hashtbl] (no truncating [Hashtbl.hash] / default
    [Hashtbl.create] on string keys), [obj-magic], [no-abort] (no
    [failwith] / [assert false] in library code), [no-swallow] (no
    catch-all handlers that drop the exception), [no-print] (library
    code outside [lib/obs] must not write to std streams), and
    [mli-coverage].  Every rule carries its own file-path scope
    predicate; adding a rule is adding one entry to the internal
    table. *)

type diag = Report.diag = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

val compare_diag : diag -> diag -> int
val pp_diag : Format.formatter -> diag -> unit

val lint_file : path:string -> display:string -> diag list
(** Parse [path] ([.ml] or [.mli]) and run every applicable rule.
    [display] is the path printed in diagnostics.  Parse failures are
    reported as a [syntax] diagnostic. *)

val check_mli_coverage : ml_files:(string * string) list -> diag list
(** [(path, display)] pairs of implementation files; reports each one
    without a sibling [.mli]. *)

val in_hot_path : string -> bool
(** Whether a display path falls under a hot-path directory (part of
    the [poly-compare] scope). *)

val in_lib : string -> bool
(** Whether a display path falls under [lib/] (the [hashtbl] /
    [no-abort] / [mli-coverage] scope). *)

val in_harness : string -> bool
(** Whether a display path falls under [bench/] or [tools/] (also in
    the [poly-compare] scope: measurement loops compare hotly too). *)

val in_quiet_lib : string -> bool
(** Whether a display path falls under [lib/] but outside [lib/obs/]
    (the [no-print] scope). *)

val rules_help : unit -> string
(** One line per rule, for [--rules]. *)
