(* ei_lint: project lint driver.

   Usage: ei_lint [--rules] [--format=text|json] [DIR|FILE ...]
   (default scope: lib)

   Walks the given trees, lints every .ml/.mli through the rule table
   in {!Lint_rules}, prints file:line:col diagnostics (or one JSON
   object with --format=json), and exits 1 if anything fired.  Wired to
   the @lint alias: `dune build @lint`. *)

let rec collect path acc =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "ei_lint: no such file or directory: %s\n" path;
    exit 2
  end
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> collect (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.exists (String.equal "--rules") args then begin
    print_endline (Lint_rules.rules_help ());
    exit 0
  end;
  let fmt, args =
    match Report.split_format_arg args with
    | Ok (fmt, rest) -> (Option.value fmt ~default:Report.Text, rest)
    | Error v ->
      Printf.eprintf "ei_lint: unknown format %S (expected text or json)\n" v;
      exit 2
  in
  let roots = match args with [] -> [ "lib" ] | _ -> args in
  let files =
    List.sort String.compare
      (List.fold_left (fun acc root -> collect root acc) [] roots)
  in
  let ml_files =
    (* Only library modules owe an interface; harness and bench drivers
       are executables. *)
    List.filter_map
      (fun f ->
        if Filename.check_suffix f ".ml" && Lint_rules.in_lib f then
          Some (f, f)
        else None)
      files
  in
  let diags =
    List.concat_map (fun f -> Lint_rules.lint_file ~path:f ~display:f) files
    @ Lint_rules.check_mli_coverage ~ml_files
  in
  let diags = List.sort_uniq Lint_rules.compare_diag diags in
  let text = match fmt with Report.Text -> true | Report.Json -> false in
  if text then
    List.iter (fun d -> Format.printf "%a@." Lint_rules.pp_diag d) diags
  else begin
    let extra = [ ("files_scanned", string_of_int (List.length files)) ] in
    print_endline (Report.to_json ~tool:"ei_lint" ~extra diags)
  end;
  match diags with
  | [] ->
    if text then Format.printf "ei_lint: %d files clean@." (List.length files);
    exit 0
  | _ ->
    if text then
      Format.printf "ei_lint: %d finding(s) in %d files@." (List.length diags)
        (List.length files);
    exit 1
